GO ?= go

# The perf trajectory across PRs: `make bench` records the current tree as
# $(BENCH_OUT); `make ci` (via bench-check) fails when any benchmark present
# in both files regressed more than 25% against $(BENCH_PREV).
#
# BENCH_COUNT is 6 because the gate runs on a shared single-vCPU box where
# contention arrives in bursts: with only 2 samples per pass, both can land
# inside one burst and a healthy benchmark reads as a >25% REGRESS purely
# from noise (observed on PR 9's gate runs — interleaved re-measurement
# showed unchanged medians). Six samples per pass, spread across
# $(BENCH_PASSES) interleaved suite passes, put minutes between a
# benchmark's samples so at least some of them dodge every burst; the
# min-merge in benchjson then recovers the uncontended time.
BENCH_PREV  ?= BENCH_pr8.json
BENCH_OUT   ?= BENCH_pr10.json
BENCH_COUNT ?= 6
BENCH_PASSES ?= 3

.PHONY: ci vet build test race campaign-smoke stuckat-smoke service-smoke advise-smoke doccheck bench-smoke bench bench-check bench-full

ci: vet build race campaign-smoke stuckat-smoke service-smoke advise-smoke doccheck bench-check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The durability differentials under the race detector: interrupt-and-resume
# bit-identity and shard-merge equality.
campaign-smoke:
	$(GO) test -race -run 'TestCampaignInterruptResume|TestCampaignShardMerge' ./internal/fault

# Persistent-fault smoke against the real fsprune CLI: snapshots carry the
# full scheduler/synchronization ledger (DESIGN.md §3.11), so every
# persistent model — scheduler-corrupting ones included — must keep the
# fast-forward engine. For each model the -stats line must show CTA
# skipping and no fallback note (the stats line only mentions fallbacks
# when the count is nonzero, so the check is for absence), and the -json
# report must omit the full_run_fallbacks field entirely.
stuckat-smoke:
	for m in stuck-active-mask stuck-barrier stuck-pred; do \
		out=$$($(GO) run ./cmd/fsprune -kernel "GEMM K1" -action campaign -model $$m -baseline 40 -stats) || exit 1; \
		echo "$$out" | grep "CTAs skipped" > /dev/null || { echo "stuckat-smoke: $$m stats line lacks CTA skipping"; exit 1; }; \
		echo "$$out" | grep " 0 CTAs skipped" && { echo "stuckat-smoke: $$m campaign skipped no CTAs"; exit 1; }; \
		echo "$$out" | grep "fallback" && { echo "stuckat-smoke: $$m stats line mentions fallbacks"; exit 1; }; \
		$(GO) run ./cmd/fsprune -kernel "GEMM K1" -action campaign -model $$m -baseline 40 -json | grep full_run_fallbacks && { echo "stuckat-smoke: $$m json carries full_run_fallbacks"; exit 1; }; \
	done; exit 0

# The campaign service end to end against the real fsserve binary: serve on
# a random port, submit, SIGTERM mid-campaign (clean exit 0), restart,
# resume, and compare the final report byte-for-byte with the standalone
# journal-derived reference.
service-smoke:
	$(GO) test -race -run 'TestServeSmoke' ./cmd/fsserve

# Hardening-advisor smoke against the real CLIs: record a small campaign
# journal with fsprune, advise from it with fsadvise, and check the JSON
# document carries the frontier and its overhead axis; the live-campaign
# door must produce the byte-identical document.
advise-smoke:
	t=$$(mktemp -d) && \
	$(GO) run ./cmd/fsprune -kernel "GEMM K1" -action campaign -baseline 120 -journal $$t/a.journal > /dev/null && \
	$(GO) run ./cmd/fsadvise -journal $$t/a.journal -json > $$t/replay.json && \
	grep -q '"frontier"' $$t/replay.json && grep -q '"overhead_pct"' $$t/replay.json && \
	$(GO) run ./cmd/fsadvise -kernel "GEMM K1" -sites 120 -json > $$t/live.json && \
	cmp $$t/replay.json $$t/live.json && \
	rm -rf $$t

# Documentation gate: every internal package carries a package comment,
# every `go run ./cmd/...` invocation quoted in README/DESIGN/ARCHITECTURE/
# EXPERIMENTS code fences names a real command and real flags, every cmd/*
# binary and every flag it defines is documented in README, and inline flag
# references in EXPERIMENTS.md name flags some command defines.
doccheck:
	$(GO) run ./cmd/doccheck

# One iteration of the headline benchmark, piped through benchjson: catches
# gross regressions and panics in the campaign engine (and keeps the JSON
# extractor building) without a full benchmark run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTable2$$' -benchtime 1x . | $(GO) run ./cmd/benchjson > /dev/null

# Table/figure and campaign-engine benchmarks in smoke mode (one iteration
# each), recorded as ns/op per benchmark in $(BENCH_OUT). The recording is
# the best of $(BENCH_PASSES) full suite passes × $(BENCH_COUNT) samples
# each, min-merged by benchjson: a single 1x sample swings tens of percent
# with scheduler and GC jitter, and on a shared single-vCPU box contention
# arrives in bursts of tens of seconds — back-to-back samples of one
# benchmark all land inside the same burst, so the passes interleave the
# whole suite to spread each benchmark's samples minutes apart. Repeats
# share the process-wide prepared cache, so cache-backed benches report
# their warm path; BenchmarkPipelineColdPrepare attaches a fresh cache per
# iteration and stays the designated cold-Prepare gauge.
bench:
	for i in $$(seq $(BENCH_PASSES)); do \
		$(GO) test -run '^$$' -bench '^Benchmark(Table|Fig|Campaign|Pipeline|InterpStep)' -benchtime 1x -count $(BENCH_COUNT) . || exit 1; \
	done | $(GO) run ./cmd/benchjson > $(BENCH_OUT)

# Regression gate: rerun the benchmarks and diff against the previous PR's
# recording; any >25% slowdown fails with a readable per-benchmark report.
# -allow-missing keeps ci green on clones without the baseline recording.
# -min-time-ms 5 is the noise floor: sub-5ms benches jitter tens of percent
# at smoke sample counts (interleaved reruns show unchanged medians), so
# they are reported but cannot flake the gate.
bench-check: bench
	$(GO) run ./cmd/benchdiff -allow-missing -max-regress 25 -min-time-ms 5 $(BENCH_PREV) $(BENCH_OUT)

# The full benchmark suite with allocation stats (slow).
bench-full:
	$(GO) test -run '^$$' -bench . -benchtime 3x -benchmem .
