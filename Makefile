GO ?= go

.PHONY: ci vet build test race bench-smoke bench

ci: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the headline benchmark: catches gross regressions and
# panics in the campaign engine without a full benchmark run.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkTable2 -benchtime 1x .

bench:
	$(GO) test -run '^$$' -bench . -benchtime 3x -benchmem .
