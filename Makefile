GO ?= go

.PHONY: ci vet build test race bench-smoke bench bench-full

ci: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the headline benchmark, piped through benchjson: catches
# gross regressions and panics in the campaign engine (and keeps the JSON
# extractor building) without a full benchmark run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTable2$$' -benchtime 1x . | $(GO) run ./cmd/benchjson > /dev/null

# Table/figure and campaign-engine benchmarks in smoke mode (one iteration
# each), recorded as ns/op per benchmark in BENCH_pr2.json — the perf
# trajectory across PRs.
bench:
	$(GO) test -run '^$$' -bench '^Benchmark(Table|Fig|Campaign)' -benchtime 1x . | $(GO) run ./cmd/benchjson > BENCH_pr2.json

# The full benchmark suite with allocation stats (slow).
bench-full:
	$(GO) test -run '^$$' -bench . -benchtime 3x -benchmem .
