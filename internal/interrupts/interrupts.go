// Package interrupts implements the signal policy shared by the long-running
// commands (fsprune campaigns, the fsserve daemon): the first SIGINT or
// SIGTERM requests a cooperative stop — the returned channel closes, workers
// drain their in-flight sites, journals flush — and a second signal forces
// immediate exit with status 130, so a wedged drain (a site stuck against
// its deadline, a hung flush) never leaves the process killable only by
// SIGKILL.
//
// The pre-existing per-command handlers reset the signal disposition after
// the first signal instead, which left a window: a second signal delivered
// between the first one's receipt and the reset landed in the notification
// channel nobody was reading anymore and was silently swallowed. Keeping one
// goroutine receiving for the life of the process closes that window and
// makes the second-signal behavior deterministic.
package interrupts

import (
	"os"
	"os/signal"
	"syscall"
)

// ForcedExitCode is the exit status of a second-signal forced exit, the
// conventional 128+SIGINT.
const ForcedExitCode = 130

// Notify installs the two-stage handler for SIGINT and SIGTERM and returns
// the cooperative-stop channel: closed on the first signal, while a second
// signal exits the process with ForcedExitCode. Call it once, early in main.
func Notify() <-chan struct{} {
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	return notify(sigc, os.Exit)
}

// notify is the testable core of Notify: sigc delivers the signals, exit
// performs the forced termination.
func notify(sigc <-chan os.Signal, exit func(int)) <-chan struct{} {
	stop := make(chan struct{})
	go func() {
		<-sigc
		close(stop)
		<-sigc
		exit(ForcedExitCode)
	}()
	return stop
}
