package interrupts

import (
	"os"
	"syscall"
	"testing"
	"time"
)

// TestTwoStage: the first signal closes the stop channel without exiting;
// the second forces exit 130 — including when both arrive back to back,
// the swallowed-second-signal window of the old per-command handlers.
func TestTwoStage(t *testing.T) {
	sigc := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	stop := notify(sigc, func(code int) { exited <- code })

	sigc <- syscall.SIGINT
	select {
	case <-stop:
	case <-time.After(time.Second):
		t.Fatal("stop channel not closed after first signal")
	}
	select {
	case code := <-exited:
		t.Fatalf("first signal already forced exit %d", code)
	default:
	}

	sigc <- syscall.SIGTERM
	select {
	case code := <-exited:
		if code != ForcedExitCode {
			t.Fatalf("forced exit code %d, want %d", code, ForcedExitCode)
		}
	case <-time.After(time.Second):
		t.Fatal("second signal did not force exit")
	}
}

// TestBackToBackSignals: two signals already queued before the handler ran
// still produce stop-then-exit — nothing is swallowed.
func TestBackToBackSignals(t *testing.T) {
	sigc := make(chan os.Signal, 2)
	sigc <- syscall.SIGTERM
	sigc <- syscall.SIGTERM
	exited := make(chan int, 1)
	stop := notify(sigc, func(code int) { exited <- code })

	select {
	case <-stop:
	case <-time.After(time.Second):
		t.Fatal("stop channel not closed")
	}
	select {
	case code := <-exited:
		if code != ForcedExitCode {
			t.Fatalf("forced exit code %d, want %d", code, ForcedExitCode)
		}
	case <-time.After(time.Second):
		t.Fatal("queued second signal did not force exit")
	}
}
