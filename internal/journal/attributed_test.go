package journal

import (
	"strings"
	"testing"
)

func attrFP(sites int) Fingerprint {
	return Fingerprint{Kernel: "K", Seed: 1, Model: "dest-value", Sites: sites, ShardCount: 1}
}

// TestAttributedSorts checks that completion-order records come back in
// campaign-index order — the order downstream aggregation depends on.
func TestAttributedSorts(t *testing.T) {
	recs := []Record{
		{Index: 2, Thread: 5, DynInst: 9, Bit: 1, Outcome: 1, Weight: 1},
		{Index: 0, Thread: 3, DynInst: 4, Bit: 0, Outcome: 0, Weight: 1},
		{Index: 1, Thread: 4, DynInst: 7, Bit: 2, Outcome: 2, Weight: 1},
	}
	got, err := Attributed(attrFP(3), recs, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r.Index != i {
			t.Fatalf("position %d holds index %d", i, r.Index)
		}
	}
	// The input must not be reordered in place: callers hand Attributed
	// journal-owned slices.
	if recs[0].Index != 2 {
		t.Fatal("input slice was mutated")
	}
}

func TestAttributedRejectsDuplicates(t *testing.T) {
	recs := []Record{{Index: 1}, {Index: 1}}
	if _, err := Attributed(attrFP(3), recs, false); err == nil ||
		!strings.Contains(err.Error(), "twice") {
		t.Fatalf("want duplicate-index error, got %v", err)
	}
}

func TestAttributedRejectsOutOfRange(t *testing.T) {
	if _, err := Attributed(attrFP(3), []Record{{Index: 3}}, false); err == nil {
		t.Fatal("want out-of-range error, got nil")
	}
	if _, err := Attributed(attrFP(3), []Record{{Index: -1}}, false); err == nil {
		t.Fatal("want out-of-range error, got nil")
	}
	if _, err := Attributed(attrFP(3), []Record{{Index: 0, Thread: -1}}, false); err == nil {
		t.Fatal("want negative-key error, got nil")
	}
}

func TestAttributedRequireComplete(t *testing.T) {
	recs := []Record{{Index: 0}, {Index: 2}}
	if _, err := Attributed(attrFP(3), recs, true); err == nil ||
		!strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("want incomplete error, got %v", err)
	}
	if _, err := Attributed(attrFP(3), recs, false); err != nil {
		t.Fatalf("partial attribution without requireComplete should pass, got %v", err)
	}
}
