package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testFP() Fingerprint {
	return Fingerprint{
		Kernel: "GEMM K1", Scale: "small", Seed: 7, Model: "dest-value",
		Warp: 0, Stride: 2, Sites: 8, ShardIndex: 0, ShardCount: 1,
	}
}

func rec(i int) Record {
	return Record{
		Index: i, Thread: i * 3, DynInst: int64(i * 11), Bit: i % 32,
		Outcome: uint8(i % 4), Weight: 1.5, CTAsSkipped: int64(i), EarlyExit: i%2 == 0,
		Attempts: 1,
	}
}

// TestRoundTrip: records appended in one session replay verbatim in the
// next, and counts line up.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if j.Count() != 5 {
		t.Fatalf("count = %d, want 5", j.Count())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Replayed()
	if len(got) != 5 {
		t.Fatalf("replayed %d records, want 5", len(got))
	}
	for i, r := range got {
		if r != rec(i) {
			t.Fatalf("record %d = %+v, want %+v", i, r, rec(i))
		}
	}
	if j2.Count() != 5 {
		t.Fatalf("count after replay = %d, want 5", j2.Count())
	}
}

// TestAppendAfterReopen: a resumed journal keeps accepting records and the
// third session sees both generations.
func TestAppendAfterReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	_, recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0] != rec(0) || recs[1] != rec(1) {
		t.Fatalf("records after two sessions: %+v", recs)
	}
}

// TestFingerprintMismatch: every fingerprint field participates in
// staleness detection.
func TestFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	mutants := []func(*Fingerprint){
		func(f *Fingerprint) { f.Kernel = "MVT K1" },
		func(f *Fingerprint) { f.Scale = "paper" },
		func(f *Fingerprint) { f.Seed = 8 },
		func(f *Fingerprint) { f.Model = "mem-addr" },
		func(f *Fingerprint) { f.Warp = 32 },
		func(f *Fingerprint) { f.Stride = 1 },
		func(f *Fingerprint) { f.FullRun = true },
		func(f *Fingerprint) { f.Sites = 9 },
		func(f *Fingerprint) { f.ShardIndex = 1; f.ShardCount = 2 },
	}
	for i, mutate := range mutants {
		fp := testFP()
		mutate(&fp)
		if _, err := Open(path, fp); !errors.Is(err, ErrFingerprintMismatch) {
			t.Fatalf("mutant %d: err = %v, want ErrFingerprintMismatch", i, err)
		}
	}
}

// TestTornTailTruncated: bytes of a partially written frame (crash
// mid-append) are dropped on open; complete records survive; the journal
// accepts appends after recovery.
func TestTornTailTruncated(t *testing.T) {
	for _, tear := range []struct {
		name string
		grow func([]byte) []byte
	}{
		{"partial header", func(b []byte) []byte { return append(b, 0x55, 0x66, 0x77) }},
		{"length beyond EOF", func(b []byte) []byte {
			return append(b, 0xff, 0x00, 0x00, 0x00, 1, 2, 3, 4, 'x', 'y')
		}},
		{"crc mismatch", func(b []byte) []byte {
			f := frame([]byte(`{"i":9}`))
			f[4] ^= 0xff // corrupt the checksum
			return append(b, f...)
		}},
		{"oversized length", func(b []byte) []byte {
			return append(b, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0)
		}},
	} {
		t.Run(tear.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "c.journal")
			j, err := Open(path, testFP())
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if err := j.Append(rec(i)); err != nil {
					t.Fatal(err)
				}
			}
			j.Close()

			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tear.grow(data), 0o644); err != nil {
				t.Fatal(err)
			}

			j2, err := Open(path, testFP())
			if err != nil {
				t.Fatalf("open with torn tail: %v", err)
			}
			if got := len(j2.Replayed()); got != 3 {
				t.Fatalf("replayed %d records, want 3", got)
			}
			if err := j2.Append(rec(3)); err != nil {
				t.Fatal(err)
			}
			j2.Close()

			_, recs, err := ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 4 || recs[3] != rec(3) {
				t.Fatalf("after recovery+append: %+v", recs)
			}
		})
	}
}

// TestTornHeaderIsCorrupt: a file whose fingerprint header itself is torn
// cannot be trusted at all.
func TestTornHeaderIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, testFP()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestConcurrentAppend: workers append concurrently; every record survives
// intact (run under -race).
func TestConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	fp := testFP()
	fp.Sites = 256
	j, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				if err := j.Append(rec(w*32 + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	j.Close()

	_, recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 256 {
		t.Fatalf("%d records, want 256", len(recs))
	}
	seen := map[int]bool{}
	for _, r := range recs {
		if seen[r.Index] {
			t.Fatalf("duplicate index %d", r.Index)
		}
		seen[r.Index] = true
		if r != rec(r.Index) {
			t.Fatalf("record %d mangled: %+v", r.Index, r)
		}
	}
}

// shardJournal writes one shard's journal covering the indices owned by
// shard idx of count in a sites-sized campaign.
func shardJournal(t *testing.T, dir string, idx, count, sites int) string {
	t.Helper()
	fp := testFP()
	fp.Sites = sites
	fp.ShardIndex, fp.ShardCount = idx, count
	path := filepath.Join(dir, fmt.Sprintf("shard%d.journal", idx))
	j, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	for i := idx; i < sites; i += count {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	return path
}

// TestMerge: shard journals merge into index-sorted records covering the
// whole campaign, whichever order the files are passed in.
func TestMerge(t *testing.T) {
	dir := t.TempDir()
	const sites, shards = 20, 3
	var paths []string
	for s := 0; s < shards; s++ {
		paths = append(paths, shardJournal(t, dir, s, shards, sites))
	}
	for _, order := range [][]string{
		{paths[0], paths[1], paths[2]},
		{paths[2], paths[0], paths[1]},
	} {
		fp, recs, err := Merge(order, false)
		if err != nil {
			t.Fatal(err)
		}
		if fp.Sites != sites || fp.ShardCount != shards || fp.ShardIndex != 0 {
			t.Fatalf("merged fingerprint: %+v", fp)
		}
		if len(recs) != sites {
			t.Fatalf("%d records, want %d", len(recs), sites)
		}
		for i, r := range recs {
			if r.Index != i {
				t.Fatalf("record %d has index %d (not sorted)", i, r.Index)
			}
			if r != rec(i) {
				t.Fatalf("record %d = %+v, want %+v", i, r, rec(i))
			}
		}
	}
}

// TestMergeValidation: mismatched campaigns, duplicated shards or site
// indices, and incomplete coverage are rejected.
func TestMergeValidation(t *testing.T) {
	dir := t.TempDir()
	const sites, shards = 20, 3
	var paths []string
	for s := 0; s < shards; s++ {
		paths = append(paths, shardJournal(t, dir, s, shards, sites))
	}

	// Foreign campaign.
	other := filepath.Join(dir, "other.journal")
	fp := testFP()
	fp.Kernel = "MVT K1"
	fp.Sites = sites
	fp.ShardIndex, fp.ShardCount = 1, shards
	oj, err := Open(other, fp)
	if err != nil {
		t.Fatal(err)
	}
	oj.Close()
	if _, _, err := Merge([]string{paths[0], other}, true); !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("foreign campaign: err = %v", err)
	}

	// Duplicate shard.
	if _, _, err := Merge([]string{paths[0], paths[0]}, true); err == nil {
		t.Fatal("duplicate shard accepted")
	}

	// Missing shard: strict merge fails, partial merge succeeds.
	if _, _, err := Merge([]string{paths[0], paths[2]}, false); err == nil {
		t.Fatal("incomplete merge accepted")
	}
	if _, recs, err := Merge([]string{paths[0], paths[2]}, true); err != nil || len(recs) >= sites {
		t.Fatalf("partial merge: %d records, err %v", len(recs), err)
	}

	// Overlapping site indices across shard files.
	overlap := filepath.Join(dir, "overlap.journal")
	fp = testFP()
	fp.Sites = sites
	fp.ShardIndex, fp.ShardCount = 1, shards
	ovj, err := Open(overlap, fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := ovj.Append(rec(0)); err != nil { // index 0 belongs to shard 0
		t.Fatal(err)
	}
	ovj.Close()
	if _, _, err := Merge([]string{paths[0], overlap}, true); err == nil {
		t.Fatal("overlapping site indices accepted")
	}
}

// TestMergeModelMismatch: shards recorded under different fault models are
// not fragments of one campaign; the error must name both models and both
// files so the operator can see which shard came from which run.
func TestMergeModelMismatch(t *testing.T) {
	dir := t.TempDir()
	const sites, shards = 20, 2
	base := shardJournal(t, dir, 0, shards, sites)

	other := filepath.Join(dir, "stuck.journal")
	fp := testFP()
	fp.Model = "stuck-pred"
	fp.Sites = sites
	fp.ShardIndex, fp.ShardCount = 1, shards
	oj, err := Open(other, fp)
	if err != nil {
		t.Fatal(err)
	}
	oj.Close()

	_, _, err = Merge([]string{base, other}, true)
	if !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("err = %v", err)
	}
	for _, want := range []string{"dest-value", "stuck-pred", "must share a model", base, other} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("merge error %q missing %q", err, want)
		}
	}
}

// TestRecordFallbackRoundTrip: the full-run-fallback flag survives the
// journal encoding (including its omitempty default).
func TestRecordFallbackRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	a, b := rec(0), rec(1)
	a.FullRunFallback = true
	if err := j.Append(a); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(b); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || !recs[0].FullRunFallback || recs[1].FullRunFallback {
		t.Fatalf("records after reopen: %+v", recs)
	}
}

// TestFingerprintDiff: Diff names exactly the differing fields with
// expected-vs-got values, and is empty for equal fingerprints.
func TestFingerprintDiff(t *testing.T) {
	a := testFP()
	if d := a.Diff(a); d != "" {
		t.Fatalf("equal fingerprints diff = %q", d)
	}
	b := a
	b.Seed = 99
	b.Model = "mem-addr"
	d := a.Diff(b)
	if want := "seed: want 7, got 99"; !strings.Contains(d, want) {
		t.Fatalf("diff %q missing %q", d, want)
	}
	if want := "model: want dest-value, got mem-addr"; !strings.Contains(d, want) {
		t.Fatalf("diff %q missing %q", d, want)
	}
	if strings.Contains(d, "kernel") || strings.Contains(d, "sites") {
		t.Fatalf("diff %q names fields that match", d)
	}
}

// TestMismatchErrorsNameFields: the Open and Merge fingerprint-mismatch
// errors spell out the offending fields, not just "mismatch".
func TestMismatchErrorsNameFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.journal")
	j, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	fp := testFP()
	fp.Stride = 4
	_, err = Open(path, fp)
	if !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("err = %v", err)
	}
	if want := "stride: want 4, got 2"; !strings.Contains(err.Error(), want) {
		t.Fatalf("open error %q missing %q", err, want)
	}

	other := filepath.Join(dir, "other.journal")
	ofp := testFP()
	ofp.Kernel = "MVT K1"
	oj, err := Open(other, ofp)
	if err != nil {
		t.Fatal(err)
	}
	oj.Close()
	_, _, err = Merge([]string{path, other}, true)
	if !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("merge err = %v", err)
	}
	if want := "kernel: want GEMM K1, got MVT K1"; !strings.Contains(err.Error(), want) {
		t.Fatalf("merge error %q missing %q", err, want)
	}
}

// TestRepeatedTornTailRecovery: the crash-recover-crash sequence the
// truncate fsync exists for. Each generation appends records, tears the
// tail (as a kill -9 mid-write would), and reopens; every surviving record
// of every generation must decode, and the file must end exactly at the
// last whole frame — no bytes of any torn tail may outlive its truncation.
func TestRepeatedTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	next := 0
	for gen := 0; gen < 3; gen++ {
		j, err := Open(path, testFP())
		if err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		if got := len(j.Replayed()); got != next {
			t.Fatalf("gen %d: replayed %d records, want %d", gen, got, next)
		}
		for i := 0; i < 2; i++ {
			if err := j.Append(rec(next)); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Tear: a partial frame header plus garbage payload bytes.
		torn := append(data, 0x21, 0x00, 0x00, 0x00, 0xde, 0xad)
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	j, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := j.Replayed()
	if len(got) != next {
		t.Fatalf("replayed %d records after 3 torn generations, want %d", len(got), next)
	}
	for i, r := range got {
		if r != rec(i) {
			t.Fatalf("record %d = %+v, want %+v", i, r, rec(i))
		}
	}
	// The recovered file must be exactly the valid frames: scan consumes
	// everything.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, goodEnd := scan(data); goodEnd != len(data) {
		t.Fatalf("file holds %d bytes past the last whole frame after recovery", len(data)-goodEnd)
	}
}

// TestAutoSyncDurable: with AutoSync every append batch is flushed without
// Close — the records must be fully framed on disk mid-session, and the
// cadence must not disturb what a reader decodes.
func TestAutoSyncDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.AutoSync(2)
	for i := 0; i < 5; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Without closing: every appended record is a whole frame on disk.
	_, recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("mid-session read: %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r != rec(i) {
			t.Fatalf("record %d = %+v, want %+v", i, r, rec(i))
		}
	}
}

// TestSnapshotLiveRead: KeepRecords + Snapshot serve a live reader a
// consistent prefix while writers append concurrently, and the final
// snapshot equals replayed followed by appended records.
func TestSnapshotLiveRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j, err = Open(path, testFP())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.KeepRecords()

	const writers, perWriter = 4, 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // concurrent reader: snapshots only ever grow
		defer close(stop)
		last := 0
		for i := 0; i < 200; i++ {
			s := j.Snapshot()
			if len(s) < last {
				t.Errorf("snapshot shrank: %d -> %d", last, len(s))
				return
			}
			if len(s) > 0 && s[0] != rec(0) {
				t.Errorf("snapshot lost the replayed record: %+v", s[0])
				return
			}
			last = len(s)
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := j.Append(rec(1 + w*perWriter + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	<-stop

	s := j.Snapshot()
	if len(s) != 1+writers*perWriter {
		t.Fatalf("final snapshot has %d records, want %d", len(s), 1+writers*perWriter)
	}
	if s[0] != rec(0) {
		t.Fatalf("snapshot[0] = %+v, want the replayed record", s[0])
	}
	seen := map[int]bool{}
	for _, r := range s[1:] {
		if seen[r.Index] {
			t.Fatalf("snapshot holds record %d twice", r.Index)
		}
		seen[r.Index] = true
	}
}
