// Package journal implements the append-only write-ahead outcome journal
// behind durable, resumable injection campaigns. One record is written per
// completed fault site (its key, outcome, weight, fast-forward cost and —
// for quarantined sites — the engine error).
//
// # On-disk format
//
// A journal is a flat sequence of frames. Each frame is
//
//	[u32 payload length][u32 CRC32C of payload][JSON payload]
//
// with both header words little-endian and the CRC using the Castagnoli
// polynomial. Frame 0's payload is the campaign Fingerprint (the header);
// every following frame's payload is one Record. Appends write each frame
// with a single Write call, so a crash or kill -9 can only tear the final
// frame; on the next Open the scan stops at the first short, oversized or
// checksum-failing frame and truncates the file there (the torn-tail rule)
// — a torn tail costs at most one site's record, never the file. The header
// frame and the truncation are fsynced (the file, and on creation its
// directory entry), so a crash shortly after Open can neither lose the
// journal's birth nor resurrect bytes of a previously truncated tail under
// later appends; AutoSync additionally bounds how many acked records an
// unclean shutdown can lose.
//
// The journal opens against an engine fingerprint (kernel, scale, seed,
// model, warp, checkpoint stride, site count, shard); a journal written
// under a different fingerprint is rejected as stale rather than silently
// replayed into the wrong campaign, and the error spells out the differing
// fields (see Fingerprint.Diff).
//
// The caller contract is write-ahead in the outcome sense: a record is
// appended only after its site's outcome is final, so every replayed record
// can be skipped on resume and the resumed campaign's aggregate is
// bit-identical to an uninterrupted run. Records from distinct shards of one
// campaign are disjoint by construction and merge via Merge.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Fingerprint identifies the campaign a journal belongs to. Every field
// participates in staleness detection: replaying outcomes recorded under a
// different kernel, scale, seed, fault model, scheduler, checkpoint layout,
// site count or shard assignment would silently corrupt the resumed profile.
type Fingerprint struct {
	// Kernel is the target name ("GEMM K1").
	Kernel string `json:"kernel"`
	// Scale is the kernel geometry ("small", "paper").
	Scale string `json:"scale,omitempty"`
	// Seed is the site-sampling seed.
	Seed int64 `json:"seed"`
	// Model is the fault model name (fault.Model.String()).
	Model string `json:"model"`
	// Warp is the SIMT lockstep width (0 = serial interleaving).
	Warp int `json:"warp,omitempty"`
	// Stride is the checkpoint stride (0 = auto).
	Stride int `json:"stride,omitempty"`
	// IntraStride is the intra-CTA checkpoint stride (0 = auto, negative =
	// disabled). Journals written before the field existed decode to 0,
	// which matches the auto default — sound either way, since intra-CTA
	// resume is bit-identical to the full run by construction.
	IntraStride int `json:"intra_stride,omitempty"`
	// FullRun records whether the fast-forward engine was disabled.
	FullRun bool `json:"full_run,omitempty"`
	// Sites is the total campaign size across all shards.
	Sites int `json:"sites"`
	// ShardIndex / ShardCount locate this journal's shard. An unsharded
	// campaign is shard 0 of 1.
	ShardIndex int `json:"shard_index"`
	ShardCount int `json:"shard_count"`
}

// String renders the fingerprint for error messages.
func (f Fingerprint) String() string {
	return fmt.Sprintf("%s/%s seed=%d model=%s warp=%d stride=%d intra=%d fullrun=%v sites=%d shard=%d/%d",
		f.Kernel, f.Scale, f.Seed, f.Model, f.Warp, f.Stride, f.IntraStride, f.FullRun,
		f.Sites, f.ShardIndex, f.ShardCount)
}

// SameCampaign reports whether two fingerprints describe shards of the same
// campaign (everything equal except the shard index).
func (f Fingerprint) SameCampaign(o Fingerprint) bool {
	f.ShardIndex, o.ShardIndex = 0, 0
	return f == o
}

// Diff lists the fields on which f (the expected fingerprint) and o (the
// one actually found) disagree, as "field: want X, got Y" clauses — the
// actionable part of a mismatch error. Returns "" when the fingerprints are
// equal.
func (f Fingerprint) Diff(o Fingerprint) string {
	var parts []string
	add := func(field string, want, got any) {
		if want != got {
			parts = append(parts, fmt.Sprintf("%s: want %v, got %v", field, want, got))
		}
	}
	add("kernel", f.Kernel, o.Kernel)
	add("scale", f.Scale, o.Scale)
	add("seed", f.Seed, o.Seed)
	add("model", f.Model, o.Model)
	add("warp", f.Warp, o.Warp)
	add("stride", f.Stride, o.Stride)
	add("intra_stride", f.IntraStride, o.IntraStride)
	add("full_run", f.FullRun, o.FullRun)
	add("sites", f.Sites, o.Sites)
	add("shard_index", f.ShardIndex, o.ShardIndex)
	add("shard_count", f.ShardCount, o.ShardCount)
	return strings.Join(parts, "; ")
}

// Record is one completed fault site. Field names are shortened because a
// paper-scale campaign journals tens of thousands of records.
type Record struct {
	// Index is the site's input-order index in the campaign site list.
	Index int `json:"i"`
	// Thread, DynInst, Bit are the site key, stored redundantly with Index
	// so a resumed campaign can verify the journal matches its site list.
	Thread  int   `json:"t"`
	DynInst int64 `json:"d"`
	Bit     int   `json:"b"`
	// Outcome is the numeric fault.Outcome.
	Outcome uint8 `json:"o"`
	// Weight is the site's population weight, carried so a merge can
	// rebuild the weighted distribution without re-deriving the site list.
	Weight float64 `json:"w"`
	// CTAsSkipped, EarlyExit and IntraResumed are the run's fast-forward
	// cost stats (IntraResumed marks a run resumed from an intra-CTA
	// snapshot, skipping the injected CTA's fault-free prefix).
	CTAsSkipped  int64 `json:"cs,omitempty"`
	EarlyExit    bool  `json:"ee,omitempty"`
	IntraResumed bool  `json:"ir,omitempty"`
	// FullRunFallback marks a run that bypassed the checkpoint store because
	// its fault model is not fast-forward sound.
	FullRunFallback bool `json:"fb,omitempty"`
	// Attempts is how many executions the outcome took (>1 after retries).
	Attempts int `json:"a,omitempty"`
	// Err is the recorded engine error of a quarantined site.
	Err string `json:"e,omitempty"`
}

// Journal errors.
var (
	// ErrFingerprintMismatch reports a journal recorded under a different
	// engine fingerprint (stale journal, or the wrong file).
	ErrFingerprintMismatch = errors.New("journal: fingerprint mismatch")
	// ErrCorrupt reports a journal whose prefix (not merely its tail) cannot
	// be decoded.
	ErrCorrupt = errors.New("journal: corrupt")
	// ErrClosed reports an append to a closed journal.
	ErrClosed = errors.New("journal: closed")
)

// crcTable is the Castagnoli polynomial, the standard choice for storage
// framing.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxFrame bounds a single record's payload; anything larger in a frame
// header means the header bytes are garbage, not a record.
const maxFrame = 1 << 20

// Journal is an open, appendable outcome journal. Append is safe for
// concurrent use by campaign workers.
type Journal struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	fp        Fingerprint
	replayed  []Record
	appended  int
	closed    bool
	keep      bool
	kept      []Record
	syncEvery int
	sinceSync int
}

// frame wraps payload with its length + CRC32C header.
func frame(payload []byte) []byte {
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, crcTable))
	copy(buf[8:], payload)
	return buf
}

// scan walks CRC frames in data, returning the decoded payloads and the
// offset of the first byte past the last whole, checksum-valid frame. A
// short, oversized or checksum-failing frame ends the scan (torn tail).
func scan(data []byte) (payloads [][]byte, goodEnd int) {
	off := 0
	for {
		if len(data)-off < 8 {
			return payloads, off
		}
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxFrame || off+8+int(n) > len(data) {
			return payloads, off
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.Checksum(payload, crcTable) != crc {
			return payloads, off
		}
		payloads = append(payloads, payload)
		off += 8 + int(n)
	}
}

// decode parses a scanned journal image: fingerprint header frame followed
// by record frames.
func decode(payloads [][]byte) (Fingerprint, []Record, error) {
	var fp Fingerprint
	if len(payloads) == 0 {
		return fp, nil, fmt.Errorf("%w: no fingerprint header survived", ErrCorrupt)
	}
	if err := json.Unmarshal(payloads[0], &fp); err != nil {
		return fp, nil, fmt.Errorf("%w: fingerprint header: %v", ErrCorrupt, err)
	}
	recs := make([]Record, 0, len(payloads)-1)
	for _, p := range payloads[1:] {
		var r Record
		if err := json.Unmarshal(p, &r); err != nil {
			return fp, nil, fmt.Errorf("%w: record %d: %v", ErrCorrupt, len(recs), err)
		}
		recs = append(recs, r)
	}
	return fp, recs, nil
}

// Open opens (or creates) the journal at path for the campaign described by
// fp. A new file gets a fingerprint header; an existing file must carry an
// identical fingerprint or Open fails with ErrFingerprintMismatch. Complete
// records already on disk are available via Replayed; a torn tail (crash or
// kill -9 mid-write) is truncated. The returned journal is positioned for
// appending.
func Open(path string, fp Fingerprint) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{f: f, path: path, fp: fp}

	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: read %s: %w", path, err)
	}
	if len(data) == 0 {
		payload, err := json.Marshal(fp)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: %w", err)
		}
		if _, err := f.Write(frame(payload)); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: write header: %w", err)
		}
		// A journal only exists to survive crashes, so its birth must too:
		// flush the header and the directory entry before reporting the file
		// open, or a crash could leave a journal that Open once acknowledged
		// but that has no header (ErrCorrupt) — or no file at all.
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: sync header: %w", err)
		}
		if err := syncDir(path); err != nil {
			f.Close()
			return nil, err
		}
		return j, nil
	}

	payloads, goodEnd := scan(data)
	have, recs, err := decode(payloads)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if have != fp {
		f.Close()
		return nil, fmt.Errorf("%w: %s was recorded for a different campaign (%s)",
			ErrFingerprintMismatch, path, fp.Diff(have))
	}
	if goodEnd < len(data) {
		// Torn tail: drop the partial frame so the next append starts on a
		// clean boundary — and force the truncation to stable storage. An
		// unsynced truncate followed by appends and a crash could resurrect
		// bytes of the torn frame in the middle of the file, turning a
		// one-record tail loss into a corrupt prefix that costs every record
		// after it.
		if err := f.Truncate(int64(goodEnd)); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: truncate torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: sync truncated %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(goodEnd), io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.replayed = recs
	return j, nil
}

// syncDir flushes the directory entry of path, making a freshly created
// file durable (fsync of a file does not persist its directory entry).
func syncDir(path string) error {
	dir := filepath.Dir(path)
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: sync dir %s: %w", dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("journal: sync dir %s: %w", dir, err)
	}
	return nil
}

// Replayed returns the records that were already complete on disk when the
// journal was opened, in on-disk order.
func (j *Journal) Replayed() []Record { return j.replayed }

// KeepRecords makes the journal retain every record appended from now on,
// so Snapshot can serve live readers (a status endpoint polling an open
// journal) without re-reading the file under the writers. Replayed records
// are always retained. Call it before handing the journal to a campaign.
func (j *Journal) KeepRecords() {
	j.mu.Lock()
	j.keep = true
	j.mu.Unlock()
}

// Snapshot returns a copy of every record the journal knows: the records
// replayed at Open plus — after KeepRecords — the records appended since,
// in on-disk order. Safe for concurrent use with Append.
func (j *Journal) Snapshot() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Record, 0, len(j.replayed)+len(j.kept))
	out = append(out, j.replayed...)
	out = append(out, j.kept...)
	return out
}

// AutoSync makes every n-th Append flush the file to stable storage, a
// middle ground between syncing nothing until Close (a crash loses every
// acked record since open) and paying an fsync per record. n <= 0 disables
// periodic flushing. The long-lived campaign service runs with a small n;
// the batch CLIs keep the default (sync on Close only) since their records
// are cheap to recompute.
func (j *Journal) AutoSync(n int) {
	j.mu.Lock()
	j.syncEvery = n
	j.sinceSync = 0
	j.mu.Unlock()
}

// Fingerprint returns the campaign fingerprint the journal was opened with.
func (j *Journal) Fingerprint() Fingerprint { return j.fp }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Count returns the total number of site records in the journal: replayed
// plus appended this session. Safe for concurrent use.
func (j *Journal) Count() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.replayed) + j.appended
}

// Append writes one completed-site record. The frame is written with a
// single Write call, so a crash can only tear the final record — which the
// next Open truncates.
func (j *Journal) Append(r Record) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if _, err := j.f.Write(frame(payload)); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	j.appended++
	if j.keep {
		j.kept = append(j.kept, r)
	}
	if j.syncEvery > 0 {
		j.sinceSync++
		if j.sinceSync >= j.syncEvery {
			j.sinceSync = 0
			if err := j.f.Sync(); err != nil {
				return fmt.Errorf("journal: sync: %w", err)
			}
		}
	}
	return nil
}

// Sync flushes the journal to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.f.Sync()
}

// Close syncs and closes the journal. Further appends fail with ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadFile reads a journal without opening it for append, tolerating a torn
// tail. Used by the merge tooling.
func ReadFile(path string) (Fingerprint, []Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Fingerprint{}, nil, fmt.Errorf("journal: %w", err)
	}
	payloads, _ := scan(data)
	fp, recs, err := decode(payloads)
	if err != nil {
		return fp, nil, fmt.Errorf("%s: %w", path, err)
	}
	return fp, recs, nil
}

// Merge reads N shard journals of one campaign and returns the campaign
// fingerprint (with ShardIndex cleared) and all records sorted by site
// index. It validates that every journal carries the same campaign
// fingerprint, that shard indices are within range and not duplicated, that
// no site index is recorded twice, and — unless allowPartial — that every
// shard is present and every one of the fingerprint's sites has a record.
func Merge(paths []string, allowPartial bool) (Fingerprint, []Record, error) {
	if len(paths) == 0 {
		return Fingerprint{}, nil, errors.New("journal: no journals to merge")
	}
	var base Fingerprint
	var all []Record
	owner := map[int]string{}     // site index -> journal path
	shardSeen := map[int]string{} // shard index -> journal path
	for n, path := range paths {
		fp, recs, err := ReadFile(path)
		if err != nil {
			return base, nil, err
		}
		if n == 0 {
			base = fp
			base.ShardIndex = 0
		} else if !fp.SameCampaign(base) {
			// A model mismatch gets its own message: mixing fault models is
			// the likeliest operator slip, and "model: want X, got Y" buried
			// in a field diff under-sells that the outcomes are incomparable.
			if fp.Model != base.Model {
				return base, nil, fmt.Errorf("%w: %s was recorded under fault model %q but %s under %q; shards of one campaign must share a model",
					ErrFingerprintMismatch, paths[0], base.Model, path, fp.Model)
			}
			want, got := base, fp
			want.ShardIndex, got.ShardIndex = 0, 0
			return base, nil, fmt.Errorf("%w: %s and %s are not shards of one campaign (%s)",
				ErrFingerprintMismatch, paths[0], path, want.Diff(got))
		}
		if fp.ShardCount < 1 || fp.ShardIndex < 0 || fp.ShardIndex >= fp.ShardCount {
			return base, nil, fmt.Errorf("journal: %s: shard %d/%d out of range",
				path, fp.ShardIndex, fp.ShardCount)
		}
		if prev, dup := shardSeen[fp.ShardIndex]; dup {
			return base, nil, fmt.Errorf("journal: shard %d appears in both %s and %s",
				fp.ShardIndex, prev, path)
		}
		shardSeen[fp.ShardIndex] = path
		for _, r := range recs {
			if r.Index < 0 || r.Index >= fp.Sites {
				return base, nil, fmt.Errorf("journal: %s: site index %d out of range [0,%d)",
					path, r.Index, fp.Sites)
			}
			if prev, dup := owner[r.Index]; dup {
				return base, nil, fmt.Errorf("journal: site %d recorded by both %s and %s",
					r.Index, prev, path)
			}
			owner[r.Index] = path
			all = append(all, r)
		}
	}
	if !allowPartial {
		if len(shardSeen) != base.ShardCount {
			return base, nil, fmt.Errorf("journal: %d of %d shards present (pass every shard journal, or allow a partial merge)",
				len(shardSeen), base.ShardCount)
		}
		if len(all) != base.Sites {
			return base, nil, fmt.Errorf("journal: %d of %d sites recorded (campaign incomplete; resume the missing shards, or allow a partial merge)",
				len(all), base.Sites)
		}
	}
	// Input-order aggregation downstream depends on index order, so the
	// merged stream is sorted — completion order within a shard is
	// scheduling-dependent and must not leak into the profile.
	sort.Slice(all, func(a, b int) bool { return all[a].Index < all[b].Index })
	return base, all, nil
}

// Attributed prepares a journal's records for per-thread / per-instruction
// analysis: it validates each record's site index and key fields against
// the fingerprint, rejects duplicate indices, and returns the records
// sorted by campaign index — a single journal's on-disk order is completion
// order, which is scheduling-dependent and must not leak into downstream
// aggregation. With requireComplete, every one of the fingerprint's sites
// must be present (the advisor cannot rank from a partial campaign without
// biasing toward whichever sites happened to finish first).
//
// The records' redundant Thread/DynInst/Bit fields are the attribution
// payload: they let a reader reconstruct which thread and dynamic
// instruction each outcome belongs to without re-deriving the site list
// from the sampling seed.
func Attributed(fp Fingerprint, recs []Record, requireComplete bool) ([]Record, error) {
	if fp.Sites <= 0 {
		return nil, fmt.Errorf("journal: fingerprint declares %d sites", fp.Sites)
	}
	out := make([]Record, len(recs))
	copy(out, recs)
	seen := make(map[int]struct{}, len(out))
	for _, r := range out {
		if r.Index < 0 || r.Index >= fp.Sites {
			return nil, fmt.Errorf("journal: site index %d out of range [0,%d)", r.Index, fp.Sites)
		}
		if _, dup := seen[r.Index]; dup {
			return nil, fmt.Errorf("journal: site %d recorded twice", r.Index)
		}
		seen[r.Index] = struct{}{}
		if r.Thread < 0 || r.DynInst < 0 || r.Bit < 0 {
			return nil, fmt.Errorf("journal: site %d carries a negative key (%d,%d,%d)",
				r.Index, r.Thread, r.DynInst, r.Bit)
		}
	}
	if requireComplete && len(out) != fp.Sites {
		return nil, fmt.Errorf("journal: %d of %d sites recorded (campaign incomplete)",
			len(out), fp.Sites)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	return out, nil
}
