// Package textplot renders the small set of plot shapes the paper's figures
// use — boxplots (Figs. 2-4) and log-scale bar charts (Fig. 10) — as plain
// text, so cmd/experiments emits something readable as a figure and not
// only tables.
package textplot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/stats"
)

// Boxplots renders one horizontal boxplot per row, all sharing a common
// scale. Each row shows whiskers (min..max), the interquartile box, and the
// median marker:
//
//	C0  |   ├────▓▓▓▓┃▓▓▓▓▓▓┤        | G-1
//
// width is the plot area in characters (minimum 20).
func Boxplots(w io.Writer, labels []string, boxes []stats.Boxplot, tags []string, width int) {
	if width < 20 {
		width = 20
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range boxes {
		if b.N == 0 {
			continue
		}
		lo = math.Min(lo, b.Min)
		hi = math.Max(hi, b.Max)
	}
	if math.IsInf(lo, 1) {
		fmt.Fprintln(w, "(no data)")
		return
	}
	if hi == lo {
		hi = lo + 1
	}
	scale := func(v float64) int {
		p := int(math.Round((v - lo) / (hi - lo) * float64(width-1)))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}

	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, b := range boxes {
		row := make([]rune, width)
		for j := range row {
			row[j] = ' '
		}
		if b.N > 0 {
			minP, q1P := scale(b.Min), scale(b.Q1)
			medP, q3P, maxP := scale(b.Median), scale(b.Q3), scale(b.Max)
			for j := minP; j <= maxP; j++ {
				row[j] = '─'
			}
			for j := q1P; j <= q3P; j++ {
				row[j] = '▓'
			}
			row[minP] = '├'
			row[maxP] = '┤'
			row[medP] = '┃'
		}
		tag := ""
		if i < len(tags) {
			tag = " " + tags[i]
		}
		fmt.Fprintf(w, "%-*s |%s|%s\n", labelW, labels[i], string(row), tag)
	}
	fmt.Fprintf(w, "%-*s  %-*.4g%*.4g\n", labelW, "", width/2, lo, width-width/2, hi)
}

// LogBars renders one bar per value on a log10 scale, labelled with the raw
// value — the shape of the paper's Fig. 10 normalized fault-site bars.
// Values must be positive; zero or negative values render empty.
func LogBars(w io.Writer, labels []string, values []float64, width int) {
	if width < 20 {
		width = 20
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v > 0 {
			lo = math.Min(lo, math.Log10(v))
			hi = math.Max(hi, math.Log10(v))
		}
	}
	if math.IsInf(lo, 1) {
		fmt.Fprintln(w, "(no data)")
		return
	}
	// Anchor the axis at least one decade below the smallest value so
	// every bar is visible.
	lo = math.Floor(lo) - 1
	if hi <= lo {
		hi = lo + 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, v := range values {
		n := 0
		if v > 0 {
			n = int(math.Round((math.Log10(v) - lo) / (hi - lo) * float64(width)))
			if n < 1 {
				n = 1
			}
			if n > width {
				n = width
			}
		}
		fmt.Fprintf(w, "%-*s |%s%s %.3g\n", labelW, labels[i],
			strings.Repeat("█", n), strings.Repeat(" ", width-n), v)
	}
}

// Curve renders an x/y curve as a character grid — the shape of a
// resilience-vs-cost frontier. Points are plotted with '●' and joined
// visually by their density; the y axis is labelled at top and bottom,
// the x axis with its min and max. width is the plot area in characters
// (minimum 20), height in rows (minimum 5).
func Curve(w io.Writer, xs, ys []float64, width, height int, xLabel, yLabel string) {
	if len(xs) == 0 || len(xs) != len(ys) {
		fmt.Fprintln(w, "(no data)")
		return
	}
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	xLo, xHi := xs[0], xs[0]
	yLo, yHi := ys[0], ys[0]
	for i := range xs {
		xLo, xHi = math.Min(xLo, xs[i]), math.Max(xHi, xs[i])
		yLo, yHi = math.Min(yLo, ys[i]), math.Max(yHi, ys[i])
	}
	if xHi == xLo {
		xHi = xLo + 1
	}
	if yHi == yLo {
		yHi = yLo + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	clamp := func(p, n int) int {
		if p < 0 {
			return 0
		}
		if p >= n {
			return n - 1
		}
		return p
	}
	for i := range xs {
		col := clamp(int(math.Round((xs[i]-xLo)/(xHi-xLo)*float64(width-1))), width)
		row := clamp(int(math.Round((yHi-ys[i])/(yHi-yLo)*float64(height-1))), height)
		grid[row][col] = '●'
	}
	labelW := len(fmt.Sprintf("%.4g", yHi))
	if n := len(fmt.Sprintf("%.4g", yLo)); n > labelW {
		labelW = n
	}
	fmt.Fprintf(w, "%s\n", yLabel)
	for r, row := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%.4g", yHi)
		case height - 1:
			label = fmt.Sprintf("%.4g", yLo)
		}
		fmt.Fprintf(w, "%*s |%s\n", labelW, label, string(row))
	}
	fmt.Fprintf(w, "%*s +%s\n", labelW, "", strings.Repeat("─", width))
	fmt.Fprintf(w, "%*s  %-*.4g%*.4g  %s\n", labelW, "", width/2, xLo, width-width/2, xHi, xLabel)
}
