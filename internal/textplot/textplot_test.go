package textplot_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/textplot"
)

func TestBoxplots(t *testing.T) {
	var buf bytes.Buffer
	boxes := []stats.Boxplot{
		stats.NewBoxplot([]float64{0, 10, 20, 30, 40}),
		stats.NewBoxplot([]float64{35, 38, 40}),
	}
	textplot.Boxplots(&buf, []string{"C0", "C1"}, boxes, []string{"G-1", "G-2"}, 40)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // two rows + axis
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	for _, want := range []string{"├", "┤", "┃", "▓", "G-1", "G-2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// The wide distribution's whisker starts left of the narrow one's.
	if strings.Index(lines[0], "├") >= strings.Index(lines[1], "├") {
		t.Fatalf("scaling broken:\n%s", out)
	}
}

func TestBoxplotsDegenerate(t *testing.T) {
	var buf bytes.Buffer
	textplot.Boxplots(&buf, []string{"x"}, []stats.Boxplot{{}}, nil, 30)
	if !strings.Contains(buf.String(), "(no data)") {
		t.Fatalf("empty input: %q", buf.String())
	}
	buf.Reset()
	// All-equal values: must not divide by zero; the whole plot collapses
	// to the median marker.
	textplot.Boxplots(&buf, []string{"x"}, []stats.Boxplot{
		stats.NewBoxplot([]float64{5, 5, 5}),
	}, nil, 30)
	if !strings.Contains(buf.String(), "┃") {
		t.Fatalf("constant data: %q", buf.String())
	}
}

func TestLogBars(t *testing.T) {
	var buf bytes.Buffer
	textplot.LogBars(&buf, []string{"exhaustive", "thread", "bit"},
		[]float64{1e6, 1e4, 500}, 40)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	count := func(s string) int { return strings.Count(s, "█") }
	if !(count(lines[0]) > count(lines[1]) && count(lines[1]) > count(lines[2])) {
		t.Fatalf("bars not ordered:\n%s", out)
	}
	if count(lines[2]) < 1 {
		t.Fatalf("smallest bar invisible:\n%s", out)
	}
	for _, want := range []string{"1e+06", "500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing value label %q:\n%s", want, out)
		}
	}
}

func TestLogBarsDegenerate(t *testing.T) {
	var buf bytes.Buffer
	textplot.LogBars(&buf, []string{"z"}, []float64{0}, 30)
	if !strings.Contains(buf.String(), "(no data)") {
		t.Fatalf("zero-only input: %q", buf.String())
	}
}

func TestCurve(t *testing.T) {
	var buf bytes.Buffer
	xs := []float64{0, 10, 20, 30, 40}
	ys := []float64{60, 30, 15, 5, 0}
	textplot.Curve(&buf, xs, ys, 40, 8, "overhead %", "sdc %")
	out := buf.String()
	if strings.Count(out, "●") != len(xs) {
		t.Fatalf("want %d plotted points:\n%s", len(xs), out)
	}
	for _, want := range []string{"sdc %", "overhead %", "60", "0", "40"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// The first point is the top-left extreme, the last the bottom-right:
	// the first plot row must hold a point left of the last row's point.
	lines := strings.Split(out, "\n")
	first := strings.IndexRune(lines[1], '●')
	last := -1
	for _, l := range lines {
		if i := strings.IndexRune(l, '●'); i >= 0 {
			last = i
		}
	}
	if first < 0 || last <= first {
		t.Fatalf("curve does not descend left-to-right (first %d, last %d):\n%s", first, last, out)
	}
}

func TestCurveDegenerate(t *testing.T) {
	var buf bytes.Buffer
	textplot.Curve(&buf, nil, nil, 40, 8, "x", "y")
	if !strings.Contains(buf.String(), "(no data)") {
		t.Fatalf("empty input: %q", buf.String())
	}
	buf.Reset()
	// A single point must not divide by zero.
	textplot.Curve(&buf, []float64{1}, []float64{1}, 40, 8, "x", "y")
	if !strings.Contains(buf.String(), "●") {
		t.Fatalf("single point not plotted: %q", buf.String())
	}
}
