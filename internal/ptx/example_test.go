package ptx_test

import (
	"fmt"

	"repro/internal/ptx"
)

// ExampleAssemble shows the PTXPlus dialect round-tripping through the
// assembler and disassembler.
func ExampleAssemble() {
	prog, err := ptx.Assemble("axpy", `
		cvt.u32.u16 $r0, %tid.x
		shl.u32 $r1, $r0, 0x00000002
		ld.global.f32 $r2, [$r1]
		mad.f32 $r2, $r2, 0f40000000, $r2   // x = 2x + x
		st.global.f32 [$r1], $r2
		exit
	`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(prog)
	// Output:
	// cvt.u32.u16 $r0, %tid.x
	// shl.u32 $r1, $r0, 0x00000002
	// ld.global.f32 $r2, [$r1]
	// mad.f32 $r2, $r2, 0x40000000, $r2
	// st.global.f32 [$r1], $r2
	// exit
}

// ExampleAssemble_errors shows positioned parse errors.
func ExampleAssemble_errors() {
	_, err := ptx.Assemble("bad", "mov.u32 $r1, 1\nfrobnicate $r1")
	fmt.Println(err)
	// Output:
	// ptx: bad:2: unknown opcode "frobnicate"
}
