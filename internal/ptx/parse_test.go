package ptx

import (
	"math"
	"strings"
	"testing"

	"repro/internal/isa"
)

// one parses a single-instruction program.
func one(t *testing.T, line string) isa.Instruction {
	t.Helper()
	p, err := Assemble("t", line)
	if err != nil {
		t.Fatalf("assemble %q: %v", line, err)
	}
	if len(p.Instrs) != 1 {
		t.Fatalf("got %d instructions", len(p.Instrs))
	}
	return p.Instrs[0]
}

func TestParseBasicALU(t *testing.T) {
	in := one(t, "add.u32 $r3, -$r3, 0x00000100")
	if in.Op != isa.OpAdd || in.DType != isa.TypeU32 {
		t.Fatalf("bad mnemonic: %+v", in)
	}
	if in.Dst.Reg != (isa.Reg{Class: isa.RegGPR, Index: 3}) {
		t.Fatalf("bad dst: %+v", in.Dst)
	}
	if !in.Srcs[0].Neg {
		t.Fatal("negation lost")
	}
	if in.Srcs[1].Kind != isa.OpdImm || in.Srcs[1].Imm != 0x100 {
		t.Fatalf("bad immediate: %+v", in.Srcs[1])
	}
}

func TestParseWideHalves(t *testing.T) {
	in := one(t, "mad.wide.u16 $r4, $r1.hi, $r3.lo, $r4")
	if !in.Wide || in.SType != isa.TypeU16 {
		t.Fatalf("wide/type lost: %+v", in)
	}
	if in.Srcs[0].Half != isa.HalfHi || in.Srcs[1].Half != isa.HalfLo {
		t.Fatalf("halves lost: %+v", in.Srcs)
	}
}

func TestParseDualDest(t *testing.T) {
	in := one(t, "set.eq.s32.s32 $p0/$o127, $r6, $r1")
	if in.Cmp != isa.CmpEq || in.DType != isa.TypeS32 || in.SType != isa.TypeS32 {
		t.Fatalf("bad set: %+v", in)
	}
	if in.DstPred != (isa.Reg{Class: isa.RegPred, Index: 0}) {
		t.Fatalf("pred dest lost: %+v", in.DstPred)
	}
	if in.Dst.Reg.Index != isa.SinkReg {
		t.Fatalf("sink dest lost: %+v", in.Dst)
	}

	in = one(t, "and.b32 $p0|$o127, $r5, $r2")
	if in.Op != isa.OpAnd || !in.DstPred.Valid() {
		t.Fatalf("and dual dest: %+v", in)
	}
}

func TestParseGuardedBranch(t *testing.T) {
	p, err := Assemble("t", "@$p0.eq bra l0x00000228\nl0x00000228: exit")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Instrs[0]
	if !in.Guard.Active() || in.Guard.Cond != isa.CmpEq {
		t.Fatalf("guard lost: %+v", in.Guard)
	}
	if in.Op != isa.OpBra || in.Target != "l0x00000228" {
		t.Fatalf("branch lost: %+v", in)
	}
	p, err = Assemble("t", "@!$p1 bra somewhere\nsomewhere: exit")
	if err != nil {
		t.Fatal(err)
	}
	in = p.Instrs[0]
	if !in.Guard.Not || in.Guard.Reg.Index != 1 {
		t.Fatalf("negated guard: %+v", in.Guard)
	}
}

func TestParseMemRefs(t *testing.T) {
	in := one(t, "shl.u32 $r3, s[0x0010], 0x00000001")
	if in.Srcs[0].Space != isa.SpaceShared || in.Srcs[0].Imm != 0x10 || in.Srcs[0].BaseValid {
		t.Fatalf("shared direct: %+v", in.Srcs[0])
	}

	in = one(t, "min.s32 $r7, s[$ofs2+0x0040], $r8")
	src := in.Srcs[0]
	if src.Space != isa.SpaceShared || !src.BaseValid ||
		src.Reg != (isa.Reg{Class: isa.RegOfs, Index: 2}) || src.Imm != 0x40 {
		t.Fatalf("shared indirect: %+v", src)
	}

	in = one(t, "ld.global.u32 $r2, [$r2]")
	if in.Srcs[0].Space != isa.SpaceGlobal || !in.Srcs[0].BaseValid {
		t.Fatalf("bare global: %+v", in.Srcs[0])
	}

	in = one(t, "ld.global.f32 $r14, [$r12-0x0004]")
	if got := in.Srcs[0].Imm; got != 0xFFFFFFFC {
		t.Fatalf("negative offset = %#x", got)
	}

	in = one(t, "st.global.u32 [$r4], $r7")
	if in.Dst.Kind != isa.OpdMem || in.Srcs[0].Kind != isa.OpdReg {
		t.Fatalf("store shape: %+v", in)
	}

	in = one(t, "mov.u32 s[$ofs3+0x0440], $r2")
	if in.Dst.Kind != isa.OpdMem || in.Dst.Space != isa.SpaceShared {
		t.Fatalf("mov to shared: %+v", in.Dst)
	}
}

func TestParseImmediates(t *testing.T) {
	cases := []struct {
		lit  string
		want uint32
	}{
		{"0x000000ff", 0xFF},
		{"255", 255},
		{"-1", 0xFFFFFFFF},
		{"0f3F800000", 0x3F800000},
		{"1.5", math.Float32bits(1.5)},
	}
	for _, c := range cases {
		in := one(t, "mov.u32 $r1, "+c.lit)
		if in.Srcs[0].Imm != c.want {
			t.Errorf("imm %q = %#x, want %#x", c.lit, in.Srcs[0].Imm, c.want)
		}
	}
}

func TestParseSpecials(t *testing.T) {
	in := one(t, "cvt.u32.u16 $r1, %ctaid.x")
	if in.DType != isa.TypeU32 || in.SType != isa.TypeU16 {
		t.Fatalf("cvt types: %+v", in)
	}
	if in.Srcs[0].Reg != (isa.Reg{Class: isa.RegSpecial, Index: isa.SpecCtaidX}) {
		t.Fatalf("special: %+v", in.Srcs[0])
	}
}

func TestParseLabels(t *testing.T) {
	p, err := Assemble("t", `
		bra lend
		lmid: nop
		lend: exit
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["lmid"] != 1 || p.Labels["lend"] != 2 {
		t.Fatalf("labels: %v", p.Labels)
	}
}

func TestParseComments(t *testing.T) {
	p, err := Assemble("t", `
		// full-line comment
		nop   // trailing
		exit  # hash comment
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 2 {
		t.Fatalf("got %d instructions, want 2", len(p.Instrs))
	}
}

func TestParseBarRet(t *testing.T) {
	in := one(t, "bar.sync 0x00000000")
	if in.Op != isa.OpBar || in.Srcs[0].Imm != 0 {
		t.Fatalf("bar: %+v", in)
	}
	if one(t, "retp").Op != isa.OpRetp {
		t.Fatal("retp")
	}
	p, err := Assemble("t", "ssy l0\nl0: exit")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Op != isa.OpSsy {
		t.Fatal("ssy")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate $r1, $r2",                // unknown opcode
		"add.u32 $r999, $r1, $r2",            // register out of range
		"add.u32 $p9, $r1, $r2",              // predicate out of range
		"add.zzz $r1, $r2, $r3",              // unknown modifier
		"add.u32 $r1, s[0x10",                // unterminated memory ref
		"bra",                                // missing target
		"exit $r1",                           // operand on exit
		"@$r0.eq bra l",                      // guard on non-pred
		"lfoo:",                              // label without instruction
		"st.global.u32 $r1, $r2",             // store without memory dest
		"add.u32.s32.f32 $r1, $r2, $r3",      // too many types
		"mov.u32 $r1, 0xzz",                  // bad hex
		"add.u32 $r1, %tid.w",                // unknown special
		"ld.global.u32 $r1, x[$r2]",          // unknown space
		"mul.wide.u16 $r1, -$r2.lo, g[-$r3]", // negated mem base
	}
	for _, src := range bad {
		if _, err := Assemble("t", src); err == nil {
			t.Errorf("accepted bad source %q", src)
		}
	}
	if _, err := Assemble("t", ""); err == nil {
		t.Error("accepted empty program")
	}
	if _, err := Assemble("t", "l1: nop\nl1: exit"); err == nil {
		t.Error("accepted duplicate label")
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Assemble("prog", "nop\nbad.u32 $r1, $r2\n")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 2 || pe.Name != "prog" {
		t.Fatalf("position = %s:%d", pe.Name, pe.Line)
	}
	if !strings.Contains(pe.Error(), "prog:2") {
		t.Fatalf("message %q lacks position", pe.Error())
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble did not panic")
		}
	}()
	MustAssemble("bad", "not an instruction at all !!!")
}

// TestRoundTrip checks that disassembling and re-assembling a variety of
// instructions reproduces the identical program — the property the
// experiment reports rely on when they print kernel listings.
func TestRoundTrip(t *testing.T) {
	src := `
		cvt.u32.u16 $r0, %tid.x
		mad.lo.u32 $r1, $r1, $r2, $r0
		set.ge.u32.u32 $p0/$o127, $r0, $r3
		@$p0.ne bra lexit
		mul.wide.u16 $r4, $r1.lo, $r3.hi
		ld.global.f32 $r5, [$r4+0x0010]
		ld.shared.u32 $r6, s[$ofs1+0x0040]
		mad.f32 $r7, $r5, 0f3F000000, $r7
		st.global.f32 [$r4], $r7
		min.u32 $r8, $r8, $r9
		shr.s32 $r9, $r9, 0x00000002
		selp.u32 $r1, $r2, $r3, $p0
		bar.sync 0x00000000
		lexit: exit
	`
	p1, err := Assemble("rt", src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Assemble("rt", p1.String())
	if err != nil {
		t.Fatalf("reparse of disassembly failed: %v\n%s", err, p1.String())
	}
	if p1.String() != p2.String() {
		t.Fatalf("round trip diverged:\n--- first ---\n%s--- second ---\n%s",
			p1.String(), p2.String())
	}
	if len(p1.Instrs) != len(p2.Instrs) {
		t.Fatalf("instruction count changed: %d vs %d", len(p1.Instrs), len(p2.Instrs))
	}
}
