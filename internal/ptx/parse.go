// Package ptx assembles the PTXPlus-flavoured textual assembly used to write
// the reproduction's workload kernels into isa.Program values, and checks the
// structural invariants the simulator relies on.
//
// The accepted grammar is line-oriented:
//
//	line     := [label ":"] [guard] mnemonic [operand {"," operand}] [comment]
//	guard    := "@" ["!"] pred ["." cc]
//	mnemonic := opcode {"." modifier}
//	operand  := register | immediate | memref | identifier(branch target)
//	register := "$r"N[".lo"|".hi"] | "$p"N | "$ofs"N | "$o127" | "-"register | special
//	special  := "%tid.x" | "%ctaid.y" | "%ntid.x" | "%nctaid.x" | ...
//	immediate:= "0x"hex | decimal | "-"decimal | "0f"hexfloat | decimal"."frac
//	memref   := [space] "[" (imm | reg | reg "+" imm) "]"   with space in {g,s,c,l}
//
// Comments run from "//" or "#" to end of line. Blank lines are ignored.
// Example (paper Fig. 5 style):
//
//	shl.u32 $r3, s[0x0010], 0x00000001
//	mad.wide.u16 $r4, $r1.hi, $r3.lo, $r4
//	@$p0.eq bra l0x00000228
//	l0x00000228: nop
package ptx

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// ParseError reports an assembly failure with source position.
type ParseError struct {
	Name string // program name
	Line int    // 1-based source line
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ptx: %s:%d: %s", e.Name, e.Line, e.Msg)
}

// Assemble parses source into a validated program named name.
func Assemble(name, source string) (*isa.Program, error) {
	p := &isa.Program{Name: name, Labels: make(map[string]int)}
	for lineNo, raw := range strings.Split(source, "\n") {
		line := stripComment(raw)
		if strings.TrimSpace(line) == "" {
			continue
		}
		inst, err := parseLine(line)
		if err != nil {
			return nil, &ParseError{Name: name, Line: lineNo + 1, Msg: err.Error()}
		}
		inst.PC = len(p.Instrs)
		if inst.Label != "" {
			if _, dup := p.Labels[inst.Label]; dup {
				return nil, &ParseError{Name: name, Line: lineNo + 1,
					Msg: fmt.Sprintf("duplicate label %q", inst.Label)}
			}
			p.Labels[inst.Label] = inst.PC
		}
		p.Instrs = append(p.Instrs, inst)
	}
	if len(p.Instrs) == 0 {
		return nil, &ParseError{Name: name, Line: 0, Msg: "empty program"}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustAssemble is Assemble for statically known-good sources (kernel
// definitions); it panics on error.
func MustAssemble(name, source string) *isa.Program {
	p, err := Assemble(name, source)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(line string) string {
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "#"); i >= 0 {
		line = line[:i]
	}
	return line
}

func parseLine(line string) (isa.Instruction, error) {
	var inst isa.Instruction
	rest := strings.TrimSpace(line)

	// Optional "label:" prefix. A colon inside a token such as a label
	// reference cannot occur: labels are the only colon users.
	if i := strings.Index(rest, ":"); i >= 0 {
		label := strings.TrimSpace(rest[:i])
		if label == "" || strings.ContainsAny(label, " \t") {
			return inst, fmt.Errorf("malformed label in %q", line)
		}
		inst.Label = label
		rest = strings.TrimSpace(rest[i+1:])
		if rest == "" {
			return inst, fmt.Errorf("label %q without instruction (attach it to nop)", label)
		}
	}

	// Optional "@$pN.cc" guard.
	if strings.HasPrefix(rest, "@") {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return inst, fmt.Errorf("guard without instruction in %q", line)
		}
		g, err := parseGuard(fields[0])
		if err != nil {
			return inst, err
		}
		inst.Guard = g
		rest = strings.TrimSpace(fields[1])
	}

	// Mnemonic.
	fields := strings.SplitN(rest, " ", 2)
	if err := parseMnemonic(fields[0], &inst); err != nil {
		return inst, err
	}
	operands := ""
	if len(fields) == 2 {
		operands = strings.TrimSpace(fields[1])
	}
	if err := parseOperands(operands, &inst); err != nil {
		return inst, err
	}
	return inst, nil
}

func parseGuard(tok string) (isa.Guard, error) {
	var g isa.Guard
	s := strings.TrimPrefix(tok, "@")
	if strings.HasPrefix(s, "!") {
		g.Not = true
		s = s[1:]
	}
	// Split "$p0.eq" into register and condition.
	regPart := s
	if i := strings.LastIndex(s, "."); i >= 0 {
		if cc, ok := isa.CmpByName[s[i+1:]]; ok {
			g.Cond = cc
			regPart = s[:i]
		}
	}
	opd, err := parseRegister(regPart)
	if err != nil {
		return g, fmt.Errorf("bad guard %q: %v", tok, err)
	}
	if opd.Reg.Class != isa.RegPred {
		return g, fmt.Errorf("guard %q is not a predicate register", tok)
	}
	if g.Cond == isa.CmpNone && !g.Not {
		// Bare "@$p0" means "if set": treat as .ne (zero flag clear
		// means the comparison that produced it was true... PTXPlus
		// spells conditions explicitly; default to ne-of-zero-flag).
		g.Cond = isa.CmpNe
	}
	if g.Not && g.Cond == isa.CmpNone {
		g.Cond = isa.CmpNe
	}
	g.Reg = opd.Reg
	return g, nil
}

func parseMnemonic(m string, inst *isa.Instruction) error {
	parts := strings.Split(m, ".")
	op, ok := isa.OpcodeByName[parts[0]]
	if !ok {
		return fmt.Errorf("unknown opcode %q", parts[0])
	}
	inst.Op = op
	var types []isa.DataType
	var space isa.MemSpace
	for _, mod := range parts[1:] {
		switch mod {
		case "wide":
			inst.Wide = true
		case "half":
			inst.Half = true
		case "sat":
			inst.Sat = true
		case "lo":
			// mul.lo is the default 32-bit low multiply.
		case "global":
			space = isa.SpaceGlobal
		case "shared", "param":
			space = isa.SpaceShared
		case "const":
			space = isa.SpaceConst
		case "local":
			space = isa.SpaceLocal
		case "sync":
			// bar.sync
		case "uni":
			// bra.uni: uniform branch hint, no semantic difference here.
		default:
			if cc, ok := isa.CmpByName[mod]; ok && inst.Cmp == isa.CmpNone &&
				(inst.Op == isa.OpSet || inst.Op == isa.OpSetp || inst.Op == isa.OpSlct) {
				inst.Cmp = cc
				continue
			}
			if t, ok := typeByName(mod); ok {
				types = append(types, t)
				continue
			}
			return fmt.Errorf("unknown modifier %q in %q", mod, m)
		}
	}
	switch len(types) {
	case 0:
	case 1:
		inst.DType, inst.SType = types[0], types[0]
	case 2:
		inst.DType, inst.SType = types[0], types[1]
	default:
		return fmt.Errorf("too many type suffixes in %q", m)
	}
	// Record the space on a placeholder so operand parsing can default the
	// bare-bracket space for ld/st.
	inst.Dst.Space = space
	return nil
}

func typeByName(s string) (isa.DataType, bool) {
	switch s {
	case "u8":
		return isa.TypeU8, true
	case "u16":
		return isa.TypeU16, true
	case "u32":
		return isa.TypeU32, true
	case "u64":
		return isa.TypeU64, true
	case "s8":
		return isa.TypeS8, true
	case "s16":
		return isa.TypeS16, true
	case "s32":
		return isa.TypeS32, true
	case "s64":
		return isa.TypeS64, true
	case "b8":
		return isa.TypeB8, true
	case "b16":
		return isa.TypeB16, true
	case "b32":
		return isa.TypeB32, true
	case "f32":
		return isa.TypeF32, true
	case "f64":
		return isa.TypeF64, true
	case "pred":
		return isa.TypePred, true
	}
	return isa.TypeNone, false
}

func parseOperands(s string, inst *isa.Instruction) error {
	declaredSpace := inst.Dst.Space
	inst.Dst = isa.Operand{}

	var toks []string
	for _, t := range strings.Split(s, ",") {
		t = strings.TrimSpace(t)
		if t != "" {
			toks = append(toks, t)
		}
	}

	switch inst.Op {
	case isa.OpBra, isa.OpSsy:
		if len(toks) != 1 {
			return fmt.Errorf("%s needs one target label", inst.Op)
		}
		inst.Target = toks[0]
		return nil
	case isa.OpBar:
		if len(toks) != 1 {
			return fmt.Errorf("bar.sync needs one barrier id")
		}
		v, err := parseImmValue(toks[0])
		if err != nil {
			return err
		}
		inst.Srcs = []isa.Operand{isa.Imm(v)}
		return nil
	case isa.OpRet, isa.OpRetp, isa.OpExit, isa.OpNop:
		if len(toks) != 0 {
			return fmt.Errorf("%s takes no operands", inst.Op)
		}
		return nil
	}

	if len(toks) == 0 {
		return fmt.Errorf("%s needs operands", inst.Op)
	}

	// First token is the destination; it may be a dual "$p0/$o127" or
	// "$p1|$r1" form.
	dst := toks[0]
	if i := strings.IndexAny(dst, "/|"); i >= 0 && strings.HasPrefix(dst, "$p") {
		pr, err := parseRegister(dst[:i])
		if err != nil {
			return err
		}
		inst.DstPred = pr.Reg
		dst = dst[i+1:]
	}
	d, err := parseOperand(dst, declaredSpace)
	if err != nil {
		return fmt.Errorf("bad destination %q: %v", toks[0], err)
	}
	inst.Dst = d
	for _, t := range toks[1:] {
		o, err := parseOperand(t, declaredSpace)
		if err != nil {
			return fmt.Errorf("bad operand %q: %v", t, err)
		}
		inst.Srcs = append(inst.Srcs, o)
	}

	if inst.Op == isa.OpSt {
		// "st.global.u32 [$r2], $r3" parses the memory ref as Dst already.
		if inst.Dst.Kind != isa.OpdMem {
			return fmt.Errorf("st destination must be a memory reference")
		}
	}
	return nil
}

func parseOperand(tok string, declaredSpace isa.MemSpace) (isa.Operand, error) {
	switch {
	case strings.HasPrefix(tok, "$"), strings.HasPrefix(tok, "-$"), strings.HasPrefix(tok, "%"):
		return parseRegister(tok)
	case strings.Contains(tok, "["):
		return parseMemRef(tok, declaredSpace)
	default:
		v, err := parseImmValue(tok)
		if err != nil {
			return isa.Operand{}, err
		}
		return isa.Imm(v), nil
	}
}

func parseRegister(tok string) (isa.Operand, error) {
	var o isa.Operand
	o.Kind = isa.OpdReg
	s := tok
	if strings.HasPrefix(s, "-") {
		o.Neg = true
		s = s[1:]
	}
	if strings.HasSuffix(s, ".lo") {
		o.Half = isa.HalfLo
		s = strings.TrimSuffix(s, ".lo")
	} else if strings.HasSuffix(s, ".hi") {
		o.Half = isa.HalfHi
		s = strings.TrimSuffix(s, ".hi")
	}
	switch {
	case strings.HasPrefix(s, "%"):
		for i := 0; i < isa.NumSpecials; i++ {
			if isa.Special(i).Reg.String() == s {
				o.Reg = isa.Reg{Class: isa.RegSpecial, Index: uint8(i)}
				return o, nil
			}
		}
		return o, fmt.Errorf("unknown special register %q", tok)
	case s == "$o127":
		o.Reg = isa.Reg{Class: isa.RegGPR, Index: isa.SinkReg}
		return o, nil
	case strings.HasPrefix(s, "$ofs"):
		n, err := strconv.Atoi(s[4:])
		if err != nil || n < 0 || n >= isa.NumOfs {
			return o, fmt.Errorf("bad offset register %q", tok)
		}
		o.Reg = isa.Reg{Class: isa.RegOfs, Index: uint8(n)}
		return o, nil
	case strings.HasPrefix(s, "$r"):
		n, err := strconv.Atoi(s[2:])
		if err != nil || n < 0 || n >= isa.NumGPRs {
			return o, fmt.Errorf("bad register %q", tok)
		}
		o.Reg = isa.Reg{Class: isa.RegGPR, Index: uint8(n)}
		return o, nil
	case strings.HasPrefix(s, "$p"):
		n, err := strconv.Atoi(s[2:])
		if err != nil || n < 0 || n >= isa.NumPreds {
			return o, fmt.Errorf("bad predicate register %q", tok)
		}
		o.Reg = isa.Reg{Class: isa.RegPred, Index: uint8(n)}
		return o, nil
	}
	return o, fmt.Errorf("unrecognized register %q", tok)
}

func parseMemRef(tok string, declaredSpace isa.MemSpace) (isa.Operand, error) {
	var o isa.Operand
	o.Kind = isa.OpdMem
	open := strings.Index(tok, "[")
	if !strings.HasSuffix(tok, "]") {
		return o, fmt.Errorf("unterminated memory reference %q", tok)
	}
	prefix, inner := tok[:open], tok[open+1:len(tok)-1]
	switch prefix {
	case "":
		o.Space = declaredSpace
		if o.Space == isa.SpaceNone {
			o.Space = isa.SpaceGlobal
		}
	case "g":
		o.Space = isa.SpaceGlobal
	case "s":
		o.Space = isa.SpaceShared
	case "c":
		o.Space = isa.SpaceConst
	case "l":
		o.Space = isa.SpaceLocal
	default:
		return o, fmt.Errorf("unknown address space prefix %q", prefix)
	}
	// inner := imm | reg | reg+imm | reg-imm
	base := inner
	var immPart string
	var negImm bool
	if i := strings.IndexAny(inner[1:], "+-"); i >= 0 && strings.HasPrefix(inner, "$") {
		sep := inner[i+1]
		base, immPart = inner[:i+1], inner[i+2:]
		negImm = sep == '-'
	}
	if strings.HasPrefix(base, "$") {
		r, err := parseRegister(base)
		if err != nil {
			return o, err
		}
		if r.Neg || r.Half != isa.HalfNone {
			return o, fmt.Errorf("memory base register cannot be negated or half-selected in %q", tok)
		}
		o.Reg = r.Reg
		o.BaseValid = true
		if immPart != "" {
			v, err := parseImmValue(immPart)
			if err != nil {
				return o, err
			}
			if negImm {
				v = -v
			}
			o.Imm = v
		}
		return o, nil
	}
	v, err := parseImmValue(inner)
	if err != nil {
		return o, err
	}
	o.Imm = v
	return o, nil
}

// parseImmValue accepts 0x hex, decimal (optionally negative), PTX "0f"
// hex-encoded float32 bit patterns, and decimal float literals (stored as
// float32 bits).
func parseImmValue(tok string) (uint32, error) {
	s := strings.TrimSpace(tok)
	switch {
	case strings.HasPrefix(s, "0f"), strings.HasPrefix(s, "0F"):
		v, err := strconv.ParseUint(s[2:], 16, 32)
		if err != nil {
			return 0, fmt.Errorf("bad float immediate %q", tok)
		}
		return uint32(v), nil
	case strings.HasPrefix(s, "0x"), strings.HasPrefix(s, "0X"):
		v, err := strconv.ParseUint(s[2:], 16, 32)
		if err != nil {
			return 0, fmt.Errorf("bad hex immediate %q", tok)
		}
		return uint32(v), nil
	case strings.Contains(s, "."):
		f, err := strconv.ParseFloat(s, 32)
		if err != nil {
			return 0, fmt.Errorf("bad float immediate %q", tok)
		}
		return math.Float32bits(float32(f)), nil
	default:
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad immediate %q", tok)
		}
		return uint32(int32(v)), nil
	}
}
