package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/advisor"
	"repro/internal/fault"
	"repro/internal/report"
)

// Status is the body of GET /campaigns/{id}.
type Status struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Submission echoes the normalized campaign parameters (defaults
	// filled in), so the caller sees what actually runs.
	Submission Submission `json:"submission"`
	// OwnedSites is this shard's completion target; Completed counts
	// journaled sites toward it (live while running).
	OwnedSites int    `json:"owned_sites"`
	Completed  int    `json:"completed"`
	Error      string `json:"error,omitempty"`
	// Profile is the incremental outcome profile read from the journal —
	// partial while the campaign runs, final once done. Omitted while the
	// campaign is queued.
	Profile *report.Profile `json:"profile,omitempty"`
}

// Status reports a campaign's live state. While the campaign runs, the
// profile comes from the open journal's in-memory record snapshot; once
// done, from the final index-sorted record list.
func (s *Server) Status(id string) (Status, error) {
	c, err := s.lookup(id)
	if err != nil {
		return Status{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		ID:         c.id,
		State:      c.state,
		Submission: c.sub,
		OwnedSites: c.owned,
		Completed:  int(c.completed.Load()),
		Error:      c.errMsg,
	}
	var recs = c.recs
	if c.j != nil {
		recs = c.j.Snapshot()
	}
	if recs != nil {
		dist, err := report.MergedDist(recs)
		if err != nil {
			return Status{}, err
		}
		p := report.NewProfile(dist)
		st.Profile = &p
	}
	return st, nil
}

// Report returns the campaign's final report document — the same bytes
// fsmerge would emit for its journal, because both aggregate the
// index-sorted records through report.NewMerged.
func (s *Server) Report(id string) (report.Merged, error) {
	c, err := s.lookup(id)
	if err != nil {
		return report.Merged{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateDone {
		return report.Merged{}, ErrNotFinished
	}
	return report.NewMerged(c.fp, c.recs)
}

// Advice returns the campaign's selective-hardening advice document — the
// same bytes fsadvise emits for the campaign's journal, because both
// attribute the index-sorted records through advisor.FromJournal and
// analyze with the same options.
func (s *Server) Advice(id string, opt advisor.Options) (*report.Advice, error) {
	c, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	state, fp, recs := c.state, c.fp, c.recs
	c.mu.Unlock()
	if state != StateDone {
		return nil, fmt.Errorf("%w: campaign is %s", ErrNotFinished, state)
	}
	if fp.ShardCount != 1 {
		// One shard's journal holds only its own sites; a ranking from it
		// would be blind to every other shard's outcomes. Merge the shard
		// journals with fsmerge and advise offline with fsadvise -journal.
		return nil, fmt.Errorf("%w: advice requires an unsharded campaign (this is shard %d of %d)",
			ErrBadRequest, fp.ShardIndex, fp.ShardCount)
	}
	inst, err := s.buildTarget(c.sub)
	if err != nil {
		return nil, err
	}
	in, err := advisor.FromJournal(inst.Target, fp, recs)
	if err != nil {
		return nil, err
	}
	adv, err := advisor.Analyze(in, opt)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return adv, nil
}

// CacheStats is fault.CacheStats with JSON tags for the /stats document.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Shared    int64 `json:"shared"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// CampaignStats is the per-campaign entry of the /stats document.
type CampaignStats struct {
	ID         string          `json:"id"`
	Kernel     string          `json:"kernel"`
	State      State           `json:"state"`
	OwnedSites int             `json:"owned_sites"`
	Completed  int             `json:"completed"`
	Campaign   report.Campaign `json:"campaign"`
}

// Stats is the body of GET /stats.
type Stats struct {
	Workers    int   `json:"workers"`
	QueueDepth int   `json:"queue_depth"`
	Queued     int   `json:"queued"`
	Running    int   `json:"running"`
	Submitted  int64 `json:"submitted"`
	// DedupHits counts submissions answered by an existing campaign;
	// EngineRuns counts campaigns actually handed to the engine. Duplicate
	// concurrent submissions show up as DedupHits without EngineRuns
	// moving — the observable form of the dedup guarantee.
	DedupHits  int64           `json:"dedup_hits"`
	EngineRuns int64           `json:"engine_runs"`
	Cache      CacheStats      `json:"cache"`
	Campaigns  []CampaignStats `json:"campaigns"`
}

// Stats snapshots the worker pool, the prepared-target cache, and every
// campaign's engine counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Workers:    s.cfg.Workers,
		QueueDepth: s.cfg.QueueDepth,
		Queued:     s.queued,
		Running:    s.running,
		Submitted:  s.submitted,
		DedupHits:  s.dedupHits,
		EngineRuns: s.engineRuns,
		Cache:      CacheStats(s.cfg.Cache.Stats()),
	}
	campaigns := make([]*campaign, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		campaigns = append(campaigns, c)
	}
	s.mu.Unlock()
	sort.Slice(campaigns, func(i, k int) bool { return campaigns[i].id < campaigns[k].id })
	for _, c := range campaigns {
		c.mu.Lock()
		st.Campaigns = append(st.Campaigns, CampaignStats{
			ID:         c.id,
			Kernel:     c.sub.Kernel,
			State:      c.state,
			OwnedSites: c.owned,
			Completed:  int(c.completed.Load()),
			Campaign:   report.NewCampaign(c.sink.Total()),
		})
		c.mu.Unlock()
	}
	return st
}

// submitResponse is the body of POST /campaigns.
type submitResponse struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Deduped is true when an identical campaign already existed and this
	// submission was folded into it.
	Deduped bool   `json:"deduped"`
	URL     string `json:"url"`
}

// Handler returns the service's HTTP surface. Routes:
//
//	POST /campaigns               submit (202 accepted, 200 deduplicated)
//	GET  /campaigns/{id}          live status + incremental profile
//	GET  /campaigns/{id}/report   final report (409 until done)
//	GET  /campaigns/{id}/advice   selective-hardening advice (409 until done;
//	                              ?rank-by= ?budget= ?confidence= options)
//	GET  /healthz                 liveness probe
//	GET  /stats                   pool, cache, and per-campaign counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /campaigns/{id}/report", s.handleReport)
	mux.HandleFunc("GET /campaigns/{id}/advice", s.handleAdvice)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sub Submission
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sub); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, deduped, err := s.Submit(sub)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, serr := s.Status(id)
	if serr != nil {
		writeError(w, http.StatusInternalServerError, serr)
		return
	}
	code := http.StatusAccepted
	if deduped {
		code = http.StatusOK
	}
	writeJSON(w, code, submitResponse{
		ID: id, State: st.State, Deduped: deduped, URL: "/campaigns/" + id,
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, statusCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	doc, err := s.Report(r.PathValue("id"))
	if err != nil {
		writeError(w, statusCode(err), err)
		return
	}
	// report.Write, not writeJSON: the body must be byte-identical to the
	// document fsmerge writes for the same journal.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = report.Write(w, doc)
}

func (s *Server) handleAdvice(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	opt := advisor.Options{RankBy: q.Get("rank-by")}
	if v := q.Get("confidence"); v != "" {
		c, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad confidence %q: %v", v, err))
			return
		}
		opt.Confidence = c
	}
	budgets, err := advisor.ParseBudgets(q.Get("budget"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opt.Budgets = budgets
	adv, err := s.Advice(r.PathValue("id"), opt)
	if err != nil {
		writeError(w, statusCode(err), err)
		return
	}
	// report.Write, not writeJSON: the body must be byte-identical to the
	// document fsadvise -json writes for the same campaign.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = report.Write(w, adv)
}

// statusCode maps service errors onto HTTP codes.
func statusCode(err error) int {
	switch {
	case errors.Is(err, ErrUnknownCampaign):
		return http.StatusNotFound
	case errors.Is(err, ErrNotFinished):
		return http.StatusConflict
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// Interface assertion: the cache stats mirror must stay field-compatible
// with the engine's type, so the conversion above fails to compile on
// drift rather than silently dropping counters.
var _ = CacheStats(fault.CacheStats{})
