// Package service implements the campaign service behind the fsserve
// daemon: a long-lived, multi-tenant front end to the injection-campaign
// engine. Submissions (kernel, scale, seed, fault-model shape, shard) are
// validated with the same rules as the fsprune CLI, fingerprinted with the
// journal's campaign fingerprint, and deduplicated — two identical
// submissions share one engine run, like PreparedCache singleflights golden
// runs. Admitted campaigns execute on a bounded worker pool behind a
// bounded admission queue (overflow is rejected, HTTP 429); each campaign
// writes its write-ahead journal under the server's data directory, so a
// crashed or restarted daemon recovers every incomplete campaign from disk
// and resumes it through the engine's replay path, bit-identical to an
// uninterrupted run.
//
// The HTTP surface (Server.Handler): POST /campaigns submits, GET
// /campaigns/{id} reports live status with an incremental outcome profile
// read from the open journal, GET /campaigns/{id}/report serves the final
// deterministic report document (byte-identical to fsmerge's for the same
// journal), GET /healthz probes liveness, and GET /stats exposes the worker
// pool, the shared prepared-target cache, and per-campaign engine stats.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/kernels"
)

// Submission describes one campaign request: the same knobs fsprune's
// campaign action takes on its command line. The zero value of every
// optional field selects the fsprune default, so a submission that names
// only a kernel is valid.
type Submission struct {
	// Kernel is the target kernel name ("GEMM K1"); see fsprune -list.
	Kernel string `json:"kernel"`
	// Scale is the kernel geometry, "small" (default) or "paper".
	Scale string `json:"scale,omitempty"`
	// Seed is the site-sampling seed; 0 selects the fsprune default (1).
	Seed int64 `json:"seed,omitempty"`
	// Sites is the campaign size (uniform random sites); 0 selects the
	// fsprune default (3000).
	Sites int `json:"sites,omitempty"`
	// Model is the fault model name (fault.ParseModel); "" selects the
	// paper baseline, dest-value.
	Model string `json:"model,omitempty"`
	// Warp is the SIMT lockstep width (0 = serial interleaving).
	Warp int `json:"warp,omitempty"`
	// FullRun disables checkpointed fast-forward (the reference engine).
	FullRun bool `json:"full_run,omitempty"`
	// CkptStride is the CTA-boundary checkpoint stride (0 = auto).
	CkptStride int `json:"ckpt_stride,omitempty"`
	// IntraStride is the intra-CTA snapshot stride (0 = auto, <0 = off).
	IntraStride int `json:"intra_stride,omitempty"`
	// ShardIndex/ShardCount restrict the campaign to one deterministic
	// shard; ShardCount 0 means unsharded.
	ShardIndex int `json:"shard_index,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`
}

// Submission defaults, mirroring fsprune's flag defaults.
const (
	DefaultSeed  = 1
	DefaultSites = 3000
)

// normalize validates the submission against the same usage rules fsprune
// enforces on its flags and fills in defaults. The returned submission is
// canonical: equal campaigns normalize to equal values, which is what the
// fingerprint-based dedup keys on.
func (s Submission) normalize() (Submission, error) {
	if _, ok := kernels.ByName(s.Kernel); !ok {
		return s, fmt.Errorf("unknown kernel %q", s.Kernel)
	}
	switch s.Scale {
	case "":
		s.Scale = kernels.ScaleSmall.String()
	case kernels.ScaleSmall.String(), kernels.ScalePaper.String():
	default:
		return s, fmt.Errorf("unknown scale %q (want %q or %q)",
			s.Scale, kernels.ScaleSmall, kernels.ScalePaper)
	}
	if s.Model == "" {
		s.Model = fault.ModelDestValue.String()
	}
	if _, err := fault.ParseModel(s.Model); err != nil {
		return s, err
	}
	if s.Seed == 0 {
		s.Seed = DefaultSeed
	}
	if s.Sites == 0 {
		s.Sites = DefaultSites
	}
	if s.Sites < 0 {
		return s, fmt.Errorf("sites must be > 0, got %d", s.Sites)
	}
	if s.Warp < 0 {
		return s, fmt.Errorf("warp must be >= 0 (0 = serial interleaving), got %d", s.Warp)
	}
	if s.CkptStride < 0 {
		return s, fmt.Errorf("ckpt_stride must be >= 0 (0 = auto), got %d", s.CkptStride)
	}
	if s.FullRun && s.CkptStride != 0 {
		return s, fmt.Errorf("full_run disables checkpointing; it cannot be combined with ckpt_stride %d", s.CkptStride)
	}
	if s.FullRun && s.IntraStride != 0 {
		return s, fmt.Errorf("full_run disables checkpointing; it cannot be combined with intra_stride %d", s.IntraStride)
	}
	if s.ShardCount == 0 && s.ShardIndex != 0 {
		return s, fmt.Errorf("shard_index %d requires a shard_count", s.ShardIndex)
	}
	sh := s.shard()
	if sh.Count < 1 || sh.Index < 0 || sh.Index >= sh.Count {
		return s, fmt.Errorf("invalid shard %d/%d (want 0 <= index < count)", s.ShardIndex, s.ShardCount)
	}
	s.ShardIndex, s.ShardCount = sh.Index, sh.Count
	return s, nil
}

// model maps the validated model name to the fault constant. Only valid on
// a normalized submission.
func (s Submission) model() fault.Model {
	m, err := fault.ParseModel(s.Model)
	if err != nil {
		panic(fmt.Sprintf("service: model %q survived normalize: %v", s.Model, err))
	}
	return m
}

// shard returns the submission's shard in the engine's normalized form.
func (s Submission) shard() fault.Shard {
	if s.ShardCount == 0 {
		return fault.Shard{Index: 0, Count: 1}
	}
	return fault.Shard{Index: s.ShardIndex, Count: s.ShardCount}
}

// scale maps the validated scale name to the kernels constant.
func (s Submission) scale() kernels.Scale {
	if s.Scale == kernels.ScalePaper.String() {
		return kernels.ScalePaper
	}
	return kernels.ScaleSmall
}

// ownedSites is the number of campaign sites this submission's shard
// executes — the completion target of its journal. A shard owns the
// schedule positions p with p%Count == Index, so its share of Sites
// positions is ceil((Sites-Index)/Count).
func (s Submission) ownedSites() int {
	sh := s.shard()
	if s.Sites <= sh.Index {
		return 0
	}
	return (s.Sites - sh.Index + sh.Count - 1) / sh.Count
}

// fingerprint derives the journal campaign fingerprint of a normalized
// submission. It must agree exactly with what the campaign runner's target
// produces via Target.JournalFingerprint — fault.Run cross-checks the two
// when the journal is attached, so drift fails loudly rather than
// resuming the wrong campaign.
func (s Submission) fingerprint() journal.Fingerprint {
	sh := s.shard()
	return journal.Fingerprint{
		Kernel:      s.Kernel,
		Scale:       s.Scale,
		Seed:        s.Seed,
		Model:       s.Model,
		Warp:        s.Warp,
		Stride:      s.CkptStride,
		IntraStride: s.IntraStride,
		FullRun:     s.FullRun,
		Sites:       s.Sites,
		ShardIndex:  sh.Index,
		ShardCount:  sh.Count,
	}
}

// submissionFromFingerprint reconstructs the submission a recovered journal
// was created for — every field of the fingerprint maps back onto one
// submission knob. It fails on journals from other tooling (a fault model
// this build does not implement) or for kernels it does not register.
func submissionFromFingerprint(fp journal.Fingerprint) (Submission, error) {
	if _, err := fault.ParseModel(fp.Model); err != nil {
		return Submission{}, fmt.Errorf("journal was recorded under a fault model this build cannot run: %w", err)
	}
	sub := Submission{
		Kernel:      fp.Kernel,
		Model:       fp.Model,
		Scale:       fp.Scale,
		Seed:        fp.Seed,
		Sites:       fp.Sites,
		Warp:        fp.Warp,
		FullRun:     fp.FullRun,
		CkptStride:  fp.Stride,
		IntraStride: fp.IntraStride,
		ShardIndex:  fp.ShardIndex,
		ShardCount:  fp.ShardCount,
	}
	sub, err := sub.normalize()
	if err != nil {
		return Submission{}, err
	}
	if got := sub.fingerprint(); got != fp {
		return Submission{}, fmt.Errorf("fingerprint does not round-trip (%s)", fp.Diff(got))
	}
	return sub, nil
}

// campaignID derives the stable campaign identity from the fingerprint: the
// dedup key, the status URL, and (suffixed .journal) the journal filename.
// Deterministic across restarts so a recovered journal resumes under the
// same id it was submitted with.
func campaignID(fp journal.Fingerprint) string {
	payload, err := json.Marshal(fp)
	if err != nil {
		// Fingerprint is a plain struct of scalars; Marshal cannot fail.
		panic(fmt.Sprintf("service: marshal fingerprint: %v", err))
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:8])
}
