package service

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/kernels"
	"repro/internal/stats"
)

// Config shapes a Server. The zero value of every field selects a usable
// default except DataDir, which is required.
type Config struct {
	// DataDir holds one write-ahead journal per campaign. It is created if
	// missing; existing journals in it are recovered on New.
	DataDir string
	// Workers is the number of campaigns executing concurrently (default 2).
	// Each campaign additionally fans out over Parallelism engine workers.
	Workers int
	// QueueDepth bounds the number of admitted-but-not-yet-running
	// campaigns (default 16); submissions beyond it are rejected with
	// ErrQueueFull rather than queued without bound.
	QueueDepth int
	// Parallelism is the per-campaign engine worker count (0 = GOMAXPROCS).
	Parallelism int
	// SyncEvery is the journal auto-fsync cadence in records (default 64;
	// negative disables periodic fsync). Bounds how many journaled
	// outcomes a host crash can lose; a daemon crash loses none.
	SyncEvery int
	// Cache is the shared prepared-target cache; nil uses the process-wide
	// default, so campaigns for the same (kernel, scale, strides) share
	// one golden run.
	Cache *fault.PreparedCache
}

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull rejects a submission when QueueDepth campaigns are
	// already waiting (HTTP 429).
	ErrQueueFull = errors.New("service: admission queue is full")
	// ErrUnknownCampaign reports a campaign id the server has never seen
	// (HTTP 404).
	ErrUnknownCampaign = errors.New("service: unknown campaign")
	// ErrNotFinished reports a final-report request for a campaign that is
	// still queued or running (HTTP 409).
	ErrNotFinished = errors.New("service: campaign has not finished")
	// ErrBadRequest wraps request-validation failures on read endpoints
	// (malformed advice options, advice on a sharded campaign; HTTP 400).
	ErrBadRequest = errors.New("service: bad request")
)

// State is a campaign's lifecycle position.
type State string

const (
	// StateQueued: admitted, journal header on disk, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: executing on a worker.
	StateRunning State = "running"
	// StateDone: every owned site journaled; the final report is ready.
	StateDone State = "done"
	// StateInterrupted: stopped by shutdown mid-run; the journal holds
	// every completed site and a restarted server resumes it.
	StateInterrupted State = "interrupted"
	// StateFailed: the engine reported a campaign-level error.
	StateFailed State = "failed"
)

// campaign is the server-side record of one submission.
type campaign struct {
	id    string
	sub   Submission
	fp    journal.Fingerprint
	path  string
	owned int
	sink  *fault.StatsSink

	// completed counts journaled sites (replayed + executed), updated
	// live from the engine's Progress hook.
	completed atomic.Int64

	mu     sync.Mutex
	state  State
	errMsg string
	// j is the open journal while the campaign runs; Snapshot serves the
	// live status profile.
	j *journal.Journal
	// recs is the final index-sorted record list once the campaign is
	// done (run to completion now, or recovered complete from disk).
	recs []journal.Record
}

// Server accepts campaign submissions, deduplicates them by fingerprint,
// and runs them on a bounded worker pool. See the package comment for the
// full lifecycle.
type Server struct {
	cfg Config

	mu        sync.Mutex
	campaigns map[string]*campaign
	queued    int
	running   int
	// submitted/dedupHits/engineRuns make the dedup guarantee observable:
	// duplicate submissions raise dedupHits while engineRuns stays put.
	submitted  int64
	dedupHits  int64
	engineRuns int64

	queue    chan *campaign
	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a Server over cfg.DataDir, recovering every journal found
// there: complete journals surface as done campaigns (their reports are
// immediately servable), incomplete ones re-enter the run queue and resume
// through the engine's replay path when Start launches the workers.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("service: Config.DataDir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.SyncEvery == 0 {
		cfg.SyncEvery = 64
	}
	if cfg.Cache == nil {
		cfg.Cache = fault.DefaultPreparedCache()
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}

	s := &Server{
		cfg:       cfg,
		campaigns: make(map[string]*campaign),
		stopc:     make(chan struct{}),
	}
	recovered, err := s.recover()
	if err != nil {
		return nil, err
	}
	// Recovered campaigns bypass admission control (they were admitted in
	// a previous life), so the queue channel gets slack for all of them on
	// top of the configured depth: enqueues never block under s.mu.
	s.queue = make(chan *campaign, cfg.QueueDepth+len(recovered))
	for _, c := range recovered {
		s.queued++
		s.queue <- c
	}
	return s, nil
}

// recover scans the data directory and rebuilds campaign state from the
// journals' own fingerprints — the fingerprint carries every submission
// field, so no separate metadata store exists to drift out of sync.
func (s *Server) recover() ([]*campaign, error) {
	paths, err := filepath.Glob(filepath.Join(s.cfg.DataDir, "*.journal"))
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	sort.Strings(paths)
	var pending []*campaign
	for _, path := range paths {
		fp, recs, err := journal.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("service: recover %s: %w", path, err)
		}
		sub, err := submissionFromFingerprint(fp)
		if err != nil {
			return nil, fmt.Errorf("service: recover %s: %w", path, err)
		}
		id := campaignID(fp)
		if want := filepath.Join(s.cfg.DataDir, id+".journal"); path != want {
			return nil, fmt.Errorf("service: recover %s: journal belongs at %s (fingerprint %s)", path, want, fp)
		}
		c := &campaign{
			id:    id,
			sub:   sub,
			fp:    fp,
			path:  path,
			owned: sub.ownedSites(),
			sink:  &fault.StatsSink{},
		}
		c.completed.Store(int64(len(recs)))
		if len(recs) >= c.owned {
			sort.Slice(recs, func(i, k int) bool { return recs[i].Index < recs[k].Index })
			c.state = StateDone
			c.recs = recs
		} else {
			c.state = StateQueued
			pending = append(pending, c)
		}
		s.campaigns[id] = c
	}
	return pending, nil
}

// Start launches the worker pool. Call once, before serving HTTP.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Stop shuts the pool down cooperatively: queued campaigns stay queued (in
// their journals, for the next incarnation), running campaigns are
// interrupted at the next site boundary with every completed outcome
// journaled, and Stop returns when all workers have exited. Safe to call
// more than once.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { close(s.stopc) })
	s.wg.Wait()
}

// Submit admits a campaign. The returned bool reports deduplication: true
// means an identical campaign (same fingerprint) already exists and the
// returned id names it — no second engine run is started, matching how the
// prepared-target cache singleflights golden runs.
func (s *Server) Submit(sub Submission) (string, bool, error) {
	sub, err := sub.normalize()
	if err != nil {
		return "", false, err
	}
	fp := sub.fingerprint()
	id := campaignID(fp)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.submitted++
	if _, ok := s.campaigns[id]; ok {
		s.dedupHits++
		return id, true, nil
	}
	if s.queued >= s.cfg.QueueDepth {
		return "", false, ErrQueueFull
	}

	// Write the journal header before acknowledging the submission: an
	// admitted-but-queued campaign must survive a daemon restart, and the
	// journal is the only durable record of it.
	path := filepath.Join(s.cfg.DataDir, id+".journal")
	j, err := journal.Open(path, fp)
	if err != nil {
		return "", false, fmt.Errorf("service: create journal: %w", err)
	}
	if err := j.Close(); err != nil {
		return "", false, fmt.Errorf("service: create journal: %w", err)
	}

	c := &campaign{
		id:    id,
		sub:   sub,
		fp:    fp,
		path:  path,
		owned: sub.ownedSites(),
		state: StateQueued,
		sink:  &fault.StatsSink{},
	}
	s.campaigns[id] = c
	s.queued++
	s.queue <- c // never blocks: queued is bounded by QueueDepth <= cap
	return id, false, nil
}

// worker drains the run queue until Stop.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopc:
			return
		case c := <-s.queue:
			s.runCampaign(c)
		}
	}
}

// runCampaign executes one campaign end to end: rebuild the kernel
// instance exactly as fsprune's campaign action does, open the journal
// (replaying any prior progress), run the engine, and record the terminal
// state.
func (s *Server) runCampaign(c *campaign) {
	s.mu.Lock()
	s.queued--
	s.running++
	s.engineRuns++
	s.mu.Unlock()
	c.mu.Lock()
	c.state = StateRunning
	c.mu.Unlock()

	recs, err := s.execute(c)

	s.mu.Lock()
	s.running--
	s.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.j = nil
	switch {
	case err == nil:
		c.state = StateDone
		c.recs = recs
	case errors.Is(err, fault.ErrInterrupted):
		// Shutdown, not failure: the journal holds every completed site
		// and recovery re-queues the campaign on the next start.
		c.state = StateInterrupted
	default:
		c.state = StateFailed
		c.errMsg = err.Error()
	}
}

// buildTarget reconstructs and prepares a submission's injection target.
// Both execute and Advice go through it, so advice is attributed against
// exactly the profile the campaign ran on (and the shared prepared-target
// cache makes the second Prepare a lookup, not a golden re-run).
func (s *Server) buildTarget(sub Submission) (*kernels.Instance, error) {
	spec, ok := kernels.ByName(sub.Kernel)
	if !ok {
		return nil, fmt.Errorf("unknown kernel %q", sub.Kernel)
	}
	inst, err := spec.Build(sub.scale())
	if err != nil {
		return nil, err
	}
	inst.Target.WarpSize = sub.Warp
	inst.Target.FullRun = sub.FullRun
	inst.Target.CheckpointStride = sub.CkptStride
	inst.Target.IntraStride = sub.IntraStride
	inst.Target.Cache = s.cfg.Cache
	if err := inst.Target.Prepare(); err != nil {
		return nil, err
	}
	return inst, nil
}

// execute is the engine-facing half of runCampaign; it returns the final
// index-sorted record list on full completion.
func (s *Server) execute(c *campaign) ([]journal.Record, error) {
	inst, err := s.buildTarget(c.sub)
	if err != nil {
		return nil, err
	}

	// The site list derives deterministically from (kernel, scale, seed,
	// size, model) — the same recipe as fsprune, pinned by the fingerprint.
	model := c.sub.model()
	space := fault.NewSpace(inst.Target.Profile())
	rng := stats.NewRNG(c.sub.Seed).Split("baseline")
	sites := fault.Uniform(space.RandomModel(rng, c.sub.Sites, model))

	shard := c.sub.shard()
	fp := inst.Target.JournalFingerprint(model, len(sites), c.sub.Scale, c.sub.Seed, shard)
	if fp != c.fp {
		// Submission-side and target-side fingerprints are derived
		// independently; disagreement means a bug, not a bad request.
		return nil, fmt.Errorf("service: fingerprint drift (%s)", c.fp.Diff(fp))
	}
	j, err := journal.Open(c.path, fp)
	if err != nil {
		return nil, err
	}
	j.KeepRecords()
	if s.cfg.SyncEvery > 0 {
		j.AutoSync(s.cfg.SyncEvery)
	}
	c.mu.Lock()
	c.j = j
	c.mu.Unlock()

	opt := fault.CampaignOptions{
		Parallelism: s.cfg.Parallelism,
		Sink:        c.sink,
		Journal:     j,
		Shard:       shard,
		Interrupt:   s.stopc,
		Progress:    func(completed, _ int) { c.completed.Store(int64(completed)) },
	}
	_, runErr := fault.RunModel(inst.Target, sites, model, opt)

	c.mu.Lock()
	c.j = nil
	c.mu.Unlock()
	recs := j.Snapshot()
	if cerr := j.Close(); runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		return nil, runErr
	}
	sort.Slice(recs, func(i, k int) bool { return recs[i].Index < recs[k].Index })
	return recs, nil
}

// lookup resolves a campaign id, tolerating a ".journal" suffix pasted
// from the data directory.
func (s *Server) lookup(id string) (*campaign, error) {
	id = strings.TrimSuffix(id, ".journal")
	s.mu.Lock()
	c, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCampaign, id)
	}
	return c, nil
}
