package service_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/advisor"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/kernels"
	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/stats"
)

// standalone runs a submission's campaign directly through fault.Run with
// its own journal — the fsprune-equivalent reference — and returns the
// campaign distribution plus the journal-derived report bytes (the byte
// stream fsmerge would emit, which /report must reproduce exactly).
func standalone(t *testing.T, dir string, sub service.Submission) (fault.Dist, []byte) {
	t.Helper()
	spec, ok := kernels.ByName(sub.Kernel)
	if !ok {
		t.Fatalf("unknown kernel %q", sub.Kernel)
	}
	sc := kernels.ScaleSmall
	if sub.Scale == kernels.ScalePaper.String() {
		sc = kernels.ScalePaper
	}
	inst, err := spec.Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	inst.Target.WarpSize = sub.Warp
	inst.Target.FullRun = sub.FullRun
	inst.Target.CheckpointStride = sub.CkptStride
	inst.Target.IntraStride = sub.IntraStride
	if err := inst.Target.Prepare(); err != nil {
		t.Fatal(err)
	}
	seed := sub.Seed
	if seed == 0 {
		seed = service.DefaultSeed
	}
	model := fault.ModelDestValue
	if sub.Model != "" {
		model, err = fault.ParseModel(sub.Model)
		if err != nil {
			t.Fatal(err)
		}
	}
	space := fault.NewSpace(inst.Target.Profile())
	rng := stats.NewRNG(seed).Split("baseline")
	sites := fault.Uniform(space.RandomModel(rng, sub.Sites, model))

	shard := fault.Shard{Index: sub.ShardIndex, Count: sub.ShardCount}
	if shard.Count == 0 {
		shard = fault.Shard{Index: 0, Count: 1}
	}
	fp := inst.Target.JournalFingerprint(model, len(sites), sc.String(), seed, shard)
	path := filepath.Join(dir, "reference.journal")
	j, err := journal.Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fault.RunModel(inst.Target, sites, model, fault.CampaignOptions{Journal: j, Shard: shard})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	gotFP, recs, err := journal.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != fp {
		t.Fatalf("journal fingerprint mismatch: %s", fp.Diff(gotFP))
	}
	sort.Slice(recs, func(i, k int) bool { return recs[i].Index < recs[k].Index })
	doc, err := report.NewMerged(fp, recs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	return res.Dist, buf.Bytes()
}

// postCampaign submits via the HTTP surface and returns the decoded body.
func postCampaign(t *testing.T, ts *httptest.Server, sub service.Submission) (id string, deduped bool, code int) {
	t.Helper()
	body, err := json.Marshal(sub)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ID      string `json:"id"`
		Deduped bool   `json:"deduped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID, out.Deduped, resp.StatusCode
}

// getStatus fetches GET /campaigns/{id}.
func getStatus(t *testing.T, ts *httptest.Server, id string) service.Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitDone polls until the campaign reaches a terminal state.
func waitDone(t *testing.T, ts *httptest.Server, id string) service.Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := getStatus(t, ts, id)
		switch st.State {
		case service.StateDone:
			return st
		case service.StateFailed, service.StateInterrupted:
			t.Fatalf("campaign %s ended %s: %s", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s still %s after deadline", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// reportBytes fetches the raw GET /campaigns/{id}/report body.
func reportBytes(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report %s: HTTP %d: %s", id, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

func getStats(t *testing.T, ts *httptest.Server) service.Stats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestConcurrentCampaignsMatchStandalone drives the service's headline
// guarantee end to end over HTTP: two distinct campaigns plus a duplicate
// of the first, submitted concurrently, produce final reports
// byte-identical to the fsprune-journal-derived reference — and the
// duplicate is folded into the existing run (one engine run, visible in
// /stats).
func TestConcurrentCampaignsMatchStandalone(t *testing.T) {
	srv, err := service.New(service.Config{
		DataDir:     t.TempDir(),
		Workers:     3,
		Parallelism: 2,
		Cache:       fault.NewPreparedCache(256 << 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	subA := service.Submission{Kernel: "GEMM K1", Sites: 40, Seed: 7}
	subB := service.Submission{Kernel: "Gaussian K1", Sites: 30, Seed: 11}

	type submitResult struct {
		id      string
		deduped bool
		code    int
	}
	results := make([]submitResult, 3)
	var wg sync.WaitGroup
	for i, sub := range []service.Submission{subA, subB, subA} {
		wg.Add(1)
		go func(i int, sub service.Submission) {
			defer wg.Done()
			id, deduped, code := postCampaign(t, ts, sub)
			results[i] = submitResult{id, deduped, code}
		}(i, sub)
	}
	wg.Wait()

	if results[0].id != results[2].id {
		t.Fatalf("duplicate submission got a different id: %s vs %s", results[0].id, results[2].id)
	}
	if results[0].id == results[1].id {
		t.Fatalf("distinct submissions share id %s", results[0].id)
	}
	dedups := 0
	for _, r := range results {
		if r.deduped {
			dedups++
		}
	}
	if dedups != 1 {
		t.Fatalf("want exactly 1 deduplicated submission, got %d (%+v)", dedups, results)
	}

	stA := waitDone(t, ts, results[0].id)
	stB := waitDone(t, ts, results[1].id)
	if stA.Completed != 40 || stB.Completed != 30 {
		t.Fatalf("completed %d/%d, want 40/30", stA.Completed, stB.Completed)
	}

	distA, wantA := standalone(t, t.TempDir(), subA)
	distB, wantB := standalone(t, t.TempDir(), subB)
	if got := reportBytes(t, ts, results[0].id); !bytes.Equal(got, wantA) {
		t.Errorf("campaign A report differs from standalone reference:\ngot:  %s\nwant: %s", got, wantA)
	}
	if got := reportBytes(t, ts, results[1].id); !bytes.Equal(got, wantB) {
		t.Errorf("campaign B report differs from standalone reference:\ngot:  %s\nwant: %s", got, wantB)
	}
	// The live status profile must be the same bit-identical distribution.
	if pa := report.NewProfile(distA); stA.Profile == nil || *stA.Profile != pa {
		t.Errorf("campaign A status profile %+v, want %+v", stA.Profile, pa)
	}
	if pb := report.NewProfile(distB); stB.Profile == nil || *stB.Profile != pb {
		t.Errorf("campaign B status profile %+v, want %+v", stB.Profile, pb)
	}

	st := getStats(t, ts)
	if st.Submitted != 3 || st.DedupHits != 1 || st.EngineRuns != 2 {
		t.Errorf("stats submitted/dedup/engine = %d/%d/%d, want 3/1/2",
			st.Submitted, st.DedupHits, st.EngineRuns)
	}
	if len(st.Campaigns) != 2 {
		t.Errorf("stats lists %d campaigns, want 2", len(st.Campaigns))
	}
}

// TestRestartMidCampaignResumes kills the daemon (Stop) mid-campaign,
// starts a fresh Server over the same data directory, and verifies the
// recovered campaign resumes through journal replay to the exact bytes an
// uninterrupted run produces.
func TestRestartMidCampaignResumes(t *testing.T) {
	dir := t.TempDir()
	sub := service.Submission{Kernel: "GEMM K1", Sites: 120, Seed: 5}

	srv, err := service.New(service.Config{
		DataDir:     dir,
		Workers:     1,
		Parallelism: 1,
		SyncEvery:   1,
		Cache:       fault.NewPreparedCache(256 << 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	id, deduped, err := srv.Submit(sub)
	if err != nil || deduped {
		t.Fatalf("submit: id=%s deduped=%v err=%v", id, deduped, err)
	}
	// Let it make some progress, then pull the plug.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st, err := srv.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Completed >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign made no progress (state %s)", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Stop()

	st, err := srv.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State == service.StateFailed {
		t.Fatalf("campaign failed at shutdown: %s", st.Error)
	}
	if st.State == service.StateDone {
		// The campaign raced to completion before Stop; the restart below
		// then only exercises done-journal recovery, which is still worth
		// asserting, but log it so a flakily-fast machine is visible.
		t.Logf("campaign completed before shutdown; resume path not exercised")
	}

	// "Restart the daemon": a fresh Server over the same data directory.
	srv2, err := service.New(service.Config{
		DataDir:     dir,
		Workers:     1,
		Parallelism: 1,
		Cache:       fault.NewPreparedCache(256 << 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv2.Start()
	defer srv2.Stop()
	ts := httptest.NewServer(srv2.Handler())
	defer ts.Close()

	st2 := waitDone(t, ts, id)
	if st2.Completed != sub.Sites {
		t.Fatalf("resumed campaign completed %d sites, want %d", st2.Completed, sub.Sites)
	}
	_, want := standalone(t, t.TempDir(), sub)
	if got := reportBytes(t, ts, id); !bytes.Equal(got, want) {
		t.Errorf("resumed report differs from uninterrupted reference:\ngot:  %s\nwant: %s", got, want)
	}
	if st.State == service.StateInterrupted {
		// The resumed run must actually have replayed the first
		// incarnation's journaled outcomes rather than redone them.
		stats := getStats(t, ts)
		var replayed int64
		for _, c := range stats.Campaigns {
			if c.ID == id {
				replayed = c.Campaign.Replayed
			}
		}
		if replayed < 3 {
			t.Errorf("resumed campaign replayed %d journaled sites, want >= 3", replayed)
		}
	}

	// Third incarnation: the finished journal recovers as a done campaign
	// whose report is immediately servable, byte-identical again.
	srv3, err := service.New(service.Config{DataDir: dir, Cache: fault.NewPreparedCache(1)})
	if err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(srv3.Handler())
	defer ts3.Close()
	st3 := getStatus(t, ts3, id)
	if st3.State != service.StateDone {
		t.Fatalf("recovered finished campaign is %s, want done", st3.State)
	}
	if got := reportBytes(t, ts3, id); !bytes.Equal(got, want) {
		t.Errorf("recovered report differs from reference")
	}
}

// TestSubmitValidation exercises the fsprune-equivalent request rules.
func TestSubmitValidation(t *testing.T) {
	srv, err := service.New(service.Config{DataDir: t.TempDir(), Cache: fault.NewPreparedCache(1)})
	if err != nil {
		t.Fatal(err)
	}
	// No Start: validation happens at admission, before any worker runs.
	bad := []struct {
		name string
		sub  service.Submission
	}{
		{"unknown kernel", service.Submission{Kernel: "No Such K9"}},
		{"unknown scale", service.Submission{Kernel: "GEMM K1", Scale: "huge"}},
		{"unknown model", service.Submission{Kernel: "GEMM K1", Model: "stuck-everything"}},
		{"negative sites", service.Submission{Kernel: "GEMM K1", Sites: -1}},
		{"negative warp", service.Submission{Kernel: "GEMM K1", Warp: -2}},
		{"negative stride", service.Submission{Kernel: "GEMM K1", CkptStride: -1}},
		{"fullrun+stride", service.Submission{Kernel: "GEMM K1", FullRun: true, CkptStride: 3}},
		{"fullrun+intra", service.Submission{Kernel: "GEMM K1", FullRun: true, IntraStride: 2}},
		{"shard index without count", service.Submission{Kernel: "GEMM K1", ShardIndex: 1}},
		{"shard index out of range", service.Submission{Kernel: "GEMM K1", ShardIndex: 2, ShardCount: 2}},
		{"negative shard index", service.Submission{Kernel: "GEMM K1", ShardIndex: -1, ShardCount: 2}},
	}
	for _, tc := range bad {
		if _, _, err := srv.Submit(tc.sub); err == nil {
			t.Errorf("%s: accepted %+v", tc.name, tc.sub)
		}
	}
	// A valid sharded submission is admitted and normalized.
	id, deduped, err := srv.Submit(service.Submission{Kernel: "GEMM K1", ShardIndex: 1, ShardCount: 2})
	if err != nil || deduped {
		t.Fatalf("valid sharded submit: %v (deduped %v)", err, deduped)
	}
	st, err := srv.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Submission.Scale != "small" || st.Submission.Seed != service.DefaultSeed || st.Submission.Sites != service.DefaultSites {
		t.Errorf("submission not normalized: %+v", st.Submission)
	}
	if want := (service.DefaultSites - 1 + 2 - 1) / 2; st.OwnedSites != want {
		t.Errorf("owned sites %d, want %d", st.OwnedSites, want)
	}
}

// TestStuckModelCampaign runs a persistent-fault campaign through the
// service: the model is part of the campaign identity (no dedup against the
// dest-value twin), the final report is byte-identical to the standalone
// engine reference with zero full-run fallbacks (scheduler-corrupting
// models ride the fast-forward engine since DESIGN.md §3.11, so the
// omitempty field stays out of the JSON), and a restarted daemon recovers
// the journal back into a submission under the same model.
func TestStuckModelCampaign(t *testing.T) {
	dir := t.TempDir()
	srv, err := service.New(service.Config{
		DataDir:     dir,
		Workers:     2,
		Parallelism: 2,
		Cache:       fault.NewPreparedCache(256 << 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mask := service.Submission{Kernel: "GEMM K1", Sites: 40, Seed: 3, Model: "stuck-active-mask"}
	base := service.Submission{Kernel: "GEMM K1", Sites: 40, Seed: 3}
	idMask, deduped, code := postCampaign(t, ts, mask)
	if code != http.StatusAccepted && code != http.StatusOK || deduped {
		t.Fatalf("mask submit: HTTP %d deduped=%v", code, deduped)
	}
	idBase, deduped, _ := postCampaign(t, ts, base)
	if deduped || idBase == idMask {
		t.Fatalf("model excluded from campaign identity: base %s vs mask %s (deduped %v)",
			idBase, idMask, deduped)
	}
	waitDone(t, ts, idMask)
	waitDone(t, ts, idBase)

	_, want := standalone(t, t.TempDir(), mask)
	got := reportBytes(t, ts, idMask)
	if !bytes.Equal(got, want) {
		t.Errorf("stuck-model report differs from standalone reference:\ngot:  %s\nwant: %s", got, want)
	}
	var doc report.Merged
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Model != "stuck-active-mask" {
		t.Errorf("report model = %q", doc.Model)
	}
	if doc.Campaign.FullRunFallbacks != 0 {
		t.Errorf("report fallbacks = %d, want 0", doc.Campaign.FullRunFallbacks)
	}
	if bytes.Contains(got, []byte("full_run_fallbacks")) {
		t.Errorf("zero fallbacks still serialized in report JSON: %s", got)
	}
	if doc.Campaign.CTAsSkipped == 0 {
		t.Errorf("stuck-model campaign never fast-forwarded: %s", got)
	}
	srv.Stop()

	// Restart over the same data directory: the stuck-model journal must
	// recover as a done campaign under the same id and model.
	srv2, err := service.New(service.Config{DataDir: dir, Cache: fault.NewPreparedCache(1)})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	st := getStatus(t, ts2, idMask)
	if st.State != service.StateDone {
		t.Fatalf("recovered stuck-model campaign is %s, want done", st.State)
	}
	if st.Submission.Model != "stuck-active-mask" {
		t.Fatalf("recovered submission model = %q", st.Submission.Model)
	}
	if got := reportBytes(t, ts2, idMask); !bytes.Equal(got, want) {
		t.Errorf("recovered stuck-model report differs from reference")
	}
}

// TestAdmissionControl fills the queue (no workers draining it) and
// verifies overflow is ErrQueueFull / HTTP 429 while duplicates of queued
// campaigns still deduplicate instead of consuming a slot.
func TestAdmissionControl(t *testing.T) {
	srv, err := service.New(service.Config{
		DataDir:    t.TempDir(),
		QueueDepth: 2,
		Cache:      fault.NewPreparedCache(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately not started: every admitted campaign stays queued.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, _, err := srv.Submit(service.Submission{Kernel: "GEMM K1", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Submit(service.Submission{Kernel: "GEMM K1", Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Submit(service.Submission{Kernel: "GEMM K1", Seed: 3}); !errors.Is(err, service.ErrQueueFull) {
		t.Fatalf("overflow submit: %v, want ErrQueueFull", err)
	}
	// Duplicate of a queued campaign dedups rather than 429ing.
	_, deduped, err := srv.Submit(service.Submission{Kernel: "GEMM K1", Seed: 2})
	if err != nil || !deduped {
		t.Fatalf("duplicate of queued campaign: deduped=%v err=%v", deduped, err)
	}
	// And over HTTP the overflow maps to 429.
	_, _, code := postCampaign(t, ts, service.Submission{Kernel: "GEMM K1", Seed: 4})
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow HTTP code %d, want 429", code)
	}
}

// TestHTTPErrors covers the error surface: unknown id 404, report before
// completion 409, malformed body 400.
func TestHTTPErrors(t *testing.T) {
	srv, err := service.New(service.Config{DataDir: t.TempDir(), Cache: fault.NewPreparedCache(1)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/campaigns/deadbeef00000000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown campaign: HTTP %d, want 404", resp.StatusCode)
	}

	id, _, err := srv.Submit(service.Submission{Kernel: "GEMM K1", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(fmt.Sprintf("%s/campaigns/%s/report", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("report of queued campaign: HTTP %d, want 409", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(`{"kernel": 42}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: HTTP %d, want 400", resp.StatusCode)
	}
}

// adviceBytes fetches the raw GET /campaigns/{id}/advice body.
func adviceBytes(t *testing.T, ts *httptest.Server, id, query string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/advice" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advice %s: HTTP %d: %s", id, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

// TestAdviceEndpoint checks the tentpole's service-side guarantee: the
// /advice body is byte-identical to what fsadvise emits for the campaign's
// journal (both funnel through advisor.FromJournal + Analyze +
// report.Write), for the default options and for an explicit option set.
func TestAdviceEndpoint(t *testing.T) {
	srv, err := service.New(service.Config{
		DataDir: t.TempDir(),
		Cache:   fault.NewPreparedCache(256 << 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sub := service.Submission{Kernel: "GEMM K1", Sites: 60, Seed: 3}
	id, _, code := postCampaign(t, ts, sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitDone(t, ts, id)

	// The standalone reference: run the identical campaign into a journal
	// and advise from it the way fsadvise -journal does.
	dir := t.TempDir()
	_, _ = standalone(t, dir, sub)
	fp, recs, err := journal.ReadFile(filepath.Join(dir, "reference.journal"))
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := kernels.ByName(sub.Kernel)
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Target.Prepare(); err != nil {
		t.Fatal(err)
	}
	in, err := advisor.FromJournal(inst.Target, fp, recs)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		query string
		opt   advisor.Options
	}{
		{"", advisor.Options{}},
		{"?rank-by=severity&budget=2,10&confidence=0.99",
			advisor.Options{RankBy: advisor.RankSeverity, Budgets: []float64{2, 10}, Confidence: 0.99}},
	}
	for _, c := range cases {
		adv, err := advisor.Analyze(in, c.opt)
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := report.Write(&want, adv); err != nil {
			t.Fatal(err)
		}
		if got := adviceBytes(t, ts, id, c.query); !bytes.Equal(got, want.Bytes()) {
			t.Errorf("advice %q differs from the fsadvise reference:\ngot:  %s\nwant: %s",
				c.query, got, want.String())
		}
	}
}

// TestAdviceErrors maps the advice endpoint's failure modes onto status
// codes: unknown campaign 404, unfinished 409, bad options 400.
func TestAdviceErrors(t *testing.T) {
	srv, err := service.New(service.Config{DataDir: t.TempDir(), Cache: fault.NewPreparedCache(256 << 20)})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/campaigns/deadbeef00000000/advice"); code != http.StatusNotFound {
		t.Errorf("unknown campaign: HTTP %d, want 404", code)
	}

	id, _, code := postCampaign(t, ts, service.Submission{Kernel: "GEMM K1", Sites: 40, Seed: 13})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitDone(t, ts, id)
	if code := get("/campaigns/" + id + "/advice?rank-by=chaos"); code != http.StatusBadRequest {
		t.Errorf("bad rank-by: HTTP %d, want 400", code)
	}
	if code := get("/campaigns/" + id + "/advice?confidence=2"); code != http.StatusBadRequest {
		t.Errorf("bad confidence: HTTP %d, want 400", code)
	}
	if code := get("/campaigns/" + id + "/advice?budget=a,b"); code != http.StatusBadRequest {
		t.Errorf("bad budget: HTTP %d, want 400", code)
	}

	// A queued campaign (worker pool busy or stopped) cannot be advised.
	srv2, err := service.New(service.Config{DataDir: t.TempDir(), Cache: fault.NewPreparedCache(256 << 20)})
	if err != nil {
		t.Fatal(err)
	}
	// Never started: the submission stays queued.
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	qid, _, err := srv2.Submit(service.Submission{Kernel: "GEMM K1", Sites: 40, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts2.URL + "/campaigns/" + qid + "/advice")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("advice of queued campaign: HTTP %d, want 409", resp.StatusCode)
	}

	// A sharded campaign's journal covers only its own sites; advising
	// from it must be rejected as a bad request, not mis-ranked.
	sid, _, code := postCampaign(t, ts, service.Submission{
		Kernel: "GEMM K1", Sites: 40, Seed: 13, ShardIndex: 0, ShardCount: 2,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit shard: HTTP %d", code)
	}
	waitDone(t, ts, sid)
	if code := get("/campaigns/" + sid + "/advice"); code != http.StatusBadRequest {
		t.Errorf("advice of sharded campaign: HTTP %d, want 400", code)
	}
}
