package core

import (
	"fmt"

	"repro/internal/fault"
)

// AutoLoopResult records the adaptive loop-sample search.
type AutoLoopResult struct {
	// Iters is the selected sample size.
	Iters int
	// Steps holds the estimated profile at each tried sample size.
	Steps []fault.Dist
	// Stats aggregates the campaign stats of every step's estimation run —
	// the total injection cost of the search.
	Stats fault.CampaignStats
}

// AutoLoopOptions tunes AutoLoopIters.
type AutoLoopOptions struct {
	// Base is the pipeline configuration; its LoopIters field is ignored.
	Base Options
	// MaxIters caps the search (0 = DefaultAutoLoopMax).
	MaxIters int
	// StablePP is the maximum class movement, in percentage points,
	// between consecutive sample sizes that counts as "stable"
	// (0 = DefaultAutoLoopStablePP).
	StablePP float64
	// StableRuns is how many consecutive stable steps end the search
	// (0 = DefaultAutoLoopStableRuns).
	StableRuns int
	// Campaign tunes the injection runs.
	Campaign fault.CampaignOptions
}

// Defaults for the adaptive search: the paper finds stability between 3 and
// 15 sampled iterations and declares stability when adding an iteration no
// longer moves the distribution.
const (
	DefaultAutoLoopMax        = 15
	DefaultAutoLoopStablePP   = 2.0
	DefaultAutoLoopStableRuns = 2
)

// AutoLoopIters implements the paper's adaptive loop-sampling procedure
// (Section III-D): "we randomly add iterations one by one, until the result
// is stable". Starting from one sampled iteration, it rebuilds the plan and
// re-estimates the profile at each sample size until StableRuns consecutive
// increments each move every outcome class by less than StablePP percentage
// points, and returns the first size of that stable window.
//
// The search runs real injection campaigns, so its cost is the sum of the
// per-step plan sizes; on pruned plans this is still orders of magnitude
// below one exhaustive campaign. Every step re-plans on the same target, so
// the golden run and checkpoint store are built once — and with a
// fault.PreparedCache attached, shared with the rest of the pipeline.
func AutoLoopIters(t *fault.Target, opt AutoLoopOptions) (*AutoLoopResult, error) {
	maxIters := opt.MaxIters
	if maxIters <= 0 {
		maxIters = DefaultAutoLoopMax
	}
	stablePP := opt.StablePP
	if stablePP <= 0 {
		stablePP = DefaultAutoLoopStablePP
	}
	stableRuns := opt.StableRuns
	if stableRuns <= 0 {
		stableRuns = DefaultAutoLoopStableRuns
	}

	res := &AutoLoopResult{}
	stable := 0
	var prev fault.Dist
	for n := 1; n <= maxIters; n++ {
		o := opt.Base
		o.LoopIters = n
		plan, err := BuildPlan(t, o)
		if err != nil {
			return nil, fmt.Errorf("core: auto loop at %d iterations: %w", n, err)
		}
		cr, err := plan.EstimateResult(opt.Campaign)
		if err != nil {
			return nil, fmt.Errorf("core: auto loop at %d iterations: %w", n, err)
		}
		d := cr.Dist
		res.Stats.Merge(cr.Stats)
		res.Steps = append(res.Steps, d)
		if n > 1 && d.MaxClassDelta(prev) <= stablePP {
			stable++
			if stable >= stableRuns {
				res.Iters = n - stableRuns
				return res, nil
			}
		} else {
			stable = 0
		}
		prev = d
	}
	// Never stabilized within the cap: use the cap, like the paper's
	// K-Means K1 case that needs all 15.
	res.Iters = maxIters
	return res, nil
}
