// Package core implements the paper's primary contribution: progressive
// fault-site pruning for GPGPU reliability analysis (Nie et al., MICRO 2018,
// Section III). Four stages — thread-wise (with a CTA-wise first step),
// instruction-wise, loop-wise and bit-wise — shrink the exhaustive fault-site
// space of Eq. 1 by orders of magnitude while preserving the application's
// error resilience profile. The output of the pipeline is a small set of
// weighted fault sites whose weighted outcome distribution estimates the
// profile of the full space.
//
// Entry points: BuildPlan derives a pruning Plan from a prepared
// fault.Target (Prepare is invoked if needed, and routes through the
// target's PreparedCache when one is attached — so Estimate, AutoLoopIters
// and campaign stages of one pipeline amortize a single golden run);
// Plan.Estimate runs the plan's weighted sites as an injection campaign and
// returns the estimated resilience profile.
package core

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/stats"
	"repro/internal/trace"
)

// CTAGroup is one class of CTAs that share the same per-thread dynamic
// instruction count (iCnt) distribution (paper Section III-B1, Fig. 3: the
// iCnt boxplots classify CTAs exactly like 300K fault-injection runs do).
type CTAGroup struct {
	// Members are the CTA ids in launch order.
	Members []int
	// Rep is the representative CTA (the first member).
	Rep int
	// AvgICnt is the average thread iCnt of the group (Tables III/IV).
	AvgICnt float64
	// Box summarizes the per-thread iCnt distribution of the rep CTA.
	Box stats.Boxplot
}

// Proportion is the fraction of the kernel's CTAs in this group.
func (g CTAGroup) Proportion(totalCTAs int) float64 {
	return float64(len(g.Members)) / float64(totalCTAs)
}

// ctaKey fingerprints the iCnt multiset of one CTA: two CTAs with identical
// sorted per-thread iCnt vectors classify together. This is a stricter
// version of the paper's "average iCnt" grouping that cannot conflate
// distinct distributions with equal means.
func ctaKey(icnts []int64) uint64 {
	v := append([]int64(nil), icnts...)
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range v {
		for i := range buf {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// GroupCTAs classifies a kernel's CTAs by their thread-iCnt distribution.
// Groups are ordered by first appearance (launch order), matching the
// paper's C-1, C-2, ... numbering.
func GroupCTAs(prof *trace.Profile) []CTAGroup {
	byKey := make(map[uint64]int)
	var groups []CTAGroup
	for cta := 0; cta < prof.NumCTAs(); cta++ {
		icnts := prof.CTAICnts(cta)
		key := ctaKey(icnts)
		gi, seen := byKey[key]
		if !seen {
			gi = len(groups)
			byKey[key] = gi
			vals := make([]float64, len(icnts))
			for i, x := range icnts {
				vals[i] = float64(x)
			}
			groups = append(groups, CTAGroup{
				Rep:     cta,
				AvgICnt: prof.CTAAvgICnt(cta),
				Box:     stats.NewBoxplot(vals),
			})
		}
		groups[gi].Members = append(groups[gi].Members, cta)
	}
	return groups
}

// ThreadGroup is one class of threads that share the same iCnt within a
// representative CTA (paper Section III-B2, Fig. 4). One representative
// thread is injected; its outcomes are weighted by the population of threads
// the group stands for across the whole kernel.
type ThreadGroup struct {
	// CTAGroup indexes the owning CTA group (-1 for one-step grouping).
	CTAGroup int
	// ICnt is the exact dynamic instruction count shared by members.
	ICnt int64
	// Sig is the PC-sequence signature shared by members (0 when grouping
	// ignores signatures).
	Sig uint64
	// Rep is the representative flat thread id: the middle member of the
	// group in thread-id order. The paper picks a random member; the middle
	// one is deterministic and avoids systematically selecting boundary
	// threads (thread 0, tile-edge-adjacent threads) whose data-dependent
	// fault behaviour is least typical of the group.
	Rep int
	// Members are the group's flat thread ids within the rep CTA.
	Members []int
	// InCTACount is the number of member threads within the rep CTA.
	InCTACount int
	// Population is the total number of threads this group represents
	// across the kernel: InCTACount times the CTA-group size.
	Population int64
}

// GroupingOptions tunes stage-1 grouping.
type GroupingOptions struct {
	// BySignature additionally splits equal-iCnt threads whose static-PC
	// sequences differ. The paper uses iCnt alone; signatures are exposed
	// for the ablation study of classifier quality.
	BySignature bool
	// SkipCTAGrouping performs one-step kernel-wide thread grouping. The
	// paper shows this is unsound for kernels like HotSpot where equal-iCnt
	// threads in different CTAs execute different instructions; it is
	// exposed for the ablation that demonstrates exactly that.
	SkipCTAGrouping bool
}

// GroupThreads performs the paper's two-step stage-1 grouping: CTAs first
// (unless skipped), then threads by exact iCnt inside each representative
// CTA. The returned groups partition the kernel's thread population:
// the Populations sum to the total thread count.
func GroupThreads(prof *trace.Profile, ctaGroups []CTAGroup, opt GroupingOptions) []ThreadGroup {
	type key struct {
		icnt int64
		sig  uint64
	}
	var out []ThreadGroup

	groupRange := func(ctaGroup int, lo, hi int, multiplier int64) {
		byKey := make(map[key]int)
		base := len(out)
		for t := lo; t < hi; t++ {
			k := key{icnt: prof.Threads[t].ICnt}
			if opt.BySignature {
				k.sig = prof.Threads[t].Sig
			}
			gi, seen := byKey[k]
			if !seen {
				gi = len(out)
				byKey[k] = gi
				out = append(out, ThreadGroup{
					CTAGroup: ctaGroup,
					ICnt:     k.icnt,
					Sig:      k.sig,
				})
			}
			out[gi].Members = append(out[gi].Members, t)
			out[gi].InCTACount++
		}
		for i := base; i < len(out); i++ {
			out[i].Population = int64(out[i].InCTACount) * multiplier
			out[i].Rep = out[i].Members[len(out[i].Members)/2]
		}
	}

	if opt.SkipCTAGrouping {
		groupRange(-1, 0, len(prof.Threads), 1)
		return out
	}
	for gi, g := range ctaGroups {
		lo, hi := prof.CTAThreads(g.Rep)
		groupRange(gi, lo, hi, int64(len(g.Members)))
	}
	return out
}

// ValidateGrouping checks the partition invariant: group populations must
// sum to the kernel's thread count.
func ValidateGrouping(prof *trace.Profile, groups []ThreadGroup) error {
	var pop int64
	for _, g := range groups {
		pop += g.Population
	}
	if want := int64(len(prof.Threads)); pop != want {
		return fmt.Errorf("core: grouped population %d != thread count %d", pop, want)
	}
	return nil
}
