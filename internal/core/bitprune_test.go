package core_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
)

// TestBitPositionsChecked: the error-returning validation behind BuildPlan's
// stage 4 — divisors sample, non-divisors error, out-of-range sample counts
// keep every position.
func TestBitPositionsChecked(t *testing.T) {
	cases := []struct {
		width, samples int
		want           []int
		wantErr        bool
	}{
		{32, 8, []int{3, 7, 11, 15, 19, 23, 27, 31}, false},
		{32, 4, []int{7, 15, 23, 31}, false},
		{32, 16, nil, false}, // 16 positions, spot-checked below
		{32, 1, []int{31}, false},
		{32, 32, nil, false}, // samples >= width keeps all
		{32, 0, nil, false},  // 0 keeps all
		{32, -3, nil, false}, // negative keeps all
		{32, 64, nil, false},
		{4, 2, []int{1, 3}, false},
		{32, 5, nil, true},
		{32, 7, nil, true},
		{32, 31, nil, true},
		{32, 3, nil, true},
		{4, 3, nil, true},
	}
	for _, c := range cases {
		got, err := core.BitPositionsChecked(c.width, c.samples)
		if c.wantErr {
			if err == nil {
				t.Errorf("(%d,%d): error expected, got %v", c.width, c.samples, got)
			} else if !strings.Contains(err.Error(), "divide") {
				t.Errorf("(%d,%d): unhelpful error %q", c.width, c.samples, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("(%d,%d): unexpected error %v", c.width, c.samples, err)
			continue
		}
		if c.want == nil {
			// Full or sampled coverage: length check plus last position.
			wantLen := c.width
			if c.samples > 0 && c.samples < c.width {
				wantLen = c.samples
			}
			if len(got) != wantLen || got[len(got)-1] != c.width-1 {
				t.Errorf("(%d,%d) = %v", c.width, c.samples, got)
			}
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("(%d,%d) = %v, want %v", c.width, c.samples, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("(%d,%d) = %v, want %v", c.width, c.samples, got, c.want)
				break
			}
		}
	}
}

// TestBuildPlanRejectsNonDivisorBitSamples: a bad -bits value must surface
// as a clean error from BuildPlan, not a panic (the fsprune -bits 5 crash).
func TestBuildPlanRejectsNonDivisorBitSamples(t *testing.T) {
	tg := prepared(t)
	for _, samples := range []int{5, 7, 31} {
		plan, err := core.BuildPlan(tg, core.Options{Seed: 1, BitSamples: samples})
		if err == nil {
			t.Fatalf("BitSamples=%d accepted: %v", samples, plan)
		}
		if !strings.Contains(err.Error(), "divide") {
			t.Fatalf("BitSamples=%d: unhelpful error %q", samples, err)
		}
	}
}

// TestExpandBitsPredModesConserveWeight: the unified stage-4 expander must
// conserve the total site mass in both predicate modes — with the analytic
// rule the pruned flag weight moves to KnownMasked, without it the same
// weight stays on explicit sites; both totals equal the population.
func TestExpandBitsPredModesConserveWeight(t *testing.T) {
	tg := prepared(t)
	exhaustive := float64(fault.NewSpace(tg.Profile()).Total())
	for _, samples := range []int{-1, 4, 8, 16, 0} {
		var plans [2]*core.Plan
		for i, keepPred := range []bool{false, true} {
			plan, err := core.BuildPlan(tg, core.Options{
				Seed:             2,
				BitSamples:       samples,
				DisablePredPrune: keepPred,
				Grouping:         core.GroupingOptions{BySignature: true},
			})
			if err != nil {
				t.Fatalf("samples %d keepPred %v: %v", samples, keepPred, err)
			}
			if got := plan.TotalWeight(); math.Abs(got-exhaustive) > 1e-6*exhaustive {
				t.Errorf("samples %d keepPred %v: total weight %v != exhaustive %v",
					samples, keepPred, got, exhaustive)
			}
			plans[i] = plan
		}
		pruned, kept := plans[0], plans[1]
		if kept.KnownMasked != 0 {
			t.Errorf("samples %d: keepPred mode credited %v to KnownMasked",
				samples, kept.KnownMasked)
		}
		if pruned.KnownMasked <= 0 || pruned.BitPrune.PredPruned <= 0 {
			t.Errorf("samples %d: pred pruning credited nothing (%v, %d)",
				samples, pruned.KnownMasked, pruned.BitPrune.PredPruned)
		}
		if len(pruned.Sites) >= len(kept.Sites) {
			t.Errorf("samples %d: pred pruning did not reduce sites (%d vs %d)",
				samples, len(pruned.Sites), len(kept.Sites))
		}
		// GPR sampling accounting is identical across the modes.
		if pruned.BitPrune.GPRPruned != kept.BitPrune.GPRPruned {
			t.Errorf("samples %d: GPR accounting diverged: %d vs %d",
				samples, pruned.BitPrune.GPRPruned, kept.BitPrune.GPRPruned)
		}
	}
}
