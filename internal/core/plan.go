package core

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options configures the pruning pipeline.
type Options struct {
	// Grouping tunes stage 1.
	Grouping GroupingOptions
	// DisableInstPrune skips stage 2.
	DisableInstPrune bool
	// MinPrunableICnt is the smallest representative iCnt eligible for
	// instruction-wise pruning; 0 uses DefaultMinPrunableICnt.
	MinPrunableICnt int
	// LoopIters is the number of loop iterations to sample in stage 3;
	// 0 uses DefaultLoopIters; negative disables loop pruning.
	LoopIters int
	// BitSamples is the number of sampled positions per 32-bit register in
	// stage 4; 0 uses DefaultBitSamples; negative keeps all bits.
	BitSamples int
	// DisablePredPrune keeps all four predicate flag bits as injection
	// sites instead of pruning the three non-zero flags analytically.
	DisablePredPrune bool
	// DeadWritePrune enables the extension stage beyond the paper's four:
	// sites at destinations that are overwritten before any read are
	// credited to the masked class analytically (see trace.DeadWrites).
	DeadWritePrune bool
	// Seed drives the loop-iteration sampler.
	Seed int64
}

// DefaultLoopIters is the stage-3 sample size when unspecified. The paper
// finds stability between 3 and 15 sampled iterations with an average of
// 7.22 across kernels; 8 is a safe default.
const DefaultLoopIters = 8

// DefaultBitSamples is the stage-4 sample count when unspecified; the paper
// finds 16 of 32 bit positions sufficient (Fig. 8).
const DefaultBitSamples = 16

// StageSites records the fault-site population surviving each progressive
// stage (the bars of the paper's Fig. 10).
type StageSites struct {
	Exhaustive int64 // Eq. 1 over the whole kernel
	Thread     int64 // after CTA- and thread-wise pruning
	Inst       int64 // after instruction-wise pruning
	Loop       int64 // after loop-wise pruning
	Bit        int64 // final: the number of injection experiments
}

// Plan is the output of the pruning pipeline: the weighted fault sites to
// inject plus the accounting that reproduces the paper's evaluation tables.
type Plan struct {
	Target *fault.Target

	CTAGroups    []CTAGroup
	ThreadGroups []ThreadGroup
	InstPrune    InstPruneResult
	LoopPrune    LoopPruneResult
	DeadPrune    DeadPruneResult
	BitPrune     BitPruneResult

	// Sites are the injection experiments with population weights.
	Sites []fault.WeightedSite
	// KnownMasked is weight credited to the masked class without running
	// experiments (analytically pruned predicate flag bits).
	KnownMasked float64

	Stages StageSites
}

// BuildPlan runs the four progressive pruning stages over a prepared
// target. It Prepares the target if the caller has not; with a
// fault.PreparedCache attached to the target, that Prepare is served from
// the cache when an equal-keyed target already ran its golden execution.
func BuildPlan(t *fault.Target, opt Options) (*Plan, error) {
	if err := t.Prepare(); err != nil {
		return nil, err
	}
	prof := t.Profile()
	space := fault.NewSpace(prof)

	p := &Plan{Target: t}
	p.Stages.Exhaustive = space.Total()

	// Stage 1: CTA-wise + thread-wise.
	p.CTAGroups = GroupCTAs(prof)
	p.ThreadGroups = GroupThreads(prof, p.CTAGroups, opt.Grouping)
	if err := ValidateGrouping(prof, p.ThreadGroups); err != nil {
		return nil, err
	}
	sels := make([]*selection, len(p.ThreadGroups))
	for i, g := range p.ThreadGroups {
		sels[i] = newSelection(g.Rep, prof.Threads[g.Rep].ICnt, g.Population)
		p.Stages.Thread += prof.Threads[g.Rep].SiteBits
	}

	// Stage 2: instruction-wise.
	if !opt.DisableInstPrune {
		p.InstPrune = pruneCommonInstructions(prof, sels, opt.MinPrunableICnt)
	} else {
		for _, s := range sels {
			p.InstPrune.TotalInsts += int64(len(s.weight))
		}
	}
	p.Stages.Inst = selectedBits(prof, sels)

	// Stage 3: loop-wise.
	loopIters := opt.LoopIters
	if loopIters == 0 {
		loopIters = DefaultLoopIters
	}
	if loopIters > 0 {
		rng := stats.NewRNG(opt.Seed)
		p.LoopPrune = pruneLoops(prof, sels, loopIters, rng)
	}
	p.Stages.Loop = selectedBits(prof, sels)

	// Optional extension stage: dead-destination pruning.
	var deadMasked float64
	if opt.DeadWritePrune {
		p.DeadPrune, deadMasked = pruneDeadWrites(prof, sels)
	}

	// Stage 4: bit-wise.
	bitSamples := opt.BitSamples
	if bitSamples == 0 {
		bitSamples = DefaultBitSamples
	}
	if bitSamples < 0 {
		bitSamples = 0 // keep all positions
	}
	var expandErr error
	p.Sites, p.KnownMasked, p.BitPrune, expandErr = expandBits(prof, sels, bitSamples, opt.DisablePredPrune)
	if expandErr != nil {
		return nil, expandErr
	}
	p.KnownMasked += deadMasked
	p.Stages.Bit = int64(len(p.Sites))

	if len(p.Sites) == 0 {
		return nil, errors.New("core: pruning produced no fault sites")
	}
	return p, nil
}

// selectedBits sums the destination bits of still-selected instructions.
func selectedBits(prof *trace.Profile, sels []*selection) int64 {
	var n int64
	for _, s := range sels {
		for i := range s.weight {
			if s.weight[i] > 0 {
				n += int64(prof.SiteBitsOf(s.thread, int64(i)))
			}
		}
	}
	return n
}

// TotalWeight is the weighted site mass the plan represents (experiments
// plus analytically pruned bits). Under signature-refined grouping it equals
// the exhaustive site count exactly; under plain iCnt grouping it can differ
// slightly when equal-iCnt threads mix destination widths differently.
func (p *Plan) TotalWeight() float64 {
	w := p.KnownMasked
	for _, s := range p.Sites {
		w += s.Weight
	}
	return w
}

// EstimateResult runs the plan's injection experiments and returns the full
// campaign result — the estimated error resilience profile of the complete
// fault-site population (analytically pruned weight credited to the masked
// class) plus the campaign's execution stats.
func (p *Plan) EstimateResult(opt fault.CampaignOptions) (*fault.CampaignResult, error) {
	res, err := fault.Run(p.Target, p.Sites, opt)
	if err != nil {
		return nil, err
	}
	res.Dist.W[fault.Masked] += p.KnownMasked
	return res, nil
}

// Estimate is EstimateResult reduced to the estimated profile.
func (p *Plan) Estimate(opt fault.CampaignOptions) (fault.Dist, error) {
	res, err := p.EstimateResult(opt)
	if err != nil {
		return fault.Dist{}, err
	}
	return res.Dist, nil
}

// Reduction reports the overall fault-site reduction factor achieved.
func (p *Plan) Reduction() float64 {
	if p.Stages.Bit == 0 {
		return 0
	}
	return float64(p.Stages.Exhaustive) / float64(p.Stages.Bit)
}

// String summarizes the plan.
func (p *Plan) String() string {
	return fmt.Sprintf("%s: %d CTA groups, %d thread groups, sites %d -> %d -> %d -> %d -> %d (%.1fx)",
		p.Target.Name, len(p.CTAGroups), len(p.ThreadGroups),
		p.Stages.Exhaustive, p.Stages.Thread, p.Stages.Inst, p.Stages.Loop, p.Stages.Bit,
		p.Reduction())
}
