package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/trace"
)

// BitPositionsChecked returns the sampled bit positions for a register width
// under the paper's scheme (Section III-E): the register is divided into
// equal sections and one equally spaced position is taken per slot, e.g. 8
// samples of a 32-bit register select {3, 7, 11, 15, 19, 23, 27, 31}.
// samples <= 0 or >= width keeps every position. A sample count that does
// not divide the width has no equal-section interpretation and is rejected.
func BitPositionsChecked(width, samples int) ([]int, error) {
	if samples <= 0 || samples >= width {
		out := make([]int, width)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	if width%samples != 0 {
		return nil, fmt.Errorf("core: %d bit samples do not divide width %d (valid: divisors of %d, or 0 for all)",
			samples, width, width)
	}
	step := width / samples
	out := make([]int, samples)
	for j := range out {
		out[j] = (j+1)*step - 1
	}
	return out, nil
}

// BitPositions is BitPositionsChecked for callers that have already
// validated the sample count; it panics on a non-divisor. User-facing paths
// (BuildPlan) use the checked form and surface a plain error instead.
func BitPositions(width, samples int) []int {
	out, err := BitPositionsChecked(width, samples)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// BitPruneResult summarizes stage 4.
type BitPruneResult struct {
	// Samples is the configured per-32-bit-register sample count (0 = all).
	Samples int
	// PredPruned counts predicate flag bits pruned analytically.
	PredPruned int64
	// GPRPruned counts 32-bit register bits pruned by sampling.
	GPRPruned int64
}

// expandBits implements stage 4 (paper Section III-E) and materializes the
// final weighted fault sites.
//
// For 32-bit destinations, bitSamples equally spaced positions stand for the
// whole register, each carrying width/samples of the weight. For 4-bit
// predicate destinations only the zero flag is injected: the sign, carry and
// overflow flags never feed branch conditions in the studied workloads, so
// their sites are pruned as known-masked and their weight is returned in
// knownMasked for the estimator to credit to the masked class directly.
// keepPred disables that rule (the ablation quantifying what it saves):
// every predicate flag bit then becomes an injection site.
func expandBits(prof *trace.Profile, sels []*selection, bitSamples int, keepPred bool) (sites []fault.WeightedSite, knownMasked float64, res BitPruneResult, err error) {
	res.Samples = bitSamples
	for _, s := range sels {
		tp := &prof.Threads[s.thread]
		for i := int64(0); i < tp.ICnt; i++ {
			w := s.weight[i]
			if w == 0 {
				continue
			}
			bits := prof.SiteBitsOf(s.thread, i)
			if bits == 0 {
				continue
			}
			if bits == isa.PredBits {
				if keepPred {
					for b := 0; b < bits; b++ {
						sites = append(sites, fault.WeightedSite{
							Site:   fault.Site{Thread: s.thread, DynInst: i, Bit: b},
							Weight: w,
						})
					}
				} else {
					sites = append(sites, fault.WeightedSite{
						Site:   fault.Site{Thread: s.thread, DynInst: i, Bit: 0},
						Weight: w,
					})
					knownMasked += w * float64(isa.PredBits-1)
					res.PredPruned += int64(isa.PredBits - 1)
				}
				continue
			}
			pos, perr := BitPositionsChecked(bits, bitSamples)
			if perr != nil {
				return nil, 0, res, perr
			}
			perBit := w * float64(bits) / float64(len(pos))
			for _, b := range pos {
				sites = append(sites, fault.WeightedSite{
					Site:   fault.Site{Thread: s.thread, DynInst: i, Bit: b},
					Weight: perBit,
				})
			}
			res.GPRPruned += int64(bits - len(pos))
		}
	}
	return sites, knownMasked, res, nil
}
