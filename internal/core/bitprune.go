package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/trace"
)

// BitPositions returns the sampled bit positions for a register width under
// the paper's scheme (Section III-E): the register is divided into equal
// sections and one equally spaced position is taken per slot, e.g. 8 samples
// of a 32-bit register select {3, 7, 11, 15, 19, 23, 27, 31}. samples <= 0 or
// >= width keeps every position.
func BitPositions(width, samples int) []int {
	if samples <= 0 || samples >= width {
		out := make([]int, width)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if width%samples != 0 {
		panic(fmt.Sprintf("core: %d bit samples do not divide width %d", samples, width))
	}
	step := width / samples
	out := make([]int, samples)
	for j := range out {
		out[j] = (j+1)*step - 1
	}
	return out
}

// BitPruneResult summarizes stage 4.
type BitPruneResult struct {
	// Samples is the configured per-32-bit-register sample count (0 = all).
	Samples int
	// PredPruned counts predicate flag bits pruned analytically.
	PredPruned int64
	// GPRPruned counts 32-bit register bits pruned by sampling.
	GPRPruned int64
}

// expandBits implements stage 4 (paper Section III-E) and materializes the
// final weighted fault sites.
//
// For 32-bit destinations, bitSamples equally spaced positions stand for the
// whole register, each carrying width/samples of the weight. For 4-bit
// predicate destinations only the zero flag is injected: the sign, carry and
// overflow flags never feed branch conditions in the studied workloads, so
// their sites are pruned as known-masked and their weight is returned in
// knownMasked for the estimator to credit to the masked class directly.
func expandBits(prof *trace.Profile, sels []*selection, bitSamples int) (sites []fault.WeightedSite, knownMasked float64, res BitPruneResult) {
	res.Samples = bitSamples
	for _, s := range sels {
		tp := &prof.Threads[s.thread]
		for i := int64(0); i < tp.ICnt; i++ {
			w := s.weight[i]
			if w == 0 {
				continue
			}
			bits := prof.SiteBitsOf(s.thread, i)
			if bits == 0 {
				continue
			}
			if bits == isa.PredBits {
				sites = append(sites, fault.WeightedSite{
					Site:   fault.Site{Thread: s.thread, DynInst: i, Bit: 0},
					Weight: w,
				})
				knownMasked += w * float64(isa.PredBits-1)
				res.PredPruned += int64(isa.PredBits - 1)
				continue
			}
			pos := BitPositions(bits, bitSamples)
			perBit := w * float64(bits) / float64(len(pos))
			for _, b := range pos {
				sites = append(sites, fault.WeightedSite{
					Site:   fault.Site{Thread: s.thread, DynInst: i, Bit: b},
					Weight: perBit,
				})
			}
			res.GPRPruned += int64(bits - len(pos))
		}
	}
	return sites, knownMasked, res
}

// expandBitsKeepPred is expandBits with predicate-flag pruning disabled:
// every predicate bit becomes an injection site. Used by the ablation that
// quantifies what the analytic .pred rule saves.
func expandBitsKeepPred(prof *trace.Profile, sels []*selection, bitSamples int) (sites []fault.WeightedSite, knownMasked float64, res BitPruneResult) {
	res.Samples = bitSamples
	for _, s := range sels {
		tp := &prof.Threads[s.thread]
		for i := int64(0); i < tp.ICnt; i++ {
			w := s.weight[i]
			if w == 0 {
				continue
			}
			bits := prof.SiteBitsOf(s.thread, i)
			if bits == 0 {
				continue
			}
			if bits == isa.PredBits {
				for b := 0; b < bits; b++ {
					sites = append(sites, fault.WeightedSite{
						Site:   fault.Site{Thread: s.thread, DynInst: i, Bit: b},
						Weight: w,
					})
				}
				continue
			}
			pos := BitPositions(bits, bitSamples)
			perBit := w * float64(bits) / float64(len(pos))
			for _, b := range pos {
				sites = append(sites, fault.WeightedSite{
					Site:   fault.Site{Thread: s.thread, DynInst: i, Bit: b},
					Weight: perBit,
				})
			}
			res.GPRPruned += int64(bits - len(pos))
		}
	}
	return sites, knownMasked, res
}
