package core_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/kernels"
	"repro/internal/ptx"
	"repro/internal/stats"
	"repro/internal/trace"
)

// groupedTarget builds a kernel with clear CTA and thread classes: CTA 0
// covers indices whose work loops run, CTA 1's threads all exit early
// (bounds check), and within CTA 0 even threads run a longer loop than odd
// ones.
func groupedTarget(t *testing.T) *fault.Target {
	t.Helper()
	prog, err := ptx.Assemble("grouped", `
		cvt.u32.u16 $r0, %tid.x
		cvt.u32.u16 $r1, %ctaid.x
		cvt.u32.u16 $r2, %ntid.x
		mad.lo.u32 $r0, $r1, $r2, $r0
		set.ge.u32.u32 $p0/$o127, $r0, 8
		@$p0.ne bra lexit
		and.b32 $r3, $r0, 0x00000001
		mov.u32 $r4, 6                   // even threads: 6 iterations
		set.eq.u32.u32 $p0/$o127, $r3, $r124
		@$p0.ne bra lgo
		mov.u32 $r4, 3                   // odd threads: 3 iterations
		lgo: mov.u32 $r5, $r124          // acc
		mov.u32 $r6, $r124               // k
		lloop: add.u32 $r5, $r5, $r0
		add.u32 $r6, $r6, 0x00000001
		set.lt.u32.u32 $p0/$o127, $r6, $r4
		@$p0.ne bra lloop
		shl.u32 $r7, $r0, 0x00000002
		st.global.u32 [$r7], $r5
		lexit: exit
	`)
	if err != nil {
		t.Fatal(err)
	}
	return &fault.Target{
		Name:   "grouped",
		Prog:   prog,
		Grid:   gpusim.Dim3{X: 2, Y: 1, Z: 1},
		Block:  gpusim.Dim3{X: 8, Y: 1, Z: 1},
		Init:   gpusim.NewDevice(64),
		Output: []fault.Range{{Off: 0, Len: 32}},
	}
}

func prepared(t *testing.T) *fault.Target {
	t.Helper()
	tg := groupedTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	return tg
}

func TestGroupCTAs(t *testing.T) {
	tg := prepared(t)
	groups := core.GroupCTAs(tg.Profile())
	if len(groups) != 2 {
		t.Fatalf("CTA groups = %d, want 2 (worker vs idle)", len(groups))
	}
	if groups[0].Rep != 0 || groups[1].Rep != 1 {
		t.Fatalf("reps = %d,%d", groups[0].Rep, groups[1].Rep)
	}
	if groups[0].AvgICnt <= groups[1].AvgICnt {
		t.Fatalf("worker CTA should average more instructions: %v vs %v",
			groups[0].AvgICnt, groups[1].AvgICnt)
	}
	if got := groups[0].Proportion(2); got != 0.5 {
		t.Fatalf("proportion = %v", got)
	}
}

func TestGroupThreadsTwoStep(t *testing.T) {
	tg := prepared(t)
	prof := tg.Profile()
	ctas := core.GroupCTAs(prof)
	groups := core.GroupThreads(prof, ctas, core.GroupingOptions{})
	// CTA 0: even (6 iters) and odd (3 iters) classes; CTA 1: one idle class.
	if len(groups) != 3 {
		t.Fatalf("thread groups = %d, want 3", len(groups))
	}
	if err := core.ValidateGrouping(prof, groups); err != nil {
		t.Fatal(err)
	}
	var pop int64
	for _, g := range groups {
		pop += g.Population
		if g.InCTACount != len(g.Members) {
			t.Fatalf("member bookkeeping: %d vs %d", g.InCTACount, len(g.Members))
		}
		// Representative is a member with the group's iCnt.
		if prof.Threads[g.Rep].ICnt != g.ICnt {
			t.Fatalf("rep iCnt mismatch")
		}
	}
	if pop != 16 {
		t.Fatalf("population = %d, want 16", pop)
	}
}

func TestGroupThreadsOneStep(t *testing.T) {
	tg := prepared(t)
	prof := tg.Profile()
	groups := core.GroupThreads(prof, nil, core.GroupingOptions{SkipCTAGrouping: true})
	if len(groups) != 3 {
		t.Fatalf("one-step groups = %d, want 3", len(groups))
	}
	if err := core.ValidateGrouping(prof, groups); err != nil {
		t.Fatal(err)
	}
}

func TestGroupThreadsBySignature(t *testing.T) {
	tg := prepared(t)
	prof := tg.Profile()
	ctas := core.GroupCTAs(prof)
	plain := core.GroupThreads(prof, ctas, core.GroupingOptions{})
	sig := core.GroupThreads(prof, ctas, core.GroupingOptions{BySignature: true})
	if len(sig) < len(plain) {
		t.Fatalf("signature grouping cannot be coarser: %d < %d", len(sig), len(plain))
	}
	if err := core.ValidateGrouping(prof, sig); err != nil {
		t.Fatal(err)
	}
}

func TestBitPositions(t *testing.T) {
	got := core.BitPositions(32, 8)
	want := []int{3, 7, 11, 15, 19, 23, 27, 31}
	if len(got) != len(want) {
		t.Fatalf("positions = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("positions = %v, want %v", got, want)
		}
	}
	if got := core.BitPositions(32, 0); len(got) != 32 || got[0] != 0 || got[31] != 31 {
		t.Fatalf("all positions = %v", got)
	}
	if got := core.BitPositions(32, 64); len(got) != 32 {
		t.Fatalf("oversample = %v", got)
	}
	if got := core.BitPositions(32, 4); got[0] != 7 || got[3] != 31 {
		t.Fatalf("4 samples = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-divisor sample count did not panic")
		}
	}()
	core.BitPositions(32, 5)
}

func TestBuildPlanInvariants(t *testing.T) {
	tg := prepared(t)
	plan, err := core.BuildPlan(tg, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Stages
	if !(s.Exhaustive >= s.Thread && s.Thread >= s.Inst && s.Inst >= s.Loop) {
		t.Fatalf("stage counts not monotone: %+v", s)
	}
	if s.Bit != int64(len(plan.Sites)) {
		t.Fatalf("bit stage %d != site count %d", s.Bit, len(plan.Sites))
	}
	if plan.Reduction() < 1 {
		t.Fatalf("reduction %v < 1", plan.Reduction())
	}
	for _, ws := range plan.Sites {
		if ws.Weight <= 0 {
			t.Fatalf("non-positive weight %v", ws)
		}
		if bits := tg.DestBitsAt(ws.Site.Thread, ws.Site.DynInst); bits == 0 || ws.Site.Bit >= bits {
			t.Fatalf("invalid planned site %v", ws.Site)
		}
	}
	if plan.String() == "" {
		t.Fatal("empty plan description")
	}
}

// TestWeightConservation: with signature grouping, the plan's total weight
// (experiments plus analytically pruned predicate bits) must equal the
// exhaustive site count exactly, through every stage combination.
func TestWeightConservation(t *testing.T) {
	tg := prepared(t)
	exhaustive := float64(fault.NewSpace(tg.Profile()).Total())
	opts := []core.Options{
		{},
		{DisableInstPrune: true},
		{LoopIters: -1},
		{LoopIters: 2},
		{BitSamples: 4},
		{BitSamples: -1},
		{DisablePredPrune: true},
		{Grouping: core.GroupingOptions{SkipCTAGrouping: true}},
	}
	for i, opt := range opts {
		opt.Seed = int64(i)
		opt.Grouping.BySignature = true
		plan, err := core.BuildPlan(tg, opt)
		if err != nil {
			t.Fatalf("opt %d: %v", i, err)
		}
		if got := plan.TotalWeight(); math.Abs(got-exhaustive) > 1e-6*exhaustive {
			t.Errorf("opt %d: total weight %v != exhaustive %v", i, got, exhaustive)
		}
	}
}

// TestWeightConservationProperty drives the same invariant through random
// stage parameters via testing/quick.
func TestWeightConservationProperty(t *testing.T) {
	tg := prepared(t)
	exhaustive := float64(fault.NewSpace(tg.Profile()).Total())
	f := func(seed int64, loopIters uint8, bitChoice uint8) bool {
		samples := []int{-1, 4, 8, 16, 0}[int(bitChoice)%5]
		plan, err := core.BuildPlan(tg, core.Options{
			Seed:       seed,
			LoopIters:  int(loopIters%10) + 1,
			BitSamples: samples,
			Grouping:   core.GroupingOptions{BySignature: true},
		})
		if err != nil {
			return false
		}
		return math.Abs(plan.TotalWeight()-exhaustive) <= 1e-6*exhaustive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLoopPruningReducesSites(t *testing.T) {
	tg := prepared(t)
	full, err := core.BuildPlan(tg, core.Options{Seed: 1, LoopIters: -1})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := core.BuildPlan(tg, core.Options{Seed: 1, LoopIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Stages.Loop >= full.Stages.Loop {
		t.Fatalf("loop sampling did not reduce sites: %d vs %d",
			sampled.Stages.Loop, full.Stages.Loop)
	}
	if len(sampled.LoopPrune.Samples) == 0 {
		t.Fatal("no loop samples recorded")
	}
	for _, ls := range sampled.LoopPrune.Samples {
		if len(ls.Sampled) != 2 {
			t.Fatalf("sampled %d iterations, want 2", len(ls.Sampled))
		}
		if ls.Factor <= 1 {
			t.Fatalf("factor %v should exceed 1", ls.Factor)
		}
	}
}

func TestBitPruningAccounting(t *testing.T) {
	tg := prepared(t)
	all, err := core.BuildPlan(tg, core.Options{Seed: 1, BitSamples: -1, DisablePredPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if all.KnownMasked != 0 {
		t.Fatalf("pred pruning disabled but KnownMasked = %v", all.KnownMasked)
	}
	pruned, err := core.BuildPlan(tg, core.Options{Seed: 1, BitSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.KnownMasked == 0 {
		t.Fatal("pred pruning produced no known-masked weight")
	}
	if len(pruned.Sites) >= len(all.Sites) {
		t.Fatalf("bit sampling did not reduce sites: %d vs %d",
			len(pruned.Sites), len(all.Sites))
	}
}

// TestEstimateAccuracy is the end-to-end integration check: on the grouped
// toy kernel, the pruned estimate must track a random baseline within a few
// percentage points, the paper's central claim.
func TestEstimateAccuracy(t *testing.T) {
	tg := prepared(t)
	plan, err := core.BuildPlan(tg, core.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	est, err := plan.Estimate(fault.CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(tg.Profile())
	sites := space.Random(stats.NewRNG(8), 1500)
	res, err := fault.Run(tg, fault.Uniform(sites), fault.CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The toy kernel has only 16 threads, so one representative stands for
	// at most 8 heterogeneous members — extrapolation variance is far
	// larger than on real kernels (see TestEstimateAccuracyRealKernel and
	// the Fig. 9 experiment, which land within ~2 pp). The bound here only
	// guards against gross regressions.
	if delta := est.MaxClassDelta(res.Dist); delta > 15 {
		t.Fatalf("pruned estimate off by %.1f pp: est %v vs base %v",
			delta, est, res.Dist)
	}
}

// TestEstimateAccuracyRealKernel runs the same check on a real (small)
// workload, Gaussian K1 — cheap enough for the single-core test budget.
func TestEstimateAccuracyRealKernel(t *testing.T) {
	spec, ok := kernels.ByName("Gaussian K1")
	if !ok {
		t.Fatal("kernel missing")
	}
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Target.Prepare(); err != nil {
		t.Fatal(err)
	}
	plan, err := core.BuildPlan(inst.Target, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	est, err := plan.Estimate(fault.CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(inst.Target.Profile())
	sites := space.Random(stats.NewRNG(2), 1200)
	res, err := fault.Run(inst.Target, fault.Uniform(sites), fault.CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if delta := est.MaxClassDelta(res.Dist); delta > 10 {
		t.Fatalf("Gaussian K1 estimate off by %.1f pp: est %v vs base %v",
			delta, est, res.Dist)
	}
}

func TestAutoLoopIters(t *testing.T) {
	tg := prepared(t)
	res, err := core.AutoLoopIters(tg, core.AutoLoopOptions{
		Base:     core.Options{Seed: 2},
		MaxIters: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters < 1 || res.Iters > 8 {
		t.Fatalf("selected %d iterations", res.Iters)
	}
	if len(res.Steps) < res.Iters {
		t.Fatalf("steps %d < selected %d", len(res.Steps), res.Iters)
	}
	// The toy kernel's loops have at most 6 iterations: once the sample
	// covers them, consecutive steps are identical, so the search must
	// stop before the cap.
	if res.Iters == 8 && len(res.Steps) == 8 {
		last := res.Steps[len(res.Steps)-1]
		prev := res.Steps[len(res.Steps)-2]
		if last.MaxClassDelta(prev) == 0 {
			t.Fatal("search failed to detect an exactly stable tail")
		}
	}
}

// TestDeadWriteSoundness is the critical property behind the dead-write
// extension stage: every site the liveness analysis prunes must actually be
// masked. Verified by injecting into every bit of every dead destination of
// several threads of a real kernel.
func TestDeadWriteSoundness(t *testing.T) {
	spec, _ := kernels.ByName("2DCONV K1")
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	tg := inst.Target
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	prof := tg.Profile()
	space := fault.NewSpace(prof)
	checked := 0
	for _, thread := range []int{0, 9, 27, 60} {
		dead := trace.DeadWrites(prof.Prog, prof.Threads[thread].PCs)
		sites := space.ThreadSites(thread, func(dyn int64) bool { return dead[dyn] })
		for _, s := range sites {
			o, err := tg.RunSite(s)
			if err != nil {
				t.Fatal(err)
			}
			if o != fault.Masked {
				pc := tg.StaticPCAt(s.Thread, s.DynInst)
				t.Fatalf("dead site %v (pc %d: %s) produced %v",
					s, pc, tg.Instr(pc), o)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("kernel has no dead writes to verify")
	}
	t.Logf("verified %d dead sites masked", checked)
}

func TestDeadWritePruneStage(t *testing.T) {
	tg := prepared(t)
	without, err := core.BuildPlan(tg, core.Options{Seed: 1, Grouping: core.GroupingOptions{BySignature: true}})
	if err != nil {
		t.Fatal(err)
	}
	with, err := core.BuildPlan(tg, core.Options{
		Seed: 1, DeadWritePrune: true,
		Grouping: core.GroupingOptions{BySignature: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if with.DeadPrune.Insts == 0 {
		t.Skip("toy kernel has no dead writes")
	}
	if len(with.Sites) >= len(without.Sites) {
		t.Fatalf("dead-write pruning removed nothing: %d vs %d sites",
			len(with.Sites), len(without.Sites))
	}
	// Weight conservation still holds: the pruned mass moved to
	// KnownMasked.
	exhaustive := float64(fault.NewSpace(tg.Profile()).Total())
	if got := with.TotalWeight(); math.Abs(got-exhaustive) > 1e-6*exhaustive {
		t.Fatalf("mass %v != exhaustive %v", got, exhaustive)
	}
	if with.KnownMasked <= without.KnownMasked {
		t.Fatal("dead mass not credited to masked")
	}
}

func TestPlanDeterminism(t *testing.T) {
	tg := prepared(t)
	a, err := core.BuildPlan(tg, core.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.BuildPlan(tg, core.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sites) != len(b.Sites) {
		t.Fatalf("site counts differ: %d vs %d", len(a.Sites), len(b.Sites))
	}
	for i := range a.Sites {
		if a.Sites[i] != b.Sites[i] {
			t.Fatalf("site %d differs: %v vs %v", i, a.Sites[i], b.Sites[i])
		}
	}
}
