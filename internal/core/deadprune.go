package core

import "repro/internal/trace"

// DeadPruneResult summarizes the optional dead-destination stage.
type DeadPruneResult struct {
	// Insts counts selected dynamic instructions pruned as dead writes.
	Insts int64
	// Weight is the weighted site mass credited to the masked class.
	Weight float64
}

// pruneDeadWrites implements the extension stage beyond the paper's four:
// selected instructions whose destination register is overwritten before any
// read (trace.DeadWrites) cannot produce anything but masked outcomes, so
// their sites are removed from the injection plan and their weighted mass is
// credited to the masked class analytically — the same mechanism as the
// paper's .pred flag rule, generalized via liveness.
func pruneDeadWrites(prof *trace.Profile, sels []*selection) (DeadPruneResult, float64) {
	var res DeadPruneResult
	for _, s := range sels {
		tp := &prof.Threads[s.thread]
		dead := trace.DeadWrites(prof.Prog, tp.PCs)
		for i := int64(0); i < tp.ICnt; i++ {
			if s.weight[i] == 0 || !dead[i] {
				continue
			}
			bits := prof.SiteBitsOf(s.thread, i)
			if bits == 0 {
				continue
			}
			res.Weight += s.weight[i] * float64(bits)
			s.weight[i] = 0
			res.Insts++
		}
	}
	return res, res.Weight
}
