package core

import (
	"repro/internal/gpusim"
	"repro/internal/trace"
)

// selection is the pruning pipeline's intermediate representation: for each
// representative thread, a per-dynamic-instruction weight. Weight w on
// instruction i of thread t means "inject into t's instruction i and let each
// outcome stand for w corresponding sites in the original population";
// weight 0 means pruned.
type selection struct {
	thread int
	weight []float64
}

// newSelection selects every dynamic instruction of a representative thread
// with its group population as weight (the state after stage 1).
func newSelection(rep int, icnt int64, population int64) *selection {
	s := &selection{thread: rep, weight: make([]float64, icnt)}
	for i := range s.weight {
		s.weight[i] = float64(population)
	}
	return s
}

// CommonBlock describes the instruction commonality found between one
// representative thread and the base thread (paper Fig. 5: the two
// PathFinder threads share everything except a 17-instruction middle block).
type CommonBlock struct {
	// Thread is the pruned representative.
	Thread int
	// Base is the thread whose sites absorb the pruned weight.
	Base int
	// Prefix and Suffix are the lengths (in dynamic instructions) of the
	// common leading and trailing blocks.
	Prefix, Suffix int64
	// ICnt is the pruned thread's total dynamic instruction count.
	ICnt int64
}

// PctCommon is the fraction of the thread's instructions that were pruned
// as common with the base (Table V "% Common Insn.").
func (c CommonBlock) PctCommon() float64 {
	if c.ICnt == 0 {
		return 0
	}
	return 100 * float64(c.Prefix+c.Suffix) / float64(c.ICnt)
}

// InstPruneResult summarizes stage 2.
type InstPruneResult struct {
	// Base is the base representative (largest iCnt).
	Base int
	// Blocks holds one entry per other representative, in input order.
	Blocks []CommonBlock
	// PrunedInsts counts pruned dynamic instructions across representatives.
	PrunedInsts int64
	// TotalInsts counts dynamic instructions across all representatives
	// before pruning.
	TotalInsts int64
}

// PctPruned is the fraction of representative instructions removed by
// instruction-wise pruning (Table VI "% Pruned Common Insn.").
func (r InstPruneResult) PctPruned() float64 {
	if r.TotalInsts == 0 {
		return 0
	}
	return 100 * float64(r.PrunedInsts) / float64(r.TotalInsts)
}

// minCommonInsts is the smallest common block worth pruning: transferring a
// couple of instructions between threads with almost no shared code buys
// nothing and muddies the weight accounting.
const minCommonInsts = 4

// DefaultMinPrunableICnt gates instruction-wise pruning per representative.
// The paper explicitly skips this stage for kernels like Gaussian K1/K2 and
// K-Means K1 where one representative runs "very few instructions (less
// than 10)" while another runs hundreds: such threads play disparate roles
// (early-exit vs. full worker), and although their prefixes align
// textually, the same fault has opposite consequences — a corrupted thread
// id makes a worker *skip* its output (SDC) while it leaves an idle thread
// idle (masked). Representatives shorter than this threshold keep their own
// fault sites instead of transferring them to the base.
const DefaultMinPrunableICnt = 16

// pruneCommonInstructions implements stage 2 (paper Section III-C): the
// static-PC traces of all representative threads are aligned against the
// base representative (the one with the largest iCnt); common leading and
// trailing blocks — the SIMT lockstep portions — are injected only in the
// base, which absorbs the pruned threads' population weights
// site-by-aligned-site.
func pruneCommonInstructions(prof *trace.Profile, sels []*selection, minPrunable int) InstPruneResult {
	var res InstPruneResult
	if minPrunable <= 0 {
		minPrunable = DefaultMinPrunableICnt
	}
	if len(sels) < 2 {
		for _, s := range sels {
			res.TotalInsts += int64(len(s.weight))
		}
		return res
	}
	// Base: largest iCnt, ties to lowest thread id.
	base := sels[0]
	for _, s := range sels[1:] {
		if len(s.weight) > len(base.weight) ||
			(len(s.weight) == len(base.weight) && s.thread < base.thread) {
			base = s
		}
	}
	res.Base = base.thread
	basePCs := prof.Threads[base.thread].PCs

	for _, s := range sels {
		res.TotalInsts += int64(len(s.weight))
		if s == base {
			continue
		}
		pcs := prof.Threads[s.thread].PCs
		prefix := commonPrefix(pcs, basePCs)
		suffix := commonSuffix(pcs, basePCs)
		// Blocks may not overlap within the shorter thread.
		if prefix+suffix > len(pcs) {
			suffix = len(pcs) - prefix
		}
		if prefix+suffix > len(basePCs) {
			suffix = len(basePCs) - prefix
		}
		if prefix+suffix < minCommonInsts || len(pcs) < minPrunable {
			res.Blocks = append(res.Blocks, CommonBlock{
				Thread: s.thread, Base: base.thread, ICnt: int64(len(pcs))})
			continue
		}
		for i := 0; i < prefix; i++ {
			base.weight[i] += s.weight[i]
			s.weight[i] = 0
		}
		for k := 0; k < suffix; k++ {
			bi := len(basePCs) - suffix + k
			si := len(pcs) - suffix + k
			base.weight[bi] += s.weight[si]
			s.weight[si] = 0
		}
		res.Blocks = append(res.Blocks, CommonBlock{
			Thread: s.thread, Base: base.thread,
			Prefix: int64(prefix), Suffix: int64(suffix), ICnt: int64(len(pcs)),
		})
		res.PrunedInsts += int64(prefix + suffix)
	}
	return res
}

// commonPrefix counts leading dynamic instructions with identical static PCs.
func commonPrefix(a, b []uint16) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if gpusim.PC(a[i]) != gpusim.PC(b[i]) {
			return i
		}
	}
	return n
}

// commonSuffix counts trailing dynamic instructions with identical static PCs.
func commonSuffix(a, b []uint16) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if gpusim.PC(a[len(a)-1-i]) != gpusim.PC(b[len(b)-1-i]) {
			return i
		}
	}
	return n
}
