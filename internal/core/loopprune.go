package core

import (
	"sort"

	"repro/internal/stats"
	"repro/internal/trace"
)

// LoopSample describes the iteration sampling applied to one loop of one
// representative thread.
type LoopSample struct {
	Thread int
	// Loop is the loop head PC.
	Loop int
	// TotalIters is the number of iterations carrying selected instructions.
	TotalIters int
	// Sampled are the kept iteration indices (sorted).
	Sampled []int
	// Factor is the weight multiplier applied to kept sites so the loop's
	// total weighted site mass is preserved.
	Factor float64
}

// LoopPruneResult summarizes stage 3.
type LoopPruneResult struct {
	Samples []LoopSample
	// PrunedInsts counts dynamic instructions dropped from the selection.
	PrunedInsts int64
}

// pruneLoops implements stage 3 (paper Section III-D): within each
// representative thread, each loop's selected instructions are restricted to
// a random sample of numIters iterations; the kept sites are up-weighted so
// the loop's total weighted fault-site mass is unchanged. Loops whose
// iteration count does not exceed numIters are untouched. Instructions
// outside loops are always kept: the paper samples only the repetitive
// portion.
func pruneLoops(prof *trace.Profile, sels []*selection, numIters int, rng *stats.RNG) LoopPruneResult {
	var res LoopPruneResult
	if numIters <= 0 {
		return res
	}
	for _, s := range sels {
		tp := &prof.Threads[s.thread]
		tags := trace.AnnotateLoops(tp.PCs)

		// Group the selected instructions of each loop by iteration.
		type loopInfo struct {
			iters map[int][]int64 // iteration -> dyn instruction indices
		}
		loops := make(map[int]*loopInfo)
		for i := int64(0); i < tp.ICnt; i++ {
			if s.weight[i] == 0 || !tags[i].InLoop() {
				continue
			}
			li := loops[tags[i].Loop]
			if li == nil {
				li = &loopInfo{iters: make(map[int][]int64)}
				loops[tags[i].Loop] = li
			}
			li.iters[tags[i].Iter] = append(li.iters[tags[i].Iter], i)
		}

		heads := make([]int, 0, len(loops))
		for h := range loops {
			heads = append(heads, h)
		}
		sort.Ints(heads)

		for _, h := range heads {
			li := loops[h]
			if len(li.iters) <= numIters {
				continue
			}
			iters := make([]int, 0, len(li.iters))
			for it := range li.iters {
				iters = append(iters, it)
			}
			sort.Ints(iters)

			picks := rng.Split("loop").SampleInts(len(iters), numIters)
			keep := make(map[int]bool, numIters)
			sampled := make([]int, 0, numIters)
			for _, p := range picks {
				keep[iters[p]] = true
				sampled = append(sampled, iters[p])
			}
			sort.Ints(sampled)

			// Weighted site mass before/after determines the rescale factor.
			var massAll, massKept float64
			for it, insts := range li.iters {
				for _, i := range insts {
					m := s.weight[i] * float64(prof.SiteBitsOf(s.thread, i))
					massAll += m
					if keep[it] {
						massKept += m
					}
				}
			}
			factor := 1.0
			if massKept > 0 {
				factor = massAll / massKept
			}
			for it, insts := range li.iters {
				for _, i := range insts {
					if keep[it] {
						s.weight[i] *= factor
					} else {
						s.weight[i] = 0
						res.PrunedInsts++
					}
				}
			}
			res.Samples = append(res.Samples, LoopSample{
				Thread: s.thread, Loop: h,
				TotalIters: len(iters), Sampled: sampled, Factor: factor,
			})
		}
	}
	return res
}
