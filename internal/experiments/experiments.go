// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables I-VII, Figures 2-10) from the reproduction's simulator,
// fault injector and pruning pipeline. Each experiment prints a plain-text
// table shaped like the paper's artifact so EXPERIMENTS.md can record
// paper-vs-measured side by side.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/fault"
	"repro/internal/kernels"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale selects the kernel geometry. ScaleSmall (default) keeps
	// injection campaigns tractable; ScalePaper reproduces the paper's
	// thread counts (use for the profiling-only experiments like Table I).
	Scale kernels.Scale
	// BaselineRuns is the random-campaign size standing in for the paper's
	// 60K-run ground truth; 0 uses DefaultBaselineRuns.
	BaselineRuns int
	// Parallelism caps campaign workers; 0 = GOMAXPROCS.
	Parallelism int
	// Seed drives all sampling.
	Seed int64
	// Out receives the report (defaults to io.Discard if nil).
	Out io.Writer
	// Kernels restricts multi-kernel experiments (Tables I, VI, VII,
	// Figs. 6, 9, 10) to the named subset; nil runs the paper's full set.
	Kernels []string
	// IntraStride sets Target.IntraStride on every prepared instance:
	// dynamic instructions between intra-CTA warp snapshots (0 auto-tunes,
	// negative disables the intra-CTA layer).
	IntraStride int
	// Stats, when non-nil, accumulates campaign execution stats across
	// every injection campaign the experiment runs.
	Stats *fault.StatsSink
}

// DefaultBaselineRuns is the default random-baseline campaign size. The
// paper uses 60K runs (99.8% confidence, 0.63% margin); 3000 runs keep the
// same role at small scale with a ~1.8% margin at 95% confidence.
const DefaultBaselineRuns = 3000

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

func (c Config) baselineRuns() int {
	if c.BaselineRuns <= 0 {
		return DefaultBaselineRuns
	}
	return c.BaselineRuns
}

func (c Config) campaign() fault.CampaignOptions {
	return fault.CampaignOptions{Parallelism: c.Parallelism, Sink: c.Stats}
}

// selectKernels filters a kernel list by the config's subset.
func (c Config) selectKernels(specs []kernels.Spec) []kernels.Spec {
	if len(c.Kernels) == 0 {
		return specs
	}
	keep := make(map[string]bool, len(c.Kernels))
	for _, name := range c.Kernels {
		keep[name] = true
	}
	var out []kernels.Spec
	for _, s := range specs {
		if keep[s.Meta.Name()] {
			out = append(out, s)
		}
	}
	return out
}

// selectNames filters a name list by the config's subset.
func (c Config) selectNames(names []string) []string {
	if len(c.Kernels) == 0 {
		return names
	}
	keep := make(map[string]bool, len(c.Kernels))
	for _, name := range c.Kernels {
		keep[name] = true
	}
	var out []string
	for _, n := range names {
		if keep[n] {
			out = append(out, n)
		}
	}
	return out
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the stable handle ("table1", "fig9").
	ID string
	// Title describes what the paper shows.
	Title string
	// Run executes the experiment and writes its report to cfg.Out.
	Run func(cfg Config) error
}

var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

func init() {
	register(Experiment{ID: "table1", Title: "Threads and exhaustive fault sites per kernel (Table I)", Run: RunTable1})
	register(Experiment{ID: "table2", Title: "GEMM statistical sampling vs exhaustive (Table II)", Run: RunTable2})
	register(Experiment{ID: "fig2", Title: "CTA grouping from fault-injection outcomes (Fig. 2)", Run: RunFig2})
	register(Experiment{ID: "fig3", Title: "CTA grouping from thread iCnt distributions (Fig. 3)", Run: RunFig3})
	register(Experiment{ID: "table3", Title: "2DCONV CTA and thread groups (Table III)", Run: RunTable3})
	register(Experiment{ID: "table4", Title: "HotSpot CTA and thread groups (Table IV)", Run: RunTable4})
	register(Experiment{ID: "fig4", Title: "Thread grouping inside one CTA (Fig. 4)", Run: RunFig4})
	register(Experiment{ID: "fig5", Title: "PathFinder representative-thread code alignment (Fig. 5)", Run: RunFig5})
	register(Experiment{ID: "table5", Title: "Instruction-wise pruning on two PathFinder threads (Table V)", Run: RunTable5})
	register(Experiment{ID: "table6", Title: "Instruction-wise pruning summary (Table VI)", Run: RunTable6})
	register(Experiment{ID: "table7", Title: "Loop statistics per kernel (Table VII)", Run: RunTable7})
	register(Experiment{ID: "fig6", Title: "Outcome stability vs sampled loop iterations (Fig. 6)", Run: RunFig6})
	register(Experiment{ID: "fig7", Title: "Outcomes by register type and bit section (Fig. 7)", Run: RunFig7})
	register(Experiment{ID: "fig8", Title: "Outcomes vs number of sampled bit positions (Fig. 8)", Run: RunFig8})
	register(Experiment{ID: "fig9", Title: "Pruned vs baseline resilience profiles, all kernels (Fig. 9)", Run: RunFig9})
	register(Experiment{ID: "fig10", Title: "Fault-site reduction per pruning stage (Fig. 10)", Run: RunFig10})
}

// All returns the experiments sorted by ID (tables first, then figures).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return order(out[i].ID) < order(out[j].ID) })
	return out
}

// order gives the paper's presentation order.
func order(id string) int {
	seq := []string{"table1", "table2", "fig2", "fig3", "table3", "table4",
		"fig4", "fig5", "table5", "table6", "fig6", "fig7", "fig8",
		"table7", "fig9", "fig10", "models", "ablation", "exhaustive", "variance"}
	for i, s := range seq {
		if s == id {
			return i
		}
	}
	return len(seq)
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// buildPrepared builds and prepares a kernel instance. Every experiment
// funnels through here, and Prepare routes through the process-wide
// prepared-target cache: an experiment sweep re-building the same
// kernel+scale (each table and figure builds its own instances) performs
// one golden run per distinct configuration instead of one per instance.
func buildPrepared(name string, cfg Config) (*kernels.Instance, error) {
	spec, ok := kernels.ByName(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown kernel %q", name)
	}
	inst, err := spec.Build(cfg.Scale)
	if err != nil {
		return nil, err
	}
	inst.Target.IntraStride = cfg.IntraStride
	inst.Target.Cache = fault.DefaultPreparedCache()
	if err := inst.Target.Prepare(); err != nil {
		return nil, err
	}
	return inst, nil
}

// distRow formats a three-class profile as table cells.
func distRow(d fault.Dist) string {
	return fmt.Sprintf("%7.2f %7.2f %7.2f",
		d.Pct(fault.ClassMasked), d.Pct(fault.ClassSDC), d.Pct(fault.ClassOther))
}
