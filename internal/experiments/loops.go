package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/trace"
)

// RunTable7 reproduces Table VII: per kernel, the loop iteration count of
// the busiest thread and the percentage of dynamic instructions inside
// loops, sorted ascending by loop share like the paper.
func RunTable7(cfg Config) error {
	w := cfg.out()
	type row struct {
		name    string
		threads int
		iters   int
		pct     float64
	}
	var rows []row
	for _, spec := range cfg.selectKernels(kernels.All()) {
		inst, err := buildPrepared(spec.Meta.Name(), cfg)
		if err != nil {
			return err
		}
		prof := inst.Target.Profile()
		var inLoop, total int64
		maxIters := 0
		for t := range prof.Threads {
			s := trace.SummarizeLoops(prof.Threads[t].PCs)
			inLoop += s.InLoopInstrs
			total += s.Instrs
			if s.TotalIters > maxIters {
				maxIters = s.TotalIters
			}
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(inLoop) / float64(total)
		}
		rows = append(rows, row{
			name: spec.Meta.Name(), threads: inst.Target.Threads(),
			iters: maxIters, pct: pct,
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].pct < rows[j].pct })
	fmt.Fprintf(w, "Table VII: loop statistics (scale=%s)\n", cfg.Scale)
	fmt.Fprintf(w, "%-16s %9s %11s %14s\n", "Kernel", "#Threads", "#LoopIter", "%InsnInLoop")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %9d %11d %13.2f%%\n", r.name, r.threads, r.iters, r.pct)
	}
	return nil
}

// fig6Subjects mirrors the paper's loop-stability subjects; K-Means K1 runs
// under two different seeds (Fig. 6c/6d) to show the stability point does
// not depend on which iterations the sampler picks.
var fig6Subjects = []struct {
	name string
	seed int64
}{
	{"PathFinder K1", 0},
	{"SYRK K1", 0},
	{"K-Means K1", 0},
	{"K-Means K1", 1},
}

// RunFig6 reproduces Fig. 6: the estimated outcome distribution as a
// function of the number of sampled loop iterations. The distribution
// stabilizes after a handful of iterations.
func RunFig6(cfg Config) error {
	w := cfg.out()
	const maxIters = 15
	for _, sub := range fig6Subjects {
		if len(cfg.selectNames([]string{sub.name})) == 0 {
			continue
		}
		inst, err := buildPrepared(sub.name, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Fig. 6 (%s, seed=%d): outcome distribution vs sampled loop iterations\n",
			sub.name, sub.seed)
		fmt.Fprintf(w, "%8s %9s | %7s %7s %7s\n", "numIter", "#sites", "masked", "sdc", "other")
		for n := 1; n <= maxIters; n++ {
			plan, err := core.BuildPlan(inst.Target, core.Options{
				Seed:      cfg.Seed + sub.seed*7919,
				LoopIters: n,
			})
			if err != nil {
				return err
			}
			d, err := plan.Estimate(cfg.campaign())
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%8d %9d | %s\n", n, len(plan.Sites), distRow(d))
		}
	}
	return nil
}
