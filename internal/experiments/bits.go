package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/isa"
)

// fig78Kernels mirrors the paper's bit-study subjects.
var fig78Kernels = []string{"2DCONV K1", "MVT K1"}

// RunFig7 reproduces Fig. 7: the outcome distribution per destination
// register type (.u32-style 32-bit registers vs 4-bit .pred registers) and
// bit-position section. Higher 32-bit sections produce fewer masked
// outcomes; in .pred registers only the zero flag (bit 0) matters.
func RunFig7(cfg Config) error {
	w := cfg.out()
	for _, name := range cfg.selectNames(fig78Kernels) {
		inst, err := buildPrepared(name, cfg)
		if err != nil {
			return err
		}
		// Stages 1-3 only: keep every bit position and every predicate
		// flag so the sections can be compared.
		plan, err := core.BuildPlan(inst.Target, core.Options{
			Seed:             cfg.Seed,
			BitSamples:       -1,
			DisablePredPrune: true,
		})
		if err != nil {
			return err
		}
		res, err := fault.Run(plan.Target, plan.Sites, fault.CampaignOptions{
			Parallelism: cfg.Parallelism, KeepPerSite: true,
		})
		if err != nil {
			return err
		}

		type key struct {
			pred    bool
			section int
		}
		agg := map[key]*fault.Dist{}
		for i, ws := range plan.Sites {
			bits := inst.Target.DestBitsAt(ws.Site.Thread, ws.Site.DynInst)
			k := key{pred: bits == isa.PredBits}
			if k.pred {
				k.section = ws.Site.Bit
			} else {
				k.section = ws.Site.Bit / 8
			}
			d := agg[k]
			if d == nil {
				d = &fault.Dist{}
				agg[k] = d
			}
			d.Add(res.PerSite[i], ws.Weight)
		}

		fmt.Fprintf(w, "Fig. 7 (%s): outcomes by register type and bit section\n", name)
		fmt.Fprintf(w, "%-10s %-10s | %7s %7s %7s\n", "RegType", "Bits", "masked", "sdc", "other")
		for s := 0; s < 4; s++ {
			if d := agg[key{pred: false, section: s}]; d != nil {
				fmt.Fprintf(w, "%-10s %-10s | %s\n", ".u32",
					fmt.Sprintf("%d-%d", 8*s, 8*s+7), distRow(*d))
			}
		}
		for b := 0; b < isa.PredBits; b++ {
			if d := agg[key{pred: true, section: b}]; d != nil {
				fmt.Fprintf(w, "%-10s %-10d | %s\n", ".pred", b, distRow(*d))
			}
		}
	}
	return nil
}

// RunFig8 reproduces Fig. 8: the estimated masked/SDC percentages as the
// number of sampled bit positions per 32-bit register grows from 4 to all
// 32. The paper finds 16 samples sufficient.
func RunFig8(cfg Config) error {
	w := cfg.out()
	for _, name := range cfg.selectNames(fig78Kernels) {
		inst, err := buildPrepared(name, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Fig. 8 (%s): outcomes vs sampled bit positions\n", name)
		fmt.Fprintf(w, "%8s %9s | %7s %7s %7s\n", "#bits", "#sites", "masked", "sdc", "other")
		for _, samples := range []int{4, 8, 16, -1} {
			plan, err := core.BuildPlan(inst.Target, core.Options{
				Seed:       cfg.Seed,
				BitSamples: samples,
			})
			if err != nil {
				return err
			}
			d, err := plan.Estimate(cfg.campaign())
			if err != nil {
				return err
			}
			label := fmt.Sprintf("%d", samples)
			if samples < 0 {
				label = "all"
			}
			fmt.Fprintf(w, "%8s %9d | %s\n", label, len(plan.Sites), distRow(d))
		}
	}
	return nil
}
