package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/stats"
)

// RunExhaustive is an extension the paper could not afford: on small
// kernels the simulator is fast enough to inject into *every* fault site
// (Eq. 1's full population) and obtain the true resilience profile — not a
// statistical approximation. The experiment compares, against that ground
// truth: (a) the pruned-space estimate, and (b) an Eq. 2-sized random
// sample, directly measuring the error of each.
func RunExhaustive(cfg Config) error {
	w := cfg.out()
	// Kernels whose small-scale site counts keep a full sweep under a
	// minute on one core.
	for _, name := range cfg.selectNames([]string{"Gaussian K125", "Gaussian K1"}) {
		inst, err := buildPrepared(name, cfg)
		if err != nil {
			return err
		}
		prof := inst.Target.Profile()
		space := fault.NewSpace(prof)

		// Ground truth: every site, weight 1.
		var all []fault.Site
		for t := range prof.Threads {
			all = append(all, space.ThreadSites(t, nil)...)
		}
		if int64(len(all)) != space.Total() {
			return fmt.Errorf("experiments: enumerated %d sites, Eq. 1 says %d",
				len(all), space.Total())
		}
		truth, err := fault.Run(inst.Target, fault.Uniform(all), cfg.campaign())
		if err != nil {
			return err
		}

		// The paper's two approaches, judged against the truth.
		plan, err := core.BuildPlan(inst.Target, core.Options{Seed: cfg.Seed})
		if err != nil {
			return err
		}
		pruned, err := plan.Estimate(cfg.campaign())
		if err != nil {
			return err
		}
		n := stats.SampleSize(space.Total(), 0.03, stats.TStat(0.95), 0.5)
		rng := stats.NewRNG(cfg.Seed).Split("exhaustive" + name)
		sampleSites := space.Random(rng, int(n))
		sample, err := fault.Run(inst.Target, fault.Uniform(sampleSites), cfg.campaign())
		if err != nil {
			return err
		}

		fmt.Fprintf(w, "Extension (exhaustive ground truth, %s): %d fault sites\n",
			name, space.Total())
		fmt.Fprintf(w, "%-26s %8s | %7s %7s %7s | %6s\n",
			"campaign", "#runs", "masked", "sdc", "other", "maxΔpp")
		fmt.Fprintf(w, "%-26s %8d | %s | %6s\n",
			"exhaustive (truth)", len(all), distRow(truth.Dist), "-")
		fmt.Fprintf(w, "%-26s %8d | %s | %6.2f\n",
			"pruned estimate", len(plan.Sites), distRow(pruned),
			pruned.MaxClassDelta(truth.Dist))
		fmt.Fprintf(w, "%-26s %8d | %s | %6.2f\n",
			"random (95%/±3% per Eq.2)", len(sampleSites), distRow(sample.Dist),
			sample.Dist.MaxClassDelta(truth.Dist))
	}
	return nil
}

func init() {
	register(Experiment{ID: "exhaustive", Title: "Extension: pruned and sampled campaigns vs true exhaustive ground truth", Run: RunExhaustive})
}
