package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/kernels"
)

// pathfinderReps builds the PathFinder plan and returns the base
// representative and the other representative with the largest common block
// (the paper's threads "a" and "b" in Fig. 5 / Table V).
func pathfinderReps(cfg Config) (*kernels.Instance, *core.Plan, core.CommonBlock, error) {
	inst, err := buildPrepared("PathFinder K1", cfg)
	if err != nil {
		return nil, nil, core.CommonBlock{}, err
	}
	plan, err := core.BuildPlan(inst.Target, core.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, nil, core.CommonBlock{}, err
	}
	var best core.CommonBlock
	for _, b := range plan.InstPrune.Blocks {
		if b.Prefix+b.Suffix > best.Prefix+best.Suffix {
			best = b
		}
	}
	if best.ICnt == 0 {
		return nil, nil, core.CommonBlock{}, fmt.Errorf("experiments: PathFinder has no common block")
	}
	return inst, plan, best, nil
}

// RunFig5 reproduces Fig. 5: the instruction-stream alignment of the two
// PathFinder representative threads — identical prefix, a divergent middle
// block in the longer thread, identical suffix.
func RunFig5(cfg Config) error {
	w := cfg.out()
	inst, _, blk, err := pathfinderReps(cfg)
	if err != nil {
		return err
	}
	prof := inst.Target.Profile()
	a, b := blk.Base, blk.Thread
	fmt.Fprintf(w, "Fig. 5 (PathFinder): PTXPlus alignment of representative threads\n")
	fmt.Fprintf(w, "thread a (base): id=%d iCnt=%d\n", a, prof.Threads[a].ICnt)
	fmt.Fprintf(w, "thread b:        id=%d iCnt=%d\n", b, prof.Threads[b].ICnt)
	fmt.Fprintf(w, "common prefix: %d instructions\n", blk.Prefix)
	fmt.Fprintf(w, "middle block only in a: %d instructions\n",
		prof.Threads[a].ICnt-blk.Prefix-blk.Suffix)
	fmt.Fprintf(w, "middle block only in b: %d instructions\n",
		prof.Threads[b].ICnt-blk.Prefix-blk.Suffix)
	fmt.Fprintf(w, "common suffix: %d instructions (%.1f%% of b common with a)\n",
		blk.Suffix, blk.PctCommon())

	// Show the first divergent region like the paper's side-by-side listing.
	fmt.Fprintln(w, "first instructions after the common prefix:")
	for k := int64(0); k < 5; k++ {
		i := blk.Prefix + k
		line := func(t int) string {
			if i >= prof.Threads[t].ICnt {
				return "<end>"
			}
			pc := gpusim.PC(prof.Threads[t].PCs[i])
			return inst.Target.Prog.Instrs[pc].String()
		}
		fmt.Fprintf(w, "  a: %-50s | b: %s\n", line(a), line(b))
	}
	return nil
}

// RunTable5 reproduces Table V: injecting only into the common portion of
// the two PathFinder representatives yields nearly identical masked/SDC
// distributions, justifying the extrapolation.
func RunTable5(cfg Config) error {
	w := cfg.out()
	inst, _, blk, err := pathfinderReps(cfg)
	if err != nil {
		return err
	}
	prof := inst.Target.Profile()
	space := fault.NewSpace(prof)

	fmt.Fprintln(w, "Table V: outcomes on the common instruction block of two PathFinder threads")
	fmt.Fprintf(w, "%-8s %6s %12s %8s %8s\n", "Thread", "iCnt", "%CommonInsn", "%MSK", "%SDC")
	for _, t := range []int{blk.Base, blk.Thread} {
		icnt := prof.Threads[t].ICnt
		keep := func(dyn int64) bool {
			return dyn < blk.Prefix || dyn >= icnt-blk.Suffix
		}
		sites := space.ThreadSites(t, keep)
		res, err := fault.Run(inst.Target, fault.Uniform(sites), cfg.campaign())
		if err != nil {
			return err
		}
		common := 100 * float64(blk.Prefix+blk.Suffix) / float64(icnt)
		fmt.Fprintf(w, "t%-7d %6d %11.1f%% %7.1f%% %7.1f%%\n",
			t, icnt, common, res.Dist.Pct(fault.ClassMasked), res.Dist.Pct(fault.ClassSDC))
	}
	return nil
}

// RunTable6 reproduces Table VI: per kernel, the percentage of
// representative instructions pruned as common blocks and the error this
// introduces, measured by comparing the pipeline's estimate with and without
// stage 2 (the paper compares against exhaustive injection on the
// thread-pruned space).
func RunTable6(cfg Config) error {
	w := cfg.out()
	fmt.Fprintln(w, "Table VI: instruction-wise pruning summary")
	fmt.Fprintf(w, "%-16s %14s %12s %12s\n",
		"Kernel", "%PrunedInsn", "ErrMSK(pp)", "ErrSDC(pp)")
	var sumPruned, sumMsk, sumSdc float64
	var n int
	for _, spec := range cfg.selectKernels(kernels.TableIKernels()) {
		inst, err := buildPrepared(spec.Meta.Name(), cfg)
		if err != nil {
			return err
		}
		with, err := core.BuildPlan(inst.Target, core.Options{Seed: cfg.Seed})
		if err != nil {
			return err
		}
		if with.InstPrune.PrunedInsts == 0 {
			continue // not applicable / no commonality, as in the paper
		}
		without, err := core.BuildPlan(inst.Target, core.Options{
			Seed: cfg.Seed, DisableInstPrune: true,
		})
		if err != nil {
			return err
		}
		dWith, err := with.Estimate(cfg.campaign())
		if err != nil {
			return err
		}
		dWithout, err := without.Estimate(cfg.campaign())
		if err != nil {
			return err
		}
		errMsk := dWith.Pct(fault.ClassMasked) - dWithout.Pct(fault.ClassMasked)
		errSdc := dWith.Pct(fault.ClassSDC) - dWithout.Pct(fault.ClassSDC)
		fmt.Fprintf(w, "%-16s %13.2f%% %+11.2f %+11.2f\n",
			spec.Meta.Name(), with.InstPrune.PctPruned(), errMsk, errSdc)
		sumPruned += with.InstPrune.PctPruned()
		sumMsk += errMsk
		sumSdc += errSdc
		n++
	}
	if n > 0 {
		fmt.Fprintf(w, "%-16s %13.2f%% %+11.2f %+11.2f\n",
			"Average", sumPruned/float64(n), sumMsk/float64(n), sumSdc/float64(n))
	}
	return nil
}
