package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/stats"
)

// The experiments in this file go beyond the paper's figures: they exercise
// the design choices DESIGN.md calls out as ablation candidates and the
// extended fault models the paper's related-work section attributes to
// SASSIFI-class injectors. They are clearly marked as extensions in reports.

// RunModels compares the resilience profile of one kernel under the three
// fault models: the paper's single-bit destination flip, the double-bit
// flip (what SEC-DED ECC cannot correct), and the LSU effective-address
// flip. Sites are drawn at random per model from the matching site
// population.
func RunModels(cfg Config) error {
	w := cfg.out()
	const runs = 600
	for _, name := range cfg.selectNames([]string{"2DCONV K1", "MVT K1"}) {
		inst, err := buildPrepared(name, cfg)
		if err != nil {
			return err
		}
		prof := inst.Target.Profile()
		space := fault.NewSpace(prof)
		rng := stats.NewRNG(cfg.Seed).Split("models" + name)

		fmt.Fprintf(w, "Extension (fault models, %s): outcome profile per model (%d runs each)\n",
			name, runs)
		fmt.Fprintf(w, "%-12s | %7s %7s %7s\n", "model", "masked", "sdc", "other")

		for _, model := range []fault.Model{
			fault.ModelDestValue, fault.ModelDestDouble, fault.ModelMemAddr,
		} {
			var sites []fault.Site
			if model == fault.ModelMemAddr {
				// Sample uniformly over memory-instruction address bits.
				var pool []fault.Site
				for t := range prof.Threads {
					pool = append(pool, space.MemAddrSites(t, nil)...)
				}
				if len(pool) == 0 {
					continue
				}
				for i := 0; i < runs; i++ {
					sites = append(sites, pool[rng.Intn(len(pool))])
				}
			} else {
				sites = space.Random(rng, runs)
			}
			res, err := fault.RunModel(inst.Target, fault.Uniform(sites), model, cfg.campaign())
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-12s | %s\n", model, distRow(res.Dist))
		}
	}
	return nil
}

// RunAblation quantifies the stage-1 design choices on accuracy and cost:
// the paper's iCnt classifier vs. the stricter static-PC-signature
// classifier, and the two-step CTA-then-thread grouping vs. one-step
// kernel-wide grouping (the paper argues one-step is unsound for kernels
// whose equal-iCnt threads run different code).
func RunAblation(cfg Config) error {
	w := cfg.out()
	subjects := cfg.selectNames([]string{"HotSpot K1", "2DCONV K1", "Gaussian K2"})
	configs := []struct {
		name string
		opt  core.GroupingOptions
	}{
		{"two-step iCnt (paper)", core.GroupingOptions{}},
		{"two-step +signature", core.GroupingOptions{BySignature: true}},
		{"one-step iCnt", core.GroupingOptions{SkipCTAGrouping: true}},
		{"one-step +signature", core.GroupingOptions{SkipCTAGrouping: true, BySignature: true}},
	}
	for _, name := range subjects {
		inst, err := buildPrepared(name, cfg)
		if err != nil {
			return err
		}
		space := fault.NewSpace(inst.Target.Profile())
		rng := stats.NewRNG(cfg.Seed).Split("ablation" + name)
		baseSites := space.Random(rng, cfg.baselineRuns())
		base, err := fault.Run(inst.Target, fault.Uniform(baseSites), cfg.campaign())
		if err != nil {
			return err
		}

		fmt.Fprintf(w, "Extension (grouping ablation, %s): baseline %s\n", name, base.Dist)
		fmt.Fprintf(w, "%-24s %8s %8s | %7s %7s %7s | %6s\n",
			"classifier", "groups", "#sites", "masked", "sdc", "other", "maxΔpp")
		for _, c := range configs {
			plan, err := core.BuildPlan(inst.Target, core.Options{
				Seed: cfg.Seed, Grouping: c.opt,
			})
			if err != nil {
				return err
			}
			est, err := plan.Estimate(cfg.campaign())
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-24s %8d %8d | %s | %6.2f\n",
				c.name, len(plan.ThreadGroups), len(plan.Sites),
				distRow(est), est.MaxClassDelta(base.Dist))
		}
	}
	return nil
}

func init() {
	register(Experiment{ID: "models", Title: "Extension: fault-model comparison (dest-value / dest-double / mem-addr)", Run: RunModels})
	register(Experiment{ID: "ablation", Title: "Extension: stage-1 grouping classifier ablation", Run: RunAblation})
}
