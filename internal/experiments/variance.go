package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fault"
)

// RunVariance is an extension: it quantifies how much of the pruned
// estimate's error is sampling noise. Loop-iteration and bit-position
// sampling are the pipeline's only random choices, so re-running the plan
// under several seeds and measuring the spread of the estimated classes
// separates seed variance from the method's systematic (extrapolation)
// error. A methodology whose per-seed spread is small compared to its
// baseline delta is limited by representativeness, not by sampling — which
// is what the paper's single-seed evaluation implicitly assumes.
func RunVariance(cfg Config) error {
	w := cfg.out()
	const seeds = 5
	for _, name := range cfg.selectNames([]string{"PathFinder K1", "SYRK K1", "K-Means K2"}) {
		inst, err := buildPrepared(name, cfg)
		if err != nil {
			return err
		}
		var per [fault.NumClasses][]float64
		sites := 0
		for s := 0; s < seeds; s++ {
			plan, err := core.BuildPlan(inst.Target, core.Options{Seed: cfg.Seed + int64(s)*101})
			if err != nil {
				return err
			}
			d, err := plan.Estimate(cfg.campaign())
			if err != nil {
				return err
			}
			sites = len(plan.Sites)
			for c := fault.Class(0); c < fault.NumClasses; c++ {
				per[c] = append(per[c], d.Pct(c))
			}
		}
		fmt.Fprintf(w, "Extension (seed variance, %s): %d seeds, ~%d sites each\n",
			name, seeds, sites)
		fmt.Fprintf(w, "%-8s %10s %10s %10s\n", "class", "mean", "stddev", "spread")
		for c := fault.Class(0); c < fault.NumClasses; c++ {
			mean, sd, spread := moments(per[c])
			fmt.Fprintf(w, "%-8s %9.2f%% %9.2f %9.2f\n", c, mean, sd, spread)
		}
	}
	return nil
}

// moments returns mean, sample standard deviation, and max-min spread.
func moments(xs []float64) (mean, sd, spread float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		mean += x
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	mean /= float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		sd = math.Sqrt(ss / float64(len(xs)-1))
	}
	return mean, sd, hi - lo
}

func init() {
	register(Experiment{ID: "variance", Title: "Extension: pruned-estimate variance across sampling seeds", Run: RunVariance})
}
