package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/stats"
	"repro/internal/textplot"
)

// boxplotGroupThreshold is the masked-percentage distance under which two
// CTA boxplots classify together in the injection-driven grouping (Fig. 2).
const boxplotGroupThreshold = 10.0

// findTargetPC locates the n-th occurrence of an opcode in a program — the
// paper's CTA study manually picks target instructions by line and opcode
// ("line=34, opcode=mad"); occurrence order is the deterministic equivalent.
func findTargetPC(inst *kernels.Instance, op isa.Opcode, occurrence int) (int, error) {
	seen := 0
	for pc := range inst.Target.Prog.Instrs {
		if inst.Target.Prog.Instrs[pc].Op == op {
			if seen == occurrence {
				return pc, nil
			}
			seen++
		}
	}
	return 0, fmt.Errorf("experiments: %s has no occurrence %d of %s",
		inst.Meta.Name(), occurrence, op)
}

// fig2Kernel describes one subject of the CTA grouping study.
type fig2Kernel struct {
	name       string
	op         isa.Opcode
	occurrence int
}

// fig2Kernels mirrors the paper's two subjects: 2DCONV (a mad) and HotSpot
// (an add), both from the middle of the compute path.
var fig2Kernels = []fig2Kernel{
	{name: "2DCONV K1", op: isa.OpMad, occurrence: 3},
	{name: "HotSpot K1", op: isa.OpAdd, occurrence: 7},
}

// ctaMaskedBoxplots injects into every dynamic occurrence of the target
// instruction (a sampled subset of bits per occurrence) across all threads
// and summarizes the per-thread masked percentage per CTA.
func ctaMaskedBoxplots(cfg Config, inst *kernels.Instance, pc int, bitsPerSite int) ([]stats.Boxplot, error) {
	prof := inst.Target.Profile()
	space := fault.NewSpace(prof)

	// Collect sites thread by thread so per-thread percentages fall out.
	type threadSpan struct{ lo, hi, thread int }
	var sites []fault.Site
	var spans []threadSpan
	positions := core.BitPositions(32, bitsPerSite)
	for t := range prof.Threads {
		lo := len(sites)
		for _, s := range space.InstructionSites(pc, []int{t}) {
			keep := false
			for _, b := range positions {
				if s.Bit == b {
					keep = true
					break
				}
			}
			if keep {
				sites = append(sites, s)
			}
		}
		if len(sites) > lo {
			spans = append(spans, threadSpan{lo: lo, hi: len(sites), thread: t})
		}
	}
	res, err := fault.Run(inst.Target, fault.Uniform(sites), fault.CampaignOptions{
		Parallelism: cfg.Parallelism, KeepPerSite: true,
	})
	if err != nil {
		return nil, err
	}

	perCTA := make([][]float64, prof.NumCTAs())
	for _, sp := range spans {
		masked := 0
		for i := sp.lo; i < sp.hi; i++ {
			if res.PerSite[i].Class() == fault.ClassMasked {
				masked++
			}
		}
		cta := prof.CTAOf(sp.thread)
		perCTA[cta] = append(perCTA[cta], 100*float64(masked)/float64(sp.hi-sp.lo))
	}
	boxes := make([]stats.Boxplot, len(perCTA))
	for i, vals := range perCTA {
		boxes[i] = stats.NewBoxplot(vals)
	}
	return boxes, nil
}

// greedyGroupBoxplots assigns CTAs to groups by boxplot distance, in launch
// order, mirroring how the paper reads its Fig. 2/3 color bands.
func greedyGroupBoxplots(boxes []stats.Boxplot, threshold float64) []int {
	groups := make([]int, len(boxes))
	var reps []stats.Boxplot
	for i, b := range boxes {
		assigned := -1
		for g, rb := range reps {
			if b.Distance(rb) <= threshold {
				assigned = g
				break
			}
		}
		if assigned < 0 {
			assigned = len(reps)
			reps = append(reps, b)
		}
		groups[i] = assigned
	}
	return groups
}

func printBoxplotTable(cfg Config, title string, boxes []stats.Boxplot, groups []int) {
	w := cfg.out()
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-5s %-6s %8s %8s %8s %8s %8s %8s\n",
		"CTA", "Group", "Min", "Q1", "Median", "Q3", "Max", "Mean")
	labels := make([]string, len(boxes))
	tags := make([]string, len(boxes))
	for i, b := range boxes {
		labels[i] = fmt.Sprintf("C%d", i)
		tags[i] = fmt.Sprintf("G-%d", groups[i]+1)
		fmt.Fprintf(w, "C%-4d %-6s %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f\n",
			i, tags[i], b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean)
	}
	textplot.Boxplots(w, labels, boxes, tags, 52)
}

// RunFig2 reproduces Fig. 2: CTAs grouped by the distribution of masked
// outcomes when faults are injected at one target instruction.
func RunFig2(cfg Config) error {
	for _, fk := range fig2Kernels {
		if len(cfg.selectNames([]string{fk.name})) == 0 {
			continue
		}
		inst, err := buildPrepared(fk.name, cfg)
		if err != nil {
			return err
		}
		pc, err := findTargetPC(inst, fk.op, fk.occurrence)
		if err != nil {
			return err
		}
		boxes, err := ctaMaskedBoxplots(cfg, inst, pc, 8)
		if err != nil {
			return err
		}
		groups := greedyGroupBoxplots(boxes, boxplotGroupThreshold)
		printBoxplotTable(cfg, fmt.Sprintf(
			"Fig. 2 (%s): per-CTA masked%% boxplots, target pc=%d opcode=%s",
			fk.name, pc, fk.op), boxes, groups)
	}
	return nil
}

// RunFig3 reproduces Fig. 3: the same CTAs grouped by their thread-iCnt
// distributions — one fault-free run instead of hundreds of thousands of
// injections — and shows the grouping agrees with the exact multiset
// classification the pruning pipeline uses.
func RunFig3(cfg Config) error {
	w := cfg.out()
	for _, fk := range fig2Kernels {
		if len(cfg.selectNames([]string{fk.name})) == 0 {
			continue
		}
		inst, err := buildPrepared(fk.name, cfg)
		if err != nil {
			return err
		}
		prof := inst.Target.Profile()
		boxes := make([]stats.Boxplot, prof.NumCTAs())
		for c := range boxes {
			icnts := prof.CTAICnts(c)
			vals := make([]float64, len(icnts))
			for i, x := range icnts {
				vals[i] = float64(x)
			}
			boxes[c] = stats.NewBoxplot(vals)
		}
		exact := core.GroupCTAs(prof)
		exactOf := make([]int, prof.NumCTAs())
		for gi, g := range exact {
			for _, m := range g.Members {
				exactOf[m] = gi
			}
		}
		printBoxplotTable(cfg, fmt.Sprintf(
			"Fig. 3 (%s): per-CTA thread iCnt boxplots", fk.name), boxes, exactOf)
		fmt.Fprintf(w, "iCnt-multiset grouping: %d groups over %d CTAs\n",
			len(exact), prof.NumCTAs())
	}
	return nil
}

// runGroupTable prints a Table III/IV-style CTA+thread group table.
func runGroupTable(cfg Config, name, caption string) error {
	w := cfg.out()
	inst, err := buildPrepared(name, cfg)
	if err != nil {
		return err
	}
	plan, err := core.BuildPlan(inst.Target, core.Options{Seed: cfg.Seed})
	if err != nil {
		return err
	}
	prof := inst.Target.Profile()
	fmt.Fprintln(w, caption)
	fmt.Fprintf(w, "%-8s %10s %10s   %-8s %10s %12s\n",
		"CTAGrp", "Avg.iCnt", "CTAProp%", "ThdGrp", "Thd.iCnt", "ThdProp%")
	for gi, g := range plan.CTAGroups {
		fmt.Fprintf(w, "C-%-6d %10.1f %9.2f%%\n", gi+1, g.AvgICnt,
			100*g.Proportion(prof.NumCTAs()))
		tgIdx := 0
		for _, tg := range plan.ThreadGroups {
			if tg.CTAGroup != gi {
				continue
			}
			tgIdx++
			fmt.Fprintf(w, "%-8s %10s %10s   T-%d%-5d %10d %11.2f%%\n",
				"", "", "", gi+1, tgIdx, tg.ICnt,
				100*float64(tg.InCTACount)/float64(prof.ThreadsPerCTA))
		}
	}
	return nil
}

// RunTable3 reproduces Table III (2DCONV CTA and thread groups).
func RunTable3(cfg Config) error {
	return runGroupTable(cfg, "2DCONV K1", "Table III: CTA and thread groups for 2DCONV")
}

// RunTable4 reproduces Table IV (HotSpot CTA and thread groups).
func RunTable4(cfg Config) error {
	return runGroupTable(cfg, "HotSpot K1", "Table IV: CTA and thread groups for HotSpot")
}

// RunFig4 reproduces Fig. 4: inside one CTA, the per-thread masked
// percentage tracks the per-thread iCnt, validating iCnt as the thread
// classifier. Reported per thread group (the paper plots per-thread dots).
func RunFig4(cfg Config) error {
	w := cfg.out()
	const sitesPerThread = 24
	for _, name := range cfg.selectNames([]string{"2DCONV K1", "HotSpot K1"}) {
		inst, err := buildPrepared(name, cfg)
		if err != nil {
			return err
		}
		prof := inst.Target.Profile()
		space := fault.NewSpace(prof)
		ctaGroups := core.GroupCTAs(prof)
		groups := core.GroupThreads(prof, ctaGroups, core.GroupingOptions{})

		// Use the most populous CTA group's representative CTA (the paper
		// picks 2DCONV C-2 and HotSpot C-9 by hand).
		best := 0
		for gi, g := range ctaGroups {
			if len(g.Members) > len(ctaGroups[best].Members) {
				best = gi
			}
		}
		lo, hi := prof.CTAThreads(ctaGroups[best].Rep)

		rng := stats.NewRNG(cfg.Seed).Split("fig4" + name)
		type agg struct {
			masked, total int
			count         int
		}
		perGroup := map[int]*agg{}
		groupOf := func(thread int) int {
			for gi, g := range groups {
				if g.CTAGroup != best {
					continue
				}
				if prof.Threads[thread].ICnt == g.ICnt {
					return gi
				}
			}
			return -1
		}
		var sites []fault.Site
		var owner []int
		for t := lo; t < hi; t++ {
			all := space.ThreadSites(t, nil)
			for _, i := range rng.SampleInts(len(all), sitesPerThread) {
				sites = append(sites, all[i])
				owner = append(owner, groupOf(t))
			}
		}
		res, err := fault.Run(inst.Target, fault.Uniform(sites), fault.CampaignOptions{
			Parallelism: cfg.Parallelism, KeepPerSite: true,
		})
		if err != nil {
			return err
		}
		for i, o := range res.PerSite {
			a := perGroup[owner[i]]
			if a == nil {
				a = &agg{}
				perGroup[owner[i]] = a
			}
			a.total++
			if o.Class() == fault.ClassMasked {
				a.masked++
			}
		}
		fmt.Fprintf(w, "Fig. 4 (%s, CTA group C-%d): thread groups vs masked%%\n", name, best+1)
		fmt.Fprintf(w, "%-8s %10s %10s %10s\n", "ThdGrp", "iCnt", "Threads", "Masked%")
		idx := 0
		for gi, g := range groups {
			if g.CTAGroup != best {
				continue
			}
			idx++
			a := perGroup[gi]
			if a == nil || a.total == 0 {
				continue
			}
			fmt.Fprintf(w, "T-%-6d %10d %10d %9.1f%%\n",
				idx, g.ICnt, g.InCTACount, 100*float64(a.masked)/float64(a.total))
		}
	}
	return nil
}
