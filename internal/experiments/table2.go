package experiments

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/stats"
)

// RunTable2 reproduces Table II: how many fault-injection experiments GEMM
// needs at different confidence/error targets (Eq. 2-4), the estimated
// wall-clock at the paper's nominal one minute per experiment, and the
// masked-output percentage actually measured at each sample size. The paper
// contrasts 60K runs (99.8%, ±0.63%) against 1,062 runs (95%, ±3%) to show
// that the cheap campaign misestimates the profile.
func RunTable2(cfg Config) error {
	w := cfg.out()
	inst, err := buildPrepared("GEMM K1", cfg)
	if err != nil {
		return err
	}
	space := fault.NewSpace(inst.Target.Profile())
	total := space.Total()

	type row struct {
		conf   float64
		margin float64
	}
	rows := []row{
		{0.998, 0.0063},
		{0.95, 0.03},
	}

	fmt.Fprintf(w, "Table II: fault sites and statistics for GEMM (scale=%s)\n", cfg.Scale)
	fmt.Fprintf(w, "%-12s %-8s %12s %14s %12s\n",
		"Confidence", "Margin", "#FaultSites", "Est.Time", "Masked(%)")
	fmt.Fprintf(w, "%-12s %-8s %12d %14s %12s\n",
		"100%", "0.0%", total, estTime(total), "?")

	rng := stats.NewRNG(cfg.Seed)
	for _, r := range rows {
		t := stats.TStat(r.conf)
		n := stats.SampleSize(total, r.margin, t, 0.5)
		// The reproduction's simulator is fast enough to actually run the
		// campaign (capped by cfg.BaselineRuns to keep the small scale
		// snappy); the paper could only run the 60K case.
		runs := int(n)
		if runs > cfg.baselineRuns() {
			runs = cfg.baselineRuns()
		}
		sites := space.Random(rng.Split(fmt.Sprintf("table2-%v", r.conf)), runs)
		res, err := fault.Run(inst.Target, fault.Uniform(sites), cfg.campaign())
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %-8s %12d %14s %11.1f%%  (measured over %d runs)\n",
			fmt.Sprintf("%.1f%%", r.conf*100),
			fmt.Sprintf("±%.2f%%", r.margin*100),
			n, estTime(n), res.Dist.Pct(fault.ClassMasked), runs)
	}
	return nil
}

// estTime renders the paper's nominal cost of one minute per experiment.
func estTime(n int64) string {
	d := time.Duration(n) * time.Minute
	switch {
	case d > 365*24*time.Hour:
		return fmt.Sprintf("%.0f years", d.Hours()/24/365)
	case d > 48*time.Hour:
		return fmt.Sprintf("%.0f days", d.Hours()/24)
	default:
		return fmt.Sprintf("%.0f hours", d.Hours())
	}
}
