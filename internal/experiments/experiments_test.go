package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/kernels"
)

// lightCfg keeps every experiment affordable on a single core: small scale,
// trimmed baselines, and a cheap kernel subset for the multi-kernel sweeps.
func lightCfg(buf *bytes.Buffer, subset ...string) Config {
	return Config{
		Scale:        kernels.ScaleSmall,
		BaselineRuns: 400,
		Seed:         1,
		Out:          buf,
		Kernels:      subset,
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Fatalf("registry has %d experiments, want 20 (16 paper artifacts + 4 extensions)", len(all))
	}
	// Presentation order: table1 first, then the paper's figures, then the
	// extensions.
	if all[0].ID != "table1" || all[len(all)-1].ID != "variance" {
		t.Fatalf("ordering broken: %s .. %s", all[0].ID, all[len(all)-1].ID)
	}
	for _, e := range all {
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
		got, ok := ByID(e.ID)
		if !ok || got.ID != e.ID {
			t.Fatalf("ByID(%s) failed", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	cfg := lightCfg(&buf, "Gaussian K1", "MVT K1")
	if err := RunTable1(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Gaussian", "mvt_kernel1", "#FaultSites"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "GEMM") {
		t.Fatal("kernel subset filter ignored")
	}
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTable2(lightCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"GEMM", "99.8%", "95.0%", "years"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig2AndFig3(t *testing.T) {
	var buf bytes.Buffer
	// 2DCONV only: HotSpot's instruction-targeted campaign is the expensive
	// half and fig9 already covers HotSpot end to end.
	cfg := lightCfg(&buf, "2DCONV K1")
	if err := RunFig2(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "target pc=") {
		t.Fatalf("fig2 output:\n%s", buf.String())
	}
	buf.Reset()
	if err := RunFig3(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "iCnt-multiset grouping") {
		t.Fatalf("fig3 output:\n%s", buf.String())
	}
}

func TestGroupTables(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTable3(lightCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CTAGrp") || !strings.Contains(buf.String(), "T-1") {
		t.Fatalf("table3 output:\n%s", buf.String())
	}
	buf.Reset()
	if err := RunTable4(lightCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "HotSpot") {
		t.Fatalf("table4 output:\n%s", buf.String())
	}
}

func TestFig4(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig4(lightCfg(&buf, "2DCONV K1")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Masked%") {
		t.Fatalf("fig4 output:\n%s", buf.String())
	}
}

func TestFig5AndTable5(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig5(lightCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "common prefix") || !strings.Contains(out, "common suffix") {
		t.Fatalf("fig5 output:\n%s", out)
	}
	buf.Reset()
	if err := RunTable5(lightCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "%CommonInsn") {
		t.Fatalf("table5 output:\n%s", buf.String())
	}
}

func TestTable6(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTable6(lightCfg(&buf, "2DCONV K1", "Gaussian K2")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "%PrunedInsn") || !strings.Contains(out, "Average") {
		t.Fatalf("table6 output:\n%s", out)
	}
}

func TestTable7(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTable7(lightCfg(&buf, "MVT K1", "NN K1", "PathFinder K1")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "%InsnInLoop") {
		t.Fatalf("table7 output:\n%s", out)
	}
	// Sorted ascending by loop share: NN (0%) before MVT (~97%).
	if strings.Index(out, "NN K1") > strings.Index(out, "MVT K1") {
		t.Fatalf("table7 not sorted:\n%s", out)
	}
}

func TestFig6(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig6(lightCfg(&buf, "PathFinder K1")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "numIter") {
		t.Fatalf("fig6 output:\n%s", buf.String())
	}
}

func TestFig7AndFig8(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig7(lightCfg(&buf, "2DCONV K1")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, ".pred") || !strings.Contains(out, ".u32") {
		t.Fatalf("fig7 output:\n%s", out)
	}
	buf.Reset()
	if err := RunFig8(lightCfg(&buf, "2DCONV K1")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "all") {
		t.Fatalf("fig8 output:\n%s", buf.String())
	}
}

func TestFig9(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig9(lightCfg(&buf, "Gaussian K1", "2DCONV K1")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "average |Δ|") {
		t.Fatalf("fig9 output:\n%s", out)
	}
}

func TestFig10(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig10(lightCfg(&buf, "Gaussian K1", "GEMM K1", "2DCONV K1")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The three Fig. 10 kernel classes must each appear for this subset.
	for _, want := range []string{"(a) with", "(b) without", "(c) single"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig10 missing class %q:\n%s", want, out)
		}
	}
}

func TestModelsExtension(t *testing.T) {
	var buf bytes.Buffer
	if err := RunModels(lightCfg(&buf, "2DCONV K1")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dest-value", "dest-double", "mem-addr"} {
		if !strings.Contains(out, want) {
			t.Fatalf("models output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationExtension(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAblation(lightCfg(&buf, "2DCONV K1")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "one-step iCnt") || !strings.Contains(out, "two-step +signature") {
		t.Fatalf("ablation output:\n%s", out)
	}
}

func TestExhaustiveExtension(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExhaustive(lightCfg(&buf, "Gaussian K125")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "exhaustive (truth)") || !strings.Contains(out, "pruned estimate") {
		t.Fatalf("exhaustive output:\n%s", out)
	}
}

func TestVarianceExtension(t *testing.T) {
	var buf bytes.Buffer
	if err := RunVariance(lightCfg(&buf, "PathFinder K1")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "stddev") || !strings.Contains(out, "spread") {
		t.Fatalf("variance output:\n%s", out)
	}
}

func TestUnknownKernelFails(t *testing.T) {
	if _, err := buildPrepared("No Such K9", Config{Scale: kernels.ScaleSmall}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}
