package experiments

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/kernels"
)

// RunTable1 reproduces Table I: the number of threads and the exhaustive
// fault-site count (Eq. 1) of every kernel, next to the values the paper
// reports for its GPGPU-Sim/PTXPlus builds. One fault-free profiling run per
// kernel suffices — no injections.
func RunTable1(cfg Config) error {
	w := cfg.out()
	fmt.Fprintf(w, "Table I: threads and exhaustive fault sites (scale=%s)\n", cfg.Scale)
	fmt.Fprintf(w, "%-10s %-10s %-20s %-5s %9s %15s %15s\n",
		"Suite", "App", "Kernel", "ID", "#Threads", "#FaultSites", "Paper")
	for _, spec := range cfg.selectKernels(kernels.TableIKernels()) {
		inst, err := buildPrepared(spec.Meta.Name(), cfg)
		if err != nil {
			return err
		}
		space := fault.NewSpace(inst.Target.Profile())
		fmt.Fprintf(w, "%-10s %-10s %-20s %-5s %9d %15d %15.2e\n",
			spec.Meta.Suite, spec.Meta.App, spec.Meta.Kernel, spec.Meta.ID,
			inst.Target.Threads(), space.Total(), spec.Meta.PaperSites)
	}
	return nil
}
