package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/stats"
	"repro/internal/textplot"
)

// RunFig9 reproduces Fig. 9, the paper's headline evaluation: for every
// kernel, the pruned fault-site subspace's weighted outcome distribution
// against the random-baseline campaign (the paper's statistically sound
// approximation of ground truth). The paper reports average class deltas of
// 1.68 / 1.90 / 1.64 percentage points.
func RunFig9(cfg Config) error {
	w := cfg.out()
	fmt.Fprintf(w, "Fig. 9: pruned vs baseline resilience profiles (scale=%s, baseline=%d runs)\n",
		cfg.Scale, cfg.baselineRuns())
	fmt.Fprintf(w, "%-16s %8s | %23s | %23s | %6s\n",
		"Kernel", "#inject", "pruned msk/sdc/other", "baseline msk/sdc/other", "maxΔpp")
	var sumDelta [fault.NumClasses]float64
	var n int
	for _, spec := range cfg.selectKernels(kernels.TableIKernels()) {
		inst, err := buildPrepared(spec.Meta.Name(), cfg)
		if err != nil {
			return err
		}
		plan, err := core.BuildPlan(inst.Target, core.Options{Seed: cfg.Seed})
		if err != nil {
			return err
		}
		est, err := plan.Estimate(cfg.campaign())
		if err != nil {
			return err
		}
		space := fault.NewSpace(inst.Target.Profile())
		rng := stats.NewRNG(cfg.Seed).Split("fig9" + spec.Meta.Name())
		sites := space.Random(rng, cfg.baselineRuns())
		res, err := fault.Run(inst.Target, fault.Uniform(sites), cfg.campaign())
		if err != nil {
			return err
		}
		base := res.Dist
		fmt.Fprintf(w, "%-16s %8d | %s | %s | %6.2f\n",
			spec.Meta.Name(), len(plan.Sites), distRow(est), distRow(base),
			est.MaxClassDelta(base))
		for c := fault.Class(0); c < fault.NumClasses; c++ {
			sumDelta[c] += math.Abs(est.Pct(c) - base.Pct(c))
		}
		n++
	}
	if n > 0 {
		fmt.Fprintf(w, "average |Δ|: masked %.2f  sdc %.2f  other %.2f (paper: 1.68 / 1.90 / 1.64)\n",
			sumDelta[fault.ClassMasked]/float64(n),
			sumDelta[fault.ClassSDC]/float64(n),
			sumDelta[fault.ClassOther]/float64(n))
	}
	return nil
}

// fig10Class buckets kernels the way the paper's Fig. 10 splits its
// subplots.
func fig10Class(plan *core.Plan) string {
	if len(plan.ThreadGroups) == 1 {
		return "(c) single representative - instruction pruning not applicable"
	}
	if plan.InstPrune.PrunedInsts == 0 {
		return "(b) without instruction-wise commonality"
	}
	return "(a) with instruction-wise commonality"
}

// RunFig10 reproduces Fig. 10: the fault-site population after each
// progressive pruning stage, normalized to the exhaustive space, with the
// final pruned count next to the baseline campaign size.
func RunFig10(cfg Config) error {
	w := cfg.out()
	fmt.Fprintf(w, "Fig. 10: fault sites surviving each pruning stage (scale=%s)\n", cfg.Scale)
	fmt.Fprintf(w, "%-16s %12s %10s %10s %10s %8s %9s %9s  %s\n",
		"Kernel", "exhaustive", "thread", "inst", "loop", "bit",
		"log10red", "baseline", "class")
	for _, spec := range cfg.selectKernels(kernels.TableIKernels()) {
		inst, err := buildPrepared(spec.Meta.Name(), cfg)
		if err != nil {
			return err
		}
		plan, err := core.BuildPlan(inst.Target, core.Options{Seed: cfg.Seed})
		if err != nil {
			return err
		}
		s := plan.Stages
		fmt.Fprintf(w, "%-16s %12d %10d %10d %10d %8d %9.2f %9d  %s\n",
			spec.Meta.Name(), s.Exhaustive, s.Thread, s.Inst, s.Loop, s.Bit,
			math.Log10(plan.Reduction()), cfg.baselineRuns(), fig10Class(plan))
		textplot.LogBars(w,
			[]string{"  exhaustive", "  +thread", "  +inst", "  +loop", "  +bit"},
			[]float64{float64(s.Exhaustive), float64(s.Thread),
				float64(s.Inst), float64(s.Loop), float64(s.Bit)}, 48)
	}
	return nil
}
