package stats

import "math"

// WilsonInterval returns the Wilson score confidence interval for a
// proportion estimated as successes/n at the given confidence level. It is
// the interval the campaign reports quote next to sampled resilience
// profiles: unlike the normal approximation the paper's Eq. 2 planning uses,
// Wilson stays inside [0, 1] and behaves sensibly for proportions near the
// boundaries (e.g. the ~1% SDC rates of late Gaussian kernels).
func WilsonInterval(successes, n int64, confidence float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	z := TStat(confidence)
	p := float64(successes) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// MarginAt reports the half-width (in proportion units) of the Wilson
// interval for a class with the given weight share of a campaign — the
// effective error margin achieved by n experiments.
func MarginAt(successes, n int64, confidence float64) float64 {
	lo, hi := WilsonInterval(successes, n, confidence)
	return (hi - lo) / 2
}
