package stats

import "math"

// WilsonInterval returns the Wilson score confidence interval for a
// proportion estimated as successes/n at the given confidence level. It is
// the interval the campaign reports quote next to sampled resilience
// profiles: unlike the normal approximation the paper's Eq. 2 planning uses,
// Wilson stays inside [0, 1] and behaves sensibly for proportions near the
// boundaries (e.g. the ~1% SDC rates of late Gaussian kernels).
func WilsonInterval(successes, n int64, confidence float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	return WilsonProportionInterval(float64(successes)/float64(n), float64(n), confidence)
}

// WilsonProportionInterval is WilsonInterval generalized to a fractional
// sample size: the Wilson score interval around proportion p as if it had
// been estimated from n independent Bernoulli trials. Callers with integer
// counts should prefer WilsonInterval (which delegates here, so the two
// agree bit-for-bit); the fractional form exists for weighted campaigns,
// where the honest n is the Kish effective sample size (KishESS), not the
// record count. n <= 0 yields the vacuous interval [0, 1].
func WilsonProportionInterval(p, n, confidence float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	z := TStat(confidence)
	nf := n
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// KishESS returns the Kish effective sample size of a weighted sample:
// (Σw)² / Σw². Unequal weights carry less statistical information than
// their raw count suggests — a group dominated by one heavy site is
// effectively one observation, however many records it holds — and ESS is
// the standard design-effect correction. For uniform weights the result
// equals the record count exactly (n²/n in floats is exact while n² is
// representable), so uniform-weight campaigns see no change from intervals
// computed on raw counts.
func KishESS(sumW, sumW2 float64) float64 {
	if sumW2 <= 0 {
		return 0
	}
	return sumW * sumW / sumW2
}

// MarginAt reports the half-width (in proportion units) of the Wilson
// interval for a class with the given weight share of a campaign — the
// effective error margin achieved by n experiments.
func MarginAt(successes, n int64, confidence float64) float64 {
	lo, hi := WilsonInterval(successes, n, confidence)
	return (hi - lo) / 2
}
