// Package stats provides the statistical machinery of the reproduction:
// the paper's sample-size equations (Section II-D, Eq. 2-4), five-number
// summaries for the CTA boxplot figures, distribution distances used to
// compare pruned profiles against the baseline, and deterministic random
// number generation so every experiment is reproducible.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// TStat returns the two-sided normal quantile ("t-statistic" in the paper's
// terminology, which uses the large-sample normal approximation) for a given
// confidence level, e.g. 0.95 -> 1.960, 0.998 -> 3.090.
func TStat(confidence float64) float64 {
	if confidence <= 0 || confidence >= 1 {
		panic(fmt.Sprintf("stats: confidence %v out of (0,1)", confidence))
	}
	return normQuantile(0.5 + confidence/2)
}

// normQuantile computes the standard normal quantile via the
// Beasley-Springer-Moro rational approximation (abs error < 3e-9),
// sufficient for sample-size planning.
func normQuantile(p float64) float64 {
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// SampleSize evaluates the paper's Eq. 2: the number of fault-injection
// experiments needed to estimate a proportion p over a population of N fault
// sites within error margin e at the confidence encoded by tstat.
func SampleSize(n int64, e, tstat, p float64) int64 {
	if n <= 0 {
		return 0
	}
	den := 1 + e*e*(float64(n)-1)/(tstat*tstat*p*(1-p))
	return int64(math.Ceil(float64(n) / den))
}

// SampleSizeInf evaluates Eq. 3, the N->infinity limit of Eq. 2.
func SampleSizeInf(e, tstat, p float64) int64 {
	return int64(math.Ceil(tstat * tstat / (e * e) * p * (1 - p)))
}

// SampleSizeWorstCase evaluates Eq. 4: the minimum experiments that suffice
// for any p, obtained at p = 0.5 (the paper's planning formula; 60K runs at
// 99.8% confidence and e = 0.63%, 1062 runs at 95% and e = 3%).
func SampleSizeWorstCase(e, tstat float64) int64 {
	return int64(math.Ceil(tstat * tstat / (4 * e * e)))
}

// Boxplot is the five-number summary plus mean used by the paper's CTA
// grouping figures (Figs. 2-4).
type Boxplot struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// NewBoxplot summarizes values (which it copies and sorts).
func NewBoxplot(values []float64) Boxplot {
	var b Boxplot
	b.N = len(values)
	if b.N == 0 {
		return b
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	b.Min, b.Max = v[0], v[len(v)-1]
	b.Q1 = quantileSorted(v, 0.25)
	b.Median = quantileSorted(v, 0.5)
	b.Q3 = quantileSorted(v, 0.75)
	var sum float64
	for _, x := range v {
		sum += x
	}
	b.Mean = sum / float64(len(v))
	return b
}

// quantileSorted computes the linear-interpolation quantile of sorted v.
func quantileSorted(v []float64, q float64) float64 {
	if len(v) == 1 {
		return v[0]
	}
	pos := q * float64(len(v)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return v[lo]
	}
	frac := pos - float64(lo)
	return v[lo]*(1-frac) + v[hi]*frac
}

// Distance measures dissimilarity of two boxplots as the maximum absolute
// difference across the five summary points. Grouping thresholds compare
// against this in the same units as the underlying metric.
func (b Boxplot) Distance(o Boxplot) float64 {
	d := math.Abs(b.Min - o.Min)
	d = math.Max(d, math.Abs(b.Q1-o.Q1))
	d = math.Max(d, math.Abs(b.Median-o.Median))
	d = math.Max(d, math.Abs(b.Q3-o.Q3))
	d = math.Max(d, math.Abs(b.Max-o.Max))
	return d
}

// RNG is the reproduction's deterministic random source. Experiments derive
// child RNGs with Split so that adding samples to one stage never perturbs
// another (the paper's two-seed loop-sampling check needs exactly this).
type RNG struct{ r *rand.Rand }

// NewRNG creates a deterministic generator.
func NewRNG(seed int64) *RNG { return &RNG{r: rand.New(rand.NewSource(seed))} }

// Split derives an independent child generator labeled by name.
func (g *RNG) Split(name string) *RNG {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	return NewRNG(h ^ g.r.Int63())
}

// Intn returns a uniform int in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform int64 in [0, n).
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// SampleInts draws k distinct ints uniformly from [0, n) in random order.
// When k >= n it returns all of [0, n) shuffled.
func (g *RNG) SampleInts(n, k int) []int {
	if k >= n {
		return g.Perm(n)
	}
	// Floyd's algorithm: k draws, no O(n) allocation.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := g.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Shuffle so order carries no bias.
	g.r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
