package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTStat(t *testing.T) {
	cases := []struct {
		conf float64
		want float64
	}{
		{0.95, 1.95996},
		{0.99, 2.57583},
		{0.998, 3.09023},
		{0.90, 1.64485},
	}
	for _, c := range cases {
		if got := TStat(c.conf); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("TStat(%v) = %v, want %v", c.conf, got, c.want)
		}
	}
}

func TestTStatPanics(t *testing.T) {
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TStat(%v) did not panic", bad)
				}
			}()
			TStat(bad)
		}()
	}
}

// TestSampleSizePaperNumbers checks the paper's Table II arithmetic: 60K runs
// at 99.8% confidence / 0.63% margin and ~1062 runs at 95% / 3%.
func TestSampleSizePaperNumbers(t *testing.T) {
	n60 := SampleSizeWorstCase(0.0063, TStat(0.998))
	if n60 < 58000 || n60 > 62000 {
		t.Errorf("60K case = %d", n60)
	}
	n1k := SampleSizeWorstCase(0.03, TStat(0.95))
	if n1k < 1050 || n1k > 1080 {
		t.Errorf("1K case = %d", n1k)
	}
	// The finite-population correction reduces the sample for small N.
	if got := SampleSize(10000, 0.03, TStat(0.95), 0.5); got >= n1k {
		t.Errorf("finite-population sample %d should be < %d", got, n1k)
	}
	if got := SampleSize(0, 0.03, 1.96, 0.5); got != 0 {
		t.Errorf("empty population sample = %d", got)
	}
}

func TestSampleSizeInfMatchesWorstCase(t *testing.T) {
	// At p = 0.5 the infinite-population formula equals the worst case.
	a := SampleSizeInf(0.01, 1.96, 0.5)
	b := SampleSizeWorstCase(0.01, 1.96)
	if a != b {
		t.Errorf("inf %d != worst case %d", a, b)
	}
	// Any other p needs fewer samples.
	if SampleSizeInf(0.01, 1.96, 0.2) >= b {
		t.Error("p=0.2 should need fewer samples than p=0.5")
	}
}

func TestBoxplot(t *testing.T) {
	b := NewBoxplot([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Mean != 3 {
		t.Fatalf("boxplot: %+v", b)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Fatalf("quartiles: %+v", b)
	}
	if b.N != 5 {
		t.Fatalf("N = %d", b.N)
	}

	// Interpolated quartiles.
	b = NewBoxplot([]float64{0, 10})
	if b.Q1 != 2.5 || b.Median != 5 || b.Q3 != 7.5 {
		t.Fatalf("interpolated: %+v", b)
	}

	// Singleton and empty.
	b = NewBoxplot([]float64{7})
	if b.Min != 7 || b.Max != 7 || b.Median != 7 {
		t.Fatalf("singleton: %+v", b)
	}
	if NewBoxplot(nil).N != 0 {
		t.Fatal("empty boxplot N")
	}
}

func TestBoxplotDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	NewBoxplot(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestBoxplotDistance(t *testing.T) {
	a := NewBoxplot([]float64{0, 10, 20})
	b := NewBoxplot([]float64{0, 10, 25})
	if got := a.Distance(b); got != 5 {
		t.Fatalf("distance = %v, want 5", got)
	}
	if a.Distance(a) != 0 {
		t.Fatal("self distance nonzero")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Intn(1000) != b.Intn(1000) {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Intn(1<<30) == NewRNG(2).Intn(1<<30) {
		// One collision is possible but wildly unlikely; draw more.
		x, y := NewRNG(1), NewRNG(2)
		same := true
		for i := 0; i < 10; i++ {
			if x.Int63n(1<<62) != y.Int63n(1<<62) {
				same = false
			}
		}
		if same {
			t.Fatal("different seeds produced identical streams")
		}
	}
}

func TestRNGSplit(t *testing.T) {
	// Splits with different names are independent; same name from the same
	// parent state reproduces.
	a := NewRNG(7).Split("loop")
	b := NewRNG(7).Split("loop")
	if a.Intn(1<<30) != b.Intn(1<<30) {
		t.Fatal("same split diverged")
	}
	c := NewRNG(7).Split("bits")
	d := NewRNG(7).Split("loop")
	if c.Intn(1<<30) == d.Intn(1<<30) && c.Intn(1<<30) == d.Intn(1<<30) {
		t.Fatal("different splits look identical")
	}
}

func TestSampleInts(t *testing.T) {
	g := NewRNG(3)
	got := g.SampleInts(100, 10)
	if len(got) != 10 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 100 {
			t.Fatalf("out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate: %d", v)
		}
		seen[v] = true
	}
	// k >= n returns a permutation.
	all := g.SampleInts(5, 10)
	if len(all) != 5 {
		t.Fatalf("perm len = %d", len(all))
	}
}

// TestSampleIntsProperty: distinctness and range hold for arbitrary (n, k).
func TestSampleIntsProperty(t *testing.T) {
	g := NewRNG(11)
	f := func(n, k uint8) bool {
		nn := int(n%200) + 1
		kk := int(k % 200)
		got := g.SampleInts(nn, kk)
		want := kk
		if want > nn {
			want = nn
		}
		if len(got) != want {
			return false
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= nn || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuantileMonotonic: quartiles are ordered for any input.
func TestQuantileMonotonic(t *testing.T) {
	f := func(vals []float64) bool {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true // skip degenerate float inputs
			}
		}
		if len(vals) == 0 {
			return true
		}
		b := NewBoxplot(vals)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
