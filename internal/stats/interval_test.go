package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWilsonInterval(t *testing.T) {
	// 50/100 at 95%: the classic Wilson interval is about [0.404, 0.596].
	lo, hi := WilsonInterval(50, 100, 0.95)
	if math.Abs(lo-0.404) > 0.005 || math.Abs(hi-0.596) > 0.005 {
		t.Fatalf("interval = [%v, %v]", lo, hi)
	}
	// Boundary proportions stay inside [0, 1] (the normal approximation
	// would not).
	lo, hi = WilsonInterval(0, 50, 0.95)
	if lo != 0 || hi <= 0 || hi > 0.2 {
		t.Fatalf("zero-successes interval = [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(50, 50, 0.95)
	if hi < 1-1e-9 || lo >= 1 || lo < 0.8 {
		t.Fatalf("all-successes interval = [%v, %v]", lo, hi)
	}
	// Degenerate n.
	lo, hi = WilsonInterval(0, 0, 0.95)
	if lo != 0 || hi != 1 {
		t.Fatalf("empty interval = [%v, %v]", lo, hi)
	}
}

func TestWilsonShrinksWithN(t *testing.T) {
	m1 := MarginAt(10, 100, 0.95)
	m2 := MarginAt(100, 1000, 0.95)
	m3 := MarginAt(1000, 10000, 0.95)
	if !(m1 > m2 && m2 > m3) {
		t.Fatalf("margins not shrinking: %v %v %v", m1, m2, m3)
	}
}

// TestWilsonProportionMatchesCounts pins the delegation contract: the
// count-based interval and the fractional-n interval agree bit for bit on
// integer inputs, so switching a caller from raw counts to an effective
// sample size that happens to equal the count changes nothing.
func TestWilsonProportionMatchesCounts(t *testing.T) {
	f := func(s, n uint16) bool {
		nn := int64(n%5000) + 1
		ss := int64(s) % (nn + 1)
		lo1, hi1 := WilsonInterval(ss, nn, 0.95)
		lo2, hi2 := WilsonProportionInterval(float64(ss)/float64(nn), float64(nn), 0.95)
		return lo1 == lo2 && hi1 == hi2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKishESS(t *testing.T) {
	// Uniform unit weights: ESS equals the record count exactly (this
	// exactness is what keeps unweighted advisor fixtures byte-identical).
	for _, n := range []int{1, 2, 7, 120, 100000} {
		sumW, sumW2 := float64(n), float64(n)
		if got := KishESS(sumW, sumW2); got != float64(n) {
			t.Fatalf("uniform ESS(%d) = %v, want exactly %v", n, got, float64(n))
		}
	}
	// Weights {1, 1, 4}: (6)²/18 = 2 — three records carry two
	// observations' worth of information.
	if got := KishESS(6, 18); got != 2 {
		t.Fatalf("ESS{1,1,4} = %v, want 2", got)
	}
	// One dominant weight collapses the group toward a single observation.
	if got := KishESS(1+1000, 1+1000*1000); got >= 1.01 {
		t.Fatalf("dominated ESS = %v, want ~1", got)
	}
	// Degenerate and empty inputs are harmless.
	if got := KishESS(0, 0); got != 0 {
		t.Fatalf("empty ESS = %v, want 0", got)
	}
}

// TestKishWidensInterval: discounting n to the effective sample size can
// only widen the interval (same p, smaller n ⇒ larger half-width).
func TestKishWidensInterval(t *testing.T) {
	p := 1.0 / 3.0
	loRaw, hiRaw := WilsonProportionInterval(p, 3, 0.95)
	loESS, hiESS := WilsonProportionInterval(p, KishESS(6, 18), 0.95)
	if hiESS-loESS <= hiRaw-loRaw {
		t.Fatalf("ESS interval [%v,%v] not wider than raw-count [%v,%v]",
			loESS, hiESS, loRaw, hiRaw)
	}
}

// TestWilsonProperty: for arbitrary (successes, n), the interval is ordered,
// bounded, and contains the point estimate.
func TestWilsonProperty(t *testing.T) {
	f := func(s, n uint16) bool {
		nn := int64(n%5000) + 1
		ss := int64(s) % (nn + 1)
		lo, hi := WilsonInterval(ss, nn, 0.95)
		p := float64(ss) / float64(nn)
		return lo >= 0 && hi <= 1 && lo <= hi && p >= lo-1e-12 && p <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
