package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWilsonInterval(t *testing.T) {
	// 50/100 at 95%: the classic Wilson interval is about [0.404, 0.596].
	lo, hi := WilsonInterval(50, 100, 0.95)
	if math.Abs(lo-0.404) > 0.005 || math.Abs(hi-0.596) > 0.005 {
		t.Fatalf("interval = [%v, %v]", lo, hi)
	}
	// Boundary proportions stay inside [0, 1] (the normal approximation
	// would not).
	lo, hi = WilsonInterval(0, 50, 0.95)
	if lo != 0 || hi <= 0 || hi > 0.2 {
		t.Fatalf("zero-successes interval = [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(50, 50, 0.95)
	if hi < 1-1e-9 || lo >= 1 || lo < 0.8 {
		t.Fatalf("all-successes interval = [%v, %v]", lo, hi)
	}
	// Degenerate n.
	lo, hi = WilsonInterval(0, 0, 0.95)
	if lo != 0 || hi != 1 {
		t.Fatalf("empty interval = [%v, %v]", lo, hi)
	}
}

func TestWilsonShrinksWithN(t *testing.T) {
	m1 := MarginAt(10, 100, 0.95)
	m2 := MarginAt(100, 1000, 0.95)
	m3 := MarginAt(1000, 10000, 0.95)
	if !(m1 > m2 && m2 > m3) {
		t.Fatalf("margins not shrinking: %v %v %v", m1, m2, m3)
	}
}

// TestWilsonProperty: for arbitrary (successes, n), the interval is ordered,
// bounded, and contains the point estimate.
func TestWilsonProperty(t *testing.T) {
	f := func(s, n uint16) bool {
		nn := int64(n%5000) + 1
		ss := int64(s) % (nn + 1)
		lo, hi := WilsonInterval(ss, nn, 0.95)
		p := float64(ss) / float64(nn)
		return lo >= 0 && hi <= 1 && lo <= hi && p >= lo-1e-12 && p <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
