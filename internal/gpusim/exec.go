package gpusim

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// evalCond evaluates a condition code against predicate flags, mirroring the
// PTXPlus condition-code semantics used by guarded branches such as
// "@$p0.eq bra": eq tests the zero flag, ne its complement, lt the sign
// flag, and so on. Unsigned forms (lo/ls/hi/hs) use the carry flag as
// not-borrow. valid=false flags a condition code with no defined semantics
// (including CmpNone, which the parser never emits on a guard); callers
// surface it as a TrapInvalid rather than silently executing.
func evalCond(flags uint8, c isa.CmpOp) (cond, valid bool) {
	z := flags&isa.FlagZero != 0
	s := flags&isa.FlagSign != 0
	cy := flags&isa.FlagCarry != 0
	switch c {
	case isa.CmpEq:
		return z, true
	case isa.CmpNe:
		return !z, true
	case isa.CmpLt:
		return s, true
	case isa.CmpLe:
		return s || z, true
	case isa.CmpGt:
		return !s && !z, true
	case isa.CmpGe:
		return !s, true
	case isa.CmpLo:
		return !cy && !z, true
	case isa.CmpLs:
		return !cy || z, true
	case isa.CmpHi:
		return cy && !z, true
	case isa.CmpHs:
		return cy, true
	}
	return false, false
}

// compare evaluates a set/setp comparison of raw values a, b under type t.
// valid=false flags a selector with no defined semantics for the type:
// CmpNone, out-of-range codes, and the unsigned forms (lo/ls/hi/hs) applied
// to floats. On signed integers the unsigned forms compare the raw bits
// (the PTXPlus listings use them for address arithmetic) and stay valid.
func compare(c isa.CmpOp, a, b uint32, t isa.DataType) (cond, valid bool) {
	if t.Float() {
		fa, fb := f32(a), f32(b)
		switch c {
		case isa.CmpEq:
			return fa == fb, true
		case isa.CmpNe:
			return fa != fb, true
		case isa.CmpLt:
			return fa < fb, true
		case isa.CmpLe:
			return fa <= fb, true
		case isa.CmpGt:
			return fa > fb, true
		case isa.CmpGe:
			return fa >= fb, true
		}
		return false, false
	}
	if t.Signed() {
		sa, sb := int32(a), int32(b)
		switch c {
		case isa.CmpEq:
			return sa == sb, true
		case isa.CmpNe:
			return sa != sb, true
		case isa.CmpLt:
			return sa < sb, true
		case isa.CmpLe:
			return sa <= sb, true
		case isa.CmpGt:
			return sa > sb, true
		case isa.CmpGe:
			return sa >= sb, true
		}
		// lo/ls/hi/hs on signed types fall through to the raw-bit forms.
	}
	switch c {
	case isa.CmpEq:
		return a == b, true
	case isa.CmpNe:
		return a != b, true
	case isa.CmpLt, isa.CmpLo:
		return a < b, true
	case isa.CmpLe, isa.CmpLs:
		return a <= b, true
	case isa.CmpGt, isa.CmpHi:
		return a > b, true
	case isa.CmpGe, isa.CmpHs:
		return a >= b, true
	}
	return false, false
}

// invalidCondTrap is the trap for a guard or selp condition code outside the
// defined set. The compiled plan (plan.go) detects the same condition at
// decode time and must build a bit-identical trap.
func invalidCondTrap(th *threadState, c isa.CmpOp) *Trap {
	return &Trap{Kind: TrapInvalid, Thread: th.flat, PC: th.pc,
		Msg: fmt.Sprintf("invalid condition code %d", uint8(c))}
}

// invalidCmpTrap is the trap for a set/setp comparison selector with no
// defined semantics for the source type. Mirrored by the compiled plan.
func invalidCmpTrap(th *threadState, c isa.CmpOp) *Trap {
	return &Trap{Kind: TrapInvalid, Thread: th.flat, PC: th.pc,
		Msg: fmt.Sprintf("invalid comparison code %d", uint8(c))}
}

// valueFlags derives predicate flags from a result value: zero and sign from
// the value itself, carry/overflow only meaningful for add/sub (passed in).
func valueFlags(v uint32, carry, overflow bool) uint8 {
	var f uint8
	if v == 0 {
		f |= isa.FlagZero
	}
	if int32(v) < 0 {
		f |= isa.FlagSign
	}
	if carry {
		f |= isa.FlagCarry
	}
	if overflow {
		f |= isa.FlagOverflow
	}
	return f
}

// watchdogTrap builds the runaway-thread trap, shared between the reference
// step and the compiled dispatch loops so the message stays bit-identical.
func (e *exec) watchdogTrap(th *threadState) *Trap {
	return &Trap{Kind: TrapWatchdog, Thread: th.flat, PC: th.pc,
		Msg: fmt.Sprintf("exceeded %d dynamic instructions", e.watchdog)}
}

// step executes one dynamic instruction of thread th.
// It returns blocked=true when the thread parked at a barrier (pc already
// advanced past the bar.sync), and a trap on abnormal termination.
func (e *exec) step(th *threadState, cta *ctaState) (blocked bool, trap *Trap) {
	if th.pc < 0 || th.pc >= len(e.prog.Instrs) {
		// Falling off the end retires the thread, like an implicit exit.
		th.done = true
		return false, nil
	}
	in := &e.prog.Instrs[th.pc]

	th.dynCount++
	if th.dynCount > e.watchdog {
		return false, e.watchdogTrap(th)
	}

	// Guard evaluation: a failed guard annuls the instruction (it still
	// retires and counts toward iCnt, but writes nothing and is not a
	// fault site).
	executed := true
	if in.Guard.Active() {
		ok, valid := evalCond(th.preds[in.Guard.Reg.Index], in.Guard.Cond)
		if !valid {
			return false, invalidCondTrap(th, in.Guard.Cond)
		}
		if in.Guard.Not {
			ok = !ok
		}
		executed = ok
	}

	inj := e.launch.Inject
	injHere := inj != nil && th.flat == inj.Thread && th.dynCount-1 == inj.DynInst

	// DestReg is only needed for tracing and for the injection writeback —
	// skip it on the hot path of plain campaign steps.
	wrote := false
	if e.launch.Tracer != nil || injHere {
		_, _, hasDest := in.DestReg()
		wrote = executed && hasDest
		if e.launch.Tracer != nil {
			e.launch.Tracer.Record(th.flat, th.pc, wrote)
		}
	}
	if injHere && executed && inj.Kind == InjectMemAddr {
		// Arm the address corruption; address() consumes it during apply.
		e.addrFlipBit = inj.Bit
	}

	nextPC := th.pc + 1
	if executed {
		var t *Trap
		nextPC, blocked, t = e.apply(th, cta, in)
		if t != nil {
			e.addrFlipBit = -1
			return false, t
		}
	}
	// Disarm if the targeted instruction computed no address.
	e.addrFlipBit = -1

	// Destination-register fault models apply right after writeback of the
	// targeted dynamic instruction. DynInst is 0-based over all retired
	// instructions of the thread.
	if injHere && wrote {
		dreg, _, _ := in.DestReg()
		switch inj.Kind {
		case InjectDestValue:
			e.flipRegBit(th, dreg, inj.Bit)
		case InjectDestDouble:
			e.flipRegBit(th, dreg, inj.Bit)
			e.flipRegBit(th, dreg, inj.Bit+1)
		case InjectDestByte:
			e.flipRegByte(th, dreg, inj.Bit)
		case InjectLaneCorrelated:
			e.flipLaneGroup(th, cta, dreg, inj.Bit)
		}
	}
	if e.persist != nil {
		blocked = e.persistAfterStep(th, blocked)
	}

	th.pc = nextPC
	return blocked, nil
}

// srcOp resolves source operand i of in under the instruction's source type.
func (e *exec) srcOp(th *threadState, cta *ctaState, in *isa.Instruction, i int) (uint32, *Trap) {
	if i >= len(in.Srcs) {
		return 0, &Trap{Kind: TrapInvalid, Thread: th.flat, PC: th.pc,
			Msg: fmt.Sprintf("%s: missing operand %d", in.Op, i)}
	}
	return e.sourceValue(th, cta, &in.Srcs[i], in.SType)
}

// apply executes the operation of in (guard already passed), returning the
// next PC and whether the thread parked at a barrier.
func (e *exec) apply(th *threadState, cta *ctaState, in *isa.Instruction) (nextPC int, blocked bool, trap *Trap) {
	nextPC = th.pc + 1

	switch in.Op {
	case isa.OpNop, isa.OpSsy:
		return nextPC, false, nil

	case isa.OpExit, isa.OpRet, isa.OpRetp:
		th.done = true
		return th.pc, false, nil

	case isa.OpBra:
		target, ok := e.prog.BranchPC(th.pc)
		if !ok {
			return 0, false, &Trap{Kind: TrapInvalid, Thread: th.flat, PC: th.pc,
				Msg: "unresolved branch target"}
		}
		return target, false, nil

	case isa.OpBar:
		th.waiting = true
		th.barID = in.Srcs[0].Imm
		return nextPC, true, nil

	case isa.OpSt:
		v, t := e.srcOp(th, cta, in, 0)
		if t != nil {
			return 0, false, t
		}
		if tr := e.store(th, cta, &in.Dst, in.DType, v); tr != nil {
			return 0, false, tr
		}
		return nextPC, false, nil

	case isa.OpMov, isa.OpLd:
		// mov supports register/immediate/memory sources and register or
		// memory destinations; ld is mov with a mandatory memory source.
		v, t := e.srcOp(th, cta, in, 0)
		if t != nil {
			return 0, false, t
		}
		if in.Dst.Kind == isa.OpdMem {
			if tr := e.store(th, cta, &in.Dst, in.DType, v); tr != nil {
				return 0, false, tr
			}
			return nextPC, false, nil
		}
		e.writeDest(th, in, v, valueFlags(v, false, false))
		return nextPC, false, nil

	case isa.OpSet, isa.OpSetp:
		a, t := e.srcOp(th, cta, in, 0)
		if t != nil {
			return 0, false, t
		}
		b, t := e.srcOp(th, cta, in, 1)
		if t != nil {
			return 0, false, t
		}
		cv, valid := compare(in.Cmp, a, b, in.SType)
		if !valid {
			return 0, false, invalidCmpTrap(th, in.Cmp)
		}
		var v uint32
		if cv {
			v = 0xFFFFFFFF
			if in.DType.Float() {
				v = f32bits(1.0)
			}
		}
		e.writeDest(th, in, v, valueFlags(v, false, false))
		return nextPC, false, nil

	case isa.OpSelp:
		a, t := e.srcOp(th, cta, in, 0)
		if t != nil {
			return 0, false, t
		}
		b, t := e.srcOp(th, cta, in, 1)
		if t != nil {
			return 0, false, t
		}
		if len(in.Srcs) < 3 || !in.Srcs[2].IsReg(isa.RegPred) {
			return 0, false, &Trap{Kind: TrapInvalid, Thread: th.flat, PC: th.pc,
				Msg: "selp needs a predicate selector"}
		}
		flags := th.preds[in.Srcs[2].Reg.Index]
		v := b
		cond := in.Cmp
		if cond == isa.CmpNone {
			cond = isa.CmpNe
		}
		sel, valid := evalCond(flags, cond)
		if !valid {
			return 0, false, invalidCondTrap(th, cond)
		}
		if sel {
			v = a
		}
		e.writeDest(th, in, v, valueFlags(v, false, false))
		return nextPC, false, nil
	}

	// Remaining ops are pure ALU/SFU computations.
	v, carry, overflow, trap := e.compute(th, cta, in)
	if trap != nil {
		return 0, false, trap
	}
	if in.Sat && in.DType == isa.TypeF32 {
		f := f32(v)
		if f < 0 {
			v = f32bits(0)
		} else if f > 1 {
			v = f32bits(1)
		}
	}
	if in.Dst.Kind == isa.OpdMem {
		if tr := e.store(th, cta, &in.Dst, in.DType, v); tr != nil {
			return 0, false, tr
		}
		return nextPC, false, nil
	}
	e.writeDest(th, in, v, valueFlags(v, carry, overflow))
	return nextPC, false, nil
}

// compute evaluates ALU/SFU opcodes to a raw 32-bit result.
func (e *exec) compute(th *threadState, cta *ctaState, in *isa.Instruction) (v uint32, carry, overflow bool, trap *Trap) {
	a, t := e.srcOp(th, cta, in, 0)
	if t != nil {
		return 0, false, false, t
	}

	// Unary operations.
	switch in.Op {
	case isa.OpNot:
		return ^a, false, false, nil
	case isa.OpCnot:
		if a == 0 {
			return 1, false, false, nil
		}
		return 0, false, false, nil
	case isa.OpAbs:
		if in.DType.Float() {
			return a &^ 0x80000000, false, false, nil
		}
		if int32(a) < 0 {
			return -a, false, false, nil
		}
		return a, false, false, nil
	case isa.OpNeg:
		if in.DType.Float() {
			return a ^ 0x80000000, false, false, nil
		}
		return -a, false, false, nil
	case isa.OpCvt:
		return cvt(a, in.DType, in.SType), false, false, nil
	case isa.OpRcp:
		return f32bits(1 / f32(a)), false, false, nil
	case isa.OpSqrt:
		return f32bits(float32(math.Sqrt(float64(f32(a))))), false, false, nil
	case isa.OpRsqrt:
		return f32bits(float32(1 / math.Sqrt(float64(f32(a))))), false, false, nil
	case isa.OpSin:
		return f32bits(float32(math.Sin(float64(f32(a))))), false, false, nil
	case isa.OpCos:
		return f32bits(float32(math.Cos(float64(f32(a))))), false, false, nil
	case isa.OpEx2:
		return f32bits(float32(math.Exp2(float64(f32(a))))), false, false, nil
	case isa.OpLg2:
		return f32bits(float32(math.Log2(float64(f32(a))))), false, false, nil
	}

	b, t := e.srcOp(th, cta, in, 1)
	if t != nil {
		return 0, false, false, t
	}

	ft := in.DType.Float() || in.SType.Float()
	switch in.Op {
	case isa.OpAdd:
		if ft {
			return f32bits(f32(a) + f32(b)), false, false, nil
		}
		s := a + b
		carry = s < a
		overflow = (a^b)&0x80000000 == 0 && (a^s)&0x80000000 != 0
		return s, carry, overflow, nil
	case isa.OpSub:
		if ft {
			return f32bits(f32(a) - f32(b)), false, false, nil
		}
		s := a - b
		carry = a >= b // not-borrow
		overflow = (a^b)&0x80000000 != 0 && (a^s)&0x80000000 != 0
		return s, carry, overflow, nil
	case isa.OpMul:
		if ft {
			return f32bits(f32(a) * f32(b)), false, false, nil
		}
		if in.Wide {
			return wideMul(a, b, in.SType), false, false, nil
		}
		return a * b, false, false, nil
	case isa.OpMad:
		c, t := e.srcOp(th, cta, in, 2)
		if t != nil {
			return 0, false, false, t
		}
		if ft {
			return f32bits(f32(a)*f32(b) + f32(c)), false, false, nil
		}
		if in.Wide {
			return wideMul(a, b, in.SType) + c, false, false, nil
		}
		return a*b + c, false, false, nil
	case isa.OpDiv:
		if ft {
			return f32bits(f32(a) / f32(b)), false, false, nil
		}
		if b == 0 {
			// Integer division by zero yields all-ones on NVIDIA hardware
			// rather than trapping; faults that corrupt divisors therefore
			// surface as SDCs, not crashes.
			return 0xFFFFFFFF, false, false, nil
		}
		if in.SType.Signed() {
			if int32(a) == math.MinInt32 && int32(b) == -1 {
				return a, false, false, nil
			}
			return uint32(int32(a) / int32(b)), false, false, nil
		}
		return a / b, false, false, nil
	case isa.OpRem:
		if b == 0 {
			return a, false, false, nil
		}
		if in.SType.Signed() {
			if int32(a) == math.MinInt32 && int32(b) == -1 {
				return 0, false, false, nil
			}
			return uint32(int32(a) % int32(b)), false, false, nil
		}
		return a % b, false, false, nil
	case isa.OpMin:
		if ft {
			return f32bits(float32(math.Min(float64(f32(a)), float64(f32(b))))), false, false, nil
		}
		if in.SType.Signed() {
			if int32(a) < int32(b) {
				return a, false, false, nil
			}
			return b, false, false, nil
		}
		return min(a, b), false, false, nil
	case isa.OpMax:
		if ft {
			return f32bits(float32(math.Max(float64(f32(a)), float64(f32(b))))), false, false, nil
		}
		if in.SType.Signed() {
			if int32(a) > int32(b) {
				return a, false, false, nil
			}
			return b, false, false, nil
		}
		return max(a, b), false, false, nil
	case isa.OpAnd:
		return a & b, false, false, nil
	case isa.OpOr:
		return a | b, false, false, nil
	case isa.OpXor:
		return a ^ b, false, false, nil
	case isa.OpShl:
		return a << (b & 31), false, false, nil
	case isa.OpShr:
		if in.SType.Signed() || in.DType.Signed() {
			return uint32(int32(a) >> (b & 31)), false, false, nil
		}
		return a >> (b & 31), false, false, nil
	case isa.OpSad:
		c, t := e.srcOp(th, cta, in, 2)
		if t != nil {
			return 0, false, false, t
		}
		var d uint32
		if in.SType.Signed() {
			sa, sb := int32(a), int32(b)
			if sa > sb {
				d = uint32(sa - sb)
			} else {
				d = uint32(sb - sa)
			}
		} else if a > b {
			d = a - b
		} else {
			d = b - a
		}
		return c + d, false, false, nil
	case isa.OpSlct:
		c, t := e.srcOp(th, cta, in, 2)
		if t != nil {
			return 0, false, false, t
		}
		if int32(c) >= 0 {
			return a, false, false, nil
		}
		return b, false, false, nil
	}
	return 0, false, false, &Trap{Kind: TrapInvalid, Thread: th.flat, PC: th.pc,
		Msg: fmt.Sprintf("unimplemented opcode %s", in.Op)}
}

// wideMul computes the 16x16->32 multiply of mul.wide/mad.wide.
func wideMul(a, b uint32, t isa.DataType) uint32 {
	if t.Signed() {
		return uint32(int32(int16(a)) * int32(int16(b)))
	}
	return (a & 0xFFFF) * (b & 0xFFFF)
}

// cvt implements type conversion between the supported scalar types.
func cvt(a uint32, dt, st isa.DataType) uint32 {
	// Normalize the source to a canonical 32-bit value first.
	switch st {
	case isa.TypeU8, isa.TypeB8:
		a &= 0xFF
	case isa.TypeS8:
		a = uint32(int32(int8(a)))
	case isa.TypeU16, isa.TypeB16:
		a &= 0xFFFF
	case isa.TypeS16:
		a = uint32(int32(int16(a)))
	}
	switch {
	case dt.Float() && !st.Float():
		if st.Signed() {
			return f32bits(float32(int32(a)))
		}
		return f32bits(float32(a))
	case !dt.Float() && st.Float():
		f := f32(a)
		if dt.Signed() {
			switch {
			case math.IsNaN(float64(f)):
				return 0
			case f >= math.MaxInt32:
				return uint32(int32(math.MaxInt32))
			case f <= math.MinInt32:
				return 0x80000000
			}
			return uint32(int32(f))
		}
		switch {
		case math.IsNaN(float64(f)) || f <= 0:
			return 0
		case f >= math.MaxUint32:
			return math.MaxUint32
		}
		return uint32(f)
	}
	// Integer-to-integer: clamp to the destination width.
	switch dt {
	case isa.TypeU8, isa.TypeB8:
		return a & 0xFF
	case isa.TypeS8:
		return uint32(int32(int8(a)))
	case isa.TypeU16, isa.TypeB16:
		return a & 0xFFFF
	case isa.TypeS16:
		return uint32(int32(int16(a)))
	}
	return a
}

// writeDest routes a computed value to the instruction's destination(s):
// the dual form "$p0/$o127" writes flags to the predicate register and the
// value to the (usually sink) register; a plain predicate destination takes
// the flags; anything else takes the value.
func (e *exec) writeDest(th *threadState, in *isa.Instruction, v uint32, flags uint8) {
	if in.DstPred.Valid() {
		e.writeReg(th, in.DstPred, uint32(flags))
		if in.Dst.Kind == isa.OpdReg {
			e.writeReg(th, in.Dst.Reg, v)
		}
		return
	}
	if in.Dst.Kind == isa.OpdReg {
		if in.Dst.Reg.Class == isa.RegPred {
			e.writeReg(th, in.Dst.Reg, uint32(flags))
			return
		}
		e.writeReg(th, in.Dst.Reg, v)
	}
}
