package gpusim

import (
	"errors"
	"fmt"
)

// Execute runs a kernel launch to completion on the device.
//
// CTAs run sequentially in launch order (ctaid.z-major, then y, then x-minor)
// and threads within a CTA are interleaved round-robin at barrier boundaries:
// each thread runs until it parks at a bar.sync, exits, or traps; a barrier
// releases once every non-exited thread of the CTA has arrived. This is a
// functional (not timing) model, but it is deterministic, which the paper's
// methodology needs: a fault site (thread, dynamic instruction, bit) must
// denote the same architectural event in every run.
//
// Execute returns an error only for malformed launches; abnormal guest
// terminations (memory faults, hangs, deadlocks) are reported in
// Result.Trap because they are expected fault-injection outcomes.
func Execute(dev *Device, launch *Launch) (*Result, error) {
	if launch.Prog == nil || len(launch.Prog.Instrs) == 0 {
		return nil, errors.New("gpusim: empty program")
	}
	if launch.Grid.Count() <= 0 || launch.Block.Count() <= 0 {
		return nil, fmt.Errorf("gpusim: bad geometry grid=%v block=%v", launch.Grid, launch.Block)
	}
	sharedBytes := launch.SharedBytes
	if sharedBytes == 0 {
		sharedBytes = DefaultSharedBytes
	}
	if need := ParamBase + 4*len(launch.Params); sharedBytes < need {
		return nil, fmt.Errorf("gpusim: shared memory %d too small for %d params", sharedBytes, len(launch.Params))
	}
	watchdog := launch.Watchdog
	if watchdog == 0 {
		watchdog = DefaultWatchdog
	}

	e := &exec{
		prog:        launch.Prog,
		dev:         dev,
		launch:      launch,
		block:       launch.Block,
		grid:        launch.Grid,
		watchdog:    watchdog,
		intra:       launch.IntraRec,
		addrFlipBit: -1,
	}
	if !launch.Interpret {
		e.plan = planFor(launch.Prog)
	}
	e.persist = newPersistState(launch.Inject)

	nCTA := launch.Grid.Count()
	if launch.FirstCTA < 0 || launch.FirstCTA >= nCTA {
		return nil, fmt.Errorf("gpusim: FirstCTA %d outside grid of %d CTAs", launch.FirstCTA, nCTA)
	}
	if ws := launch.Resume; ws != nil {
		if ws.cta != launch.FirstCTA {
			return nil, fmt.Errorf("gpusim: Resume snapshot for CTA %d but FirstCTA is %d", ws.cta, launch.FirstCTA)
		}
		if len(ws.threads) != launch.Block.Count() {
			return nil, fmt.Errorf("gpusim: Resume snapshot holds %d threads, block has %d", len(ws.threads), launch.Block.Count())
		}
		if len(ws.shared) != sharedBytes {
			return nil, fmt.Errorf("gpusim: Resume snapshot shared size %d, launch wants %d", len(ws.shared), sharedBytes)
		}
	}
	// A fast-forwarded launch is only sound if the skipped prefix is
	// fault-free: the injection must lie at or after the resume point, still
	// armed. Injections in a skipped CTA — or past a mid-CTA snapshot's
	// already-retired instructions — would silently never fire (or fire
	// late), so they are rejected here rather than producing a plausible but
	// wrong outcome (DESIGN.md §3.11).
	if inj := launch.Inject; inj != nil && launch.FirstCTA > 0 {
		injCTA := inj.Thread / launch.Block.Count()
		if injCTA < launch.FirstCTA {
			return nil, fmt.Errorf("gpusim: injection thread %d lies in CTA %d, inside the prefix skipped by FirstCTA %d",
				inj.Thread, injCTA, launch.FirstCTA)
		}
	}
	if ws, inj := launch.Resume, launch.Inject; ws != nil && inj != nil {
		if local := inj.Thread - ws.cta*launch.Block.Count(); local >= 0 && local < len(ws.dynAt) {
			if ws.dynAt[local] > inj.DynInst {
				return nil, fmt.Errorf("gpusim: Resume snapshot postdates the injection: thread %d already retired %d dynamic instructions, injection at %d",
					inj.Thread, ws.dynAt[local], inj.DynInst)
			}
		}
	}

	nThreads := nCTA * launch.Block.Count()
	res := &Result{ThreadICnt: make([]int64, nThreads)}

	threadsPerCTA := launch.Block.Count()
	gx, gy := max(launch.Grid.X, 1), max(launch.Grid.Y, 1)
	bx, by, bz := max(launch.Block.X, 1), max(launch.Block.Y, 1), max(launch.Block.Z, 1)

	// injTh tracks the injected thread of a persistent fault once its CTA
	// has been built, so AfterCTA can report whether the fault is still
	// live. Before that CTA runs the fault is armed and conservatively
	// live; after the thread exits (CTAs retire only when every thread is
	// done or trapped) the fault is retired with it.
	var injTh *threadState

	// CTAs run in ctaid.z-major, x-minor launch order; ctaIndex is the
	// linear position in that order, decoded back into grid coordinates so
	// a launch can resume at an arbitrary CTA (Launch.FirstCTA).
	for ctaIndex := launch.FirstCTA; ctaIndex < nCTA; ctaIndex++ {
		var cta *ctaState
		if ctaIndex == launch.FirstCTA && launch.Resume != nil {
			// Mid-CTA resume: rebuild thread and shared-memory state from
			// the intra-CTA snapshot (params are part of the shared copy).
			cta = launch.Resume.materialize()
		} else {
			cx := ctaIndex % gx
			cy := (ctaIndex / gx) % gy
			cz := ctaIndex / (gx * gy)
			cta = &ctaState{shared: make([]byte, sharedBytes)}
			for i, p := range launch.Params {
				putWord(cta.shared, ParamBase+4*i, p)
			}
			base := ctaIndex * threadsPerCTA
			tLinear := 0
			for tz := 0; tz < bz; tz++ {
				for ty := 0; ty < by; ty++ {
					for tx := 0; tx < bx; tx++ {
						cta.threads = append(cta.threads, &threadState{
							flat:  base + tLinear,
							tid:   Dim3{tx, ty, tz},
							ctaid: Dim3{cx, cy, cz},
						})
						tLinear++
					}
				}
			}
		}
		if p := e.persist; p != nil && p.thread/threadsPerCTA == ctaIndex {
			injTh = cta.threads[p.thread-ctaIndex*threadsPerCTA]
		}
		if e.intra != nil {
			e.intra.beginCTA(ctaIndex, cta)
		}
		var trap *Trap
		switch {
		case launch.WarpSize > 0 && e.plan != nil:
			trap = e.runCTAWarpedCompiled(cta, launch.WarpSize)
		case launch.WarpSize > 0:
			trap = e.runCTAWarped(cta, launch.WarpSize)
		case e.plan != nil:
			trap = e.runCTACompiled(cta)
		default:
			trap = e.runCTA(cta)
		}
		for _, th := range cta.threads {
			res.ThreadICnt[th.flat] = th.dynCount
			res.TotalDyn += th.dynCount
		}
		res.CTAsExecuted++
		if trap != nil {
			res.Trap = trap
			return res, nil
		}
		if launch.AfterCTA != nil && launch.AfterCTA(ctaIndex, e.persistLive(injTh)) {
			return res, nil
		}
	}
	return res, nil
}

// barrierStatus summarizes a CTA's barrier state after a scheduling round.
type barrierStatus uint8

const (
	ctaRunning  barrierStatus = iota // runnable threads remain
	ctaFinished                      // every thread exited
	ctaReleased                      // a barrier completed and was released
)

// runCTA interleaves the CTA's threads at barrier boundaries until all exit.
func (e *exec) runCTA(cta *ctaState) *Trap {
	for {
		progress := false
		for _, th := range cta.threads {
			if th.done || th.waiting || e.laneFrozen(th) {
				continue
			}
			// Run this thread until it parks, exits, freezes, or traps.
			for !th.done && !th.waiting && !e.laneFrozen(th) {
				blocked, trap := e.step(th, cta)
				if trap != nil {
					return trap
				}
				if e.intra != nil {
					// Any post-step point is resume-safe in serial mode:
					// threads earlier in schedule order are parked or done,
					// so a resumed round re-reaches this thread first.
					e.intra.step()
					e.intra.flush()
				}
				if blocked {
					break
				}
			}
			progress = true
		}
		status, trap := e.resolveBarrier(cta, progress)
		if trap != nil {
			return trap
		}
		if status == ctaFinished {
			return nil
		}
	}
}

// runCTAWarped executes the CTA in SIMT lockstep: threads are partitioned
// into warps of warpSize; each scheduling round issues one instruction to
// every warp's active subset — the eligible threads sharing the minimal PC.
// Min-PC selection is a classic reconvergence heuristic: diverged paths
// serialize, and threads rejoin as soon as they reach the same PC, without
// an explicit SIMT stack. Per-thread semantics are identical to runCTA.
func (e *exec) runCTAWarped(cta *ctaState, warpSize int) *Trap {
	for {
		progress := false
		for base := 0; base < len(cta.threads); base += warpSize {
			end := base + warpSize
			if end > len(cta.threads) {
				end = len(cta.threads)
			}
			warp := cta.threads[base:end]
			// Drive this warp until its threads all park or exit.
			for {
				minPC := -1
				for _, th := range warp {
					if th.done || th.waiting || e.laneFrozen(th) {
						continue
					}
					if minPC < 0 || th.pc < minPC {
						minPC = th.pc
					}
				}
				if minPC < 0 {
					break
				}
				for _, th := range warp {
					if th.done || th.waiting || th.pc != minPC || e.laneFrozen(th) {
						continue
					}
					if _, trap := e.step(th, cta); trap != nil {
						return trap
					}
					if e.intra != nil {
						e.intra.step()
					}
					progress = true
				}
				if e.intra != nil {
					// Capture only at min-PC sweep boundaries: the drive
					// loop recomputes the minimum PC from scratch here, so
					// a resumed warp replays exactly this continuation.
					e.intra.flush()
				}
			}
		}
		status, trap := e.resolveBarrier(cta, progress)
		if trap != nil {
			return trap
		}
		if status == ctaFinished {
			return nil
		}
	}
}

// ProfileTrace is the Tracer used for fault-free profiling runs: it records
// the static PC sequence of every thread, with the high bit of each entry
// marking instructions that wrote a live destination register (fault sites).
// Programs are limited to 32767 static instructions, far beyond any kernel
// in this repository.
type ProfileTrace struct {
	// PCs[t] is thread t's dynamic instruction sequence.
	PCs [][]uint16
}

// WroteBit flags a trace entry whose instruction wrote a destination register.
const WroteBit = 0x8000

// NewProfileTrace allocates a trace for nThreads threads.
func NewProfileTrace(nThreads int) *ProfileTrace {
	return &ProfileTrace{PCs: make([][]uint16, nThreads)}
}

// Record implements Tracer.
func (p *ProfileTrace) Record(thread, pc int, wrote bool) {
	v := uint16(pc)
	if wrote {
		v |= WroteBit
	}
	p.PCs[thread] = append(p.PCs[thread], v)
}

// PC decodes a trace entry into the static PC.
func PC(entry uint16) int { return int(entry &^ WroteBit) }

// Wrote decodes a trace entry's destination-write flag.
func Wrote(entry uint16) bool { return entry&WroteBit != 0 }
