package gpusim_test

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/ptx"
	"repro/internal/stats"
)

// mustAsm assembles test sources.
func mustAsm(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := ptx.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestWarpModeEquivalence runs several kernels under the thread-serial and
// SIMT-lockstep schedulers and requires identical outputs and per-thread
// dynamic instruction counts: the workloads are race-free, so scheduling
// must not be observable — which is also why fault sites denote the same
// architectural events in both modes.
func TestWarpModeEquivalence(t *testing.T) {
	for _, name := range []string{"2DCONV K1", "PathFinder K1", "HotSpot K1", "LUD K46"} {
		spec, ok := kernels.ByName(name)
		if !ok {
			t.Fatalf("kernel %q missing", name)
		}
		inst, err := spec.Build(kernels.ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		tgt := inst.Target

		run := func(warp int) (*gpusim.Result, []byte) {
			dev := tgt.Init.Clone()
			res, err := gpusim.Execute(dev, &gpusim.Launch{
				Prog:     tgt.Prog,
				Grid:     tgt.Grid,
				Block:    tgt.Block,
				Params:   tgt.Params,
				WarpSize: warp,
			})
			if err != nil {
				t.Fatalf("%s warp=%d: %v", name, warp, err)
			}
			if res.Trap != nil {
				t.Fatalf("%s warp=%d trapped: %v", name, warp, res.Trap)
			}
			return res, dev.Bytes()
		}

		serial, memSerial := run(0)
		for _, warp := range []int{4, 32} {
			warped, memWarped := run(warp)
			if !bytes.Equal(memSerial, memWarped) {
				t.Fatalf("%s: global memory differs under warp=%d", name, warp)
			}
			for i := range serial.ThreadICnt {
				if serial.ThreadICnt[i] != warped.ThreadICnt[i] {
					t.Fatalf("%s: thread %d iCnt %d vs %d under warp=%d",
						name, i, serial.ThreadICnt[i], warped.ThreadICnt[i], warp)
				}
			}
		}
	}
}

// TestWarpModeInjectionEquivalence: fault outcomes are scheduling-invariant
// too — random sites give the same outcome under both schedulers.
func TestWarpModeInjectionEquivalence(t *testing.T) {
	spec, _ := kernels.ByName("PathFinder K1")
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	tgt := inst.Target
	if err := tgt.Prepare(); err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(tgt.Profile())
	rng := stats.NewRNG(31)

	golden := tgt.Golden()
	for _, site := range space.Random(rng, 12) {
		var got [2]bool // output == golden, per mode
		for mode, warp := range map[int]int{0: 0, 1: 32} {
			dev := tgt.Init.Clone()
			res, err := gpusim.Execute(dev, &gpusim.Launch{
				Prog:     tgt.Prog,
				Grid:     tgt.Grid,
				Block:    tgt.Block,
				Params:   tgt.Params,
				WarpSize: warp,
				Watchdog: 1 << 20,
				Inject: &gpusim.Injection{
					Thread: site.Thread, DynInst: site.DynInst, Bit: site.Bit,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Trap != nil {
				got[mode] = false
				continue
			}
			got[mode] = dev.EqualRange(dev.Size()-len(golden), golden)
		}
		if got[0] != got[1] {
			t.Fatalf("site %v: masked-ness differs across schedulers", site)
		}
	}
}

// TestWarpDivergenceReconverges: a warp whose threads take different branch
// paths must still complete with correct per-thread results under min-PC
// reconvergence.
func TestWarpDivergenceReconverges(t *testing.T) {
	srcTarget := buildDivergent(t)
	dev := srcTarget.Init.Clone()
	res, err := gpusim.Execute(dev, &gpusim.Launch{
		Prog:     srcTarget.Prog,
		Grid:     srcTarget.Grid,
		Block:    srcTarget.Block,
		WarpSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	for i, w := range dev.ReadWords(0, 8) {
		want := uint32(i * 2)
		if i%2 == 1 {
			want = uint32(i * 3)
		}
		if w != want {
			t.Fatalf("thread %d produced %d, want %d", i, w, want)
		}
	}
}

func buildDivergent(t *testing.T) *fault.Target {
	t.Helper()
	// Even threads compute 2*tid, odd threads 3*tid, then all reconverge
	// and pass a barrier before storing.
	prog := mustAsm(t, `
		cvt.u32.u16 $r0, %tid.x
		and.b32 $r1, $r0, 0x00000001
		set.eq.u32.u32 $p0/$o127, $r1, $r124
		@$p0.eq bra lodd
		mul.lo.u32 $r2, $r0, 0x00000002
		bra ljoin
		lodd: mul.lo.u32 $r2, $r0, 0x00000003
		ljoin: bar.sync 0x00000000
		shl.u32 $r3, $r0, 0x00000002
		st.global.u32 [$r3], $r2
		exit
	`)
	return &fault.Target{
		Name:   "div",
		Prog:   prog,
		Grid:   gpusim.Dim3{X: 1, Y: 1, Z: 1},
		Block:  gpusim.Dim3{X: 8, Y: 1, Z: 1},
		Init:   gpusim.NewDevice(64),
		Output: []fault.Range{{Off: 0, Len: 32}},
	}
}
