package gpusim_test

import (
	"testing"

	"repro/internal/gpusim"
	"repro/internal/ptx"
)

// TestVectorAddSmoke drives the whole assemble+execute path: out[i] = a[i]+b[i]
// with a, b, out laid out contiguously in global memory and base pointers
// passed as kernel parameters.
func TestVectorAddSmoke(t *testing.T) {
	src := `
		cvt.u32.u16 $r0, %tid.x
		cvt.u32.u16 $r1, %ctaid.x
		cvt.u32.u16 $r2, %ntid.x
		mad.lo.u32 $r0, $r1, $r2, $r0      // global index
		shl.u32 $r1, $r0, 0x00000002       // byte offset
		add.u32 $r2, s[0x0010], $r1        // &a[i]
		add.u32 $r3, s[0x0014], $r1        // &b[i]
		add.u32 $r4, s[0x0018], $r1        // &out[i]
		ld.global.u32 $r5, [$r2]
		ld.global.u32 $r6, [$r3]
		add.u32 $r7, $r5, $r6
		st.global.u32 [$r4], $r7
		exit
	`
	prog, err := ptx.Assemble("vecadd", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}

	const n = 64
	dev := gpusim.NewDevice(3 * 4 * n)
	a := make([]uint32, n)
	b := make([]uint32, n)
	for i := 0; i < n; i++ {
		a[i] = uint32(i * 3)
		b[i] = uint32(1000 - i)
	}
	dev.WriteWords(0, a)
	dev.WriteWords(4*n, b)

	res, err := gpusim.Execute(dev, &gpusim.Launch{
		Prog:   prog,
		Grid:   gpusim.Dim3{X: 4, Y: 1, Z: 1},
		Block:  gpusim.Dim3{X: 16, Y: 1, Z: 1},
		Params: []uint32{0, 4 * n, 8 * n},
	})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if res.Trap != nil {
		t.Fatalf("unexpected trap: %v", res.Trap)
	}
	out := dev.ReadWords(8*n, n)
	for i := 0; i < n; i++ {
		if want := a[i] + b[i]; out[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
	if res.ThreadICnt[0] != 13 {
		t.Fatalf("iCnt = %d, want 13", res.ThreadICnt[0])
	}
}
