package gpusim_test

import (
	"bytes"
	"testing"

	"repro/internal/gpusim"
	"repro/internal/isa"
	"repro/internal/ptx"
)

// chainSetup builds a 6-CTA kernel with cross-CTA global-memory dependence:
// each thread accumulates into acc[tid] (shared by every CTA, so CTA c reads
// what CTA c-1 wrote) and stores the running value to out[gid]. acc lives on
// page 0 and out on page 1, so checkpoint page sets are non-trivial.
func chainSetup(t *testing.T) (*isa.Program, *gpusim.Device) {
	t.Helper()
	prog, err := ptx.Assemble("chain", `
		cvt.u32.u16 $r0, %tid.x
		cvt.u32.u16 $r1, %ctaid.x
		cvt.u32.u16 $r2, %ntid.x
		mad.lo.u32 $r3, $r1, $r2, $r0      // gid
		shl.u32 $r4, $r0, 0x00000002
		add.u32 $r4, $r4, s[0x0010]        // &acc[tid]
		ld.global.u32 $r5, [$r4]
		add.u32 $r5, $r5, $r3
		add.u32 $r5, $r5, 0x00000001
		st.global.u32 [$r4], $r5           // acc[tid] += gid+1
		shl.u32 $r6, $r3, 0x00000002
		add.u32 $r6, $r6, s[0x0014]        // &out[gid]
		st.global.u32 [$r6], $r5
		exit
	`)
	if err != nil {
		t.Fatal(err)
	}
	dev := gpusim.NewDevice(2 * gpusim.PageSize)
	dev.WriteWords(0, []uint32{100, 200, 300, 400})
	return prog, dev
}

func chainLaunch(prog *isa.Program) *gpusim.Launch {
	return &gpusim.Launch{
		Prog:   prog,
		Grid:   gpusim.Dim3{X: 6, Y: 1, Z: 1},
		Block:  gpusim.Dim3{X: 4, Y: 1, Z: 1},
		Params: []uint32{0, gpusim.PageSize},
	}
}

// TestExecuteFirstCTAResume: stopping a launch at a CTA boundary and resuming
// from FirstCTA on the same device must reproduce the uninterrupted run
// bit-for-bit, for every split point and under both schedulers.
func TestExecuteFirstCTAResume(t *testing.T) {
	prog, init := chainSetup(t)
	for _, warp := range []int{0, 4} {
		full := init.Clone()
		l := chainLaunch(prog)
		l.WarpSize = warp
		res, err := gpusim.Execute(full, l)
		if err != nil {
			t.Fatal(err)
		}
		if res.Trap != nil {
			t.Fatalf("warp %d: golden trap: %v", warp, res.Trap)
		}
		if res.CTAsExecuted != 6 {
			t.Fatalf("warp %d: executed %d CTAs, want 6", warp, res.CTAsExecuted)
		}
		want := full.Bytes()

		for split := 1; split < 6; split++ {
			dev := init.Clone()
			head := chainLaunch(prog)
			head.WarpSize = warp
			head.AfterCTA = func(cta int, _ bool) bool { return cta == split-1 }
			hres, err := gpusim.Execute(dev, head)
			if err != nil {
				t.Fatal(err)
			}
			if hres.CTAsExecuted != split {
				t.Fatalf("split %d: head executed %d CTAs", split, hres.CTAsExecuted)
			}
			tail := chainLaunch(prog)
			tail.WarpSize = warp
			tail.FirstCTA = split
			tres, err := gpusim.Execute(dev, tail)
			if err != nil {
				t.Fatal(err)
			}
			if tres.Trap != nil {
				t.Fatalf("split %d: tail trap: %v", split, tres.Trap)
			}
			if tres.CTAsExecuted != 6-split {
				t.Fatalf("split %d: tail executed %d CTAs", split, tres.CTAsExecuted)
			}
			if !bytes.Equal(dev.Bytes(), want) {
				t.Fatalf("warp %d split %d: resumed memory differs from full run", warp, split)
			}
			// Head and tail iCnt tile the full run's without overlap.
			for th := range res.ThreadICnt {
				got := hres.ThreadICnt[th] + tres.ThreadICnt[th]
				if got != res.ThreadICnt[th] {
					t.Fatalf("split %d thread %d: iCnt %d+%d != %d",
						split, th, hres.ThreadICnt[th], tres.ThreadICnt[th], res.ThreadICnt[th])
				}
				if hres.ThreadICnt[th] != 0 && tres.ThreadICnt[th] != 0 {
					t.Fatalf("split %d thread %d ran in both halves", split, th)
				}
			}
		}
	}
}

// TestExecuteFirstCTAValidation: out-of-grid resume points are launch errors.
func TestExecuteFirstCTAValidation(t *testing.T) {
	prog, init := chainSetup(t)
	for _, first := range []int{-1, 6, 100} {
		l := chainLaunch(prog)
		l.FirstCTA = first
		if _, err := gpusim.Execute(init.Clone(), l); err == nil {
			t.Fatalf("FirstCTA %d accepted", first)
		}
	}
}

func TestAutoCheckpointStride(t *testing.T) {
	cases := []struct{ ctas, want int }{
		{1, 1}, {2, 1}, {16, 1}, {17, 2}, {32, 2}, {33, 3}, {160, 10}, {1000, 63},
	}
	for _, c := range cases {
		if got := gpusim.AutoCheckpointStride(c.ctas); got != c.want {
			t.Fatalf("AutoCheckpointStride(%d) = %d, want %d", c.ctas, got, c.want)
		}
		// The implied snapshot count stays bounded.
		stride := gpusim.AutoCheckpointStride(c.ctas)
		snaps := 1 + (c.ctas-1)/stride
		if snaps > gpusim.DefaultCheckpointSnapshots+1 {
			t.Fatalf("numCTAs %d stride %d: %d snapshots", c.ctas, stride, snaps)
		}
	}
}

// TestHashPageHighBitDiffusion: equal deltas confined to the top bits of two
// different words must change the page hash. A plain XOR-multiply fold fails
// this — the multiply never diffuses top-bit deltas downward, so the second
// flip cancels the first (delta 2^63·p^k mod 2^64 = 2^63 for odd p) and a
// corrupted page would be declared converged.
func TestHashPageHighBitDiffusion(t *testing.T) {
	dev := gpusim.NewDevice(gpusim.PageSize)
	h0 := dev.HashPage(0)
	dev.WriteBytes(7, []byte{0x80})
	dev.WriteBytes(15, []byte{0x80})
	if dev.HashPage(0) == h0 {
		t.Fatal("paired top-bit flips cancel in HashPage")
	}
	// The same 32-bit corruption at two word-aligned offsets (the pattern a
	// cross-CTA accumulator kernel actually produces) must also be visible.
	dev2 := gpusim.NewDevice(gpusim.PageSize)
	h2 := dev2.HashPage(0)
	dev2.WriteWords(4, []uint32{0x40000000})
	dev2.WriteWords(36, []uint32{0x40000000})
	if dev2.HashPage(0) == h2 {
		t.Fatal("paired word corruptions cancel in HashPage")
	}
}

// TestCheckpointRecorder: snapshots must equal the corresponding full-run
// prefix states, golden replays from any snapshot must converge at every
// later boundary, and corrupted state must not converge.
func TestCheckpointRecorder(t *testing.T) {
	prog, init := chainSetup(t)
	const numCTAs = 6
	for _, stride := range []int{1, 2, 3} {
		golden := init.Clone()
		rec := gpusim.NewCheckpointRecorder(init, golden, numCTAs, stride)
		l := chainLaunch(prog)
		l.AfterCTA = rec.AfterCTA
		res, err := gpusim.Execute(golden, l)
		if err != nil {
			t.Fatal(err)
		}
		if res.Trap != nil {
			t.Fatalf("golden trap: %v", res.Trap)
		}
		ck := rec.Finish()

		wantSnaps := 1 + (numCTAs-1)/stride
		if ck.Count() != wantSnaps {
			t.Fatalf("stride %d: %d snapshots, want %d", stride, ck.Count(), wantSnaps)
		}
		if ck.Stride() != stride || ck.NumCTAs() != numCTAs {
			t.Fatalf("stride %d: store reports stride %d, %d CTAs", stride, ck.Stride(), ck.NumCTAs())
		}
		if ck.Bytes() < 0 {
			t.Fatalf("negative checkpoint bytes")
		}

		// Each snapshot equals an independently executed prefix.
		for cta := 0; cta < numCTAs; cta++ {
			snap, first := ck.SnapshotFor(cta)
			if first > cta || first%stride != 0 {
				t.Fatalf("SnapshotFor(%d) boundary %d", cta, first)
			}
			ref := init.Clone()
			if first > 0 {
				pl := chainLaunch(prog)
				pl.AfterCTA = func(c int, _ bool) bool { return c == first-1 }
				if _, err := gpusim.Execute(ref, pl); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(snap.Bytes(), ref.Bytes()) {
				t.Fatalf("stride %d: snapshot at boundary %d differs from prefix run", stride, first)
			}
		}

		// A golden replay resumed from any CTA's snapshot converges at the
		// next boundary (and the boundary after the last CTA is the final
		// state, never queried through Converged).
		for cta := 0; cta+1 < numCTAs; cta++ {
			snap, first := ck.SnapshotFor(cta)
			w := init.Clone()
			w.ResetFrom(snap)
			rl := chainLaunch(prog)
			rl.FirstCTA = first
			rl.AfterCTA = func(c int, _ bool) bool { return c == cta }
			if _, err := gpusim.Execute(w, rl); err != nil {
				t.Fatal(err)
			}
			if !ck.Converged(w, cta+1) {
				t.Fatalf("stride %d: golden replay does not converge at boundary %d", stride, cta+1)
			}
			// Any corruption — in a page the replay wrote or not — must
			// break convergence.
			w.WriteBytes(gpusim.PageSize-1, []byte{0x5A})
			if ck.Converged(w, cta+1) {
				t.Fatalf("stride %d: corrupted state converges at boundary %d", stride, cta+1)
			}
		}
	}
}
