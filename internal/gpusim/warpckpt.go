package gpusim

import "sort"

// Intra-CTA (warp-granular) checkpointing captures the golden run's full
// architectural state at strided points *inside* a CTA — per-thread register
// files, predicate and offset registers, PCs, barrier arrival state, shared
// memory, and the global-memory pages written since the floor CTA-boundary
// snapshot — so that an injection into a site late in a CTA's dynamic trace
// can skip the fault-free prefix of that CTA instead of replaying it.
//
// Unlike CTA-boundary snapshots (copy-on-write Device clones), an intra-CTA
// snapshot must not clone the golden device mid-CTA: Clone freezes the device
// and clears the dirty-page tracking the CTA-boundary recorder harvests at
// the next boundary. Snapshots therefore store explicit page-content copies
// of the delta versus the floor CTA-boundary snapshot; resuming restores the
// delta through Device.WriteBytes, which marks those pages dirty and keeps
// the golden-state convergence check sound (restored pages are hash-checked
// like any page the run wrote itself — see Checkpoints.Converged).
//
// Capture points are chosen so that re-entering the scheduler from a
// snapshot replays exactly the golden run's continuation: in serial mode
// after any retired instruction (threads before the current one in schedule
// order are all parked or exited, so the round loop re-reaches the current
// thread first), and in warp mode only at the end of a min-PC sweep (where
// the drive loop recomputes the minimum PC from scratch anyway).

// DefaultIntraSnapshots bounds the number of intra-CTA snapshots retained
// per CTA in auto-stride mode, mirroring DefaultCheckpointSnapshots for the
// CTA-boundary store.
const DefaultIntraSnapshots = 16

// defaultIntraStartStride is the initial auto-mode capture stride in retired
// instructions; the recorder doubles it (decimating retained snapshots) once
// a CTA exceeds DefaultIntraSnapshots, so the effective K is tuned to the
// CTA's dynamic instruction count. The starting point is deliberately
// coarse: each capture copies every thread's register file, so short CTAs —
// whose whole prefix replays in about the time a snapshot restore takes —
// should get no intra snapshots at all rather than slow down every
// Prepare's golden run. Mid-CTA resume is aimed at the paper's regime of
// thousands-to-millions of dynamic instructions per CTA, where a <=4K
// prefix replay is noise.
const defaultIntraStartStride = 4096

// defaultIntraBudgetBytes soft-bounds the total memory retained by all
// intra-CTA snapshots in auto mode. Large grids would otherwise retain
// per-CTA register files for thousands of CTAs; once the budget is exceeded
// the recorder halves every CTA's snapshot list and doubles the stride for
// subsequent CTAs.
const defaultIntraBudgetBytes = 256 << 20

// WarpSnapshot is one intra-CTA capture point: the complete architectural
// state needed to resume the CTA mid-flight, plus the global-memory delta
// versus the floor CTA-boundary snapshot. Immutable after capture.
//
// "Complete" includes the scheduler and synchronization ledger, which is
// what makes resuming sound under scheduler-corrupting persistent faults
// (DESIGN.md §3.11): threads holds full threadState copies — parked flags
// (waiting), barrier-arrival ids (barID), exit flags (done), and per-thread
// retirement counts (dynCount) — in CTA-local thread order, which is also
// the schedulers' fixed election order; shared is the CTA's shared memory;
// dynAt pins each thread's position so SnapshotBefore can prove a snapshot
// predates a fault's activation point (armed-but-not-yet-activated
// persistState bookkeeping is derived, not stored: a resumed Execute
// re-arms the fault from the Injection and activation compares dynCount
// against DynInst, so a snapshot with dynAt[t] <= DynInst reproduces the
// armed state exactly; Execute rejects resumes past the activation point).
type WarpSnapshot struct {
	cta     int
	retired int64 // CTA-local retired-step count at capture
	// dynAt[t] is local thread t's dynamic instruction count at capture; a
	// site with DynInst >= dynAt[t] has not yet fired at this point.
	dynAt   []int64
	threads []threadState
	shared  []byte
	// pageIdx/pageDat hold the global-memory pages written since the floor
	// CTA-boundary snapshot (by earlier CTAs past that boundary and by this
	// CTA's prefix), with content clipped to the device size.
	pageIdx []int32
	pageDat [][]byte
}

// CTA is the linear CTA index the snapshot was captured in.
func (ws *WarpSnapshot) CTA() int { return ws.cta }

// Retired is the CTA-local retired instruction count at capture.
func (ws *WarpSnapshot) Retired() int64 { return ws.retired }

// DynAt returns the dynamic instruction count of CTA-local thread t at
// capture time.
func (ws *WarpSnapshot) DynAt(t int) int64 { return ws.dynAt[t] }

// Waiting reports whether CTA-local thread t was parked at a barrier at
// capture time — part of the captured scheduler ledger.
func (ws *WarpSnapshot) Waiting(t int) bool { return ws.threads[t].waiting }

// BarrierID returns the barrier id CTA-local thread t was parked at (valid
// when Waiting(t)) — part of the captured scheduler ledger.
func (ws *WarpSnapshot) BarrierID(t int) uint32 { return ws.threads[t].barID }

// Done reports whether CTA-local thread t had exited at capture time.
func (ws *WarpSnapshot) Done(t int) bool { return ws.threads[t].done }

// RestorePages writes the snapshot's global-memory delta into dev, which
// must already hold the floor CTA-boundary snapshot's content. Writing goes
// through the copy-on-write store path, so the restored pages are tracked
// dirty and participate in convergence hashing like run-written pages.
func (ws *WarpSnapshot) RestorePages(dev *Device) {
	for i, p := range ws.pageIdx {
		dev.WriteBytes(int(p)*PageSize, ws.pageDat[i])
	}
}

// sizeBytes approximates the memory the snapshot retains.
func (ws *WarpSnapshot) sizeBytes() int64 {
	const perThread = 600 // threadState value + dynAt entry, roughly
	n := int64(len(ws.threads))*perThread + int64(len(ws.shared))
	for _, d := range ws.pageDat {
		n += int64(len(d))
	}
	return n
}

// materialize builds a fresh ctaState from the snapshot. Thread states are
// deep-copied so the snapshot stays immutable across repeated resumes.
func (ws *WarpSnapshot) materialize() *ctaState {
	cta := &ctaState{
		threads: make([]*threadState, len(ws.threads)),
		shared:  append([]byte(nil), ws.shared...),
	}
	for i := range ws.threads {
		th := ws.threads[i]
		cta.threads[i] = &th
	}
	return cta
}

// WarpCheckpoints is the immutable result of intra-CTA recording: per-CTA
// lists of snapshots in capture order. Read-only after Finish and safe for
// concurrent use by campaign workers.
type WarpCheckpoints struct {
	stride int // configured stride (0 = auto)
	perCTA [][]*WarpSnapshot
	count  int
	bytes  int64
}

// Stride is the configured capture stride; 0 means auto-tuned.
func (w *WarpCheckpoints) Stride() int { return w.stride }

// Count is the total number of snapshots retained across all CTAs.
func (w *WarpCheckpoints) Count() int { return w.count }

// Bytes approximates the memory retained by all snapshots (register files,
// shared memory, and page-delta copies).
func (w *WarpCheckpoints) Bytes() int64 { return w.bytes }

// PerCTA returns the number of snapshots retained for one CTA.
func (w *WarpCheckpoints) PerCTA(cta int) int { return len(w.perCTA[cta]) }

// Snapshot returns the ord-th retained snapshot of a CTA, in capture order.
func (w *WarpCheckpoints) Snapshot(cta, ord int) *WarpSnapshot { return w.perCTA[cta][ord] }

// SnapshotBefore returns the latest snapshot in cta at which CTA-local
// thread `local` had retired at most dyn dynamic instructions — the resume
// point for an injection at (local, dyn) — or nil when no snapshot precedes
// the site (the CTA prefix must then be replayed from the CTA boundary).
func (w *WarpCheckpoints) SnapshotBefore(cta, local int, dyn int64) *WarpSnapshot {
	if i := w.OrdinalBefore(cta, local, dyn); i >= 0 {
		return w.perCTA[cta][i]
	}
	return nil
}

// OrdinalBefore returns the index (within the CTA's snapshot list) of
// SnapshotBefore's choice, or -1 when no snapshot precedes the site. The
// campaign scheduler folds it into the affinity key so schedule chunks never
// span an intra-CTA snapshot boundary.
func (w *WarpCheckpoints) OrdinalBefore(cta, local int, dyn int64) int {
	if cta < 0 || cta >= len(w.perCTA) {
		return -1
	}
	snaps := w.perCTA[cta]
	// dynAt[local] is non-decreasing in capture order: scan from the latest.
	for i := len(snaps) - 1; i >= 0; i-- {
		if local < len(snaps[i].dynAt) && snaps[i].dynAt[local] <= dyn {
			return i
		}
	}
	return -1
}

// WarpCheckpointRecorder observes a golden run from inside the CTA schedulers
// and builds a WarpCheckpoints store. Wire it into the golden Launch via
// Launch.IntraRec; when a CTA-boundary CheckpointRecorder is also active,
// couple the two with CheckpointRecorder.AttachIntra so page deltas stay
// relative to the retained boundary snapshots.
type WarpCheckpointRecorder struct {
	dev        *Device
	ck         *WarpCheckpoints
	auto       bool
	baseStride int64
	maxPer     int
	budget     int64

	// sinceBase is the set of global-memory pages written since the floor
	// CTA-boundary snapshot, excluding the current CTA's unharvested writes
	// (those are still in the device's dirty index).
	sinceBase map[int32]struct{}
	// baseCopy caches content copies of sinceBase pages for the current CTA.
	// Their content is frozen while the CTA runs — a store to such a page
	// re-arms dirty tracking and routes it through the dirty path instead —
	// so successive snapshots of one CTA share these slices.
	baseCopy map[int32][]byte

	cur         *ctaState
	curCTA      int
	curStride   int64
	retired     int64
	nextCapture int64
	pending     bool
}

// NewWarpCheckpointRecorder prepares intra-CTA recording for a numCTAs-CTA
// golden run of dev. stride > 0 captures at exactly that many retired
// instructions with no decimation (for tests and explicit tuning); stride 0
// auto-tunes: captures start every defaultIntraStartStride instructions and
// the stride doubles whenever a CTA would retain more than
// DefaultIntraSnapshots snapshots or the global budget is exceeded.
func NewWarpCheckpointRecorder(dev *Device, numCTAs, stride int) *WarpCheckpointRecorder {
	r := &WarpCheckpointRecorder{
		dev:       dev,
		ck:        &WarpCheckpoints{stride: stride, perCTA: make([][]*WarpSnapshot, numCTAs)},
		sinceBase: make(map[int32]struct{}),
		maxPer:    DefaultIntraSnapshots,
		budget:    defaultIntraBudgetBytes,
	}
	if stride <= 0 {
		r.auto = true
		r.baseStride = defaultIntraStartStride
	} else {
		r.baseStride = int64(stride)
	}
	return r
}

// beginCTA rebinds the recorder to the CTA the launch is about to run.
// Called by Execute once per CTA.
func (r *WarpCheckpointRecorder) beginCTA(cta int, st *ctaState) {
	r.curCTA = cta
	r.cur = st
	r.curStride = r.baseStride
	r.retired = 0
	r.nextCapture = r.curStride
	r.pending = false
	r.baseCopy = nil
}

// step accounts one retired instruction and marks a capture as due at stride
// boundaries. The schedulers call flush at resume-safe points only.
func (r *WarpCheckpointRecorder) step() {
	r.retired++
	if r.retired >= r.nextCapture {
		r.pending = true
	}
}

// flush captures a due snapshot. Call sites define the resume-safe points:
// after any step in serial mode, at min-PC sweep boundaries in warp mode.
func (r *WarpCheckpointRecorder) flush() {
	if !r.pending {
		return
	}
	r.pending = false
	r.capture()
	r.nextCapture = r.retired + r.curStride
}

// capture snapshots the current CTA state plus the global-memory delta
// versus the floor CTA-boundary snapshot.
func (r *WarpCheckpointRecorder) capture() {
	st := r.cur
	allDone := true
	for _, th := range st.threads {
		if !th.done {
			allDone = false
			break
		}
	}
	if allDone {
		// The CTA is about to finish; the boundary store covers this point.
		return
	}
	ws := &WarpSnapshot{
		cta:     r.curCTA,
		retired: r.retired,
		dynAt:   make([]int64, len(st.threads)),
		threads: make([]threadState, len(st.threads)),
		shared:  append([]byte(nil), st.shared...),
	}
	for i, th := range st.threads {
		ws.threads[i] = *th
		ws.dynAt[i] = th.dynCount
	}
	// Delta pages: everything written since the floor boundary snapshot by
	// completed CTAs (sinceBase) plus the current CTA's writes so far (the
	// device's dirty index, which the boundary recorder has not harvested
	// yet). dirtyIdx holds no duplicates between harvests. A page in both
	// sets takes the dirty path — the current CTA overwrote it — while pure
	// sinceBase pages are frozen for the rest of the CTA, so their copies
	// are made once and shared by every later snapshot of this CTA.
	dirty := r.dev.DirtyPages()
	dirtySet := make(map[int32]struct{}, len(dirty))
	for _, p := range dirty {
		dirtySet[p] = struct{}{}
	}
	idx := make([]int32, 0, len(r.sinceBase)+len(dirty))
	for p := range r.sinceBase {
		if _, ok := dirtySet[p]; !ok {
			idx = append(idx, p)
		}
	}
	idx = append(idx, dirty...)
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	ws.pageIdx = idx
	ws.pageDat = make([][]byte, len(idx))
	for i, p := range idx {
		if _, hot := dirtySet[p]; !hot {
			if c, ok := r.baseCopy[p]; ok {
				ws.pageDat[i] = c
				continue
			}
		}
		n := PageSize
		if rem := r.dev.size - int(p)*PageSize; rem < n {
			n = rem
		}
		c := append([]byte(nil), r.dev.pages[p][:n]...)
		ws.pageDat[i] = c
		if _, hot := dirtySet[p]; !hot {
			if r.baseCopy == nil {
				r.baseCopy = make(map[int32][]byte)
			}
			r.baseCopy[p] = c
		}
	}
	r.ck.perCTA[r.curCTA] = append(r.ck.perCTA[r.curCTA], ws)
	r.ck.count++
	r.ck.bytes += ws.sizeBytes()
	if !r.auto {
		return
	}
	// Per-CTA decimation: keep memory proportional to at most maxPer
	// snapshots by doubling the stride and dropping every other snapshot.
	// Any subset of snapshots stays sound — SnapshotBefore just resumes
	// from an earlier point — so decimation never invalidates anything.
	if len(r.ck.perCTA[r.curCTA]) > r.maxPer {
		r.curStride *= 2
		r.decimateCTA(r.curCTA)
	}
	// Global budget: large grids retain snapshots for every CTA; halve all
	// lists and slow future capture until back under the soft cap.
	for r.ck.bytes > r.budget && r.ck.count > len(r.ck.perCTA) {
		r.baseStride *= 2
		r.curStride *= 2
		for c := range r.ck.perCTA {
			r.decimateCTA(c)
		}
	}
}

// decimateCTA drops every other snapshot of a CTA (keeping the later of each
// pair, which preserves coverage of late sites) and updates the totals.
func (r *WarpCheckpointRecorder) decimateCTA(cta int) {
	snaps := r.ck.perCTA[cta]
	if len(snaps) < 2 {
		return
	}
	kept := snaps[:0]
	for i, s := range snaps {
		if i%2 == 1 {
			kept = append(kept, s)
		} else {
			r.ck.count--
			r.ck.bytes -= s.sizeBytes()
		}
	}
	for i := len(kept); i < len(snaps); i++ {
		snaps[i] = nil
	}
	r.ck.perCTA[cta] = kept
}

// noteBoundaryWrites folds a completed CTA's write set into the delta base.
// The CTA-boundary recorder calls this from AfterCTA with the pages it
// harvested.
func (r *WarpCheckpointRecorder) noteBoundaryWrites(pages []int32) {
	for _, p := range pages {
		r.sinceBase[p] = struct{}{}
	}
}

// resetBase marks that a CTA-boundary snapshot was just retained: deltas of
// later captures are relative to it, so the accumulated set empties.
func (r *WarpCheckpointRecorder) resetBase() {
	clear(r.sinceBase)
}

// Finish returns the immutable store. Call once, after the golden run
// completed without a trap.
func (r *WarpCheckpointRecorder) Finish() *WarpCheckpoints {
	r.cur = nil
	return r.ck
}
