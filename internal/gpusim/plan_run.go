package gpusim

// The compiled dispatch loops. Two tiers:
//
//   - stepCompiled is the careful path: one dynamic instruction with every
//     observable of exec.step intact (tracer callback, injection arm/disarm
//     and writeback, watchdog, guard annulment). It is used whenever
//     something watches the thread — a Tracer, an intra-CTA recorder, or a
//     not-yet-fired injection.
//   - runThreadFast/runWarpBatch are the fast paths for unobserved
//     execution: they dispatch straight-line runs of pre-decoded closures
//     without re-entering the scheduler, keeping only the per-instruction
//     dynCount/watchdog/guard work the architectural semantics require.
//
// The fast paths are taken exactly when Tracer == nil, intra == nil, and no
// injection is pending on the thread/warp, so e.addrFlipBit is always -1
// there and all injection arm/disarm points live in stepCompiled, in the
// same positions as the reference step. A *persistent* injection
// (InjectKind.Persistent) never stops being pending: its thread (and warp)
// stay on the careful path for the remainder of the run, until the faulty
// thread exits and the fault dies with it. Scheduling order (serial
// round-robin at barrier boundaries; warped min-PC sweeps) is identical to
// runCTA/runCTAWarped by construction — see DESIGN.md §3.8.

// stepCompiled executes one dynamic instruction via the plan, mirroring
// exec.step observable for observable.
func (e *exec) stepCompiled(th *threadState, cta *ctaState) (blocked bool, trap *Trap) {
	ops := e.plan.ops
	if th.pc < 0 || th.pc >= len(ops) {
		// Falling off the end retires the thread, like an implicit exit.
		th.done = true
		return false, nil
	}
	op := &ops[th.pc]

	th.dynCount++
	if th.dynCount > e.watchdog {
		return false, e.watchdogTrap(th)
	}

	executed := true
	if op.guard != nil {
		ok, tr := op.guard(th)
		if tr != nil {
			return false, tr
		}
		executed = ok
	}

	inj := e.launch.Inject
	injHere := inj != nil && th.flat == inj.Thread && th.dynCount-1 == inj.DynInst

	wrote := false
	if e.launch.Tracer != nil || injHere {
		wrote = executed && op.hasDest
		if e.launch.Tracer != nil {
			e.launch.Tracer.Record(th.flat, th.pc, wrote)
		}
	}
	if injHere && executed && inj.Kind == InjectMemAddr {
		e.addrFlipBit = inj.Bit
	}

	nextPC := th.pc + 1
	if executed {
		if op.seq != nil {
			if tr := op.seq(e, th, cta); tr != nil {
				e.addrFlipBit = -1
				return false, tr
			}
		} else {
			var tr *Trap
			nextPC, blocked, tr = op.ctrl(e, th, cta)
			if tr != nil {
				e.addrFlipBit = -1
				return false, tr
			}
		}
	}
	e.addrFlipBit = -1

	if injHere && wrote {
		switch inj.Kind {
		case InjectDestValue:
			e.flipRegBit(th, op.destReg, inj.Bit)
		case InjectDestDouble:
			e.flipRegBit(th, op.destReg, inj.Bit)
			e.flipRegBit(th, op.destReg, inj.Bit+1)
		case InjectDestByte:
			e.flipRegByte(th, op.destReg, inj.Bit)
		case InjectLaneCorrelated:
			e.flipLaneGroup(th, cta, op.destReg, inj.Bit)
		}
	}
	if e.persist != nil {
		blocked = e.persistAfterStep(th, blocked)
	}

	th.pc = nextPC
	return blocked, nil
}

// runThreadFast runs one unobserved thread until it parks, exits, or
// traps, batching straight-line runs. Loop shape equivalence to the
// reference: each iteration of exec.step either advances pc (sequential),
// redirects it (branch), parks (bar), or retires (exit/fall-off); this
// loop performs the same transitions with the per-instruction bookkeeping
// inlined. th.pc is kept current so traps built inside closures carry the
// faulting PC.
func (e *exec) runThreadFast(th *threadState, cta *ctaState) *Trap {
	ops := e.plan.ops
	n := len(ops)
	for {
		pc := th.pc
		if pc < 0 || pc >= n {
			th.done = true
			return nil
		}
		op := &ops[pc]
		if op.straight > 0 {
			end := pc + int(op.straight)
			for pc < end {
				op = &ops[pc]
				th.dynCount++
				if th.dynCount > e.watchdog {
					return e.watchdogTrap(th)
				}
				if op.guard != nil {
					ok, tr := op.guard(th)
					if tr != nil {
						return tr
					}
					if !ok {
						// Annulled: retires and counts, writes nothing.
						pc++
						th.pc = pc
						continue
					}
				}
				if tr := op.seq(e, th, cta); tr != nil {
					return tr
				}
				pc++
				th.pc = pc
			}
			continue
		}
		// Control instruction.
		th.dynCount++
		if th.dynCount > e.watchdog {
			return e.watchdogTrap(th)
		}
		if op.guard != nil {
			ok, tr := op.guard(th)
			if tr != nil {
				return tr
			}
			if !ok {
				th.pc = pc + 1
				continue
			}
		}
		nextPC, blocked, tr := op.ctrl(e, th, cta)
		if tr != nil {
			return tr
		}
		th.pc = nextPC
		if th.done || blocked {
			return nil
		}
	}
}

// runCTACompiled is the compiled counterpart of runCTA: identical
// round-robin scheduling at barrier boundaries, with unobserved threads
// driven by runThreadFast. An injected thread steps carefully until its
// injection fires, then joins the fast path — except under a persistent
// fault, which never retires: the faulty thread then stays on the careful
// path for the remainder of the run so every enforcement point (predicate
// clamp, barrier blow-through, lane freeze) is observed.
func (e *exec) runCTACompiled(cta *ctaState) *Trap {
	instrumented := e.launch.Tracer != nil || e.intra != nil
	inj := e.launch.Inject
	for {
		progress := false
		for _, th := range cta.threads {
			if th.done || th.waiting || e.laneFrozen(th) {
				continue
			}
			if instrumented {
				for !th.done && !th.waiting {
					blocked, trap := e.stepCompiled(th, cta)
					if trap != nil {
						return trap
					}
					if e.intra != nil {
						// Same resume-safe points as runCTA: any post-step
						// boundary in serial mode.
						e.intra.step()
						e.intra.flush()
					}
					if blocked {
						break
					}
				}
			} else {
				if inj != nil && th.flat == inj.Thread {
					// Careful until the injection fires: the step that starts
					// with dynCount == DynInst retires dynamic instruction
					// DynInst and applies the fault. Persistent kinds never
					// fire-and-retire, so the thread steps carefully forever.
					blocked := false
					for !th.done && !blocked && !e.laneFrozen(th) &&
						(inj.Kind.Persistent() || th.dynCount <= inj.DynInst) {
						var trap *Trap
						blocked, trap = e.stepCompiled(th, cta)
						if trap != nil {
							return trap
						}
					}
				}
				if !th.done && !th.waiting && !e.laneFrozen(th) &&
					(inj == nil || th.flat != inj.Thread || !inj.Kind.Persistent()) {
					if trap := e.runThreadFast(th, cta); trap != nil {
						return trap
					}
				}
			}
			progress = true
		}
		status, trap := e.resolveBarrier(cta, progress)
		if trap != nil {
			return trap
		}
		if status == ctaFinished {
			return nil
		}
	}
}

// runWarpBatch executes a straight-line run for the warp's min-PC lanes:
// the active set is every eligible lane at minPC, and the run extends to
// the earlier of the straight-run end and the lowest PC of any other
// alive lane (where diverged lanes would reconverge into the active set).
// Within that window the reference min-PC sweep would re-select exactly
// the active lanes every instruction, so executing instruction-major in
// warp order here retires the same dynamic instructions in the same order.
func (e *exec) runWarpBatch(warp []*threadState, minPC int, cta *ctaState) (bool, *Trap) {
	ops := e.plan.ops
	active := e.warpActive[:0]
	limit := minPC + int(ops[minPC].straight)
	for _, th := range warp {
		if th.done || th.waiting {
			continue
		}
		if th.pc == minPC {
			active = append(active, th)
		} else if th.pc < limit {
			limit = th.pc
		}
	}
	e.warpActive = active
	for pc := minPC; pc < limit; pc++ {
		op := &ops[pc]
		for _, th := range active {
			th.dynCount++
			if th.dynCount > e.watchdog {
				return true, e.watchdogTrap(th)
			}
			if op.guard != nil {
				ok, tr := op.guard(th)
				if tr != nil {
					return true, tr
				}
				if !ok {
					th.pc = pc + 1
					continue
				}
			}
			if tr := op.seq(e, th, cta); tr != nil {
				return true, tr
			}
			th.pc = pc + 1
		}
	}
	return len(active) > 0, nil
}

// runCTAWarpedCompiled is the compiled counterpart of runCTAWarped:
// identical min-PC lockstep scheduling, with unobserved warps batching
// straight-line runs across all active lanes. Warps containing a pending
// injection step carefully until it fires.
func (e *exec) runCTAWarpedCompiled(cta *ctaState, warpSize int) *Trap {
	instrumented := e.launch.Tracer != nil || e.intra != nil
	inj := e.launch.Inject
	nInstr := len(e.plan.ops)
	for {
		progress := false
		for base := 0; base < len(cta.threads); base += warpSize {
			end := base + warpSize
			if end > len(cta.threads) {
				end = len(cta.threads)
			}
			warp := cta.threads[base:end]
			var injTh *threadState
			if inj != nil {
				for _, th := range warp {
					if th.flat == inj.Thread {
						injTh = th
						break
					}
				}
			}
			// Drive this warp until its threads all park or exit.
			for {
				minPC := -1
				for _, th := range warp {
					if th.done || th.waiting || e.laneFrozen(th) {
						continue
					}
					if minPC < 0 || th.pc < minPC {
						minPC = th.pc
					}
				}
				if minPC < 0 {
					break
				}
				// A warp holding a pending transient injection steps
				// carefully until it fires; a persistent one never retires,
				// so that warp stays careful for the whole run (unless the
				// faulty thread already exited, which ends the fault's reach).
				if !instrumented &&
					(injTh == nil || injTh.done ||
						(!inj.Kind.Persistent() && injTh.dynCount > inj.DynInst)) &&
					minPC < nInstr && e.plan.ops[minPC].straight > 0 {
					stepped, trap := e.runWarpBatch(warp, minPC, cta)
					if trap != nil {
						return trap
					}
					if stepped {
						progress = true
					}
					continue
				}
				// Careful sweep, identical to the reference loop.
				for _, th := range warp {
					if th.done || th.waiting || th.pc != minPC || e.laneFrozen(th) {
						continue
					}
					if _, trap := e.stepCompiled(th, cta); trap != nil {
						return trap
					}
					if e.intra != nil {
						e.intra.step()
					}
					progress = true
				}
				if e.intra != nil {
					// Same resume-safe points as runCTAWarped: min-PC sweep
					// boundaries only.
					e.intra.flush()
				}
			}
		}
		status, trap := e.resolveBarrier(cta, progress)
		if trap != nil {
			return trap
		}
		if status == ctaFinished {
			return nil
		}
	}
}
