package gpusim

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/ptx"
)

// runProg executes a single-thread program on a small device and returns
// the result plus the device.
func runProg(t *testing.T, src string, global []uint32, params []uint32) (*Result, *Device) {
	t.Helper()
	prog, err := ptx.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	dev := NewDevice(4 * max(len(global), 16))
	dev.WriteWords(0, global)
	res, err := Execute(dev, &Launch{
		Prog:   prog,
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: 1, Y: 1, Z: 1},
		Params: params,
	})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return res, dev
}

// evalOp runs "op dst, srcs..." storing the result word at global[0].
func evalOp(t *testing.T, expr string) uint32 {
	t.Helper()
	src := expr + "\nst.global.u32 [$r124], $r10\nexit"
	res, dev := runProg(t, src, []uint32{0xDEADBEEF}, nil)
	if res.Trap != nil {
		t.Fatalf("trap: %v", res.Trap)
	}
	return dev.ReadWords(0, 1)[0]
}

func f32imm(f float32) string {
	return "0f" + hex8(math.Float32bits(f))
}

func hex8(v uint32) string {
	const digits = "0123456789ABCDEF"
	var b [8]byte
	for i := 7; i >= 0; i-- {
		b[i] = digits[v&0xF]
		v >>= 4
	}
	return string(b[:])
}

func TestIntALU(t *testing.T) {
	cases := []struct {
		expr string
		want uint32
	}{
		{"add.u32 $r10, 7, 8", 15},
		{"sub.u32 $r10, 7, 8", 0xFFFFFFFF},
		{"mul.lo.u32 $r10, 100000, 100000", 100000 * 100000 % (1 << 32) & 0xFFFFFFFF},
		{"mul.wide.u16 $r10, 0x0000FFFF, 0x0000FFFF", 0xFFFF * 0xFFFF},
		{"mad.lo.u32 $r10, 3, 4, 5", 17},
		{"div.u32 $r10, 17, 5", 3},
		{"div.s32 $r10, -17, 5", 0xFFFFFFFD},
		{"div.u32 $r10, 17, 0", 0xFFFFFFFF}, // divide by zero: all-ones, no trap
		{"rem.u32 $r10, 17, 5", 2},
		{"rem.u32 $r10, 17, 0", 17},
		{"min.u32 $r10, 3, -1", 3},
		{"min.s32 $r10, 3, -1", 0xFFFFFFFF},
		{"max.u32 $r10, 3, -1", 0xFFFFFFFF},
		{"max.s32 $r10, 3, -1", 3},
		{"and.b32 $r10, 0x000000F0, 0x000000FF", 0xF0},
		{"or.b32 $r10, 0x000000F0, 0x0000000F", 0xFF},
		{"xor.b32 $r10, 0x000000FF, 0x0000000F", 0xF0},
		{"not.b32 $r10, 0", 0xFFFFFFFF},
		{"cnot.b32 $r10, 0", 1},
		{"cnot.b32 $r10, 5", 0},
		{"shl.u32 $r10, 1, 5", 32},
		{"shr.u32 $r10, 0x80000000, 4", 0x08000000},
		{"shr.s32 $r10, 0x80000000, 4", 0xF8000000},
		{"shl.u32 $r10, 1, 33", 2}, // shift amount masked to 5 bits
		{"abs.s32 $r10, -5", 5},
		{"neg.s32 $r10, 5", 0xFFFFFFFB},
		{"sad.u32 $r10, 3, 10, 100", 107},
		{"sad.s32 $r10, -3, 10, 100", 113},
		{"slct.s32 $r10, 11, 22, 1", 11},
		{"slct.s32 $r10, 11, 22, -1", 22},
	}
	for _, c := range cases {
		if got := evalOp(t, c.expr); got != c.want {
			t.Errorf("%q = %#x, want %#x", c.expr, got, c.want)
		}
	}
}

func TestWideSignedMul(t *testing.T) {
	// mul.wide.s16 with .lo/.hi half selection and sign extension.
	src := `
		mov.u32 $r1, 0x8000FFFF
		mul.wide.s16 $r10, $r1.lo, $r1.hi
		st.global.u32 [$r124], $r10
		exit
	`
	res, dev := runProg(t, src, []uint32{0}, nil)
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	// lo = -1, hi = -32768 -> 32768
	if got := dev.ReadWords(0, 1)[0]; got != 32768 {
		t.Fatalf("wide signed mul = %d, want 32768", got)
	}
}

func TestFloatALU(t *testing.T) {
	f := func(x float32) uint32 { return math.Float32bits(x) }
	cases := []struct {
		expr string
		want uint32
	}{
		{"add.f32 $r10, " + f32imm(1.5) + ", " + f32imm(2.25), f(3.75)},
		{"sub.f32 $r10, " + f32imm(1.5) + ", " + f32imm(2.25), f(-0.75)},
		{"mul.f32 $r10, " + f32imm(1.5) + ", " + f32imm(2.0), f(3.0)},
		{"mad.f32 $r10, " + f32imm(1.5) + ", " + f32imm(2.0) + ", " + f32imm(0.5), f(3.5)},
		{"div.f32 $r10, " + f32imm(1.0) + ", " + f32imm(4.0), f(0.25)},
		{"div.f32 $r10, " + f32imm(1.0) + ", " + f32imm(0.0), f(float32(math.Inf(1)))},
		{"rcp.f32 $r10, " + f32imm(4.0), f(0.25)},
		{"sqrt.f32 $r10, " + f32imm(9.0), f(3.0)},
		{"rsqrt.f32 $r10, " + f32imm(4.0), f(0.5)},
		{"ex2.f32 $r10, " + f32imm(3.0), f(8.0)},
		{"lg2.f32 $r10, " + f32imm(8.0), f(3.0)},
		{"abs.f32 $r10, " + f32imm(-2.5), f(2.5)},
		{"neg.f32 $r10, " + f32imm(2.5), f(-2.5)},
		{"min.f32 $r10, " + f32imm(1.0) + ", " + f32imm(-1.0), f(-1.0)},
		{"max.f32 $r10, " + f32imm(1.0) + ", " + f32imm(-1.0), f(1.0)},
		{"add.sat.f32 $r10, " + f32imm(1.5) + ", " + f32imm(2.25), f(1.0)},
		{"add.sat.f32 $r10, " + f32imm(-1.5) + ", " + f32imm(0.25), f(0.0)},
	}
	for _, c := range cases {
		if got := evalOp(t, c.expr); got != c.want {
			t.Errorf("%q = %#x (%g), want %#x (%g)", c.expr,
				got, math.Float32frombits(got), c.want, math.Float32frombits(c.want))
		}
	}
}

func TestSinCos(t *testing.T) {
	got := math.Float32frombits(evalOp(t, "sin.f32 $r10, "+f32imm(0.5)))
	if math.Abs(float64(got)-math.Sin(0.5)) > 1e-6 {
		t.Errorf("sin(0.5) = %g", got)
	}
	got = math.Float32frombits(evalOp(t, "cos.f32 $r10, "+f32imm(0.5)))
	if math.Abs(float64(got)-math.Cos(0.5)) > 1e-6 {
		t.Errorf("cos(0.5) = %g", got)
	}
}

func TestCvt(t *testing.T) {
	f := func(x float32) uint32 { return math.Float32bits(x) }
	cases := []struct {
		expr string
		want uint32
	}{
		{"cvt.u32.u16 $r10, 0x00012345", 0x2345},
		{"cvt.s32.s16 $r10, 0x0000FFFF", 0xFFFFFFFF},
		{"cvt.s32.s8 $r10, 0x00000080", 0xFFFFFF80},
		{"cvt.u32.u8 $r10, 0x00000180", 0x80},
		{"cvt.f32.s32 $r10, -2", f(-2)},
		{"cvt.f32.u32 $r10, 3", f(3)},
		{"cvt.s32.f32 $r10, " + f32imm(-2.75), 0xFFFFFFFE},
		{"cvt.u32.f32 $r10, " + f32imm(3.99), 3},
		{"cvt.u32.f32 $r10, " + f32imm(-1.0), 0},
		{"cvt.s32.s32 $r10, -5", 0xFFFFFFFB},
		{"cvt.u16.u32 $r10, 0x00012345", 0x2345},
	}
	for _, c := range cases {
		if got := evalOp(t, c.expr); got != c.want {
			t.Errorf("%q = %#x, want %#x", c.expr, got, c.want)
		}
	}
}

func TestCvtNegatedSource(t *testing.T) {
	// The paper's listings use "cvt.s32.s32 $r2, -$r2" as negation.
	src := `
		mov.u32 $r2, 5
		cvt.s32.s32 $r2, -$r2
		st.global.u32 [$r124], $r2
		exit
	`
	res, dev := runProg(t, src, []uint32{0}, nil)
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	if got := int32(dev.ReadWords(0, 1)[0]); got != -5 {
		t.Fatalf("negate = %d, want -5", got)
	}
}

func TestSetAndGuards(t *testing.T) {
	// set.CMP writes all-ones/zero and the guard reads the flags.
	cases := []struct {
		cmp   string
		a, b  int32
		taken bool // @$p0.ne bra taken means comparison true
	}{
		{"eq", 5, 5, true},
		{"eq", 5, 6, false},
		{"ne", 5, 6, true},
		{"lt", -1, 3, true},
		{"lt", 3, -1, false},
		{"ge", 3, -1, true},
		{"le", 3, 3, true},
		{"gt", 4, 3, true},
	}
	for _, c := range cases {
		src := `
			mov.u32 $r1, ` + itoa(c.a) + `
			mov.u32 $r2, ` + itoa(c.b) + `
			set.` + c.cmp + `.s32.s32 $p0/$o127, $r1, $r2
			mov.u32 $r10, 0
			@$p0.ne bra ltaken
			bra lend
			ltaken: mov.u32 $r10, 1
			lend: st.global.u32 [$r124], $r10
			exit
		`
		res, dev := runProg(t, src, []uint32{7}, nil)
		if res.Trap != nil {
			t.Fatal(res.Trap)
		}
		want := uint32(0)
		if c.taken {
			want = 1
		}
		if got := dev.ReadWords(0, 1)[0]; got != want {
			t.Errorf("set.%s %d,%d: taken=%d want %d", c.cmp, c.a, c.b, got, want)
		}
	}
}

func TestUnsignedCompare(t *testing.T) {
	// set.lt.u32: 0xFFFFFFFF is large unsigned.
	if got := evalOp(t, "set.lt.u32.u32 $r10, -1, 1"); got != 0 {
		t.Errorf("unsigned -1 < 1 should be false, got %#x", got)
	}
	if got := evalOp(t, "set.lt.s32.s32 $r10, -1, 1"); got != 0xFFFFFFFF {
		t.Errorf("signed -1 < 1 should be true, got %#x", got)
	}
	// set with a float destination type writes 1.0f for true (PTX
	// semantics), not all-ones.
	if got := evalOp(t, "set.gt.f32.f32 $r10, "+f32imm(2.0)+", "+f32imm(1.0)); got != math.Float32bits(1.0) {
		t.Errorf("float compare = %#x, want 1.0f bits", got)
	}
	if got := evalOp(t, "set.gt.u32.f32 $r10, "+f32imm(1.0)+", "+f32imm(2.0)); got != 0 {
		t.Errorf("false float compare = %#x, want 0", got)
	}
}

func TestSelp(t *testing.T) {
	src := `
		set.eq.u32.u32 $p1/$o127, 3, 3
		selp.u32 $r10, 111, 222, $p1
		st.global.u32 [$r124], $r10
		exit
	`
	res, dev := runProg(t, src, []uint32{0}, nil)
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	if got := dev.ReadWords(0, 1)[0]; got != 111 {
		t.Fatalf("selp picked %d", got)
	}
}

func itoa(v int32) string {
	if v >= 0 && v < 10 {
		return string(rune('0' + v))
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

func TestZeroAndSinkRegisters(t *testing.T) {
	src := `
		mov.u32 $r124, 42          // write to zero register discarded
		mov.u32 $r10, $r124
		st.global.u32 [$r124], $r10
		add.u32 $o127, 1, 2        // write to sink discarded
		mov.u32 $r11, $o127
		st.global.u32 [4], $r11
		exit
	`
	res, dev := runProg(t, src, []uint32{7, 7}, nil)
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	w := dev.ReadWords(0, 2)
	if w[0] != 0 || w[1] != 0 {
		t.Fatalf("zero/sink leaked: %v", w)
	}
}

func TestMemWidths(t *testing.T) {
	src := `
		mov.u32 $r1, 0x00000004
		ld.global.u8 $r10, [$r1]
		st.global.u32 [0x0008], $r10
		ld.global.s8 $r10, [$r1]
		st.global.u32 [0x000c], $r10
		ld.global.u16 $r10, [$r1]
		st.global.u32 [0x0010], $r10
		ld.global.s16 $r10, [$r1]
		st.global.u32 [0x0014], $r10
		mov.u32 $r2, 0x00000081
		st.global.u8 [0x0018], $r2
		mov.u32 $r3, 0x00018234
		st.global.u16 [0x001c], $r3
		exit
	`
	res, dev := runProg(t, src, []uint32{0, 0x800080F3, 0, 0, 0, 0, 0, 0}, nil)
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	w := dev.ReadWords(0, 8)
	if w[2] != 0xF3 {
		t.Errorf("u8 load = %#x", w[2])
	}
	if w[3] != 0xFFFFFFF3 {
		t.Errorf("s8 load = %#x", w[3])
	}
	if w[4] != 0x80F3 {
		t.Errorf("u16 load = %#x", w[4])
	}
	if w[5] != 0xFFFF80F3 {
		t.Errorf("s16 load = %#x", w[5])
	}
	if w[6] != 0x81 {
		t.Errorf("u8 store = %#x", w[6])
	}
	if w[7] != 0x8234 {
		t.Errorf("u16 store = %#x", w[7])
	}
}

func TestMemTraps(t *testing.T) {
	cases := []struct {
		name string
		src  string
		kind TrapKind
	}{
		{"load out of range", "ld.global.u32 $r1, [0x00010000]\nexit", TrapMemFault},
		{"store out of range", "st.global.u32 [0x00010000], $r1\nexit", TrapMemFault},
		{"misaligned load", "ld.global.u32 $r1, [0x00000002]\nexit", TrapMemFault},
		{"misaligned u16", "ld.global.u16 $r1, [0x00000003]\nexit", TrapMemFault},
		{"const write", "st.const.u32 c[0x0000], $r1\nexit", TrapMemFault},
	}
	for _, c := range cases {
		res, _ := runProg(t, c.src, []uint32{0, 0}, nil)
		if res.Trap == nil || res.Trap.Kind != c.kind {
			t.Errorf("%s: trap = %v, want %v", c.name, res.Trap, c.kind)
		}
	}
}

func TestConstSpace(t *testing.T) {
	prog := ptx.MustAssemble("c", `
		ld.const.u32 $r1, c[0x0004]
		st.global.u32 [0x0000], $r1
		exit
	`)
	dev := NewDevice(16)
	dev.Const = []byte{1, 0, 0, 0, 0x2A, 0, 0, 0}
	res, err := Execute(dev, &Launch{Prog: prog,
		Grid: Dim3{X: 1, Y: 1, Z: 1}, Block: Dim3{X: 1, Y: 1, Z: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	if got := dev.ReadWords(0, 1)[0]; got != 0x2A {
		t.Fatalf("const load = %#x", got)
	}
}

func TestWatchdog(t *testing.T) {
	prog := ptx.MustAssemble("w", `
		lloop: bra lloop
	`)
	dev := NewDevice(16)
	res, err := Execute(dev, &Launch{
		Prog:     prog,
		Grid:     Dim3{X: 1, Y: 1, Z: 1},
		Block:    Dim3{X: 1, Y: 1, Z: 1},
		Watchdog: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap == nil || res.Trap.Kind != TrapWatchdog {
		t.Fatalf("trap = %v, want watchdog", res.Trap)
	}
}

func TestParamsInSharedMemory(t *testing.T) {
	src := `
		mov.u32 $r1, s[0x0010]
		add.u32 $r1, $r1, s[0x0014]
		st.global.u32 [0x0000], $r1
		exit
	`
	res, dev := runProg(t, src, []uint32{0}, []uint32{40, 2})
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	if got := dev.ReadWords(0, 1)[0]; got != 42 {
		t.Fatalf("params = %d, want 42", got)
	}
}

func TestSpecialRegisters(t *testing.T) {
	prog := ptx.MustAssemble("s", `
		cvt.u32.u16 $r0, %tid.x
		cvt.u32.u16 $r1, %tid.y
		cvt.u32.u16 $r2, %ctaid.x
		cvt.u32.u16 $r3, %ntid.x
		cvt.u32.u16 $r4, %nctaid.x
		mul.lo.u32 $r5, $r2, $r3
		add.u32 $r5, $r5, $r0
		mad.lo.u32 $r5, $r1, 100, $r5
		mad.lo.u32 $r5, $r4, 1000, $r5
		// Unique small slot per thread: ctaid.x*4 + tid.y*2 + tid.x.
		mul.lo.u32 $r6, $r2, 4
		mad.lo.u32 $r6, $r1, 2, $r6
		add.u32 $r6, $r6, $r0
		shl.u32 $r6, $r6, 0x00000002
		st.global.u32 [$r6], $r5
		exit
	`)
	dev := NewDevice(4096)
	res, err := Execute(dev, &Launch{
		Prog:  prog,
		Grid:  Dim3{X: 2, Y: 1, Z: 1},
		Block: Dim3{X: 2, Y: 2, Z: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	// thread (tid.x=1, tid.y=1, cta 1): value = 1*2+1 + 1*100 + 2*1000 = 2103
	// at slot 1*4 + 1*2 + 1 = 7 (byte 28).
	if got := dev.ReadWords(28, 1)[0]; got != 2103 {
		t.Fatalf("specials = %d, want 2103", got)
	}
}

func TestGuardedNonBranch(t *testing.T) {
	// A failed guard annuls the write but still retires the instruction.
	src := `
		set.eq.u32.u32 $p0/$o127, 1, 2
		mov.u32 $r10, 7
		@$p0.ne mov.u32 $r10, 9
		st.global.u32 [0x0000], $r10
		exit
	`
	res, dev := runProg(t, src, []uint32{0}, nil)
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	if got := dev.ReadWords(0, 1)[0]; got != 7 {
		t.Fatalf("guarded mov executed: %d", got)
	}
	if res.ThreadICnt[0] != 5 {
		t.Fatalf("iCnt = %d, want 5 (annulled instruction still retires)", res.ThreadICnt[0])
	}
}

func TestPredValueFlags(t *testing.T) {
	// and.b32 with dual dest sets the zero flag from the result.
	src := `
		mov.u32 $r5, 0x00000001
		mov.u32 $r2, 0x00000000
		and.b32 $p0|$o127, $r5, $r2
		mov.u32 $r10, 0
		@$p0.eq bra lzero
		bra lend
		lzero: mov.u32 $r10, 1
		lend: st.global.u32 [0x0000], $r10
		exit
	`
	res, dev := runProg(t, src, []uint32{0}, nil)
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	if got := dev.ReadWords(0, 1)[0]; got != 1 {
		t.Fatalf("zero flag branch not taken: %d", got)
	}
}

func TestEvalCondTable(t *testing.T) {
	cases := []struct {
		flags uint8
		cond  isa.CmpOp
		want  bool
	}{
		{isa.FlagZero, isa.CmpEq, true},
		{0, isa.CmpEq, false},
		{0, isa.CmpNe, true},
		{isa.FlagSign, isa.CmpLt, true},
		{isa.FlagZero, isa.CmpLe, true},
		{0, isa.CmpGt, true},
		{isa.FlagSign, isa.CmpGe, false},
		{isa.FlagCarry, isa.CmpHs, true},
		{0, isa.CmpLo, true},
		{isa.FlagZero | isa.FlagCarry, isa.CmpHi, false},
	}
	for _, c := range cases {
		got, valid := evalCond(c.flags, c.cond)
		if !valid {
			t.Errorf("evalCond(%#x, %v) reported invalid", c.flags, c.cond)
		}
		if got != c.want {
			t.Errorf("evalCond(%#x, %v) = %v, want %v", c.flags, c.cond, got, c.want)
		}
		// The compiled guard test must agree with the interpreter.
		if test := condTest(c.cond); test == nil || test(c.flags) != c.want {
			t.Errorf("condTest(%v)(%#x) disagrees with evalCond", c.cond, c.flags)
		}
	}
	// Unknown condition codes are invalid in both paths.
	for _, c := range []isa.CmpOp{isa.CmpNone, isa.CmpHs + 1, isa.CmpOp(99)} {
		if _, valid := evalCond(0, c); valid {
			t.Errorf("evalCond(0, %d) claims valid", uint8(c))
		}
		if condTest(c) != nil {
			t.Errorf("condTest(%d) compiled an evaluator", uint8(c))
		}
	}
}
