package gpusim

import "repro/internal/isa"

// Persistent (stuck-at) fault machinery. A persistent injection activates at
// the retirement of dynamic instruction DynInst of the injected thread —
// the same instant a transient fault would fire — and then holds its stuck
// value for the remainder of the run. The fault state is bound to the
// injected thread: predicate clamps only touch that thread's registers, a
// frozen or barrier-stuck lane stops mattering once the thread retires, so
// the fault's reach ends with the injected thread's CTA. Both execution
// paths (the reference interpreter and the compiled plan) share every
// function in this file, which is what keeps them bit-identical under
// persistent faults (DESIGN.md §3.9).

// persistState is the live state of an armed persistent fault, decoded once
// from the Injection at launch.
type persistState struct {
	kind    InjectKind
	thread  int   // flat id of the faulty thread
	dynInst int64 // activation point: live once thread.dynCount > dynInst
	active  bool

	stuck1 bool // the stuck value (false = stuck at 0)
	// InjectStuckPred only: the clamped register and flag bit.
	predReg  int
	predMask uint8
}

// stuckPredSpan is the per-value encoding width of InjectStuckPred's Bit
// field: one code point per (predicate register, flag bit) pair.
const stuckPredSpan = isa.NumPreds * isa.PredBits

// newPersistState decodes the injection's persistent-fault parameters; nil
// for transient (or absent) injections. The Bit field packs the fault
// location and stuck value:
//
//   - InjectStuckPred: Bit in [0, 2*NumPreds*PredBits) selects stuck value
//     (high half = stuck at 1), predicate register, and flag bit. Values are
//     reduced modulo the space so arbitrary fuzzed bits stay well-defined.
//   - InjectStuckActiveMask, InjectStuckBarrier: Bit&1 is the stuck value.
func newPersistState(inj *Injection) *persistState {
	if inj == nil || !inj.Kind.Persistent() {
		return nil
	}
	p := &persistState{kind: inj.Kind, thread: inj.Thread, dynInst: inj.DynInst}
	switch inj.Kind {
	case InjectStuckPred:
		b := inj.Bit % (2 * stuckPredSpan)
		if b < 0 {
			b += 2 * stuckPredSpan
		}
		p.stuck1 = b >= stuckPredSpan
		rem := b % stuckPredSpan
		p.predReg = rem / isa.PredBits
		p.predMask = 1 << uint(rem%isa.PredBits)
	default:
		p.stuck1 = inj.Bit&1 == 1
	}
	return p
}

// persistAfterStep enforces an armed persistent fault after one retired
// dynamic instruction of th, activating it when the step just crossed the
// activation point. It runs at the end of step and stepCompiled — only the
// injected thread's own steps write its predicate and barrier state, so a
// post-step clamp is in force before every later read.
//
// The returned blocked flag replaces the step's: a stuck-at-1 active mask
// keeps the lane active through bar.sync, so the park is undone.
func (e *exec) persistAfterStep(th *threadState, blocked bool) bool {
	p := e.persist
	if th.flat != p.thread {
		return blocked
	}
	if !p.active {
		if th.dynCount <= p.dynInst {
			return blocked
		}
		p.active = true
	}
	switch p.kind {
	case InjectStuckPred:
		if p.stuck1 {
			th.preds[p.predReg] |= p.predMask
		} else {
			th.preds[p.predReg] &^= p.predMask
		}
	case InjectStuckActiveMask:
		if p.stuck1 && th.waiting {
			// The lane's active bit never clears: it blows through the
			// barrier instead of parking at it.
			th.waiting = false
			blocked = false
		}
	}
	return blocked
}

// persistLive reports whether the launch's persistent fault can still
// influence execution: the fault is armed or active and its thread has not
// exited. injTh is the injected thread's state once its CTA has been built
// (nil before — the fault is then armed in a CTA yet to run, hence live).
// Transient and absent injections are never live at a CTA boundary: a
// transient fault's effects are ordinary memory state, fully captured by
// the boundary snapshot's page images. Execute feeds this to the AfterCTA
// hook so convergence-hash early exits can refuse to fire while a
// scheduler-corrupting fault could still diverge a later CTA.
func (e *exec) persistLive(injTh *threadState) bool {
	if e.persist == nil {
		return false
	}
	return injTh == nil || !injTh.done
}

// laneFrozen reports whether th is the faulty lane of an activated
// stuck-at-0 active-mask fault: the lane is never scheduled again. All four
// scheduler loops consult this alongside done/waiting.
func (e *exec) laneFrozen(th *threadState) bool {
	p := e.persist
	return p != nil && p.active && p.kind == InjectStuckActiveMask &&
		!p.stuck1 && th.flat == p.thread
}

// resolveBarrier releases the waiters once every non-exited thread has
// arrived at the same barrier id, and detects completion and deadlock.
// progress reports whether the last scheduling round executed anything.
//
// Persistent faults bend the arrival rules: a thread whose barrier-arrival
// state is stuck at 1 counts as arrived while still running, one stuck at 0
// parks without its arrival ever registering (the barrier deadlocks), and a
// frozen lane (active mask stuck at 0) can never arrive at all. Shared by
// the interpreter and compiled schedulers so traps stay bit-identical.
func (e *exec) resolveBarrier(cta *ctaState, progress bool) (barrierStatus, *Trap) {
	p := e.persist
	if p != nil && !p.active {
		p = nil // not yet activated: fault-free barrier semantics
	}
	alive, waitingCnt := 0, 0
	ghosts := 0 // alive, running threads that count as arrived (stuck at 1)
	var stuck0, frozen *threadState
	var barID uint32
	uniform := true
	for _, th := range cta.threads {
		if th.done {
			continue
		}
		alive++
		if p != nil && th.flat == p.thread {
			switch p.kind {
			case InjectStuckBarrier:
				if p.stuck1 && !th.waiting {
					ghosts++
				} else if !p.stuck1 && th.waiting {
					stuck0 = th
				}
			case InjectStuckActiveMask:
				if !p.stuck1 {
					frozen = th
				}
			}
		}
		if th.waiting {
			if waitingCnt == 0 {
				barID = th.barID
			} else if th.barID != barID {
				uniform = false
			}
			waitingCnt++
		}
	}
	if alive == 0 {
		return ctaFinished, nil
	}
	if stuck0 != nil && waitingCnt == alive {
		// Every thread parked, but the faulty thread's arrival never
		// registers: the barrier can never be satisfied.
		return ctaRunning, &Trap{Kind: TrapDeadlock, Thread: stuck0.flat, PC: stuck0.pc,
			Msg: "barrier arrival state stuck at 0"}
	}
	if waitingCnt > 0 && waitingCnt+ghosts == alive && stuck0 == nil {
		if !uniform {
			return ctaRunning, &Trap{Kind: TrapDeadlock, Thread: -1, PC: -1,
				Msg: "threads waiting on different barrier ids"}
		}
		for _, th := range cta.threads {
			th.waiting = false
		}
		return ctaReleased, nil
	}
	if !progress {
		if frozen != nil {
			// The frozen lane can never retire (or arrive); once nothing
			// else is runnable the CTA is wedged for good.
			return ctaRunning, &Trap{Kind: TrapDeadlock, Thread: frozen.flat, PC: frozen.pc,
				Msg: "warp active-mask lane stuck at 0"}
		}
		if waitingCnt > 0 {
			// Cannot happen fault-free — exited threads reduce alive and
			// runnable threads always progress — but guard interpreter bugs.
			return ctaRunning, &Trap{Kind: TrapDeadlock, Thread: -1, PC: -1,
				Msg: "no runnable threads but barrier unsatisfied"}
		}
		return ctaFinished, nil
	}
	return ctaRunning, nil
}
