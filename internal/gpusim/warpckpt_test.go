package gpusim_test

import (
	"bytes"
	"testing"

	"repro/internal/gpusim"
	"repro/internal/ptx"
)

// TestSnapshotForBoundaries pins the boundary-store lookup semantics at the
// edges of the grid: CTA 0 always resumes from the pristine image, the last
// CTA always resumes from the last retained snapshot, and for every CTA the
// returned boundary is the largest retained multiple of the stride at or
// below it.
func TestSnapshotForBoundaries(t *testing.T) {
	prog, init := chainSetup(t)
	const numCTAs = 6
	for _, stride := range []int{1, 2, 3, 4, 5, 6} {
		golden := init.Clone()
		rec := gpusim.NewCheckpointRecorder(init, golden, numCTAs, stride)
		l := chainLaunch(prog)
		l.AfterCTA = rec.AfterCTA
		if _, err := gpusim.Execute(golden, l); err != nil {
			t.Fatal(err)
		}
		ck := rec.Finish()

		// CTA 0: the pristine image, boundary 0, snapshot ordinal 0.
		if idx := ck.SnapshotIndex(0); idx != 0 {
			t.Fatalf("stride %d: SnapshotIndex(0) = %d", stride, idx)
		}
		snap, first := ck.SnapshotFor(0)
		if first != 0 {
			t.Fatalf("stride %d: SnapshotFor(0) boundary %d", stride, first)
		}
		if !bytes.Equal(snap.Bytes(), init.Bytes()) {
			t.Fatalf("stride %d: CTA 0 snapshot differs from the pristine image", stride)
		}

		// Last CTA: the highest retained boundary, which is always the last
		// snapshot in the store.
		last := numCTAs - 1
		if idx := ck.SnapshotIndex(last); idx != last/stride || idx != ck.Count()-1 {
			t.Fatalf("stride %d: SnapshotIndex(%d) = %d, want %d (= Count()-1 = %d)",
				stride, last, idx, last/stride, ck.Count()-1)
		}
		snap, first = ck.SnapshotFor(last)
		if want := (last / stride) * stride; first != want {
			t.Fatalf("stride %d: SnapshotFor(%d) boundary %d, want %d", stride, last, first, want)
		}
		// The last CTA's snapshot equals an independent prefix execution.
		ref := init.Clone()
		if first > 0 {
			pl := chainLaunch(prog)
			pl.AfterCTA = func(c int, _ bool) bool { return c == first-1 }
			if _, err := gpusim.Execute(ref, pl); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(snap.Bytes(), ref.Bytes()) {
			t.Fatalf("stride %d: last-CTA snapshot differs from prefix run to boundary %d", stride, first)
		}

		// Every CTA: boundary <= cta, within one stride, index consistent.
		for cta := 0; cta < numCTAs; cta++ {
			s, b := ck.SnapshotFor(cta)
			if b > cta || cta-b >= stride || b != ck.SnapshotIndex(cta)*stride {
				t.Fatalf("stride %d: SnapshotFor(%d) boundary %d (index %d)",
					stride, cta, b, ck.SnapshotIndex(cta))
			}
			if s == nil {
				t.Fatalf("stride %d: nil snapshot for CTA %d", stride, cta)
			}
		}
	}
}

// TestWarpCheckpointResume is the unit-level soundness property of intra-CTA
// snapshots: restoring any retained snapshot (floor boundary state + page
// delta + materialized CTA state) and resuming the launch from it reproduces
// the uninterrupted golden run bit-for-bit, under both schedulers and at
// unit and non-unit boundary strides.
func TestWarpCheckpointResume(t *testing.T) {
	prog, init := chainSetup(t)
	const numCTAs, tpc = 6, 4
	for _, warp := range []int{0, 4} {
		for _, ctaStride := range []int{1, 2} {
			golden := init.Clone()
			rec := gpusim.NewCheckpointRecorder(init, golden, numCTAs, ctaStride)
			wrec := gpusim.NewWarpCheckpointRecorder(golden, numCTAs, 2)
			rec.AttachIntra(wrec)
			l := chainLaunch(prog)
			l.WarpSize = warp
			l.AfterCTA = rec.AfterCTA
			l.IntraRec = wrec
			res, err := gpusim.Execute(golden, l)
			if err != nil {
				t.Fatal(err)
			}
			if res.Trap != nil {
				t.Fatalf("golden trap: %v", res.Trap)
			}
			ck := rec.Finish()
			wck := wrec.Finish()
			want := golden.Bytes()

			if wck.Count() == 0 {
				t.Fatalf("warp %d ctaStride %d: no intra-CTA snapshots captured", warp, ctaStride)
			}
			if wck.Stride() != 2 || wck.Bytes() <= 0 {
				t.Fatalf("store reports stride %d, %d bytes", wck.Stride(), wck.Bytes())
			}

			for cta := 0; cta < numCTAs; cta++ {
				for ord := 0; ord < wck.PerCTA(cta); ord++ {
					ws := wck.Snapshot(cta, ord)
					if ws.CTA() != cta || ws.Retired() <= 0 {
						t.Fatalf("snapshot %d/%d reports CTA %d, retired %d",
							cta, ord, ws.CTA(), ws.Retired())
					}
					snap, _ := ck.SnapshotFor(cta)
					dev := init.Clone()
					dev.ResetFrom(snap)
					ws.RestorePages(dev)
					rl := chainLaunch(prog)
					rl.WarpSize = warp
					rl.FirstCTA = cta
					rl.Resume = ws
					tres, err := gpusim.Execute(dev, rl)
					if err != nil {
						t.Fatal(err)
					}
					if tres.Trap != nil {
						t.Fatalf("resume %d/%d trap: %v", cta, ord, tres.Trap)
					}
					if tres.CTAsExecuted != numCTAs-cta {
						t.Fatalf("resume %d/%d executed %d CTAs, want %d",
							cta, ord, tres.CTAsExecuted, numCTAs-cta)
					}
					if !bytes.Equal(dev.Bytes(), want) {
						t.Fatalf("warp %d ctaStride %d: resume from snapshot %d/%d diverges from golden",
							warp, ctaStride, cta, ord)
					}
					// dynCount continuity: resumed threads report their full
					// golden iCnt (the snapshot carries the prefix count, so
					// injection timing and the watchdog see full-run indices),
					// and the snapshot's count never exceeds it.
					for local := 0; local < tpc; local++ {
						th := cta*tpc + local
						if tres.ThreadICnt[th] != res.ThreadICnt[th] {
							t.Fatalf("resume %d/%d thread %d: iCnt %d, golden %d",
								cta, ord, th, tres.ThreadICnt[th], res.ThreadICnt[th])
						}
						if ws.DynAt(local) > res.ThreadICnt[th] {
							t.Fatalf("snapshot %d/%d thread %d: dynAt %d beyond golden iCnt %d",
								cta, ord, th, ws.DynAt(local), res.ThreadICnt[th])
						}
					}
				}

				// Lookup semantics: a site before the first capture has no
				// snapshot; a site exactly at a capture's dynamic count
				// resumes at that count.
				if wck.PerCTA(cta) > 0 {
					if got := wck.OrdinalBefore(cta, 0, 0); got != -1 {
						t.Fatalf("OrdinalBefore(%d, 0, 0) = %d, want -1", cta, got)
					}
					for ord := 0; ord < wck.PerCTA(cta); ord++ {
						ws := wck.Snapshot(cta, ord)
						for local := 0; local < tpc; local++ {
							got := wck.SnapshotBefore(cta, local, ws.DynAt(local))
							if got == nil || got.DynAt(local) != ws.DynAt(local) {
								t.Fatalf("SnapshotBefore(%d, %d, %d) does not land on a capture at that count",
									cta, local, ws.DynAt(local))
							}
						}
					}
				}
			}
		}
	}
}

// TestExecuteResumeValidation: a Resume snapshot that does not match the
// launch (wrong CTA, wrong geometry) — or a fast-forwarded launch whose
// skipped prefix would swallow the injection — is a launch error, not
// silent corruption.
func TestExecuteResumeValidation(t *testing.T) {
	prog, init := chainSetup(t)
	golden := init.Clone()
	wrec := gpusim.NewWarpCheckpointRecorder(golden, 6, 2)
	l := chainLaunch(prog)
	l.IntraRec = wrec
	if _, err := gpusim.Execute(golden, l); err != nil {
		t.Fatal(err)
	}
	wck := wrec.Finish()
	ws := wck.Snapshot(2, 0)

	// FirstCTA disagrees with the snapshot's CTA.
	bad := chainLaunch(prog)
	bad.FirstCTA = 1
	bad.Resume = ws
	if _, err := gpusim.Execute(init.Clone(), bad); err == nil {
		t.Fatal("Resume with mismatched FirstCTA accepted")
	}

	// Geometry disagrees with the snapshot's thread count.
	bad = chainLaunch(prog)
	bad.Block = gpusim.Dim3{X: 8, Y: 1, Z: 1}
	bad.FirstCTA = 2
	bad.Resume = ws
	if _, err := gpusim.Execute(init.Clone(), bad); err == nil {
		t.Fatal("Resume with mismatched block geometry accepted")
	}

	// The injection lies in a CTA the fast-forwarded launch skips: the
	// fault could never fire, so the launch is rejected (for persistent and
	// transient kinds alike).
	for _, kind := range []gpusim.InjectKind{gpusim.InjectStuckActiveMask, gpusim.InjectDestValue} {
		bad = chainLaunch(prog)
		bad.FirstCTA = 2
		bad.Inject = &gpusim.Injection{Thread: 0, DynInst: 1, Kind: kind}
		if _, err := gpusim.Execute(init.Clone(), bad); err == nil {
			t.Fatalf("%v injection in the skipped CTA prefix accepted", kind)
		}
	}

	// The Resume snapshot postdates the injection's activation point: the
	// injected thread already retired past DynInst at capture.
	if ws.DynAt(0) == 0 {
		t.Fatalf("snapshot 2/0 captured thread 0 at dyn 0; want progress for this test")
	}
	bad = chainLaunch(prog)
	bad.FirstCTA = 2
	bad.Resume = ws
	bad.Inject = &gpusim.Injection{Thread: 2 * 4, DynInst: ws.DynAt(0) - 1, Kind: gpusim.InjectStuckBarrier}
	if _, err := gpusim.Execute(init.Clone(), bad); err == nil {
		t.Fatal("Resume snapshot past the injection's activation point accepted")
	}

	// Positive control: the same snapshot with the injection at exactly the
	// captured count is a legal armed-fault resume.
	ok := chainLaunch(prog)
	ok.FirstCTA = 2
	ok.Resume = ws
	ok.Inject = &gpusim.Injection{Thread: 2 * 4, DynInst: ws.DynAt(0), Kind: gpusim.InjectStuckBarrier}
	dev := init.Clone()
	ws.RestorePages(dev)
	if _, err := gpusim.Execute(dev, ok); err != nil {
		t.Fatalf("armed-fault resume at the capture point rejected: %v", err)
	}
}

// TestWarpSnapshotCapturesSchedulerLedger: intra-CTA snapshots are
// scheduler-complete (DESIGN.md §3.11). On a kernel that parks threads at a
// non-zero barrier id while others have already exited, some capture must
// witness a parked thread with its barrier id and an exited thread — and
// resuming from every snapshot must still reproduce the golden run
// bit-for-bit, proving the captured ledger is also restored.
func TestWarpSnapshotCapturesSchedulerLedger(t *testing.T) {
	prog := ptx.MustAssemble("ledger", `
		cvt.u32.u16 $r0, %tid.x
		set.lt.u32.u32 $p0/$o127, $r0, 4
		@$p0.eq bra lexit          // threads 4..7 exit before the barrier
		bar.sync 0x00000001
		shl.u32 $r3, $r0, 0x00000002
		mov.u32 $r1, 7
		st.global.u32 [$r3], $r1
		lexit: exit
	`)
	init := gpusim.NewDevice(64)
	ledgerLaunch := func() *gpusim.Launch {
		return &gpusim.Launch{
			Prog:  prog,
			Grid:  gpusim.Dim3{X: 1, Y: 1, Z: 1},
			Block: gpusim.Dim3{X: 8, Y: 1, Z: 1},
		}
	}
	golden := init.Clone()
	wrec := gpusim.NewWarpCheckpointRecorder(golden, 1, 1)
	l := ledgerLaunch()
	l.IntraRec = wrec
	res, err := gpusim.Execute(golden, l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Fatalf("golden trap: %v", res.Trap)
	}
	wck := wrec.Finish()
	want := golden.Bytes()

	sawParked, sawExited := false, false
	for ord := 0; ord < wck.PerCTA(0); ord++ {
		ws := wck.Snapshot(0, ord)
		for th := 0; th < 8; th++ {
			if ws.Waiting(th) {
				if id := ws.BarrierID(th); id != 1 {
					t.Fatalf("snapshot %d: thread %d parked at barrier id %d, want 1", ord, th, id)
				}
				sawParked = true
			}
			if th >= 4 && ws.Done(th) {
				sawExited = true
			}
		}

		dev := init.Clone()
		ws.RestorePages(dev)
		rl := ledgerLaunch()
		rl.FirstCTA = 0
		rl.Resume = ws
		rres, err := gpusim.Execute(dev, rl)
		if err != nil {
			t.Fatal(err)
		}
		if rres.Trap != nil {
			t.Fatalf("resume from snapshot %d trapped: %v", ord, rres.Trap)
		}
		if !bytes.Equal(dev.Bytes(), want) {
			t.Fatalf("resume from snapshot %d diverges from golden", ord)
		}
	}
	if !sawParked {
		t.Fatal("no snapshot captured a thread parked at the barrier")
	}
	if !sawExited {
		t.Fatal("no snapshot captured an exited thread alongside live ones")
	}
}
