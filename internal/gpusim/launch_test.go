package gpusim

import (
	"testing"

	"repro/internal/ptx"
)

func TestExecuteValidation(t *testing.T) {
	dev := NewDevice(16)
	prog := ptx.MustAssemble("p", "exit")
	if _, err := Execute(dev, &Launch{Prog: prog, Grid: Dim3{X: -1}, Block: Dim3{X: 1}}); err == nil {
		t.Error("negative geometry accepted")
	}
	// An all-zero extent counts as a single thread (CUDA's implicit 1s).
	if res, err := Execute(dev, &Launch{Prog: prog}); err != nil || res.Trap != nil {
		t.Errorf("implicit-1 geometry rejected: %v %v", err, res)
	}
	if _, err := Execute(dev, &Launch{
		Prog: nil, Grid: Dim3{X: 1}, Block: Dim3{X: 1},
	}); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := Execute(dev, &Launch{
		Prog: prog, Grid: Dim3{X: 1}, Block: Dim3{X: 1},
		Params: make([]uint32, 64), SharedBytes: 32,
	}); err == nil {
		t.Error("params larger than shared memory accepted")
	}
}

// TestBarrierProducerConsumer: thread 0 writes shared memory, all threads
// read after a barrier. Without barrier correctness the consumers would read
// zero (threads run to the barrier in round-robin order).
func TestBarrierProducerConsumer(t *testing.T) {
	prog := ptx.MustAssemble("pc", `
		cvt.u32.u16 $r0, %tid.x
		set.eq.u32.u32 $p0/$o127, $r0, $r124
		@$p0.eq bra lwait
		bra lsync
		lwait: mov.u32 $r1, 0x000002A
		mov.u32 s[0x0100], $r1
		lsync: bar.sync 0x00000000
		ld.shared.u32 $r2, s[0x0100]
		shl.u32 $r3, $r0, 0x00000002
		st.global.u32 [$r3], $r2
		exit
	`)
	// Note: thread 0 takes lwait (writes 42), others skip to lsync.
	dev := NewDevice(64)
	res, err := Execute(dev, &Launch{
		Prog:  prog,
		Grid:  Dim3{X: 1, Y: 1, Z: 1},
		Block: Dim3{X: 8, Y: 1, Z: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	for i, w := range dev.ReadWords(0, 8) {
		if w != 42 {
			t.Fatalf("thread %d read %d, want 42", i, w)
		}
	}
}

// TestBarrierWithExitedThreads: threads that exit before the barrier must
// not block the others (GPGPU-Sim semantics: a barrier completes when all
// non-exited threads arrive).
func TestBarrierWithExitedThreads(t *testing.T) {
	prog := ptx.MustAssemble("be", `
		cvt.u32.u16 $r0, %tid.x
		set.lt.u32.u32 $p0/$o127, $r0, 4
		@$p0.eq bra lexit          // threads 4..7 exit immediately
		bar.sync 0x00000000
		shl.u32 $r3, $r0, 0x00000002
		mov.u32 $r1, 7
		st.global.u32 [$r3], $r1
		lexit: exit
	`)
	dev := NewDevice(64)
	res, err := Execute(dev, &Launch{
		Prog:  prog,
		Grid:  Dim3{X: 1, Y: 1, Z: 1},
		Block: Dim3{X: 8, Y: 1, Z: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	w := dev.ReadWords(0, 8)
	for i := 0; i < 4; i++ {
		if w[i] != 7 {
			t.Fatalf("surviving thread %d did not pass barrier: %v", i, w)
		}
	}
	for i := 4; i < 8; i++ {
		if w[i] != 0 {
			t.Fatalf("exited thread %d wrote: %v", i, w)
		}
	}
}

// TestBarrierDeadlock: threads parked on different barrier ids deadlock.
func TestBarrierDeadlock(t *testing.T) {
	prog := ptx.MustAssemble("dl", `
		cvt.u32.u16 $r0, %tid.x
		set.eq.u32.u32 $p0/$o127, $r0, $r124
		@$p0.ne bra lzero
		bar.sync 0x00000001
		bra lend
		lzero: bar.sync 0x00000000
		lend: exit
	`)
	dev := NewDevice(16)
	res, err := Execute(dev, &Launch{
		Prog:  prog,
		Grid:  Dim3{X: 1, Y: 1, Z: 1},
		Block: Dim3{X: 2, Y: 1, Z: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap == nil || res.Trap.Kind != TrapDeadlock {
		t.Fatalf("trap = %v, want deadlock", res.Trap)
	}
}

func TestCTAIsolation(t *testing.T) {
	// Each CTA sees its own shared memory: CTA 0 stores 1, CTA 1 stores 2;
	// both read back their own value.
	prog := ptx.MustAssemble("iso", `
		cvt.u32.u16 $r0, %ctaid.x
		add.u32 $r1, $r0, 0x00000001
		mov.u32 s[0x0100], $r1
		bar.sync 0x00000000
		ld.shared.u32 $r2, s[0x0100]
		shl.u32 $r3, $r0, 0x00000002
		st.global.u32 [$r3], $r2
		exit
	`)
	dev := NewDevice(16)
	res, err := Execute(dev, &Launch{
		Prog:  prog,
		Grid:  Dim3{X: 2, Y: 1, Z: 1},
		Block: Dim3{X: 1, Y: 1, Z: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	w := dev.ReadWords(0, 2)
	if w[0] != 1 || w[1] != 2 {
		t.Fatalf("shared memory leaked across CTAs: %v", w)
	}
}

func TestProfileTraceRecords(t *testing.T) {
	prog := ptx.MustAssemble("tr", `
		mov.u32 $r1, 1
		st.global.u32 [0x0000], $r1
		exit
	`)
	dev := NewDevice(16)
	tr := NewProfileTrace(1)
	res, err := Execute(dev, &Launch{
		Prog:   prog,
		Grid:   Dim3{X: 1, Y: 1, Z: 1},
		Block:  Dim3{X: 1, Y: 1, Z: 1},
		Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	if len(tr.PCs[0]) != 3 {
		t.Fatalf("trace length %d, want 3", len(tr.PCs[0]))
	}
	if !Wrote(tr.PCs[0][0]) || PC(tr.PCs[0][0]) != 0 {
		t.Fatalf("mov entry: %#x", tr.PCs[0][0])
	}
	if Wrote(tr.PCs[0][1]) {
		t.Fatalf("st flagged as write: %#x", tr.PCs[0][1])
	}
	if Wrote(tr.PCs[0][2]) {
		t.Fatalf("exit flagged as write")
	}
	if res.ThreadICnt[0] != 3 || res.TotalDyn != 3 {
		t.Fatalf("counts: %d/%d", res.ThreadICnt[0], res.TotalDyn)
	}
}

func TestInjectionKinds(t *testing.T) {
	src := `
		mov.u32 $r1, 0x000000F0
		st.global.u32 [0x0000], $r1
		exit
	`
	run := func(inj *Injection) (*Result, *Device) {
		prog := ptx.MustAssemble("ik", src)
		dev := NewDevice(16)
		res, err := Execute(dev, &Launch{
			Prog:   prog,
			Grid:   Dim3{X: 1, Y: 1, Z: 1},
			Block:  Dim3{X: 1, Y: 1, Z: 1},
			Inject: inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, dev
	}

	// Single-bit destination flip on the mov result.
	res, dev := run(&Injection{Thread: 0, DynInst: 0, Bit: 0})
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	if got := dev.ReadWords(0, 1)[0]; got != 0xF1 {
		t.Fatalf("dest-value flip: %#x", got)
	}

	// Double-bit flip.
	res, dev = run(&Injection{Thread: 0, DynInst: 0, Bit: 0, Kind: InjectDestDouble})
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	if got := dev.ReadWords(0, 1)[0]; got != 0xF3 {
		t.Fatalf("dest-double flip: %#x", got)
	}

	// Address flip on the store: bit 2 moves the write from 0x0 to 0x4.
	res, dev = run(&Injection{Thread: 0, DynInst: 1, Bit: 2, Kind: InjectMemAddr})
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	w := dev.ReadWords(0, 2)
	if w[0] != 0 || w[1] != 0xF0 {
		t.Fatalf("mem-addr flip: %v", w)
	}

	// Address flip to a misaligned address crashes.
	res, _ = run(&Injection{Thread: 0, DynInst: 1, Bit: 0, Kind: InjectMemAddr})
	if res.Trap == nil || res.Trap.Kind != TrapMemFault {
		t.Fatalf("misaligned injected store: %v", res.Trap)
	}

	// An armed address flip on a non-memory instruction is disarmed and
	// must not leak into later instructions.
	res, dev = run(&Injection{Thread: 0, DynInst: 0, Bit: 31, Kind: InjectMemAddr})
	if res.Trap != nil {
		t.Fatalf("leaked address flip: %v", res.Trap)
	}
	if got := dev.ReadWords(0, 1)[0]; got != 0xF0 {
		t.Fatalf("non-memory target altered output: %#x", got)
	}
}

func TestDeviceHelpers(t *testing.T) {
	dev := NewDevice(32)
	dev.WriteWords(4, []uint32{0x11223344, 0x55667788})
	got := dev.ReadWords(4, 2)
	if got[0] != 0x11223344 || got[1] != 0x55667788 {
		t.Fatalf("read back %v", got)
	}
	dev.Const = []byte{1, 2, 3, 4}
	cl := dev.Clone()
	cl.WriteBytes(4, []byte{0xFF})
	cl.Const[0] = 9
	if dev.Bytes()[4] == 0xFF || dev.Const[0] == 9 {
		t.Fatal("clone aliases original")
	}
	// And the original's writes must not leak into the clone.
	dev.WriteBytes(8, []byte{0xAB})
	if cl.Bytes()[8] == 0xAB {
		t.Fatal("original write visible through clone")
	}
}

func TestDim3(t *testing.T) {
	if (Dim3{X: 2, Y: 3, Z: 4}).Count() != 24 {
		t.Fatal("count")
	}
	if (Dim3{X: 5}).Count() != 5 {
		t.Fatal("zero dims should count as 1")
	}
	if (Dim3{X: 1, Y: 2, Z: 3}).String() != "(1,2,3)" {
		t.Fatal("string")
	}
}

func TestFallOffEndRetires(t *testing.T) {
	prog := ptx.MustAssemble("fo", "mov.u32 $r1, 1")
	dev := NewDevice(16)
	res, err := Execute(dev, &Launch{
		Prog:  prog,
		Grid:  Dim3{X: 1, Y: 1, Z: 1},
		Block: Dim3{X: 1, Y: 1, Z: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Fatalf("falling off the end trapped: %v", res.Trap)
	}
}

// TestAfterCTAFaultLive pins the fault-liveness contract of the AfterCTA
// hook (DESIGN.md §3.11): a persistent injection is reported live at every
// boundary before its thread's CTA completes and retired from that boundary
// on; transient and absent injections are never live (their effects at a
// boundary are plain memory state, fully covered by the snapshot image).
func TestAfterCTAFaultLive(t *testing.T) {
	prog := ptx.MustAssemble("live", `
		cvt.u32.u16 $r0, %tid.x
		exit
	`)
	cases := []struct {
		name string
		inj  *Injection
		want []bool
	}{
		// Persistent fault on a thread of CTA 2 (flat 4..5).
		{"persistent", &Injection{Thread: 4, DynInst: 0, Kind: InjectStuckPred},
			[]bool{true, true, false, false}},
		// A transient fault's liveness never extends past its own step.
		{"transient", &Injection{Thread: 4, DynInst: 0, Kind: InjectDestValue},
			[]bool{false, false, false, false}},
		{"none", nil, []bool{false, false, false, false}},
	}
	for _, tc := range cases {
		var got []bool
		dev := NewDevice(16)
		res, err := Execute(dev, &Launch{
			Prog:   prog,
			Grid:   Dim3{X: 4, Y: 1, Z: 1},
			Block:  Dim3{X: 2, Y: 1, Z: 1},
			Inject: tc.inj,
			AfterCTA: func(cta int, faultLive bool) bool {
				got = append(got, faultLive)
				return false
			},
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Trap != nil {
			t.Fatalf("%s: trap %v", tc.name, res.Trap)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("%s: %d boundaries, want %d", tc.name, len(got), len(tc.want))
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%s: faultLive at boundary %d = %v, want %v (%v)", tc.name, i, got[i], tc.want[i], got)
			}
		}
	}
}
