package gpusim

// The compiled execution plan: each static instruction of a program is
// pre-decoded once, at kernel load, into a specialized Go closure with its
// guard test, operand resolvers, ALU variant (type/wideness/saturation),
// branch target and destination routing all chosen at decode time. The
// dispatch loops (runCTACompiled, runCTAWarpedCompiled) then execute
// closures directly instead of re-interpreting the instruction encoding on
// every dynamic step, and batch maximal straight-line runs of sequential
// instructions (isa.Program.StraightLen) without re-entering the scheduler.
//
// The plan is an optimization, never a semantic layer: every closure
// mirrors one path through exec.step/apply/compute line for line, and the
// careful dispatcher stepCompiled preserves every observable of the
// reference step — dynCount accounting, watchdog traps, injection
// arm/disarm points, tracer callbacks, predicate flags, and barrier
// park/release behavior. Equivalence argument: DESIGN.md §3.8. The
// differential fuzz target (fuzz_test.go) and the exhaustive campaign
// tests in internal/fault pin the equivalence; Launch.Interpret keeps the
// reference interpreter reachable for those comparisons.

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/isa"
)

// seqFunc executes the body of one sequential (fall-through) instruction,
// guard already passed. The dispatcher advances th.pc on nil trap.
type seqFunc func(e *exec, th *threadState, cta *ctaState) *Trap

// ctrlFunc executes the body of one control instruction (branch, barrier,
// exit), returning the next PC and whether the thread parked.
type ctrlFunc func(e *exec, th *threadState, cta *ctaState) (nextPC int, blocked bool, trap *Trap)

// guardFunc evaluates a compiled predicate guard: whether the instruction
// executes, or a trap for an invalid condition code.
type guardFunc func(th *threadState) (bool, *Trap)

// srcFunc resolves one source operand; memory sources may trap.
type srcFunc func(e *exec, th *threadState, cta *ctaState) (uint32, *Trap)

// regFunc resolves a register/immediate/special source, which cannot trap.
type regFunc func(e *exec, th *threadState) uint32

// destFunc routes a value into a register destination.
type destFunc func(th *threadState, v uint32)

// writeFunc routes a computed value and its predicate flags to the
// instruction's register destination(s), mirroring exec.writeDest.
type writeFunc func(th *threadState, v uint32, flags uint8)

// compiledOp is the decoded form of one static instruction. Exactly one of
// seq and ctrl is non-nil, matching isa.Opcode.Sequential.
type compiledOp struct {
	seq  seqFunc
	ctrl ctrlFunc
	// guard is nil for unguarded instructions.
	guard guardFunc
	// destReg/hasDest precompute Instruction.DestReg for the injection
	// writeback and tracer wrote-bit.
	destReg isa.Reg
	hasDest bool
	// straight caches Program.StraightLen at this PC.
	straight int32
}

// execPlan is the compiled form of one program, shared read-only.
type execPlan struct {
	prog *isa.Program
	ops  []compiledOp
}

// planCache shares compiled plans across launches of the same program.
// Keyed by program identity: programs are immutable once they reach the
// simulator (Validate freezes them), and every consumer of a kernel holds
// the same *isa.Program. Bounded so a long-running campaign service over
// ever-fresh programs cannot grow it without limit; on overflow the whole
// map is dropped (compilation is cheap relative to any launch).
var planCache = struct {
	sync.Mutex
	m map[*isa.Program]*execPlan
}{m: make(map[*isa.Program]*execPlan)}

const planCacheCap = 256

// planFor returns the compiled plan of p, building it on first use.
func planFor(p *isa.Program) *execPlan {
	planCache.Lock()
	pl := planCache.m[p]
	planCache.Unlock()
	if pl != nil {
		return pl
	}
	pl = compileProgram(p)
	planCache.Lock()
	if prev := planCache.m[p]; prev != nil {
		pl = prev
	} else {
		if len(planCache.m) >= planCacheCap {
			planCache.m = make(map[*isa.Program]*execPlan)
		}
		planCache.m[p] = pl
	}
	planCache.Unlock()
	return pl
}

// compileProgram decodes every instruction of p into its closure form.
func compileProgram(p *isa.Program) *execPlan {
	pl := &execPlan{prog: p, ops: make([]compiledOp, len(p.Instrs))}
	for pc := range p.Instrs {
		compileInstr(p, pc, &pl.ops[pc])
		pl.ops[pc].straight = int32(p.StraightLen(pc))
	}
	return pl
}

// condTest returns the flag test of a condition code, mirroring evalCond
// case for case; nil when the code has no defined semantics.
func condTest(c isa.CmpOp) func(flags uint8) bool {
	switch c {
	case isa.CmpEq:
		return func(f uint8) bool { return f&isa.FlagZero != 0 }
	case isa.CmpNe:
		return func(f uint8) bool { return f&isa.FlagZero == 0 }
	case isa.CmpLt:
		return func(f uint8) bool { return f&isa.FlagSign != 0 }
	case isa.CmpLe:
		return func(f uint8) bool { return f&(isa.FlagSign|isa.FlagZero) != 0 }
	case isa.CmpGt:
		return func(f uint8) bool { return f&(isa.FlagSign|isa.FlagZero) == 0 }
	case isa.CmpGe:
		return func(f uint8) bool { return f&isa.FlagSign == 0 }
	case isa.CmpLo:
		return func(f uint8) bool { return f&(isa.FlagCarry|isa.FlagZero) == 0 }
	case isa.CmpLs:
		return func(f uint8) bool { return f&isa.FlagCarry == 0 || f&isa.FlagZero != 0 }
	case isa.CmpHi:
		return func(f uint8) bool { return f&isa.FlagCarry != 0 && f&isa.FlagZero == 0 }
	case isa.CmpHs:
		return func(f uint8) bool { return f&isa.FlagCarry != 0 }
	}
	return nil
}

// compileGuard builds the guard evaluator; nil for unguarded instructions.
// An invalid condition code compiles to a trap closure producing the same
// TrapInvalid the reference step raises.
func compileGuard(g isa.Guard) guardFunc {
	if !g.Active() {
		return nil
	}
	test := condTest(g.Cond)
	if test == nil {
		c := g.Cond
		return func(th *threadState) (bool, *Trap) {
			return false, invalidCondTrap(th, c)
		}
	}
	idx := g.Reg.Index
	if g.Not {
		return func(th *threadState) (bool, *Trap) { return !test(th.preds[idx]), nil }
	}
	return func(th *threadState) (bool, *Trap) { return test(th.preds[idx]), nil }
}

// cmpTest returns the set/setp comparison under source type t, mirroring
// compare case for case (including the raw-bit fallthrough of lo/ls/hi/hs
// on signed types); nil when the selector is invalid for the type.
func cmpTest(c isa.CmpOp, t isa.DataType) func(a, b uint32) bool {
	if t.Float() {
		switch c {
		case isa.CmpEq:
			return func(a, b uint32) bool { return f32(a) == f32(b) }
		case isa.CmpNe:
			return func(a, b uint32) bool { return f32(a) != f32(b) }
		case isa.CmpLt:
			return func(a, b uint32) bool { return f32(a) < f32(b) }
		case isa.CmpLe:
			return func(a, b uint32) bool { return f32(a) <= f32(b) }
		case isa.CmpGt:
			return func(a, b uint32) bool { return f32(a) > f32(b) }
		case isa.CmpGe:
			return func(a, b uint32) bool { return f32(a) >= f32(b) }
		}
		return nil
	}
	if t.Signed() {
		switch c {
		case isa.CmpEq:
			return func(a, b uint32) bool { return int32(a) == int32(b) }
		case isa.CmpNe:
			return func(a, b uint32) bool { return int32(a) != int32(b) }
		case isa.CmpLt:
			return func(a, b uint32) bool { return int32(a) < int32(b) }
		case isa.CmpLe:
			return func(a, b uint32) bool { return int32(a) <= int32(b) }
		case isa.CmpGt:
			return func(a, b uint32) bool { return int32(a) > int32(b) }
		case isa.CmpGe:
			return func(a, b uint32) bool { return int32(a) >= int32(b) }
		}
		// lo/ls/hi/hs on signed types use the raw-bit forms below.
	}
	switch c {
	case isa.CmpEq:
		return func(a, b uint32) bool { return a == b }
	case isa.CmpNe:
		return func(a, b uint32) bool { return a != b }
	case isa.CmpLt, isa.CmpLo:
		return func(a, b uint32) bool { return a < b }
	case isa.CmpLe, isa.CmpLs:
		return func(a, b uint32) bool { return a <= b }
	case isa.CmpGt, isa.CmpHi:
		return func(a, b uint32) bool { return a > b }
	case isa.CmpGe, isa.CmpHs:
		return func(a, b uint32) bool { return a >= b }
	}
	return nil
}

// compileRegRead builds the raw reader of a register, mirroring
// exec.readReg (zero/sink read 0, unknown specials and classes read 0).
func compileRegRead(r isa.Reg) regFunc {
	switch r.Class {
	case isa.RegGPR:
		if r.Index == isa.ZeroReg || r.Index == isa.SinkReg {
			return func(e *exec, th *threadState) uint32 { return 0 }
		}
		idx := r.Index
		return func(e *exec, th *threadState) uint32 { return th.regs[idx] }
	case isa.RegPred:
		idx := r.Index
		return func(e *exec, th *threadState) uint32 { return uint32(th.preds[idx]) }
	case isa.RegOfs:
		idx := r.Index
		return func(e *exec, th *threadState) uint32 { return th.ofs[idx] }
	case isa.RegSpecial:
		switch r.Index {
		case isa.SpecTidX:
			return func(e *exec, th *threadState) uint32 { return uint32(th.tid.X) }
		case isa.SpecTidY:
			return func(e *exec, th *threadState) uint32 { return uint32(th.tid.Y) }
		case isa.SpecTidZ:
			return func(e *exec, th *threadState) uint32 { return uint32(th.tid.Z) }
		case isa.SpecCtaidX:
			return func(e *exec, th *threadState) uint32 { return uint32(th.ctaid.X) }
		case isa.SpecCtaidY:
			return func(e *exec, th *threadState) uint32 { return uint32(th.ctaid.Y) }
		case isa.SpecCtaidZ:
			return func(e *exec, th *threadState) uint32 { return uint32(th.ctaid.Z) }
		case isa.SpecNTidX:
			return func(e *exec, th *threadState) uint32 { return uint32(max(e.block.X, 1)) }
		case isa.SpecNTidY:
			return func(e *exec, th *threadState) uint32 { return uint32(max(e.block.Y, 1)) }
		case isa.SpecNTidZ:
			return func(e *exec, th *threadState) uint32 { return uint32(max(e.block.Z, 1)) }
		case isa.SpecNCtaidX:
			return func(e *exec, th *threadState) uint32 { return uint32(max(e.grid.X, 1)) }
		case isa.SpecNCtaidY:
			return func(e *exec, th *threadState) uint32 { return uint32(max(e.grid.Y, 1)) }
		case isa.SpecNCtaidZ:
			return func(e *exec, th *threadState) uint32 { return uint32(max(e.grid.Z, 1)) }
		}
	}
	return func(e *exec, th *threadState) uint32 { return 0 }
}

// compileRegSrc builds the resolver of a non-trapping source operand
// (register or immediate) under source type t, folding half-selection,
// sign extension and negation in at decode time; it mirrors
// exec.sourceValue's OpdReg/OpdImm arms. nil for memory or malformed
// operands, which need the generic trapping path.
func compileRegSrc(o isa.Operand, t isa.DataType) regFunc {
	switch o.Kind {
	case isa.OpdImm:
		v := o.Imm
		return func(e *exec, th *threadState) uint32 { return v }
	case isa.OpdReg:
		f := compileRegRead(o.Reg)
		signed := t.Signed()
		switch o.Half {
		case isa.HalfLo:
			base := f
			if signed {
				f = func(e *exec, th *threadState) uint32 { return uint32(int32(int16(base(e, th)))) }
			} else {
				f = func(e *exec, th *threadState) uint32 { return base(e, th) & 0xFFFF }
			}
		case isa.HalfHi:
			base := f
			if signed {
				f = func(e *exec, th *threadState) uint32 { return uint32(int32(int16(base(e, th) >> 16))) }
			} else {
				f = func(e *exec, th *threadState) uint32 { return base(e, th) >> 16 }
			}
		}
		if o.Neg {
			base := f
			if t.Float() {
				f = func(e *exec, th *threadState) uint32 { return base(e, th) ^ 0x80000000 }
			} else {
				f = func(e *exec, th *threadState) uint32 { return -base(e, th) }
			}
		}
		return f
	}
	return nil
}

// compileSrc builds the resolver of source operand i, mirroring exec.srcOp:
// a missing operand compiles to its trap, memory operands route through
// exec.load (bounds/alignment traps, InjectMemAddr consumption).
func compileSrc(in *isa.Instruction, i int) srcFunc {
	if i >= len(in.Srcs) {
		op, idx := in.Op, i
		return func(e *exec, th *threadState, cta *ctaState) (uint32, *Trap) {
			return 0, &Trap{Kind: TrapInvalid, Thread: th.flat, PC: th.pc,
				Msg: fmt.Sprintf("%s: missing operand %d", op, idx)}
		}
	}
	o := in.Srcs[i]
	if o.Kind == isa.OpdMem {
		t := in.SType
		return func(e *exec, th *threadState, cta *ctaState) (uint32, *Trap) {
			return e.load(th, cta, &o, t)
		}
	}
	if f := compileRegSrc(o, in.SType); f != nil {
		return func(e *exec, th *threadState, cta *ctaState) (uint32, *Trap) {
			return f(e, th), nil
		}
	}
	return func(e *exec, th *threadState, cta *ctaState) (uint32, *Trap) {
		return 0, &Trap{Kind: TrapInvalid, Thread: th.flat, PC: th.pc, Msg: "empty operand"}
	}
}

// fusedSrc returns the non-trapping resolver of source i, nil when the
// operand is missing, memory, or malformed (those need the generic path).
func fusedSrc(in *isa.Instruction, i int) regFunc {
	if i >= len(in.Srcs) {
		return nil
	}
	return compileRegSrc(in.Srcs[i], in.SType)
}

// compileRegWrite builds the raw writer of a register, mirroring
// exec.writeReg (zero/sink and unknown classes discard, predicates mask).
func compileRegWrite(r isa.Reg) destFunc {
	switch r.Class {
	case isa.RegGPR:
		if r.Index == isa.ZeroReg || r.Index == isa.SinkReg {
			return func(th *threadState, v uint32) {}
		}
		idx := r.Index
		return func(th *threadState, v uint32) { th.regs[idx] = v }
	case isa.RegPred:
		idx := r.Index
		return func(th *threadState, v uint32) { th.preds[idx] = uint8(v) & 0xF }
	case isa.RegOfs:
		idx := r.Index
		return func(th *threadState, v uint32) { th.ofs[idx] = v }
	}
	return func(th *threadState, v uint32) {}
}

// compileWriteDest compiles exec.writeDest's routing for in. needFlags
// reports whether the routing consumes the predicate flags at all — when
// false the dispatcher skips computing valueFlags entirely, which the
// reference path cannot (a plain GPR destination never reads them).
func compileWriteDest(in *isa.Instruction) (w writeFunc, needFlags bool) {
	if in.DstPred.Valid() {
		wp := compileRegWrite(in.DstPred)
		if in.Dst.Kind == isa.OpdReg {
			wv := compileRegWrite(in.Dst.Reg)
			return func(th *threadState, v uint32, flags uint8) {
				wp(th, uint32(flags))
				wv(th, v)
			}, true
		}
		return func(th *threadState, v uint32, flags uint8) { wp(th, uint32(flags)) }, true
	}
	if in.Dst.Kind == isa.OpdReg {
		wv := compileRegWrite(in.Dst.Reg)
		if in.Dst.Reg.Class == isa.RegPred {
			return func(th *threadState, v uint32, flags uint8) { wv(th, uint32(flags)) }, true
		}
		return func(th *threadState, v uint32, flags uint8) { wv(th, v) }, false
	}
	return func(th *threadState, v uint32, flags uint8) {}, false
}

// plainGPRDest reports the index of a plain general-purpose destination
// register: no dual predicate, not the zero/sink register, not memory.
// These destinations never consume flags, enabling the fused fast tier.
func plainGPRDest(in *isa.Instruction) (int, bool) {
	if in.DstPred.Valid() || in.Dst.Kind != isa.OpdReg {
		return 0, false
	}
	r := in.Dst.Reg
	if r.Class != isa.RegGPR || r.Index == isa.ZeroReg || r.Index == isa.SinkReg {
		return 0, false
	}
	return int(r.Index), true
}

// satClamp applies ".sat" f32 saturation, mirroring exec.apply (NaN passes
// through unchanged: both comparisons are false).
func satClamp(v uint32) uint32 {
	f := f32(v)
	if f < 0 {
		return f32bits(0)
	}
	if f > 1 {
		return f32bits(1)
	}
	return v
}

// aluUnary returns the value function of a unary ALU/SFU opcode with the
// instruction's type variant selected, mirroring exec.compute's unary
// block; nil when the opcode is not unary.
func aluUnary(in *isa.Instruction) func(a uint32) uint32 {
	switch in.Op {
	case isa.OpNot:
		return func(a uint32) uint32 { return ^a }
	case isa.OpCnot:
		return func(a uint32) uint32 {
			if a == 0 {
				return 1
			}
			return 0
		}
	case isa.OpAbs:
		if in.DType.Float() {
			return func(a uint32) uint32 { return a &^ 0x80000000 }
		}
		return func(a uint32) uint32 {
			if int32(a) < 0 {
				return -a
			}
			return a
		}
	case isa.OpNeg:
		if in.DType.Float() {
			return func(a uint32) uint32 { return a ^ 0x80000000 }
		}
		return func(a uint32) uint32 { return -a }
	case isa.OpCvt:
		dt, st := in.DType, in.SType
		return func(a uint32) uint32 { return cvt(a, dt, st) }
	case isa.OpRcp:
		return func(a uint32) uint32 { return f32bits(1 / f32(a)) }
	case isa.OpSqrt:
		return func(a uint32) uint32 { return f32bits(float32(math.Sqrt(float64(f32(a))))) }
	case isa.OpRsqrt:
		return func(a uint32) uint32 { return f32bits(float32(1 / math.Sqrt(float64(f32(a))))) }
	case isa.OpSin:
		return func(a uint32) uint32 { return f32bits(float32(math.Sin(float64(f32(a))))) }
	case isa.OpCos:
		return func(a uint32) uint32 { return f32bits(float32(math.Cos(float64(f32(a))))) }
	case isa.OpEx2:
		return func(a uint32) uint32 { return f32bits(float32(math.Exp2(float64(f32(a))))) }
	case isa.OpLg2:
		return func(a uint32) uint32 { return f32bits(float32(math.Log2(float64(f32(a))))) }
	}
	return nil
}

// aluBinaryVal returns the value function of a binary ALU opcode with the
// instruction's type/wideness variant selected, mirroring exec.compute's
// binary block value for value; nil when the opcode is not binary. Carry
// and overflow (integer add/sub only) come from aluBinaryCO.
func aluBinaryVal(in *isa.Instruction) func(a, b uint32) uint32 {
	ft := in.DType.Float() || in.SType.Float()
	switch in.Op {
	case isa.OpAdd:
		if ft {
			return func(a, b uint32) uint32 { return f32bits(f32(a) + f32(b)) }
		}
		return func(a, b uint32) uint32 { return a + b }
	case isa.OpSub:
		if ft {
			return func(a, b uint32) uint32 { return f32bits(f32(a) - f32(b)) }
		}
		return func(a, b uint32) uint32 { return a - b }
	case isa.OpMul:
		if ft {
			return func(a, b uint32) uint32 { return f32bits(f32(a) * f32(b)) }
		}
		if in.Wide {
			st := in.SType
			return func(a, b uint32) uint32 { return wideMul(a, b, st) }
		}
		return func(a, b uint32) uint32 { return a * b }
	case isa.OpDiv:
		if ft {
			return func(a, b uint32) uint32 { return f32bits(f32(a) / f32(b)) }
		}
		if in.SType.Signed() {
			return func(a, b uint32) uint32 {
				if b == 0 {
					return 0xFFFFFFFF
				}
				if int32(a) == math.MinInt32 && int32(b) == -1 {
					return a
				}
				return uint32(int32(a) / int32(b))
			}
		}
		return func(a, b uint32) uint32 {
			if b == 0 {
				return 0xFFFFFFFF
			}
			return a / b
		}
	case isa.OpRem:
		// rem has no float form in exec.compute; mirror that exactly.
		if in.SType.Signed() {
			return func(a, b uint32) uint32 {
				if b == 0 {
					return a
				}
				if int32(a) == math.MinInt32 && int32(b) == -1 {
					return 0
				}
				return uint32(int32(a) % int32(b))
			}
		}
		return func(a, b uint32) uint32 {
			if b == 0 {
				return a
			}
			return a % b
		}
	case isa.OpMin:
		if ft {
			return func(a, b uint32) uint32 {
				return f32bits(float32(math.Min(float64(f32(a)), float64(f32(b)))))
			}
		}
		if in.SType.Signed() {
			return func(a, b uint32) uint32 {
				if int32(a) < int32(b) {
					return a
				}
				return b
			}
		}
		return func(a, b uint32) uint32 { return min(a, b) }
	case isa.OpMax:
		if ft {
			return func(a, b uint32) uint32 {
				return f32bits(float32(math.Max(float64(f32(a)), float64(f32(b)))))
			}
		}
		if in.SType.Signed() {
			return func(a, b uint32) uint32 {
				if int32(a) > int32(b) {
					return a
				}
				return b
			}
		}
		return func(a, b uint32) uint32 { return max(a, b) }
	case isa.OpAnd:
		return func(a, b uint32) uint32 { return a & b }
	case isa.OpOr:
		return func(a, b uint32) uint32 { return a | b }
	case isa.OpXor:
		return func(a, b uint32) uint32 { return a ^ b }
	case isa.OpShl:
		return func(a, b uint32) uint32 { return a << (b & 31) }
	case isa.OpShr:
		if in.SType.Signed() || in.DType.Signed() {
			return func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) }
		}
		return func(a, b uint32) uint32 { return a >> (b & 31) }
	}
	return nil
}

// aluBinaryCO returns the carry/overflow function of integer add/sub —
// the only opcodes whose flags exec.compute derives from the operands;
// nil everywhere else (carry and overflow stay false).
func aluBinaryCO(in *isa.Instruction) func(a, b uint32) (carry, overflow bool) {
	if in.DType.Float() || in.SType.Float() {
		return nil
	}
	switch in.Op {
	case isa.OpAdd:
		return func(a, b uint32) (bool, bool) {
			s := a + b
			return s < a, (a^b)&0x80000000 == 0 && (a^s)&0x80000000 != 0
		}
	case isa.OpSub:
		return func(a, b uint32) (bool, bool) {
			s := a - b
			return a >= b, (a^b)&0x80000000 != 0 && (a^s)&0x80000000 != 0
		}
	}
	return nil
}

// aluTernaryVal returns the value function of a ternary ALU opcode,
// mirroring exec.compute; nil when the opcode is not ternary.
func aluTernaryVal(in *isa.Instruction) func(a, b, c uint32) uint32 {
	switch in.Op {
	case isa.OpMad:
		if in.DType.Float() || in.SType.Float() {
			return func(a, b, c uint32) uint32 { return f32bits(f32(a)*f32(b) + f32(c)) }
		}
		if in.Wide {
			st := in.SType
			return func(a, b, c uint32) uint32 { return wideMul(a, b, st) + c }
		}
		return func(a, b, c uint32) uint32 { return a*b + c }
	case isa.OpSad:
		if in.SType.Signed() {
			return func(a, b, c uint32) uint32 {
				sa, sb := int32(a), int32(b)
				if sa > sb {
					return c + uint32(sa-sb)
				}
				return c + uint32(sb-sa)
			}
		}
		return func(a, b, c uint32) uint32 {
			if a > b {
				return c + (a - b)
			}
			return c + (b - a)
		}
	case isa.OpSlct:
		return func(a, b, c uint32) uint32 {
			if int32(c) >= 0 {
				return a
			}
			return b
		}
	}
	return nil
}

// compileInstr decodes the instruction at static PC pc into op. Each arm
// mirrors the corresponding case of exec.apply; source operands are
// evaluated in the same order as the reference (0, 1, then 2), so trap
// precedence is preserved.
func compileInstr(p *isa.Program, pc int, op *compiledOp) {
	in := &p.Instrs[pc]
	op.guard = compileGuard(in.Guard)
	op.destReg, _, op.hasDest = in.DestReg()

	switch in.Op {
	case isa.OpNop, isa.OpSsy:
		op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap { return nil }
		return

	case isa.OpExit, isa.OpRet, isa.OpRetp:
		op.ctrl = func(e *exec, th *threadState, cta *ctaState) (int, bool, *Trap) {
			th.done = true
			return th.pc, false, nil
		}
		return

	case isa.OpBra:
		if target, ok := p.BranchPC(pc); ok {
			t := target
			op.ctrl = func(e *exec, th *threadState, cta *ctaState) (int, bool, *Trap) {
				return t, false, nil
			}
		} else {
			op.ctrl = func(e *exec, th *threadState, cta *ctaState) (int, bool, *Trap) {
				return 0, false, &Trap{Kind: TrapInvalid, Thread: th.flat, PC: th.pc,
					Msg: "unresolved branch target"}
			}
		}
		return

	case isa.OpBar:
		// Validate guarantees exactly one immediate operand; indexing Srcs[0]
		// here fails the same way the reference does on unvalidated programs.
		op.ctrl = func(e *exec, th *threadState, cta *ctaState) (int, bool, *Trap) {
			th.waiting = true
			th.barID = in.Srcs[0].Imm
			return th.pc + 1, true, nil
		}
		return

	case isa.OpSt:
		src := compileSrc(in, 0)
		dst := in.Dst
		dt := in.DType
		op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap {
			v, tr := src(e, th, cta)
			if tr != nil {
				return tr
			}
			return e.store(th, cta, &dst, dt, v)
		}
		return

	case isa.OpMov, isa.OpLd:
		src := compileSrc(in, 0)
		if in.Dst.Kind == isa.OpdMem {
			dst := in.Dst
			dt := in.DType
			op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap {
				v, tr := src(e, th, cta)
				if tr != nil {
					return tr
				}
				return e.store(th, cta, &dst, dt, v)
			}
			return
		}
		if d, ok := plainGPRDest(in); ok {
			if rf := fusedSrc(in, 0); rf != nil {
				// Fused tier: register/immediate move into a plain GPR.
				op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap {
					th.regs[d] = rf(e, th)
					return nil
				}
				return
			}
			// Load into a plain GPR: no flags consumed.
			op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap {
				v, tr := src(e, th, cta)
				if tr != nil {
					return tr
				}
				th.regs[d] = v
				return nil
			}
			return
		}
		wd, needFlags := compileWriteDest(in)
		op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap {
			v, tr := src(e, th, cta)
			if tr != nil {
				return tr
			}
			var fl uint8
			if needFlags {
				fl = valueFlags(v, false, false)
			}
			wd(th, v, fl)
			return nil
		}
		return

	case isa.OpSet, isa.OpSetp:
		sa := compileSrc(in, 0)
		sb := compileSrc(in, 1)
		test := cmpTest(in.Cmp, in.SType)
		if test == nil {
			c := in.Cmp
			op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap {
				if _, tr := sa(e, th, cta); tr != nil {
					return tr
				}
				if _, tr := sb(e, th, cta); tr != nil {
					return tr
				}
				return invalidCmpTrap(th, c)
			}
			return
		}
		vtrue := uint32(0xFFFFFFFF)
		if in.DType.Float() {
			vtrue = f32bits(1.0)
		}
		wd, needFlags := compileWriteDest(in)
		op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap {
			a, tr := sa(e, th, cta)
			if tr != nil {
				return tr
			}
			b, tr := sb(e, th, cta)
			if tr != nil {
				return tr
			}
			var v uint32
			if test(a, b) {
				v = vtrue
			}
			var fl uint8
			if needFlags {
				fl = valueFlags(v, false, false)
			}
			wd(th, v, fl)
			return nil
		}
		return

	case isa.OpSelp:
		sa := compileSrc(in, 0)
		sb := compileSrc(in, 1)
		// The reference evaluates both value sources before validating the
		// selector; the trap closures preserve that order.
		evalBoth := func(e *exec, th *threadState, cta *ctaState) *Trap {
			if _, tr := sa(e, th, cta); tr != nil {
				return tr
			}
			_, tr := sb(e, th, cta)
			return tr
		}
		if len(in.Srcs) < 3 || !in.Srcs[2].IsReg(isa.RegPred) {
			op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap {
				if tr := evalBoth(e, th, cta); tr != nil {
					return tr
				}
				return &Trap{Kind: TrapInvalid, Thread: th.flat, PC: th.pc,
					Msg: "selp needs a predicate selector"}
			}
			return
		}
		cond := in.Cmp
		if cond == isa.CmpNone {
			cond = isa.CmpNe
		}
		test := condTest(cond)
		if test == nil {
			c := cond
			op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap {
				if tr := evalBoth(e, th, cta); tr != nil {
					return tr
				}
				return invalidCondTrap(th, c)
			}
			return
		}
		pidx := in.Srcs[2].Reg.Index
		wd, needFlags := compileWriteDest(in)
		op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap {
			a, tr := sa(e, th, cta)
			if tr != nil {
				return tr
			}
			b, tr := sb(e, th, cta)
			if tr != nil {
				return tr
			}
			v := b
			if test(th.preds[pidx]) {
				v = a
			}
			var fl uint8
			if needFlags {
				fl = valueFlags(v, false, false)
			}
			wd(th, v, fl)
			return nil
		}
		return
	}

	// Remaining opcodes are the ALU/SFU compute path.
	compileCompute(in, op)
}

// compileCompute decodes an ALU/SFU instruction, mirroring exec.apply's
// compute tail: compute, then .sat clamp, then memory store or writeDest
// with flags. The fused tier handles the dominant shape — non-trapping
// sources into a plain GPR destination — with a single closure that skips
// flag derivation altogether.
func compileCompute(in *isa.Instruction, op *compiledOp) {
	sat := in.Sat && in.DType == isa.TypeF32
	memDst := in.Dst.Kind == isa.OpdMem
	dst := in.Dst
	dt := in.DType

	if u := aluUnary(in); u != nil {
		if sat {
			inner := u
			u = func(a uint32) uint32 { return satClamp(inner(a)) }
		}
		if d, ok := plainGPRDest(in); ok && !memDst {
			if ra := fusedSrc(in, 0); ra != nil {
				op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap {
					th.regs[d] = u(ra(e, th))
					return nil
				}
				return
			}
		}
		sa := compileSrc(in, 0)
		if memDst {
			op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap {
				a, tr := sa(e, th, cta)
				if tr != nil {
					return tr
				}
				return e.store(th, cta, &dst, dt, u(a))
			}
			return
		}
		wd, needFlags := compileWriteDest(in)
		op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap {
			a, tr := sa(e, th, cta)
			if tr != nil {
				return tr
			}
			v := u(a)
			var fl uint8
			if needFlags {
				fl = valueFlags(v, false, false)
			}
			wd(th, v, fl)
			return nil
		}
		return
	}

	if bv := aluBinaryVal(in); bv != nil {
		raw := bv
		if sat {
			bv = func(a, b uint32) uint32 { return satClamp(raw(a, b)) }
		}
		if d, ok := plainGPRDest(in); ok && !memDst {
			if ra, rb := fusedSrc(in, 0), fusedSrc(in, 1); ra != nil && rb != nil {
				op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap {
					th.regs[d] = bv(ra(e, th), rb(e, th))
					return nil
				}
				return
			}
		}
		sa := compileSrc(in, 0)
		sb := compileSrc(in, 1)
		if memDst {
			op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap {
				a, tr := sa(e, th, cta)
				if tr != nil {
					return tr
				}
				b, tr := sb(e, th, cta)
				if tr != nil {
					return tr
				}
				return e.store(th, cta, &dst, dt, bv(a, b))
			}
			return
		}
		wd, needFlags := compileWriteDest(in)
		co := aluBinaryCO(in)
		op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap {
			a, tr := sa(e, th, cta)
			if tr != nil {
				return tr
			}
			b, tr := sb(e, th, cta)
			if tr != nil {
				return tr
			}
			v := bv(a, b)
			var fl uint8
			if needFlags {
				var carry, overflow bool
				if co != nil {
					carry, overflow = co(a, b)
				}
				fl = valueFlags(v, carry, overflow)
			}
			wd(th, v, fl)
			return nil
		}
		return
	}

	if tv := aluTernaryVal(in); tv != nil {
		raw := tv
		if sat {
			tv = func(a, b, c uint32) uint32 { return satClamp(raw(a, b, c)) }
		}
		if d, ok := plainGPRDest(in); ok && !memDst {
			ra, rb, rc := fusedSrc(in, 0), fusedSrc(in, 1), fusedSrc(in, 2)
			if ra != nil && rb != nil && rc != nil {
				op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap {
					th.regs[d] = tv(ra(e, th), rb(e, th), rc(e, th))
					return nil
				}
				return
			}
		}
		sa := compileSrc(in, 0)
		sb := compileSrc(in, 1)
		sc := compileSrc(in, 2)
		wd, needFlags := compileWriteDest(in)
		op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap {
			a, tr := sa(e, th, cta)
			if tr != nil {
				return tr
			}
			b, tr := sb(e, th, cta)
			if tr != nil {
				return tr
			}
			c, tr := sc(e, th, cta)
			if tr != nil {
				return tr
			}
			v := tv(a, b, c)
			if memDst {
				return e.store(th, cta, &dst, dt, v)
			}
			var fl uint8
			if needFlags {
				fl = valueFlags(v, false, false)
			}
			wd(th, v, fl)
			return nil
		}
		return
	}

	// Unknown opcode: the reference evaluates sources 0 and 1, then traps.
	sa := compileSrc(in, 0)
	sb := compileSrc(in, 1)
	unknown := in.Op
	op.seq = func(e *exec, th *threadState, cta *ctaState) *Trap {
		if _, tr := sa(e, th, cta); tr != nil {
			return tr
		}
		if _, tr := sb(e, th, cta); tr != nil {
			return tr
		}
		return &Trap{Kind: TrapInvalid, Thread: th.flat, PC: th.pc,
			Msg: fmt.Sprintf("unimplemented opcode %s", unknown)}
	}
}
