package gpusim

import (
	"bytes"
	"testing"
)

// TestDeviceCloneIsolation: writes on either side of a Clone must not be
// visible on the other, across several pages and repeated clones.
func TestDeviceCloneIsolation(t *testing.T) {
	dev := NewDevice(3*PageSize + 100)
	for p := 0; p < 3; p++ {
		dev.WriteBytes(p*PageSize+5, []byte{byte(p + 1)})
	}
	pristine := dev.Bytes()

	cl := dev.Clone()
	cl.WriteBytes(0, []byte{0xAA})
	cl.WriteBytes(2*PageSize+7, []byte{0xBB})
	if !bytes.Equal(dev.Bytes(), pristine) {
		t.Fatal("clone writes leaked into source")
	}

	// The source itself went copy-on-write at Clone: its next store must not
	// show through the clone (or through a second clone taken earlier).
	cl2 := dev.Clone()
	dev.WriteBytes(PageSize+1, []byte{0xCC})
	if cl.Bytes()[PageSize+1] == 0xCC || cl2.Bytes()[PageSize+1] == 0xCC {
		t.Fatal("source write visible through clones")
	}
	if cl2.Bytes()[0] == 0xAA {
		t.Fatal("sibling clone write visible")
	}
}

// TestDeviceResetFromRestoresPristine: a pooled device must be bit-identical
// to the pristine image after ResetFrom, across repeated dirty/reset cycles
// touching different page sets.
func TestDeviceResetFromRestoresPristine(t *testing.T) {
	pristine := NewDevice(4 * PageSize)
	for p := 0; p < 4; p++ {
		pristine.WriteBytes(p*PageSize, []byte{byte(0x10 + p)})
	}
	want := pristine.Bytes()

	dev := pristine.Clone()
	cycles := [][]int{{0}, {1, 3}, {0, 1, 2, 3}, {2}, {}}
	for ci, pages := range cycles {
		for _, p := range pages {
			dev.WriteBytes(p*PageSize+9, []byte{0xEE, 0xFF})
		}
		dev.ResetFrom(pristine)
		if !bytes.Equal(dev.Bytes(), want) {
			t.Fatalf("cycle %d: device differs from pristine after reset", ci)
		}
	}
	if !bytes.Equal(pristine.Bytes(), want) {
		t.Fatal("pristine image itself changed")
	}
}

// TestDevicePagesCopiedAccounting: the copy counter must count exactly the
// page-sized copies performed — one privatization per newly written page,
// one restore per dirty page at reset, and nothing in the steady state where
// a run re-dirties already-private pages.
func TestDevicePagesCopiedAccounting(t *testing.T) {
	pristine := NewDevice(4 * PageSize)
	dev := pristine.Clone()
	dev.TakePagesCopied()

	// First run dirties 2 shared pages: 2 privatizations.
	dev.WriteBytes(0, []byte{1})
	dev.WriteBytes(2*PageSize, []byte{1})
	if got := dev.TakePagesCopied(); got != 2 {
		t.Fatalf("privatizations = %d, want 2", got)
	}
	// Reset restores the 2 dirty pages.
	dev.ResetFrom(pristine)
	if got := dev.TakePagesCopied(); got != 2 {
		t.Fatalf("restores = %d, want 2", got)
	}
	// Second run re-dirties the same (now private) pages: no privatization,
	// only the 2 restores at reset.
	dev.WriteBytes(0, []byte{1})
	dev.WriteBytes(2*PageSize, []byte{1})
	dev.ResetFrom(pristine)
	if got := dev.TakePagesCopied(); got != 2 {
		t.Fatalf("steady-state copies = %d, want 2", got)
	}
	// An untouched run copies nothing at all.
	dev.ResetFrom(pristine)
	if got := dev.TakePagesCopied(); got != 0 {
		t.Fatalf("idle reset copied %d pages", got)
	}
}

// TestDeviceResetAfterSizePadding: sizes that are not page multiples keep
// bounds-checking at the logical size while resetting full pages.
func TestDeviceResetAfterSizePadding(t *testing.T) {
	pristine := NewDevice(10) // single partial page
	pristine.WriteBytes(0, []byte{1, 2, 3})
	dev := pristine.Clone()
	dev.WriteBytes(5, []byte{9})
	dev.ResetFrom(pristine)
	if !bytes.Equal(dev.Bytes(), pristine.Bytes()) {
		t.Fatal("partial-page device not restored")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-size host access did not panic")
		}
	}()
	dev.WriteBytes(10, []byte{1})
}

// TestDeviceResetFromSizeMismatch: resetting from a different-size image is
// a programming error and must panic rather than corrupt state.
func TestDeviceResetFromSizeMismatch(t *testing.T) {
	a := NewDevice(PageSize)
	b := NewDevice(2 * PageSize)
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch accepted")
		}
	}()
	a.ResetFrom(b)
}
