package gpusim

import (
	"math"

	"repro/internal/isa"
)

// threadState is the per-thread architectural state.
type threadState struct {
	flat  int // flat global thread id
	tid   Dim3
	ctaid Dim3

	regs  [isa.NumGPRs]uint32
	preds [isa.NumPreds]uint8
	ofs   [isa.NumOfs]uint32

	pc       int
	dynCount int64
	done     bool

	// Barrier state: waiting is true when blocked on barrier barID.
	waiting bool
	barID   uint32
}

// ctaState groups the threads of one CTA with their shared memory.
type ctaState struct {
	threads []*threadState
	shared  []byte
}

// exec bundles everything the interpreter needs for one launch.
type exec struct {
	prog     *isa.Program
	dev      *Device
	launch   *Launch
	block    Dim3
	grid     Dim3
	watchdog int64
	// intra, when non-nil, records intra-CTA checkpoints of a golden run;
	// nil on every injection run.
	intra *WarpCheckpointRecorder
	// addrFlipBit, when >= 0, corrupts the next effective-address
	// computation (InjectMemAddr); consumed by address().
	addrFlipBit int
	// persist is the armed persistent (stuck-at) fault, decoded from
	// Launch.Inject; nil for transient or absent injections. See persist.go.
	persist *persistState
	// plan is the compiled execution plan; nil when Launch.Interpret
	// selected the reference interpreter.
	plan *execPlan
	// warpActive is runWarpBatch's reused active-lane scratch.
	warpActive []*threadState
}

// readReg returns the raw 32-bit value of a register for thread th.
func (e *exec) readReg(th *threadState, r isa.Reg) uint32 {
	switch r.Class {
	case isa.RegGPR:
		if r.Index == isa.ZeroReg || r.Index == isa.SinkReg {
			return 0
		}
		return th.regs[r.Index]
	case isa.RegPred:
		return uint32(th.preds[r.Index])
	case isa.RegOfs:
		return th.ofs[r.Index]
	case isa.RegSpecial:
		switch r.Index {
		case isa.SpecTidX:
			return uint32(th.tid.X)
		case isa.SpecTidY:
			return uint32(th.tid.Y)
		case isa.SpecTidZ:
			return uint32(th.tid.Z)
		case isa.SpecCtaidX:
			return uint32(th.ctaid.X)
		case isa.SpecCtaidY:
			return uint32(th.ctaid.Y)
		case isa.SpecCtaidZ:
			return uint32(th.ctaid.Z)
		case isa.SpecNTidX:
			return uint32(max(e.block.X, 1))
		case isa.SpecNTidY:
			return uint32(max(e.block.Y, 1))
		case isa.SpecNTidZ:
			return uint32(max(e.block.Z, 1))
		case isa.SpecNCtaidX:
			return uint32(max(e.grid.X, 1))
		case isa.SpecNCtaidY:
			return uint32(max(e.grid.Y, 1))
		case isa.SpecNCtaidZ:
			return uint32(max(e.grid.Z, 1))
		}
	}
	return 0
}

// writeReg stores a raw 32-bit value into a register of thread th. Writes to
// the zero register and the $o127 sink are discarded, matching PTXPlus.
func (e *exec) writeReg(th *threadState, r isa.Reg, v uint32) {
	switch r.Class {
	case isa.RegGPR:
		if r.Index == isa.ZeroReg || r.Index == isa.SinkReg {
			return
		}
		th.regs[r.Index] = v
	case isa.RegPred:
		th.preds[r.Index] = uint8(v) & 0xF
	case isa.RegOfs:
		th.ofs[r.Index] = v
	}
}

// flipRegBit applies a single-bit fault to a register.
func (e *exec) flipRegBit(th *threadState, r isa.Reg, bit int) {
	switch r.Class {
	case isa.RegPred:
		th.preds[r.Index] ^= 1 << (uint(bit) % isa.PredBits)
	case isa.RegOfs:
		th.ofs[r.Index] ^= 1 << (uint(bit) % 32)
	case isa.RegGPR:
		if r.Index != isa.ZeroReg && r.Index != isa.SinkReg {
			th.regs[r.Index] ^= 1 << (uint(bit) % 32)
		}
	}
}

// flipRegByte applies a whole-byte fault to a register: every bit of the
// byte containing bit flips (the whole flag nibble for a predicate
// register, which is narrower than a byte).
func (e *exec) flipRegByte(th *threadState, r isa.Reg, bit int) {
	switch r.Class {
	case isa.RegPred:
		th.preds[r.Index] ^= (1 << isa.PredBits) - 1
	case isa.RegOfs:
		th.ofs[r.Index] ^= 0xFF << (uint(bit) % 32 / 8 * 8)
	case isa.RegGPR:
		if r.Index != isa.ZeroReg && r.Index != isa.SinkReg {
			th.regs[r.Index] ^= 0xFF << (uint(bit) % 32 / 8 * 8)
		}
	}
}

// flipLaneGroup applies a spatially correlated fault: bit flips in the same
// architectural register of every thread in th's lane group — the warp
// under SIMT scheduling, a 32-wide group under serial interleaving.
func (e *exec) flipLaneGroup(th *threadState, cta *ctaState, r isa.Reg, bit int) {
	w := e.launch.WarpSize
	if w <= 0 {
		w = 32
	}
	local := th.flat % e.block.Count()
	base := local / w * w
	end := base + w
	if end > len(cta.threads) {
		end = len(cta.threads)
	}
	for _, o := range cta.threads[base:end] {
		e.flipRegBit(o, r, bit)
	}
}

// sourceValue resolves a source operand to its raw 32-bit value, applying
// half-selection and negation. Memory sources go through load and may trap.
func (e *exec) sourceValue(th *threadState, cta *ctaState, o *isa.Operand, t isa.DataType) (uint32, *Trap) {
	switch o.Kind {
	case isa.OpdReg:
		v := e.readReg(th, o.Reg)
		switch o.Half {
		case isa.HalfLo:
			v &= 0xFFFF
			if t.Signed() {
				v = uint32(int32(int16(v)))
			}
		case isa.HalfHi:
			v >>= 16
			if t.Signed() {
				v = uint32(int32(int16(v)))
			}
		}
		if o.Neg {
			if t.Float() {
				v ^= 0x80000000
			} else {
				v = -v
			}
		}
		return v, nil
	case isa.OpdImm:
		return o.Imm, nil
	case isa.OpdMem:
		return e.load(th, cta, o, t)
	}
	return 0, &Trap{Kind: TrapInvalid, Thread: th.flat, PC: th.pc, Msg: "empty operand"}
}

// address computes the effective byte address of a memory operand, applying
// a pending InjectMemAddr fault to the first address computed after the
// injection point.
func (e *exec) address(th *threadState, o *isa.Operand) uint32 {
	addr := o.Imm
	if o.BaseValid {
		addr += e.readReg(th, o.Reg)
	}
	if e.addrFlipBit >= 0 {
		addr ^= 1 << (uint(e.addrFlipBit) % 32)
		e.addrFlipBit = -1
	}
	return addr
}

// accessWidth returns the byte width of a memory access of the given type.
func accessWidth(t isa.DataType) int {
	switch t.Bits() {
	case 8:
		return 1
	case 16:
		return 2
	default:
		return 4
	}
}

// memSlice resolves the flat backing storage for a non-global space; global
// memory lives behind the device's copy-on-write page table and is accessed
// through Device.loadMem/storeMem instead.
func (e *exec) memSlice(cta *ctaState, space isa.MemSpace) []byte {
	switch space {
	case isa.SpaceShared, isa.SpaceLocal:
		return cta.shared
	case isa.SpaceConst:
		return e.dev.Const
	}
	return nil
}

// load reads from memory with bounds and alignment checking; violations trap
// (the simulator's "crash" outcome).
func (e *exec) load(th *threadState, cta *ctaState, o *isa.Operand, t isa.DataType) (uint32, *Trap) {
	addr := int(e.address(th, o))
	w := accessWidth(t)
	var v uint32
	if o.Space == isa.SpaceGlobal {
		if addr < 0 || addr+w > e.dev.size {
			return 0, &Trap{Kind: TrapMemFault, Thread: th.flat, PC: th.pc,
				Msg: "load out of range"}
		}
		if addr%w != 0 {
			return 0, &Trap{Kind: TrapMemFault, Thread: th.flat, PC: th.pc,
				Msg: "misaligned load"}
		}
		v = e.dev.loadMem(addr, w)
	} else {
		mem := e.memSlice(cta, o.Space)
		if mem == nil || addr < 0 || addr+w > len(mem) {
			return 0, &Trap{Kind: TrapMemFault, Thread: th.flat, PC: th.pc,
				Msg: "load out of range"}
		}
		if addr%w != 0 {
			return 0, &Trap{Kind: TrapMemFault, Thread: th.flat, PC: th.pc,
				Msg: "misaligned load"}
		}
		switch w {
		case 1:
			v = uint32(mem[addr])
		case 2:
			v = uint32(mem[addr]) | uint32(mem[addr+1])<<8
		default:
			v = getWord(mem, addr)
		}
	}
	if t.Signed() {
		switch w {
		case 1:
			v = uint32(int32(int8(v)))
		case 2:
			v = uint32(int32(int16(v)))
		}
	}
	return v, nil
}

// store writes to memory with bounds and alignment checking.
func (e *exec) store(th *threadState, cta *ctaState, o *isa.Operand, t isa.DataType, v uint32) *Trap {
	if o.Space == isa.SpaceConst {
		return &Trap{Kind: TrapMemFault, Thread: th.flat, PC: th.pc,
			Msg: "store to const space"}
	}
	addr := int(e.address(th, o))
	w := accessWidth(t)
	if o.Space == isa.SpaceGlobal {
		if addr < 0 || addr+w > e.dev.size {
			return &Trap{Kind: TrapMemFault, Thread: th.flat, PC: th.pc,
				Msg: "store out of range"}
		}
		if addr%w != 0 {
			return &Trap{Kind: TrapMemFault, Thread: th.flat, PC: th.pc,
				Msg: "misaligned store"}
		}
		e.dev.storeMem(addr, w, v)
		return nil
	}
	mem := e.memSlice(cta, o.Space)
	if mem == nil || addr < 0 || addr+w > len(mem) {
		return &Trap{Kind: TrapMemFault, Thread: th.flat, PC: th.pc,
			Msg: "store out of range"}
	}
	if addr%w != 0 {
		return &Trap{Kind: TrapMemFault, Thread: th.flat, PC: th.pc,
			Msg: "misaligned store"}
	}
	switch w {
	case 1:
		mem[addr] = byte(v)
	case 2:
		mem[addr] = byte(v)
		mem[addr+1] = byte(v >> 8)
	default:
		putWord(mem, addr, v)
	}
	return nil
}

// f32 converts raw bits to float32 and back.
func f32(v uint32) float32     { return math.Float32frombits(v) }
func f32bits(f float32) uint32 { return math.Float32bits(f) }
