package gpusim

// Checkpointing captures the golden (fault-free) run's global-memory state at
// CTA boundaries so that injection runs can fast-forward: for a fault site in
// CTA c, the CTAs before c are bit-identical to the golden run (CTAs execute
// strictly sequentially and share only global memory), so the run can resume
// from the nearest snapshot at or below c instead of re-executing the prefix.
// Snapshots are copy-on-write Device clones — their cost is proportional to
// the inter-snapshot write sets, not the device footprint — and every CTA
// boundary additionally records per-page content hashes, letting a run that
// matches golden state right after the injected CTA stop without executing
// the suffix (see Checkpoints.Converged).

// DefaultCheckpointSnapshots bounds the number of snapshots an auto-strided
// recorder takes, keeping retained snapshot memory proportional to at most
// this many inter-snapshot write sets.
const DefaultCheckpointSnapshots = 16

// AutoCheckpointStride picks a CTA-boundary snapshot stride for a grid of
// numCTAs CTAs: 1 for small grids, otherwise the smallest stride that keeps
// the snapshot count at DefaultCheckpointSnapshots or fewer.
func AutoCheckpointStride(numCTAs int) int {
	if numCTAs <= DefaultCheckpointSnapshots {
		return 1
	}
	return (numCTAs + DefaultCheckpointSnapshots - 1) / DefaultCheckpointSnapshots
}

// Checkpoints is the immutable result of recording a golden run: snapshots at
// strided CTA boundaries plus per-boundary page hashes. It is read-only after
// Finish and safe for concurrent use by campaign workers. Boundary b denotes
// the instant after CTAs [0, b) have executed; boundary 0 is the pristine
// image.
type Checkpoints struct {
	stride  int
	numCTAs int
	// snaps[i] is the frozen device state at boundary i*stride.
	snaps []*Device
	// hashes[b] maps page index -> content hash for every page written
	// during CTAs [0, b); pages absent from the map still hold pristine
	// content. Maps are shared across boundaries with identical write sets.
	hashes []map[int32]uint64
	// mustWrite[b] lists the pages whose content at boundary b differs from
	// their content at the floor checkpoint boundary for CTA b-1 — the pages
	// a run resumed from that checkpoint must have dirtied to have reached
	// golden state at b.
	mustWrite [][]int32
	// pristineHash[p] is the hash of page p in the pristine image.
	pristineHash []uint64
	bytes        int64
}

// Stride is the CTA-boundary distance between snapshots.
func (c *Checkpoints) Stride() int { return c.stride }

// NumCTAs is the grid size the checkpoints were recorded over.
func (c *Checkpoints) NumCTAs() int { return c.numCTAs }

// Count is the number of snapshots retained (including the pristine image).
func (c *Checkpoints) Count() int { return len(c.snaps) }

// Bytes approximates the global-memory bytes retained by the snapshots
// beyond the pristine image (pages privatized by the golden run up to the
// last snapshot, at page granularity).
func (c *Checkpoints) Bytes() int64 { return c.bytes }

// SnapshotFor returns the snapshot with the largest boundary at or below cta,
// and that boundary — the resume point for an injection into cta.
func (c *Checkpoints) SnapshotFor(cta int) (*Device, int) {
	i := c.SnapshotIndex(cta)
	return c.snaps[i], i * c.stride
}

// SnapshotIndex returns the ordinal of the snapshot SnapshotFor(cta) resumes
// from. The campaign scheduler uses it as the affinity key: sites that share
// a snapshot index reset a pooled device on the same-source fast path.
func (c *Checkpoints) SnapshotIndex(cta int) int {
	i := cta / c.stride
	if i >= len(c.snaps) {
		i = len(c.snaps) - 1
	}
	return i
}

// Converged reports whether dev — reset from SnapshotFor(boundary-1) and
// executed through CTA boundary-1 — holds exactly the golden run's global
// memory at boundary. If it does, the remaining CTAs of an injection run are
// bit-identical to golden (determinism; no cross-CTA state besides global
// memory), so the run is Masked without executing them. Page equality is
// judged by 64-bit content hash (see Device.HashPage for the collision
// argument). Must not be called once boundary == NumCTAs: the final state is
// classified against the golden output instead.
//
// Callers must not consult Converged while a persistent fault is live (the
// AfterCTA hook's faultLive flag): memory can match golden at the boundary
// while a stuck lane or barrier ghost still diverges a later CTA, so the
// early exit is only sound once the fault has retired with its thread
// (DESIGN.md §3.11).
func (c *Checkpoints) Converged(dev *Device, boundary int) bool {
	dirty := dev.DirtyPages()
	// Every page that golden changed between the resume checkpoint and this
	// boundary must have been written by the run too — an untouched page
	// still holds checkpoint content, which differs.
	if need := c.mustWrite[boundary]; len(need) > 0 {
		if len(dirty) < len(need) {
			return false
		}
		set := make(map[int32]struct{}, len(dirty))
		for _, p := range dirty {
			set[p] = struct{}{}
		}
		for _, p := range need {
			if _, ok := set[p]; !ok {
				return false
			}
		}
	}
	// Every page the run wrote must hash to golden's content at boundary.
	golden := c.hashes[boundary]
	for _, p := range dirty {
		want, ok := golden[p]
		if !ok {
			want = c.pristineHash[p]
		}
		if dev.HashPage(int(p)) != want {
			return false
		}
	}
	return true
}

// CheckpointRecorder observes a golden run via the Launch.AfterCTA hook and
// builds a Checkpoints store. The recorded device must start as a fresh clone
// of pristine and must never be reset (the recorder harvests its dirty-page
// tracking; see Device.TakeDirtyPages).
type CheckpointRecorder struct {
	dev *Device
	ck  *Checkpoints
	buf []int32
	// cur is the cumulative page->hash map at the last seen boundary.
	cur map[int32]uint64
	// intra, when non-nil, is the coupled intra-CTA recorder: it learns each
	// harvested CTA write set (its page deltas are relative to the last
	// retained boundary snapshot) and is told when a new snapshot is taken.
	intra *WarpCheckpointRecorder
}

// AttachIntra couples an intra-CTA recorder observing the same golden run:
// the boundary recorder forwards harvested write sets so warp snapshots can
// record page deltas relative to the retained boundary snapshots. Call
// before the golden Execute.
func (r *CheckpointRecorder) AttachIntra(w *WarpCheckpointRecorder) {
	r.intra = w
}

// NewCheckpointRecorder prepares recording for a numCTAs-CTA golden run of
// dev, cloned from pristine. stride <= 0 selects AutoCheckpointStride. Wire
// the returned recorder's AfterCTA into the golden Launch, then call Finish
// after a successful Execute.
func NewCheckpointRecorder(pristine, dev *Device, numCTAs, stride int) *CheckpointRecorder {
	if stride <= 0 {
		stride = AutoCheckpointStride(numCTAs)
	}
	ck := &Checkpoints{
		stride:  stride,
		numCTAs: numCTAs,
		snaps:   []*Device{pristine},
		hashes:  make([]map[int32]uint64, numCTAs+1),
	}
	ck.hashes[0] = map[int32]uint64{}
	dev.TakeDirtyPages(nil) // discard host-side init writes, if any
	dev.TakePagesCopied()
	return &CheckpointRecorder{dev: dev, ck: ck, cur: ck.hashes[0]}
}

// AfterCTA implements the Launch.AfterCTA hook: it folds the CTA's write set
// into the cumulative hash map and clones a snapshot at strided boundaries.
// It never stops the launch. faultLive is ignored: recording happens only on
// the fault-free golden run, where no persistent fault can be live. A CTA
// boundary needs no scheduler or barrier ledger beyond the device image —
// CTAs run strictly sequentially, a CTA retires only when every thread has
// exited, and threads of a fresh CTA start with an empty ledger (no parked
// flags, no barrier arrivals, election order fixed by thread order) — so the
// device clone IS the complete resume point (DESIGN.md §3.11).
func (r *CheckpointRecorder) AfterCTA(cta int, faultLive bool) bool {
	b := cta + 1
	r.buf = r.dev.TakeDirtyPages(r.buf)
	if r.intra != nil {
		r.intra.noteBoundaryWrites(r.buf)
	}
	if len(r.buf) > 0 {
		next := make(map[int32]uint64, len(r.cur)+len(r.buf))
		for p, h := range r.cur {
			next[p] = h
		}
		for _, p := range r.buf {
			next[p] = r.dev.HashPage(int(p))
		}
		r.cur = next
	}
	r.ck.hashes[b] = r.cur
	if b < r.ck.numCTAs && b%r.ck.stride == 0 {
		// Pages privatized since the previous snapshot are the bytes this
		// snapshot pins beyond it.
		r.ck.bytes += r.dev.TakePagesCopied() * PageSize
		r.ck.snaps = append(r.ck.snaps, r.dev.Clone())
		if r.intra != nil {
			// Deltas of snapshots captured after this point are relative to
			// the boundary snapshot just retained.
			r.intra.resetBase()
		}
	}
	return false
}

// Finish precomputes the per-boundary convergence obligations and returns
// the immutable store. Call exactly once, after the golden run completed
// without a trap.
func (r *CheckpointRecorder) Finish() *Checkpoints {
	ck := r.ck
	pristine := ck.snaps[0]
	ck.pristineHash = make([]uint64, pristine.NumPages())
	for p := range ck.pristineHash {
		ck.pristineHash[p] = pristine.HashPage(p)
	}
	ck.mustWrite = make([][]int32, ck.numCTAs+1)
	for b := 1; b <= ck.numCTAs; b++ {
		floor := ((b - 1) / ck.stride) * ck.stride
		atFloor, atB := ck.hashes[floor], ck.hashes[b]
		var diff []int32
		for p, h := range atB {
			hf, ok := atFloor[p]
			if !ok {
				hf = ck.pristineHash[p]
			}
			if h != hf {
				diff = append(diff, p)
			}
		}
		ck.mustWrite[b] = diff
	}
	return ck
}
