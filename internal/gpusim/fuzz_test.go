package gpusim

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// fuzzProgram generates a structurally valid random program of n
// instructions from an LCG seeded with seed. Shared by the never-panic
// property and the compiled-vs-interpreter differential fuzz target.
func fuzzProgram(t *testing.T, seed uint64, n int) *isa.Program {
	t.Helper()
	ops := []isa.Opcode{
		isa.OpMov, isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpMad, isa.OpDiv,
		isa.OpRem, isa.OpMin, isa.OpMax, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpNot, isa.OpShl, isa.OpShr, isa.OpSet, isa.OpCvt, isa.OpAbs,
		isa.OpNeg, isa.OpRcp, isa.OpSqrt, isa.OpLd, isa.OpSt, isa.OpBra,
		isa.OpSad, isa.OpSelp, isa.OpSlct, isa.OpCnot, isa.OpEx2,
	}
	types := []isa.DataType{isa.TypeU32, isa.TypeS32, isa.TypeF32, isa.TypeU16, isa.TypeB32}

	rnd := func(mod uint64) uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return (seed >> 33) % mod
	}
	reg := func() isa.Operand { return isa.R(int(rnd(16))) }
	operand := func() isa.Operand {
		switch rnd(4) {
		case 0:
			return isa.Imm(uint32(rnd(1 << 16)))
		case 1:
			return isa.MemDirect(isa.SpaceShared, uint32(rnd(256))*4)
		case 2:
			return isa.MemIndirect(isa.SpaceGlobal, isa.Reg{Class: isa.RegGPR, Index: uint8(rnd(16))}, uint32(rnd(64)))
		default:
			return reg()
		}
	}
	p := &isa.Program{Name: "fuzz", Labels: map[string]int{}}
	for i := 0; i < n; i++ {
		op := ops[rnd(uint64(len(ops)))]
		in := isa.Instruction{PC: i, Op: op,
			DType: types[rnd(uint64(len(types)))]}
		in.SType = in.DType
		switch op {
		case isa.OpBra:
			in.Target = "lend"
			if rnd(2) == 0 {
				in.Guard = isa.Guard{Reg: isa.Reg{Class: isa.RegPred, Index: uint8(rnd(4))},
					Cond: isa.CmpEq}
			}
		case isa.OpSt:
			in.Dst = isa.MemIndirect(isa.SpaceGlobal,
				isa.Reg{Class: isa.RegGPR, Index: uint8(rnd(16))}, uint32(rnd(64)))
			in.Srcs = []isa.Operand{reg()}
		case isa.OpSet:
			in.Cmp = isa.CmpOp(1 + rnd(6))
			in.DstPred = isa.Reg{Class: isa.RegPred, Index: uint8(rnd(4))}
			in.Dst = isa.R(isa.SinkReg)
			in.Srcs = []isa.Operand{operand(), operand()}
		case isa.OpSelp:
			in.Dst = reg()
			in.Srcs = []isa.Operand{operand(), operand(), isa.P(int(rnd(4)))}
		case isa.OpMad, isa.OpSad, isa.OpSlct:
			in.Dst = reg()
			in.Srcs = []isa.Operand{operand(), operand(), operand()}
		case isa.OpMov, isa.OpLd, isa.OpNot, isa.OpCnot, isa.OpAbs,
			isa.OpNeg, isa.OpCvt, isa.OpRcp, isa.OpSqrt, isa.OpEx2:
			in.Dst = reg()
			in.Srcs = []isa.Operand{operand()}
		default:
			in.Dst = reg()
			in.Srcs = []isa.Operand{operand(), operand()}
		}
		p.Instrs = append(p.Instrs, in)
	}
	p.Instrs = append(p.Instrs, isa.Instruction{PC: n, Op: isa.OpExit, Label: "lend"})
	p.Labels["lend"] = n
	if err := p.Validate(); err != nil {
		t.Fatalf("generator produced invalid program: %v", err)
	}
	return p
}

// TestRandomProgramsNeverPanic drives both execution paths with randomly
// generated (structurally valid) programs and random initial state: any
// behaviour is acceptable — clean exit, memory fault, watchdog — except a
// panic or a missed watchdog. This is the robustness property fault
// injection relies on: a bit flip can steer execution anywhere, and the
// simulator must classify, not crash.
func TestRandomProgramsNeverPanic(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		prog := fuzzProgram(t, seed, int(size%40)+1)
		for _, interpret := range []bool{false, true} {
			dev := NewDevice(256)
			res, err := Execute(dev, &Launch{
				Prog:      prog,
				Grid:      Dim3{X: 1, Y: 1, Z: 1},
				Block:     Dim3{X: 4, Y: 1, Z: 1},
				Watchdog:  10_000,
				Interpret: interpret,
			})
			if err != nil {
				return false // setup errors indicate a generator bug
			}
			// Any trap kind is fine; what matters is we returned.
			_ = res
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// diffRunState is the full observable architectural state of one run,
// captured for bit-exact comparison between the compiled plan and the
// reference interpreter.
type diffRunState struct {
	threads []threadState // final per-thread state by value: regs, preds, ofs, pc, dynCount, done
	shared  []byte
	dev     []byte
	trap    *Trap
}

// diffRun executes prog on a fresh single-CTA 4-thread launch, keeping the
// CTA state alive so final registers and predicates can be compared
// directly. It mirrors Execute's setup and dispatches through the same
// scheduler switch.
func diffRun(t *testing.T, prog *isa.Program, warpSize int, inj *Injection, interpret bool) diffRunState {
	t.Helper()
	dev := NewDevice(256)
	launch := &Launch{
		Prog:      prog,
		Grid:      Dim3{X: 1, Y: 1, Z: 1},
		Block:     Dim3{X: 4, Y: 1, Z: 1},
		Watchdog:  10_000,
		WarpSize:  warpSize,
		Inject:    inj,
		Interpret: interpret,
	}
	e := &exec{
		prog:        prog,
		dev:         dev,
		launch:      launch,
		block:       launch.Block,
		grid:        launch.Grid,
		watchdog:    launch.Watchdog,
		addrFlipBit: -1,
	}
	if !interpret {
		e.plan = planFor(prog)
	}
	e.persist = newPersistState(inj)
	cta := &ctaState{shared: make([]byte, DefaultSharedBytes)}
	for tx := 0; tx < launch.Block.X; tx++ {
		cta.threads = append(cta.threads, &threadState{flat: tx, tid: Dim3{X: tx}})
	}
	var trap *Trap
	switch {
	case warpSize > 0 && e.plan != nil:
		trap = e.runCTAWarpedCompiled(cta, warpSize)
	case warpSize > 0:
		trap = e.runCTAWarped(cta, warpSize)
	case e.plan != nil:
		trap = e.runCTACompiled(cta)
	default:
		trap = e.runCTA(cta)
	}
	st := diffRunState{shared: cta.shared, dev: dev.Bytes(), trap: trap}
	for _, th := range cta.threads {
		st.threads = append(st.threads, *th)
	}
	return st
}

// TestCompiledMatchesInterpreterFuzz is the differential property behind the
// compiled execution plan (DESIGN.md §3.8): for random programs, under both
// schedulers, with and without an injected fault, the compiled plan and the
// reference interpreter must agree on every observable — final registers,
// predicates, offset registers, PCs, dynamic instruction counts, shared and
// global memory, and the trap (kind, thread, PC and message).
func TestCompiledMatchesInterpreterFuzz(t *testing.T) {
	f := func(seed uint64, size uint8, injSel uint32) bool {
		prog := fuzzProgram(t, seed, int(size%40)+1)
		kinds := []InjectKind{
			InjectDestValue, InjectDestValue, InjectDestDouble, InjectMemAddr,
			InjectDestByte, InjectLaneCorrelated,
			InjectStuckPred, InjectStuckActiveMask, InjectStuckBarrier,
		}
		inj := &Injection{
			Thread:  int(injSel % 4),
			DynInst: int64((injSel >> 2) % 64),
			Bit:     int((injSel >> 8) % 64),
			Kind:    kinds[(injSel>>14)%uint32(len(kinds))],
		}
		for _, warp := range []int{0, 4} {
			for _, in := range []*Injection{nil, inj} {
				ref := diffRun(t, prog, warp, in, true)
				got := diffRun(t, prog, warp, in, false)
				if (ref.trap == nil) != (got.trap == nil) ||
					(ref.trap != nil && *ref.trap != *got.trap) {
					t.Errorf("seed %d warp %d inj %+v: trap diverges: interpreter %v, compiled %v",
						seed, warp, in, ref.trap, got.trap)
					return false
				}
				for i := range ref.threads {
					if ref.threads[i] != got.threads[i] {
						t.Errorf("seed %d warp %d inj %+v: thread %d state diverges:\ninterpreter %+v\ncompiled    %+v",
							seed, warp, in, i, ref.threads[i], got.threads[i])
						return false
					}
				}
				if !bytes.Equal(ref.shared, got.shared) {
					t.Errorf("seed %d warp %d inj %+v: shared memory diverges", seed, warp, in)
					return false
				}
				if !bytes.Equal(ref.dev, got.dev) {
					t.Errorf("seed %d warp %d inj %+v: global memory diverges", seed, warp, in)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCompiledMatchesInterpreterInvalidCmp pins the trap parity of the
// condition-code validation: a program whose guard or comparison carries a
// condition code outside the defined range must raise TrapInvalid — not
// silently execute (guards) or evaluate false (set) — identically on both
// execution paths.
func TestCompiledMatchesInterpreterInvalidCmp(t *testing.T) {
	cases := []struct {
		name  string
		prog  func(t *testing.T) *isa.Program
		wants string
	}{
		{
			name: "invalid-guard-cond",
			prog: func(t *testing.T) *isa.Program {
				p := &isa.Program{Name: "badguard", Labels: map[string]int{"lend": 1}}
				p.Instrs = []isa.Instruction{
					{PC: 0, Op: isa.OpBra, Target: "lend",
						Guard: isa.Guard{Reg: isa.Reg{Class: isa.RegPred, Index: 0}, Cond: isa.CmpOp(99)}},
					{PC: 1, Op: isa.OpExit, Label: "lend"},
				}
				if err := p.Validate(); err != nil {
					t.Fatal(err)
				}
				return p
			},
			wants: "invalid condition code",
		},
		{
			name: "invalid-set-cmp",
			prog: func(t *testing.T) *isa.Program {
				p := &isa.Program{Name: "badcmp", Labels: map[string]int{}}
				p.Instrs = []isa.Instruction{
					{PC: 0, Op: isa.OpSet, Cmp: isa.CmpOp(99), DType: isa.TypeU32, SType: isa.TypeU32,
						DstPred: isa.Reg{Class: isa.RegPred, Index: 0},
						Dst:     isa.R(isa.SinkReg),
						Srcs:    []isa.Operand{isa.Imm(1), isa.Imm(2)}},
					{PC: 1, Op: isa.OpExit},
				}
				if err := p.Validate(); err != nil {
					t.Fatal(err)
				}
				return p
			},
			wants: "invalid comparison code",
		},
		{
			name: "cmpnone-guard",
			prog: func(t *testing.T) *isa.Program {
				// A guard with CmpNone previously executed unconditionally;
				// it now traps as malformed on both paths.
				p := &isa.Program{Name: "noneguard", Labels: map[string]int{"lend": 1}}
				p.Instrs = []isa.Instruction{
					{PC: 0, Op: isa.OpBra, Target: "lend",
						Guard: isa.Guard{Reg: isa.Reg{Class: isa.RegPred, Index: 0}, Cond: isa.CmpNone}},
					{PC: 1, Op: isa.OpExit, Label: "lend"},
				}
				if err := p.Validate(); err != nil {
					t.Fatal(err)
				}
				return p
			},
			wants: "invalid condition code",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			prog := tc.prog(t)
			for _, warp := range []int{0, 4} {
				ref := diffRun(t, prog, warp, nil, true)
				got := diffRun(t, prog, warp, nil, false)
				for _, st := range []struct {
					mode string
					s    diffRunState
				}{{"interpreter", ref}, {"compiled", got}} {
					if st.s.trap == nil || st.s.trap.Kind != TrapInvalid {
						t.Fatalf("warp %d %s: want TrapInvalid, got %v", warp, st.mode, st.s.trap)
					}
					if !strings.Contains(st.s.trap.Msg, tc.wants) {
						t.Fatalf("warp %d %s: trap message %q does not mention %q",
							warp, st.mode, st.s.trap.Msg, tc.wants)
					}
				}
				if *ref.trap != *got.trap {
					t.Fatalf("warp %d: traps diverge: interpreter %v, compiled %v", warp, ref.trap, got.trap)
				}
			}
		})
	}
}
