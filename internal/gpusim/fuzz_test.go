package gpusim

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// TestRandomProgramsNeverPanic drives the interpreter with randomly
// generated (structurally valid) programs and random initial state: any
// behaviour is acceptable — clean exit, memory fault, watchdog — except a
// panic or a missed watchdog. This is the robustness property fault
// injection relies on: a bit flip can steer execution anywhere, and the
// simulator must classify, not crash.
func TestRandomProgramsNeverPanic(t *testing.T) {
	ops := []isa.Opcode{
		isa.OpMov, isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpMad, isa.OpDiv,
		isa.OpRem, isa.OpMin, isa.OpMax, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpNot, isa.OpShl, isa.OpShr, isa.OpSet, isa.OpCvt, isa.OpAbs,
		isa.OpNeg, isa.OpRcp, isa.OpSqrt, isa.OpLd, isa.OpSt, isa.OpBra,
		isa.OpSad, isa.OpSelp, isa.OpSlct, isa.OpCnot, isa.OpEx2,
	}
	types := []isa.DataType{isa.TypeU32, isa.TypeS32, isa.TypeF32, isa.TypeU16, isa.TypeB32}

	build := func(seed uint64, n int) *isa.Program {
		rnd := func(mod uint64) uint64 {
			seed = seed*6364136223846793005 + 1442695040888963407
			return (seed >> 33) % mod
		}
		reg := func() isa.Operand { return isa.R(int(rnd(16))) }
		operand := func() isa.Operand {
			switch rnd(4) {
			case 0:
				return isa.Imm(uint32(rnd(1 << 16)))
			case 1:
				return isa.MemDirect(isa.SpaceShared, uint32(rnd(256))*4)
			case 2:
				return isa.MemIndirect(isa.SpaceGlobal, isa.Reg{Class: isa.RegGPR, Index: uint8(rnd(16))}, uint32(rnd(64)))
			default:
				return reg()
			}
		}
		p := &isa.Program{Name: "fuzz", Labels: map[string]int{}}
		for i := 0; i < n; i++ {
			op := ops[rnd(uint64(len(ops)))]
			in := isa.Instruction{PC: i, Op: op,
				DType: types[rnd(uint64(len(types)))]}
			in.SType = in.DType
			switch op {
			case isa.OpBra:
				in.Target = "lend"
				if rnd(2) == 0 {
					in.Guard = isa.Guard{Reg: isa.Reg{Class: isa.RegPred, Index: uint8(rnd(4))},
						Cond: isa.CmpEq}
				}
			case isa.OpSt:
				in.Dst = isa.MemIndirect(isa.SpaceGlobal,
					isa.Reg{Class: isa.RegGPR, Index: uint8(rnd(16))}, uint32(rnd(64)))
				in.Srcs = []isa.Operand{reg()}
			case isa.OpSet:
				in.Cmp = isa.CmpOp(1 + rnd(6))
				in.DstPred = isa.Reg{Class: isa.RegPred, Index: uint8(rnd(4))}
				in.Dst = isa.R(isa.SinkReg)
				in.Srcs = []isa.Operand{operand(), operand()}
			case isa.OpSelp:
				in.Dst = reg()
				in.Srcs = []isa.Operand{operand(), operand(), isa.P(int(rnd(4)))}
			case isa.OpMad, isa.OpSad, isa.OpSlct:
				in.Dst = reg()
				in.Srcs = []isa.Operand{operand(), operand(), operand()}
			case isa.OpMov, isa.OpLd, isa.OpNot, isa.OpCnot, isa.OpAbs,
				isa.OpNeg, isa.OpCvt, isa.OpRcp, isa.OpSqrt, isa.OpEx2:
				in.Dst = reg()
				in.Srcs = []isa.Operand{operand()}
			default:
				in.Dst = reg()
				in.Srcs = []isa.Operand{operand(), operand()}
			}
			p.Instrs = append(p.Instrs, in)
		}
		p.Instrs = append(p.Instrs, isa.Instruction{PC: n, Op: isa.OpExit, Label: "lend"})
		p.Labels["lend"] = n
		if err := p.Validate(); err != nil {
			t.Fatalf("generator produced invalid program: %v", err)
		}
		return p
	}

	f := func(seed uint64, size uint8) bool {
		prog := build(seed, int(size%40)+1)
		dev := NewDevice(256)
		res, err := Execute(dev, &Launch{
			Prog:     prog,
			Grid:     Dim3{X: 1, Y: 1, Z: 1},
			Block:    Dim3{X: 4, Y: 1, Z: 1},
			Watchdog: 10_000,
		})
		if err != nil {
			return false // setup errors indicate a generator bug
		}
		// Any trap kind is fine; what matters is we returned.
		_ = res
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
