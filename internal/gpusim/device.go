// Package gpusim is a functional SIMT GPU simulator for the PTXPlus-flavoured
// ISA in internal/isa. It stands in for GPGPU-Sim (PTXPlus mode) as the
// fault-injection substrate of the reproduced paper: it executes a kernel
// grid thread by thread with CTA-level barrier scheduling, exposes the exact
// fault surface the paper targets (the destination register of every dynamic
// instruction of every thread), and classifies abnormal terminations
// (memory faults, watchdog hangs, barrier deadlocks) that fold into the
// paper's "other" outcome category.
package gpusim

import (
	"fmt"

	"repro/internal/isa"
)

// Dim3 is a CUDA-style 3-component extent.
type Dim3 struct{ X, Y, Z int }

// Count returns the number of elements covered by the extent.
func (d Dim3) Count() int {
	x, y, z := d.X, d.Y, d.Z
	if x == 0 {
		x = 1
	}
	if y == 0 {
		y = 1
	}
	if z == 0 {
		z = 1
	}
	return x * y * z
}

func (d Dim3) String() string { return fmt.Sprintf("(%d,%d,%d)", d.X, d.Y, d.Z) }

// ParamBase is the byte offset in shared memory where kernel parameters are
// materialized, mirroring PTXPlus listings that read the first parameter at
// s[0x0010].
const ParamBase = 0x10

// DefaultSharedBytes is the per-CTA shared memory size when a launch does
// not specify one (16 KiB, the Fermi-era default the paper's baseline uses).
const DefaultSharedBytes = 16 * 1024

// DefaultWatchdog is the per-thread dynamic instruction ceiling when a
// launch does not specify one. Fault-free kernels in this repository run a
// few thousand dynamic instructions per thread at most, so one million
// indicates a runaway (hang) with a wide margin.
const DefaultWatchdog = 1_000_000

// Launch describes one kernel launch.
type Launch struct {
	// Prog is the assembled kernel.
	Prog *isa.Program
	// Grid and Block are the CTA grid and per-CTA thread extents.
	Grid, Block Dim3
	// Params are the kernel parameters, copied to each CTA's shared memory
	// at ParamBase (word k at byte ParamBase+4k).
	Params []uint32
	// SharedBytes is the per-CTA shared memory size; 0 means
	// DefaultSharedBytes.
	SharedBytes int
	// Watchdog is the per-thread dynamic instruction ceiling; 0 means
	// DefaultWatchdog. Exceeding it raises a TrapWatchdog (a hang).
	Watchdog int64
	// Inject, when non-nil, flips one destination-register bit at one
	// dynamic instruction of one thread.
	Inject *Injection
	// Tracer, when non-nil, observes every dynamic instruction.
	Tracer Tracer
	// WarpSize selects the intra-CTA scheduling model: 0 runs threads
	// serially to barrier boundaries (fast, the default); a positive value
	// executes threads in SIMT lockstep warps of that width with min-PC
	// reconvergence, like the paper's GPGPU-Sim substrate. Per-thread
	// dynamic traces — and therefore fault sites and outcomes — are
	// identical across modes for race-free kernels; the warp mode exists
	// to validate exactly that.
	WarpSize int
}

// InjectKind selects the fault model applied at the injection point.
type InjectKind uint8

// Injection kinds. The paper's baseline model is InjectDestValue; the other
// two reproduce the additional modes of SASSIFI-style injectors the paper
// discusses in its related work: multi-bit value corruption (what SEC-DED
// ECC cannot correct) and effective-address corruption in the load-store
// unit.
const (
	// InjectDestValue flips one destination-register bit after writeback.
	InjectDestValue InjectKind = iota
	// InjectDestDouble flips two adjacent destination-register bits.
	InjectDestDouble
	// InjectMemAddr flips one bit of the effective address of the
	// instruction's memory operand before the access executes.
	InjectMemAddr
)

// String names the kind.
func (k InjectKind) String() string {
	switch k {
	case InjectDestDouble:
		return "dest-double"
	case InjectMemAddr:
		return "mem-addr"
	}
	return "dest-value"
}

// Injection is a single fault to apply during execution at dynamic
// instruction DynInst (0-based, counted over all instructions thread Thread
// issues). Under the paper's baseline model (InjectDestValue) bit Bit of the
// instruction's destination register is flipped after writeback
// (Section II-C); see InjectKind for the extended models.
type Injection struct {
	Thread  int        // flat global thread id
	DynInst int64      // dynamic instruction index within the thread
	Bit     int        // bit position (register or effective address)
	Kind    InjectKind // fault model
}

// Tracer observes retired dynamic instructions during a run. Implementations
// must be cheap: the profiler records one entry per dynamic instruction.
type Tracer interface {
	// Record is called for every retired dynamic instruction: thread is the
	// flat global thread id, pc the static instruction index, and wrote
	// whether the instruction wrote a live destination register (and is
	// therefore a fault site).
	Record(thread, pc int, wrote bool)
}

// TrapKind classifies abnormal terminations.
type TrapKind uint8

// Trap kinds. All of them map to the paper's "other" outcome class
// (crashes and hangs).
const (
	TrapNone     TrapKind = iota
	TrapMemFault          // out-of-range or misaligned access
	TrapWatchdog          // per-thread dynamic instruction ceiling exceeded
	TrapDeadlock          // CTA barrier cannot be satisfied
	TrapInvalid           // malformed execution (bad operand shape, ...)
)

// String names the trap kind.
func (k TrapKind) String() string {
	switch k {
	case TrapMemFault:
		return "memfault"
	case TrapWatchdog:
		return "watchdog"
	case TrapDeadlock:
		return "deadlock"
	case TrapInvalid:
		return "invalid"
	}
	return "none"
}

// Trap describes an abnormal termination of a run.
type Trap struct {
	Kind   TrapKind
	Thread int // flat global thread id, -1 when not thread-specific
	PC     int
	Msg    string
}

func (t *Trap) Error() string {
	return fmt.Sprintf("gpusim: %s at thread %d pc %d: %s", t.Kind, t.Thread, t.PC, t.Msg)
}

// Result summarizes a completed (or trapped) run.
type Result struct {
	// Trap is nil for a clean run.
	Trap *Trap
	// ThreadICnt is the per-flat-thread dynamic instruction count (the
	// paper's iCnt). On a trapped run it reflects progress made so far.
	ThreadICnt []int64
	// TotalDyn is the sum of ThreadICnt.
	TotalDyn int64
}

// Device is the simulated GPU memory system shared by all CTAs of a launch.
type Device struct {
	// Global is byte-addressed global memory (little-endian words).
	Global []byte
	// Const is the read-only constant segment.
	Const []byte
}

// NewDevice allocates a device with the given global memory size in bytes.
func NewDevice(globalBytes int) *Device {
	return &Device{Global: make([]byte, globalBytes)}
}

// Clone deep-copies the device; injection campaigns run each experiment on a
// fresh copy of the initial state.
func (d *Device) Clone() *Device {
	nd := &Device{Global: make([]byte, len(d.Global))}
	copy(nd.Global, d.Global)
	if d.Const != nil {
		nd.Const = make([]byte, len(d.Const))
		copy(nd.Const, d.Const)
	}
	return nd
}

// WriteWords stores 32-bit words into global memory at a byte offset.
func (d *Device) WriteWords(byteOff int, words []uint32) {
	for i, w := range words {
		putWord(d.Global, byteOff+4*i, w)
	}
}

// ReadWords loads n 32-bit words from global memory at a byte offset.
func (d *Device) ReadWords(byteOff, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = getWord(d.Global, byteOff+4*i)
	}
	return out
}

func putWord(mem []byte, off int, w uint32) {
	mem[off] = byte(w)
	mem[off+1] = byte(w >> 8)
	mem[off+2] = byte(w >> 16)
	mem[off+3] = byte(w >> 24)
}

func getWord(mem []byte, off int) uint32 {
	return uint32(mem[off]) | uint32(mem[off+1])<<8 |
		uint32(mem[off+2])<<16 | uint32(mem[off+3])<<24
}
