// Package gpusim is a functional SIMT GPU simulator for the PTXPlus-flavoured
// ISA in internal/isa. It stands in for GPGPU-Sim (PTXPlus mode) as the
// fault-injection substrate of the reproduced paper: it executes a kernel
// grid thread by thread with CTA-level barrier scheduling, exposes the exact
// fault surface the paper targets (the destination register of every dynamic
// instruction of every thread), and classifies abnormal terminations
// (memory faults, watchdog hangs, barrier deadlocks) that fold into the
// paper's "other" outcome category.
//
// The memory system is built for injection campaigns that run the same
// kernel thousands of times with one bit flipped per run. Device holds
// global memory as copy-on-write pages (PageSize): Clone freezes the
// current image and shares every page, ResetFrom restores a pooled device
// to a frozen image copying only the pages a run dirtied, and HashPage
// summarizes page content for golden-state comparison. Checkpoints layers
// strided CTA-boundary snapshots of the fault-free ("golden") run on top,
// so an injection into CTA k can resume from the nearest snapshot at or
// before k instead of re-executing the fault-free prefix, and Converged
// can end a run early once its memory image provably matches the golden
// run's at the same boundary.
//
// Execution entry points: Execute runs a Launch to completion (or trap),
// optionally injecting one fault (Injection) and tracing every retired
// instruction (Tracer); ProfileTrace captures the per-thread dynamic PC
// streams the pruning methodology consumes.
package gpusim

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
)

// Dim3 is a CUDA-style 3-component extent.
type Dim3 struct{ X, Y, Z int }

// Count returns the number of elements covered by the extent.
func (d Dim3) Count() int {
	x, y, z := d.X, d.Y, d.Z
	if x == 0 {
		x = 1
	}
	if y == 0 {
		y = 1
	}
	if z == 0 {
		z = 1
	}
	return x * y * z
}

func (d Dim3) String() string { return fmt.Sprintf("(%d,%d,%d)", d.X, d.Y, d.Z) }

// ParamBase is the byte offset in shared memory where kernel parameters are
// materialized, mirroring PTXPlus listings that read the first parameter at
// s[0x0010].
const ParamBase = 0x10

// DefaultSharedBytes is the per-CTA shared memory size when a launch does
// not specify one (16 KiB, the Fermi-era default the paper's baseline uses).
const DefaultSharedBytes = 16 * 1024

// DefaultWatchdog is the per-thread dynamic instruction ceiling when a
// launch does not specify one. Fault-free kernels in this repository run a
// few thousand dynamic instructions per thread at most, so one million
// indicates a runaway (hang) with a wide margin.
const DefaultWatchdog = 1_000_000

// Launch describes one kernel launch.
type Launch struct {
	// Prog is the assembled kernel.
	Prog *isa.Program
	// Grid and Block are the CTA grid and per-CTA thread extents.
	Grid, Block Dim3
	// Params are the kernel parameters, copied to each CTA's shared memory
	// at ParamBase (word k at byte ParamBase+4k).
	Params []uint32
	// SharedBytes is the per-CTA shared memory size; 0 means
	// DefaultSharedBytes.
	SharedBytes int
	// Watchdog is the per-thread dynamic instruction ceiling; 0 means
	// DefaultWatchdog. Exceeding it raises a TrapWatchdog (a hang).
	Watchdog int64
	// Inject, when non-nil, flips one destination-register bit at one
	// dynamic instruction of one thread.
	Inject *Injection
	// Tracer, when non-nil, observes every dynamic instruction.
	Tracer Tracer
	// WarpSize selects the intra-CTA scheduling model: 0 runs threads
	// serially to barrier boundaries (fast, the default); a positive value
	// executes threads in SIMT lockstep warps of that width with min-PC
	// reconvergence, like the paper's GPGPU-Sim substrate. Per-thread
	// dynamic traces — and therefore fault sites and outcomes — are
	// identical across modes for race-free kernels; the warp mode exists
	// to validate exactly that.
	WarpSize int
	// FirstCTA resumes the launch at the CTA with this linear index
	// (ctaid.z-major order, as Execute iterates). CTAs before it are skipped
	// entirely: the device must already hold their global-memory effects
	// (typically restored from a checkpoint snapshot), and their ThreadICnt
	// entries stay zero. CTAs do not share thread or shared-memory state, so
	// a resumed suffix is bit-identical to the same suffix of a full run.
	FirstCTA int
	// AfterCTA, when non-nil, is invoked after each CTA completes without a
	// trap, with the CTA's linear index and whether a persistent fault is
	// still live — armed or active with its injected thread not yet exited
	// (always false for transient or absent injections). Returning true
	// stops the launch early: remaining CTAs are not executed and the
	// Result reflects progress so far. Checkpoint capture and golden-state
	// convergence checks hook here; the faultLive flag lets convergence
	// checks refuse to early-exit while a scheduler-corrupting fault could
	// still diverge a later CTA (DESIGN.md §3.11).
	AfterCTA func(cta int, faultLive bool) bool
	// IntraRec, when non-nil, records intra-CTA (warp-granular) checkpoints
	// of this run; set it only on the golden traced run. See
	// WarpCheckpointRecorder.
	IntraRec *WarpCheckpointRecorder
	// Resume, when non-nil, starts the CTA at FirstCTA from this intra-CTA
	// snapshot instead of from a fresh thread/shared-memory state. The
	// snapshot must have been captured in that CTA with the same block
	// geometry and scheduling mode, and the device must hold the floor
	// CTA-boundary state with the snapshot's page delta already restored
	// (see WarpSnapshot.RestorePages).
	Resume *WarpSnapshot
	// Interpret disables the compiled execution plan (plan.go) and runs the
	// launch on the reference interpreter instead. The two paths are
	// bit-identical by construction (DESIGN.md §3.8); the switch exists as
	// the differential-testing escape hatch and costs one branch per CTA.
	Interpret bool
}

// InjectKind selects the fault model applied at the injection point.
type InjectKind uint8

// Injection kinds. The paper's baseline model is InjectDestValue; the others
// reproduce additional modes of SASSIFI-style injectors the paper discusses
// in its related work — multi-bit value corruption (what SEC-DED ECC cannot
// correct), effective-address corruption in the load-store unit, spatially
// correlated multi-bit patterns — plus the persistent stuck-at faults in
// parallelism-management state studied by the permanent-fault literature.
//
// Transient kinds fire once, at the retirement of dynamic instruction
// Injection.DynInst of the injected thread. Persistent kinds (Persistent()
// reports true) instead *activate* there and then hold their stuck value for
// the remainder of the run; the fault state is bound to the injected thread
// and dies with it.
const (
	// InjectDestValue flips one destination-register bit after writeback.
	InjectDestValue InjectKind = iota
	// InjectDestDouble flips two adjacent destination-register bits.
	InjectDestDouble
	// InjectMemAddr flips one bit of the effective address of the
	// instruction's memory operand before the access executes.
	InjectMemAddr
	// InjectDestByte flips every bit of the destination-register byte
	// containing Bit (the whole flag nibble for a predicate destination).
	InjectDestByte
	// InjectLaneCorrelated flips bit Bit of the instruction's destination
	// register in every thread of the injected thread's lane group — the
	// warp under SIMT scheduling, a 32-wide group otherwise.
	InjectLaneCorrelated
	// InjectStuckPred holds one predicate-register flag bit of the injected
	// thread at a stuck value from the activation point on. Bit packs
	// (stuck value, predicate register, flag bit); see persistState.
	InjectStuckPred
	// InjectStuckActiveMask holds the injected thread's active-mask lane at
	// a stuck value (Bit&1): stuck at 0 freezes the lane (it is never
	// scheduled again), stuck at 1 keeps it active through barriers (it
	// never parks).
	InjectStuckActiveMask
	// InjectStuckBarrier holds the injected thread's barrier-arrival state
	// at a stuck value (Bit&1): stuck at 1 makes it count as always
	// arrived (barriers release without it), stuck at 0 makes its arrival
	// never register (a barrier including it deadlocks).
	InjectStuckBarrier
)

// String names the kind.
func (k InjectKind) String() string {
	switch k {
	case InjectDestDouble:
		return "dest-double"
	case InjectMemAddr:
		return "mem-addr"
	case InjectDestByte:
		return "dest-byte"
	case InjectLaneCorrelated:
		return "lane-correlated"
	case InjectStuckPred:
		return "stuck-pred"
	case InjectStuckActiveMask:
		return "stuck-active-mask"
	case InjectStuckBarrier:
		return "stuck-barrier"
	}
	return "dest-value"
}

// Persistent reports whether the kind is a stuck-at fault that persists from
// its activation point to the end of the run (as opposed to a transient
// single-event upset at one retirement).
func (k InjectKind) Persistent() bool {
	return k == InjectStuckPred || k == InjectStuckActiveMask || k == InjectStuckBarrier
}

// Injection is a single fault to apply during execution at dynamic
// instruction DynInst (0-based, counted over all instructions thread Thread
// issues). Under the paper's baseline model (InjectDestValue) bit Bit of the
// instruction's destination register is flipped after writeback
// (Section II-C); see InjectKind for the extended models.
type Injection struct {
	Thread  int        // flat global thread id
	DynInst int64      // dynamic instruction index within the thread
	Bit     int        // bit position (register or effective address)
	Kind    InjectKind // fault model
}

// Tracer observes retired dynamic instructions during a run. Implementations
// must be cheap: the profiler records one entry per dynamic instruction.
type Tracer interface {
	// Record is called for every retired dynamic instruction: thread is the
	// flat global thread id, pc the static instruction index, and wrote
	// whether the instruction wrote a live destination register (and is
	// therefore a fault site).
	Record(thread, pc int, wrote bool)
}

// TrapKind classifies abnormal terminations.
type TrapKind uint8

// Trap kinds. All of them map to the paper's "other" outcome class
// (crashes and hangs).
const (
	TrapNone     TrapKind = iota
	TrapMemFault          // out-of-range or misaligned access
	TrapWatchdog          // per-thread dynamic instruction ceiling exceeded
	TrapDeadlock          // CTA barrier cannot be satisfied
	TrapInvalid           // malformed execution (bad operand shape, ...)
)

// String names the trap kind.
func (k TrapKind) String() string {
	switch k {
	case TrapMemFault:
		return "memfault"
	case TrapWatchdog:
		return "watchdog"
	case TrapDeadlock:
		return "deadlock"
	case TrapInvalid:
		return "invalid"
	}
	return "none"
}

// Trap describes an abnormal termination of a run.
type Trap struct {
	Kind   TrapKind
	Thread int // flat global thread id, -1 when not thread-specific
	PC     int
	Msg    string
}

func (t *Trap) Error() string {
	return fmt.Sprintf("gpusim: %s at thread %d pc %d: %s", t.Kind, t.Thread, t.PC, t.Msg)
}

// Result summarizes a completed (or trapped) run.
type Result struct {
	// Trap is nil for a clean run.
	Trap *Trap
	// ThreadICnt is the per-flat-thread dynamic instruction count (the
	// paper's iCnt). On a trapped run it reflects progress made so far;
	// threads of CTAs skipped via Launch.FirstCTA or an AfterCTA early stop
	// stay at zero.
	ThreadICnt []int64
	// TotalDyn is the sum of ThreadICnt.
	TotalDyn int64
	// CTAsExecuted is the number of CTAs the launch actually ran — smaller
	// than the grid when FirstCTA skipped a prefix, AfterCTA stopped the
	// launch early, or a trap aborted it.
	CTAsExecuted int
}

// Global memory page geometry. Pages are the copy-on-write granule: a Clone
// shares every page with its source and privatizes a page on the first store
// to it, so the cost of an injection run's device is proportional to the
// pages it actually dirties, not to the device's total footprint. PageSize is
// a multiple of the widest access (4 bytes), so a width-aligned access never
// crosses a page boundary.
const (
	pageShift = 12
	// PageSize is the copy-on-write granule of global memory in bytes.
	PageSize = 1 << pageShift
	pageMask = PageSize - 1
)

// Device is the simulated GPU memory system shared by all CTAs of a launch.
// Global memory is paged with copy-on-write semantics (see PageSize); use
// WriteWords/ReadWords, WriteBytes, AppendRange, Bytes and EqualRange to
// access it. The zero Device is not usable; construct with NewDevice.
type Device struct {
	// size is the byte length of global memory (the last page may extend
	// beyond it as padding; accesses are bounds-checked against size).
	size int
	// pages[i] backs bytes [i*PageSize, (i+1)*PageSize). A page is either
	// owned (private, writable) or shared (aliases another device's page
	// and must be privatized before the first store).
	pages [][]byte
	owned []bool
	// dirty marks owned pages written since the last ResetFrom; dirtyIdx
	// lists them so a reset touches only what a run actually changed.
	dirty    []bool
	dirtyIdx []int32
	// pagesCopied counts page-sized copies performed (copy-on-write
	// privatizations plus ResetFrom restores) since the last
	// TakePagesCopied.
	pagesCopied int64
	// src is the frozen image this device was cloned from or last reset
	// from. ResetFrom uses it to detect a source switch (resetting a pooled
	// device from a different checkpoint snapshot), which requires restoring
	// every owned page, not just the dirty ones.
	src *Device
	// srcSwitches counts ResetFrom calls that switched sources (the slow
	// full-restore path) since the last TakeSrcSwitches. Campaign stats
	// report this as AffinityResets: snapshot-affine scheduling exists to
	// keep it near the number of distinct snapshots per worker.
	srcSwitches int64

	// Const is the read-only constant segment.
	Const []byte
}

// NewDevice allocates a device with the given global memory size in bytes.
// All pages start owned (private) and zeroed.
func NewDevice(globalBytes int) *Device {
	n := (globalBytes + PageSize - 1) / PageSize
	backing := make([]byte, n*PageSize)
	d := &Device{
		size:  globalBytes,
		pages: make([][]byte, n),
		owned: make([]bool, n),
		dirty: make([]bool, n),
	}
	for i := range d.pages {
		d.pages[i] = backing[i*PageSize : (i+1)*PageSize]
		d.owned[i] = true
	}
	return d
}

// Size is the byte length of global memory.
func (d *Device) Size() int { return d.size }

// Clone returns a copy-on-write snapshot of the device: the clone shares
// every global-memory page with the receiver, and either side privatizes a
// page on its first subsequent store. Cloning therefore freezes the
// receiver's current pages (the receiver also loses ownership, so its own
// next store to a page copies it first). The constant segment is deep-copied.
// Injection campaigns run each experiment on a clone (or on a pooled device
// reset from the pristine image; see ResetFrom).
func (d *Device) Clone() *Device {
	d.freeze()
	nd := &Device{
		size:  d.size,
		pages: append([][]byte(nil), d.pages...),
		owned: make([]bool, len(d.pages)),
		dirty: make([]bool, len(d.pages)),
		src:   d,
	}
	if d.Const != nil {
		nd.Const = append([]byte(nil), d.Const...)
	}
	return nd
}

// freeze releases ownership of every page, making the current storage
// immutable shared state. Idempotent, and write-free once frozen so that
// concurrent Clone/ResetFrom calls against a frozen pristine image are safe.
func (d *Device) freeze() {
	for i, o := range d.owned {
		if o {
			d.owned[i] = false
			d.dirty[i] = false
		}
	}
	if len(d.dirtyIdx) > 0 {
		d.dirtyIdx = d.dirtyIdx[:0]
	}
}

// privatize makes page p writable (copying shared storage on first
// ownership) and records it as dirty for the next ResetFrom.
func (d *Device) privatize(p int) {
	if !d.owned[p] {
		np := make([]byte, PageSize)
		copy(np, d.pages[p])
		d.pages[p] = np
		d.owned[p] = true
		d.pagesCopied++
	}
	d.dirty[p] = true
	d.dirtyIdx = append(d.dirtyIdx, int32(p))
}

// ResetFrom restores the device to the content of src, a frozen same-size
// image — typically the device this one was cloned from, or a checkpoint
// snapshot taken during the golden run. When src is the device's current
// source, only pages dirtied since the last reset are copied; already-private
// clean pages are left in place, so a pooled device converges to one page
// copy per page a run actually writes. Resetting from a *different* source
// restores every owned page (a clean private page may still hold the old
// source's content). src must not be written while devices reset from it
// remain in use.
func (d *Device) ResetFrom(src *Device) {
	if d.size != src.size {
		panic(fmt.Sprintf("gpusim: ResetFrom size mismatch: %d vs %d", d.size, src.size))
	}
	src.freeze()
	if d.src != src {
		for p := range d.pages {
			if d.owned[p] {
				copy(d.pages[p], src.pages[p])
				d.dirty[p] = false
				d.pagesCopied++
			} else {
				d.pages[p] = src.pages[p]
			}
		}
		d.dirtyIdx = d.dirtyIdx[:0]
		d.src = src
		d.srcSwitches++
		return
	}
	for _, p := range d.dirtyIdx {
		copy(d.pages[p], src.pages[p])
		d.dirty[p] = false
		d.pagesCopied++
	}
	d.dirtyIdx = d.dirtyIdx[:0]
	// Re-point still-shared pages at src's storage: after arbitrary
	// clone/reset chains every shared page must alias the reset source.
	for p := range d.pages {
		if !d.owned[p] {
			d.pages[p] = src.pages[p]
		}
	}
}

// TakePagesCopied returns the number of page copies (copy-on-write
// privatizations plus reset restores) performed since the last call, and
// resets the counter. Campaign statistics harvest this per pooled device.
func (d *Device) TakePagesCopied() int64 {
	n := d.pagesCopied
	d.pagesCopied = 0
	return n
}

// TakeSrcSwitches returns the number of ResetFrom source switches (full
// restores of every owned page, as opposed to dirty-only fast resets)
// since the last call, and resets the counter.
func (d *Device) TakeSrcSwitches() int64 {
	n := d.srcSwitches
	d.srcSwitches = 0
	return n
}

// Fingerprint returns a 64-bit content hash of the device: global-memory
// size and page contents plus the constant segment. Two devices built by
// the same deterministic initialization have equal fingerprints; the
// prepared-target cache folds it into its key so that targets that agree
// on name and geometry but differ in initial memory (distinct inputs)
// never share golden state. Cost is one HashPage pass per page — far
// cheaper than the golden run the cache amortizes.
func (d *Device) Fingerprint() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h = (h ^ uint64(d.size)) * prime
	for p := range d.pages {
		h = (h ^ d.HashPage(p)) * prime
	}
	h = (h ^ uint64(len(d.Const))) * prime
	for i := 0; i+4 <= len(d.Const); i += 4 {
		h = (h ^ uint64(getWord(d.Const, i))) * prime
	}
	for i := len(d.Const) &^ 3; i < len(d.Const); i++ {
		h = (h ^ uint64(d.Const[i])) * prime
	}
	return h
}

// NumPages is the number of global-memory pages (see PageSize).
func (d *Device) NumPages() int { return len(d.pages) }

// DirtyPages returns the indices of pages written since the last ResetFrom
// (or TakeDirtyPages). The returned slice aliases internal state: treat it
// as read-only and invalid after the next store or reset.
func (d *Device) DirtyPages() []int32 { return d.dirtyIdx }

// TakeDirtyPages appends the indices of pages written since the last harvest
// to buf[:0] and re-arms dirty tracking without copying anything: a later
// store to the same page reports it again. This is how the golden run's
// checkpoint recorder observes per-CTA write sets. It breaks the dirty-page
// bookkeeping ResetFrom relies on, so it must only be used on devices that
// are never reset (the golden device is executed once and discarded).
func (d *Device) TakeDirtyPages(buf []int32) []int32 {
	buf = append(buf[:0], d.dirtyIdx...)
	for _, p := range buf {
		d.dirty[p] = false
	}
	d.dirtyIdx = d.dirtyIdx[:0]
	return buf
}

// HashPage returns a 64-bit hash of page p's content, folding eight bytes per
// step. It identifies pages whose content matches the golden run's; a
// collision (probability ~2^-64 per comparison for independent contents)
// would misclassify one injection outcome — see DESIGN.md §3.2.
//
// Each word is passed through a full-avalanche finalizer (murmur3 fmix64)
// before the FNV-style fold. Folding raw words would be unsound: the fold's
// multiply only diffuses deltas upward, so a difference confined to a word's
// top bits survives as ±2^k and an equal top-bit delta in a later word
// cancels it — e.g. the same wrong 32-bit value stored at two aligned
// offsets 32 bytes apart hashes identically to the clean page.
func (d *Device) HashPage(p int) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	pg := d.pages[p]
	for i := 0; i < PageSize; i += 8 {
		w := binary.LittleEndian.Uint64(pg[i:])
		w ^= w >> 33
		w *= 0xff51afd7ed558ccd
		w ^= w >> 33
		w *= 0xc4ceb9fe1a85ec53
		w ^= w >> 33
		h = (h ^ w) * prime
	}
	return h
}

// loadMem reads a w-byte little-endian value at addr. The caller has
// bounds- and alignment-checked the access, so it cannot cross a page.
func (d *Device) loadMem(addr, w int) uint32 {
	pg := d.pages[addr>>pageShift]
	off := addr & pageMask
	switch w {
	case 1:
		return uint32(pg[off])
	case 2:
		return uint32(pg[off]) | uint32(pg[off+1])<<8
	default:
		return getWord(pg, off)
	}
}

// storeMem writes a w-byte little-endian value at addr, privatizing the page
// on first write. The caller has bounds- and alignment-checked the access.
func (d *Device) storeMem(addr, w int, v uint32) {
	p := addr >> pageShift
	if !d.dirty[p] {
		d.privatize(p)
	}
	pg := d.pages[p]
	off := addr & pageMask
	switch w {
	case 1:
		pg[off] = byte(v)
	case 2:
		pg[off] = byte(v)
		pg[off+1] = byte(v >> 8)
	default:
		putWord(pg, off, v)
	}
}

// checkRange panics on out-of-device host accesses (guest accesses trap
// instead; see internal/gpusim load/store).
func (d *Device) checkRange(off, n int) {
	if off < 0 || n < 0 || off+n > d.size {
		panic(fmt.Sprintf("gpusim: device access [%d, %d) outside %d bytes", off, off+n, d.size))
	}
}

// WriteWords stores 32-bit words into global memory at a byte offset.
func (d *Device) WriteWords(byteOff int, words []uint32) {
	d.checkRange(byteOff, 4*len(words))
	for i, w := range words {
		d.storeMem(byteOff+4*i, 4, w)
	}
}

// ReadWords loads n 32-bit words from global memory at a byte offset.
func (d *Device) ReadWords(byteOff, n int) []uint32 {
	d.checkRange(byteOff, 4*n)
	out := make([]uint32, n)
	for i := range out {
		out[i] = d.loadMem(byteOff+4*i, 4)
	}
	return out
}

// WriteBytes stores raw bytes into global memory at a byte offset.
func (d *Device) WriteBytes(off int, b []byte) {
	d.checkRange(off, len(b))
	for len(b) > 0 {
		p := off >> pageShift
		if !d.dirty[p] {
			d.privatize(p)
		}
		po := off & pageMask
		n := copy(d.pages[p][po:], b)
		b = b[n:]
		off += n
	}
}

// AppendRange appends n bytes of global memory starting at off to dst.
func (d *Device) AppendRange(dst []byte, off, n int) []byte {
	d.checkRange(off, n)
	for n > 0 {
		pg := d.pages[off>>pageShift]
		po := off & pageMask
		c := PageSize - po
		if c > n {
			c = n
		}
		dst = append(dst, pg[po:po+c]...)
		off += c
		n -= c
	}
	return dst
}

// Bytes returns a flat copy of global memory.
func (d *Device) Bytes() []byte {
	return d.AppendRange(make([]byte, 0, d.size), 0, d.size)
}

// EqualRange reports whether global memory starting at off matches want,
// without materializing a copy — the hot path of golden-output comparison.
func (d *Device) EqualRange(off int, want []byte) bool {
	d.checkRange(off, len(want))
	for len(want) > 0 {
		pg := d.pages[off>>pageShift]
		po := off & pageMask
		c := PageSize - po
		if c > len(want) {
			c = len(want)
		}
		if !bytes.Equal(pg[po:po+c], want[:c]) {
			return false
		}
		want = want[c:]
		off += c
	}
	return true
}

func putWord(mem []byte, off int, w uint32) {
	mem[off] = byte(w)
	mem[off+1] = byte(w >> 8)
	mem[off+2] = byte(w >> 16)
	mem[off+3] = byte(w >> 24)
}

func getWord(mem []byte, off int) uint32 {
	return uint32(mem[off]) | uint32(mem[off+1])<<8 |
		uint32(mem[off+2])<<16 | uint32(mem[off+3])<<24
}
