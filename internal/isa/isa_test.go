package isa

import (
	"strings"
	"testing"
)

func TestDataTypeBits(t *testing.T) {
	cases := []struct {
		t    DataType
		bits int
	}{
		{TypeU8, 8}, {TypeS8, 8}, {TypeB8, 8},
		{TypeU16, 16}, {TypeS16, 16}, {TypeB16, 16},
		{TypeU32, 32}, {TypeS32, 32}, {TypeB32, 32}, {TypeF32, 32},
		{TypeU64, 64}, {TypeS64, 64}, {TypeF64, 64},
		{TypePred, PredBits}, {TypeNone, 32},
	}
	for _, c := range cases {
		if got := c.t.Bits(); got != c.bits {
			t.Errorf("%v.Bits() = %d, want %d", c.t, got, c.bits)
		}
	}
}

func TestDataTypeSignedFloat(t *testing.T) {
	for _, s := range []DataType{TypeS8, TypeS16, TypeS32, TypeS64} {
		if !s.Signed() {
			t.Errorf("%v should be signed", s)
		}
	}
	for _, u := range []DataType{TypeU8, TypeU32, TypeB32, TypeF32, TypePred} {
		if u.Signed() {
			t.Errorf("%v should not be signed", u)
		}
	}
	if !TypeF32.Float() || !TypeF64.Float() {
		t.Error("f32/f64 should be float")
	}
	if TypeU32.Float() {
		t.Error("u32 should not be float")
	}
}

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{Reg{RegGPR, 5}, "$r5"},
		{Reg{RegGPR, SinkReg}, "$o127"},
		{Reg{RegGPR, ZeroReg}, "$r124"},
		{Reg{RegPred, 0}, "$p0"},
		{Reg{RegOfs, 2}, "$ofs2"},
		{Reg{RegSpecial, SpecTidX}, "%tid.x"},
		{Reg{RegSpecial, SpecNCtaidY}, "%nctaid.y"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg.String() = %q, want %q", got, c.want)
		}
	}
}

func TestRegBits(t *testing.T) {
	if got := (Reg{RegPred, 1}).Bits(); got != PredBits {
		t.Errorf("pred bits = %d, want %d", got, PredBits)
	}
	if got := (Reg{RegGPR, 3}).Bits(); got != 32 {
		t.Errorf("gpr bits = %d, want 32", got)
	}
	if got := (Reg{RegOfs, 0}).Bits(); got != 32 {
		t.Errorf("ofs bits = %d, want 32", got)
	}
}

func TestOpcodeNames(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		name := op.String()
		if name == "" || strings.HasPrefix(name, "op(") {
			t.Errorf("opcode %d has no name", op)
		}
		back, ok := OpcodeByName[name]
		if !ok || back != op {
			t.Errorf("OpcodeByName[%q] = %v, want %v", name, back, op)
		}
	}
}

func TestOpcodeHasDest(t *testing.T) {
	noDest := []Opcode{OpNop, OpSt, OpBra, OpBar, OpSsy, OpRet, OpRetp, OpExit}
	for _, op := range noDest {
		if op.HasDest() {
			t.Errorf("%v should have no destination", op)
		}
	}
	for _, op := range []Opcode{OpMov, OpLd, OpAdd, OpSet, OpRcp, OpCvt} {
		if !op.HasDest() {
			t.Errorf("%v should have a destination", op)
		}
	}
}

func TestOpcodeKind(t *testing.T) {
	cases := map[Opcode]Kind{
		OpLd: KindMemory, OpSt: KindMemory,
		OpAdd: KindArith, OpMad: KindArith, OpSet: KindArith,
		OpAnd: KindLogic, OpShl: KindLogic,
		OpRcp: KindSFU, OpSqrt: KindSFU,
		OpBra: KindControl, OpBar: KindControl,
	}
	for op, want := range cases {
		if got := op.Kind(); got != want {
			t.Errorf("%v.Kind() = %v, want %v", op, got, want)
		}
	}
}

func TestCmpRoundTrip(t *testing.T) {
	for c, name := range map[CmpOp]string{
		CmpEq: "eq", CmpNe: "ne", CmpLt: "lt", CmpLe: "le",
		CmpGt: "gt", CmpGe: "ge", CmpLo: "lo", CmpLs: "ls",
		CmpHi: "hi", CmpHs: "hs",
	} {
		if c.String() != name {
			t.Errorf("%v.String() = %q, want %q", c, c.String(), name)
		}
		if CmpByName[name] != c {
			t.Errorf("CmpByName[%q] = %v, want %v", name, CmpByName[name], c)
		}
	}
}

func TestOperandString(t *testing.T) {
	cases := []struct {
		o    Operand
		want string
	}{
		{R(3), "$r3"},
		{func() Operand { o := R(3); o.Neg = true; return o }(), "-$r3"},
		{func() Operand { o := R(1); o.Half = HalfLo; return o }(), "$r1.lo"},
		{func() Operand { o := R(1); o.Half = HalfHi; return o }(), "$r1.hi"},
		{P(0), "$p0"},
		{Ofs(2), "$ofs2"},
		{Imm(0x10), "0x00000010"},
		{MemDirect(SpaceShared, 0x10), "s[0x0010]"},
		{MemIndirect(SpaceShared, Reg{RegOfs, 2}, 0x40), "s[$ofs2+0x0040]"},
		{MemIndirect(SpaceGlobal, Reg{RegGPR, 2}, 0), "[$r2]"},
		{Special(SpecCtaidX), "%ctaid.x"},
	}
	for _, c := range cases {
		if got := c.o.String(); got != c.want {
			t.Errorf("Operand.String() = %q, want %q", got, c.want)
		}
	}
}

func TestGuardString(t *testing.T) {
	g := Guard{Reg: Reg{RegPred, 0}, Cond: CmpEq}
	if got := g.String(); got != "@$p0.eq " {
		t.Errorf("guard = %q", got)
	}
	if (Guard{}).String() != "" {
		t.Error("inactive guard should render empty")
	}
	if (Guard{}).Active() {
		t.Error("zero guard should be inactive")
	}
}

func TestDestReg(t *testing.T) {
	mk := func(op Opcode, dst Operand) *Instruction {
		return &Instruction{Op: op, Dst: dst}
	}
	if _, _, ok := mk(OpSt, MemDirect(SpaceGlobal, 0)).DestReg(); ok {
		t.Error("st should have no destination register")
	}
	if _, _, ok := mk(OpBra, Operand{}).DestReg(); ok {
		t.Error("bra should have no destination register")
	}
	if _, _, ok := mk(OpMov, MemDirect(SpaceShared, 4)).DestReg(); ok {
		t.Error("mov-to-memory should have no destination register")
	}
	if _, _, ok := mk(OpMov, R(ZeroReg)).DestReg(); ok {
		t.Error("write to zero register is not a fault site")
	}
	if _, _, ok := mk(OpMov, R(SinkReg)).DestReg(); ok {
		t.Error("write to sink is not a fault site")
	}
	r, bits, ok := mk(OpAdd, R(7)).DestReg()
	if !ok || r != (Reg{RegGPR, 7}) || bits != 32 {
		t.Errorf("add dest = %v/%d/%v", r, bits, ok)
	}
	// Dual destination: predicate wins.
	in := &Instruction{Op: OpSet, Dst: R(SinkReg), DstPred: Reg{RegPred, 1}}
	r, bits, ok = in.DestReg()
	if !ok || r != (Reg{RegPred, 1}) || bits != PredBits {
		t.Errorf("dual dest = %v/%d/%v", r, bits, ok)
	}
	// Plain predicate destination.
	in = &Instruction{Op: OpSetp, Dst: P(2)}
	r, bits, ok = in.DestReg()
	if !ok || r.Class != RegPred || bits != PredBits {
		t.Errorf("setp dest = %v/%d/%v", r, bits, ok)
	}
}

func TestProgramValidate(t *testing.T) {
	good := &Program{
		Name: "g",
		Instrs: []Instruction{
			{PC: 0, Op: OpBra, Target: "end"},
			{PC: 1, Op: OpExit, Label: "end"},
		},
		Labels: map[string]int{"end": 1},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}

	badPC := &Program{Name: "b", Instrs: []Instruction{{PC: 5, Op: OpNop}}, Labels: map[string]int{}}
	if err := badPC.Validate(); err == nil {
		t.Error("non-sequential PC accepted")
	}

	badLabel := &Program{Name: "b", Instrs: []Instruction{{PC: 0, Op: OpBra, Target: "nope"}}, Labels: map[string]int{}}
	if err := badLabel.Validate(); err == nil {
		t.Error("undefined branch target accepted")
	}

	badBar := &Program{Name: "b", Instrs: []Instruction{{PC: 0, Op: OpBar}}, Labels: map[string]int{}}
	if err := badBar.Validate(); err == nil {
		t.Error("bar without immediate accepted")
	}

	badGuard := &Program{Name: "b", Instrs: []Instruction{
		{PC: 0, Op: OpNop, Guard: Guard{Reg: Reg{RegGPR, 0}, Cond: CmpEq}},
	}, Labels: map[string]int{}}
	if err := badGuard.Validate(); err == nil {
		t.Error("guard on GPR accepted")
	}

	badLabelRange := &Program{Name: "b", Instrs: []Instruction{{PC: 0, Op: OpNop}},
		Labels: map[string]int{"x": 9}}
	if err := badLabelRange.Validate(); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestOpcodeSequential(t *testing.T) {
	// Control transfers and scheduling points end a straight-line run;
	// everything else — including ssy and nop, which IsControl lists but
	// which fall through — is sequential.
	for _, op := range []Opcode{OpBra, OpBar, OpRet, OpRetp, OpExit} {
		if op.Sequential() {
			t.Errorf("%v.Sequential() = true, want false", op)
		}
	}
	for _, op := range []Opcode{OpAdd, OpMov, OpLd, OpSt, OpSet, OpSelp, OpNop, OpSsy} {
		if !op.Sequential() {
			t.Errorf("%v.Sequential() = false, want true", op)
		}
	}
}

func TestStraightLen(t *testing.T) {
	mk := func() *Program {
		return &Program{
			Name: "s",
			Instrs: []Instruction{
				{PC: 0, Op: OpAdd, Dst: R(1), Srcs: []Operand{R(1), R(2)}},
				{PC: 1, Op: OpMov, Dst: R(2), Srcs: []Operand{R(1)}},
				{PC: 2, Op: OpBra, Target: "end"},
				{PC: 3, Op: OpSsy, Target: "end"},
				{PC: 4, Op: OpSt, Dst: MemDirect(SpaceShared, 0), Srcs: []Operand{R(1)}},
				{PC: 5, Op: OpExit, Label: "end"},
			},
			Labels: map[string]int{"end": 5},
		}
	}
	want := []int{2, 1, 0, 2, 1, 0}
	// The forward-scan fallback (unvalidated program) and the table built
	// by Validate must agree.
	cold := mk()
	for pc, w := range want {
		if got := cold.StraightLen(pc); got != w {
			t.Errorf("unvalidated StraightLen(%d) = %d, want %d", pc, got, w)
		}
	}
	p := mk()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for pc, w := range want {
		if got := p.StraightLen(pc); got != w {
			t.Errorf("validated StraightLen(%d) = %d, want %d", pc, got, w)
		}
	}
	if p.StraightLen(-1) != 0 || p.StraightLen(len(p.Instrs)) != 0 {
		t.Error("out-of-range StraightLen should be 0")
	}
}

func TestInstructionString(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: OpAdd, DType: TypeU32, SType: TypeU32,
			Dst: R(1), Srcs: []Operand{R(2), Imm(4)}},
			"add.u32 $r1, $r2, 0x00000004"},
		{Instruction{Op: OpSet, Cmp: CmpEq, DType: TypeS32, SType: TypeS32,
			Dst: R(SinkReg), DstPred: Reg{RegPred, 0}, Srcs: []Operand{R(6), R(1)}},
			"set.eq.s32 $p0/$o127, $r6, $r1"},
		{Instruction{Op: OpBra, Target: "loop",
			Guard: Guard{Reg: Reg{RegPred, 0}, Cond: CmpNe}},
			"@$p0.ne bra loop"},
		{Instruction{Op: OpBar, Srcs: []Operand{Imm(0)}},
			"bar 0x00000000"},
		{Instruction{Op: OpExit}, "exit"},
		{Instruction{Op: OpNop, Label: "l1"}, "l1: nop"},
		{Instruction{Op: OpLd, DType: TypeF32, SType: TypeF32,
			Dst: R(5), Srcs: []Operand{MemIndirect(SpaceGlobal, Reg{RegGPR, 2}, 4)}},
			"ld.global.f32 $r5, [$r2+0x0004]"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
