package isa

import (
	"fmt"
	"strings"
)

// Half selects a 16-bit half of a 32-bit register operand, as used by
// PTXPlus wide multiplies ("mul.wide.u16 $r4, $r1.lo, $r3.hi").
type Half uint8

// Half selectors.
const (
	HalfNone Half = iota
	HalfLo
	HalfHi
)

// OperandKind discriminates Operand.
type OperandKind uint8

// Operand kinds.
const (
	OpdNone OperandKind = iota
	OpdReg              // register, possibly negated or half-selected
	OpdImm              // 32-bit immediate
	OpdMem              // memory reference
)

// Operand is one instruction operand.
//
// The zero value is "no operand". Register operands may carry a negation
// ("-$r3") and a half selector ("$r1.lo"). Memory operands address one of the
// simulator's spaces with an optional base register plus a constant offset:
// s[0x0010], s[$ofs2+0x0040], [$r2], g[$r4+0x10].
type Operand struct {
	Kind  OperandKind
	Reg   Reg      // OpdReg: the register; OpdMem: base register if BaseValid
	Neg   bool     // OpdReg: operand value is negated
	Half  Half     // OpdReg: 16-bit half selection
	Imm   uint32   // OpdImm: value; OpdMem: constant offset
	Space MemSpace // OpdMem: address space
	// BaseValid reports whether the memory reference has a register base.
	BaseValid bool
}

// R builds a GPR operand $rN.
func R(n int) Operand { return Operand{Kind: OpdReg, Reg: Reg{RegGPR, uint8(n)}} }

// P builds a predicate register operand $pN.
func P(n int) Operand { return Operand{Kind: OpdReg, Reg: Reg{RegPred, uint8(n)}} }

// Ofs builds an offset register operand $ofsN.
func Ofs(n int) Operand { return Operand{Kind: OpdReg, Reg: Reg{RegOfs, uint8(n)}} }

// Special builds a special-register operand such as %tid.x.
func Special(idx int) Operand {
	return Operand{Kind: OpdReg, Reg: Reg{RegSpecial, uint8(idx)}}
}

// Imm builds an immediate operand.
func Imm(v uint32) Operand { return Operand{Kind: OpdImm, Imm: v} }

// MemDirect builds a memory operand space[imm].
func MemDirect(space MemSpace, imm uint32) Operand {
	return Operand{Kind: OpdMem, Space: space, Imm: imm}
}

// MemIndirect builds a memory operand space[base+imm].
func MemIndirect(space MemSpace, base Reg, imm uint32) Operand {
	return Operand{Kind: OpdMem, Space: space, Reg: base, Imm: imm, BaseValid: true}
}

// IsReg reports whether the operand is a register of the given class.
func (o Operand) IsReg(class RegClass) bool {
	return o.Kind == OpdReg && o.Reg.Class == class
}

// String renders the operand in assembly syntax.
func (o Operand) String() string {
	switch o.Kind {
	case OpdReg:
		var b strings.Builder
		if o.Neg {
			b.WriteByte('-')
		}
		b.WriteString(o.Reg.String())
		switch o.Half {
		case HalfLo:
			b.WriteString(".lo")
		case HalfHi:
			b.WriteString(".hi")
		}
		return b.String()
	case OpdImm:
		return fmt.Sprintf("0x%08x", o.Imm)
	case OpdMem:
		prefix := o.Space.String()
		if o.Space == SpaceGlobal {
			// Global references conventionally use bare brackets in
			// PTXPlus listings; the space comes from the ld/st suffix.
			prefix = ""
		}
		if o.BaseValid {
			if o.Imm != 0 {
				return fmt.Sprintf("%s[%s+0x%04x]", prefix, o.Reg, o.Imm)
			}
			return fmt.Sprintf("%s[%s]", prefix, o.Reg)
		}
		return fmt.Sprintf("%s[0x%04x]", prefix, o.Imm)
	}
	return "<none>"
}

// Guard is the optional predicate guard on an instruction:
// "@$p0.eq bra target" executes the branch when predicate $p0's flags
// satisfy the eq condition; ".ne" when they do not; and so on.
type Guard struct {
	Reg  Reg   // predicate register; Valid() false means unguarded
	Cond CmpOp // condition code evaluated against the flags
	Not  bool  // "@!$p0" negated guard (plain PTX style)
}

// Active reports whether a guard is present.
func (g Guard) Active() bool { return g.Reg.Valid() }

// String renders the guard prefix, including the trailing space, or "".
func (g Guard) String() string {
	if !g.Active() {
		return ""
	}
	var b strings.Builder
	b.WriteByte('@')
	if g.Not {
		b.WriteByte('!')
	}
	b.WriteString(g.Reg.String())
	if g.Cond != CmpNone {
		b.WriteByte('.')
		b.WriteString(g.Cond.String())
	}
	b.WriteByte(' ')
	return b.String()
}
