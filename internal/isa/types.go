// Package isa defines the PTXPlus-flavoured instruction set executed by the
// gpusim functional simulator.
//
// The dialect mirrors the register and addressing idioms of GPGPU-Sim's
// PTXPlus mode, which the reproduced paper (Nie et al., MICRO 2018) uses for
// fault injection: general-purpose registers $r0..$r127 (with $r124 wired to
// zero and $o127 acting as a write sink), 4-bit predicate registers $p0..$p7,
// address-offset registers $ofs0..$ofs3, special registers such as %tid.x and
// %ctaid.x, shared/parameter memory accessed as s[imm] or s[$ofsN+imm], and
// predicated control flow such as "@$p0.eq bra l0x00000228".
package isa

import "fmt"

// DataType is the operand interpretation suffix of an instruction
// (".u32", ".s32", ".f32", ".pred", ...).
type DataType uint8

// Data types supported by the simulator. All register storage is 32-bit;
// narrower types mask on use, and F32 values are stored via math.Float32bits.
const (
	TypeNone DataType = iota
	TypeU8
	TypeU16
	TypeU32
	TypeU64
	TypeS8
	TypeS16
	TypeS32
	TypeS64
	TypeB8
	TypeB16
	TypeB32
	TypeF32
	TypeF64
	TypePred
)

var typeNames = map[DataType]string{
	TypeNone: "", TypeU8: "u8", TypeU16: "u16", TypeU32: "u32", TypeU64: "u64",
	TypeS8: "s8", TypeS16: "s16", TypeS32: "s32", TypeS64: "s64",
	TypeB8: "b8", TypeB16: "b16", TypeB32: "b32",
	TypeF32: "f32", TypeF64: "f64", TypePred: "pred",
}

// String returns the assembly suffix spelling, e.g. "u32".
func (t DataType) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Bits reports the width in bits of a value of this type.
func (t DataType) Bits() int {
	switch t {
	case TypeU8, TypeS8, TypeB8:
		return 8
	case TypeU16, TypeS16, TypeB16:
		return 16
	case TypeU64, TypeS64, TypeF64:
		return 64
	case TypePred:
		return PredBits
	case TypeNone:
		return 32
	default:
		return 32
	}
}

// Signed reports whether the type is interpreted as two's complement.
func (t DataType) Signed() bool {
	switch t {
	case TypeS8, TypeS16, TypeS32, TypeS64:
		return true
	}
	return false
}

// Float reports whether the type is a floating-point type.
func (t DataType) Float() bool { return t == TypeF32 || t == TypeF64 }

// PredBits is the width of a predicate register. PTXPlus predicates hold four
// condition flags: zero (bit 0), sign (bit 1), carry (bit 2) and overflow
// (bit 3). The reproduced paper's bit-wise pruning stage exploits the fact
// that only the zero flag feeds branch conditions in the studied workloads.
const PredBits = 4

// Predicate flag bit positions within a predicate register.
const (
	FlagZero = 1 << iota
	FlagSign
	FlagCarry
	FlagOverflow
)

// RegClass partitions the register namespace.
type RegClass uint8

// Register classes.
const (
	RegNone    RegClass = iota
	RegGPR              // $r0..$r127: 32-bit general purpose
	RegPred             // $p0..$p7: 4-bit condition-flag registers
	RegOfs              // $ofs0..$ofs3: 32-bit address-offset registers
	RegSpecial          // %tid.x etc: read-only thread/grid coordinates
)

// Indices of special registers within RegSpecial.
const (
	SpecTidX = iota
	SpecTidY
	SpecTidZ
	SpecCtaidX
	SpecCtaidY
	SpecCtaidZ
	SpecNTidX
	SpecNTidY
	SpecNTidZ
	SpecNCtaidX
	SpecNCtaidY
	SpecNCtaidZ
	NumSpecials
)

var specialNames = [NumSpecials]string{
	"%tid.x", "%tid.y", "%tid.z",
	"%ctaid.x", "%ctaid.y", "%ctaid.z",
	"%ntid.x", "%ntid.y", "%ntid.z",
	"%nctaid.x", "%nctaid.y", "%nctaid.z",
}

// Well-known GPR indices with hardwired PTXPlus semantics.
const (
	// ZeroReg ($r124) always reads zero; writes are discarded.
	ZeroReg = 124
	// SinkReg ($o127, encoded as a GPR) discards writes; used as the value
	// half of dual "set" destinations such as "$p0|$o127".
	SinkReg = 127
	// NumGPRs is the size of the general-purpose register file per thread.
	NumGPRs = 128
	// NumPreds is the number of predicate registers per thread.
	NumPreds = 8
	// NumOfs is the number of address-offset registers per thread.
	NumOfs = 4
)

// Reg identifies one architectural register.
type Reg struct {
	Class RegClass
	Index uint8
}

// String returns the assembly spelling ("$r5", "$p0", "$ofs2", "%tid.x").
func (r Reg) String() string {
	switch r.Class {
	case RegGPR:
		if r.Index == SinkReg {
			return "$o127"
		}
		return fmt.Sprintf("$r%d", r.Index)
	case RegPred:
		return fmt.Sprintf("$p%d", r.Index)
	case RegOfs:
		return fmt.Sprintf("$ofs%d", r.Index)
	case RegSpecial:
		if int(r.Index) < len(specialNames) {
			return specialNames[r.Index]
		}
		return fmt.Sprintf("%%spec%d", r.Index)
	}
	return "$none"
}

// Bits reports the architectural width of the register for fault-site
// accounting: predicate registers contribute 4 bits per dynamic write,
// everything else 32 (Eq. 1 of the paper counts bit(t, i) per destination).
func (r Reg) Bits() int {
	if r.Class == RegPred {
		return PredBits
	}
	return 32
}

// Valid reports whether r names an actual register.
func (r Reg) Valid() bool { return r.Class != RegNone }

// MemSpace identifies an address space.
type MemSpace uint8

// Address spaces. Param aliases Shared: PTXPlus passes kernel parameters in
// the low words of shared memory (the paper's listings read them as
// s[0x0010], s[0x0030], ...).
const (
	SpaceNone MemSpace = iota
	SpaceGlobal
	SpaceShared
	SpaceConst
	SpaceLocal
)

// String returns the bracket prefix letter used in assembly ("g", "s", "c", "l").
func (s MemSpace) String() string {
	switch s {
	case SpaceGlobal:
		return "g"
	case SpaceShared:
		return "s"
	case SpaceConst:
		return "c"
	case SpaceLocal:
		return "l"
	}
	return "?"
}
