package isa

import (
	"fmt"
	"strings"
)

// Instruction is one static instruction of a kernel program.
type Instruction struct {
	// PC is the static index of the instruction within its Program.
	PC int
	// Label names this instruction as a branch target ("l0x00000228: ...").
	Label string
	// Guard is the optional "@$pN.cc" predication.
	Guard Guard
	// Op is the operation.
	Op Opcode
	// Cmp is the comparison selector for set/setp ("set.eq.s32.s32").
	Cmp CmpOp
	// DType and SType are the destination and source type suffixes. For
	// single-suffix instructions ("add.u32") SType equals DType.
	DType, SType DataType
	// Wide marks mul.wide / mad.wide (16x16->32 multiply).
	Wide bool
	// Half marks the ".half" encoding-size modifier (no semantic effect).
	Half bool
	// Sat marks ".sat" saturation (accepted; semantics: clamp f32 to [0,1]).
	Sat bool
	// Dst is the destination operand (register or memory for st/mov-to-mem).
	Dst Operand
	// DstPred is the predicate half of dual destinations:
	// "set.eq.s32.s32 $p0/$o127, ..." writes flags to DstPred and the
	// comparison value to Dst ($o127 discards it). "and.b32 $p0|$o127, ..."
	// likewise. Invalid when unused.
	DstPred Reg
	// Srcs are the source operands in order.
	Srcs []Operand
	// Target is the label operand of bra/ssy, or the barrier id of bar.
	Target string
}

// DestReg returns the register that receives this instruction's result and
// is therefore the paper's fault-injection target, along with its width in
// bits. Instructions without a register destination (stores, branches, ...)
// return ok=false; so do writes whose only destination is the zero register
// or the $o127 sink, which hold no architectural state.
//
// When an instruction has dual destinations ($p0/$o127) the predicate
// register is the live destination: the value half is discarded by
// convention in all PTXPlus listings the paper shows.
func (in *Instruction) DestReg() (r Reg, bits int, ok bool) {
	if in.DstPred.Valid() {
		return in.DstPred, PredBits, true
	}
	if !in.Op.HasDest() {
		return Reg{}, 0, false
	}
	if in.Dst.Kind == OpdMem {
		// "mov.u32 s[$ofs3+0x0440], $r2" writes memory, not a register.
		return Reg{}, 0, false
	}
	if in.Dst.Kind != OpdReg {
		return Reg{}, 0, false
	}
	r = in.Dst.Reg
	if r.Class == RegGPR && (r.Index == ZeroReg || r.Index == SinkReg) {
		return Reg{}, 0, false
	}
	if r.Class == RegPred {
		return r, PredBits, true
	}
	return r, 32, true
}

// mnemonic assembles the dotted opcode spelling.
func (in *Instruction) mnemonic() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	if in.Cmp != CmpNone {
		b.WriteByte('.')
		b.WriteString(in.Cmp.String())
	}
	switch in.Op {
	case OpLd, OpSt:
		// Memory ops spell the space: ld.global.u32 / st.shared.u32.
		space := in.Dst.Space
		if in.Op == OpLd && len(in.Srcs) > 0 {
			space = in.Srcs[0].Space
		}
		switch space {
		case SpaceGlobal:
			b.WriteString(".global")
		case SpaceShared:
			b.WriteString(".shared")
		case SpaceConst:
			b.WriteString(".const")
		case SpaceLocal:
			b.WriteString(".local")
		}
	}
	if in.Wide {
		b.WriteString(".wide")
	}
	if in.Half {
		b.WriteString(".half")
	}
	if in.Sat {
		b.WriteString(".sat")
	}
	if in.DType != TypeNone {
		b.WriteByte('.')
		b.WriteString(in.DType.String())
	}
	if in.SType != TypeNone && in.SType != in.DType {
		b.WriteByte('.')
		b.WriteString(in.SType.String())
	}
	return b.String()
}

// String renders the instruction in assembly syntax (round-trips through the
// ptx package's parser).
func (in *Instruction) String() string {
	var b strings.Builder
	if in.Label != "" {
		b.WriteString(in.Label)
		b.WriteString(": ")
	}
	b.WriteString(in.Guard.String())
	b.WriteString(in.mnemonic())

	var ops []string
	switch in.Op {
	case OpBra, OpSsy:
		ops = append(ops, in.Target)
	case OpBar:
		ops = append(ops, fmt.Sprintf("0x%08x", in.Srcs[0].Imm))
	case OpRet, OpRetp, OpExit, OpNop:
		// no operands
	default:
		if in.Dst.Kind != OpdNone || in.DstPred.Valid() {
			if in.DstPred.Valid() {
				sep := "/"
				if in.Op != OpSet && in.Op != OpSetp {
					sep = "|"
				}
				ops = append(ops, in.DstPred.String()+sep+in.Dst.String())
			} else {
				ops = append(ops, in.Dst.String())
			}
		}
		for _, s := range in.Srcs {
			ops = append(ops, s.String())
		}
	}
	if len(ops) > 0 {
		b.WriteByte(' ')
		b.WriteString(strings.Join(ops, ", "))
	}
	return b.String()
}

// Program is an assembled kernel body.
type Program struct {
	// Name identifies the kernel ("gemm_kernel").
	Name string
	// Instrs are the static instructions; Instrs[i].PC == i.
	Instrs []Instruction
	// Labels maps label names to static PCs.
	Labels map[string]int
	// braPC caches the resolved target of each branch instruction by static
	// PC (-1 for non-branches). Built by Validate so the interpreter's branch
	// dispatch avoids a label-map lookup per dynamic branch.
	braPC []int32
	// straight caches, per static PC, the length of the maximal run of
	// Sequential instructions starting there (0 for control instructions).
	// Built by Validate; the gpusim compiled dispatcher uses it to execute
	// straight-line runs without re-entering its scheduler.
	straight []int32
}

// TargetPC resolves a branch label, reporting whether it exists.
func (p *Program) TargetPC(label string) (int, bool) {
	pc, ok := p.Labels[label]
	return pc, ok
}

// BranchPC resolves the branch target of the instruction at static PC pc.
// On programs that passed Validate this is an array read; otherwise it falls
// back to the label map.
func (p *Program) BranchPC(pc int) (int, bool) {
	if p.braPC != nil {
		if t := p.braPC[pc]; t >= 0 {
			return int(t), true
		}
		return 0, false
	}
	return p.TargetPC(p.Instrs[pc].Target)
}

// StraightLen reports the length of the maximal run of Sequential
// instructions starting at static PC pc: how many instructions execution
// can retire back-to-back from pc before reaching one that may branch,
// park, or retire the thread. On programs that passed Validate this is an
// array read; otherwise it scans forward.
func (p *Program) StraightLen(pc int) int {
	if pc < 0 || pc >= len(p.Instrs) {
		return 0
	}
	if p.straight != nil {
		return int(p.straight[pc])
	}
	n := 0
	for i := pc; i < len(p.Instrs) && p.Instrs[i].Op.Sequential(); i++ {
		n++
	}
	return n
}

// String disassembles the whole program, one instruction per line.
func (p *Program) String() string {
	var b strings.Builder
	for i := range p.Instrs {
		b.WriteString(p.Instrs[i].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Validate checks structural invariants: PCs are sequential, every branch
// target resolves, barrier and guard operands are well-formed. The gpusim
// interpreter relies on these holding.
func (p *Program) Validate() error {
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.PC != i {
			return fmt.Errorf("isa: %s: instruction %d has PC %d", p.Name, i, in.PC)
		}
		switch in.Op {
		case OpBra, OpSsy:
			if _, ok := p.Labels[in.Target]; !ok {
				return fmt.Errorf("isa: %s: pc %d: undefined label %q", p.Name, i, in.Target)
			}
		case OpBar:
			if len(in.Srcs) != 1 || in.Srcs[0].Kind != OpdImm {
				return fmt.Errorf("isa: %s: pc %d: bar.sync needs an immediate barrier id", p.Name, i)
			}
		}
		if in.Guard.Active() && in.Guard.Reg.Class != RegPred {
			return fmt.Errorf("isa: %s: pc %d: guard on non-predicate register %s", p.Name, i, in.Guard.Reg)
		}
	}
	for label, pc := range p.Labels {
		if pc < 0 || pc >= len(p.Instrs) {
			return fmt.Errorf("isa: %s: label %q points outside program (pc %d)", p.Name, label, pc)
		}
	}
	// Everything checked out: freeze the branch-target cache for BranchPC.
	p.braPC = make([]int32, len(p.Instrs))
	for i := range p.Instrs {
		p.braPC[i] = -1
		if in := &p.Instrs[i]; in.Op == OpBra || in.Op == OpSsy {
			p.braPC[i] = int32(p.Labels[in.Target])
		}
	}
	// ... and the straight-run lengths for StraightLen.
	p.straight = make([]int32, len(p.Instrs))
	run := int32(0)
	for i := len(p.Instrs) - 1; i >= 0; i-- {
		if p.Instrs[i].Op.Sequential() {
			run++
		} else {
			run = 0
		}
		p.straight[i] = run
	}
	return nil
}
