package isa

import "fmt"

// Opcode enumerates the operations executed by the simulator.
type Opcode uint8

// Opcodes. The set covers every instruction appearing in the reproduced
// workloads plus the transcendental/special-function unit ops the paper's
// fault model targets (ALU and SFU destination registers).
const (
	OpNop Opcode = iota
	OpMov
	OpLd
	OpSt
	OpAdd
	OpSub
	OpMul
	OpMad
	OpDiv
	OpRem
	OpMin
	OpMax
	OpAbs
	OpNeg
	OpAnd
	OpOr
	OpXor
	OpNot
	OpCnot
	OpShl
	OpShr
	OpSet
	OpSetp
	OpSelp
	OpSlct
	OpCvt
	OpRcp
	OpSqrt
	OpRsqrt
	OpSin
	OpCos
	OpEx2
	OpLg2
	OpSad
	OpBra
	OpBar
	OpSsy
	OpRet
	OpRetp
	OpExit
	numOpcodes
)

var opcodeNames = [numOpcodes]string{
	"nop", "mov", "ld", "st", "add", "sub", "mul", "mad", "div", "rem",
	"min", "max", "abs", "neg", "and", "or", "xor", "not", "cnot",
	"shl", "shr", "set", "setp", "selp", "slct", "cvt",
	"rcp", "sqrt", "rsqrt", "sin", "cos", "ex2", "lg2", "sad",
	"bra", "bar", "ssy", "ret", "retp", "exit",
}

// String returns the assembly mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpcodeByName maps mnemonics back to opcodes; built once at init.
var OpcodeByName = func() map[string]Opcode {
	m := make(map[string]Opcode, numOpcodes)
	for op := Opcode(0); op < numOpcodes; op++ {
		m[op.String()] = op
	}
	return m
}()

// HasDest reports whether the opcode writes a destination register and is
// therefore a fault site under the paper's model (soft errors in functional
// units manifest as corrupted destination-register values).
func (o Opcode) HasDest() bool {
	switch o {
	case OpNop, OpSt, OpBra, OpBar, OpSsy, OpRet, OpRetp, OpExit:
		return false
	}
	return true
}

// IsControl reports whether the opcode affects control flow.
func (o Opcode) IsControl() bool {
	switch o {
	case OpBra, OpBar, OpRet, OpRetp, OpExit, OpSsy:
		return true
	}
	return false
}

// Sequential reports whether the opcode always falls through to the next
// static instruction: it can neither branch, nor park the thread at a
// barrier, nor retire it. (It may still trap.) Note this is not the
// complement of IsControl: ssy only records reconvergence metadata and
// falls through, so it is sequential. The gpusim compiled dispatcher
// batches maximal runs of sequential instructions (Program.StraightLen)
// without re-entering its scheduler.
func (o Opcode) Sequential() bool {
	switch o {
	case OpBra, OpBar, OpRet, OpRetp, OpExit:
		return false
	}
	return true
}

// Kind buckets opcodes the way the paper's CTA-level study selects target
// instructions: memory access, arithmetic, logic, and special-function ops.
type Kind uint8

// Instruction kinds.
const (
	KindOther Kind = iota
	KindMemory
	KindArith
	KindLogic
	KindSFU
	KindControl
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindMemory:
		return "memory"
	case KindArith:
		return "arith"
	case KindLogic:
		return "logic"
	case KindSFU:
		return "sfu"
	case KindControl:
		return "control"
	}
	return "other"
}

// Kind classifies the opcode.
func (o Opcode) Kind() Kind {
	switch o {
	case OpLd, OpSt:
		return KindMemory
	case OpAdd, OpSub, OpMul, OpMad, OpDiv, OpRem, OpMin, OpMax, OpAbs,
		OpNeg, OpCvt, OpSad, OpMov, OpSet, OpSetp, OpSelp, OpSlct:
		return KindArith
	case OpAnd, OpOr, OpXor, OpNot, OpCnot, OpShl, OpShr:
		return KindLogic
	case OpRcp, OpSqrt, OpRsqrt, OpSin, OpCos, OpEx2, OpLg2:
		return KindSFU
	case OpBra, OpBar, OpSsy, OpRet, OpRetp, OpExit:
		return KindControl
	}
	return KindOther
}

// CmpOp is the comparison selector of set/setp instructions and of
// predicate guards ("@$p0.eq" tests the flags the way branch condition
// codes do).
type CmpOp uint8

// Comparison operators. Lo/Ls/Hi/Hs are the unsigned forms.
const (
	CmpNone CmpOp = iota
	CmpEq
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
	CmpLo
	CmpLs
	CmpHi
	CmpHs
)

var cmpNames = map[CmpOp]string{
	CmpNone: "", CmpEq: "eq", CmpNe: "ne", CmpLt: "lt", CmpLe: "le",
	CmpGt: "gt", CmpGe: "ge", CmpLo: "lo", CmpLs: "ls", CmpHi: "hi", CmpHs: "hs",
}

// CmpByName maps comparison suffixes back to operators.
var CmpByName = func() map[string]CmpOp {
	m := make(map[string]CmpOp, len(cmpNames))
	for c, s := range cmpNames {
		if s != "" {
			m[s] = c
		}
	}
	return m
}()

// String returns the assembly suffix spelling.
func (c CmpOp) String() string { return cmpNames[c] }
