// Package baseline implements the statistical random-injection campaign the
// paper evaluates its pruning against (Section II-D): uniform sampling over
// the exhaustive fault-site space, sized by Eq. 2-4 up front or adaptively
// grown until the measured class proportions reach a target confidence
// interval. It is the in-repo stand-in for LLFI-GPU/SASSIFI-style sampled
// injection, and the source of the "ground truth" profiles in the
// experiments.
package baseline

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/stats"
)

// Options configures a baseline campaign.
type Options struct {
	// Confidence is the two-sided confidence level (0 = 0.95).
	Confidence float64
	// Margin is the target half-width of every class's Wilson interval,
	// in proportion units (0 = 0.03, the paper's 95%/±3% cheap campaign).
	Margin float64
	// MaxRuns caps the adaptive campaign (0 = the Eq. 4 worst case for the
	// chosen confidence and margin).
	MaxRuns int
	// Batch is the number of runs added per adaptive step (0 = 250).
	Batch int
	// Seed drives sampling.
	Seed int64
	// Campaign tunes the injection workers.
	Campaign fault.CampaignOptions
}

func (o Options) confidence() float64 {
	if o.Confidence == 0 {
		return 0.95
	}
	return o.Confidence
}

func (o Options) margin() float64 {
	if o.Margin == 0 {
		return 0.03
	}
	return o.Margin
}

// Result is the outcome of a baseline campaign.
type Result struct {
	// Dist is the sampled resilience profile.
	Dist fault.Dist
	// Runs is the number of injection experiments executed.
	Runs int
	// Margins is the achieved Wilson half-width per class.
	Margins [fault.NumClasses]float64
	// Planned is the Eq. 2 sample size for the requested targets, for
	// comparison with the adaptively achieved Runs.
	Planned int64
	// Stats aggregates the campaign execution stats (all batches for an
	// adaptive campaign).
	Stats fault.CampaignStats
}

// classMargins computes the per-class Wilson half-widths of a distribution
// built from unit-weight samples.
func classMargins(d fault.Dist, confidence float64) [fault.NumClasses]float64 {
	var m [fault.NumClasses]float64
	n := d.N
	for c := fault.Class(0); c < fault.NumClasses; c++ {
		successes := int64(d.Pct(c) / 100 * float64(n))
		m[c] = stats.MarginAt(successes, n, confidence)
	}
	return m
}

// Fixed runs the paper's fixed-size campaign: the Eq. 2 sample size for the
// requested confidence/margin over the target's fault-site space (capped by
// MaxRuns when set). The target is Prepared if needed (through its
// fault.PreparedCache when one is attached, sharing the golden run with the
// pruned pipeline it is compared against).
func Fixed(t *fault.Target, opt Options) (*Result, error) {
	if err := t.Prepare(); err != nil {
		return nil, err
	}
	space := fault.NewSpace(t.Profile())
	planned := stats.SampleSize(space.Total(), opt.margin(), stats.TStat(opt.confidence()), 0.5)
	runs := planned
	if opt.MaxRuns > 0 && int64(opt.MaxRuns) < runs {
		runs = int64(opt.MaxRuns)
	}
	rng := stats.NewRNG(opt.Seed).Split("baseline-fixed")
	sites := space.Random(rng, int(runs))
	res, err := fault.Run(t, fault.Uniform(sites), opt.Campaign)
	if err != nil {
		return nil, err
	}
	return &Result{
		Dist:    res.Dist,
		Runs:    int(runs),
		Margins: classMargins(res.Dist, opt.confidence()),
		Planned: planned,
		Stats:   res.Stats,
	}, nil
}

// Adaptive grows the campaign in batches until every class's Wilson
// interval half-width is at most the target margin, or the run cap is hit.
// Because the achieved margin depends on the true proportions (Eq. 3's
// p(1-p) term), adaptive campaigns typically stop well below the Eq. 4
// worst-case size — the practical advantage over fixed planning at p=0.5.
func Adaptive(t *fault.Target, opt Options) (*Result, error) {
	if err := t.Prepare(); err != nil {
		return nil, err
	}
	space := fault.NewSpace(t.Profile())
	planned := stats.SampleSize(space.Total(), opt.margin(), stats.TStat(opt.confidence()), 0.5)
	maxRuns := opt.MaxRuns
	if maxRuns <= 0 {
		maxRuns = int(stats.SampleSizeWorstCase(opt.margin(), stats.TStat(opt.confidence())))
	}
	batch := opt.Batch
	if batch <= 0 {
		batch = 250
	}
	if batch > maxRuns {
		batch = maxRuns
	}

	rng := stats.NewRNG(opt.Seed).Split("baseline-adaptive")
	out := &Result{Planned: planned}
	for out.Runs < maxRuns {
		n := batch
		if out.Runs+n > maxRuns {
			n = maxRuns - out.Runs
		}
		sites := space.Random(rng, n)
		res, err := fault.Run(t, fault.Uniform(sites), opt.Campaign)
		if err != nil {
			return nil, err
		}
		out.Dist.Merge(res.Dist)
		out.Stats.Merge(res.Stats)
		out.Runs += n

		out.Margins = classMargins(out.Dist, opt.confidence())
		done := true
		for _, m := range out.Margins {
			if m > opt.margin() {
				done = false
				break
			}
		}
		if done {
			return out, nil
		}
	}
	return out, nil
}

// Compare summarizes how a pruned estimate tracks a baseline profile,
// flagging classes whose difference exceeds the baseline's own uncertainty.
type Compare struct {
	MaxDelta float64
	// Exceeds lists the classes where |pruned - baseline| is larger than
	// twice the baseline's Wilson half-width — disagreement beyond noise.
	Exceeds []fault.Class
}

// CompareTo evaluates a pruned estimate against this baseline result.
func (r *Result) CompareTo(pruned fault.Dist) Compare {
	var c Compare
	c.MaxDelta = pruned.MaxClassDelta(r.Dist)
	for cls := fault.Class(0); cls < fault.NumClasses; cls++ {
		delta := pruned.Pct(cls) - r.Dist.Pct(cls)
		if delta < 0 {
			delta = -delta
		}
		if delta/100 > 2*r.Margins[cls] {
			c.Exceeds = append(c.Exceeds, cls)
		}
	}
	return c
}

// String renders the result for reports.
func (r *Result) String() string {
	if r == nil {
		return "<nil baseline>"
	}
	return fmt.Sprintf("%s after %d runs (planned %d; margins %.2f/%.2f/%.2f pp)",
		r.Dist, r.Runs, r.Planned,
		100*r.Margins[fault.ClassMasked],
		100*r.Margins[fault.ClassSDC],
		100*r.Margins[fault.ClassOther])
}

// ErrNoSites reports an empty fault-site space.
var ErrNoSites = errors.New("baseline: target has no fault sites")
