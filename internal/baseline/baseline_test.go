package baseline_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/kernels"
	"repro/internal/ptx"
)

// target builds a cheap prepared injection target.
func target(t *testing.T) *fault.Target {
	t.Helper()
	prog, err := ptx.Assemble("bt", `
		cvt.u32.u16 $r0, %tid.x
		shl.u32 $r1, $r0, 0x00000002
		ld.global.u32 $r2, [$r1]
		add.u32 $r2, $r2, 0x00000007
		st.global.u32 [$r1], $r2
		exit
	`)
	if err != nil {
		t.Fatal(err)
	}
	dev := gpusim.NewDevice(64)
	for i := 0; i < 16; i++ {
		dev.WriteWords(4*i, []uint32{uint32(i * 3)})
	}
	tg := &fault.Target{
		Name:   "bt",
		Prog:   prog,
		Grid:   gpusim.Dim3{X: 1, Y: 1, Z: 1},
		Block:  gpusim.Dim3{X: 16, Y: 1, Z: 1},
		Init:   dev,
		Output: []fault.Range{{Off: 0, Len: 64}},
	}
	return tg
}

func TestFixed(t *testing.T) {
	res, err := baseline.Fixed(target(t), baseline.Options{
		Confidence: 0.95, Margin: 0.05, MaxRuns: 300, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 300 {
		t.Fatalf("runs = %d (planned %d)", res.Runs, res.Planned)
	}
	if res.Dist.N != 300 {
		t.Fatalf("dist N = %d", res.Dist.N)
	}
	if res.Planned <= 0 {
		t.Fatalf("planned = %d", res.Planned)
	}
	for c, m := range res.Margins {
		if m <= 0 || m > 0.2 {
			t.Fatalf("class %d margin = %v", c, m)
		}
	}
	if res.String() == "" {
		t.Fatal("empty string")
	}
}

func TestFixedUsesPlannedWhenUncapped(t *testing.T) {
	// With a loose margin the Eq. 2 size is small; no cap needed.
	res, err := baseline.Fixed(target(t), baseline.Options{
		Confidence: 0.90, Margin: 0.15, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.Runs) != res.Planned {
		t.Fatalf("runs %d != planned %d", res.Runs, res.Planned)
	}
}

func TestAdaptiveStopsEarly(t *testing.T) {
	// A loose margin should be reached in the first few batches, well
	// below the p=0.5 worst case.
	res, err := baseline.Adaptive(target(t), baseline.Options{
		Confidence: 0.90, Margin: 0.08, Batch: 100, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	worst := 271 // ceil(1.645^2 / (4 * 0.08^2))
	if res.Runs > worst {
		t.Fatalf("adaptive used %d runs, worst case is %d", res.Runs, worst)
	}
	for _, m := range res.Margins {
		if m > 0.08 {
			t.Fatalf("margin target missed: %v", res.Margins)
		}
	}
}

func TestAdaptiveHonorsCap(t *testing.T) {
	res, err := baseline.Adaptive(target(t), baseline.Options{
		Confidence: 0.998, Margin: 0.001, MaxRuns: 220, Batch: 100, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 220 {
		t.Fatalf("cap not honored: %d runs", res.Runs)
	}
}

func TestCompareTo(t *testing.T) {
	tg := target(t)
	res, err := baseline.Fixed(tg, baseline.Options{Margin: 0.05, MaxRuns: 400, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Comparing the baseline to itself: zero delta, nothing exceeds.
	c := res.CompareTo(res.Dist)
	if c.MaxDelta != 0 || len(c.Exceeds) != 0 {
		t.Fatalf("self comparison: %+v", c)
	}
	// A wildly different profile exceeds on some class.
	var off fault.Dist
	off.Add(fault.Masked, 1)
	c = res.CompareTo(off)
	if len(c.Exceeds) == 0 {
		t.Fatalf("100%%-masked profile not flagged: %+v", c)
	}
}

func TestBaselineOnRealKernel(t *testing.T) {
	spec, _ := kernels.ByName("Gaussian K125")
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	res, err := baseline.Adaptive(inst.Target, baseline.Options{
		Margin: 0.06, Batch: 200, MaxRuns: 800, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs == 0 || res.Dist.N == 0 {
		t.Fatalf("empty campaign: %+v", res)
	}
}
