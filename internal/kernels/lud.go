package kernels

import (
	"strings"

	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/isa"
	"repro/internal/ptx"
)

// LU Decomposition (Rodinia), blocked with block size 16 on a 32x32 matrix —
// the geometry that yields the paper's thread counts: lud_diagonal 16
// threads, lud_perimeter 32, lud_internal 256. The three instances capture
// consecutive pipeline stages: the diagonal kernel factorizes the top-left
// block, the perimeter kernel solves the row/column panels against it, and
// the internal kernel applies the rank-16 update to the trailing block.
// Diagonal and perimeter have triangular nested loops (Table VII: 120
// iterations each); internal is fully unrolled (0 iterations), as in the
// Rodinia source.
//
// Parameters (all three): s[0x10]=&a, s[0x14]=N, s[0x18]=offset.
const ludBS = 16

const ludDiagonalSrc = `
	cvt.u32.u16 $r0, %tid.x              // tx
	mov.u32 $r15, s[0x0014]              // N
	mov.u32 $r14, s[0x0018]              // off
	add.u32 $r4, $r14, $r0
	mul.lo.u32 $r4, $r4, $r15
	add.u32 $r4, $r4, $r14
	shl.u32 $r4, $r4, 0x00000002
	add.u32 $r4, $r4, s[0x0010]          // &a[off+tx][off]
	mov.u32 $r3, $r124                   // k = 0
	louter: bar.sync 0x00000000
	set.gt.u32.u32 $p0/$o127, $r0, $r3
	@$p0.eq bra lnext                    // threads tx <= k idle this round
	shl.u32 $r5, $r3, 0x00000002
	add.u32 $r6, $r4, $r5                // &a[tx][k]
	add.u32 $r8, $r14, $r3
	mul.lo.u32 $r8, $r8, $r15
	add.u32 $r8, $r8, $r14
	shl.u32 $r8, $r8, 0x00000002
	add.u32 $r8, $r8, s[0x0010]          // pivot row base &a[k][off]
	add.u32 $r9, $r8, $r5                // &a[k][k]
	ld.global.f32 $r10, [$r6]
	ld.global.f32 $r11, [$r9]
	div.f32 $r10, $r10, $r11
	st.global.f32 [$r6], $r10            // L[tx][k]
	add.u32 $r12, $r3, 0x00000001        // j = k+1
	linner: shl.u32 $r13, $r12, 0x00000002
	add.u32 $r16, $r4, $r13              // &a[tx][j]
	add.u32 $r17, $r8, $r13              // &a[k][j]
	ld.global.f32 $r18, [$r16]
	ld.global.f32 $r19, [$r17]
	mul.f32 $r19, $r10, $r19
	sub.f32 $r18, $r18, $r19
	st.global.f32 [$r16], $r18
	add.u32 $r12, $r12, 0x00000001
	set.lt.u32.u32 $p0/$o127, $r12, 0x00000010
	@$p0.ne bra linner
	lnext: add.u32 $r3, $r3, 0x00000001
	set.lt.u32.u32 $p0/$o127, $r3, 0x0000000f
	@$p0.ne bra louter
	exit
`

const ludPerimeterSrc = `
	cvt.u32.u16 $r0, %tid.x
	mov.u32 $r15, s[0x0014]              // N
	mov.u32 $r14, s[0x0018]              // off
	set.ge.u32.u32 $p0/$o127, $r0, 0x00000010
	@$p0.ne bra lcol
	// Row panel: thread tx owns column off+16+tx of A12.
	add.u32 $r4, $r14, 0x00000010
	add.u32 $r4, $r4, $r0                // absolute column
	mul.lo.u32 $r5, $r14, $r15
	add.u32 $r5, $r5, $r4
	shl.u32 $r5, $r5, 0x00000002
	add.u32 $r5, $r5, s[0x0010]          // &a[off][col]
	shl.u32 $r6, $r15, 0x00000002        // row stride
	mov.u32 $r3, $r124                   // k = 0
	lrowk: mul.lo.u32 $r7, $r3, $r6
	add.u32 $r7, $r7, $r5
	ld.global.f32 $r8, [$r7]             // a[k][col]
	add.u32 $r11, $r3, 0x00000001        // i = k+1
	lrowi: add.u32 $r12, $r14, $r11
	mul.lo.u32 $r12, $r12, $r15
	add.u32 $r13, $r14, $r3
	add.u32 $r12, $r12, $r13
	shl.u32 $r12, $r12, 0x00000002
	add.u32 $r12, $r12, s[0x0010]        // &L[i][k]
	ld.global.f32 $r16, [$r12]
	mul.lo.u32 $r17, $r11, $r6
	add.u32 $r17, $r17, $r5              // &a[i][col]
	ld.global.f32 $r18, [$r17]
	mul.f32 $r19, $r16, $r8
	sub.f32 $r18, $r18, $r19
	st.global.f32 [$r17], $r18
	add.u32 $r11, $r11, 0x00000001
	set.lt.u32.u32 $p0/$o127, $r11, 0x00000010
	@$p0.ne bra lrowi
	add.u32 $r3, $r3, 0x00000001
	set.lt.u32.u32 $p0/$o127, $r3, 0x0000000f
	@$p0.ne bra lrowk
	bra lexit
	// Column panel: thread tx-16 owns row off+16+(tx-16) of A21.
	lcol: sub.u32 $r4, $r0, 0x00000010
	add.u32 $r5, $r14, 0x00000010
	add.u32 $r5, $r5, $r4                // absolute row
	mul.lo.u32 $r5, $r5, $r15
	add.u32 $r5, $r5, $r14
	shl.u32 $r5, $r5, 0x00000002
	add.u32 $r5, $r5, s[0x0010]          // &a[row][off]
	mov.u32 $r3, $r124                   // k = 0
	lcolk: shl.u32 $r7, $r3, 0x00000002
	add.u32 $r7, $r7, $r5                // &x[row][k]
	ld.global.f32 $r8, [$r7]             // val
	mov.u32 $r9, $r124                   // m = 0
	set.eq.u32.u32 $p0/$o127, $r3, $r124
	@$p0.ne bra ldiv
	lcolm: shl.u32 $r10, $r9, 0x00000002
	add.u32 $r10, $r10, $r5              // &x[row][m]
	ld.global.f32 $r11, [$r10]
	add.u32 $r12, $r14, $r9
	mul.lo.u32 $r12, $r12, $r15
	add.u32 $r13, $r14, $r3
	add.u32 $r12, $r12, $r13
	shl.u32 $r12, $r12, 0x00000002
	add.u32 $r12, $r12, s[0x0010]        // &U[m][k]
	ld.global.f32 $r16, [$r12]
	mul.f32 $r16, $r11, $r16
	sub.f32 $r8, $r8, $r16
	add.u32 $r9, $r9, 0x00000001
	set.lt.u32.u32 $p0/$o127, $r9, $r3
	@$p0.ne bra lcolm
	ldiv: add.u32 $r12, $r14, $r3
	mul.lo.u32 $r12, $r12, $r15
	add.u32 $r13, $r14, $r3
	add.u32 $r12, $r12, $r13
	shl.u32 $r12, $r12, 0x00000002
	add.u32 $r12, $r12, s[0x0010]        // &U[k][k]
	ld.global.f32 $r16, [$r12]
	div.f32 $r8, $r8, $r16
	st.global.f32 [$r7], $r8
	add.u32 $r3, $r3, 0x00000001
	set.lt.u32.u32 $p0/$o127, $r3, 0x00000010
	@$p0.ne bra lcolk
	lexit: exit
`

const ludInternalPrologSrc = `
	cvt.u32.u16 $r0, %tid.x
	cvt.u32.u16 $r1, %tid.y
	mov.u32 $r15, s[0x0014]              // N
	mov.u32 $r14, s[0x0018]              // off
	shl.u32 $r2, $r15, 0x00000002        // row stride
	add.u32 $r3, $r14, 0x00000010
	add.u32 $r4, $r3, $r1                // row = off+16+ty
	mul.lo.u32 $r5, $r4, $r15
	add.u32 $r5, $r5, $r14
	shl.u32 $r5, $r5, 0x00000002
	add.u32 $r5, $r5, s[0x0010]          // &L[row][off]
	add.u32 $r6, $r3, $r0                // col = off+16+tx
	mul.lo.u32 $r7, $r14, $r15
	add.u32 $r7, $r7, $r6
	shl.u32 $r7, $r7, 0x00000002
	add.u32 $r7, $r7, s[0x0010]          // &U[off][col]
	mov.u32 $r10, $r124                  // acc = 0.0
`

const ludInternalStepSrc = `
	ld.global.f32 $r11, [$r5]
	ld.global.f32 $r12, [$r7]
	mad.f32 $r10, $r11, $r12, $r10
	add.u32 $r5, $r5, 0x00000004
	add.u32 $r7, $r7, $r2
`

const ludInternalEpilogSrc = `
	mul.lo.u32 $r8, $r4, $r15
	add.u32 $r8, $r8, $r6
	shl.u32 $r8, $r8, 0x00000002
	add.u32 $r8, $r8, s[0x0010]          // &a[row][col]
	ld.global.f32 $r9, [$r8]
	sub.f32 $r9, $r9, $r10
	st.global.f32 [$r8], $r9
	exit
`

var (
	ludDiagonalProg  = ptx.MustAssemble("lud_diagonal", ludDiagonalSrc)
	ludPerimeterProg = ptx.MustAssemble("lud_perimeter", ludPerimeterSrc)
	ludInternalProg  = ptx.MustAssemble("lud_internal",
		ludInternalPrologSrc+strings.Repeat(ludInternalStepSrc, ludBS)+ludInternalEpilogSrc)
)

// ludMatrix builds the diagonally dominant 32x32 input system.
func ludMatrix(n int) []float32 {
	a := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = synth(0x1D, i*n+j)
		}
		a[i*n+i] += 16
	}
	return a
}

// ludDiagRef factorizes the bs x bs block at offset in place (float32,
// kernel operation order).
func ludDiagRef(a []float32, n, off int) {
	for k := 0; k < ludBS-1; k++ {
		for tx := k + 1; tx < ludBS; tx++ {
			l := a[(off+tx)*n+off+k] / a[(off+k)*n+off+k]
			a[(off+tx)*n+off+k] = l
			for j := k + 1; j < ludBS; j++ {
				a[(off+tx)*n+off+j] -= l * a[(off+k)*n+off+j]
			}
		}
	}
}

// ludPeriRef solves the row and column panels against the factorized
// diagonal block.
func ludPeriRef(a []float32, n, off int) {
	// Row panel A12 = L^-1 A12, one column at a time.
	for c := 0; c < ludBS; c++ {
		col := off + ludBS + c
		for k := 0; k < ludBS-1; k++ {
			pivot := a[(off+k)*n+col]
			for i := k + 1; i < ludBS; i++ {
				a[(off+i)*n+col] -= a[(off+i)*n+off+k] * pivot
			}
		}
	}
	// Column panel A21 = A21 U^-1, one row at a time.
	for r := 0; r < ludBS; r++ {
		row := off + ludBS + r
		for k := 0; k < ludBS; k++ {
			val := a[row*n+off+k]
			for m := 0; m < k; m++ {
				val -= a[row*n+off+m] * a[(off+m)*n+off+k]
			}
			val /= a[(off+k)*n+off+k]
			a[row*n+off+k] = val
		}
	}
}

// ludIntRef applies the trailing update A22 -= A21*A12.
func ludIntRef(a []float32, n, off int) {
	for ty := 0; ty < ludBS; ty++ {
		for tx := 0; tx < ludBS; tx++ {
			row, col := off+ludBS+ty, off+ludBS+tx
			var acc float32
			for k := 0; k < ludBS; k++ {
				acc = a[row*n+off+k]*a[(off+k)*n+col] + acc
			}
			a[row*n+col] -= acc
		}
	}
}

// buildLUD constructs one LUD stage instance: the device holds the matrix
// state just before the stage, the reference output the state just after.
func buildLUD(meta Meta, prog stageProg, scale Scale) (*Instance, error) {
	const n, off = 2 * ludBS, 0
	a := ludMatrix(n)
	// Advance host state to just before this stage.
	switch prog.stage {
	case 1:
		ludDiagRef(a, n, off)
	case 2:
		ludDiagRef(a, n, off)
		ludPeriRef(a, n, off)
	}

	dev := gpusim.NewDevice(4 * n * n)
	dev.WriteWords(0, wordsF32(a))

	want := append([]float32(nil), a...)
	switch prog.stage {
	case 0:
		ludDiagRef(want, n, off)
	case 1:
		ludPeriRef(want, n, off)
	case 2:
		ludIntRef(want, n, off)
	}

	target := buildTarget(meta.Name(), prog.prog, prog.grid, prog.block,
		[]uint32{0, uint32(n), uint32(off)},
		dev, []fault.Range{{Off: 0, Len: 4 * n * n}}, 0)
	return &Instance{
		Meta: meta, Scale: scale, Target: target,
		WantOutput: bytesOfWords(wordsF32(want)),
	}, nil
}

type stageProg struct {
	stage int // 0 diagonal, 1 perimeter, 2 internal
	prog  *isa.Program
	grid  gpusim.Dim3
	block gpusim.Dim3
}

func buildLUDDiagonal(scale Scale) (*Instance, error) {
	return buildLUD(ludDiagonalMeta, stageProg{
		stage: 0, prog: ludDiagonalProg,
		grid:  gpusim.Dim3{X: 1, Y: 1, Z: 1},
		block: gpusim.Dim3{X: ludBS, Y: 1, Z: 1},
	}, scale)
}

func buildLUDPerimeter(scale Scale) (*Instance, error) {
	return buildLUD(ludPerimeterMeta, stageProg{
		stage: 1, prog: ludPerimeterProg,
		grid:  gpusim.Dim3{X: 1, Y: 1, Z: 1},
		block: gpusim.Dim3{X: 2 * ludBS, Y: 1, Z: 1},
	}, scale)
}

func buildLUDInternal(scale Scale) (*Instance, error) {
	return buildLUD(ludInternalMeta, stageProg{
		stage: 2, prog: ludInternalProg,
		grid:  gpusim.Dim3{X: 1, Y: 1, Z: 1},
		block: gpusim.Dim3{X: ludBS, Y: ludBS, Z: 1},
	}, scale)
}

var (
	ludPerimeterMeta = Meta{
		Suite: "Rodinia", App: "LUD", Kernel: "lud_perimeter", ID: "K44",
		PaperThreads: 32, PaperSites: 1.75e6, HasLoops: true,
	}
	ludInternalMeta = Meta{
		Suite: "Rodinia", App: "LUD", Kernel: "lud_internal", ID: "K45",
		PaperThreads: 256, PaperSites: 6.84e5,
	}
	ludDiagonalMeta = Meta{
		Suite: "Rodinia", App: "LUD", Kernel: "lud_diagonal", ID: "K46",
		PaperThreads: 16, PaperSites: 5.26e5, HasLoops: true,
	}
)
