package kernels

import (
	"bytes"
	"testing"
)

// TestKernelCorrectnessSmall validates every kernel at the small scale: the
// simulated golden output must match the host Go reference bit-for-bit.
func TestKernelCorrectnessSmall(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Meta.Name(), func(t *testing.T) {
			inst, err := spec.Build(ScaleSmall)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if err := inst.Target.Prepare(); err != nil {
				t.Fatalf("prepare: %v", err)
			}
			got := inst.Target.Golden()
			if len(got) != len(inst.WantOutput) {
				t.Fatalf("output length %d, want %d", len(got), len(inst.WantOutput))
			}
			if !bytes.Equal(got, inst.WantOutput) {
				for i := range got {
					if got[i] != inst.WantOutput[i] {
						t.Fatalf("output differs first at byte %d (word %d): got %#x want %#x",
							i, i/4, got[i], inst.WantOutput[i])
					}
				}
			}
		})
	}
}

// TestRegistryComplete checks the paper's workload inventory: 17 kernels,
// 16 of them with Table I fault-site references.
func TestRegistryComplete(t *testing.T) {
	if got := len(All()); got != 17 {
		t.Fatalf("registry has %d kernels, want 17", got)
	}
	if got := len(TableIKernels()); got != 16 {
		t.Fatalf("Table I set has %d kernels, want 16", got)
	}
	seen := make(map[string]bool)
	for _, s := range All() {
		name := s.Meta.Name()
		if seen[name] {
			t.Fatalf("duplicate kernel name %q", name)
		}
		seen[name] = true
	}
}

// TestPaperThreadCounts verifies that the paper-scale geometry spawns
// exactly the thread counts of the paper's tables.
func TestPaperThreadCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale builds in short mode")
	}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Meta.Name(), func(t *testing.T) {
			inst, err := spec.Build(ScalePaper)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if got := inst.Target.Threads(); got != spec.Meta.PaperThreads {
				t.Fatalf("threads = %d, want %d", got, spec.Meta.PaperThreads)
			}
		})
	}
}
