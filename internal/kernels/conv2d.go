package kernels

import (
	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/ptx"
)

// 2DCONV (Polybench): 3x3 convolution B = conv(A). One thread per output
// element; threads on the image border exit early, producing the short-iCnt
// thread classes of the paper's Table III, while interior threads run the
// full 9-tap stencil (the iCnt=48 class).
//
// Parameter block: s[0x10]=&A, s[0x14]=&B, s[0x18]=NI, s[0x1c]=NJ.
const conv2dSrc = `
	cvt.u32.u16 $r0, %tid.x
	cvt.u32.u16 $r1, %ctaid.x
	cvt.u32.u16 $r2, %ntid.x
	mad.lo.u32 $r1, $r1, $r2, $r0        // j (column)
	cvt.u32.u16 $r3, %tid.y
	cvt.u32.u16 $r4, %ctaid.y
	cvt.u32.u16 $r5, %ntid.y
	mad.lo.u32 $r4, $r4, $r5, $r3        // i (row)
	set.eq.u32.u32 $p0/$o127, $r4, $r124
	@$p0.ne bra lexit                    // i == 0
	mov.u32 $r6, s[0x0018]
	sub.u32 $r6, $r6, 0x00000001
	set.ge.u32.u32 $p0/$o127, $r4, $r6
	@$p0.ne bra lexit                    // i >= NI-1
	set.eq.u32.u32 $p0/$o127, $r1, $r124
	@$p0.ne bra lexit                    // j == 0
	mov.u32 $r7, s[0x001c]
	sub.u32 $r7, $r7, 0x00000001
	set.ge.u32.u32 $p0/$o127, $r1, $r7
	@$p0.ne bra lexit                    // j >= NJ-1
	mov.u32 $r8, s[0x001c]               // NJ
	mul.lo.u32 $r9, $r4, $r8
	add.u32 $r9, $r9, $r1                // i*NJ + j
	shl.u32 $r9, $r9, 0x00000002
	add.u32 $r10, $r9, s[0x0010]         // &A[i][j]
	shl.u32 $r11, $r8, 0x00000002        // row stride in bytes
	sub.u32 $r12, $r10, $r11             // &A[i-1][j]
	add.u32 $r13, $r10, $r11             // &A[i+1][j]
	ld.global.f32 $r14, [$r12-0x0004]
	mul.f32 $r20, $r14, 0f3E4CCCCD       // c11 = +0.2
	ld.global.f32 $r14, [$r12]
	mad.f32 $r20, $r14, 0f3F000000, $r20 // c21 = +0.5
	ld.global.f32 $r14, [$r12+0x0004]
	mad.f32 $r20, $r14, 0fBF19999A, $r20 // c31 = -0.6
	ld.global.f32 $r14, [$r10-0x0004]
	mad.f32 $r20, $r14, 0fBE99999A, $r20 // c12 = -0.3
	ld.global.f32 $r14, [$r10]
	mad.f32 $r20, $r14, 0f3F19999A, $r20 // c22 = +0.6
	ld.global.f32 $r14, [$r10+0x0004]
	mad.f32 $r20, $r14, 0fBF666666, $r20 // c32 = -0.9
	ld.global.f32 $r14, [$r13-0x0004]
	mad.f32 $r20, $r14, 0f3ECCCCCD, $r20 // c13 = +0.4
	ld.global.f32 $r14, [$r13]
	mad.f32 $r20, $r14, 0f3F333333, $r20 // c23 = +0.7
	ld.global.f32 $r14, [$r13+0x0004]
	mad.f32 $r20, $r14, 0f3F8CCCCD, $r20 // c33 = +1.1
	add.u32 $r15, $r9, s[0x0014]         // &B[i][j]
	st.global.f32 [$r15], $r20
	lexit: exit
`

var conv2dProg = ptx.MustAssemble("Convolution2D_kernel", conv2dSrc)

func conv2dCoeffs() (c11, c21, c31, c12, c22, c32, c13, c23, c33 float32) {
	return 0.2, 0.5, -0.6, -0.3, 0.6, -0.9, 0.4, 0.7, 1.1
}

func buildConv2D(scale Scale) (*Instance, error) {
	ni, nj := 16, 16
	block := gpusim.Dim3{X: 8, Y: 8, Z: 1}
	grid := gpusim.Dim3{X: 2, Y: 2, Z: 1}
	if scale == ScalePaper {
		ni, nj = 64, 128
		block = gpusim.Dim3{X: 16, Y: 16, Z: 1}
		grid = gpusim.Dim3{X: 8, Y: 4, Z: 1}
	}

	a := make([]float32, ni*nj)
	for i := range a {
		a[i] = synth(0xC0, i)
	}
	aBytes, bBytes := 0, 4*ni*nj
	dev := gpusim.NewDevice(8 * ni * nj)
	dev.WriteWords(aBytes, wordsF32(a))

	// Reference: float32 ops in the exact order of the kernel's mads.
	c11, c21, c31, c12, c22, c32, c13, c23, c33 := conv2dCoeffs()
	b := make([]float32, ni*nj)
	for i := 1; i < ni-1; i++ {
		for j := 1; j < nj-1; j++ {
			acc := a[(i-1)*nj+j-1] * c11
			acc = a[(i-1)*nj+j]*c21 + acc
			acc = a[(i-1)*nj+j+1]*c31 + acc
			acc = a[i*nj+j-1]*c12 + acc
			acc = a[i*nj+j]*c22 + acc
			acc = a[i*nj+j+1]*c32 + acc
			acc = a[(i+1)*nj+j-1]*c13 + acc
			acc = a[(i+1)*nj+j]*c23 + acc
			acc = a[(i+1)*nj+j+1]*c33 + acc
			b[i*nj+j] = acc
		}
	}

	meta := conv2dMeta
	target := buildTarget(meta.Name(), conv2dProg, grid, block,
		[]uint32{uint32(aBytes), uint32(bBytes), uint32(ni), uint32(nj)},
		dev, []fault.Range{{Off: bBytes, Len: 4 * ni * nj}}, 0)
	return &Instance{
		Meta: meta, Scale: scale, Target: target,
		WantOutput: bytesOfWords(wordsF32(b)),
	}, nil
}

var conv2dMeta = Meta{
	Suite: "Polybench", App: "2DCONV", Kernel: "Convolution2D_kernel", ID: "K1",
	PaperThreads: 8192, PaperSites: 6.32e6,
}
