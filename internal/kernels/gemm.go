package kernels

import (
	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/ptx"
)

// GEMM (Polybench): C = alpha*A*B + beta*C. One thread per C element with an
// NK-iteration dot-product loop (the paper's Table VII: 128 iterations,
// 98.21% of instructions in the loop). After thread-wise pruning this kernel
// collapses to a single representative thread (all threads share one iCnt),
// which is why the paper places it in Fig. 10(c).
//
// Parameters: s[0x10]=&A, s[0x14]=&B, s[0x18]=&C,
// s[0x1c]=NI, s[0x20]=NJ, s[0x24]=NK. alpha=1.5, beta=1.2.
const gemmSrc = `
	cvt.u32.u16 $r0, %tid.x
	cvt.u32.u16 $r1, %ctaid.x
	cvt.u32.u16 $r2, %ntid.x
	mad.lo.u32 $r0, $r1, $r2, $r0        // j (column)
	cvt.u32.u16 $r3, %tid.y
	cvt.u32.u16 $r4, %ctaid.y
	cvt.u32.u16 $r5, %ntid.y
	mad.lo.u32 $r3, $r4, $r5, $r3        // i (row)
	mov.u32 $r4, s[0x001c]               // NI
	set.ge.u32.u32 $p0/$o127, $r3, $r4
	@$p0.ne bra lexit
	mov.u32 $r5, s[0x0020]               // NJ
	set.ge.u32.u32 $p0/$o127, $r0, $r5
	@$p0.ne bra lexit
	mov.u32 $r6, s[0x0024]               // NK
	mul.lo.u32 $r7, $r3, $r6
	shl.u32 $r7, $r7, 0x00000002
	add.u32 $r7, $r7, s[0x0010]          // &A[i][0]
	shl.u32 $r8, $r0, 0x00000002
	add.u32 $r8, $r8, s[0x0014]          // &B[0][j]
	shl.u32 $r9, $r5, 0x00000002         // B row stride
	mov.u32 $r10, $r124                  // acc = 0.0
	mov.u32 $r11, $r124                  // k = 0
	lloop: ld.global.f32 $r12, [$r7]
	ld.global.f32 $r13, [$r8]
	mad.f32 $r10, $r12, $r13, $r10
	add.u32 $r7, $r7, 0x00000004
	add.u32 $r8, $r8, $r9
	add.u32 $r11, $r11, 0x00000001
	set.lt.u32.u32 $p0/$o127, $r11, $r6
	@$p0.ne bra lloop
	mul.lo.u32 $r14, $r3, $r5
	add.u32 $r14, $r14, $r0
	shl.u32 $r14, $r14, 0x00000002
	add.u32 $r14, $r14, s[0x0018]        // &C[i][j]
	ld.global.f32 $r15, [$r14]
	mul.f32 $r10, $r10, 0f3FC00000       // alpha = 1.5
	mul.f32 $r15, $r15, 0f3F99999A       // beta = 1.2
	add.f32 $r10, $r10, $r15
	st.global.f32 [$r14], $r10
	lexit: exit
`

var gemmProg = ptx.MustAssemble("gemm_kernel", gemmSrc)

func buildGEMM(scale Scale) (*Instance, error) {
	ni, nj, nk := 16, 16, 16
	block := gpusim.Dim3{X: 8, Y: 8, Z: 1}
	grid := gpusim.Dim3{X: 2, Y: 2, Z: 1}
	if scale == ScalePaper {
		ni, nj, nk = 128, 128, 128
		block = gpusim.Dim3{X: 16, Y: 16, Z: 1}
		grid = gpusim.Dim3{X: 8, Y: 8, Z: 1}
	}
	const alpha, beta = float32(1.5), float32(1.2)

	a := make([]float32, ni*nk)
	b := make([]float32, nk*nj)
	c := make([]float32, ni*nj)
	for i := range a {
		a[i] = synth(0xB1, i)
	}
	for i := range b {
		b[i] = synth(0xB2, i)
	}
	for i := range c {
		c[i] = synth(0xB3, i)
	}

	aOff, bOff, cOff := 0, 4*ni*nk, 4*ni*nk+4*nk*nj
	dev := gpusim.NewDevice(cOff + 4*ni*nj)
	dev.WriteWords(aOff, wordsF32(a))
	dev.WriteWords(bOff, wordsF32(b))
	dev.WriteWords(cOff, wordsF32(c))

	want := make([]float32, ni*nj)
	for i := 0; i < ni; i++ {
		for j := 0; j < nj; j++ {
			var acc float32
			for k := 0; k < nk; k++ {
				acc = a[i*nk+k]*b[k*nj+j] + acc
			}
			want[i*nj+j] = acc*alpha + c[i*nj+j]*beta
		}
	}

	target := buildTarget(gemmMeta.Name(), gemmProg, grid, block,
		[]uint32{uint32(aOff), uint32(bOff), uint32(cOff),
			uint32(ni), uint32(nj), uint32(nk)},
		dev, []fault.Range{{Off: cOff, Len: 4 * ni * nj}}, 0)
	return &Instance{
		Meta: gemmMeta, Scale: scale, Target: target,
		WantOutput: bytesOfWords(wordsF32(want)),
	}, nil
}

var gemmMeta = Meta{
	Suite: "Polybench", App: "GEMM", Kernel: "gemm_kernel", ID: "K1",
	PaperThreads: 16384, PaperSites: 6.23e8, HasLoops: true,
}
