package kernels_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/trace"
)

// prep builds and prepares a kernel at small scale.
func prep(t *testing.T, name string) *kernels.Instance {
	t.Helper()
	spec, ok := kernels.ByName(name)
	if !ok {
		t.Fatalf("kernel %q missing", name)
	}
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Target.Prepare(); err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestStructureSnapshot pins the structural features each kernel was built
// to exhibit — the properties the paper's pruning exploits. A change that
// silently flattens a kernel's thread classes or unrolls its loops would
// invalidate the reproduction even with correct outputs; this test catches
// that.
func TestStructureSnapshot(t *testing.T) {
	cases := []struct {
		name string
		// exact values unless < 0 (meaning "at least |v|")
		ctaGroups, threadGroups int
		// busiest thread's loop count and total iterations
		loops, iters int
	}{
		{"HotSpot K1", 9, -20, 0, 0},   // many CTA classes, unrolled pyramid
		{"K-Means K1", 1, 1, 1, 17},    // uniform threads, feature loop
		{"K-Means K2", -2, -4, 2, -20}, // nested cluster/feature loops
		{"Gaussian K1", 2, 3, 0, 0},    // active CTA vs idle CTA
		{"Gaussian K2", -3, -6, 0, 0},  // 2-D bounds divergence
		{"Gaussian K125", 2, 3, 0, 0},  // late step: 1 active thread
		{"Gaussian K126", -2, -5, 0, 0},
		{"PathFinder K1", 1, 2, 1, 8}, // edge vs interior columns
		{"LUD K44", 1, 2, 2, -100},    // row vs column panel paths
		{"LUD K45", 1, 1, 0, 0},       // fully unrolled internal
		{"LUD K46", 1, 16, -1, -100},  // triangular: one class per thread
		{"2DCONV K1", 4, -10, 0, 0},   // border exits vs interior stencil
		{"MVT K1", 1, 1, 1, 64},       // one dot-product loop
		{"2MM K1", 1, 1, 1, 16},
		{"GEMM K1", 1, 1, 1, 16},
		{"SYRK K1", 1, 1, 1, 16},
		{"NN K1", 1, 1, 0, 0}, // straight-line code
	}
	check := func(name string, got, want int) {
		t.Helper()
		if want < 0 {
			if got < -want {
				t.Errorf("%s = %d, want at least %d", name, got, -want)
			}
		} else if got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			inst := prep(t, c.name)
			prof := inst.Target.Profile()
			ctas := core.GroupCTAs(prof)
			threads := core.GroupThreads(prof, ctas, core.GroupingOptions{})
			check("CTA groups", len(ctas), c.ctaGroups)
			check("thread groups", len(threads), c.threadGroups)

			var busiest trace.LoopSummary
			for i := range prof.Threads {
				s := trace.SummarizeLoops(prof.Threads[i].PCs)
				if s.TotalIters > busiest.TotalIters {
					busiest = s
				}
			}
			check("loops", busiest.Loops, c.loops)
			check("loop iterations", busiest.TotalIters, c.iters)
		})
	}
}

// TestHasLoopsMetadata: each kernel's HasLoops flag (mirroring the paper's
// Table VII loop column) must agree with the measured dynamic loop
// structure.
func TestHasLoopsMetadata(t *testing.T) {
	for _, spec := range kernels.All() {
		spec := spec
		t.Run(spec.Meta.Name(), func(t *testing.T) {
			inst := prep(t, spec.Meta.Name())
			prof := inst.Target.Profile()
			hasLoops := false
			for i := range prof.Threads {
				if trace.SummarizeLoops(prof.Threads[i].PCs).Loops > 0 {
					hasLoops = true
					break
				}
			}
			if hasLoops != spec.Meta.HasLoops {
				t.Fatalf("HasLoops metadata %v, measured %v", spec.Meta.HasLoops, hasLoops)
			}
		})
	}
}

// TestBuildDeterminism: building an instance twice yields bit-identical
// inputs, golden outputs, and profiles — the precondition for the
// reproducibility of every experiment.
func TestBuildDeterminism(t *testing.T) {
	for _, name := range []string{"2DCONV K1", "PathFinder K1", "LUD K46"} {
		a, b := prep(t, name), prep(t, name)
		if !bytes.Equal(a.Target.Golden(), b.Target.Golden()) {
			t.Fatalf("%s: golden outputs differ between builds", name)
		}
		pa, pb := a.Target.Profile(), b.Target.Profile()
		for i := range pa.Threads {
			if pa.Threads[i].ICnt != pb.Threads[i].ICnt || pa.Threads[i].Sig != pb.Threads[i].Sig {
				t.Fatalf("%s: thread %d profile differs between builds", name, i)
			}
		}
	}
}

// TestOutputRangesWithinDevice: every kernel's declared output ranges must
// lie inside its device, and the golden output must cover them fully.
func TestOutputRangesWithinDevice(t *testing.T) {
	for _, spec := range kernels.All() {
		inst, err := spec.Build(kernels.ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		var total int
		for _, r := range inst.Target.Output {
			if r.Off < 0 || r.Len <= 0 || r.Off+r.Len > inst.Target.Init.Size() {
				t.Errorf("%s: output range %+v outside device of %d bytes",
					spec.Meta.Name(), r, inst.Target.Init.Size())
			}
			total += r.Len
		}
		if total != len(inst.WantOutput) {
			t.Errorf("%s: output ranges cover %d bytes, reference has %d",
				spec.Meta.Name(), total, len(inst.WantOutput))
		}
	}
}

// TestPlansOnAllKernels: BuildPlan succeeds on every kernel and never emits
// an invalid site; weights stay positive and stage counts monotone.
func TestPlansOnAllKernels(t *testing.T) {
	for _, spec := range kernels.All() {
		spec := spec
		t.Run(spec.Meta.Name(), func(t *testing.T) {
			inst := prep(t, spec.Meta.Name())
			plan, err := core.BuildPlan(inst.Target, core.Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			s := plan.Stages
			if !(s.Exhaustive >= s.Thread && s.Thread >= s.Inst && s.Inst >= s.Loop) {
				t.Fatalf("stage counts not monotone: %+v", s)
			}
			for _, ws := range plan.Sites {
				if ws.Weight <= 0 {
					t.Fatalf("non-positive weight at %v", ws.Site)
				}
				bits := inst.Target.DestBitsAt(ws.Site.Thread, ws.Site.DynInst)
				if bits == 0 || ws.Site.Bit >= bits {
					t.Fatalf("invalid planned site %v (%d-bit dest)", ws.Site, bits)
				}
			}
			// Weighted mass accounts for the full population within 2%
			// even under plain iCnt grouping (exact under signatures).
			exhaustive := float64(fault.NewSpace(inst.Target.Profile()).Total())
			if w := plan.TotalWeight(); w < 0.98*exhaustive || w > 1.02*exhaustive {
				t.Fatalf("plan mass %v vs exhaustive %v", w, exhaustive)
			}
		})
	}
}
