package kernels

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/ptx"
)

// HotSpot (Rodinia) calculate_temp: thermal stencil with the pyramid
// optimization. Each CTA stages its temperature/power tile in shared memory
// and runs two block-local Jacobi steps with a shrinking valid region;
// threads on the chip border keep their temperature, and tile-halo threads
// keep stale values — exactly the kind of position-dependent control flow
// that gives the paper's Table IV its ten CTA groups and wide iCnt range.
// The two steps are statically unrolled (Rodinia uses #pragma unroll), which
// is why Table VII reports zero loop iterations for HotSpot.
//
// Parameters: s[0x10]=&temp, s[0x14]=&power, s[0x18]=&out, s[0x1c]=N.
// Shared layout: tile temperatures at 0x40, tile power at 0x440.
const hotspotPrologSrc = `
	cvt.u32.u16 $r0, %tid.x              // lx
	cvt.u32.u16 $r1, %tid.y              // ly
	cvt.u32.u16 $r2, %ntid.x             // bw
	cvt.u32.u16 $r3, %ctaid.x
	mad.lo.u32 $r3, $r3, $r2, $r0        // gx
	cvt.u32.u16 $r4, %ctaid.y
	cvt.u32.u16 $r5, %ntid.y
	mad.lo.u32 $r4, $r4, $r5, $r1        // gy
	mov.u32 $r5, s[0x001c]               // N
	mul.lo.u32 $r6, $r1, $r2
	add.u32 $r6, $r6, $r0
	shl.u32 $r6, $r6, 0x00000002         // local index (bytes)
	mul.lo.u32 $r7, $r4, $r5
	add.u32 $r7, $r7, $r3
	shl.u32 $r7, $r7, 0x00000002         // global index (bytes)
	shl.u32 $r12, $r2, 0x00000002        // tile row stride (bytes)
	add.u32 $r8, $r7, s[0x0010]
	ld.global.f32 $r9, [$r8]
	st.shared.f32 s[$r6+0x0040], $r9     // stage temperature
	add.u32 $r8, $r7, s[0x0014]
	ld.global.f32 $r9, [$r8]
	st.shared.f32 s[$r6+0x0440], $r9     // stage power
	bar.sync 0x00000000
`

const hotspotEpilogSrc = `
	ld.shared.f32 $r10, s[$r6+0x0040]
	add.u32 $r8, $r7, s[0x0018]
	st.global.f32 [$r8], $r10
	exit
`

// hotspotStep emits one unrolled pyramid step: valid-region low bound 1+it,
// high bound bw-(2+it).
func hotspotStep(it int) string {
	return fmt.Sprintf(`
	set.eq.u32.u32 $p0/$o127, $r4, $r124
	@$p0.ne bra lkeep%[1]d
	sub.u32 $r8, $r5, 0x00000001
	set.eq.u32.u32 $p0/$o127, $r4, $r8
	@$p0.ne bra lkeep%[1]d
	set.eq.u32.u32 $p0/$o127, $r3, $r124
	@$p0.ne bra lkeep%[1]d
	set.eq.u32.u32 $p0/$o127, $r3, $r8
	@$p0.ne bra lkeep%[1]d
	set.lt.u32.u32 $p0/$o127, $r0, 0x%08[2]x
	@$p0.ne bra lkeep%[1]d
	sub.u32 $r9, $r2, 0x%08[3]x
	set.gt.u32.u32 $p0/$o127, $r0, $r9
	@$p0.ne bra lkeep%[1]d
	set.lt.u32.u32 $p0/$o127, $r1, 0x%08[2]x
	@$p0.ne bra lkeep%[1]d
	set.gt.u32.u32 $p0/$o127, $r1, $r9
	@$p0.ne bra lkeep%[1]d
	ld.shared.f32 $r10, s[$r6+0x0040]
	sub.u32 $r13, $r6, $r12
	ld.shared.f32 $r11, s[$r13+0x0040]   // north
	add.u32 $r13, $r6, $r12
	ld.shared.f32 $r14, s[$r13+0x0040]   // south
	ld.shared.f32 $r15, s[$r6+0x003c]    // west
	ld.shared.f32 $r16, s[$r6+0x0044]    // east
	ld.shared.f32 $r17, s[$r6+0x0440]    // power
	add.f32 $r18, $r11, $r14
	mul.f32 $r19, $r10, 0f40000000
	sub.f32 $r18, $r18, $r19
	mul.f32 $r18, $r18, 0f3F000000       // vertical coupling 0.5
	add.f32 $r20, $r15, $r16
	sub.f32 $r20, $r20, $r19
	mul.f32 $r20, $r20, 0f3E99999A       // horizontal coupling 0.3
	add.f32 $r21, $r17, $r18
	add.f32 $r21, $r21, $r20
	mad.f32 $r10, $r21, 0f3DCCCCCD, $r10 // dt 0.1
	bra lwrite%[1]d
	lkeep%[1]d: ld.shared.f32 $r10, s[$r6+0x0040]
	lwrite%[1]d: bar.sync 0x00000000
	st.shared.f32 s[$r6+0x0040], $r10
	bar.sync 0x00000000
`, it, 1+it, 2+it)
}

var hotspotProg = ptx.MustAssemble("calculate_temp",
	hotspotPrologSrc+hotspotStep(0)+hotspotStep(1)+hotspotEpilogSrc)

// hotspotRef replicates the kernel on the host in float32, CTA by CTA.
func hotspotRef(temp, power []float32, n, bw, bh int) []float32 {
	out := make([]float32, n*n)
	const (
		c2   = float32(2.0)
		cv   = float32(0.5)
		ch   = float32(0.3)
		cdt  = float32(0.1)
		step = 2
	)
	for cy := 0; cy < n/bh; cy++ {
		for cx := 0; cx < n/bw; cx++ {
			tile := make([]float32, bw*bh)
			ptile := make([]float32, bw*bh)
			for ly := 0; ly < bh; ly++ {
				for lx := 0; lx < bw; lx++ {
					g := (cy*bh+ly)*n + cx*bw + lx
					tile[ly*bw+lx] = temp[g]
					ptile[ly*bw+lx] = power[g]
				}
			}
			for it := 0; it < step; it++ {
				lo, hi := 1+it, bw-(2+it)
				next := make([]float32, bw*bh)
				copy(next, tile)
				for ly := 0; ly < bh; ly++ {
					for lx := 0; lx < bw; lx++ {
						gx, gy := cx*bw+lx, cy*bh+ly
						if gy == 0 || gy == n-1 || gx == 0 || gx == n-1 {
							continue
						}
						if lx < lo || lx > hi || ly < lo || ly > hi {
							continue
						}
						l := ly*bw + lx
						t := tile[l]
						two := t * c2
						v1 := (tile[l-bw] + tile[l+bw]) - two
						v1 = v1 * cv
						v2 := (tile[l-1] + tile[l+1]) - two
						v2 = v2 * ch
						s := ptile[l] + v1
						s = s + v2
						next[l] = s*cdt + t
					}
				}
				tile = next
			}
			for ly := 0; ly < bh; ly++ {
				for lx := 0; lx < bw; lx++ {
					out[(cy*bh+ly)*n+cx*bw+lx] = tile[ly*bw+lx]
				}
			}
		}
	}
	return out
}

func buildHotSpot(scale Scale) (*Instance, error) {
	n, bw, bh := 24, 8, 8
	grid := gpusim.Dim3{X: 3, Y: 3, Z: 1}
	if scale == ScalePaper {
		n, bw, bh = 96, 16, 16
		grid = gpusim.Dim3{X: 6, Y: 6, Z: 1}
	}
	block := gpusim.Dim3{X: bw, Y: bh, Z: 1}

	temp := make([]float32, n*n)
	power := make([]float32, n*n)
	for i := range temp {
		temp[i] = 60 + synth(0x75, i) // ambient-ish temperatures
		power[i] = synthPos(0x76, i) * 0.25
	}

	tOff, pOff, oOff := 0, 4*n*n, 8*n*n
	dev := gpusim.NewDevice(12 * n * n)
	dev.WriteWords(tOff, wordsF32(temp))
	dev.WriteWords(pOff, wordsF32(power))

	want := hotspotRef(temp, power, n, bw, bh)

	target := buildTarget(hotspotMeta.Name(), hotspotProg, grid, block,
		[]uint32{uint32(tOff), uint32(pOff), uint32(oOff), uint32(n)},
		dev, []fault.Range{{Off: oOff, Len: 4 * n * n}}, 0)
	return &Instance{
		Meta: hotspotMeta, Scale: scale, Target: target,
		WantOutput: bytesOfWords(wordsF32(want)),
	}, nil
}

var hotspotMeta = Meta{
	Suite: "Rodinia", App: "HotSpot", Kernel: "calculate_temp", ID: "K1",
	PaperThreads: 9216, PaperSites: 3.44e7,
}
