package kernels

import (
	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/ptx"
)

// MVT (Polybench) mvt_kernel1: x1 = x1 + A*y1. One thread per row; the dot
// product loop runs N iterations, which is why the paper's Table VII reports
// 512 loop iterations and 99.71% of instructions inside loops for this
// kernel.
//
// Parameter block: s[0x10]=&A, s[0x14]=&y1, s[0x18]=&x1, s[0x1c]=N.
const mvtSrc = `
	cvt.u32.u16 $r0, %tid.x
	cvt.u32.u16 $r1, %ctaid.x
	cvt.u32.u16 $r2, %ntid.x
	mad.lo.u32 $r0, $r1, $r2, $r0        // i (row)
	mov.u32 $r3, s[0x001c]               // N
	set.ge.u32.u32 $p0/$o127, $r0, $r3
	@$p0.ne bra lexit
	mul.lo.u32 $r4, $r0, $r3
	shl.u32 $r4, $r4, 0x00000002
	add.u32 $r4, $r4, s[0x0010]          // &A[i][0]
	mov.u32 $r5, s[0x0014]               // &y1[0]
	shl.u32 $r6, $r0, 0x00000002
	add.u32 $r6, $r6, s[0x0018]          // &x1[i]
	ld.global.f32 $r7, [$r6]             // acc = x1[i]
	mov.u32 $r8, $r124                   // j = 0
	lloop: ld.global.f32 $r9, [$r4]
	ld.global.f32 $r10, [$r5]
	mad.f32 $r7, $r9, $r10, $r7
	add.u32 $r4, $r4, 0x00000004
	add.u32 $r5, $r5, 0x00000004
	add.u32 $r8, $r8, 0x00000001
	set.lt.u32.u32 $p0/$o127, $r8, $r3
	@$p0.ne bra lloop
	st.global.f32 [$r6], $r7
	lexit: exit
`

var mvtProg = ptx.MustAssemble("mvt_kernel1", mvtSrc)

func buildMVT(scale Scale) (*Instance, error) {
	n := 64
	block := gpusim.Dim3{X: 32, Y: 1, Z: 1}
	grid := gpusim.Dim3{X: 2, Y: 1, Z: 1}
	if scale == ScalePaper {
		n = 512
		block = gpusim.Dim3{X: 256, Y: 1, Z: 1}
		grid = gpusim.Dim3{X: 2, Y: 1, Z: 1}
	}

	a := make([]float32, n*n)
	y1 := make([]float32, n)
	x1 := make([]float32, n)
	for i := range a {
		a[i] = synth(0xA1, i)
	}
	for i := 0; i < n; i++ {
		y1[i] = synth(0xA2, i)
		x1[i] = synth(0xA3, i)
	}

	aOff, y1Off, x1Off := 0, 4*n*n, 4*n*n+4*n
	dev := gpusim.NewDevice(4*n*n + 8*n)
	dev.WriteWords(aOff, wordsF32(a))
	dev.WriteWords(y1Off, wordsF32(y1))
	dev.WriteWords(x1Off, wordsF32(x1))

	want := make([]float32, n)
	for i := 0; i < n; i++ {
		acc := x1[i]
		for j := 0; j < n; j++ {
			acc = a[i*n+j]*y1[j] + acc
		}
		want[i] = acc
	}

	target := buildTarget(mvtMeta.Name(), mvtProg, grid, block,
		[]uint32{uint32(aOff), uint32(y1Off), uint32(x1Off), uint32(n)},
		dev, []fault.Range{{Off: x1Off, Len: 4 * n}}, 0)
	return &Instance{
		Meta: mvtMeta, Scale: scale, Target: target,
		WantOutput: bytesOfWords(wordsF32(want)),
	}, nil
}

var mvtMeta = Meta{
	Suite: "Polybench", App: "MVT", Kernel: "mvt_kernel1", ID: "K1",
	PaperThreads: 512, PaperSites: 6.83e7, HasLoops: true,
}
