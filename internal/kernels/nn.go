package kernels

import (
	"math"

	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/ptx"
)

// NN (Rodinia) euclid: nearest-neighbour distance kernel. One thread per
// record computes the euclidean distance from the record's (lat, lng) to the
// query point. Straight-line code with no loops — the paper evaluates NN
// only in the loop study (Table VII: 43008 threads, 0 loop iterations).
//
// Parameters: s[0x10]=&lat, s[0x14]=&lng, s[0x18]=&dist, s[0x1c]=nrecords,
// s[0x20]=target lat (f32 bits), s[0x24]=target lng (f32 bits).
const nnSrc = `
	cvt.u32.u16 $r0, %tid.x
	cvt.u32.u16 $r1, %ctaid.x
	cvt.u32.u16 $r2, %ntid.x
	mad.lo.u32 $r0, $r1, $r2, $r0        // record index
	mov.u32 $r3, s[0x001c]               // nrecords
	set.ge.u32.u32 $p0/$o127, $r0, $r3
	@$p0.ne bra lexit
	shl.u32 $r4, $r0, 0x00000002
	add.u32 $r5, $r4, s[0x0010]
	ld.global.f32 $r6, [$r5]             // lat
	add.u32 $r5, $r4, s[0x0014]
	ld.global.f32 $r7, [$r5]             // lng
	sub.f32 $r6, $r6, s[0x0020]
	sub.f32 $r7, $r7, s[0x0024]
	mul.f32 $r8, $r6, $r6
	mad.f32 $r8, $r7, $r7, $r8
	sqrt.f32 $r8, $r8
	add.u32 $r5, $r4, s[0x0018]
	st.global.f32 [$r5], $r8
	lexit: exit
`

var nnProg = ptx.MustAssemble("euclid", nnSrc)

func buildNN(scale Scale) (*Instance, error) {
	nrec := 512
	block := gpusim.Dim3{X: 64, Y: 1, Z: 1}
	grid := gpusim.Dim3{X: 8, Y: 1, Z: 1}
	if scale == ScalePaper {
		nrec = 43008
		block = gpusim.Dim3{X: 256, Y: 1, Z: 1}
		grid = gpusim.Dim3{X: 168, Y: 1, Z: 1}
	}
	const tlat, tlng = float32(30.5), float32(-90.25)

	lat := make([]float32, nrec)
	lng := make([]float32, nrec)
	for i := range lat {
		lat[i] = 30 + synth(0x11, i)
		lng[i] = -90 + synth(0x12, i)
	}

	latOff, lngOff, distOff := 0, 4*nrec, 8*nrec
	dev := gpusim.NewDevice(12 * nrec)
	dev.WriteWords(latOff, wordsF32(lat))
	dev.WriteWords(lngOff, wordsF32(lng))

	want := make([]float32, nrec)
	for i := range want {
		dx := lat[i] - tlat
		dy := lng[i] - tlng
		s := dx * dx
		s = dy*dy + s
		want[i] = float32(math.Sqrt(float64(s)))
	}

	target := buildTarget(nnMeta.Name(), nnProg, grid, block,
		[]uint32{uint32(latOff), uint32(lngOff), uint32(distOff),
			uint32(nrec), f32w(tlat), f32w(tlng)},
		dev, []fault.Range{{Off: distOff, Len: 4 * nrec}}, 0)
	return &Instance{
		Meta: nnMeta, Scale: scale, Target: target,
		WantOutput: bytesOfWords(wordsF32(want)),
	}, nil
}

var nnMeta = Meta{
	Suite: "Rodinia", App: "NN", Kernel: "euclid", ID: "K1",
	PaperThreads: 43008,
}
