package kernels

import (
	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/ptx"
)

// SYRK (Polybench): symmetric rank-K update C = beta*C + alpha*A*A^T. Like
// GEMM one thread computes one C element, but both loop operands stream from
// A (rows i and j), stride 4 each.
//
// Parameters: s[0x10]=&A, s[0x14]=&C, s[0x18]=N, s[0x1c]=NK.
const syrkSrc = `
	cvt.u32.u16 $r0, %tid.x
	cvt.u32.u16 $r1, %ctaid.x
	cvt.u32.u16 $r2, %ntid.x
	mad.lo.u32 $r0, $r1, $r2, $r0        // j
	cvt.u32.u16 $r3, %tid.y
	cvt.u32.u16 $r4, %ctaid.y
	cvt.u32.u16 $r5, %ntid.y
	mad.lo.u32 $r3, $r4, $r5, $r3        // i
	mov.u32 $r4, s[0x0018]               // N
	set.ge.u32.u32 $p0/$o127, $r3, $r4
	@$p0.ne bra lexit
	set.ge.u32.u32 $p0/$o127, $r0, $r4
	@$p0.ne bra lexit
	mov.u32 $r6, s[0x001c]               // NK
	mul.lo.u32 $r7, $r3, $r6
	shl.u32 $r7, $r7, 0x00000002
	add.u32 $r7, $r7, s[0x0010]          // &A[i][0]
	mul.lo.u32 $r8, $r0, $r6
	shl.u32 $r8, $r8, 0x00000002
	add.u32 $r8, $r8, s[0x0010]          // &A[j][0]
	mov.u32 $r10, $r124                  // acc = 0.0
	mov.u32 $r11, $r124                  // k = 0
	lloop: ld.global.f32 $r12, [$r7]
	ld.global.f32 $r13, [$r8]
	mad.f32 $r10, $r12, $r13, $r10
	add.u32 $r7, $r7, 0x00000004
	add.u32 $r8, $r8, 0x00000004
	add.u32 $r11, $r11, 0x00000001
	set.lt.u32.u32 $p0/$o127, $r11, $r6
	@$p0.ne bra lloop
	mul.lo.u32 $r14, $r3, $r4
	add.u32 $r14, $r14, $r0
	shl.u32 $r14, $r14, 0x00000002
	add.u32 $r14, $r14, s[0x0014]        // &C[i][j]
	ld.global.f32 $r15, [$r14]
	mul.f32 $r10, $r10, 0f3FC00000       // alpha = 1.5
	mul.f32 $r15, $r15, 0f3F99999A       // beta = 1.2
	add.f32 $r10, $r10, $r15
	st.global.f32 [$r14], $r10
	lexit: exit
`

var syrkProg = ptx.MustAssemble("syrk_kernel", syrkSrc)

func buildSYRK(scale Scale) (*Instance, error) {
	n, nk := 16, 16
	block := gpusim.Dim3{X: 8, Y: 8, Z: 1}
	grid := gpusim.Dim3{X: 2, Y: 2, Z: 1}
	if scale == ScalePaper {
		n, nk = 128, 128
		block = gpusim.Dim3{X: 16, Y: 16, Z: 1}
		grid = gpusim.Dim3{X: 8, Y: 8, Z: 1}
	}
	const alpha, beta = float32(1.5), float32(1.2)

	a := make([]float32, n*nk)
	c := make([]float32, n*n)
	for i := range a {
		a[i] = synth(0xD1, i)
	}
	for i := range c {
		c[i] = synth(0xD2, i)
	}

	aOff, cOff := 0, 4*n*nk
	dev := gpusim.NewDevice(cOff + 4*n*n)
	dev.WriteWords(aOff, wordsF32(a))
	dev.WriteWords(cOff, wordsF32(c))

	want := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for k := 0; k < nk; k++ {
				acc = a[i*nk+k]*a[j*nk+k] + acc
			}
			want[i*n+j] = acc*alpha + c[i*n+j]*beta
		}
	}

	target := buildTarget(syrkMeta.Name(), syrkProg, grid, block,
		[]uint32{uint32(aOff), uint32(cOff), uint32(n), uint32(nk)},
		dev, []fault.Range{{Off: cOff, Len: 4 * n * n}}, 0)
	return &Instance{
		Meta: syrkMeta, Scale: scale, Target: target,
		WantOutput: bytesOfWords(wordsF32(want)),
	}, nil
}

var syrkMeta = Meta{
	Suite: "Polybench", App: "SYRK", Kernel: "syrk_kernel", ID: "K1",
	PaperThreads: 16384, PaperSites: 6.23e8, HasLoops: true,
}
