package kernels

import (
	"math"

	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/ptx"
)

// K-Means K1 (Rodinia) invert_mapping: transposes the point-major feature
// matrix into feature-major layout. One thread per point, one loop over the
// features (the paper's Table VII: 34 iterations, 82.42% in loop).
//
// Parameters: s[0x10]=&input, s[0x14]=&output, s[0x18]=npoints,
// s[0x1c]=nfeatures.
const kmeans1Src = `
	cvt.u32.u16 $r0, %tid.x
	cvt.u32.u16 $r1, %ctaid.x
	cvt.u32.u16 $r2, %ntid.x
	mad.lo.u32 $r0, $r1, $r2, $r0        // point index
	mov.u32 $r3, s[0x0018]               // npoints
	set.ge.u32.u32 $p0/$o127, $r0, $r3
	@$p0.ne bra lexit
	mov.u32 $r4, s[0x001c]               // nfeatures
	mul.lo.u32 $r5, $r0, $r4
	shl.u32 $r5, $r5, 0x00000002
	add.u32 $r5, $r5, s[0x0010]          // &in[i][0]
	shl.u32 $r6, $r0, 0x00000002
	add.u32 $r6, $r6, s[0x0014]          // &out[0][i]
	shl.u32 $r7, $r3, 0x00000002         // output feature stride
	mov.u32 $r8, $r124                   // f = 0
	lloop: ld.global.f32 $r9, [$r5]
	st.global.f32 [$r6], $r9
	add.u32 $r5, $r5, 0x00000004
	add.u32 $r6, $r6, $r7
	add.u32 $r8, $r8, 0x00000001
	set.lt.u32.u32 $p0/$o127, $r8, $r4
	@$p0.ne bra lloop
	lexit: exit
`

// K-Means K2 (Rodinia) kmeansPoint: assigns each point to the nearest
// cluster centre. Nested loops — clusters outside, features inside — give
// the paper's 170 (= 5 clusters x 34 features) loop iterations.
//
// Parameters: s[0x10]=&feature (feature-major), s[0x14]=&clusters,
// s[0x18]=&membership, s[0x1c]=npoints, s[0x20]=nclusters, s[0x24]=nfeatures.
const kmeans2Src = `
	cvt.u32.u16 $r0, %tid.x
	cvt.u32.u16 $r1, %ctaid.x
	cvt.u32.u16 $r2, %ntid.x
	mad.lo.u32 $r0, $r1, $r2, $r0        // point index
	mov.u32 $r3, s[0x001c]               // npoints
	set.ge.u32.u32 $p0/$o127, $r0, $r3
	@$p0.ne bra lexit
	shl.u32 $r4, $r3, 0x00000002         // feature stride
	shl.u32 $r5, $r0, 0x00000002
	add.u32 $r5, $r5, s[0x0010]          // &feature[0][i]
	mov.u32 $r6, s[0x0014]               // cluster cursor
	mov.u32 $r7, 0x7f800000              // bestDist = +inf
	mov.u32 $r8, $r124                   // bestIdx = 0
	mov.u32 $r9, $r124                   // c = 0
	louter: mov.u32 $r10, $r124          // dist = 0
	mov.u32 $r11, $r124                  // f = 0
	mov.u32 $r12, $r5                    // feature cursor
	linner: ld.global.f32 $r13, [$r12]
	ld.global.f32 $r14, [$r6]
	sub.f32 $r13, $r13, $r14
	mad.f32 $r10, $r13, $r13, $r10
	add.u32 $r12, $r12, $r4
	add.u32 $r6, $r6, 0x00000004
	add.u32 $r11, $r11, 0x00000001
	set.lt.u32.u32 $p0/$o127, $r11, s[0x0024]
	@$p0.ne bra linner
	set.lt.f32.f32 $p0/$o127, $r10, $r7
	@$p0.eq bra lskip
	mov.u32 $r7, $r10                    // bestDist = dist
	mov.u32 $r8, $r9                     // bestIdx = c
	lskip: add.u32 $r9, $r9, 0x00000001
	set.lt.u32.u32 $p0/$o127, $r9, s[0x0020]
	@$p0.ne bra louter
	shl.u32 $r15, $r0, 0x00000002
	add.u32 $r15, $r15, s[0x0018]
	st.global.u32 [$r15], $r8
	lexit: exit
`

var (
	kmeans1Prog = ptx.MustAssemble("invert_mapping", kmeans1Src)
	kmeans2Prog = ptx.MustAssemble("kmeansPoint", kmeans2Src)
)

// kmeansDims returns the scale-dependent problem dimensions shared by both
// kernels.
func kmeansDims(scale Scale) (npoints, nfeatures, nclusters int, grid, block gpusim.Dim3) {
	if scale == ScalePaper {
		return 2304, 34, 5,
			gpusim.Dim3{X: 9, Y: 1, Z: 1}, gpusim.Dim3{X: 256, Y: 1, Z: 1}
	}
	return 128, 17, 4,
		gpusim.Dim3{X: 4, Y: 1, Z: 1}, gpusim.Dim3{X: 32, Y: 1, Z: 1}
}

func kmeansInput(npoints, nfeatures int) []float32 {
	in := make([]float32, npoints*nfeatures)
	for i := range in {
		in[i] = synth(0x4B, i)
	}
	return in
}

func buildKMeans1(scale Scale) (*Instance, error) {
	npoints, nfeatures, _, grid, block := kmeansDims(scale)
	in := kmeansInput(npoints, nfeatures)

	inOff, outOff := 0, 4*npoints*nfeatures
	dev := gpusim.NewDevice(8 * npoints * nfeatures)
	dev.WriteWords(inOff, wordsF32(in))

	want := make([]float32, npoints*nfeatures)
	for i := 0; i < npoints; i++ {
		for f := 0; f < nfeatures; f++ {
			want[f*npoints+i] = in[i*nfeatures+f]
		}
	}

	target := buildTarget(kmeans1Meta.Name(), kmeans1Prog, grid, block,
		[]uint32{uint32(inOff), uint32(outOff), uint32(npoints), uint32(nfeatures)},
		dev, []fault.Range{{Off: outOff, Len: 4 * npoints * nfeatures}}, 0)
	return &Instance{
		Meta: kmeans1Meta, Scale: scale, Target: target,
		WantOutput: bytesOfWords(wordsF32(want)),
	}, nil
}

func buildKMeans2(scale Scale) (*Instance, error) {
	npoints, nfeatures, nclusters, grid, block := kmeansDims(scale)

	// Feature matrix in feature-major layout (the output of K1).
	in := kmeansInput(npoints, nfeatures)
	feat := make([]float32, npoints*nfeatures)
	for i := 0; i < npoints; i++ {
		for f := 0; f < nfeatures; f++ {
			feat[f*npoints+i] = in[i*nfeatures+f]
		}
	}
	clusters := make([]float32, nclusters*nfeatures)
	for i := range clusters {
		clusters[i] = synth(0x4C, i)
	}

	featOff := 0
	clustOff := 4 * npoints * nfeatures
	membOff := clustOff + 4*nclusters*nfeatures
	dev := gpusim.NewDevice(membOff + 4*npoints)
	dev.WriteWords(featOff, wordsF32(feat))
	dev.WriteWords(clustOff, wordsF32(clusters))

	want := make([]uint32, npoints)
	for i := 0; i < npoints; i++ {
		best := uint32(0)
		bestDist := float32(math.Inf(1))
		for c := 0; c < nclusters; c++ {
			var dist float32
			for f := 0; f < nfeatures; f++ {
				d := feat[f*npoints+i] - clusters[c*nfeatures+f]
				dist = d*d + dist
			}
			if dist < bestDist {
				bestDist = dist
				best = uint32(c)
			}
		}
		want[i] = best
	}

	target := buildTarget(kmeans2Meta.Name(), kmeans2Prog, grid, block,
		[]uint32{uint32(featOff), uint32(clustOff), uint32(membOff),
			uint32(npoints), uint32(nclusters), uint32(nfeatures)},
		dev, []fault.Range{{Off: membOff, Len: 4 * npoints}}, 0)
	return &Instance{
		Meta: kmeans2Meta, Scale: scale, Target: target,
		WantOutput: bytesOfWords(want),
	}, nil
}

var (
	kmeans1Meta = Meta{
		Suite: "Rodinia", App: "K-Means", Kernel: "invert_mapping", ID: "K1",
		PaperThreads: 2304, PaperSites: 1.47e7, HasLoops: true,
	}
	kmeans2Meta = Meta{
		Suite: "Rodinia", App: "K-Means", Kernel: "kmeansPoint", ID: "K2",
		PaperThreads: 2304, PaperSites: 9.67e7, HasLoops: true,
	}
)
