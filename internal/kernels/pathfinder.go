package kernels

import (
	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/ptx"
)

// PathFinder (Rodinia) dynproc_kernel: dynamic programming over a cost grid.
// Each thread owns one column; every iteration takes the minimum of the
// left/centre/right cumulative costs from shared memory and adds the wall
// cost of the next row. Threads at the tile edges skip a neighbour load
// (paper Fig. 5: representative threads differ by a handful of instructions
// per iteration), and the row loop gives Table VII's 20 iterations with
// 92.84% of instructions in the loop.
//
// Parameters: s[0x10]=&wall, s[0x14]=&prev, s[0x18]=&out, s[0x1c]=cols,
// s[0x20]=rows. Shared layout: the tile's cumulative costs at 0x40.
const pathfinderSrc = `
	cvt.u32.u16 $r0, %tid.x              // tx
	cvt.u32.u16 $r1, %ctaid.x
	cvt.u32.u16 $r2, %ntid.x
	mad.lo.u32 $r3, $r1, $r2, $r0        // col
	shl.u32 $r4, $r0, 0x00000002         // tx bytes
	shl.u32 $r5, $r3, 0x00000002         // col bytes
	add.u32 $r6, $r5, s[0x0014]
	ld.global.u32 $r7, [$r6]
	st.shared.u32 s[$r4+0x0040], $r7     // stage prev[col]
	bar.sync 0x00000000
	sub.u32 $r8, $r2, 0x00000001         // bw-1
	mov.u32 $r9, $r124                   // it = 0
	mov.u32 $r10, s[0x0010]
	add.u32 $r10, $r10, $r5              // &wall[0][col]
	shl.u32 $r11, s[0x001c], 0x00000002  // wall row stride
	// Boundary handling is hoisted out of the loop (paper Fig. 5: the
	// representative threads diverge once, in a block before the loop, and
	// share the entire loop body): edge threads alias their own cell as
	// the missing neighbour.
	mov.u32 $r17, $r4                    // left tile offset = own
	set.eq.u32.u32 $p0/$o127, $r0, $r124
	@$p0.ne bra lleft
	sub.u32 $r17, $r4, 0x00000004
	lleft: mov.u32 $r18, $r4             // right tile offset = own
	set.eq.u32.u32 $p0/$o127, $r0, $r8
	@$p0.ne bra lright
	add.u32 $r18, $r4, 0x00000004
	lright: nop
	lloop: ld.shared.u32 $r12, s[$r4+0x0040]  // centre
	ld.shared.u32 $r13, s[$r17+0x0040]   // left
	ld.shared.u32 $r14, s[$r18+0x0040]   // right
	min.u32 $r13, $r13, $r12
	min.u32 $r13, $r13, $r14
	ld.global.u32 $r15, [$r10]
	add.u32 $r13, $r13, $r15             // min + wall[it][col]
	bar.sync 0x00000000
	st.shared.u32 s[$r4+0x0040], $r13
	bar.sync 0x00000000
	add.u32 $r10, $r10, $r11
	add.u32 $r9, $r9, 0x00000001
	set.lt.u32.u32 $p0/$o127, $r9, s[0x0020]
	@$p0.ne bra lloop
	ld.shared.u32 $r12, s[$r4+0x0040]
	add.u32 $r16, $r5, s[0x0018]
	st.global.u32 [$r16], $r12
	exit
`

var pathfinderProg = ptx.MustAssemble("dynproc_kernel", pathfinderSrc)

func buildPathFinder(scale Scale) (*Instance, error) {
	cols, rows, bw := 128, 8, 32
	grid := gpusim.Dim3{X: 4, Y: 1, Z: 1}
	if scale == ScalePaper {
		cols, rows, bw = 1280, 20, 256
		grid = gpusim.Dim3{X: 5, Y: 1, Z: 1}
	}
	block := gpusim.Dim3{X: bw, Y: 1, Z: 1}

	wall := make([]uint32, rows*cols)
	prev := make([]uint32, cols)
	for i := range wall {
		wall[i] = uint32(synthPos(0x9A, i) * 4)
	}
	for i := range prev {
		prev[i] = uint32(synthPos(0x9B, i) * 8)
	}

	wOff := 0
	pOff := 4 * rows * cols
	oOff := pOff + 4*cols
	dev := gpusim.NewDevice(oOff + 4*cols)
	dev.WriteWords(wOff, wall)
	dev.WriteWords(pOff, prev)

	// Reference: tile-local DP (tiles do not exchange halo columns, matching
	// the kernel's shared-memory scope).
	cur := append([]uint32(nil), prev...)
	for it := 0; it < rows; it++ {
		next := make([]uint32, cols)
		for c := 0; c < cols; c++ {
			tx := c % bw
			best := cur[c]
			if tx > 0 && cur[c-1] < best {
				best = cur[c-1]
			}
			if tx < bw-1 && cur[c+1] < best {
				best = cur[c+1]
			}
			next[c] = best + wall[it*cols+c]
		}
		cur = next
	}

	target := buildTarget(pathfinderMeta.Name(), pathfinderProg, grid, block,
		[]uint32{uint32(wOff), uint32(pOff), uint32(oOff), uint32(cols), uint32(rows)},
		dev, []fault.Range{{Off: oOff, Len: 4 * cols}}, 0)
	return &Instance{
		Meta: pathfinderMeta, Scale: scale, Target: target,
		WantOutput: bytesOfWords(cur),
	}, nil
}

var pathfinderMeta = Meta{
	Suite: "Rodinia", App: "PathFinder", Kernel: "dynproc_kernel", ID: "K1",
	PaperThreads: 1280, PaperSites: 2.77e7, HasLoops: true,
}
