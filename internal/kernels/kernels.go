// Package kernels defines the reproduction's workload suite: the 10
// applications (17 static kernels, counting NN) from Rodinia and Polybench
// that the paper evaluates, rewritten in the PTXPlus-flavoured assembly of
// internal/ptx with Go host code that generates inputs, declares output
// ranges, and computes reference outputs for correctness testing.
//
// Every kernel supports two scales: ScalePaper matches the paper's Table I
// thread geometry (for fault-site accounting), and ScaleSmall shrinks the
// problem so injection campaigns and the test suite stay fast while
// preserving the kernel's structure (thread classes, divergence, loops).
package kernels

import (
	"math"

	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/isa"
)

// Scale selects a problem size.
type Scale uint8

// Scales.
const (
	// ScalePaper reproduces the thread geometry of the paper's Table I.
	ScalePaper Scale = iota
	// ScaleSmall is a reduced geometry for injection campaigns and tests.
	ScaleSmall
)

// String names the scale.
func (s Scale) String() string {
	if s == ScalePaper {
		return "paper"
	}
	return "small"
}

// Meta describes a kernel in the paper's terms.
type Meta struct {
	Suite  string // "Rodinia" or "Polybench"
	App    string // application name, e.g. "HotSpot"
	Kernel string // kernel function name, e.g. "calculate_temp"
	ID     string // paper kernel id, e.g. "K1"
	// PaperThreads and PaperSites echo the paper's Table I for comparison
	// in EXPERIMENTS.md (PaperSites 0 when the kernel is not in Table I).
	PaperThreads int
	PaperSites   float64
	// HasLoops mirrors Table VII's loop column.
	HasLoops bool
}

// Name is the canonical "App KID" identifier ("Gaussian K126").
func (m Meta) Name() string { return m.App + " " + m.ID }

// Instance is a buildable kernel instance: an injection target plus the
// host-computed reference output used to validate the simulator.
type Instance struct {
	Meta   Meta
	Scale  Scale
	Target *fault.Target
	// WantOutput is the reference output (same byte layout as
	// Target.Golden()) computed by a plain Go implementation.
	WantOutput []byte
}

// Spec is a registered kernel.
type Spec struct {
	Meta Meta
	// Build constructs an instance at the given scale.
	Build func(s Scale) (*Instance, error)
}

var registry []Spec

// register adds a kernel at package init; order defines report order.
func register(s Spec) { registry = append(registry, s) }

// init registers every kernel in the paper's Table I order (Rodinia first,
// then Polybench), with NN — which appears only in the paper's Table VII —
// last. Centralized here so report order never depends on file-init order.
func init() {
	register(Spec{Meta: hotspotMeta, Build: buildHotSpot})
	register(Spec{Meta: kmeans1Meta, Build: buildKMeans1})
	register(Spec{Meta: kmeans2Meta, Build: buildKMeans2})
	register(Spec{Meta: gaussianK1Meta, Build: buildGaussianFan1Early})
	register(Spec{Meta: gaussianK2Meta, Build: buildGaussianFan2Early})
	register(Spec{Meta: gaussianK125Meta, Build: buildGaussianFan1Late})
	register(Spec{Meta: gaussianK126Meta, Build: buildGaussianFan2Late})
	register(Spec{Meta: pathfinderMeta, Build: buildPathFinder})
	register(Spec{Meta: ludPerimeterMeta, Build: buildLUDPerimeter})
	register(Spec{Meta: ludInternalMeta, Build: buildLUDInternal})
	register(Spec{Meta: ludDiagonalMeta, Build: buildLUDDiagonal})
	register(Spec{Meta: conv2dMeta, Build: buildConv2D})
	register(Spec{Meta: mvtMeta, Build: buildMVT})
	register(Spec{Meta: mm2Meta, Build: buildMM2})
	register(Spec{Meta: gemmMeta, Build: buildGEMM})
	register(Spec{Meta: syrkMeta, Build: buildSYRK})
	register(Spec{Meta: nnMeta, Build: buildNN})
}

// All returns the registered kernels in registration (paper Table I) order.
func All() []Spec { return append([]Spec(nil), registry...) }

// ByName finds a kernel by its Meta.Name ("GEMM K1"), case-sensitively.
func ByName(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Meta.Name() == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names lists all kernel names in order.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Meta.Name()
	}
	return out
}

// TableIKernels returns the 16 kernels of the paper's Table I (everything
// except NN, which the paper evaluates only in the loop study).
func TableIKernels() []Spec {
	var out []Spec
	for _, s := range registry {
		if s.Meta.PaperSites > 0 {
			out = append(out, s)
		}
	}
	return out
}

// --- host-side helpers -------------------------------------------------

// synth generates a deterministic, well-conditioned float32 input stream:
// values in [-2, 2) with a period long enough to avoid accidental symmetry.
func synth(seed, i int) float32 {
	x := uint32(seed)*2654435761 + uint32(i)*40503 + 12829
	x ^= x >> 13
	x *= 2246822519
	x ^= x >> 16
	return float32(int32(x%4096)-2048) / 1024
}

// synthPos is synth shifted to (0.25, 4.25): safe as a divisor.
func synthPos(seed, i int) float32 {
	v := synth(seed, i)
	if v < 0 {
		v = -v
	}
	return v + 0.25
}

// f32w converts a float32 to its register/memory word.
func f32w(f float32) uint32 { return math.Float32bits(f) }

// wordsF32 packs float32s into words.
func wordsF32(fs []float32) []uint32 {
	out := make([]uint32, len(fs))
	for i, f := range fs {
		out[i] = f32w(f)
	}
	return out
}

// bytesOfWords serializes words little-endian (the device byte order).
func bytesOfWords(ws []uint32) []byte {
	out := make([]byte, 4*len(ws))
	for i, w := range ws {
		out[4*i] = byte(w)
		out[4*i+1] = byte(w >> 8)
		out[4*i+2] = byte(w >> 16)
		out[4*i+3] = byte(w >> 24)
	}
	return out
}

// buildTarget assembles the common Target plumbing.
func buildTarget(name string, prog *isa.Program, grid, block gpusim.Dim3, params []uint32,
	dev *gpusim.Device, output []fault.Range, sharedBytes int) *fault.Target {
	return &fault.Target{
		Name:        name,
		Prog:        prog,
		Grid:        grid,
		Block:       block,
		Params:      params,
		SharedBytes: sharedBytes,
		Init:        dev,
		Output:      output,
	}
}
