package kernels

import (
	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/ptx"
)

// Gaussian Elimination (Rodinia). Each elimination step t launches two
// kernels: Fan1 computes the multiplier column m[row][t] = a[row][t]/a[t][t]
// for row > t, and Fan2 applies the row updates to a (and the RHS vector b).
// The paper injects into four dynamic invocations: K1/K2 are the first
// Fan1/Fan2 pair (t=0) and K125/K126 a late pair (t=62 for N=64, where most
// threads fail the bounds check and exit early — a very different thread-
// class mix with the same static code).
//
// Fan1 parameters: s[0x10]=&m, s[0x14]=&a, s[0x18]=N, s[0x1c]=t.
const gaussianFan1Src = `
	cvt.u32.u16 $r0, %tid.x
	cvt.u32.u16 $r1, %ctaid.x
	cvt.u32.u16 $r2, %ntid.x
	mad.lo.u32 $r0, $r1, $r2, $r0        // gid
	mov.u32 $r3, s[0x0018]               // N
	mov.u32 $r4, s[0x001c]               // t
	sub.u32 $r5, $r3, $r4
	sub.u32 $r5, $r5, 0x00000001         // N-1-t
	set.ge.u32.u32 $p0/$o127, $r0, $r5
	@$p0.ne bra lexit
	add.u32 $r6, $r0, $r4
	add.u32 $r6, $r6, 0x00000001         // row = gid+t+1
	mul.lo.u32 $r7, $r6, $r3
	add.u32 $r7, $r7, $r4                // row*N + t
	shl.u32 $r7, $r7, 0x00000002
	add.u32 $r8, $r7, s[0x0014]          // &a[row][t]
	ld.global.f32 $r9, [$r8]
	mul.lo.u32 $r10, $r4, $r3
	add.u32 $r10, $r10, $r4
	shl.u32 $r10, $r10, 0x00000002
	add.u32 $r10, $r10, s[0x0014]        // &a[t][t]
	ld.global.f32 $r11, [$r10]
	div.f32 $r9, $r9, $r11
	add.u32 $r12, $r7, s[0x0010]         // &m[row][t]
	st.global.f32 [$r12], $r9
	lexit: exit
`

// Fan2 parameters: s[0x10]=&m, s[0x14]=&a, s[0x18]=&b, s[0x1c]=N, s[0x20]=t.
const gaussianFan2Src = `
	cvt.u32.u16 $r0, %tid.x
	cvt.u32.u16 $r1, %ctaid.x
	cvt.u32.u16 $r2, %ntid.x
	mad.lo.u32 $r0, $r1, $r2, $r0        // gx (column offset)
	cvt.u32.u16 $r3, %tid.y
	cvt.u32.u16 $r4, %ctaid.y
	cvt.u32.u16 $r5, %ntid.y
	mad.lo.u32 $r3, $r4, $r5, $r3        // gy (row offset)
	mov.u32 $r6, s[0x001c]               // N
	mov.u32 $r7, s[0x0020]               // t
	sub.u32 $r8, $r6, $r7                // N-t
	sub.u32 $r9, $r8, 0x00000001         // N-1-t
	set.ge.u32.u32 $p0/$o127, $r3, $r9
	@$p0.ne bra lexit
	set.ge.u32.u32 $p0/$o127, $r0, $r8
	@$p0.ne bra lexit
	add.u32 $r10, $r3, $r7
	add.u32 $r10, $r10, 0x00000001       // row = gy+t+1
	add.u32 $r11, $r0, $r7               // col = gx+t
	mul.lo.u32 $r12, $r10, $r6
	add.u32 $r13, $r12, $r7
	shl.u32 $r13, $r13, 0x00000002
	add.u32 $r13, $r13, s[0x0010]        // &m[row][t]
	ld.global.f32 $r14, [$r13]
	add.u32 $r15, $r12, $r11
	shl.u32 $r15, $r15, 0x00000002
	add.u32 $r15, $r15, s[0x0014]        // &a[row][col]
	mul.lo.u32 $r16, $r7, $r6
	add.u32 $r16, $r16, $r11
	shl.u32 $r16, $r16, 0x00000002
	add.u32 $r16, $r16, s[0x0014]        // &a[t][col]
	ld.global.f32 $r17, [$r15]
	ld.global.f32 $r18, [$r16]
	mul.f32 $r18, $r14, $r18
	sub.f32 $r17, $r17, $r18
	st.global.f32 [$r15], $r17
	set.eq.u32.u32 $p0/$o127, $r0, $r124
	@$p0.eq bra lexit                    // only gx==0 updates b
	shl.u32 $r19, $r10, 0x00000002
	add.u32 $r19, $r19, s[0x0018]        // &b[row]
	shl.u32 $r20, $r7, 0x00000002
	add.u32 $r20, $r20, s[0x0018]        // &b[t]
	ld.global.f32 $r21, [$r19]
	ld.global.f32 $r22, [$r20]
	mul.f32 $r22, $r14, $r22
	sub.f32 $r21, $r21, $r22
	st.global.f32 [$r19], $r21
	lexit: exit
`

var (
	gaussianFan1Prog = ptx.MustAssemble("Fan1", gaussianFan1Src)
	gaussianFan2Prog = ptx.MustAssemble("Fan2", gaussianFan2Src)
)

// gaussianState holds the evolving elimination state on the host.
type gaussianState struct {
	n       int
	a, m, b []float32
}

// newGaussianState builds a diagonally dominant system so divisions stay
// well conditioned through all elimination steps.
func newGaussianState(n int) *gaussianState {
	s := &gaussianState{
		n: n,
		a: make([]float32, n*n),
		m: make([]float32, n*n),
		b: make([]float32, n),
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.a[i*n+j] = synth(0x6A, i*n+j)
		}
		s.a[i*n+i] += 8
		s.b[i] = synth(0x6B, i)
	}
	return s
}

// fan1 applies one Fan1 step on the host in float32, mirroring the kernel.
func (s *gaussianState) fan1(t int) {
	for row := t + 1; row < s.n; row++ {
		s.m[row*s.n+t] = s.a[row*s.n+t] / s.a[t*s.n+t]
	}
}

// fan2 applies one Fan2 step on the host in float32, mirroring the kernel.
func (s *gaussianState) fan2(t int) {
	for row := t + 1; row < s.n; row++ {
		mv := s.m[row*s.n+t]
		for col := t; col < s.n; col++ {
			s.a[row*s.n+col] -= mv * s.a[t*s.n+col]
		}
		s.b[row] -= mv * s.b[t]
	}
}

// advance runs full Fan1+Fan2 steps for all t < upTo.
func (s *gaussianState) advance(upTo int) {
	for t := 0; t < upTo; t++ {
		s.fan1(t)
		s.fan2(t)
	}
}

// gaussianGeom returns N and the launch geometries for the two kernels.
func gaussianGeom(scale Scale) (n int, grid1, block1, grid2, block2 gpusim.Dim3) {
	if scale == ScalePaper {
		// Fan1: 512 threads; Fan2: 4096 threads over the 64x64 matrix.
		return 64,
			gpusim.Dim3{X: 2, Y: 1, Z: 1}, gpusim.Dim3{X: 256, Y: 1, Z: 1},
			gpusim.Dim3{X: 4, Y: 4, Z: 1}, gpusim.Dim3{X: 16, Y: 16, Z: 1}
	}
	return 16,
		gpusim.Dim3{X: 2, Y: 1, Z: 1}, gpusim.Dim3{X: 16, Y: 1, Z: 1},
		gpusim.Dim3{X: 2, Y: 2, Z: 1}, gpusim.Dim3{X: 8, Y: 8, Z: 1}
}

// lateT is the elimination step used for the late invocations (K125/K126):
// t = 62 for the paper's N=64 (matching kernel indices 2t+1 = 125), and the
// analogous N-2 for the small scale.
func lateT(n int) int { return n - 2 }

func buildGaussianFan1(meta Meta, scale Scale, late bool) (*Instance, error) {
	n, grid1, block1, _, _ := gaussianGeom(scale)
	t := 0
	if late {
		t = lateT(n)
	}
	st := newGaussianState(n)
	st.advance(t)

	mOff, aOff := 0, 4*n*n
	dev := gpusim.NewDevice(8*n*n + 4*n)
	dev.WriteWords(mOff, wordsF32(st.m))
	dev.WriteWords(aOff, wordsF32(st.a))

	st.fan1(t)

	target := buildTarget(meta.Name(), gaussianFan1Prog, grid1, block1,
		[]uint32{uint32(mOff), uint32(aOff), uint32(n), uint32(t)},
		dev, []fault.Range{{Off: mOff, Len: 4 * n * n}}, 0)
	return &Instance{
		Meta: meta, Scale: scale, Target: target,
		WantOutput: bytesOfWords(wordsF32(st.m)),
	}, nil
}

func buildGaussianFan2(meta Meta, scale Scale, late bool) (*Instance, error) {
	n, _, _, grid2, block2 := gaussianGeom(scale)
	t := 0
	if late {
		t = lateT(n)
	}
	st := newGaussianState(n)
	st.advance(t)
	st.fan1(t) // Fan2 consumes the multipliers of its own step

	mOff, aOff, bOff := 0, 4*n*n, 8*n*n
	dev := gpusim.NewDevice(8*n*n + 4*n)
	dev.WriteWords(mOff, wordsF32(st.m))
	dev.WriteWords(aOff, wordsF32(st.a))
	dev.WriteWords(bOff, wordsF32(st.b))

	st.fan2(t)

	want := append(append([]float32(nil), st.a...), st.b...)
	target := buildTarget(meta.Name(), gaussianFan2Prog, grid2, block2,
		[]uint32{uint32(mOff), uint32(aOff), uint32(bOff), uint32(n), uint32(t)},
		dev, []fault.Range{
			{Off: aOff, Len: 4 * n * n},
			{Off: bOff, Len: 4 * n},
		}, 0)
	return &Instance{
		Meta: meta, Scale: scale, Target: target,
		WantOutput: bytesOfWords(wordsF32(want)),
	}, nil
}

func buildGaussianFan1Early(scale Scale) (*Instance, error) {
	return buildGaussianFan1(gaussianK1Meta, scale, false)
}
func buildGaussianFan2Early(scale Scale) (*Instance, error) {
	return buildGaussianFan2(gaussianK2Meta, scale, false)
}
func buildGaussianFan1Late(scale Scale) (*Instance, error) {
	return buildGaussianFan1(gaussianK125Meta, scale, true)
}
func buildGaussianFan2Late(scale Scale) (*Instance, error) {
	return buildGaussianFan2(gaussianK126Meta, scale, true)
}

var (
	gaussianK1Meta = Meta{
		Suite: "Rodinia", App: "Gaussian", Kernel: "Fan1", ID: "K1",
		PaperThreads: 512, PaperSites: 1.63e5,
	}
	gaussianK2Meta = Meta{
		Suite: "Rodinia", App: "Gaussian", Kernel: "Fan2", ID: "K2",
		PaperThreads: 4096, PaperSites: 4.92e6,
	}
	gaussianK125Meta = Meta{
		Suite: "Rodinia", App: "Gaussian", Kernel: "Fan1", ID: "K125",
		PaperThreads: 512, PaperSites: 1.09e5,
	}
	gaussianK126Meta = Meta{
		Suite: "Rodinia", App: "Gaussian", Kernel: "Fan2", ID: "K126",
		PaperThreads: 4096, PaperSites: 8.79e5,
	}
)
