package kernels

import (
	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/ptx"
)

// 2MM (Polybench) mm2_kernel1: the first of the two matrix multiplies,
// tmp = alpha*A*B, with alpha applied inside the accumulation loop (as the
// Polybench CUDA source does) and no beta term.
//
// Parameters: s[0x10]=&A, s[0x14]=&B, s[0x18]=&tmp,
// s[0x1c]=NI, s[0x20]=NJ, s[0x24]=NK. alpha=1.5.
const mm2Src = `
	cvt.u32.u16 $r0, %tid.x
	cvt.u32.u16 $r1, %ctaid.x
	cvt.u32.u16 $r2, %ntid.x
	mad.lo.u32 $r0, $r1, $r2, $r0        // j
	cvt.u32.u16 $r3, %tid.y
	cvt.u32.u16 $r4, %ctaid.y
	cvt.u32.u16 $r5, %ntid.y
	mad.lo.u32 $r3, $r4, $r5, $r3        // i
	mov.u32 $r4, s[0x001c]               // NI
	set.ge.u32.u32 $p0/$o127, $r3, $r4
	@$p0.ne bra lexit
	mov.u32 $r5, s[0x0020]               // NJ
	set.ge.u32.u32 $p0/$o127, $r0, $r5
	@$p0.ne bra lexit
	mov.u32 $r6, s[0x0024]               // NK
	mul.lo.u32 $r7, $r3, $r6
	shl.u32 $r7, $r7, 0x00000002
	add.u32 $r7, $r7, s[0x0010]          // &A[i][0]
	shl.u32 $r8, $r0, 0x00000002
	add.u32 $r8, $r8, s[0x0014]          // &B[0][j]
	shl.u32 $r9, $r5, 0x00000002         // B row stride
	mov.u32 $r10, $r124                  // acc = 0.0
	mov.u32 $r11, $r124                  // k = 0
	lloop: ld.global.f32 $r12, [$r7]
	ld.global.f32 $r13, [$r8]
	mul.f32 $r12, $r12, 0f3FC00000       // alpha*A[i][k]
	mad.f32 $r10, $r12, $r13, $r10
	add.u32 $r7, $r7, 0x00000004
	add.u32 $r8, $r8, $r9
	add.u32 $r11, $r11, 0x00000001
	set.lt.u32.u32 $p0/$o127, $r11, $r6
	@$p0.ne bra lloop
	mul.lo.u32 $r14, $r3, $r5
	add.u32 $r14, $r14, $r0
	shl.u32 $r14, $r14, 0x00000002
	add.u32 $r14, $r14, s[0x0018]        // &tmp[i][j]
	st.global.f32 [$r14], $r10
	lexit: exit
`

var mm2Prog = ptx.MustAssemble("mm2_kernel1", mm2Src)

func buildMM2(scale Scale) (*Instance, error) {
	ni, nj, nk := 16, 16, 16
	block := gpusim.Dim3{X: 8, Y: 8, Z: 1}
	grid := gpusim.Dim3{X: 2, Y: 2, Z: 1}
	if scale == ScalePaper {
		ni, nj, nk = 128, 128, 128
		block = gpusim.Dim3{X: 16, Y: 16, Z: 1}
		grid = gpusim.Dim3{X: 8, Y: 8, Z: 1}
	}
	const alpha = float32(1.5)

	a := make([]float32, ni*nk)
	b := make([]float32, nk*nj)
	for i := range a {
		a[i] = synth(0xE1, i)
	}
	for i := range b {
		b[i] = synth(0xE2, i)
	}

	aOff, bOff, tmpOff := 0, 4*ni*nk, 4*ni*nk+4*nk*nj
	dev := gpusim.NewDevice(tmpOff + 4*ni*nj)
	dev.WriteWords(aOff, wordsF32(a))
	dev.WriteWords(bOff, wordsF32(b))

	want := make([]float32, ni*nj)
	for i := 0; i < ni; i++ {
		for j := 0; j < nj; j++ {
			var acc float32
			for k := 0; k < nk; k++ {
				acc = (a[i*nk+k]*alpha)*b[k*nj+j] + acc
			}
			want[i*nj+j] = acc
		}
	}

	target := buildTarget(mm2Meta.Name(), mm2Prog, grid, block,
		[]uint32{uint32(aOff), uint32(bOff), uint32(tmpOff),
			uint32(ni), uint32(nj), uint32(nk)},
		dev, []fault.Range{{Off: tmpOff, Len: 4 * ni * nj}}, 0)
	return &Instance{
		Meta: mm2Meta, Scale: scale, Target: target,
		WantOutput: bytesOfWords(wordsF32(want)),
	}, nil
}

var mm2Meta = Meta{
	Suite: "Polybench", App: "2MM", Kernel: "mm2_kernel1", ID: "K1",
	PaperThreads: 16384, PaperSites: 5.55e8, HasLoops: true,
}
