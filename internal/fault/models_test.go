package fault_test

import (
	"testing"

	"repro/internal/fault"
)

func TestModelNames(t *testing.T) {
	names := map[fault.Model]string{
		fault.ModelDestValue:  "dest-value",
		fault.ModelDestDouble: "dest-double",
		fault.ModelMemAddr:    "mem-addr",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("model %d = %q, want %q", m, m.String(), want)
		}
	}
}

func TestRunSiteModelDestValueDelegates(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	site := fault.Site{Thread: 0, DynInst: 11, Bit: 0}
	a, err := tg.RunSite(site)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tg.RunSiteModel(site, fault.ModelDestValue)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("dest-value model diverged: %v vs %v", a, b)
	}
}

func TestRunSiteModelValidation(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	if _, err := tg.RunSiteModel(fault.Site{Thread: 999}, fault.ModelDestDouble); err == nil {
		t.Error("bad thread accepted")
	}
	if _, err := tg.RunSiteModel(fault.Site{Thread: 0, DynInst: 99999}, fault.ModelMemAddr); err == nil {
		t.Error("bad dyn inst accepted")
	}
	if _, err := tg.RunSiteModel(fault.Site{Thread: 0, DynInst: 0, Bit: 99}, fault.ModelMemAddr); err == nil {
		t.Error("bad address bit accepted")
	}
	// Dyn inst 0 (cvt) touches no memory: not a mem-addr site.
	if _, err := tg.RunSiteModel(fault.Site{Thread: 0, DynInst: 0, Bit: 0}, fault.ModelMemAddr); err != fault.ErrNotAMemSite {
		t.Errorf("non-memory site error = %v", err)
	}
	// Branch has no destination: not a dest-double site.
	if _, err := tg.RunSiteModel(fault.Site{Thread: 0, DynInst: 5, Bit: 0}, fault.ModelDestDouble); err != fault.ErrNotASite {
		t.Errorf("branch dest-double error = %v", err)
	}
	if _, err := tg.RunSiteModel(fault.Site{Thread: 0, DynInst: 0, Bit: 0}, fault.Model(99)); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestMemAddrSites(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(tg.Profile())
	// Active thread 0 runs: the s[0x10]/s[0x14] param reads (dyn 7 and 17),
	// the 4 loop loads (dyn 10, 16, 22, 28) and the final store — each
	// contributes 32 address-bit sites.
	sites := space.MemAddrSites(0, nil)
	if len(sites) == 0 || len(sites)%32 != 0 {
		t.Fatalf("mem sites = %d", len(sites))
	}
	for _, s := range sites {
		if s.Bit < 0 || s.Bit >= 32 {
			t.Fatalf("bad bit %v", s)
		}
		if _, err := tg.RunSiteModel(s, fault.ModelMemAddr); err != nil {
			t.Fatalf("enumerated site rejected: %v: %v", s, err)
		}
		break // one run suffices; the loop guards enumeration validity
	}
	// Idle thread 15 touches no memory.
	if got := space.MemAddrSites(15, nil); len(got) != 0 {
		t.Fatalf("idle thread mem sites = %d", len(got))
	}
	// Filter keeps only one dynamic instruction.
	first := sites[0]
	only := space.MemAddrSites(0, func(dyn int64) bool { return dyn == first.DynInst })
	if len(only) != 32 {
		t.Fatalf("filtered mem sites = %d, want 32", len(only))
	}
}

func TestRunModelCampaign(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(tg.Profile())
	sites := fault.Uniform(space.MemAddrSites(0, nil)[:64])
	res, err := fault.RunModel(tg, sites, fault.ModelMemAddr, fault.CampaignOptions{KeepPerSite: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist.N != 64 || len(res.PerSite) != 64 {
		t.Fatalf("campaign shape: n=%d per=%d", res.Dist.N, len(res.PerSite))
	}
	// High address bits must produce crashes on this tiny device.
	var crashes int
	for _, o := range res.PerSite {
		if o == fault.Crash {
			crashes++
		}
	}
	if crashes == 0 {
		t.Fatal("no crashes from address faults on a 256-byte device")
	}
}
