package fault

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/journal"
)

// fastGuard are failure-isolation options tuned so retry/quarantine tests
// run in microseconds.
func fastGuard(par int) CampaignOptions {
	return CampaignOptions{Parallelism: par, MaxAttempts: 2, RetryBackoff: time.Microsecond, KeepPerSite: true}
}

// TestRunWithQuarantine: in the default isolating mode, a permanently
// erroring site and a panicking site are each retried MaxAttempts times and
// then quarantined as EngineError; the rest of the campaign completes.
func TestRunWithQuarantine(t *testing.T) {
	const n = 40
	res, st, err := runWith(fakeSites(n), nil, fastGuard(4),
		func(s Site) (Outcome, runCost, error) {
			switch s.Thread {
			case 7:
				return 0, runCost{}, errors.New("permanent engine fault")
			case 11:
				panic("interpreter invariant violated")
			}
			return Masked, runCost{}, nil
		})
	if err != nil {
		t.Fatalf("isolating campaign returned error: %v", err)
	}
	if res.Dist.W[EngineError] != 2 || res.Dist.Total() != n {
		t.Fatalf("dist = %+v, want 2 engine errors of %d total", res.Dist, n)
	}
	if len(res.Quarantined) != 2 || res.Quarantined[0].Index != 7 || res.Quarantined[1].Index != 11 {
		t.Fatalf("quarantined = %+v", res.Quarantined)
	}
	if !strings.Contains(res.Quarantined[1].Err, "interpreter invariant violated") {
		t.Fatalf("panic cause lost: %q", res.Quarantined[1].Err)
	}
	if res.PerSite[7] != EngineError || res.PerSite[11] != EngineError || res.PerSite[0] != Masked {
		t.Fatalf("per-site outcomes: %v", res.PerSite[:12])
	}
	if st.Quarantined != 2 || st.Retries != 2 {
		t.Fatalf("stats: quarantined %d retries %d, want 2 and 2", st.Quarantined, st.Retries)
	}
	if st.Runs != n-2+2*2 {
		t.Fatalf("runs = %d, want %d", st.Runs, n-2+2*2)
	}
}

// TestRunWithRetryTransient: a site that fails once and then succeeds costs
// one retry and contributes its real outcome, not EngineError.
func TestRunWithRetryTransient(t *testing.T) {
	const n = 20
	var flaky atomic.Int64
	res, st, err := runWith(fakeSites(n), nil, fastGuard(2),
		func(s Site) (Outcome, runCost, error) {
			if s.Thread == 3 && flaky.Add(1) == 1 {
				return 0, runCost{}, errors.New("transient")
			}
			return SDC, runCost{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerSite[3] != SDC {
		t.Fatalf("flaky site outcome = %v, want SDC", res.PerSite[3])
	}
	if st.Retries != 1 || st.Quarantined != 0 || len(res.Quarantined) != 0 {
		t.Fatalf("retries %d quarantined %d", st.Retries, st.Quarantined)
	}
	if st.Runs != n+1 {
		t.Fatalf("runs = %d, want %d", st.Runs, n+1)
	}
}

// TestRunWithSiteDeadline: an attempt exceeding the wall-clock deadline is
// abandoned and the site quarantined, even though the site function never
// returns an error on its own.
func TestRunWithSiteDeadline(t *testing.T) {
	opt := CampaignOptions{Parallelism: 2, MaxAttempts: 1, SiteDeadline: 5 * time.Millisecond, KeepPerSite: true}
	release := make(chan struct{})
	defer close(release)
	res, st, err := runWith(fakeSites(10), nil, opt,
		func(s Site) (Outcome, runCost, error) {
			if s.Thread == 4 {
				<-release // wedged until the test ends
			}
			return Masked, runCost{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerSite[4] != EngineError || st.Quarantined != 1 {
		t.Fatalf("wedged site: outcome %v, quarantined %d", res.PerSite[4], st.Quarantined)
	}
	if len(res.Quarantined) != 1 || !strings.Contains(res.Quarantined[0].Err, "deadline") {
		t.Fatalf("quarantine record: %+v", res.Quarantined)
	}
}

// TestNegativeDeadlineNeverQuarantines: any negative SiteDeadline disables
// the wall-clock layer — a slow-but-finite site runs to completion inline
// (no timer goroutine can abandon it) and reports its real outcome instead
// of being quarantined, no matter how long it takes relative to any positive
// deadline. Panic isolation stays active.
func TestNegativeDeadlineNeverQuarantines(t *testing.T) {
	// The guard must keep the negative value rather than substituting the
	// default (only 0 means DefaultSiteDeadline).
	if g := newGuard(CampaignOptions{SiteDeadline: -1}); g.deadline >= 0 {
		t.Fatalf("negative deadline normalized away: %v", g.deadline)
	}

	const n = 12
	opt := CampaignOptions{
		Parallelism: 2, MaxAttempts: 1, SiteDeadline: -time.Nanosecond, KeepPerSite: true,
	}
	res, st, err := runWith(fakeSites(n), nil, opt,
		func(s Site) (Outcome, runCost, error) {
			if s.Thread == 4 {
				// Slow but finite: far beyond |SiteDeadline|, and beyond the
				// 5ms deadline TestRunWithSiteDeadline proves would quarantine.
				time.Sleep(30 * time.Millisecond)
				return SDC, runCost{}, nil
			}
			return Masked, runCost{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerSite[4] != SDC {
		t.Fatalf("slow site outcome = %v, want its real SDC", res.PerSite[4])
	}
	if st.Quarantined != 0 || len(res.Quarantined) != 0 || st.Retries != 0 {
		t.Fatalf("negative deadline quarantined or retried: %+v, %+v", st, res.Quarantined)
	}
	if st.Runs != n {
		t.Fatalf("runs = %d, want %d", st.Runs, n)
	}
}

// TestRunWithFailFastNoRetry: FailFast restores the old contract — a site
// error aborts the campaign on its first occurrence, with no retries and no
// quarantine.
func TestRunWithFailFastNoRetry(t *testing.T) {
	var calls atomic.Int64
	_, st, err := runWith(fakeSites(8), nil, CampaignOptions{Parallelism: 1, FailFast: true, MaxAttempts: 5},
		func(s Site) (Outcome, runCost, error) {
			if s.Thread == 2 {
				calls.Add(1)
				return 0, runCost{}, errors.New("boom")
			}
			return Masked, runCost{}, nil
		})
	if err == nil {
		t.Fatal("FailFast swallowed the error")
	}
	if calls.Load() != 1 {
		t.Fatalf("failing site executed %d times under FailFast, want 1", calls.Load())
	}
	if st.Retries != 0 || st.Quarantined != 0 {
		t.Fatalf("FailFast stats show isolation activity: %+v", st)
	}
}

// TestRunWithInterrupt: closing the interrupt channel stops the campaign
// after the in-flight sites and surfaces ErrInterrupted.
func TestRunWithInterrupt(t *testing.T) {
	const n = 200
	intr := make(chan struct{})
	var executed atomic.Int64
	_, st, err := runWith(fakeSites(n), nil,
		CampaignOptions{Parallelism: 1, Interrupt: intr},
		func(s Site) (Outcome, runCost, error) {
			if executed.Add(1) == 5 {
				close(intr)
			}
			return Masked, runCost{}, nil
		})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if got := executed.Load(); got < 5 || got > 20 {
		t.Fatalf("executed %d sites after interrupt at 5", got)
	}
	if st.Runs != executed.Load() {
		t.Fatalf("stats runs %d != executed %d", st.Runs, executed.Load())
	}
}

// TestShardPartition: shards are disjoint, cover everything, and their
// per-shard distributions merge to the unsharded one.
func TestShardPartition(t *testing.T) {
	const n, shards = 97, 3
	sites := fakeSites(n)
	outcomeOf := func(s Site) Outcome { return Outcome(s.Thread % 3) }
	run := func(sh Shard) (*CampaignResult, []bool) {
		seen := make([]bool, n)
		var mu sync.Mutex
		res, _, err := runWith(sites, nil, CampaignOptions{Parallelism: 4, Shard: sh, KeepPerSite: true},
			func(s Site) (Outcome, runCost, error) {
				mu.Lock()
				seen[s.Thread] = true
				mu.Unlock()
				return outcomeOf(s), runCost{}, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return res, seen
	}

	full, _ := run(Shard{})
	if full.Completed != n {
		t.Fatalf("unsharded completed %d of %d", full.Completed, n)
	}

	var merged Dist
	covered := make([]bool, n)
	total := 0
	for idx := 0; idx < shards; idx++ {
		res, seen := run(Shard{Index: idx, Count: shards})
		total += res.Completed
		for i, s := range seen {
			if s && covered[i] {
				t.Fatalf("site %d executed by two shards", i)
			}
			covered[i] = covered[i] || s
		}
		merged.Merge(res.Dist)
	}
	if total != n {
		t.Fatalf("shards completed %d sites, want %d", total, n)
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("site %d executed by no shard", i)
		}
	}
	if merged != full.Dist {
		t.Fatalf("merged shard dist %+v != full dist %+v", merged, full.Dist)
	}

	// Invalid shards are rejected.
	for _, sh := range []Shard{{Index: 3, Count: 3}, {Index: -1, Count: 2}, {Index: 0, Count: -1}} {
		if _, _, err := runWith(sites, nil, CampaignOptions{Shard: sh},
			func(s Site) (Outcome, runCost, error) { return Masked, runCost{}, nil }); err == nil {
			t.Fatalf("shard %+v accepted", sh)
		}
	}
}

// journalFP builds a fingerprint for raw runWith journal tests.
func journalFP(n int) journal.Fingerprint {
	return journal.Fingerprint{Kernel: "fake", Seed: 1, Model: "dest-value", Sites: n, ShardCount: 1}
}

// TestRunWithJournalResume: a fail-fast crash mid-campaign leaves completed
// outcomes in the journal; the rerun replays them (never re-executing),
// finishes the rest, and the aggregate matches an uninterrupted run.
func TestRunWithJournalResume(t *testing.T) {
	const n, failAt = 100, 60
	sites := fakeSites(n)
	outcomeOf := func(s Site) Outcome { return Outcome(s.Thread % 4) }
	path := filepath.Join(t.TempDir(), "c.journal")

	ref, _, err := runWith(sites, nil, CampaignOptions{Parallelism: 2, KeepPerSite: true},
		func(s Site) (Outcome, runCost, error) { return outcomeOf(s), runCost{}, nil })
	if err != nil {
		t.Fatal(err)
	}

	j, err := journal.Open(path, journalFP(n))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = runWith(sites, nil, CampaignOptions{Parallelism: 2, FailFast: true, Journal: j},
		func(s Site) (Outcome, runCost, error) {
			if s.Thread == failAt {
				return 0, runCost{}, errors.New("simulated crash")
			}
			return outcomeOf(s), runCost{}, nil
		})
	if err == nil {
		t.Fatal("crashing campaign succeeded")
	}
	j.Close()

	j2, err := journal.Open(path, journalFP(n))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := len(j2.Replayed()); got < failAt {
		t.Fatalf("only %d sites journaled before the crash, want >= %d", got, failAt)
	}
	var reexecuted atomic.Int64
	journaled := map[int]bool{}
	for _, r := range j2.Replayed() {
		journaled[r.Index] = true
	}
	res, st, err := runWith(sites, nil, CampaignOptions{Parallelism: 2, KeepPerSite: true, Journal: j2},
		func(s Site) (Outcome, runCost, error) {
			if journaled[s.Thread] {
				reexecuted.Add(1)
			}
			return outcomeOf(s), runCost{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if reexecuted.Load() != 0 {
		t.Fatalf("%d journaled sites were re-executed on resume", reexecuted.Load())
	}
	if st.Replayed != int64(len(journaled)) || st.Runs != int64(n-len(journaled)) {
		t.Fatalf("replayed %d runs %d, journal had %d of %d", st.Replayed, st.Runs, len(journaled), n)
	}
	if res.Dist != ref.Dist {
		t.Fatalf("resumed dist %+v != reference %+v", res.Dist, ref.Dist)
	}
	for i := range ref.PerSite {
		if res.PerSite[i] != ref.PerSite[i] {
			t.Fatalf("site %d: resumed %v, reference %v", i, res.PerSite[i], ref.PerSite[i])
		}
	}
}

// TestRunWithJournalSiteMismatch: a journal whose records do not match the
// campaign's site list (same fingerprint, different derivation) is rejected
// instead of replayed.
func TestRunWithJournalSiteMismatch(t *testing.T) {
	const n = 10
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := journal.Open(path, journalFP(n))
	if err != nil {
		t.Fatal(err)
	}
	// Record index 0 with a site key that is not sites[0].
	if err := j.Append(journal.Record{Index: 0, Thread: 999, Outcome: uint8(Masked), Weight: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := journal.Open(path, journalFP(n))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	_, _, err = runWith(fakeSites(n), nil, CampaignOptions{Journal: j2},
		func(s Site) (Outcome, runCost, error) { return Masked, runCost{}, nil })
	if err == nil || !strings.Contains(err.Error(), "campaign site") {
		t.Fatalf("mismatched journal accepted: %v", err)
	}
}

// TestRunWithJournalQuarantineReplay: quarantined sites round-trip through
// the journal — the resumed campaign reports them without re-running them.
func TestRunWithJournalQuarantineReplay(t *testing.T) {
	const n = 30
	sites := fakeSites(n)
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := journal.Open(path, journalFP(n))
	if err != nil {
		t.Fatal(err)
	}
	opt := fastGuard(2)
	opt.Journal = j
	res1, _, err := runWith(sites, nil, opt,
		func(s Site) (Outcome, runCost, error) {
			if s.Thread == 5 {
				return 0, runCost{}, errors.New("permanent")
			}
			return Masked, runCost{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := journal.Open(path, journalFP(n))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	opt2 := fastGuard(2)
	opt2.Journal = j2
	res2, st, err := runWith(sites, nil, opt2,
		func(s Site) (Outcome, runCost, error) {
			t.Error("fully journaled campaign executed a site")
			return Masked, runCost{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 0 || st.Replayed != n {
		t.Fatalf("runs %d replayed %d, want 0 and %d", st.Runs, st.Replayed, n)
	}
	if res2.Dist != res1.Dist {
		t.Fatalf("replayed dist %+v != original %+v", res2.Dist, res1.Dist)
	}
	if len(res2.Quarantined) != 1 || res2.Quarantined[0].Index != 5 ||
		!strings.Contains(res2.Quarantined[0].Err, "permanent") {
		t.Fatalf("quarantine lost in replay: %+v", res2.Quarantined)
	}
}

// TestStatsSinkConcurrentAdd: StatsSink.Add (and through it
// CampaignStats.Merge) is safe under concurrent use — run with -race — and
// loses no counts.
func TestStatsSinkConcurrentAdd(t *testing.T) {
	var sink StatsSink
	const workers, adds = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				sink.Add(CampaignStats{
					Runs: 1, Wall: time.Millisecond, PagesCopied: 2, DevicesCreated: 1,
					CTAsSkipped: 3, EarlyExits: 1, Retries: 1, Quarantined: 1, Replayed: 2,
					Checkpoints: w + 1, CheckpointBytes: int64(1024 * (w + 1)),
				})
			}
		}(w)
	}
	wg.Wait()
	got := sink.Total()
	const total = workers * adds
	if got.Runs != total || got.PagesCopied != 2*total || got.DevicesCreated != total ||
		got.CTAsSkipped != 3*total || got.EarlyExits != total || got.Retries != total ||
		got.Quarantined != total || got.Replayed != 2*total || got.Wall != total*time.Millisecond {
		t.Fatalf("lost updates: %+v", got)
	}
	if got.Checkpoints != workers || got.CheckpointBytes != int64(1024*workers) {
		t.Fatalf("max-merged checkpoint figures: %+v", got)
	}
}

// TestDistMergeCommutative: the merge path aggregates shard distributions
// in file order, so Dist addition must commute — with weights that are
// exact in binary floating point, bit-exactly.
func TestDistMergeCommutative(t *testing.T) {
	mk := func(seed int) Dist {
		var d Dist
		for i := 0; i < 64; i++ {
			d.Add(Outcome((i*seed+3)%int(numOutcomes)), []float64{0.25, 0.5, 1, 2}[i%4])
		}
		return d
	}
	a, b, c := mk(1), mk(5), mk(11)

	ab := a
	ab.Merge(b)
	ab.Merge(c)
	cb := c
	cb.Merge(b)
	cb.Merge(a)
	if ab != cb {
		t.Fatalf("merge order changed the distribution:\n%+v\n%+v", ab, cb)
	}
	wantN := a.N + b.N + c.N
	if ab.N != wantN {
		t.Fatalf("experiment count %d, want %d", ab.N, wantN)
	}
	wantW := a.Total() + b.Total() + c.Total()
	if ab.Total() != wantW {
		t.Fatalf("total weight %v, want %v", ab.Total(), wantW)
	}
}

// TestEngineErrorClassAndString: the quarantine bucket folds into the
// paper's "other" class and has a stable name.
func TestEngineErrorClassAndString(t *testing.T) {
	if EngineError.Class() != ClassOther {
		t.Fatalf("EngineError class = %v", EngineError.Class())
	}
	if EngineError.String() != "engine-error" {
		t.Fatalf("EngineError string = %q", EngineError)
	}
	if !EngineError.Valid() || Outcome(numOutcomes).Valid() {
		t.Fatal("Outcome.Valid bounds wrong")
	}
	var f SiteFailure
	f.Site = Site{Thread: 1}
	f.Err = "x"
	if fmt.Sprint(f) == "" {
		t.Fatal("empty SiteFailure string")
	}
}
