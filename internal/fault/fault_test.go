package fault_test

import (
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/ptx"
	"repro/internal/stats"
)

// tinyTarget builds a 2-CTA, 8-threads-per-CTA integer kernel with a
// divergent early exit (threads with gid >= 12 idle) and a small loop:
// out[i] = sum of in[i..i+3].
func tinyTarget(t *testing.T) *fault.Target {
	t.Helper()
	prog, err := ptx.Assemble("tiny", `
		cvt.u32.u16 $r0, %tid.x
		cvt.u32.u16 $r1, %ctaid.x
		cvt.u32.u16 $r2, %ntid.x
		mad.lo.u32 $r0, $r1, $r2, $r0
		set.ge.u32.u32 $p0/$o127, $r0, 12
		@$p0.ne bra lexit
		shl.u32 $r3, $r0, 0x00000002
		add.u32 $r3, $r3, s[0x0010]      // &in[i]
		mov.u32 $r4, $r124               // acc
		mov.u32 $r5, $r124               // k
		lloop: ld.global.u32 $r6, [$r3]
		add.u32 $r4, $r4, $r6
		add.u32 $r3, $r3, 0x00000004
		add.u32 $r5, $r5, 0x00000001
		set.lt.u32.u32 $p0/$o127, $r5, 4
		@$p0.ne bra lloop
		shl.u32 $r7, $r0, 0x00000002
		add.u32 $r7, $r7, s[0x0014]      // &out[i]
		st.global.u32 [$r7], $r4
		lexit: exit
	`)
	if err != nil {
		t.Fatal(err)
	}
	dev := gpusim.NewDevice(4 * 64)
	in := make([]uint32, 16)
	for i := range in {
		in[i] = uint32(i*i + 1)
	}
	dev.WriteWords(0, in)
	return &fault.Target{
		Name:   "tiny",
		Prog:   prog,
		Grid:   gpusim.Dim3{X: 2, Y: 1, Z: 1},
		Block:  gpusim.Dim3{X: 8, Y: 1, Z: 1},
		Params: []uint32{0, 4 * 16},
		Init:   dev,
		Output: []fault.Range{{Off: 4 * 16, Len: 4 * 12}},
	}
}

func TestOutcomeClasses(t *testing.T) {
	if fault.Masked.Class() != fault.ClassMasked ||
		fault.SDC.Class() != fault.ClassSDC ||
		fault.Crash.Class() != fault.ClassOther ||
		fault.Hang.Class() != fault.ClassOther {
		t.Fatal("outcome class mapping broken")
	}
	for _, o := range []fault.Outcome{fault.Masked, fault.SDC, fault.Crash, fault.Hang} {
		if o.String() == "" {
			t.Fatalf("outcome %d unnamed", o)
		}
	}
}

func TestDistMath(t *testing.T) {
	var d fault.Dist
	d.Add(fault.Masked, 3)
	d.Add(fault.SDC, 1)
	d.Add(fault.Crash, 0.5)
	d.Add(fault.Hang, 0.5)
	if d.Total() != 5 {
		t.Fatalf("total = %v", d.Total())
	}
	if d.Pct(fault.ClassMasked) != 60 {
		t.Fatalf("masked pct = %v", d.Pct(fault.ClassMasked))
	}
	if d.Pct(fault.ClassOther) != 20 {
		t.Fatalf("other pct = %v", d.Pct(fault.ClassOther))
	}
	if d.N != 4 {
		t.Fatalf("N = %d", d.N)
	}

	var e fault.Dist
	e.Add(fault.Masked, 5)
	e.Merge(d)
	if e.Total() != 10 || e.N != 5 {
		t.Fatalf("merge: %+v", e)
	}

	var empty fault.Dist
	if empty.Pct(fault.ClassMasked) != 0 || empty.PctOutcome(fault.SDC) != 0 {
		t.Fatal("empty dist pct should be 0")
	}

	var f fault.Dist
	f.Add(fault.Masked, 1)
	var g fault.Dist
	g.Add(fault.SDC, 1)
	if got := f.MaxClassDelta(g); got != 100 {
		t.Fatalf("max delta = %v", got)
	}
}

func TestTargetPrepareAndGolden(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	// Golden: out[i] = sum in[i..i+3] for i < 12.
	golden := tg.Golden()
	if len(golden) != 4*12 {
		t.Fatalf("golden len = %d", len(golden))
	}
	word := func(i int) uint32 {
		return uint32(golden[4*i]) | uint32(golden[4*i+1])<<8 |
			uint32(golden[4*i+2])<<16 | uint32(golden[4*i+3])<<24
	}
	for i := 0; i < 12; i++ {
		want := uint32(0)
		for k := 0; k < 4; k++ {
			want += uint32((i+k)*(i+k) + 1)
		}
		if word(i) != want {
			t.Fatalf("golden[%d] = %d, want %d", i, word(i), want)
		}
	}
	// Prepare is idempotent.
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
}

func TestRunSiteValidation(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	if _, err := tg.RunSite(fault.Site{Thread: -1}); err == nil {
		t.Error("negative thread accepted")
	}
	if _, err := tg.RunSite(fault.Site{Thread: 999}); err == nil {
		t.Error("out-of-range thread accepted")
	}
	if _, err := tg.RunSite(fault.Site{Thread: 0, DynInst: 99999}); err == nil {
		t.Error("out-of-range dyn inst accepted")
	}
	if _, err := tg.RunSite(fault.Site{Thread: 0, DynInst: 0, Bit: 64}); err == nil {
		t.Error("out-of-range bit accepted")
	}
	// Dyn inst 5 of thread 0 is the guarded bra: not a site.
	if _, err := tg.RunSite(fault.Site{Thread: 0, DynInst: 5, Bit: 0}); err != fault.ErrNotASite {
		t.Errorf("branch site error = %v, want ErrNotASite", err)
	}
}

func TestInjectionDeterminism(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	site := fault.Site{Thread: 3, DynInst: 10, Bit: 7}
	a, err := tg.RunSite(site)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tg.RunSite(site)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same site gave %v then %v", a, b)
	}
}

func TestInjectionOutcomeKinds(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	// Thread 15 is idle (gid >= 12): any fault in its tiny prologue that
	// does not resurrect it is masked. Bit 0 of its first cvt result
	// changes tid parity -> gid 30 -> still idle -> masked.
	o, err := tg.RunSite(fault.Site{Thread: 15, DynInst: 0, Bit: 0})
	if err != nil {
		t.Fatal(err)
	}
	if o != fault.Masked {
		t.Fatalf("idle-thread fault = %v, want masked", o)
	}
	// Thread 0, the accumulator add (dyn 11), low bit: direct data
	// corruption -> SDC.
	o, err = tg.RunSite(fault.Site{Thread: 0, DynInst: 11, Bit: 0})
	if err != nil {
		t.Fatal(err)
	}
	if o != fault.SDC {
		t.Fatalf("accumulator fault = %v, want sdc", o)
	}
	// Thread 0, address register high bit (dyn 7 computes &in[i]): the
	// next load lands far out of range -> crash.
	o, err = tg.RunSite(fault.Site{Thread: 0, DynInst: 7, Bit: 31})
	if err != nil {
		t.Fatal(err)
	}
	if o != fault.Crash {
		t.Fatalf("address fault = %v, want crash", o)
	}
}

func TestSpaceTotalsAndDecode(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	prof := tg.Profile()
	space := fault.NewSpace(prof)
	if space.Total() != prof.TotalSites() {
		t.Fatalf("space total %d != profile %d", space.Total(), prof.TotalSites())
	}

	// Decoding every index and re-encoding must reconstruct the space:
	// count sites per thread and compare against SiteBits.
	perThread := make([]int64, len(prof.Threads))
	for idx := int64(0); idx < space.Total(); idx++ {
		s := space.Site(idx)
		perThread[s.Thread]++
		if bits := tg.DestBitsAt(s.Thread, s.DynInst); s.Bit >= bits {
			t.Fatalf("decoded bit %d out of %d at %v", s.Bit, bits, s)
		}
	}
	for i := range perThread {
		if perThread[i] != prof.Threads[i].SiteBits {
			t.Fatalf("thread %d decoded %d sites, want %d",
				i, perThread[i], prof.Threads[i].SiteBits)
		}
	}
}

func TestSpaceSitePanics(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(tg.Profile())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index did not panic")
		}
	}()
	space.Site(space.Total())
}

func TestThreadSitesAndFilter(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(tg.Profile())
	all := space.ThreadSites(0, nil)
	if int64(len(all)) != tg.Profile().Threads[0].SiteBits {
		t.Fatalf("thread sites %d != SiteBits %d", len(all), tg.Profile().Threads[0].SiteBits)
	}
	first := space.ThreadSites(0, func(dyn int64) bool { return dyn == 0 })
	if len(first) != 32 {
		t.Fatalf("filtered sites = %d, want 32", len(first))
	}
}

func TestInstructionSites(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(tg.Profile())
	// PC 11 is the accumulator add inside the 4-iteration loop: an active
	// thread hits it 4 times -> 128 sites.
	sites := space.InstructionSites(11, []int{0})
	if len(sites) != 128 {
		t.Fatalf("instruction sites = %d, want 128", len(sites))
	}
	// An idle thread never executes it.
	if got := space.InstructionSites(11, []int{15}); len(got) != 0 {
		t.Fatalf("idle thread sites = %d, want 0", len(got))
	}
}

func TestRandomSampling(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(tg.Profile())
	rng := stats.NewRNG(9)
	sites := space.Random(rng, 200)
	if len(sites) != 200 {
		t.Fatalf("sampled %d", len(sites))
	}
	for _, s := range sites {
		if bits := tg.DestBitsAt(s.Thread, s.DynInst); bits == 0 || s.Bit >= bits {
			t.Fatalf("invalid sampled site %v", s)
		}
	}
}

func TestCampaignSerialEqualsParallel(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(tg.Profile())
	sites := fault.Uniform(space.Random(stats.NewRNG(4), 120))

	serial, err := fault.Run(tg, sites, fault.CampaignOptions{Parallelism: 1, KeepPerSite: true})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := fault.Run(tg, sites, fault.CampaignOptions{Parallelism: 4, KeepPerSite: true})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Dist != parallel.Dist {
		t.Fatalf("serial %v != parallel %v", serial.Dist, parallel.Dist)
	}
	for i := range serial.PerSite {
		if serial.PerSite[i] != parallel.PerSite[i] {
			t.Fatalf("per-site outcome %d differs", i)
		}
	}
}

func TestCampaignWeights(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	sites := []fault.WeightedSite{
		{Site: fault.Site{Thread: 0, DynInst: 0, Bit: 0}, Weight: 10},
		{Site: fault.Site{Thread: 0, DynInst: 0, Bit: 1}, Weight: 1},
	}
	res, err := fault.Run(tg, sites, fault.CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist.Total() != 11 {
		t.Fatalf("weighted total = %v", res.Dist.Total())
	}
	if res.Dist.N != 2 {
		t.Fatalf("N = %d", res.Dist.N)
	}
}

func TestDedup(t *testing.T) {
	a := fault.Site{Thread: 0, DynInst: 1, Bit: 2}
	b := fault.Site{Thread: 0, DynInst: 1, Bit: 3}
	in := []fault.WeightedSite{
		{Site: a, Weight: 1}, {Site: b, Weight: 2},
		{Site: a, Weight: 4}, {Site: a, Weight: 1},
	}
	out := fault.Dedup(in)
	if len(out) != 2 {
		t.Fatalf("dedup kept %d sites", len(out))
	}
	if out[0].Site != a || out[0].Weight != 6 {
		t.Fatalf("merged weight: %+v", out[0])
	}
	if out[1].Site != b || out[1].Weight != 2 {
		t.Fatalf("order or weight lost: %+v", out[1])
	}
	// Total weight preserved.
	var win, wout float64
	for _, s := range in {
		win += s.Weight
	}
	for _, s := range out {
		wout += s.Weight
	}
	if win != wout {
		t.Fatalf("weight changed: %v -> %v", win, wout)
	}
	// Deduped campaign equals the duplicated one.
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	r1, err := fault.Run(tg, in, fault.CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := fault.Run(tg, out, fault.CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for c := fault.Class(0); c < fault.NumClasses; c++ {
		if r1.Dist.Pct(c) != r2.Dist.Pct(c) {
			t.Fatalf("deduped profile diverged on %v", c)
		}
	}
}

func TestCampaignEmpty(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	res, err := fault.Run(tg, nil, fault.CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist.Total() != 0 {
		t.Fatal("empty campaign nonzero")
	}
}

func TestCampaignPropagatesErrors(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	bad := []fault.WeightedSite{{Site: fault.Site{Thread: 0, DynInst: 5, Bit: 0}, Weight: 1}}
	if _, err := fault.Run(tg, bad, fault.CampaignOptions{}); err == nil {
		t.Fatal("campaign swallowed a site error")
	}
}

// TestBitFlipInvolution: injecting the same site twice in one run is not
// expressible through the public API, but the involution shows up as:
// a site whose flipped bit is re-flipped by a second run returns the same
// outcome (determinism), and flipping a bit of a dead value is masked.
// Checked as a quick property over random valid sites.
func TestSiteOutcomeStability(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(tg.Profile())
	f := func(raw uint32) bool {
		idx := int64(raw) % space.Total()
		s := space.Site(idx)
		a, err1 := tg.RunSite(s)
		b, err2 := tg.RunSite(s)
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
