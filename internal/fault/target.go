package fault

import (
	"errors"
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Range is a byte range of global memory that forms part of a kernel's
// output; outcome classification compares these ranges against the golden
// run.
type Range struct {
	Off, Len int
}

// Target is one kernel launch prepared for fault injection: program,
// geometry, pristine input state, and the golden output to compare against.
type Target struct {
	// Name identifies the target in reports ("GEMM K1").
	Name string
	// Prog is the kernel.
	Prog *isa.Program
	// Grid and Block define the launch geometry.
	Grid, Block gpusim.Dim3
	// Params are the kernel parameters.
	Params []uint32
	// SharedBytes is the per-CTA shared memory size (0 = default).
	SharedBytes int
	// Init is the pristine device state; every experiment runs on a clone.
	Init *gpusim.Device
	// Output lists the global-memory ranges that constitute the output.
	Output []Range

	// WatchdogFactor scales the fault-free per-thread iCnt into the
	// injection-run watchdog (hang detector). 0 means DefaultWatchdogFactor.
	WatchdogFactor int64

	golden   []byte
	watchdog int64
	profile  *trace.Profile
}

// DefaultWatchdogFactor multiplies the fault-free maximum thread iCnt to
// obtain the hang-detection ceiling for injection runs. A corrupted loop
// counter can legitimately lengthen execution; 8x the fault-free maximum
// (plus slack) separates that from true runaways quickly.
const DefaultWatchdogFactor = 8

// launch builds a Launch for one run of the target.
func (t *Target) launch(inj *gpusim.Injection, tracer gpusim.Tracer, watchdog int64) *gpusim.Launch {
	return &gpusim.Launch{
		Prog:        t.Prog,
		Grid:        t.Grid,
		Block:       t.Block,
		Params:      t.Params,
		SharedBytes: t.SharedBytes,
		Watchdog:    watchdog,
		Inject:      inj,
		Tracer:      tracer,
	}
}

// Threads is the total thread count of the launch.
func (t *Target) Threads() int { return t.Grid.Count() * t.Block.Count() }

// Prepare runs the fault-free golden execution with tracing, capturing the
// golden output, the per-thread profile, and the injection watchdog. It must
// be called (once) before Profile, Golden, or RunSite.
func (t *Target) Prepare() error {
	if t.profile != nil {
		return nil
	}
	if len(t.Output) == 0 {
		return fmt.Errorf("fault: target %s has no output ranges", t.Name)
	}
	tr := gpusim.NewProfileTrace(t.Threads())
	dev := t.Init.Clone()
	res, err := gpusim.Execute(dev, t.launch(nil, tr, 0))
	if err != nil {
		return fmt.Errorf("fault: target %s golden run: %w", t.Name, err)
	}
	if res.Trap != nil {
		return fmt.Errorf("fault: target %s golden run trapped: %v", t.Name, res.Trap)
	}
	t.golden = t.extractOutput(dev)

	prof, err := trace.Build(t.Prog, tr, t.Block.Count())
	if err != nil {
		return fmt.Errorf("fault: target %s: %w", t.Name, err)
	}
	t.profile = prof

	factor := t.WatchdogFactor
	if factor == 0 {
		factor = DefaultWatchdogFactor
	}
	var maxICnt int64
	for i := range prof.Threads {
		if prof.Threads[i].ICnt > maxICnt {
			maxICnt = prof.Threads[i].ICnt
		}
	}
	t.watchdog = factor*maxICnt + 1024
	return nil
}

// Profile returns the fault-free profile (Prepare must have succeeded).
func (t *Target) Profile() *trace.Profile {
	if t.profile == nil {
		panic("fault: Profile before Prepare")
	}
	return t.profile
}

// Golden returns the golden output bytes.
func (t *Target) Golden() []byte {
	if t.profile == nil {
		panic("fault: Golden before Prepare")
	}
	return t.golden
}

// extractOutput concatenates the output ranges of a device.
func (t *Target) extractOutput(dev *gpusim.Device) []byte {
	var n int
	for _, r := range t.Output {
		n += r.Len
	}
	out := make([]byte, 0, n)
	for _, r := range t.Output {
		out = dev.AppendRange(out, r.Off, r.Len)
	}
	return out
}

// matchesGolden compares a device's output ranges against the golden output
// without materializing a copy (the per-run hot path).
func (t *Target) matchesGolden(dev *gpusim.Device) bool {
	off := 0
	for _, r := range t.Output {
		if !dev.EqualRange(r.Off, t.golden[off:off+r.Len]) {
			return false
		}
		off += r.Len
	}
	return true
}

// Site identifies one fault site per the paper's model: thread id, dynamic
// instruction index, destination-register bit position.
type Site struct {
	Thread  int
	DynInst int64
	Bit     int
}

func (s Site) String() string {
	return fmt.Sprintf("t%d/i%d/b%d", s.Thread, s.DynInst, s.Bit)
}

// ErrNotASite reports injection at a dynamic instruction that writes no
// destination register.
var ErrNotASite = errors.New("fault: dynamic instruction writes no destination register")

// validateSite checks that a site denotes a destination-writing dynamic
// instruction of the golden profile.
func (t *Target) validateSite(site Site) error {
	if t.profile == nil {
		return errors.New("fault: RunSite before Prepare")
	}
	if site.Thread < 0 || site.Thread >= len(t.profile.Threads) {
		return fmt.Errorf("fault: thread %d out of range", site.Thread)
	}
	tp := &t.profile.Threads[site.Thread]
	if site.DynInst < 0 || site.DynInst >= tp.ICnt {
		return fmt.Errorf("fault: dyn inst %d out of range for thread %d (iCnt %d)",
			site.DynInst, site.Thread, tp.ICnt)
	}
	bits := t.profile.SiteBitsOf(site.Thread, site.DynInst)
	if bits == 0 {
		return ErrNotASite
	}
	if site.Bit < 0 || site.Bit >= bits {
		return fmt.Errorf("fault: bit %d out of range (%d-bit destination)", site.Bit, bits)
	}
	return nil
}

// classify maps a completed run on dev to its outcome.
func (t *Target) classify(dev *gpusim.Device, res *gpusim.Result) Outcome {
	if res.Trap != nil {
		if res.Trap.Kind == gpusim.TrapWatchdog || res.Trap.Kind == gpusim.TrapDeadlock {
			return Hang
		}
		return Crash
	}
	if t.matchesGolden(dev) {
		return Masked
	}
	return SDC
}

// RunSite executes one fault-injection experiment on a fresh clone of the
// pristine device and classifies its outcome. It validates against the
// golden profile that the site denotes a destination-writing dynamic
// instruction. Campaigns use the pooled runner (Run) instead, which reuses
// devices via RunSiteOn.
func (t *Target) RunSite(site Site) (Outcome, error) {
	if err := t.validateSite(site); err != nil {
		return 0, err
	}
	return t.RunSiteOn(t.Init.Clone(), site)
}

// RunSiteOn executes one fault-injection experiment on the provided device,
// which must hold the pristine initial state (a Clone of Init, or a pooled
// device after ResetFrom). The device is left in its post-run state; the
// caller owns resetting it before reuse.
func (t *Target) RunSiteOn(dev *gpusim.Device, site Site) (Outcome, error) {
	if err := t.validateSite(site); err != nil {
		return 0, err
	}
	inj := &gpusim.Injection{Thread: site.Thread, DynInst: site.DynInst, Bit: site.Bit}
	res, err := gpusim.Execute(dev, t.launch(inj, nil, t.watchdog))
	if err != nil {
		return 0, err
	}
	return t.classify(dev, res), nil
}

// DestBitsAt reports the destination width in bits of thread t's dynamic
// instruction i (0 when it is not a fault site).
func (t *Target) DestBitsAt(thread int, dyn int64) int {
	return t.profile.SiteBitsOf(thread, dyn)
}

// StaticPCAt reports the static PC of thread t's dynamic instruction i.
func (t *Target) StaticPCAt(thread int, dyn int64) int {
	return gpusim.PC(t.profile.Threads[thread].PCs[dyn])
}

// Instr returns the static instruction at a PC.
func (t *Target) Instr(pc int) *isa.Instruction { return &t.Prog.Instrs[pc] }
