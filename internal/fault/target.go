package fault

import (
	"errors"
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Range is a byte range of global memory that forms part of a kernel's
// output; outcome classification compares these ranges against the golden
// run.
type Range struct {
	Off, Len int
}

// Target is one kernel launch prepared for fault injection: program,
// geometry, pristine input state, and the golden output to compare against.
type Target struct {
	// Name identifies the target in reports ("GEMM K1").
	Name string
	// Prog is the kernel.
	Prog *isa.Program
	// Grid and Block define the launch geometry.
	Grid, Block gpusim.Dim3
	// Params are the kernel parameters.
	Params []uint32
	// SharedBytes is the per-CTA shared memory size (0 = default).
	SharedBytes int
	// Init is the pristine device state; every experiment runs on a clone.
	Init *gpusim.Device
	// Output lists the global-memory ranges that constitute the output.
	Output []Range

	// WatchdogFactor scales the fault-free per-thread iCnt into the
	// injection-run watchdog (hang detector). 0 means DefaultWatchdogFactor.
	WatchdogFactor int64

	// WarpSize selects the simulator's intra-CTA scheduler for every run of
	// this target, golden and injected alike: 0 interleaves threads serially
	// at barrier boundaries (the default), a positive value executes SIMT
	// lockstep warps of that width (gpusim.Launch.WarpSize).
	WarpSize int
	// FullRun disables the checkpointed fast-forward engine: every campaign
	// experiment re-executes the whole grid from the pristine device. The
	// fast-forward engine is bit-identical to this path by construction (see
	// DESIGN.md §3.2); the option exists as the verification and
	// benchmarking reference.
	FullRun bool
	// CheckpointStride is the CTA-boundary distance between golden
	// snapshots; 0 picks gpusim.AutoCheckpointStride from the grid size.
	CheckpointStride int
	// IntraStride controls intra-CTA (warp-granular) checkpoints, which let
	// an injection resume mid-CTA instead of replaying the injected CTA's
	// fault-free prefix: 0 auto-tunes the capture stride to each CTA's
	// dynamic instruction count (see gpusim.DefaultIntraSnapshots), a
	// positive value captures at exactly that many retired instructions,
	// and a negative value disables intra-CTA checkpointing. Ignored when
	// FullRun is set.
	IntraStride int

	// Interpret disables the simulator's compiled execution plan for every
	// run of this target (gpusim.Launch.Interpret): the reference
	// interpreter executes each instruction instead of the pre-decoded
	// closure plan. Outcomes are bit-identical either way; the switch is
	// the -compiled=false differential-testing escape hatch.
	Interpret bool

	// Cache, when non-nil, routes Prepare through a shared prepared-target
	// cache: the first target with a given key (see prepareKey) performs the
	// golden run, concurrent callers block on the in-flight entry, and later
	// callers adopt the immutable golden output, profile and checkpoint
	// store without re-executing. See PreparedCache. Set it before the first
	// Prepare; a single Target must still not be Prepared concurrently with
	// itself.
	Cache *PreparedCache

	golden   []byte
	watchdog int64
	profile  *trace.Profile
	ckpt     *gpusim.Checkpoints
	wck      *gpusim.WarpCheckpoints

	// Cache provenance of this target's Prepare, harvested once (by the
	// first campaign run on it) into CampaignStats; see takePrepStats.
	prepHits, prepMisses, prepShared int64
}

// DefaultWatchdogFactor multiplies the fault-free maximum thread iCnt to
// obtain the hang-detection ceiling for injection runs. A corrupted loop
// counter can legitimately lengthen execution; 8x the fault-free maximum
// (plus slack) separates that from true runaways quickly.
const DefaultWatchdogFactor = 8

// launch builds a Launch for one run of the target.
func (t *Target) launch(inj *gpusim.Injection, tracer gpusim.Tracer, watchdog int64) *gpusim.Launch {
	return &gpusim.Launch{
		Prog:        t.Prog,
		Grid:        t.Grid,
		Block:       t.Block,
		Params:      t.Params,
		SharedBytes: t.SharedBytes,
		Watchdog:    watchdog,
		Inject:      inj,
		Tracer:      tracer,
		WarpSize:    t.WarpSize,
		Interpret:   t.Interpret,
	}
}

// Threads is the total thread count of the launch.
func (t *Target) Threads() int { return t.Grid.Count() * t.Block.Count() }

// Prepare readies the target for injection: golden output, per-thread
// profile, injection watchdog, and (unless FullRun) the checkpoint store.
// It must be called before Profile, Golden, or RunSite; calling it again is
// a no-op. With Cache set, the golden run happens at most once per distinct
// prepared-target key process-wide — otherwise this target performs it
// itself.
func (t *Target) Prepare() error {
	if t.profile != nil {
		return nil
	}
	if t.Cache != nil {
		return t.Cache.prepare(t)
	}
	return t.prepareCold()
}

// prepareCold runs the fault-free golden execution with tracing, capturing
// the golden output, the per-thread profile, and the injection watchdog.
func (t *Target) prepareCold() error {
	if len(t.Output) == 0 {
		return fmt.Errorf("fault: target %s has no output ranges", t.Name)
	}
	tr := gpusim.NewProfileTrace(t.Threads())
	dev := t.Init.Clone()
	launch := t.launch(nil, tr, 0)
	numCTAs := t.Grid.Count()
	var rec *gpusim.CheckpointRecorder
	if !t.FullRun && numCTAs > 1 {
		rec = gpusim.NewCheckpointRecorder(t.Init, dev, numCTAs, t.CheckpointStride)
		launch.AfterCTA = rec.AfterCTA
	}
	var wrec *gpusim.WarpCheckpointRecorder
	if !t.FullRun && t.IntraStride >= 0 {
		wrec = gpusim.NewWarpCheckpointRecorder(dev, numCTAs, t.IntraStride)
		if rec != nil {
			rec.AttachIntra(wrec)
		}
		launch.IntraRec = wrec
	}
	res, err := gpusim.Execute(dev, launch)
	if err != nil {
		return fmt.Errorf("fault: target %s golden run: %w", t.Name, err)
	}
	if res.Trap != nil {
		return fmt.Errorf("fault: target %s golden run trapped: %v", t.Name, res.Trap)
	}
	if rec != nil {
		t.ckpt = rec.Finish()
	}
	if wrec != nil {
		if wck := wrec.Finish(); wck.Count() > 0 {
			t.wck = wck
		}
	}
	t.golden = t.extractOutput(dev)

	prof, err := trace.Build(t.Prog, tr, t.Block.Count())
	if err != nil {
		return fmt.Errorf("fault: target %s: %w", t.Name, err)
	}
	t.profile = prof

	factor := t.WatchdogFactor
	if factor == 0 {
		factor = DefaultWatchdogFactor
	}
	var maxICnt int64
	for i := range prof.Threads {
		if prof.Threads[i].ICnt > maxICnt {
			maxICnt = prof.Threads[i].ICnt
		}
	}
	t.watchdog = factor*maxICnt + 1024
	return nil
}

// Profile returns the fault-free profile (Prepare must have succeeded).
func (t *Target) Profile() *trace.Profile {
	if t.profile == nil {
		panic("fault: Profile before Prepare")
	}
	return t.profile
}

// Golden returns the golden output bytes.
func (t *Target) Golden() []byte {
	if t.profile == nil {
		panic("fault: Golden before Prepare")
	}
	return t.golden
}

// extractOutput concatenates the output ranges of a device.
func (t *Target) extractOutput(dev *gpusim.Device) []byte {
	var n int
	for _, r := range t.Output {
		n += r.Len
	}
	out := make([]byte, 0, n)
	for _, r := range t.Output {
		out = dev.AppendRange(out, r.Off, r.Len)
	}
	return out
}

// matchesGolden compares a device's output ranges against the golden output
// without materializing a copy (the per-run hot path).
func (t *Target) matchesGolden(dev *gpusim.Device) bool {
	off := 0
	for _, r := range t.Output {
		if !dev.EqualRange(r.Off, t.golden[off:off+r.Len]) {
			return false
		}
		off += r.Len
	}
	return true
}

// Site identifies one fault site per the paper's model: thread id, dynamic
// instruction index, destination-register bit position.
type Site struct {
	Thread  int
	DynInst int64
	Bit     int
}

func (s Site) String() string {
	return fmt.Sprintf("t%d/i%d/b%d", s.Thread, s.DynInst, s.Bit)
}

// ErrNotASite reports injection at a dynamic instruction that writes no
// destination register.
var ErrNotASite = errors.New("fault: dynamic instruction writes no destination register")

// validateSite checks that a site denotes a destination-writing dynamic
// instruction of the golden profile.
func (t *Target) validateSite(site Site) error {
	if t.profile == nil {
		return errors.New("fault: RunSite before Prepare")
	}
	if site.Thread < 0 || site.Thread >= len(t.profile.Threads) {
		return fmt.Errorf("fault: thread %d out of range", site.Thread)
	}
	tp := &t.profile.Threads[site.Thread]
	if site.DynInst < 0 || site.DynInst >= tp.ICnt {
		return fmt.Errorf("fault: dyn inst %d out of range for thread %d (iCnt %d)",
			site.DynInst, site.Thread, tp.ICnt)
	}
	bits := t.profile.SiteBitsOf(site.Thread, site.DynInst)
	if bits == 0 {
		return ErrNotASite
	}
	if site.Bit < 0 || site.Bit >= bits {
		return fmt.Errorf("fault: bit %d out of range (%d-bit destination)", site.Bit, bits)
	}
	return nil
}

// classify maps a completed run on dev to its outcome.
func (t *Target) classify(dev *gpusim.Device, res *gpusim.Result) Outcome {
	if res.Trap != nil {
		if res.Trap.Kind == gpusim.TrapWatchdog || res.Trap.Kind == gpusim.TrapDeadlock {
			return Hang
		}
		return Crash
	}
	if t.matchesGolden(dev) {
		return Masked
	}
	return SDC
}

// RunSite executes one fault-injection experiment on a fresh clone of the
// pristine device, running the whole grid, and classifies its outcome. It
// validates against the golden profile that the site denotes a
// destination-writing dynamic instruction. This is the full-run reference
// path; campaigns (Run) use the pooled checkpointed fast-forward engine,
// which is bit-identical.
func (t *Target) RunSite(site Site) (Outcome, error) {
	if err := t.validateSite(site); err != nil {
		return 0, err
	}
	return t.RunSiteOn(t.Init.Clone(), site)
}

// RunSiteOn executes one full-grid fault-injection experiment on the
// provided device, which must hold the pristine initial state (a Clone of
// Init, or a pooled device after ResetFrom). The device is left in its
// post-run state; the caller owns resetting it before reuse.
func (t *Target) RunSiteOn(dev *gpusim.Device, site Site) (Outcome, error) {
	if err := t.validateSite(site); err != nil {
		return 0, err
	}
	inj := &gpusim.Injection{Thread: site.Thread, DynInst: site.DynInst, Bit: site.Bit}
	res, err := gpusim.Execute(dev, t.launch(inj, nil, t.watchdog))
	if err != nil {
		return 0, err
	}
	return t.classify(dev, res), nil
}

// Checkpoints exposes the golden checkpoint store built by Prepare — nil
// when fast-forwarding is disabled (FullRun) or the grid has a single CTA.
func (t *Target) Checkpoints() *gpusim.Checkpoints { return t.ckpt }

// WarpCheckpoints exposes the intra-CTA snapshot store built by Prepare —
// nil when disabled (FullRun or a negative IntraStride) or when the golden
// run retired too few instructions per CTA for any capture.
func (t *Target) WarpCheckpoints() *gpusim.WarpCheckpoints { return t.wck }

// runCost carries per-run fast-forward metrics out of injectOn.
type runCost struct {
	ctasSkipped  int64
	earlyExit    bool
	intraResumed bool
	// fullRunFallback marks a site whose model is not fast-forward sound:
	// the target had a checkpoint store but this run deliberately ignored
	// it and re-executed from the pristine image. Every built-in model is
	// sound since the scheduler-complete snapshot work (DESIGN.md §3.11),
	// so this is always false today; it survives as the safety valve for
	// future models and to keep journal `fb` replay of old campaigns
	// faithful.
	fullRunFallback bool
}

// injectOn is the campaign hot path: one unchecked injection experiment on a
// pooled device (the site must have been validated up front). It resets dev
// itself — from the checkpoint snapshot nearest the injected CTA when the
// target has a checkpoint store, from the pristine image otherwise.
//
// Fast-forward soundness (details in DESIGN.md §3.2 and, for persistent
// scheduler faults, §3.11): CTAs execute strictly sequentially and share
// only global memory, and the simulator is deterministic, so re-executing
// golden CTAs k..c-1 from the boundary-k snapshot reproduces the full run's
// state at the injected CTA c exactly. Persistent faults stay covered
// because every snapshot is scheduler-complete — boundary snapshots carry no
// live ledger by construction (every thread of prior CTAs has exited), warp
// snapshots capture the full per-thread ledger, and gpusim.Execute rejects a
// resume past the fault's activation point — so the fault re-arms and
// activates at the identical architectural event. After c completes without
// a trap, if the run's global memory equals the golden run's at boundary c+1
// (Checkpoints.Converged over the run's dirty pages) and no persistent fault
// is still live, the remaining CTAs replay the golden run and the outcome is
// Masked without executing them. A trap in a later CTA implies
// non-convergence at c+1, so the early exit can never hide a crash or hang.
func (t *Target) injectOn(dev *gpusim.Device, site Site, model Model) (Outcome, runCost, error) {
	var cost runCost
	inj := &gpusim.Injection{
		Thread: site.Thread, DynInst: site.DynInst, Bit: site.Bit,
		Kind: model.kind(),
	}
	launch := t.launch(inj, nil, t.watchdog)
	ck, wck := t.ckpt, t.wck
	if (ck != nil || wck != nil) && !model.FastForwardSound() {
		// The model corrupts state the fast-forward soundness argument does
		// not cover: degrade this site to a per-site full run rather than
		// resume from a snapshot that may not reproduce it. No built-in model
		// takes this path anymore (DESIGN.md §3.11 extends the proof to the
		// scheduler-corrupting stuck-at models); it remains as the safety
		// valve for future models.
		cost.fullRunFallback = true
		ck, wck = nil, nil
	}
	if ck == nil && wck == nil {
		dev.ResetFrom(t.Init)
		res, err := gpusim.Execute(dev, launch)
		if err != nil {
			return 0, cost, err
		}
		return t.classify(dev, res), cost, nil
	}

	tpc := t.Block.Count()
	cta := site.Thread / tpc
	snap, first := t.Init, 0
	if ck != nil {
		snap, first = ck.SnapshotFor(cta)
	}
	dev.ResetFrom(snap)
	// Inner resume: the latest intra-CTA snapshot at which the injected
	// thread had not yet reached the fault site. Restoring its page delta on
	// top of the floor boundary snapshot reproduces the golden state at the
	// capture point exactly (CTAs share only global memory), so both the
	// inter-snapshot golden CTAs and the injected CTA's fault-free prefix
	// are skipped. The delta is written through the tracked store path, so
	// the convergence check below still hashes every divergent page.
	if wck != nil {
		if ws := wck.SnapshotBefore(cta, site.Thread-cta*tpc, site.DynInst); ws != nil {
			ws.RestorePages(dev)
			launch.Resume = ws
			first = cta
			cost.intraResumed = true
		}
	}
	launch.FirstCTA = first
	converged := false
	if ck != nil && cta+1 < ck.NumCTAs() {
		launch.AfterCTA = func(idx int, faultLive bool) bool {
			if idx != cta || faultLive {
				// Converged is meaningless while a persistent fault is
				// live: memory can match golden at the boundary while a
				// stuck lane or barrier ghost still diverges a later CTA.
				// A fault bound to a thread of CTA `cta` has always retired
				// here (the CTA only completes once its threads exit), so
				// the gate is a mechanical enforcement of that invariant
				// rather than a reachable branch today (DESIGN.md §3.11).
				return false
			}
			if ck.Converged(dev, cta+1) {
				converged = true
				return true
			}
			return false
		}
	}
	res, err := gpusim.Execute(dev, launch)
	if err != nil {
		return 0, cost, err
	}
	cost.ctasSkipped = int64(first)
	// Skipped CTAs are bit-identical to golden; their iCnt comes from the
	// profile so the Result stays equivalent to a full run's.
	for th := 0; th < first*tpc; th++ {
		c := t.profile.Threads[th].ICnt
		res.ThreadICnt[th] = c
		res.TotalDyn += c
	}
	if res.Trap != nil {
		return t.classify(dev, res), cost, nil
	}
	if converged {
		cost.earlyExit = true
		cost.ctasSkipped += int64(ck.NumCTAs() - (cta + 1))
		for th := (cta + 1) * tpc; th < len(res.ThreadICnt); th++ {
			c := t.profile.Threads[th].ICnt
			res.ThreadICnt[th] = c
			res.TotalDyn += c
		}
		return Masked, cost, nil
	}
	return t.classify(dev, res), cost, nil
}

// DestBitsAt reports the destination width in bits of thread t's dynamic
// instruction i (0 when it is not a fault site).
func (t *Target) DestBitsAt(thread int, dyn int64) int {
	return t.profile.SiteBitsOf(thread, dyn)
}

// StaticPCAt reports the static PC of thread t's dynamic instruction i.
func (t *Target) StaticPCAt(thread int, dyn int64) int {
	return gpusim.PC(t.profile.Threads[thread].PCs[dyn])
}

// Instr returns the static instruction at a PC.
func (t *Target) Instr(pc int) *isa.Instruction { return &t.Prog.Instrs[pc] }
