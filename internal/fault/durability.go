package fault

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/journal"
)

// This file is the campaign durability layer: per-site failure isolation
// (panic recovery, wall-clock deadline, retry with exponential backoff,
// quarantine into EngineError), deterministic shard partitioning, the
// journal glue that makes campaigns resumable after a crash or kill -9, and
// cooperative interruption. DESIGN.md §3.3 documents the semantics.

// Failure-isolation defaults (CampaignOptions zero values).
const (
	// DefaultMaxAttempts is how many times a failing site is executed
	// before quarantine.
	DefaultMaxAttempts = 3
	// DefaultSiteDeadline is the per-attempt wall-clock ceiling. It sits on
	// top of the simulator's own step watchdog (which bounds dynamic
	// instructions, not wall time) as the last line of defense against an
	// engine bug that spins without retiring instructions.
	DefaultSiteDeadline = 30 * time.Second
	// DefaultRetryBackoff is the sleep before the first retry; it doubles
	// per attempt.
	DefaultRetryBackoff = time.Millisecond
)

// ErrInterrupted is wrapped by Run when the campaign stops because
// CampaignOptions.Interrupt fired. Completed sites are already journaled
// (when a journal is attached), so rerunning with the same journal resumes.
var ErrInterrupted = errors.New("fault: campaign interrupted")

// errSitePanic and errSiteDeadline classify quarantine causes.
var (
	errSitePanic    = errors.New("fault: site execution panicked")
	errSiteDeadline = errors.New("fault: site deadline exceeded")
)

// Shard deterministically partitions a campaign across processes. Shard i
// of n owns every n-th schedule position starting at i — the partition is
// applied after scheduleOrder, so each shard's subsequence stays CTA-sorted
// and keeps the fast-forward engine's snapshot locality. The zero Shard
// (Count 0) means "the whole campaign".
type Shard struct {
	Index, Count int
}

// normalize maps the zero value to the canonical 1-shard form.
func (s Shard) normalize() Shard {
	if s.Count == 0 {
		return Shard{Index: 0, Count: 1}
	}
	return s
}

func (s Shard) validate() error {
	n := s.normalize()
	if n.Count < 1 || n.Index < 0 || n.Index >= n.Count {
		return fmt.Errorf("fault: invalid shard %d/%d", s.Index, s.Count)
	}
	return nil
}

// owns reports whether schedule position pos belongs to this shard.
func (s Shard) owns(pos int) bool {
	n := s.normalize()
	return pos%n.Count == n.Index
}

// SiteFailure records one quarantined site: the engine could not produce an
// outcome for it within CampaignOptions.MaxAttempts attempts, so its
// outcome is EngineError and the cause is kept here (and in the journal).
type SiteFailure struct {
	// Index is the site's input-order index.
	Index int
	// Site is the site itself.
	Site Site
	// Attempts is how many executions were tried.
	Attempts int
	// Err describes the last failure.
	Err string
}

func (f SiteFailure) String() string {
	return fmt.Sprintf("site %v (index %d): quarantined after %d attempts: %s",
		f.Site, f.Index, f.Attempts, f.Err)
}

// guard bundles the resolved failure-isolation settings of one campaign.
type guard struct {
	maxAttempts int
	deadline    time.Duration
	backoff     time.Duration
}

func newGuard(opt CampaignOptions) guard {
	g := guard{
		maxAttempts: opt.MaxAttempts,
		deadline:    opt.SiteDeadline,
		backoff:     opt.RetryBackoff,
	}
	if g.maxAttempts <= 0 {
		g.maxAttempts = DefaultMaxAttempts
	}
	if g.deadline == 0 {
		g.deadline = DefaultSiteDeadline
	}
	if g.backoff <= 0 {
		g.backoff = DefaultRetryBackoff
	}
	return g
}

// protect invokes runSite with panic recovery, converting a panic into an
// error carrying a truncated stack.
func protect(runSite func(Site) (Outcome, runCost, error), s Site) (o Outcome, c runCost, err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			if len(stack) > 2048 {
				stack = stack[:2048]
			}
			err = fmt.Errorf("%w: %v\n%s", errSitePanic, r, stack)
		}
	}()
	return runSite(s)
}

// siteResult carries one attempt's result out of its goroutine.
type siteResult struct {
	o    Outcome
	cost runCost
	err  error
}

// once executes a single guarded attempt. With a deadline, the attempt runs
// in its own goroutine so a wedged simulator call can be abandoned: the
// stray goroutine finishes (or trips the step watchdog) on its own and its
// result is discarded via the buffered channel. Its pooled device returns
// to the pool late, never concurrently reused.
//
// A negative deadline disables the wall-clock layer entirely: the attempt
// runs inline on the worker goroutine with no timer, it can never be
// abandoned (the simulator's step watchdog remains the only hang bound),
// and a slow-but-finite site always reports its real outcome instead of
// being quarantined.
func (g guard) once(runSite func(Site) (Outcome, runCost, error), s Site) (Outcome, runCost, error) {
	if g.deadline < 0 {
		return protect(runSite, s)
	}
	ch := make(chan siteResult, 1)
	go func() {
		o, c, err := protect(runSite, s)
		ch <- siteResult{o, c, err}
	}()
	timer := time.NewTimer(g.deadline)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.o, r.cost, r.err
	case <-timer.C:
		return 0, runCost{}, fmt.Errorf("%w (%v)", errSiteDeadline, g.deadline)
	}
}

// run executes one site with retries. A nil error means a real outcome;
// a non-nil error means the site is quarantined and the returned outcome is
// EngineError. attempts reports how many executions ran.
func (g guard) run(runSite func(Site) (Outcome, runCost, error), s Site) (o Outcome, cost runCost, attempts int, err error) {
	backoff := g.backoff
	for attempts = 1; ; attempts++ {
		o, cost, err = g.once(runSite, s)
		if err == nil {
			return o, cost, attempts, nil
		}
		if attempts >= g.maxAttempts {
			return EngineError, runCost{}, attempts, err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// JournalFingerprint builds the engine fingerprint a campaign journal is
// opened with. Scale and seed describe how the site list was derived and
// come from the caller; everything else comes from the prepared target and
// campaign shape. A journal recorded under any differing field is stale —
// its outcomes were measured in a different experiment — and journal.Open
// rejects it.
func (t *Target) JournalFingerprint(model Model, sites int, scale string, seed int64, shard Shard) journal.Fingerprint {
	sh := shard.normalize()
	return journal.Fingerprint{
		Kernel:      t.Name,
		Scale:       scale,
		Seed:        seed,
		Model:       model.String(),
		Warp:        t.WarpSize,
		Stride:      t.CheckpointStride,
		IntraStride: t.IntraStride,
		FullRun:     t.FullRun,
		Sites:       sites,
		ShardIndex:  sh.Index,
		ShardCount:  sh.Count,
	}
}

// validateJournal cross-checks an attached journal against the campaign the
// engine is about to run: fault-level fingerprint fields must match (the
// kernel/scale/seed fields were already enforced by journal.Open against
// the caller's fingerprint).
func (t *Target) validateJournal(j *journal.Journal, model Model, nsites int, shard Shard) error {
	fp := j.Fingerprint()
	sh := shard.normalize()
	switch {
	case fp.Sites != nsites:
		return fmt.Errorf("fault: journal %s covers %d sites, campaign has %d", j.Path(), fp.Sites, nsites)
	case fp.Model != model.String():
		return fmt.Errorf("fault: journal %s was recorded under model %s, campaign uses %s", j.Path(), fp.Model, model)
	case fp.Warp != t.WarpSize || fp.Stride != t.CheckpointStride ||
		fp.IntraStride != t.IntraStride || fp.FullRun != t.FullRun:
		return fmt.Errorf("fault: journal %s was recorded under a different engine configuration (warp=%d stride=%d intra=%d fullrun=%v; campaign warp=%d stride=%d intra=%d fullrun=%v)",
			j.Path(), fp.Warp, fp.Stride, fp.IntraStride, fp.FullRun,
			t.WarpSize, t.CheckpointStride, t.IntraStride, t.FullRun)
	case fp.ShardIndex != sh.Index || fp.ShardCount != sh.Count:
		return fmt.Errorf("fault: journal %s belongs to shard %d/%d, campaign runs shard %d/%d",
			j.Path(), fp.ShardIndex, fp.ShardCount, sh.Index, sh.Count)
	}
	return nil
}

// journalRecord assembles the write-ahead record of one completed site.
func journalRecord(i int, ws WeightedSite, o Outcome, cost runCost, attempts int, quarantine string) journal.Record {
	return journal.Record{
		Index:           i,
		Thread:          ws.Site.Thread,
		DynInst:         ws.Site.DynInst,
		Bit:             ws.Site.Bit,
		Outcome:         uint8(o),
		Weight:          ws.Weight,
		CTAsSkipped:     cost.ctasSkipped,
		EarlyExit:       cost.earlyExit,
		IntraResumed:    cost.intraResumed,
		FullRunFallback: cost.fullRunFallback,
		Attempts:        attempts,
		Err:             quarantine,
	}
}

// replayJournal applies the records already on disk: their outcomes are
// final, so the engine marks them done and skips them. Each record's site
// key must match the campaign's site list — a mismatch means the journal
// was produced for a different site derivation than the fingerprint
// admitted, and resuming would be unsound.
func replayJournal(j *journal.Journal, sites []WeightedSite, outcomes []Outcome, done []bool) (replayed int64, quarantined []SiteFailure, err error) {
	for _, r := range j.Replayed() {
		if r.Index < 0 || r.Index >= len(sites) {
			return 0, nil, fmt.Errorf("fault: journal %s: site index %d out of range [0,%d)", j.Path(), r.Index, len(sites))
		}
		ws := sites[r.Index]
		if key := (Site{Thread: r.Thread, DynInst: r.DynInst, Bit: r.Bit}); key != ws.Site {
			return 0, nil, fmt.Errorf("fault: journal %s: record %d holds site %v, campaign site %d is %v",
				j.Path(), r.Index, key, r.Index, ws.Site)
		}
		if o := Outcome(r.Outcome); !o.Valid() {
			return 0, nil, fmt.Errorf("fault: journal %s: record %d holds unknown outcome %d", j.Path(), r.Index, r.Outcome)
		}
		if done[r.Index] {
			return 0, nil, fmt.Errorf("fault: journal %s: duplicate record for site index %d", j.Path(), r.Index)
		}
		outcomes[r.Index] = Outcome(r.Outcome)
		done[r.Index] = true
		replayed++
		if r.Err != "" {
			quarantined = append(quarantined, SiteFailure{
				Index: r.Index, Site: ws.Site, Attempts: r.Attempts, Err: r.Err,
			})
		}
	}
	return replayed, quarantined, nil
}
