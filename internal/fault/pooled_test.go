package fault_test

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/kernels"
	"repro/internal/ptx"
	"repro/internal/stats"
)

// hangTarget builds a kernel where a predicate flip sends one thread to the
// wrong barrier id — a guaranteed deadlock, classified as a hang. Fault-free,
// every thread takes barrier 0 and stores 1.
func hangTarget(t *testing.T) *fault.Target {
	t.Helper()
	prog, err := ptx.Assemble("hang", `
		cvt.u32.u16 $r0, %tid.x
		set.ge.u32.u32 $p0/$o127, $r0, 8
		@$p0.ne bra lother
		bar.sync 0x00000000
		bra lstore
		lother: bar.sync 0x00000001
		lstore: shl.u32 $r1, $r0, 0x00000002
		mov.u32 $r2, 0x00000001
		st.global.u32 [$r1], $r2
		exit
	`)
	if err != nil {
		t.Fatal(err)
	}
	return &fault.Target{
		Name:   "hang",
		Prog:   prog,
		Grid:   gpusim.Dim3{X: 1, Y: 1, Z: 1},
		Block:  gpusim.Dim3{X: 8, Y: 1, Z: 1},
		Init:   gpusim.NewDevice(64),
		Output: []fault.Range{{Off: 0, Len: 32}},
	}
}

// hangSite is a site of hangTarget whose injection deadlocks the CTA: flip
// the zero flag of thread 3's barrier-selecting predicate (dyn inst 1).
var hangSite = fault.Site{Thread: 3, DynInst: 1, Bit: 0}

func TestHangSiteDeadlocks(t *testing.T) {
	tg := hangTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	o, err := tg.RunSite(hangSite)
	if err != nil {
		t.Fatal(err)
	}
	if o != fault.Hang {
		t.Fatalf("barrier-flip site = %v, want hang", o)
	}
}

// referenceOutcomes runs every site on a fresh clone of the pristine device —
// the semantics the pooled engine must reproduce exactly.
func referenceOutcomes(t *testing.T, tg *fault.Target, sites []fault.WeightedSite, model fault.Model) []fault.Outcome {
	t.Helper()
	out := make([]fault.Outcome, len(sites))
	for i, ws := range sites {
		o, err := tg.RunSiteModel(ws.Site, model)
		if err != nil {
			t.Fatalf("reference site %v: %v", ws.Site, err)
		}
		out[i] = o
	}
	return out
}

// TestPooledMatchesFreshClone is the central equivalence property of the
// pooled copy-on-write runner: across kernels, fault models and parallelism
// levels, fault.Run/RunModel must give outcome-for-outcome identical results
// to a fresh clone per site — including after crash and hang sites, whose
// poisoned device state must not leak through pool reuse.
func TestPooledMatchesFreshClone(t *testing.T) {
	type tc struct {
		name   string
		target *fault.Target
		sites  []fault.Site // known sites prepended to a random sample
	}
	cases := []tc{
		{
			name:   "tiny",
			target: tinyTarget(t),
			// Known masked, SDC and crash sites (see TestInjectionOutcomeKinds).
			sites: []fault.Site{
				{Thread: 15, DynInst: 0, Bit: 0},
				{Thread: 0, DynInst: 11, Bit: 0},
				{Thread: 0, DynInst: 7, Bit: 31},
			},
		},
		{
			name:   "hang",
			target: hangTarget(t),
			sites:  []fault.Site{hangSite},
		},
	}
	if spec, ok := kernels.ByName("PathFinder K1"); ok {
		inst, err := spec.Build(kernels.ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, tc{name: "PathFinder K1", target: inst.Target})
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			tg := c.target
			if err := tg.Prepare(); err != nil {
				t.Fatal(err)
			}
			space := fault.NewSpace(tg.Profile())
			sites := fault.Uniform(c.sites)
			for _, s := range space.Random(stats.NewRNG(77), 60) {
				sites = append(sites, fault.WeightedSite{Site: s, Weight: 1})
			}
			// Interleave the special sites through the list so crash/hang
			// runs are followed by normal runs on the same pooled device.
			for i, s := range c.sites {
				sites = append(sites, fault.WeightedSite{Site: s, Weight: 1})
				mid := (len(sites) / 2) + i
				sites[mid], sites[len(sites)-1] = sites[len(sites)-1], sites[mid]
			}

			for model := fault.Model(0); model < fault.NumModels; model++ {
				sites := sites
				switch {
				case model == fault.ModelMemAddr:
					// Random destination sites are not valid mem-addr
					// sites; build a matching population instead.
					var mem []fault.WeightedSite
					for _, s := range space.MemAddrSites(0, nil) {
						mem = append(mem, fault.WeightedSite{Site: s, Weight: 1})
					}
					if len(mem) > 64 {
						mem = mem[:64]
					}
					if len(mem) == 0 {
						continue
					}
					sites = mem
				case model.Persistent():
					// Persistent models encode (stuck value, location) in Bit;
					// fold the destination-site bits into that range so the
					// special crash/hang sites stay in the mix.
					folded := make([]fault.WeightedSite, len(sites))
					for i, ws := range sites {
						ws.Site.Bit %= model.StuckBits()
						folded[i] = ws
					}
					sites = folded
				}
				want := referenceOutcomes(t, tg, sites, model)
				for _, par := range []int{1, 4} {
					res, err := fault.RunModel(tg, sites, model, fault.CampaignOptions{
						Parallelism: par, KeepPerSite: true,
					})
					if err != nil {
						t.Fatalf("model %v par %d: %v", model, par, err)
					}
					for i := range want {
						if res.PerSite[i] != want[i] {
							t.Fatalf("model %v par %d: site %v gave %v, reference %v",
								model, par, sites[i].Site, res.PerSite[i], want[i])
						}
					}
					if res.Stats.Runs != int64(len(sites)) {
						t.Fatalf("model %v par %d: stats runs %d != %d sites",
							model, par, res.Stats.Runs, len(sites))
					}
					// The pool materializes at least one device; GC may
					// drop pooled devices, so the only hard upper bound
					// is one clone per run.
					if res.Stats.DevicesCreated < 1 || int64(res.Stats.DevicesCreated) > res.Stats.Runs {
						t.Fatalf("model %v par %d: devices created %d out of [1, %d]",
							model, par, res.Stats.DevicesCreated, res.Stats.Runs)
					}
				}
			}
		})
	}
}

// TestPooledStatsPagesCopied: the pooled runner's page-copy count reflects
// real work — positive on a campaign with stores, and far below the
// fresh-clone equivalent (every run copying the whole device).
func TestPooledStatsPagesCopied(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(tg.Profile())
	sites := fault.Uniform(space.Random(stats.NewRNG(5), 100))
	res, err := fault.Run(tg, sites, fault.CampaignOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PagesCopied <= 0 {
		t.Fatal("no page copies recorded for a storing campaign")
	}
	// tinyTarget's device fits one page: steady state is <= 2 copies per run
	// (one privatize on first dirtying, one restore), typically just 1.
	if res.Stats.PagesCopied > 2*res.Stats.Runs {
		t.Fatalf("%d page copies across %d runs", res.Stats.PagesCopied, res.Stats.Runs)
	}
}

// TestCampaignErrorDeterministicPublic: through the public API, a campaign
// with several invalid sites must report the lowest-index one's error at any
// parallelism — the regression the shared stop flag fixes.
func TestCampaignErrorDeterministicPublic(t *testing.T) {
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(tg.Profile())
	sites := fault.Uniform(space.Random(stats.NewRNG(6), 200))
	// Dyn inst 5 writes no destination (guarded bra): ErrNotASite. Plant an
	// out-of-range site earlier and the not-a-site later; the earlier one
	// must win every time.
	sites[40] = fault.WeightedSite{Site: fault.Site{Thread: 0, DynInst: 99999, Bit: 0}, Weight: 1}
	sites[150] = fault.WeightedSite{Site: fault.Site{Thread: 0, DynInst: 5, Bit: 0}, Weight: 1}
	for _, par := range []int{1, 2, 8} {
		for trial := 0; trial < 3; trial++ {
			_, err := fault.Run(tg, sites, fault.CampaignOptions{Parallelism: par})
			if err == nil {
				t.Fatalf("par %d: error swallowed", par)
			}
			if errors.Is(err, fault.ErrNotASite) {
				t.Fatalf("par %d: reported the later site's error: %v", par, err)
			}
		}
	}
}
