package fault

import (
	"sync"

	"repro/internal/gpusim"
)

// Snapshot-affine scheduling. The schedule order already sorts sites by CTA,
// so sites resuming from the same checkpoint snapshot are contiguous; what a
// shared batch cursor destroys is *which worker* runs them: a pooled device
// that just reset from snapshot k pays a full owned-page restore the moment
// its worker picks up a site of snapshot k+1 (see Device.ResetFrom). The
// scheduler below instead cuts the work list into chunks that never span a
// snapshot boundary, assigns contiguous chunk runs to workers, and lets an
// idle worker steal whole chunks — so a device switches snapshot sources at
// chunk boundaries only, and AffinityResets stays near the number of chunk
// transitions rather than the number of sites. Scheduling can only change
// which device runs a site, never the site's outcome: every run resets its
// device to the same snapshot content regardless of provenance (DESIGN.md
// §3.4).

// chunk is a half-open run [lo, hi) of work positions sharing one affinity
// key (or an arbitrary run when the campaign has no affinity).
type chunk struct{ lo, hi int }

// chunkTargetSize picks the chunk granule: small enough that every worker
// gets several chunks (so stealing can rebalance), never below the old
// batch size of 16 (so the shared-state cadence stays coarse).
func chunkTargetSize(nwork, workers int) int {
	t := nwork / (workers * 4)
	if t < 16 {
		t = 16
	}
	return t
}

// buildChunks cuts the work positions [0, nwork) into chunks of roughly
// target size that never span an affinity boundary. key is nil when the
// campaign has no affinity (full-run targets); then only size cuts apply.
func buildChunks(nwork int, key func(pos int) int, target int) []chunk {
	chunks := make([]chunk, 0, nwork/target+1)
	lo := 0
	for i := 1; i <= nwork; i++ {
		cut := i == nwork || i-lo >= target
		if !cut && key != nil && key(i) != key(lo) {
			cut = true
		}
		if cut {
			chunks = append(chunks, chunk{lo, i})
			lo = i
		}
	}
	return chunks
}

// chunkQueues deals chunks to workers: each worker owns a contiguous run of
// chunks (assigned proportionally by site count, so snapshot groups stay
// together even when their sizes are skewed) and, once its own queue
// drains, steals whole chunks from the back of the queue of the worker with
// the most remaining sites.
type chunkQueues struct {
	mu     sync.Mutex
	chunks []chunk
	queues [][]int // per-worker chunk indices, in execution order
	remain []int   // per-worker queued (not yet handed out) site count
}

func newChunkQueues(chunks []chunk, workers, nwork int) *chunkQueues {
	q := &chunkQueues{
		chunks: chunks,
		queues: make([][]int, workers),
		remain: make([]int, workers),
	}
	w, assigned := 0, 0
	for ci, c := range chunks {
		// Move to the next worker once this one holds its proportional
		// share of sites; chunk ci stays contiguous with its predecessors.
		for w < workers-1 && assigned >= (w+1)*nwork/workers {
			w++
		}
		q.queues[w] = append(q.queues[w], ci)
		q.remain[w] += c.hi - c.lo
		assigned += c.hi - c.lo
	}
	return q
}

// next hands worker w its next chunk: the front of its own queue, else a
// whole chunk stolen from the back of the fullest queue. Chunks entirely at
// or beyond limit (the FailFast cancellation frontier) are discarded, not
// returned. ok is false when no work is left anywhere.
func (q *chunkQueues) next(w int, limit int) (c chunk, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		var ci int
		if own := q.queues[w]; len(own) > 0 {
			ci, q.queues[w] = own[0], own[1:]
			q.remain[w] -= q.chunks[ci].hi - q.chunks[ci].lo
		} else {
			victim := -1
			for v := range q.queues {
				if len(q.queues[v]) > 0 && (victim < 0 || q.remain[v] > q.remain[victim]) {
					victim = v
				}
			}
			if victim < 0 {
				return chunk{}, false
			}
			vq := q.queues[victim]
			ci, q.queues[victim] = vq[len(vq)-1], vq[:len(vq)-1]
			q.remain[victim] -= q.chunks[ci].hi - q.chunks[ci].lo
		}
		if c = q.chunks[ci]; c.lo < limit {
			return c, true
		}
	}
}

// workerRunner pins one pooled device to a campaign worker so that
// consecutive sites of a snapshot group reset on ResetFrom's same-source
// fast path. take detaches the pinned device (falling back to the pool), so
// a retry after an abandoned deadline attempt can never share a device with
// the stray goroutine still running the old attempt: the stray holds the
// detached device until its own give, which re-pins only if the slot is
// empty and otherwise returns the device to the pool — after the stray has
// stopped touching it.
type workerRunner struct {
	t     *Target
	model Model
	pool  *devicePool
	mu    sync.Mutex
	dev   *gpusim.Device
}

func (r *workerRunner) take() *gpusim.Device {
	r.mu.Lock()
	d := r.dev
	r.dev = nil
	r.mu.Unlock()
	if d == nil {
		d = r.pool.get()
	}
	return d
}

func (r *workerRunner) give(d *gpusim.Device) {
	r.mu.Lock()
	if r.dev == nil {
		r.dev = d
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	r.pool.put(d)
}

// run executes one site on the pinned device; it is the runSite hook the
// campaign engine calls (directly or under the durability guard).
func (r *workerRunner) run(s Site) (Outcome, runCost, error) {
	d := r.take()
	o, cost, err := r.t.injectOn(d, s, r.model)
	r.give(d)
	return o, cost, err
}

// close returns the pinned device (if any) to the pool so its counters are
// harvested into campaign stats.
func (r *workerRunner) close() {
	r.mu.Lock()
	d := r.dev
	r.dev = nil
	r.mu.Unlock()
	if d != nil {
		r.pool.put(d)
	}
}
