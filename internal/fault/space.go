package fault

import (
	"fmt"
	"sort"

	"repro/internal/gpusim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Space is the exhaustive fault-site space of a profiled kernel (Eq. 1 of
// the paper): every destination-register bit of every dynamic instruction of
// every thread. Sites are indexable by a flat id in [0, Total()), which makes
// uniform random sampling over billions of sites cheap without materializing
// them.
type Space struct {
	prof *trace.Profile
	// cum[t] is the number of fault-site bits in threads [0, t); cum has
	// len(threads)+1 entries so cum[len] == Total().
	cum []int64
}

// NewSpace indexes the fault-site space of a profile.
func NewSpace(prof *trace.Profile) *Space {
	cum := make([]int64, len(prof.Threads)+1)
	for t := range prof.Threads {
		cum[t+1] = cum[t] + prof.Threads[t].SiteBits
	}
	return &Space{prof: prof, cum: cum}
}

// Total is the exhaustive fault-site count (Eq. 1, Table I rightmost column).
func (s *Space) Total() int64 { return s.cum[len(s.cum)-1] }

// Site decodes a flat index into a concrete (thread, dynamic instruction,
// bit) site.
func (s *Space) Site(idx int64) Site {
	if idx < 0 || idx >= s.Total() {
		panic(fmt.Sprintf("fault: site index %d out of [0, %d)", idx, s.Total()))
	}
	// Binary search the owning thread, then walk its trace.
	t := sort.Search(len(s.cum)-1, func(i int) bool { return s.cum[i+1] > idx })
	rem := idx - s.cum[t]
	tp := &s.prof.Threads[t]
	for i := int64(0); i < tp.ICnt; i++ {
		bits := int64(s.prof.SiteBitsOf(t, i))
		if rem < bits {
			return Site{Thread: t, DynInst: i, Bit: int(rem)}
		}
		rem -= bits
	}
	panic("fault: cumulative site counts inconsistent with trace")
}

// ThreadSites enumerates every fault site of one thread, optionally keeping
// only sites whose dynamic instruction satisfies keep (nil keeps all).
func (s *Space) ThreadSites(t int, keep func(dyn int64) bool) []Site {
	tp := &s.prof.Threads[t]
	sites := make([]Site, 0, tp.SiteBits)
	for i := int64(0); i < tp.ICnt; i++ {
		bits := s.prof.SiteBitsOf(t, i)
		if bits == 0 || (keep != nil && !keep(i)) {
			continue
		}
		for b := 0; b < bits; b++ {
			sites = append(sites, Site{Thread: t, DynInst: i, Bit: b})
		}
	}
	return sites
}

// Random draws n sites uniformly at random (with replacement; for spaces
// orders of magnitude larger than n, as in the paper's 60K baseline over
// 1e5-1e9 sites, duplicates are statistically negligible).
func (s *Space) Random(rng *stats.RNG, n int) []Site {
	total := s.Total()
	sites := make([]Site, n)
	for i := range sites {
		sites[i] = s.Site(rng.Int63n(total))
	}
	return sites
}

// InstructionSites enumerates sites at one static instruction (identified by
// PC) across a set of threads — the paper's CTA-level study injects
// exhaustively into selected target instructions (Section III-B1). For
// threads that execute the instruction several times (loops), every dynamic
// occurrence contributes sites.
func (s *Space) InstructionSites(pc int, threads []int) []Site {
	var sites []Site
	for _, t := range threads {
		tp := &s.prof.Threads[t]
		for i := int64(0); i < tp.ICnt; i++ {
			if gpusim.PC(tp.PCs[i]) != pc {
				continue
			}
			bits := s.prof.SiteBitsOf(t, i)
			for b := 0; b < bits; b++ {
				sites = append(sites, Site{Thread: t, DynInst: i, Bit: b})
			}
		}
	}
	return sites
}

// Profile exposes the underlying fault-free profile.
func (s *Space) Profile() *trace.Profile { return s.prof }
