package fault

import (
	"fmt"
	"sync"

	"repro/internal/gpusim"
	"repro/internal/trace"
)

// The prepared-target cache amortizes Target.Prepare across a pipeline:
// Plan.Estimate, AutoLoopIters, the adaptive baseline and campaign Run each
// build their own Target for the same kernel+scale, and without sharing each
// re-executes the golden run and rebuilds the checkpoint store. A
// PreparedCache keys the immutable prepared state (golden output, profile,
// watchdog, checkpoint store — all read-only after Prepare) and hands it to
// every later consumer with an equal key. The first caller runs the golden
// execution; concurrent callers with the same key block on the in-flight
// entry (singleflight); everyone else adopts the finished artifacts.
// Soundness argument and key derivation: DESIGN.md §3.4.

// DefaultPreparedCacheBytes bounds the retained checkpoint-store and
// golden-artifact bytes of the process-wide cache (see
// DefaultPreparedCache). 256 MiB holds every kernel of the built-in suite
// at small and paper scales with room to spare.
const DefaultPreparedCacheBytes int64 = 256 << 20

// prepareKey identifies one prepared-target equivalence class: targets with
// equal keys produce bit-identical golden runs, profiles and checkpoint
// stores, because the simulator is deterministic in all of these inputs.
// Program identity is covered by name+geometry for the built-in kernel
// suite; cfgHash folds params, output ranges and the initial device content
// so that same-named targets with different inputs (custom kernels) never
// collide.
type prepareKey struct {
	name           string
	grid, block    gpusim.Dim3
	sharedBytes    int
	warpSize       int
	fullRun        bool
	interpret      bool
	stride         int
	intraStride    int
	watchdogFactor int64
	cfgHash        uint64
}

// prepareKey derives the cache key of a target. It hashes the initial
// device content (Device.Fingerprint) — one page-hash pass, far cheaper
// than the golden run being amortized.
func (t *Target) prepareKey() prepareKey {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) { h = (h ^ v) * prime }
	mix(uint64(len(t.Params)))
	for _, p := range t.Params {
		mix(uint64(p))
	}
	mix(uint64(len(t.Output)))
	for _, r := range t.Output {
		mix(uint64(r.Off))
		mix(uint64(r.Len))
	}
	mix(t.Init.Fingerprint())
	return prepareKey{
		name:           t.Name,
		grid:           t.Grid,
		block:          t.Block,
		sharedBytes:    t.SharedBytes,
		warpSize:       t.WarpSize,
		fullRun:        t.FullRun,
		interpret:      t.Interpret,
		stride:         t.CheckpointStride,
		intraStride:    t.IntraStride,
		watchdogFactor: t.WatchdogFactor,
		cfgHash:        h,
	}
}

// preparedState is the immutable artifact set one golden run produces. All
// fields are read-only after Prepare and safe to share across targets and
// goroutines.
type preparedState struct {
	golden   []byte
	watchdog int64
	profile  *trace.Profile
	ckpt     *gpusim.Checkpoints
	wck      *gpusim.WarpCheckpoints
}

// approxBytes estimates the memory the entry pins beyond the pristine
// device: golden output, per-thread dynamic PC streams, checkpoint snapshot
// pages, and intra-CTA warp snapshots.
func (s *preparedState) approxBytes() int64 {
	n := int64(len(s.golden))
	if s.profile != nil {
		for i := range s.profile.Threads {
			n += int64(len(s.profile.Threads[i].PCs))*2 + 48
		}
	}
	if s.ckpt != nil {
		n += s.ckpt.Bytes()
	}
	if s.wck != nil {
		n += s.wck.Bytes()
	}
	return n
}

// install adopts shared prepared state into the target.
func (t *Target) install(s *preparedState) {
	t.golden = s.golden
	t.watchdog = s.watchdog
	t.profile = s.profile
	t.ckpt = s.ckpt
	t.wck = s.wck
}

// snapshotPrepared captures the target's prepared state for sharing.
func (t *Target) snapshotPrepared() *preparedState {
	return &preparedState{
		golden:   t.golden,
		watchdog: t.watchdog,
		profile:  t.profile,
		ckpt:     t.ckpt,
		wck:      t.wck,
	}
}

// takePrepStats harvests the target's Prepare provenance counters exactly
// once — the first campaign run on the target reports them into
// CampaignStats, so a pipeline's aggregated stats count each Prepare once
// no matter how many campaigns the target serves.
func (t *Target) takePrepStats() (hits, misses, shared int64) {
	hits, misses, shared = t.prepHits, t.prepMisses, t.prepShared
	t.prepHits, t.prepMisses, t.prepShared = 0, 0, 0
	return
}

// CacheStats is a point-in-time summary of a PreparedCache.
type CacheStats struct {
	// Hits counts Prepares served from a finished entry; Misses counts
	// Prepares that performed the golden run; Shared counts Prepares that
	// blocked on another caller's in-flight golden run.
	Hits, Misses, Shared int64
	// Evictions counts entries dropped to respect the byte bound.
	Evictions int64
	// Entries and Bytes describe current residency.
	Entries int
	Bytes   int64
}

// String renders the stats in the -stats one-line style.
func (s CacheStats) String() string {
	return fmt.Sprintf("prepared cache: %d hits, %d misses, %d shared, %d evictions, %d entries (%.1f MiB)",
		s.Hits, s.Misses, s.Shared, s.Evictions, s.Entries,
		float64(s.Bytes)/(1<<20))
}

// prepEntry is one cache slot. ready is closed when the golden run
// finished (successfully or not); done/state/err are written before the
// close and only read after it (waiters) or under the cache lock (hits).
type prepEntry struct {
	key     prepareKey
	ready   chan struct{}
	done    bool
	state   *preparedState
	err     error
	bytes   int64
	lastUse int64
	// pins counts callers still between admitting/joining this entry and
	// installing its state: the creator from registration until its install
	// finishes, and every singleflight waiter until it wakes and installs.
	// A pinned entry is never evicted — without the pin, a concurrent
	// different-keyed install could evict the entry in that window
	// (evictLocked's keep only shields the entry being installed *by that
	// call*), and the next equal-keyed Prepare would re-run a golden run
	// whose result waiters were still adopting, double-counting the miss.
	pins int
}

// PreparedCache shares prepared-target state across Targets with equal
// keys. It is safe for concurrent use. Entries are evicted least recently
// used once retained bytes exceed the bound, except the entry being
// returned and entries still in flight. A zero PreparedCache is not usable;
// construct with NewPreparedCache or use DefaultPreparedCache.
type PreparedCache struct {
	mu       sync.Mutex
	maxBytes int64
	seq      int64
	bytes    int64
	entries  map[prepareKey]*prepEntry
	hits     int64
	misses   int64
	shared   int64
	evicted  int64
}

// NewPreparedCache builds a cache bounded to maxBytes of retained prepared
// state (approximate; see preparedState.approxBytes). maxBytes <= 0 selects
// DefaultPreparedCacheBytes.
func NewPreparedCache(maxBytes int64) *PreparedCache {
	if maxBytes <= 0 {
		maxBytes = DefaultPreparedCacheBytes
	}
	return &PreparedCache{
		maxBytes: maxBytes,
		entries:  make(map[prepareKey]*prepEntry),
	}
}

var processCache = NewPreparedCache(0)

// DefaultPreparedCache returns the process-wide prepared-target cache the
// CLIs and the experiments harness share.
func DefaultPreparedCache() *PreparedCache { return processCache }

// Stats returns a point-in-time summary.
func (c *PreparedCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Shared: c.shared,
		Evictions: c.evicted, Entries: len(c.entries), Bytes: c.bytes,
	}
}

// prepare is the Prepare path for a cache-routed target (t.Cache == c).
func (c *PreparedCache) prepare(t *Target) error {
	key := t.prepareKey()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.done {
			// Finished entries with errors are removed on completion, so a
			// resident done entry always holds usable state.
			c.hits++
			t.prepHits++
			c.seq++
			e.lastUse = c.seq
			s := e.state
			c.mu.Unlock()
			t.install(s)
			return nil
		}
		// Another caller's golden run is in flight: wait for it. The pin
		// keeps the entry resident from here until this caller installed
		// its state, so the shared golden run can never be evicted out from
		// under a waiter that already joined it.
		e.pins++
		c.shared++
		t.prepShared++
		c.mu.Unlock()
		<-e.ready
		if e.err == nil {
			t.install(e.state)
		}
		c.mu.Lock()
		e.pins--
		// Dropping the pin may unblock an eviction the byte bound already
		// owed; settle it now (still shielding the entry being returned)
		// rather than waiting for the next install.
		c.evictLocked(e)
		c.mu.Unlock()
		return e.err
	}

	// First caller for this key: publish the in-flight entry (pinned until
	// its install completes), run the golden execution outside the lock,
	// then finalize.
	e := &prepEntry{key: key, ready: make(chan struct{}), pins: 1}
	c.entries[key] = e
	c.misses++
	t.prepMisses++
	c.mu.Unlock()

	err := t.prepareCold()

	c.mu.Lock()
	if err != nil {
		// Do not cache failures: a later caller may fix the target (or the
		// failure may be transient) and should get a fresh attempt.
		e.err = err
		delete(c.entries, key)
	} else {
		e.state = t.snapshotPrepared()
		e.bytes = e.state.approxBytes()
		e.done = true
		c.seq++
		e.lastUse = c.seq
		c.bytes += e.bytes
		c.evictLocked(e)
	}
	e.pins--
	close(e.ready)
	c.mu.Unlock()
	return err
}

// evictLocked drops least-recently-used finished entries until retained
// bytes fit the bound. The entry being returned (keep, may be nil),
// in-flight entries, and pinned entries (callers still adopting their
// state; see prepEntry.pins) are never evicted, so the newest entry is
// always admitted — a single oversized kernel degrades the cache to
// pass-through rather than failing — and a concurrent install can never
// invalidate a golden run another caller is mid-way through adopting.
func (c *PreparedCache) evictLocked(keep *prepEntry) {
	for c.bytes > c.maxBytes {
		var victim *prepEntry
		for _, e := range c.entries {
			if e == keep || !e.done || e.pins > 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(c.entries, victim.key)
		c.bytes -= victim.bytes
		c.evicted++
	}
}
