package fault

import (
	"testing"
)

// TestBuildChunksProperties: chunks cover [0, nwork) exactly, respect the
// target size, and never span an affinity boundary.
func TestBuildChunksProperties(t *testing.T) {
	// Skewed affinity groups: one huge, several tiny, one mid-size.
	bounds := []int{0, 200, 205, 210, 215, 300, 317}
	key := func(pos int) int {
		for g := len(bounds) - 2; g >= 0; g-- {
			if pos >= bounds[g] {
				return g
			}
		}
		t.Fatalf("position %d outside all groups", pos)
		return -1
	}
	nwork := bounds[len(bounds)-1]
	const target = 16
	chunks := buildChunks(nwork, key, target)

	next := 0
	for i, c := range chunks {
		if c.lo != next || c.hi <= c.lo {
			t.Fatalf("chunk %d = %+v: not contiguous from %d", i, c, next)
		}
		if c.hi-c.lo > target {
			t.Fatalf("chunk %d = %+v exceeds target size %d", i, c, target)
		}
		if key(c.lo) != key(c.hi-1) {
			t.Fatalf("chunk %d = %+v spans groups %d and %d", i, c, key(c.lo), key(c.hi-1))
		}
		next = c.hi
	}
	if next != nwork {
		t.Fatalf("chunks cover [0, %d), want [0, %d)", next, nwork)
	}

	// Without a key, only size cuts apply: all chunks but the last are full.
	for i, c := range buildChunks(100, nil, 16) {
		if size := c.hi - c.lo; size != 16 && c.hi != 100 {
			t.Fatalf("keyless chunk %d = %+v has size %d", i, c, size)
		}
	}
}

// TestChunkQueuesCoverage: with stealing, every position is handed out
// exactly once regardless of which workers ask, and a raised limit discards
// whole chunks past the cancellation frontier.
func TestChunkQueuesCoverage(t *testing.T) {
	const nwork, workers = 317, 4
	chunks := buildChunks(nwork, nil, chunkTargetSize(nwork, workers))
	q := newChunkQueues(chunks, workers, nwork)

	// Worker 3 drains everything alone: own queue first, then steals.
	seen := make([]bool, nwork)
	for {
		c, ok := q.next(3, nwork)
		if !ok {
			break
		}
		for p := c.lo; p < c.hi; p++ {
			if seen[p] {
				t.Fatalf("position %d handed out twice", p)
			}
			seen[p] = true
		}
	}
	for p, s := range seen {
		if !s {
			t.Fatalf("position %d never handed out", p)
		}
	}

	// Limit discarding: chunks wholly at or beyond the limit never surface.
	q = newChunkQueues(chunks, workers, nwork)
	const limit = 40
	for w := 0; w < workers; w++ {
		for {
			c, ok := q.next(w, limit)
			if !ok {
				break
			}
			if c.lo >= limit {
				t.Fatalf("worker %d got chunk %+v past limit %d", w, c, limit)
			}
		}
	}
}

// TestChunkQueuesProportional: contiguous assignment gives every worker a
// near-proportional share of sites, so pinned devices stay busy before any
// stealing happens.
func TestChunkQueuesProportional(t *testing.T) {
	const nwork, workers = 1000, 4
	chunks := buildChunks(nwork, nil, chunkTargetSize(nwork, workers))
	q := newChunkQueues(chunks, workers, nwork)
	for w, r := range q.remain {
		if r == 0 {
			t.Fatalf("worker %d assigned no sites", w)
		}
		share := float64(r) / float64(nwork)
		if share < 0.15 || share > 0.35 {
			t.Fatalf("worker %d holds %.0f%% of sites, want near %d%%", w, 100*share, 100/workers)
		}
	}
	// Each worker's run of chunks is contiguous in position order.
	for w, qs := range q.queues {
		for i := 1; i < len(qs); i++ {
			if chunks[qs[i]].lo != chunks[qs[i-1]].hi {
				t.Fatalf("worker %d queue not contiguous at chunk %d", w, i)
			}
		}
	}
}
