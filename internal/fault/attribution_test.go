package fault_test

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/stats"
)

// TestAttributed joins a campaign's per-site outcomes back onto its site
// list and checks every field against the ground truth the target exposes.
func TestAttributed(t *testing.T) {
	tgt := tinyTarget(t)
	if err := tgt.Prepare(); err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(tgt.Profile())
	rng := stats.NewRNG(7).Split("baseline")
	sites := fault.Uniform(space.Random(rng, 60))

	res, err := fault.Run(tgt, sites, fault.CampaignOptions{KeepPerSite: true})
	if err != nil {
		t.Fatal(err)
	}
	attributed, err := res.Attributed(tgt, fault.ModelDestValue, sites)
	if err != nil {
		t.Fatal(err)
	}
	if len(attributed) != len(sites) {
		t.Fatalf("got %d attributed outcomes, want %d", len(attributed), len(sites))
	}
	for i, a := range attributed {
		if a.Index != i {
			t.Fatalf("entry %d carries index %d", i, a.Index)
		}
		if a.Site != sites[i].Site {
			t.Fatalf("entry %d carries site %v, want %v", i, a.Site, sites[i].Site)
		}
		if a.Outcome != res.PerSite[i] {
			t.Fatalf("entry %d carries outcome %v, want %v", i, a.Outcome, res.PerSite[i])
		}
		if a.Weight != sites[i].Weight {
			t.Fatalf("entry %d carries weight %v, want %v", i, a.Weight, sites[i].Weight)
		}
		if want := tgt.StaticPCAt(a.Site.Thread, a.Site.DynInst); a.PC != want {
			t.Fatalf("entry %d resolves PC %d, want %d", i, a.PC, want)
		}
	}
}

// TestAttributedRejects checks the preconditions: attribution must fail
// without KeepPerSite and on a mismatched site list, not mis-attribute.
func TestAttributedRejects(t *testing.T) {
	tgt := tinyTarget(t)
	if err := tgt.Prepare(); err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(tgt.Profile())
	rng := stats.NewRNG(7).Split("baseline")
	sites := fault.Uniform(space.Random(rng, 20))

	res, err := fault.Run(tgt, sites, fault.CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Attributed(tgt, fault.ModelDestValue, sites); err == nil ||
		!strings.Contains(err.Error(), "KeepPerSite") {
		t.Fatalf("want KeepPerSite error, got %v", err)
	}

	res, err = fault.Run(tgt, sites, fault.CampaignOptions{KeepPerSite: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Attributed(tgt, fault.ModelDestValue, sites[:10]); err == nil {
		t.Fatal("want error for mismatched site list, got nil")
	}
}
