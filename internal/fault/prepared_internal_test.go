package fault

import "testing"

// entryFor registers a finished entry of the given size directly, the
// white-box seam for eviction-policy tests.
func entryFor(c *PreparedCache, name string, bytes int64) *prepEntry {
	e := &prepEntry{
		key:   prepareKey{name: name},
		ready: make(chan struct{}),
		done:  true,
		bytes: bytes,
	}
	close(e.ready)
	c.seq++
	e.lastUse = c.seq
	c.entries[e.key] = e
	c.bytes += bytes
	return e
}

// TestEvictLockedSkipsPinned pins the eviction-vs-in-flight-handoff fix:
// an entry some caller is still adopting (pins > 0) must survive any
// concurrent install's eviction pass, no matter how over budget the cache
// is; dropping the pin makes it an ordinary LRU victim again.
func TestEvictLockedSkipsPinned(t *testing.T) {
	c := NewPreparedCache(10)
	c.mu.Lock()
	defer c.mu.Unlock()

	pinned := entryFor(c, "pinned", 8)
	pinned.pins = 1
	loose := entryFor(c, "loose", 8) // more recently used than pinned
	entryFor(c, "inflight", 0).done = false

	// 16 bytes resident against a 10-byte bound: eviction wants victims.
	// LRU order would pick "pinned" first; the pin must divert it to
	// "loose" and then stop (the in-flight entry is never a victim).
	c.evictLocked(nil)
	if _, ok := c.entries[pinned.key]; !ok {
		t.Fatal("pinned entry was evicted while a caller was adopting it")
	}
	if _, ok := c.entries[loose.key]; ok {
		t.Fatal("unpinned LRU entry survived an over-budget eviction pass")
	}
	if c.evicted != 1 {
		t.Fatalf("evictions = %d, want 1", c.evicted)
	}
	// The surviving pinned entry alone fits the bound again.
	if c.bytes != 8 {
		t.Fatalf("resident bytes = %d, want 8", c.bytes)
	}

	// Unpinned, the same entry becomes a normal victim.
	pinned.pins = 0
	entryFor(c, "newer", 8)
	c.evictLocked(nil)
	if _, ok := c.entries[pinned.key]; ok {
		t.Fatal("unpinned entry survived eviction despite being the LRU victim")
	}
}

// TestEvictLockedKeepShield: the entry being returned by the current call
// is never its own victim, even when it is the only evictable entry.
func TestEvictLockedKeepShield(t *testing.T) {
	c := NewPreparedCache(1)
	c.mu.Lock()
	defer c.mu.Unlock()

	keep := entryFor(c, "keep", 100)
	c.evictLocked(keep)
	if _, ok := c.entries[keep.key]; !ok {
		t.Fatal("keep entry evicted by its own install pass")
	}
	if c.evicted != 0 {
		t.Fatalf("evictions = %d, want 0", c.evicted)
	}
}
