package fault_test

import (
	"testing"

	"repro/internal/fault"
)

// TestCompiledCampaignMatchesInterpreter is the end-to-end acceptance
// property of the compiled execution plan (DESIGN.md §3.8) at the fault-
// campaign level: on the adversarial chainhang kernel — whose exhaustive
// site space reaches all four outcome classes, including barrier deadlocks
// and address faults — a campaign on the compiled path with every
// acceleration layer enabled (CTA checkpoints, intra-CTA snapshots) must
// give outcome-for-outcome identical results to the reference interpreter
// running full runs from the pristine image (Target.Interpret, the CLI's
// -compiled=false), under both schedulers.
func TestCompiledCampaignMatchesInterpreter(t *testing.T) {
	for _, warp := range []int{0, 4} {
		warp := warp
		name := "serial"
		if warp > 0 {
			name = "warp4"
		}
		t.Run(name, func(t *testing.T) {
			// Reference: the interpreter, full runs, no fast-forwarding.
			ref := chainHangTarget(t)
			ref.WarpSize = warp
			ref.Interpret = true
			ref.FullRun = true
			if err := ref.Prepare(); err != nil {
				t.Fatal(err)
			}
			sites := exhaustiveSites(ref)
			if len(sites) < 1000 {
				t.Fatalf("implausibly small exhaustive space: %d", len(sites))
			}
			want := make([]fault.Outcome, len(sites))
			seen := map[fault.Outcome]int{}
			for i, ws := range sites {
				o, err := ref.RunSite(ws.Site)
				if err != nil {
					t.Fatalf("reference %v: %v", ws.Site, err)
				}
				want[i] = o
				seen[o]++
			}
			for _, o := range []fault.Outcome{fault.Masked, fault.SDC, fault.Crash, fault.Hang} {
				if seen[o] == 0 {
					t.Fatalf("exhaustive space reaches no %v outcome: %v", o, seen)
				}
			}

			// Compiled path with checkpoints and intra-CTA snapshots active.
			tg := chainHangTarget(t)
			tg.WarpSize = warp
			tg.CheckpointStride = 1
			tg.IntraStride = 2
			if err := tg.Prepare(); err != nil {
				t.Fatal(err)
			}
			if tg.Checkpoints() == nil {
				t.Fatal("no checkpoint store on a multi-CTA target")
			}
			if tg.WarpCheckpoints() == nil {
				t.Fatal("no intra-CTA snapshot store")
			}
			res, err := fault.Run(tg, sites, fault.CampaignOptions{
				Parallelism: 4, KeepPerSite: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if res.PerSite[i] != want[i] {
					t.Fatalf("site %v: compiled campaign gave %v, interpreter full run gave %v",
						sites[i].Site, res.PerSite[i], want[i])
				}
			}
			if res.Stats.CTAsSkipped == 0 {
				t.Fatal("compiled campaign never fast-forwarded a CTA")
			}
			if res.Stats.IntraSkips == 0 {
				t.Fatal("compiled campaign never resumed from an intra-CTA snapshot")
			}
		})
	}
}
