package fault_test

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/kernels"
	"repro/internal/report"
	"repro/internal/stats"
)

// persistentModels are the stuck-at fault models under test.
var persistentModels = []fault.Model{
	fault.ModelStuckPred, fault.ModelStuckActiveMask, fault.ModelStuckBarrier,
}

// stuckSample builds a deterministic persistent-site population: the full
// stuck-at spaces of two threads in different CTAs (so activation points
// cover barrier arrivals, memory traffic and retirement) plus a random
// sample across the rest of the grid.
func stuckSample(tg *fault.Target, model fault.Model, n int) []fault.WeightedSite {
	space := fault.NewSpace(tg.Profile())
	var sites []fault.Site
	sites = append(sites, space.StuckSites(0, model, nil)...)
	sites = append(sites, space.StuckSites(tg.Threads()-1, model, nil)...)
	sites = append(sites, space.RandomModel(stats.NewRNG(131), n, model)...)
	return fault.Uniform(sites)
}

// stuckReference computes per-site outcomes on the reference engine: the
// interpreter, full runs from the pristine image, a fresh device per site.
func stuckReference(t *testing.T, ref *fault.Target, sites []fault.WeightedSite, model fault.Model) []fault.Outcome {
	t.Helper()
	want := make([]fault.Outcome, len(sites))
	seen := map[fault.Outcome]int{}
	for i, ws := range sites {
		o, err := ref.RunSiteModel(ws.Site, model)
		if err != nil {
			t.Fatalf("reference %v: %v", ws.Site, err)
		}
		want[i] = o
		seen[o]++
	}
	if len(seen) < 2 {
		t.Fatalf("model %s: degenerate outcome space %v — the sample exercises nothing", model, seen)
	}
	return want
}

// TestStuckAtMatchesFullRunExhaustive is the central equivalence property of
// the persistent-fault subsystem: on the adversarial chainhang kernel
// (cross-CTA global dependence, predicate-guarded barrier split), every
// stuck-at site must give identical outcomes across {interpreter, compiled}
// × {checkpointed + intra-CTA resume, full run} × {serial, warp} — with the
// checkpointed engine transparently degrading fast-forward-unsound models to
// per-site full runs (DESIGN.md §3.9), which the stats must surface.
func TestStuckAtMatchesFullRunExhaustive(t *testing.T) {
	for _, warp := range []int{0, 4} {
		warp := warp
		name := "serial"
		if warp > 0 {
			name = "warp4"
		}
		t.Run(name, func(t *testing.T) {
			ref := chainHangTarget(t)
			ref.WarpSize = warp
			ref.FullRun = true
			ref.Interpret = true
			if err := ref.Prepare(); err != nil {
				t.Fatal(err)
			}
			for _, model := range persistentModels {
				model := model
				t.Run(model.String(), func(t *testing.T) {
					sites := stuckSample(ref, model, 150)
					want := stuckReference(t, ref, sites, model)

					type variant struct {
						name      string
						interpret bool
						fullRun   bool
					}
					variants := []variant{
						{name: "compiled-fullrun", fullRun: true},
						{name: "compiled-ckpt"},
						{name: "interp-ckpt", interpret: true},
					}
					for _, v := range variants {
						tg := chainHangTarget(t)
						tg.WarpSize = warp
						tg.Interpret = v.interpret
						tg.FullRun = v.fullRun
						if !v.fullRun {
							tg.CheckpointStride = 1
							tg.IntraStride = 2
						}
						if err := tg.Prepare(); err != nil {
							t.Fatal(err)
						}
						res, err := fault.RunModel(tg, sites, model, fault.CampaignOptions{
							Parallelism: 4, KeepPerSite: true,
						})
						if err != nil {
							t.Fatalf("%s: %v", v.name, err)
						}
						for i := range want {
							if res.PerSite[i] != want[i] {
								t.Fatalf("%s: site %v gave %v, reference full run gave %v",
									v.name, sites[i].Site, res.PerSite[i], want[i])
							}
						}
						st := res.Stats
						switch {
						case v.fullRun:
							// No checkpoint store exists, so nothing to fall
							// back from.
							if st.FullRunFallbacks != 0 {
								t.Fatalf("%s: %d fallbacks without a checkpoint store", v.name, st.FullRunFallbacks)
							}
						case model.FastForwardSound():
							// Stuck-pred rides the fast-forward engine like a
							// transient fault.
							if st.FullRunFallbacks != 0 {
								t.Fatalf("%s: sound model %s fell back %d times", v.name, model, st.FullRunFallbacks)
							}
							if st.CTAsSkipped == 0 {
								t.Fatalf("%s: fast-forward never skipped a CTA for %s", v.name, model)
							}
						default:
							// Mask/barrier faults force per-site full runs,
							// one fallback per executed site.
							if st.FullRunFallbacks != int64(len(sites)) {
								t.Fatalf("%s: %s fell back %d times, want %d (one per site)",
									v.name, model, st.FullRunFallbacks, len(sites))
							}
							if st.CTAsSkipped != 0 || st.EarlyExits != 0 || st.IntraSkips != 0 {
								t.Fatalf("%s: %s still fast-forwarded: %+v", v.name, model, st)
							}
						}
					}
				})
			}
		})
	}
}

// TestStuckAtGaussianEquivalence extends the equivalence matrix to the
// paper's cross-CTA-dependency kernels: Gaussian Fan1 and Fan2 at small
// geometry, persistent sites sampled from each model's own space, compiled
// checkpointed and full-run campaigns against the interpreter full-run
// reference, under both schedulers.
func TestStuckAtGaussianEquivalence(t *testing.T) {
	for _, kname := range []string{"Gaussian K1", "Gaussian K2"} {
		kname := kname
		t.Run(kname, func(t *testing.T) {
			spec, ok := kernels.ByName(kname)
			if !ok {
				t.Fatalf("kernel %q missing", kname)
			}
			for _, warp := range []int{0, 4} {
				rinst, err := spec.Build(kernels.ScaleSmall)
				if err != nil {
					t.Fatal(err)
				}
				ref := rinst.Target
				ref.WarpSize = warp
				ref.FullRun = true
				ref.Interpret = true
				if err := ref.Prepare(); err != nil {
					t.Fatal(err)
				}
				for _, model := range persistentModels {
					space := fault.NewSpace(ref.Profile())
					sites := fault.Uniform(space.RandomModel(stats.NewRNG(173), 80, model))
					want := make([]fault.Outcome, len(sites))
					for i, ws := range sites {
						o, err := ref.RunSiteModel(ws.Site, model)
						if err != nil {
							t.Fatalf("reference %v: %v", ws.Site, err)
						}
						want[i] = o
					}
					for _, fullRun := range []bool{false, true} {
						inst, err := spec.Build(kernels.ScaleSmall)
						if err != nil {
							t.Fatal(err)
						}
						tg := inst.Target
						tg.WarpSize = warp
						tg.FullRun = fullRun
						if !fullRun {
							tg.IntraStride = 2
						}
						if err := tg.Prepare(); err != nil {
							t.Fatal(err)
						}
						res, err := fault.RunModel(tg, sites, model, fault.CampaignOptions{
							Parallelism: 4, KeepPerSite: true,
						})
						if err != nil {
							t.Fatal(err)
						}
						for i := range want {
							if res.PerSite[i] != want[i] {
								t.Fatalf("warp %d model %s fullrun %v: site %v gave %v, reference %v",
									warp, model, fullRun, sites[i].Site, res.PerSite[i], want[i])
							}
						}
						if !fullRun && !model.FastForwardSound() &&
							res.Stats.FullRunFallbacks != int64(len(sites)) {
							t.Fatalf("warp %d model %s: %d fallbacks, want %d",
								warp, model, res.Stats.FullRunFallbacks, len(sites))
						}
					}
				}
			}
		})
	}
}

// TestStuckAtCampaignSmoke pins the observability chain of the fallback
// path end to end: the counter must reach CampaignStats.String, the report
// JSON (full_run_fallbacks), the journal records (fb), and fsmerge's merged
// document — and stay zero for a fast-forward-sound persistent model.
func TestStuckAtCampaignSmoke(t *testing.T) {
	run := func(model fault.Model, jpath string) *fault.CampaignResult {
		tg := chainHangTarget(t)
		tg.CheckpointStride = 1
		if err := tg.Prepare(); err != nil {
			t.Fatal(err)
		}
		space := fault.NewSpace(tg.Profile())
		sites := fault.Uniform(space.RandomModel(stats.NewRNG(7), 40, model))
		opt := fault.CampaignOptions{Parallelism: 2, KeepPerSite: true}
		if jpath != "" {
			j, err := journal.Open(jpath, tg.JournalFingerprint(model, len(sites), "small", 7, fault.Shard{}))
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			opt.Journal = j
		}
		res, err := fault.RunModel(tg, sites, model, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	jpath := filepath.Join(t.TempDir(), "mask.journal")
	res := run(fault.ModelStuckActiveMask, jpath)
	if res.Stats.FullRunFallbacks != 40 {
		t.Fatalf("stuck-active-mask fallbacks = %d, want 40", res.Stats.FullRunFallbacks)
	}
	if !strings.Contains(res.Stats.String(), "40 full-run fallbacks") {
		t.Fatalf("stats string hides the fallbacks: %s", res.Stats)
	}
	doc, err := json.Marshal(report.NewCampaign(res.Stats))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(doc), `"full_run_fallbacks":40`) {
		t.Fatalf("report JSON hides the fallbacks: %s", doc)
	}

	// The journal's per-record fb flags must aggregate back to the same
	// count through the fsmerge path.
	fp, recs, err := journal.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := report.NewMerged(fp, recs)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Campaign.FullRunFallbacks != 40 {
		t.Fatalf("merged report fallbacks = %d, want 40", merged.Campaign.FullRunFallbacks)
	}
	if merged.Model != fault.ModelStuckActiveMask.String() {
		t.Fatalf("merged report model = %q", merged.Model)
	}

	// A sound persistent model keeps the fast-forward engine and the field
	// disappears from the JSON (omitempty).
	pres := run(fault.ModelStuckPred, "")
	if pres.Stats.FullRunFallbacks != 0 {
		t.Fatalf("stuck-pred fallbacks = %d, want 0", pres.Stats.FullRunFallbacks)
	}
	if pres.Stats.CTAsSkipped == 0 {
		t.Fatal("stuck-pred campaign never fast-forwarded")
	}
	pdoc, err := json.Marshal(report.NewCampaign(pres.Stats))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(pdoc), "full_run_fallbacks") {
		t.Fatalf("zero fallbacks still serialized: %s", pdoc)
	}
}

// TestStuckSitesAndRandomModel pins the persistent site enumerators: every
// enumerated or sampled site validates under its model, and the encodings
// cover both stuck values.
func TestStuckSitesAndRandomModel(t *testing.T) {
	tg := chainHangTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(tg.Profile())
	for _, model := range persistentModels {
		w := model.StuckBits()
		icnt := tg.Profile().Threads[0].ICnt
		sites := space.StuckSites(0, model, nil)
		if int64(len(sites)) != icnt*int64(w) {
			t.Fatalf("%s: %d sites for thread 0, want %d×%d", model, len(sites), icnt, w)
		}
		bits := map[int]bool{}
		for _, s := range sites {
			if _, err := tg.RunSiteModel(s, model); err != nil {
				t.Fatalf("%s: enumerated site %v rejected: %v", model, s, err)
			}
			bits[s.Bit] = true
			if len(bits) == w {
				break // all encodings witnessed; no need to run the rest
			}
		}
		if len(bits) != w {
			t.Fatalf("%s: enumeration covered %d of %d encodings", model, len(bits), w)
		}
		for _, s := range space.RandomModel(stats.NewRNG(5), 64, model) {
			if s.Bit < 0 || s.Bit >= w {
				t.Fatalf("%s: sampled bit %d out of [0,%d)", model, s.Bit, w)
			}
			if s.DynInst < 0 || s.DynInst >= tg.Profile().Threads[s.Thread].ICnt {
				t.Fatalf("%s: sampled dyn %d out of thread %d's trace", model, s.DynInst, s.Thread)
			}
		}
	}
	// Out-of-range stuck encodings are rejected up front.
	if _, err := tg.RunSiteModel(fault.Site{Thread: 0, DynInst: 0, Bit: 2}, fault.ModelStuckBarrier); err == nil {
		t.Fatal("stuck-barrier bit 2 accepted")
	}
	if _, err := tg.RunSiteModel(fault.Site{Thread: 0, DynInst: 0, Bit: 64}, fault.ModelStuckPred); err == nil {
		t.Fatal("stuck-pred bit 64 accepted")
	}
}

// TestParseModelRoundTrip: every model name round-trips through ParseModel,
// and garbage is rejected with the name list in the error.
func TestParseModelRoundTrip(t *testing.T) {
	for m := fault.Model(0); m < fault.NumModels; m++ {
		got, err := fault.ParseModel(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseModel(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := fault.ParseModel("stuck-everything"); err == nil ||
		!strings.Contains(err.Error(), "stuck-pred") {
		t.Fatalf("bad model error = %v", err)
	}
	if n := strings.Count(fault.ModelNames(), ","); n != int(fault.NumModels)-1 {
		t.Fatalf("ModelNames lists %d commas for %d models: %s", n, fault.NumModels, fault.ModelNames())
	}
}
