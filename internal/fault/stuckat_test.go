package fault_test

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/kernels"
	"repro/internal/report"
	"repro/internal/stats"
)

// persistentModels are the stuck-at fault models under test.
var persistentModels = []fault.Model{
	fault.ModelStuckPred, fault.ModelStuckActiveMask, fault.ModelStuckBarrier,
}

// stuckSample builds a deterministic persistent-site population: the full
// stuck-at spaces of two threads in different CTAs (so activation points
// cover barrier arrivals, memory traffic and retirement) plus a random
// sample across the rest of the grid.
func stuckSample(tg *fault.Target, model fault.Model, n int) []fault.WeightedSite {
	space := fault.NewSpace(tg.Profile())
	var sites []fault.Site
	sites = append(sites, space.StuckSites(0, model, nil)...)
	sites = append(sites, space.StuckSites(tg.Threads()-1, model, nil)...)
	sites = append(sites, space.RandomModel(stats.NewRNG(131), n, model)...)
	return fault.Uniform(sites)
}

// stuckReference computes per-site outcomes on the reference engine: the
// interpreter, full runs from the pristine image, a fresh device per site.
func stuckReference(t *testing.T, ref *fault.Target, sites []fault.WeightedSite, model fault.Model) []fault.Outcome {
	t.Helper()
	want := make([]fault.Outcome, len(sites))
	seen := map[fault.Outcome]int{}
	for i, ws := range sites {
		o, err := ref.RunSiteModel(ws.Site, model)
		if err != nil {
			t.Fatalf("reference %v: %v", ws.Site, err)
		}
		want[i] = o
		seen[o]++
	}
	if len(seen) < 2 {
		t.Fatalf("model %s: degenerate outcome space %v — the sample exercises nothing", model, seen)
	}
	return want
}

// TestStuckAtMatchesFullRunExhaustive is the central equivalence property of
// the persistent-fault subsystem: on the adversarial chainhang kernel
// (cross-CTA global dependence, predicate-guarded barrier split), every
// stuck-at site must give identical outcomes across {interpreter, compiled}
// × {checkpointed + intra-CTA resume, full run} × {serial, warp} — with every
// model, including the scheduler-corrupting mask and barrier stuck-ats,
// riding the fast-forward engine with zero full-run fallbacks (the
// scheduler-complete snapshot argument, DESIGN.md §3.11), which the stats
// must surface.
func TestStuckAtMatchesFullRunExhaustive(t *testing.T) {
	for _, warp := range []int{0, 4} {
		warp := warp
		name := "serial"
		if warp > 0 {
			name = "warp4"
		}
		t.Run(name, func(t *testing.T) {
			ref := chainHangTarget(t)
			ref.WarpSize = warp
			ref.FullRun = true
			ref.Interpret = true
			if err := ref.Prepare(); err != nil {
				t.Fatal(err)
			}
			for _, model := range persistentModels {
				model := model
				t.Run(model.String(), func(t *testing.T) {
					sites := stuckSample(ref, model, 150)
					want := stuckReference(t, ref, sites, model)

					type variant struct {
						name      string
						interpret bool
						fullRun   bool
					}
					variants := []variant{
						{name: "compiled-fullrun", fullRun: true},
						{name: "compiled-ckpt"},
						{name: "interp-ckpt", interpret: true},
					}
					for _, v := range variants {
						tg := chainHangTarget(t)
						tg.WarpSize = warp
						tg.Interpret = v.interpret
						tg.FullRun = v.fullRun
						if !v.fullRun {
							tg.CheckpointStride = 1
							tg.IntraStride = 2
						}
						if err := tg.Prepare(); err != nil {
							t.Fatal(err)
						}
						res, err := fault.RunModel(tg, sites, model, fault.CampaignOptions{
							Parallelism: 4, KeepPerSite: true,
						})
						if err != nil {
							t.Fatalf("%s: %v", v.name, err)
						}
						for i := range want {
							if res.PerSite[i] != want[i] {
								t.Fatalf("%s: site %v gave %v, reference full run gave %v",
									v.name, sites[i].Site, res.PerSite[i], want[i])
							}
						}
						st := res.Stats
						if st.FullRunFallbacks != 0 {
							// Every persistent model is fast-forward sound
							// now; any fallback is a regression.
							t.Fatalf("%s: model %s fell back %d times, want 0", v.name, model, st.FullRunFallbacks)
						}
						if !v.fullRun {
							if st.CTAsSkipped == 0 {
								t.Fatalf("%s: fast-forward never skipped a CTA for %s", v.name, model)
							}
							if st.IntraSkips == 0 {
								t.Fatalf("%s: intra-CTA resume never fired for %s", v.name, model)
							}
						}
					}
				})
			}
		})
	}
}

// TestStuckAtGaussianEquivalence extends the equivalence matrix to the
// paper's cross-CTA-dependency kernels: Gaussian Fan1 and Fan2 at small
// geometry, persistent sites sampled from each model's own space, compiled
// checkpointed and full-run campaigns against the interpreter full-run
// reference, under both schedulers.
func TestStuckAtGaussianEquivalence(t *testing.T) {
	for _, kname := range []string{"Gaussian K1", "Gaussian K2"} {
		kname := kname
		t.Run(kname, func(t *testing.T) {
			spec, ok := kernels.ByName(kname)
			if !ok {
				t.Fatalf("kernel %q missing", kname)
			}
			for _, warp := range []int{0, 4} {
				rinst, err := spec.Build(kernels.ScaleSmall)
				if err != nil {
					t.Fatal(err)
				}
				ref := rinst.Target
				ref.WarpSize = warp
				ref.FullRun = true
				ref.Interpret = true
				if err := ref.Prepare(); err != nil {
					t.Fatal(err)
				}
				for _, model := range persistentModels {
					space := fault.NewSpace(ref.Profile())
					sites := fault.Uniform(space.RandomModel(stats.NewRNG(173), 80, model))
					want := make([]fault.Outcome, len(sites))
					for i, ws := range sites {
						o, err := ref.RunSiteModel(ws.Site, model)
						if err != nil {
							t.Fatalf("reference %v: %v", ws.Site, err)
						}
						want[i] = o
					}
					for _, fullRun := range []bool{false, true} {
						inst, err := spec.Build(kernels.ScaleSmall)
						if err != nil {
							t.Fatal(err)
						}
						tg := inst.Target
						tg.WarpSize = warp
						tg.FullRun = fullRun
						if !fullRun {
							tg.IntraStride = 2
						}
						if err := tg.Prepare(); err != nil {
							t.Fatal(err)
						}
						res, err := fault.RunModel(tg, sites, model, fault.CampaignOptions{
							Parallelism: 4, KeepPerSite: true,
						})
						if err != nil {
							t.Fatal(err)
						}
						for i := range want {
							if res.PerSite[i] != want[i] {
								t.Fatalf("warp %d model %s fullrun %v: site %v gave %v, reference %v",
									warp, model, fullRun, sites[i].Site, res.PerSite[i], want[i])
							}
						}
						if res.Stats.FullRunFallbacks != 0 {
							t.Fatalf("warp %d model %s fullrun %v: %d fallbacks, want 0",
								warp, model, fullRun, res.Stats.FullRunFallbacks)
						}
					}
				}
			}
		})
	}
}

// TestStuckAtCampaignSmoke pins the zero-fallback observability chain end to
// end for every persistent model: since the scheduler-complete snapshot work
// (DESIGN.md §3.11) no built-in model degrades to per-site full runs, so the
// counter must read zero in CampaignStats, stay out of the stats line and
// the report JSON (omitempty), aggregate to zero through the journal/fsmerge
// path, and the campaign must demonstrably have fast-forwarded instead.
// (The non-zero chain is covered by TestMixedEraJournalFallbacks, which
// replays journals recorded under the old conservative engine.)
func TestStuckAtCampaignSmoke(t *testing.T) {
	run := func(model fault.Model, jpath string) *fault.CampaignResult {
		tg := chainHangTarget(t)
		tg.CheckpointStride = 1
		if err := tg.Prepare(); err != nil {
			t.Fatal(err)
		}
		space := fault.NewSpace(tg.Profile())
		sites := fault.Uniform(space.RandomModel(stats.NewRNG(7), 40, model))
		opt := fault.CampaignOptions{Parallelism: 2, KeepPerSite: true}
		if jpath != "" {
			j, err := journal.Open(jpath, tg.JournalFingerprint(model, len(sites), "small", 7, fault.Shard{}))
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			opt.Journal = j
		}
		res, err := fault.RunModel(tg, sites, model, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	for _, model := range persistentModels {
		jpath := filepath.Join(t.TempDir(), model.String()+".journal")
		res := run(model, jpath)
		if res.Stats.FullRunFallbacks != 0 {
			t.Fatalf("%s fallbacks = %d, want 0", model, res.Stats.FullRunFallbacks)
		}
		if res.Stats.CTAsSkipped == 0 {
			t.Fatalf("%s campaign never fast-forwarded", model)
		}
		if strings.Contains(res.Stats.String(), "fallback") {
			t.Fatalf("%s stats line mentions fallbacks: %s", model, res.Stats)
		}
		doc, err := json.Marshal(report.NewCampaign(res.Stats))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(doc), "full_run_fallbacks") {
			t.Fatalf("%s: zero fallbacks still serialized: %s", model, doc)
		}

		// The journal's per-record fb flags must aggregate to the same
		// (zero) count through the fsmerge path.
		fp, recs, err := journal.ReadFile(jpath)
		if err != nil {
			t.Fatal(err)
		}
		merged, err := report.NewMerged(fp, recs)
		if err != nil {
			t.Fatal(err)
		}
		if merged.Campaign.FullRunFallbacks != 0 {
			t.Fatalf("%s merged report fallbacks = %d, want 0", model, merged.Campaign.FullRunFallbacks)
		}
		if merged.Model != model.String() {
			t.Fatalf("merged report model = %q, want %q", merged.Model, model)
		}
	}
}

// TestStuckSitesAndRandomModel pins the persistent site enumerators: every
// enumerated or sampled site validates under its model, and the encodings
// cover both stuck values.
func TestStuckSitesAndRandomModel(t *testing.T) {
	tg := chainHangTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(tg.Profile())
	for _, model := range persistentModels {
		w := model.StuckBits()
		icnt := tg.Profile().Threads[0].ICnt
		sites := space.StuckSites(0, model, nil)
		if int64(len(sites)) != icnt*int64(w) {
			t.Fatalf("%s: %d sites for thread 0, want %d×%d", model, len(sites), icnt, w)
		}
		bits := map[int]bool{}
		for _, s := range sites {
			if _, err := tg.RunSiteModel(s, model); err != nil {
				t.Fatalf("%s: enumerated site %v rejected: %v", model, s, err)
			}
			bits[s.Bit] = true
			if len(bits) == w {
				break // all encodings witnessed; no need to run the rest
			}
		}
		if len(bits) != w {
			t.Fatalf("%s: enumeration covered %d of %d encodings", model, len(bits), w)
		}
		for _, s := range space.RandomModel(stats.NewRNG(5), 64, model) {
			if s.Bit < 0 || s.Bit >= w {
				t.Fatalf("%s: sampled bit %d out of [0,%d)", model, s.Bit, w)
			}
			if s.DynInst < 0 || s.DynInst >= tg.Profile().Threads[s.Thread].ICnt {
				t.Fatalf("%s: sampled dyn %d out of thread %d's trace", model, s.DynInst, s.Thread)
			}
		}
	}
	// Out-of-range stuck encodings are rejected up front.
	if _, err := tg.RunSiteModel(fault.Site{Thread: 0, DynInst: 0, Bit: 2}, fault.ModelStuckBarrier); err == nil {
		t.Fatal("stuck-barrier bit 2 accepted")
	}
	if _, err := tg.RunSiteModel(fault.Site{Thread: 0, DynInst: 0, Bit: 64}, fault.ModelStuckPred); err == nil {
		t.Fatal("stuck-pred bit 64 accepted")
	}
}

// TestParseModelRoundTrip: every model name round-trips through ParseModel,
// and garbage is rejected with the name list in the error.
func TestParseModelRoundTrip(t *testing.T) {
	for m := fault.Model(0); m < fault.NumModels; m++ {
		got, err := fault.ParseModel(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseModel(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := fault.ParseModel("stuck-everything"); err == nil ||
		!strings.Contains(err.Error(), "stuck-pred") {
		t.Fatalf("bad model error = %v", err)
	}
	if n := strings.Count(fault.ModelNames(), ","); n != int(fault.NumModels)-1 {
		t.Fatalf("ModelNames lists %d commas for %d models: %s", n, fault.NumModels, fault.ModelNames())
	}
}

// TestMixedEraJournalFallbacks: journals recorded under the old conservative
// engine — whose scheduler-model records carry fb=1 because every such site
// degraded to a per-site full run — must resume and fsmerge under the new
// always-sound engine without skew: replayed outcomes are final, fresh sites
// ride the fast-forward engine with zero new fallbacks, Dist/PerSite are
// bit-identical to an uninterrupted new-engine campaign, and the merged
// report's full_run_fallbacks equals exactly the old-era record count (each
// fb flag counted once, never double-counted through replay).
func TestMixedEraJournalFallbacks(t *testing.T) {
	const oldEra = 12
	model := fault.ModelStuckActiveMask
	tg := chainHangTarget(t)
	tg.CheckpointStride = 1
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(tg.Profile())
	sites := fault.Uniform(space.RandomModel(stats.NewRNG(9), 30, model))

	// The uninterrupted reference under the new engine.
	ref, err := fault.RunModel(tg, sites, model, fault.CampaignOptions{
		Parallelism: 2, KeepPerSite: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Forge the old engine's journal: the first oldEra sites recorded as
	// full-run fallbacks (fb=1, no fast-forward savings). Outcomes match the
	// reference — the old conservative engine computed the same per-site
	// outcomes, just via pristine full runs (PR 8's equivalence proof).
	fp := tg.JournalFingerprint(model, len(sites), "small", 9, fault.Shard{})
	jpath := filepath.Join(t.TempDir(), "oldera.journal")
	j, err := journal.Open(jpath, fp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < oldEra; i++ {
		rec := journal.Record{
			Index: i, Thread: sites[i].Site.Thread, DynInst: sites[i].Site.DynInst,
			Bit: sites[i].Site.Bit, Outcome: uint8(ref.PerSite[i]),
			Weight: sites[i].Weight, FullRunFallback: true, Attempts: 1,
		}
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume under the new engine.
	j2, err := journal.Open(jpath, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	res, err := fault.RunModel(tg, sites, model, fault.CampaignOptions{
		Parallelism: 2, KeepPerSite: true, Journal: j2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist != ref.Dist {
		t.Fatalf("mixed-era dist %v != uninterrupted %v", res.Dist, ref.Dist)
	}
	for i := range ref.PerSite {
		if res.PerSite[i] != ref.PerSite[i] {
			t.Fatalf("site %d: mixed-era %v, reference %v", i, res.PerSite[i], ref.PerSite[i])
		}
	}
	if res.Stats.Replayed != oldEra {
		t.Fatalf("replayed %d records, want %d", res.Stats.Replayed, oldEra)
	}
	if res.Stats.FullRunFallbacks != 0 {
		t.Fatalf("new engine recorded %d fresh fallbacks, want 0", res.Stats.FullRunFallbacks)
	}
	if res.Stats.CTAsSkipped == 0 {
		t.Fatal("fresh sites never fast-forwarded")
	}

	// The fsmerge door: fb flags sum to the old-era record count only.
	mfp, recs, err := journal.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(sites) {
		t.Fatalf("journal holds %d records, want %d", len(recs), len(sites))
	}
	merged, err := report.NewMerged(mfp, recs)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Campaign.FullRunFallbacks != oldEra {
		t.Fatalf("merged fallbacks = %d, want %d (old-era records only, not double-counted)",
			merged.Campaign.FullRunFallbacks, oldEra)
	}
	if want := report.NewProfile(ref.Dist); merged.Profile != want {
		t.Fatalf("merged profile %+v != reference %+v", merged.Profile, want)
	}
}
