package fault

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gpusim"
)

// WeightedSite pairs a fault site with the population weight it represents.
// After pruning, one representative site stands for all the sites it pruned;
// campaign aggregation multiplies its outcome by the weight so the estimated
// profile refers to the original, unpruned population.
type WeightedSite struct {
	Site   Site
	Weight float64
}

// Uniform wraps plain sites with weight 1.
func Uniform(sites []Site) []WeightedSite {
	ws := make([]WeightedSite, len(sites))
	for i, s := range sites {
		ws[i] = WeightedSite{Site: s, Weight: 1}
	}
	return ws
}

// Dedup merges duplicate sites by summing their weights, preserving
// first-occurrence order. Outcomes are deterministic per site, so running a
// duplicate would only repeat work; random sampling with replacement (the
// baseline campaigns) and concatenated plans both benefit. Total weight is
// preserved exactly.
func Dedup(sites []WeightedSite) []WeightedSite {
	index := make(map[Site]int, len(sites))
	out := make([]WeightedSite, 0, len(sites))
	for _, ws := range sites {
		if i, seen := index[ws.Site]; seen {
			out[i].Weight += ws.Weight
			continue
		}
		index[ws.Site] = len(out)
		out = append(out, ws)
	}
	return out
}

// CampaignStats is the observability block of one campaign: how much work
// ran, how fast, and what the pooled copy-on-write device layer cost.
type CampaignStats struct {
	// Runs is the number of injection experiments executed (including a
	// failing one, excluding sites skipped after cancellation).
	Runs int64
	// Wall is the elapsed wall-clock time of the campaign.
	Wall time.Duration
	// RunsPerSec is Runs divided by Wall (outcomes per second).
	RunsPerSec float64
	// PagesCopied counts global-memory page copies performed by the
	// copy-on-write device layer (first-store privatizations plus
	// pristine-reset restores) across all pooled devices.
	PagesCopied int64
	// PeakPool is the number of pristine device clones the campaign
	// materialized: at least the number of concurrently active workers,
	// more when the GC dropped pooled devices between runs.
	PeakPool int
}

// Merge accumulates another campaign's stats: counters add, wall times add
// (campaigns in one pipeline run back to back), pool high-water marks take
// the max, and the rate is recomputed.
func (s *CampaignStats) Merge(o CampaignStats) {
	s.Runs += o.Runs
	s.Wall += o.Wall
	s.PagesCopied += o.PagesCopied
	if o.PeakPool > s.PeakPool {
		s.PeakPool = o.PeakPool
	}
	s.RunsPerSec = 0
	if s.Wall > 0 {
		s.RunsPerSec = float64(s.Runs) / s.Wall.Seconds()
	}
}

// String renders the stats for CLI -stats output.
func (s CampaignStats) String() string {
	return fmt.Sprintf("%d runs in %v (%.0f/s), %d pages copied, pool %d",
		s.Runs, s.Wall.Round(time.Millisecond), s.RunsPerSec, s.PagesCopied, s.PeakPool)
}

// StatsSink accumulates campaign stats across several fault.Run calls —
// e.g. every campaign of a pruning pipeline or experiment sweep. Safe for
// concurrent use. Attach via CampaignOptions.Sink.
type StatsSink struct {
	mu    sync.Mutex
	total CampaignStats
}

// Add merges one campaign's stats into the sink.
func (k *StatsSink) Add(s CampaignStats) {
	k.mu.Lock()
	k.total.Merge(s)
	k.mu.Unlock()
}

// Total returns the accumulated stats.
func (k *StatsSink) Total() CampaignStats {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.total
}

// CampaignResult is the aggregate of an injection campaign.
type CampaignResult struct {
	// Dist is the weighted outcome distribution (the resilience profile).
	Dist Dist
	// PerSite, when requested, holds the outcome of each injected site in
	// input order.
	PerSite []Outcome
	// Stats describes the campaign's execution.
	Stats CampaignStats
}

// CampaignOptions tunes Run.
type CampaignOptions struct {
	// Parallelism is the worker count; 0 means GOMAXPROCS.
	Parallelism int
	// KeepPerSite retains each site's individual outcome.
	KeepPerSite bool
	// Sink, when non-nil, additionally accumulates this campaign's stats
	// (also on error, so cancelled campaigns stay visible).
	Sink *StatsSink
}

// devicePool hands out reusable pristine-state devices to campaign workers.
// Devices are copy-on-write clones of the pristine image; put resets a
// device by restoring only the pages its run dirtied, so steady-state cost
// per experiment is proportional to the run's write set, not the device
// footprint.
type devicePool struct {
	pristine *gpusim.Device
	pool     sync.Pool
	created  atomic.Int64
	pages    atomic.Int64
}

func newDevicePool(pristine *gpusim.Device) *devicePool {
	p := &devicePool{pristine: pristine}
	// Freeze the pristine image now: Clone below may run concurrently from
	// several workers, and freezing is only write-free once already frozen.
	p.pool.New = func() any {
		p.created.Add(1)
		return p.pristine.Clone()
	}
	pristine.Clone() // freeze eagerly; the throwaway clone is trivially small
	return p
}

func (p *devicePool) get() *gpusim.Device { return p.pool.Get().(*gpusim.Device) }

// put restores the device to pristine content and returns it to the pool,
// harvesting its page-copy counter. Safe after trapped or failed runs: reset
// is driven by the dirty-page list, so poisoned state cannot leak into the
// next experiment.
func (p *devicePool) put(d *gpusim.Device) {
	d.ResetFrom(p.pristine)
	p.pages.Add(d.TakePagesCopied())
	p.pool.Put(d)
}

// Run executes one fault-injection experiment per weighted site, in
// parallel, and aggregates the weighted outcome distribution. The target
// must be Prepared. Workers draw reusable copy-on-write devices from a pool
// and reset them between experiments, so runs are independent and the
// aggregation is deterministic regardless of scheduling. A site error
// cancels the remaining campaign promptly and Run returns the error of the
// lowest-index failing site, independent of scheduling.
func Run(t *Target, sites []WeightedSite, opt CampaignOptions) (*CampaignResult, error) {
	return t.runCampaign(sites, opt, (*Target).RunSiteOn)
}

// runCampaign wires a per-device site runner to the parallel engine through
// a device pool, and finalizes stats.
func (t *Target) runCampaign(sites []WeightedSite, opt CampaignOptions,
	runOn func(*Target, *gpusim.Device, Site) (Outcome, error)) (*CampaignResult, error) {

	pool := newDevicePool(t.Init)
	res, st, err := runWith(sites, opt, func(s Site) (Outcome, error) {
		dev := pool.get()
		o, rerr := runOn(t, dev, s)
		pool.put(dev)
		return o, rerr
	})
	st.PagesCopied = pool.pages.Load()
	st.PeakPool = int(pool.created.Load())
	if opt.Sink != nil {
		opt.Sink.Add(st)
	}
	if err != nil {
		return nil, err
	}
	res.Stats = st
	return res, nil
}

// runWith is the shared parallel campaign engine; runSite evaluates one
// site. Work is handed out in batches from a shared cursor. The first site
// error cancels the campaign: the batch cursor stops short of the failing
// index, in-flight workers skip sites at or beyond it, and — because the
// error index only ever decreases and every site below it is still executed
// — the returned error is the one of the lowest-index failing site
// regardless of goroutine scheduling.
func runWith(sites []WeightedSite, opt CampaignOptions,
	runSite func(Site) (Outcome, error)) (*CampaignResult, CampaignStats, error) {

	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sites) {
		workers = len(sites)
	}
	if len(sites) == 0 {
		return &CampaignResult{}, CampaignStats{}, nil
	}

	start := time.Now()
	outcomes := make([]Outcome, len(sites))
	var runs atomic.Int64

	// Cancellation state: errLimit is len(sites) while healthy, and drops
	// to the lowest failing index seen so far. firstErr tracks the error
	// belonging to the current errLimit.
	var errLimit atomic.Int64
	errLimit.Store(int64(len(sites)))
	var errMu sync.Mutex
	var firstErr error
	fail := func(i int, err error) {
		errMu.Lock()
		if int64(i) < errLimit.Load() {
			errLimit.Store(int64(i))
			firstErr = fmt.Errorf("site %v: %w", sites[i].Site, err)
		}
		errMu.Unlock()
	}

	var next int64
	var mu sync.Mutex
	takeBatch := func() (lo, hi int) {
		const batch = 16
		limit := int(errLimit.Load())
		if limit > len(sites) {
			limit = len(sites)
		}
		mu.Lock()
		defer mu.Unlock()
		lo = int(next)
		if lo >= limit {
			return 0, 0
		}
		hi = lo + batch
		if hi > len(sites) {
			hi = len(sites)
		}
		next = int64(hi)
		return lo, hi
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo, hi := takeBatch()
				if lo == hi {
					return
				}
				for i := lo; i < hi; i++ {
					if int64(i) >= errLimit.Load() {
						break
					}
					o, err := runSite(sites[i].Site)
					runs.Add(1)
					if err != nil {
						fail(i, err)
						break
					}
					outcomes[i] = o
				}
			}
		}()
	}
	wg.Wait()

	st := CampaignStats{Runs: runs.Load(), Wall: time.Since(start)}
	if st.Wall > 0 {
		st.RunsPerSec = float64(st.Runs) / st.Wall.Seconds()
	}
	if errLimit.Load() < int64(len(sites)) {
		return nil, st, firstErr
	}

	res := &CampaignResult{}
	for i, ws := range sites {
		res.Dist.Add(outcomes[i], ws.Weight)
	}
	if opt.KeepPerSite {
		res.PerSite = outcomes
	}
	return res, st, nil
}
