package fault

import (
	"fmt"
	"runtime"
	"sync"
)

// WeightedSite pairs a fault site with the population weight it represents.
// After pruning, one representative site stands for all the sites it pruned;
// campaign aggregation multiplies its outcome by the weight so the estimated
// profile refers to the original, unpruned population.
type WeightedSite struct {
	Site   Site
	Weight float64
}

// Uniform wraps plain sites with weight 1.
func Uniform(sites []Site) []WeightedSite {
	ws := make([]WeightedSite, len(sites))
	for i, s := range sites {
		ws[i] = WeightedSite{Site: s, Weight: 1}
	}
	return ws
}

// Dedup merges duplicate sites by summing their weights, preserving
// first-occurrence order. Outcomes are deterministic per site, so running a
// duplicate would only repeat work; random sampling with replacement (the
// baseline campaigns) and concatenated plans both benefit. Total weight is
// preserved exactly.
func Dedup(sites []WeightedSite) []WeightedSite {
	index := make(map[Site]int, len(sites))
	out := make([]WeightedSite, 0, len(sites))
	for _, ws := range sites {
		if i, seen := index[ws.Site]; seen {
			out[i].Weight += ws.Weight
			continue
		}
		index[ws.Site] = len(out)
		out = append(out, ws)
	}
	return out
}

// CampaignResult is the aggregate of an injection campaign.
type CampaignResult struct {
	// Dist is the weighted outcome distribution (the resilience profile).
	Dist Dist
	// PerSite, when requested, holds the outcome of each injected site in
	// input order.
	PerSite []Outcome
}

// CampaignOptions tunes Run.
type CampaignOptions struct {
	// Parallelism is the worker count; 0 means GOMAXPROCS.
	Parallelism int
	// KeepPerSite retains each site's individual outcome.
	KeepPerSite bool
}

// Run executes one fault-injection experiment per weighted site, in
// parallel, and aggregates the weighted outcome distribution. The target
// must be Prepared. Every experiment clones the pristine device, so runs
// are independent and the aggregation is deterministic regardless of
// scheduling.
func Run(t *Target, sites []WeightedSite, opt CampaignOptions) (*CampaignResult, error) {
	return runWith(sites, opt, t.RunSite)
}

// runWith is the shared parallel campaign engine; runSite evaluates one site.
func runWith(sites []WeightedSite, opt CampaignOptions, runSite func(Site) (Outcome, error)) (*CampaignResult, error) {
	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sites) {
		workers = len(sites)
	}
	if len(sites) == 0 {
		return &CampaignResult{}, nil
	}

	outcomes := make([]Outcome, len(sites))
	errs := make([]error, workers)
	var next int64
	var mu sync.Mutex
	takeBatch := func() (lo, hi int) {
		const batch = 16
		mu.Lock()
		defer mu.Unlock()
		lo = int(next)
		if lo >= len(sites) {
			return 0, 0
		}
		hi = lo + batch
		if hi > len(sites) {
			hi = len(sites)
		}
		next = int64(hi)
		return lo, hi
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				lo, hi := takeBatch()
				if lo == hi {
					return
				}
				for i := lo; i < hi; i++ {
					o, err := runSite(sites[i].Site)
					if err != nil {
						errs[w] = fmt.Errorf("site %v: %w", sites[i].Site, err)
						return
					}
					outcomes[i] = o
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &CampaignResult{}
	for i, ws := range sites {
		res.Dist.Add(outcomes[i], ws.Weight)
	}
	if opt.KeepPerSite {
		res.PerSite = outcomes
	}
	return res, nil
}
