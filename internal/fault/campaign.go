package fault

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gpusim"
	"repro/internal/journal"
)

// WeightedSite pairs a fault site with the population weight it represents.
// After pruning, one representative site stands for all the sites it pruned;
// campaign aggregation multiplies its outcome by the weight so the estimated
// profile refers to the original, unpruned population.
type WeightedSite struct {
	Site   Site
	Weight float64
}

// Uniform wraps plain sites with weight 1.
func Uniform(sites []Site) []WeightedSite {
	ws := make([]WeightedSite, len(sites))
	for i, s := range sites {
		ws[i] = WeightedSite{Site: s, Weight: 1}
	}
	return ws
}

// Dedup merges duplicate sites by summing their weights, preserving
// first-occurrence order. Outcomes are deterministic per site, so running a
// duplicate would only repeat work; random sampling with replacement (the
// baseline campaigns) and concatenated plans both benefit. Total weight is
// preserved exactly.
func Dedup(sites []WeightedSite) []WeightedSite {
	index := make(map[Site]int, len(sites))
	out := make([]WeightedSite, 0, len(sites))
	for _, ws := range sites {
		if i, seen := index[ws.Site]; seen {
			out[i].Weight += ws.Weight
			continue
		}
		index[ws.Site] = len(out)
		out = append(out, ws)
	}
	return out
}

// CampaignStats is the observability block of one campaign: how much work
// ran, how fast, and what the pooled copy-on-write device layer cost.
type CampaignStats struct {
	// Runs is the number of injection experiments executed (including a
	// failing one, excluding sites skipped after cancellation).
	Runs int64
	// Wall is the elapsed wall-clock time of the campaign.
	Wall time.Duration
	// RunsPerSec is Runs divided by Wall (outcomes per second).
	RunsPerSec float64
	// PagesCopied counts global-memory page copies performed by the
	// copy-on-write device layer (first-store privatizations plus
	// pristine-reset restores) across all pooled devices.
	PagesCopied int64
	// DevicesCreated is the number of device clones the campaign
	// materialized: at least the number of concurrently active workers,
	// more when the GC dropped pooled devices between runs.
	DevicesCreated int
	// CTAsSkipped counts CTA executions the checkpointed fast-forward
	// engine avoided, summed over all runs: golden prefixes resumed from a
	// snapshot plus suffixes proven golden by convergence.
	CTAsSkipped int64
	// EarlyExits counts runs classified Masked at the injected CTA's
	// boundary because the run's global memory converged to golden state,
	// without executing the remaining CTAs.
	EarlyExits int64
	// IntraSkips counts runs resumed from an intra-CTA (warp-granular)
	// snapshot, skipping the injected CTA's fault-free prefix in addition
	// to whole prefix CTAs.
	IntraSkips int64
	// FullRunFallbacks counts runs that ignored the target's checkpoint
	// store and re-executed from the pristine image because their fault
	// model is not fast-forward sound. Every built-in model is sound since
	// the scheduler-complete snapshot work (DESIGN.md §3.11), so fresh runs
	// always report zero; the counter survives so journals recorded under
	// the old conservative engine (records carrying fb=1) replay and merge
	// faithfully, and as the surface for future unsound models.
	FullRunFallbacks int64
	// IntraCheckpointBytes approximates the memory retained by the target's
	// intra-CTA snapshot store (register files, shared memory, page deltas);
	// like CheckpointBytes it is a per-target figure, not per run.
	IntraCheckpointBytes int64
	// Checkpoints and CheckpointBytes describe the target's golden snapshot
	// store (built once per target by Prepare, not per run): snapshot count
	// including the pristine image, and the approximate memory the
	// snapshots retain beyond it.
	Checkpoints     int
	CheckpointBytes int64
	// Replayed counts sites whose outcome was restored from the campaign
	// journal instead of executed (resume path); they are excluded from
	// Runs.
	Replayed int64
	// Retries counts extra executions spent re-attempting failing sites.
	Retries int64
	// Quarantined counts sites that exhausted their attempts and were
	// bucketed as EngineError.
	Quarantined int64
	// CacheHits, CacheMisses and PreparedShared describe how this campaign's
	// target was Prepared when routed through a PreparedCache: served from a
	// finished entry, performed the golden run itself, or waited on another
	// caller's in-flight golden run. The first campaign on a target reports
	// its Prepare exactly once (later campaigns on the same target report
	// zeros), so pipeline-aggregated stats count each golden run once.
	CacheHits      int64
	CacheMisses    int64
	PreparedShared int64
	// AffinityResets counts pooled-device resets that switched checkpoint
	// sources — the slow full-restore path of Device.ResetFrom that
	// snapshot-affine scheduling exists to avoid. Near the chunk-transition
	// count when affinity works; near Runs when it does not.
	AffinityResets int64
}

// Merge accumulates another campaign's stats: counters add, wall times add
// (campaigns in one pipeline run back to back), the per-target checkpoint
// figures take the max (repeated campaigns on one target share one store),
// and the rate is recomputed.
func (s *CampaignStats) Merge(o CampaignStats) {
	s.Runs += o.Runs
	s.Wall += o.Wall
	s.PagesCopied += o.PagesCopied
	s.DevicesCreated += o.DevicesCreated
	s.CTAsSkipped += o.CTAsSkipped
	s.EarlyExits += o.EarlyExits
	s.IntraSkips += o.IntraSkips
	s.FullRunFallbacks += o.FullRunFallbacks
	s.Replayed += o.Replayed
	s.Retries += o.Retries
	s.Quarantined += o.Quarantined
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.PreparedShared += o.PreparedShared
	s.AffinityResets += o.AffinityResets
	if o.Checkpoints > s.Checkpoints {
		s.Checkpoints = o.Checkpoints
	}
	if o.CheckpointBytes > s.CheckpointBytes {
		s.CheckpointBytes = o.CheckpointBytes
	}
	if o.IntraCheckpointBytes > s.IntraCheckpointBytes {
		s.IntraCheckpointBytes = o.IntraCheckpointBytes
	}
	s.RunsPerSec = 0
	if s.Wall > 0 {
		s.RunsPerSec = float64(s.Runs) / s.Wall.Seconds()
	}
}

// String renders the stats for CLI -stats output.
func (s CampaignStats) String() string {
	out := fmt.Sprintf("%d runs in %v (%.0f/s), %d pages copied, %d devices, %d CTAs skipped, %d early exits, %d checkpoints (%d KiB)",
		s.Runs, s.Wall.Round(time.Millisecond), s.RunsPerSec, s.PagesCopied,
		s.DevicesCreated, s.CTAsSkipped, s.EarlyExits, s.Checkpoints, s.CheckpointBytes/1024)
	if s.IntraSkips > 0 || s.IntraCheckpointBytes > 0 {
		out += fmt.Sprintf(", %d intra-CTA skips (%d KiB warp snapshots)",
			s.IntraSkips, s.IntraCheckpointBytes/1024)
	}
	if s.FullRunFallbacks > 0 {
		out += fmt.Sprintf(", %d full-run fallbacks", s.FullRunFallbacks)
	}
	if s.Replayed > 0 {
		out += fmt.Sprintf(", %d replayed from journal", s.Replayed)
	}
	if s.Retries > 0 || s.Quarantined > 0 {
		out += fmt.Sprintf(", %d retries, %d quarantined", s.Retries, s.Quarantined)
	}
	if s.CacheHits > 0 || s.CacheMisses > 0 || s.PreparedShared > 0 {
		out += fmt.Sprintf(", prepare cache %d hit/%d miss/%d shared",
			s.CacheHits, s.CacheMisses, s.PreparedShared)
	}
	if s.AffinityResets > 0 {
		out += fmt.Sprintf(", %d affinity resets", s.AffinityResets)
	}
	return out
}

// StatsSink accumulates campaign stats across several fault.Run calls —
// e.g. every campaign of a pruning pipeline or experiment sweep. Safe for
// concurrent use. Attach via CampaignOptions.Sink.
type StatsSink struct {
	mu    sync.Mutex
	total CampaignStats
}

// Add merges one campaign's stats into the sink.
func (k *StatsSink) Add(s CampaignStats) {
	k.mu.Lock()
	k.total.Merge(s)
	k.mu.Unlock()
}

// Total returns the accumulated stats.
func (k *StatsSink) Total() CampaignStats {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.total
}

// CampaignResult is the aggregate of an injection campaign.
type CampaignResult struct {
	// Dist is the weighted outcome distribution (the resilience profile).
	// It covers every completed site: executed this run, replayed from the
	// journal, or quarantined (EngineError). On a sharded campaign it
	// covers only this shard's sites.
	Dist Dist
	// PerSite, when requested, holds the outcome of each injected site in
	// input order. On a sharded campaign, entries for sites owned by other
	// shards are meaningless (zero).
	PerSite []Outcome
	// Completed is the number of sites contributing to Dist.
	Completed int
	// Quarantined lists the sites bucketed as EngineError, sorted by
	// input-order index (including ones replayed from the journal).
	Quarantined []SiteFailure
	// Stats describes the campaign's execution.
	Stats CampaignStats
}

// CampaignOptions tunes Run.
type CampaignOptions struct {
	// Parallelism is the worker count; 0 means GOMAXPROCS.
	Parallelism int
	// KeepPerSite retains each site's individual outcome.
	KeepPerSite bool
	// Sink, when non-nil, additionally accumulates this campaign's stats
	// (also on error, so cancelled campaigns stay visible).
	Sink *StatsSink

	// FailFast restores the pre-durability semantics: the first site error
	// cancels the campaign (deterministically reporting the lowest
	// scheduled failing site), with no panic recovery, deadline, retry or
	// quarantine. The default (false) isolates failures per site: a
	// failing site is retried with exponential backoff and, after
	// MaxAttempts, quarantined into the EngineError outcome while the rest
	// of the campaign proceeds.
	FailFast bool
	// MaxAttempts caps executions per site before quarantine; 0 means
	// DefaultMaxAttempts.
	MaxAttempts int
	// SiteDeadline is the wall-clock ceiling per attempt, layered over the
	// simulator's step watchdog. 0 means DefaultSiteDeadline. Any negative
	// value disables the wall-clock layer entirely: attempts run inline
	// with no timer goroutine, only the step watchdog bounds a hang, and a
	// slow-but-finite site is never quarantined for elapsed time (panics
	// still quarantine after MaxAttempts).
	SiteDeadline time.Duration
	// RetryBackoff is the sleep before the first retry (doubling per
	// attempt); 0 means DefaultRetryBackoff.
	RetryBackoff time.Duration

	// Journal, when non-nil, makes the campaign durable: each completed
	// site is appended to it, and sites already recorded (from an earlier,
	// interrupted run) are replayed instead of executed — the resumed
	// campaign's result is bit-identical to an uninterrupted one. The
	// journal must have been opened with the fingerprint of this exact
	// campaign (see Target.JournalFingerprint).
	Journal *journal.Journal
	// Shard restricts execution to a deterministic 1/Count slice of the
	// schedule (see Shard); the zero value runs everything.
	Shard Shard
	// Interrupt, when non-nil, stops the campaign cooperatively once the
	// channel is closed: workers finish their current site, the journal
	// keeps every completed outcome, and Run returns ErrInterrupted.
	Interrupt <-chan struct{}
	// Progress, when non-nil, is the campaign's progress-snapshot hook: it
	// is invoked once after journal replay and then after every completed
	// site (journaled, when a journal is attached) with the number of
	// completed sites so far and the campaign's total site count. On a
	// sharded campaign the count covers only this shard's sites while total
	// remains the whole campaign. Called concurrently from campaign
	// workers; it must be fast and safe for concurrent use.
	Progress func(completed, total int)
}

// devicePool hands out reusable copy-on-write devices to campaign workers.
// Devices start as clones of the pristine image; the runner resets each one
// before use (from a checkpoint snapshot or the pristine image), so put only
// harvests the page-copy counter. Reuse is safe after trapped or failed
// runs: reset is driven by the dirty-page list, so poisoned state cannot
// leak into the next experiment.
type devicePool struct {
	pristine *gpusim.Device
	pool     sync.Pool
	created  atomic.Int64
	pages    atomic.Int64
	srcSw    atomic.Int64
}

func newDevicePool(pristine *gpusim.Device) *devicePool {
	p := &devicePool{pristine: pristine}
	// Freeze the pristine image now: Clone below may run concurrently from
	// several workers, and freezing is only write-free once already frozen.
	p.pool.New = func() any {
		p.created.Add(1)
		return p.pristine.Clone()
	}
	pristine.Clone() // freeze eagerly; the throwaway clone is trivially small
	return p
}

func (p *devicePool) get() *gpusim.Device { return p.pool.Get().(*gpusim.Device) }

func (p *devicePool) put(d *gpusim.Device) {
	p.pages.Add(d.TakePagesCopied())
	p.srcSw.Add(d.TakeSrcSwitches())
	p.pool.Put(d)
}

// Run executes one fault-injection experiment per weighted site, in
// parallel, and aggregates the weighted outcome distribution. The target
// must be Prepared. Workers draw reusable copy-on-write devices from a pool
// and reset them between experiments, so runs are independent and the
// aggregation is deterministic regardless of scheduling; on multi-CTA
// targets (unless Target.FullRun) each run fast-forwards from the golden
// checkpoint nearest its injected CTA and may early-exit on golden-state
// convergence, with outcomes bit-identical to full runs. The whole site list
// is validated up front, so an invalid site fails before any experiment
// executes, reporting the lowest-index invalid site.
//
// Execution failures are isolated per site by default: a failing site is
// retried with exponential backoff and, after MaxAttempts, quarantined into
// the EngineError outcome (CampaignResult.Quarantined) while the campaign
// continues; CampaignOptions.FailFast instead cancels the remaining
// campaign promptly on the first error. With a Journal attached the
// campaign is durable and resumable, with Shard it runs one deterministic
// slice of the schedule, and Interrupt stops it cooperatively (see
// CampaignOptions).
func Run(t *Target, sites []WeightedSite, opt CampaignOptions) (*CampaignResult, error) {
	return t.runCampaign(sites, opt, ModelDestValue)
}

// runCampaign validates the site list, wires the unchecked fast-forward
// runner to the parallel engine through a device pool, and finalizes stats.
func (t *Target) runCampaign(sites []WeightedSite, opt CampaignOptions, model Model) (*CampaignResult, error) {
	// Validate once, outside the hot loop: the engine below runs unchecked.
	// Input order makes the reported error the lowest-index invalid site.
	for i := range sites {
		if err := t.validateSiteModel(sites[i].Site, model); err != nil {
			return nil, fmt.Errorf("site %v: %w", sites[i].Site, err)
		}
	}
	if opt.Journal != nil {
		if err := t.validateJournal(opt.Journal, model, len(sites), opt.Shard); err != nil {
			return nil, err
		}
	}

	pool := newDevicePool(t.Init)
	eng := campaignEngine{
		newRunner: func() (func(Site) (Outcome, runCost, error), func()) {
			r := &workerRunner{t: t, model: model, pool: pool}
			return r.run, r.close
		},
	}
	if ck, wck := t.ckpt, t.wck; ck != nil || wck != nil {
		tpc := t.Block.Count()
		// The affinity key is the outer snapshot ordinal, refined by the
		// intra-CTA snapshot ordinal so chunks never span an intra-CTA
		// snapshot boundary either: within a chunk every site resumes from
		// the same (boundary, warp) snapshot pair.
		eng.affinityOf = func(i int) int {
			s := sites[i].Site
			cta := s.Thread / tpc
			key := 0
			if ck != nil {
				key = ck.SnapshotIndex(cta)
			}
			if wck != nil {
				key = key*1_000_003 + wck.OrdinalBefore(cta, s.Thread-cta*tpc, s.DynInst) + 1
			}
			return key
		}
	}
	res, st, err := runEngine(sites, t.scheduleOrder(sites), opt, eng)
	st.PagesCopied = pool.pages.Load()
	st.DevicesCreated = int(pool.created.Load())
	st.AffinityResets = pool.srcSw.Load()
	st.CacheHits, st.CacheMisses, st.PreparedShared = t.takePrepStats()
	if ck := t.ckpt; ck != nil {
		st.Checkpoints = ck.Count()
		st.CheckpointBytes = ck.Bytes()
	}
	if wck := t.wck; wck != nil {
		st.IntraCheckpointBytes = wck.Bytes()
	}
	if opt.Sink != nil {
		opt.Sink.Add(st)
	}
	if err != nil {
		return nil, err
	}
	res.Stats = st
	return res, nil
}

// scheduleOrder returns the execution order of a checkpointed campaign: a
// permutation sorted by (CTA, thread, dyn inst, bit) — thread order implies
// CTA order — so consecutive batch work shares a checkpoint snapshot and
// stays page-local. Aggregation and error reporting remain input-ordered.
// Returns nil (identity) when reordering cannot help.
func (t *Target) scheduleOrder(sites []WeightedSite) []int {
	if (t.ckpt == nil && t.wck == nil) || len(sites) < 2 {
		return nil
	}
	order := make([]int, len(sites))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := sites[order[a]].Site, sites[order[b]].Site
		if sa.Thread != sb.Thread {
			return sa.Thread < sb.Thread
		}
		if sa.DynInst != sb.DynInst {
			return sa.DynInst < sb.DynInst
		}
		return sa.Bit < sb.Bit
	})
	return order
}

// campaignEngine supplies the per-worker execution hooks of runEngine.
type campaignEngine struct {
	// newRunner builds one worker's site executor plus its cleanup (called
	// when the worker exits). Campaigns hand out device-pinning runners
	// (workerRunner); tests use a shared stub with a no-op cleanup.
	newRunner func() (run func(Site) (Outcome, runCost, error), cleanup func())
	// affinityOf, when non-nil, maps an input-order site index to its
	// scheduling affinity key (the checkpoint snapshot ordinal): chunks
	// never span affinity boundaries, so a worker's pinned device switches
	// reset sources only between chunks.
	affinityOf func(inputIdx int) int
}

// runWith runs the campaign engine with a single shared site evaluator and
// no scheduling affinity — the exact pre-affinity engine semantics, kept as
// the seam the engine's behavioral tests drive.
func runWith(sites []WeightedSite, order []int, opt CampaignOptions,
	runSite func(Site) (Outcome, runCost, error)) (*CampaignResult, CampaignStats, error) {
	return runEngine(sites, order, opt, campaignEngine{
		newRunner: func() (func(Site) (Outcome, runCost, error), func()) {
			return runSite, func() {}
		},
	})
}

// runEngine is the shared parallel campaign engine. order, when non-nil, is
// the permutation mapping schedule position to input index (identity when
// nil): sites execute in schedule order, while outcomes, aggregation and
// error attribution stay in input order. The engine first replays the
// attached journal (outcomes already on disk are final) and drops schedule
// positions owned by other shards, leaving a work list that is cut into
// contiguous chunks along affinity boundaries (see buildChunks) and dealt
// to workers with whole-chunk stealing; each completed site is journaled
// before the campaign moves on. Scheduling affects only which worker (and
// so which pooled device) runs a site — every run resets its device to the
// same snapshot content, so outcomes are independent of the schedule.
//
// Failure handling depends on FailFast. In the default isolating mode a
// failing site is retried and eventually quarantined as EngineError, and
// only journal-append failures or an Interrupt stop the campaign. With
// FailFast, the first site error cancels it: chunks entirely at or beyond
// the failing work position are discarded, in-flight workers skip positions
// at or beyond it, and — because the error position only ever decreases and
// every position below it is still executed — the returned error is the one
// of the lowest-scheduled failing site regardless of goroutine scheduling.
func runEngine(sites []WeightedSite, order []int, opt CampaignOptions,
	eng campaignEngine) (*CampaignResult, CampaignStats, error) {

	if err := opt.Shard.validate(); err != nil {
		return nil, CampaignStats{}, err
	}
	if len(sites) == 0 {
		return &CampaignResult{}, CampaignStats{}, nil
	}
	input := func(pos int) int {
		if order == nil {
			return pos
		}
		return order[pos]
	}

	start := time.Now()
	outcomes := make([]Outcome, len(sites))
	done := make([]bool, len(sites))
	var st CampaignStats

	var quarMu sync.Mutex
	var quarantined []SiteFailure
	if j := opt.Journal; j != nil {
		replayed, quar, err := replayJournal(j, sites, outcomes, done)
		if err != nil {
			return nil, st, err
		}
		st.Replayed = replayed
		quarantined = quar
	}

	// Progress reporting: replayed sites count as already completed, and
	// each executed site ticks the counter once its outcome is final (and
	// journaled).
	var progressed atomic.Int64
	progressed.Store(st.Replayed)
	if opt.Progress != nil {
		opt.Progress(int(st.Replayed), len(sites))
	}

	// The work list: schedule positions owned by this shard whose site is
	// not already journaled.
	work := make([]int, 0, len(sites))
	for pos := 0; pos < len(sites); pos++ {
		if opt.Shard.owns(pos) && !done[input(pos)] {
			work = append(work, pos)
		}
	}

	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(work) {
		workers = len(work)
	}

	var runs, retries, nquar, ctasSkipped, earlyExits, intraSkips, fullRunFB atomic.Int64

	// Cancellation state: errLimit is len(work) while healthy, and drops to
	// the lowest failing work position seen so far. firstErr tracks the
	// error belonging to the current errLimit.
	var errLimit atomic.Int64
	errLimit.Store(int64(len(work)))
	var errMu sync.Mutex
	var firstErr error
	fail := func(wpos, i int, err error) {
		errMu.Lock()
		if int64(wpos) < errLimit.Load() {
			errLimit.Store(int64(wpos))
			firstErr = fmt.Errorf("site %v: %w", sites[i].Site, err)
		}
		errMu.Unlock()
	}

	var interrupted atomic.Bool
	stop := func() bool {
		if interrupted.Load() {
			return true
		}
		if opt.Interrupt == nil {
			return false
		}
		select {
		case <-opt.Interrupt:
			interrupted.Store(true)
			return true
		default:
			return false
		}
	}

	// Cut the work list into affinity-respecting chunks and deal contiguous
	// runs of them to workers. The work list is a subsequence of the
	// schedule order, so positions with equal affinity keys are already
	// contiguous within it.
	var key func(pos int) int
	if eng.affinityOf != nil {
		key = func(pos int) int { return eng.affinityOf(input(work[pos])) }
	}
	var queues *chunkQueues
	if workers > 0 {
		chunks := buildChunks(len(work), key, chunkTargetSize(len(work), workers))
		queues = newChunkQueues(chunks, workers, len(work))
	}

	g := newGuard(opt)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runSite, cleanup := eng.newRunner()
			defer cleanup()
			for {
				if stop() {
					return
				}
				c, ok := queues.next(w, int(errLimit.Load()))
				if !ok {
					return
				}
				for wpos := c.lo; wpos < c.hi; wpos++ {
					if int64(wpos) >= errLimit.Load() || stop() {
						break
					}
					i := input(work[wpos])
					var o Outcome
					var cost runCost
					attempts := 1
					var quarErr string
					if opt.FailFast {
						var err error
						o, cost, err = runSite(sites[i].Site)
						runs.Add(1)
						if err != nil {
							fail(wpos, i, err)
							break
						}
					} else {
						var err error
						o, cost, attempts, err = g.run(runSite, sites[i].Site)
						runs.Add(int64(attempts))
						if attempts > 1 {
							retries.Add(int64(attempts - 1))
						}
						if err != nil {
							nquar.Add(1)
							quarErr = err.Error()
							quarMu.Lock()
							quarantined = append(quarantined, SiteFailure{
								Index: i, Site: sites[i].Site, Attempts: attempts, Err: quarErr,
							})
							quarMu.Unlock()
						}
					}
					ctasSkipped.Add(cost.ctasSkipped)
					if cost.earlyExit {
						earlyExits.Add(1)
					}
					if cost.intraResumed {
						intraSkips.Add(1)
					}
					if cost.fullRunFallback {
						fullRunFB.Add(1)
					}
					outcomes[i] = o
					done[i] = true
					if j := opt.Journal; j != nil {
						if jerr := j.Append(journalRecord(i, sites[i], o, cost, attempts, quarErr)); jerr != nil {
							fail(wpos, i, jerr)
							break
						}
					}
					if opt.Progress != nil {
						opt.Progress(int(progressed.Add(1)), len(sites))
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st.Runs = runs.Load()
	st.Wall = time.Since(start)
	if st.Wall > 0 {
		st.RunsPerSec = float64(st.Runs) / st.Wall.Seconds()
	}
	st.Retries = retries.Load()
	st.Quarantined = nquar.Load()
	st.CTAsSkipped = ctasSkipped.Load()
	st.EarlyExits = earlyExits.Load()
	st.IntraSkips = intraSkips.Load()
	st.FullRunFallbacks = fullRunFB.Load()
	if errLimit.Load() < int64(len(work)) {
		return nil, st, firstErr
	}
	completed := 0
	for i := range sites {
		if done[i] {
			completed++
		}
	}
	if interrupted.Load() {
		return nil, st, fmt.Errorf("%w: %d/%d sites completed", ErrInterrupted, completed, len(sites))
	}

	// Aggregation is always in input order — independent of scheduling,
	// sharding, and how the work was split between replay and execution —
	// so resumed and merged campaigns are bit-identical to uninterrupted
	// ones.
	res := &CampaignResult{Completed: completed}
	for i, ws := range sites {
		if done[i] {
			res.Dist.Add(outcomes[i], ws.Weight)
		}
	}
	sort.Slice(quarantined, func(a, b int) bool { return quarantined[a].Index < quarantined[b].Index })
	res.Quarantined = quarantined
	if opt.KeepPerSite {
		res.PerSite = outcomes
	}
	return res, st, nil
}
