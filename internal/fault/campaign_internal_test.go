package fault

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSites builds n weighted sites whose Thread field encodes the index, so
// a runSite stub can recover it.
func fakeSites(n int) []WeightedSite {
	sites := make([]WeightedSite, n)
	for i := range sites {
		sites[i] = WeightedSite{Site: Site{Thread: i}, Weight: 1}
	}
	return sites
}

// TestRunWithDeterministicLowestError: whichever worker hits an error first,
// runWith must report the error of the lowest-index failing site. The old
// engine reported whichever failing site a worker saw first, which varied
// with scheduling.
func TestRunWithDeterministicLowestError(t *testing.T) {
	const n = 400
	failAt := map[int]error{
		41:  errors.New("fail-41"),
		42:  errors.New("fail-42"),
		350: errors.New("fail-350"),
	}
	for _, par := range []int{1, 2, 4, 8} {
		for trial := 0; trial < 5; trial++ {
			_, _, err := runWith(fakeSites(n), nil, CampaignOptions{Parallelism: par, FailFast: true},
				func(s Site) (Outcome, runCost, error) {
					if e, ok := failAt[s.Thread]; ok {
						return 0, runCost{}, e
					}
					return Masked, runCost{}, nil
				})
			if err == nil {
				t.Fatalf("par %d: error swallowed", par)
			}
			if !errors.Is(err, failAt[41]) {
				t.Fatalf("par %d trial %d: got %v, want the site-41 error", par, trial, err)
			}
		}
	}
}

// TestRunWithErrorMessageNamesSite: the reported error wraps the failing
// site's identity.
func TestRunWithErrorMessageNamesSite(t *testing.T) {
	sentinel := errors.New("boom")
	sites := fakeSites(50)
	_, _, err := runWith(sites, nil, CampaignOptions{Parallelism: 2, FailFast: true},
		func(s Site) (Outcome, runCost, error) {
			if s.Thread == 17 {
				return 0, runCost{}, sentinel
			}
			return Masked, runCost{}, nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("sentinel lost: %v", err)
	}
	if want := fmt.Sprintf("site %v", sites[17].Site); !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name %q", err, want)
	}
}

// TestRunWithCancelsPromptly: after the first error, remaining sites must be
// skipped instead of drained. With the error near the front of a large
// campaign, the executed count must stay far below the total; the old engine
// let every already-queued site run to completion.
func TestRunWithCancelsPromptly(t *testing.T) {
	const n = 3000
	const failIdx = 5
	var executed atomic.Int64
	_, st, err := runWith(fakeSites(n), nil, CampaignOptions{Parallelism: 4, FailFast: true},
		func(s Site) (Outcome, runCost, error) {
			executed.Add(1)
			if s.Thread == failIdx {
				return 0, runCost{}, errors.New("early failure")
			}
			time.Sleep(20 * time.Microsecond)
			return Masked, runCost{}, nil
		})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if got := executed.Load(); got > n/2 {
		t.Fatalf("executed %d of %d sites after an early error", got, n)
	}
	if st.Runs != executed.Load() {
		t.Fatalf("stats counted %d runs, executed %d", st.Runs, executed.Load())
	}
}

// TestRunWithExecutesEverySiteBelowError: the determinism guarantee rests on
// every site below the final error index having been executed — verify the
// engine upholds it.
func TestRunWithExecutesEverySiteBelowError(t *testing.T) {
	const n = 500
	const failIdx = 321
	seen := make([]atomic.Bool, n)
	_, _, err := runWith(fakeSites(n), nil, CampaignOptions{Parallelism: 8, FailFast: true},
		func(s Site) (Outcome, runCost, error) {
			seen[s.Thread].Store(true)
			if s.Thread == failIdx {
				return 0, runCost{}, errors.New("late failure")
			}
			return Masked, runCost{}, nil
		})
	if err == nil {
		t.Fatal("error swallowed")
	}
	for i := 0; i < failIdx; i++ {
		if !seen[i].Load() {
			t.Fatalf("site %d below the failing index was never executed", i)
		}
	}
}

// TestRunWithStats: a clean run reports one executed run per site and a
// consistent rate.
func TestRunWithStats(t *testing.T) {
	const n = 64
	res, st, err := runWith(fakeSites(n), nil, CampaignOptions{Parallelism: 3},
		func(s Site) (Outcome, runCost, error) { return SDC, runCost{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != n {
		t.Fatalf("runs = %d, want %d", st.Runs, n)
	}
	if st.Wall <= 0 || st.RunsPerSec <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if res.Dist.Total() != n {
		t.Fatalf("dist total = %v", res.Dist.Total())
	}
}

// TestStatsSinkMerge: sinks accumulate counters across campaigns and keep
// the per-target checkpoint figures as a max.
func TestStatsSinkMerge(t *testing.T) {
	var sink StatsSink
	sink.Add(CampaignStats{Runs: 10, Wall: time.Second, PagesCopied: 4, DevicesCreated: 2,
		CTAsSkipped: 7, EarlyExits: 3, Checkpoints: 4, CheckpointBytes: 8192})
	sink.Add(CampaignStats{Runs: 30, Wall: time.Second, PagesCopied: 1, DevicesCreated: 5,
		CTAsSkipped: 1, EarlyExits: 1, Checkpoints: 2, CheckpointBytes: 4096})
	got := sink.Total()
	if got.Runs != 40 || got.Wall != 2*time.Second || got.PagesCopied != 5 || got.DevicesCreated != 7 {
		t.Fatalf("merged: %+v", got)
	}
	if got.CTAsSkipped != 8 || got.EarlyExits != 4 || got.Checkpoints != 4 || got.CheckpointBytes != 8192 {
		t.Fatalf("merged fast-forward stats: %+v", got)
	}
	if got.RunsPerSec != 20 {
		t.Fatalf("rate = %v, want 20", got.RunsPerSec)
	}
	if got.String() == "" {
		t.Fatal("empty stats string")
	}
}

// TestProgressHook: the Progress hook sees one call per completed site plus
// the initial replay snapshot, counts monotonically to the campaign total,
// and always reports the full campaign size as total.
func TestProgressHook(t *testing.T) {
	const n = 40
	var calls, last, bad atomic.Int64
	last.Store(-1)
	progress := func(completed, total int) {
		calls.Add(1)
		if total != n {
			bad.Store(1)
		}
		// Monotone non-decreasing: concurrent workers may race the counter
		// read back, but the value handed to each call is the post-increment
		// count, so tracking the max is enough.
		for {
			prev := last.Load()
			if int64(completed) <= prev || last.CompareAndSwap(prev, int64(completed)) {
				break
			}
		}
	}
	res, _, err := runWith(fakeSites(n), nil, CampaignOptions{Parallelism: 4, Progress: progress},
		func(s Site) (Outcome, runCost, error) { return Masked, runCost{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != n {
		t.Fatalf("completed %d, want %d", res.Completed, n)
	}
	if got := calls.Load(); got != n+1 { // n sites + the initial replay snapshot
		t.Fatalf("progress called %d times, want %d", got, n+1)
	}
	if last.Load() != n {
		t.Fatalf("final reported completion %d, want %d", last.Load(), n)
	}
	if bad.Load() != 0 {
		t.Fatal("progress reported a total different from the campaign size")
	}
}
