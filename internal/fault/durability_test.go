package fault_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/stats"
)

// durabilityCampaign is the shared fixture of the end-to-end durability
// tests: a tinyTarget campaign whose sampled sites produce masked, SDC and
// crash outcomes.
func durabilityCampaign(t *testing.T) (*fault.Target, []fault.WeightedSite) {
	t.Helper()
	tg := tinyTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(tg.Profile())
	return tg, fault.Uniform(space.Random(stats.NewRNG(21), 120))
}

func fingerprintFor(tg *fault.Target, n int, shard fault.Shard) journal.Fingerprint {
	return tg.JournalFingerprint(fault.ModelDestValue, n, "test", 21, shard)
}

// TestCampaignInterruptResume is the differential property the journal
// exists for: interrupt a campaign partway (then corrupt the torn tail, as a
// kill -9 mid-write would), resume it from the journal, and the final
// distribution and per-site outcomes must be bit-identical to a run that was
// never interrupted.
func TestCampaignInterruptResume(t *testing.T) {
	tg, sites := durabilityCampaign(t)

	ref, err := fault.Run(tg, sites, fault.CampaignOptions{Parallelism: 2, KeepPerSite: true})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "campaign.journal")
	j, err := journal.Open(path, fingerprintFor(tg, len(sites), fault.Shard{}))
	if err != nil {
		t.Fatal(err)
	}
	intr := make(chan struct{})
	go func() {
		for j.Count() < len(sites)/4 {
			time.Sleep(100 * time.Microsecond)
		}
		close(intr)
	}()
	_, err = fault.Run(tg, sites, fault.CampaignOptions{
		Parallelism: 2, Journal: j, Interrupt: intr,
	})
	if !errors.Is(err, fault.ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	if j.Count() >= len(sites) {
		t.Skip("campaign finished before the interrupt landed")
	}
	j.Close()

	// A kill -9 mid-append leaves a torn final frame; the reopen must shed
	// it and resume from the last complete record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := journal.Open(path, fingerprintFor(tg, len(sites), fault.Shard{}))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	partial := j2.Count()
	if partial == 0 || partial >= len(sites) {
		t.Fatalf("journal resumed with %d of %d records", partial, len(sites))
	}
	res, err := fault.Run(tg, sites, fault.CampaignOptions{
		Parallelism: 2, KeepPerSite: true, Journal: j2,
		Sink: &fault.StatsSink{},
	})
	if err != nil {
		t.Fatal(err)
	}

	if res.Dist != ref.Dist {
		t.Fatalf("resumed dist %v != uninterrupted %v", res.Dist, ref.Dist)
	}
	if res.Completed != len(sites) || res.Completed != ref.Completed {
		t.Fatalf("resumed completed %d, reference %d, want %d", res.Completed, ref.Completed, len(sites))
	}
	for i := range ref.PerSite {
		if res.PerSite[i] != ref.PerSite[i] {
			t.Fatalf("site %d: resumed %v, reference %v", i, res.PerSite[i], ref.PerSite[i])
		}
	}
	if j2.Count() != len(sites) {
		t.Fatalf("journal holds %d records after completion, want %d", j2.Count(), len(sites))
	}

	// Resuming a complete journal replays everything and runs nothing.
	j3, err := journal.Open(path, fingerprintFor(tg, len(sites), fault.Shard{}))
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	var sink fault.StatsSink
	res3, err := fault.Run(tg, sites, fault.CampaignOptions{Journal: j3, Sink: &sink})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Dist != ref.Dist {
		t.Fatalf("fully replayed dist %v != reference %v", res3.Dist, ref.Dist)
	}
	if st := sink.Total(); st.Runs != 0 || st.Replayed != int64(len(sites)) {
		t.Fatalf("full replay ran %d sites, replayed %d", st.Runs, st.Replayed)
	}
}

// TestCampaignShardMerge: two shard campaigns, journaled separately and
// merged with journal.Merge, reproduce the single-process distribution
// bit-for-bit.
func TestCampaignShardMerge(t *testing.T) {
	tg, sites := durabilityCampaign(t)

	ref, err := fault.Run(tg, sites, fault.CampaignOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	paths := make([]string, 2)
	completed := 0
	for idx := range paths {
		sh := fault.Shard{Index: idx, Count: 2}
		paths[idx] = filepath.Join(dir, "shard"+string(rune('0'+idx))+".journal")
		j, err := journal.Open(paths[idx], fingerprintFor(tg, len(sites), sh))
		if err != nil {
			t.Fatal(err)
		}
		res, err := fault.Run(tg, sites, fault.CampaignOptions{
			Parallelism: 2, Journal: j, Shard: sh,
		})
		if err != nil {
			t.Fatal(err)
		}
		completed += res.Completed
		if res.Completed != j.Count() {
			t.Fatalf("shard %d: completed %d but journaled %d", idx, res.Completed, j.Count())
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if completed != len(sites) {
		t.Fatalf("shards completed %d sites, want %d", completed, len(sites))
	}

	fp, recs, err := journal.Merge(paths, false)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Sites != len(sites) || len(recs) != len(sites) {
		t.Fatalf("merge: fp.Sites=%d records=%d, want %d", fp.Sites, len(recs), len(sites))
	}
	// Merge returns records sorted by site index, so aggregating in record
	// order reproduces the engine's input-order float summation exactly.
	var merged fault.Dist
	for i, r := range recs {
		if r.Index != i {
			t.Fatalf("record %d has index %d", i, r.Index)
		}
		o := fault.Outcome(r.Outcome)
		if !o.Valid() {
			t.Fatalf("record %d: invalid outcome %d", i, r.Outcome)
		}
		merged.Add(o, r.Weight)
	}
	if merged != ref.Dist {
		t.Fatalf("merged shard dist %v != single-process %v", merged, ref.Dist)
	}

	// Strict merge of one shard alone fails; allowPartial accepts it.
	if _, _, err := journal.Merge(paths[:1], false); err == nil {
		t.Fatal("strict merge accepted a missing shard")
	}
	if _, recs, err := journal.Merge(paths[:1], true); err != nil || len(recs) == 0 {
		t.Fatalf("partial merge: %v (%d records)", err, len(recs))
	}
}

// TestCampaignJournalRejectsStale: a journal recorded under a different
// engine configuration must be refused at open or at Run.
func TestCampaignJournalRejectsStale(t *testing.T) {
	tg, sites := durabilityCampaign(t)
	path := filepath.Join(t.TempDir(), "campaign.journal")
	j, err := journal.Open(path, fingerprintFor(tg, len(sites), fault.Shard{}))
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Different seed -> different site derivation -> stale at open.
	stale := fingerprintFor(tg, len(sites), fault.Shard{})
	stale.Seed = 99
	if _, err := journal.Open(path, stale); !errors.Is(err, journal.ErrFingerprintMismatch) {
		t.Fatalf("stale fingerprint accepted: %v", err)
	}

	// Same open fingerprint but a mismatched campaign shape at Run time:
	// attach the 120-site journal to a truncated site list.
	j2, err := journal.Open(path, fingerprintFor(tg, len(sites), fault.Shard{}))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if _, err := fault.Run(tg, sites[:10], fault.CampaignOptions{Journal: j2}); err == nil {
		t.Fatal("journal accepted for a campaign with a different site count")
	}

	// A journal recorded under a different intra-CTA stride measured its
	// outcomes in the same experiment (the resume layer is bit-identical),
	// but the engine still refuses it: mixed-stride resumption would make
	// performance counters and provenance unattributable.
	intraPath := filepath.Join(t.TempDir(), "intra.journal")
	ifp := fingerprintFor(tg, len(sites), fault.Shard{})
	ifp.IntraStride = 7
	ji, err := journal.Open(intraPath, ifp)
	if err != nil {
		t.Fatal(err)
	}
	defer ji.Close()
	if _, err := fault.Run(tg, sites, fault.CampaignOptions{Journal: ji}); err == nil {
		t.Fatal("journal with a different intra-stride accepted")
	}

	// A shard journal cannot drive an unsharded campaign.
	shardPath := filepath.Join(t.TempDir(), "shard.journal")
	js, err := journal.Open(shardPath, fingerprintFor(tg, len(sites), fault.Shard{Index: 1, Count: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer js.Close()
	if _, err := fault.Run(tg, sites, fault.CampaignOptions{Journal: js}); err == nil {
		t.Fatal("shard journal accepted for an unsharded campaign")
	}
}

// TestCampaignHangSiteJournaled: a campaign over a kernel with a
// deadlocking site journals and resumes like any other — the hang outcome
// round-trips through the record.
func TestCampaignHangSiteJournaled(t *testing.T) {
	tg := hangTarget(t)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	sites := []fault.WeightedSite{
		{Site: fault.Site{Thread: 0, DynInst: 0, Bit: 5}, Weight: 1},
		{Site: hangSite, Weight: 1},
		{Site: fault.Site{Thread: 7, DynInst: 0, Bit: 1}, Weight: 1},
	}
	ref, err := fault.Run(tg, sites, fault.CampaignOptions{KeepPerSite: true})
	if err != nil {
		t.Fatal(err)
	}
	if ref.PerSite[1] != fault.Hang {
		t.Fatalf("hang site classified %v", ref.PerSite[1])
	}

	path := filepath.Join(t.TempDir(), "hang.journal")
	fp := tg.JournalFingerprint(fault.ModelDestValue, len(sites), "test", 0, fault.Shard{})
	j, err := journal.Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fault.Run(tg, sites, fault.CampaignOptions{Journal: j}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := journal.Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var sink fault.StatsSink
	res, err := fault.Run(tg, sites, fault.CampaignOptions{Journal: j2, KeepPerSite: true, Sink: &sink})
	if err != nil {
		t.Fatal(err)
	}
	if st := sink.Total(); st.Runs != 0 {
		t.Fatalf("resume re-ran %d sites of a complete journal", st.Runs)
	}
	if res.PerSite[1] != fault.Hang || res.Dist != ref.Dist {
		t.Fatalf("hang outcome lost in replay: %v vs %v", res.Dist, ref.Dist)
	}
}
