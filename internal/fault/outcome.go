// Package fault implements the paper's fault-injection methodology on top of
// the gpusim substrate: single-bit destination-register fault sites (Eq. 1),
// outcome classification into masked / SDC / other (Section II-B), the
// exhaustive fault-site space with uniform random sampling (the 60K-run
// baseline), and a parallel campaign runner.
//
// The central types: Target is one kernel launch prepared for injection
// (Prepare performs the golden run, builds the per-thread profile and the
// checkpoint store; a PreparedCache shares that work across targets with
// equal keys); Site names one fault (thread, dynamic instruction, bit); Run
// executes a weighted-site campaign on pooled copy-on-write devices with
// checkpointed fast-forward, snapshot-affine scheduling, per-site failure
// isolation (retry, deadline, quarantine into EngineError), and optional
// durability through a write-ahead journal with deterministic sharding. A
// campaign's execution is summarized by CampaignStats; its aggregate
// outcome by Dist, the paper's resilience profile.
package fault

import "fmt"

// Outcome classifies the effect of one injected fault.
type Outcome uint8

// Outcomes. Crash and Hang both belong to the paper's "other" class but are
// tracked separately because the simulator can tell them apart. EngineError
// is not a paper outcome at all: it marks a site the engine itself failed
// on (panic, internal error, or per-site deadline) and quarantined after
// retries, so a long campaign degrades gracefully instead of aborting.
const (
	Masked      Outcome = iota // output identical to golden
	SDC                        // run completed, output differs
	Crash                      // memory fault / invalid execution
	Hang                       // watchdog expired or barrier deadlock
	EngineError                // site quarantined after repeated engine failures
	numOutcomes
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case SDC:
		return "sdc"
	case Crash:
		return "crash"
	case Hang:
		return "hang"
	case EngineError:
		return "engine-error"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Valid reports whether o is a defined outcome — the bounds check for
// outcomes deserialized from a journal.
func (o Outcome) Valid() bool { return o < numOutcomes }

// Class is the paper's three-way outcome classification.
type Class uint8

// Classes per Section II-B of the paper.
const (
	ClassMasked Class = iota
	ClassSDC
	ClassOther
	NumClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassMasked:
		return "masked"
	case ClassSDC:
		return "sdc"
	case ClassOther:
		return "other"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Class maps an outcome to its paper class.
func (o Outcome) Class() Class {
	switch o {
	case Masked:
		return ClassMasked
	case SDC:
		return ClassSDC
	default:
		return ClassOther
	}
}

// Dist is a (possibly weighted) distribution of fault-injection outcomes —
// the paper's "error resilience profile". Weights support the pruning
// stages, where one representative site stands for a population of pruned
// sites.
type Dist struct {
	W [numOutcomes]float64
	// N is the number of actual injection experiments aggregated (unweighted).
	N int64
}

// Add records one experiment with the given weight.
func (d *Dist) Add(o Outcome, weight float64) {
	d.W[o] += weight
	d.N++
}

// Merge accumulates another distribution.
func (d *Dist) Merge(o Dist) {
	for i := range d.W {
		d.W[i] += o.W[i]
	}
	d.N += o.N
}

// Total is the summed weight.
func (d Dist) Total() float64 {
	var t float64
	for _, w := range d.W {
		t += w
	}
	return t
}

// Pct returns the percentage (0-100) of weight in a class.
func (d Dist) Pct(c Class) float64 {
	t := d.Total()
	if t == 0 {
		return 0
	}
	var w float64
	for o := Outcome(0); o < numOutcomes; o++ {
		if o.Class() == c {
			w += d.W[o]
		}
	}
	return 100 * w / t
}

// PctOutcome returns the percentage (0-100) of weight in a single outcome.
func (d Dist) PctOutcome(o Outcome) float64 {
	t := d.Total()
	if t == 0 {
		return 0
	}
	return 100 * d.W[o] / t
}

// MaxClassDelta is the largest absolute percentage-point difference between
// two profiles across the three paper classes — the accuracy metric of the
// evaluation (Fig. 9 compares pruned vs. baseline per class).
func (d Dist) MaxClassDelta(o Dist) float64 {
	var m float64
	for c := Class(0); c < NumClasses; c++ {
		delta := d.Pct(c) - o.Pct(c)
		if delta < 0 {
			delta = -delta
		}
		if delta > m {
			m = delta
		}
	}
	return m
}

// String formats the profile as "masked 52.1% sdc 30.0% other 17.9% (n=...)".
func (d Dist) String() string {
	return fmt.Sprintf("masked %.1f%% sdc %.1f%% other %.1f%% (n=%d)",
		d.Pct(ClassMasked), d.Pct(ClassSDC), d.Pct(ClassOther), d.N)
}
