package fault

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/gpusim"
	"repro/internal/isa"
	"repro/internal/stats"
)

// Model selects the fault model for an injection experiment. The paper's
// methodology uses ModelDestValue (single bit flip in the destination
// register, Section II-C); the extended models reproduce the additional
// SASSIFI-style modes discussed in the paper's related work and are used by
// the model-comparison experiment.
type Model uint8

// Fault models.
const (
	// ModelDestValue is the paper's baseline single-bit flip.
	ModelDestValue Model = iota
	// ModelDestDouble flips two adjacent destination bits — the
	// double-bit error a SEC-DED code detects but cannot correct.
	ModelDestDouble
	// ModelMemAddr flips one bit of the effective address computed by a
	// memory instruction (an LSU address-path fault).
	ModelMemAddr
	// ModelDestByte flips the whole destination byte containing the site
	// bit — the spatially contiguous multi-bit pattern of the SDC-anatomy
	// literature.
	ModelDestByte
	// ModelLaneCorrelated flips the site bit of the destination register in
	// every thread of the injected thread's lane group — the same-bit-
	// across-lanes pattern of a datapath fault shared by a SIMT lane group.
	ModelLaneCorrelated
	// ModelStuckPred holds one predicate-register flag bit of the injected
	// thread at a stuck value from the site's dynamic instruction to the
	// end of the run. Site.Bit packs (stuck value, predicate register,
	// flag bit); see StuckBits.
	ModelStuckPred
	// ModelStuckActiveMask holds the injected thread's active-mask lane at
	// the stuck value Site.Bit&1: stuck at 0 freezes the lane, stuck at 1
	// keeps it active through barriers.
	ModelStuckActiveMask
	// ModelStuckBarrier holds the injected thread's barrier-arrival state
	// at the stuck value Site.Bit&1: stuck at 1 releases barriers without
	// it, stuck at 0 deadlocks any barrier that includes it.
	ModelStuckBarrier
	NumModels
)

// String names the model. The names are the CLI -model vocabulary and the
// journal fingerprint's model field.
func (m Model) String() string {
	switch m {
	case ModelDestDouble:
		return "dest-double"
	case ModelMemAddr:
		return "mem-addr"
	case ModelDestByte:
		return "dest-byte"
	case ModelLaneCorrelated:
		return "lane-correlated"
	case ModelStuckPred:
		return "stuck-pred"
	case ModelStuckActiveMask:
		return "stuck-active-mask"
	case ModelStuckBarrier:
		return "stuck-barrier"
	}
	return "dest-value"
}

// ModelNames lists every model name, comma-separated — for usage errors.
func ModelNames() string {
	var b strings.Builder
	for m := Model(0); m < NumModels; m++ {
		if m > 0 {
			b.WriteString(", ")
		}
		b.WriteString(m.String())
	}
	return b.String()
}

// ParseModel maps a CLI/JSON model name back to the Model constant.
func ParseModel(s string) (Model, error) {
	for m := Model(0); m < NumModels; m++ {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown fault model %q (known: %s)", s, ModelNames())
}

// Persistent reports whether the model is a stuck-at fault that persists
// from its activation site to the end of the run.
func (m Model) Persistent() bool {
	switch m {
	case ModelStuckPred, ModelStuckActiveMask, ModelStuckBarrier:
		return true
	}
	return false
}

// FastForwardSound reports whether sites of this model may run on the
// checkpointed fast-forward engine. Every built-in model is sound:
// transient models and ModelStuckPred by the arguments of DESIGN.md
// §3.2/§3.5/§3.9 (the fault state is confined to the injected thread's
// private registers), and the scheduler-corrupting ModelStuckActiveMask /
// ModelStuckBarrier by the scheduler-complete snapshot argument of §3.11 —
// snapshots capture the full scheduler and barrier ledger (CTA boundaries
// carry none by construction; warp snapshots store every thread's parked
// flag, barrier id, and retirement count), gpusim.Execute rejects a resume
// past the fault's activation point, and the convergence early exit is
// gated on fault retirement. A model returning false degrades its sites to
// per-site full runs (CampaignStats.FullRunFallbacks) instead of risking a
// silently unsound fast-forward; the hook remains for future models whose
// fault state outlives the injected thread (e.g. SM-level stuck-ats).
func (m Model) FastForwardSound() bool {
	return true
}

// StuckBits is the size of a persistent model's Site.Bit encoding space (0
// for transient models): stuck value × location. ModelStuckPred enumerates
// both stuck values of every flag bit of every predicate register; the
// mask and barrier models only their two stuck values.
func (m Model) StuckBits() int {
	switch m {
	case ModelStuckPred:
		return 2 * isa.NumPreds * isa.PredBits
	case ModelStuckActiveMask, ModelStuckBarrier:
		return 2
	}
	return 0
}

// kind maps the model to the simulator's injection kind.
func (m Model) kind() gpusim.InjectKind {
	switch m {
	case ModelDestDouble:
		return gpusim.InjectDestDouble
	case ModelMemAddr:
		return gpusim.InjectMemAddr
	case ModelDestByte:
		return gpusim.InjectDestByte
	case ModelLaneCorrelated:
		return gpusim.InjectLaneCorrelated
	case ModelStuckPred:
		return gpusim.InjectStuckPred
	case ModelStuckActiveMask:
		return gpusim.InjectStuckActiveMask
	case ModelStuckBarrier:
		return gpusim.InjectStuckBarrier
	}
	return gpusim.InjectDestValue
}

// ErrNotAMemSite reports a ModelMemAddr injection at a dynamic instruction
// that computes no memory address.
var ErrNotAMemSite = errors.New("fault: dynamic instruction has no memory operand")

// touchesMemory reports whether an instruction computes an effective
// address (any memory operand, source or destination).
func touchesMemory(in *isa.Instruction) bool {
	if in.Dst.Kind == isa.OpdMem {
		return true
	}
	for _, s := range in.Srcs {
		if s.Kind == isa.OpdMem {
			return true
		}
	}
	return false
}

// validateSiteModel checks a site against the requirements of the model.
func (t *Target) validateSiteModel(site Site, model Model) error {
	if model == ModelDestValue {
		return t.validateSite(site)
	}
	if t.profile == nil {
		return errors.New("fault: RunSiteModel before Prepare")
	}
	if site.Thread < 0 || site.Thread >= len(t.profile.Threads) {
		return fmt.Errorf("fault: thread %d out of range", site.Thread)
	}
	tp := &t.profile.Threads[site.Thread]
	if site.DynInst < 0 || site.DynInst >= tp.ICnt {
		return fmt.Errorf("fault: dyn inst %d out of range for thread %d", site.DynInst, site.Thread)
	}
	switch model {
	case ModelDestDouble, ModelDestByte, ModelLaneCorrelated:
		bits := t.profile.SiteBitsOf(site.Thread, site.DynInst)
		if bits == 0 {
			return ErrNotASite
		}
		if site.Bit < 0 || site.Bit >= bits {
			return fmt.Errorf("fault: bit %d out of range (%d-bit destination)", site.Bit, bits)
		}
	case ModelMemAddr:
		pc := t.StaticPCAt(site.Thread, site.DynInst)
		if !touchesMemory(&t.Prog.Instrs[pc]) {
			return ErrNotAMemSite
		}
		if site.Bit < 0 || site.Bit >= 32 {
			return fmt.Errorf("fault: address bit %d out of range", site.Bit)
		}
	case ModelStuckPred, ModelStuckActiveMask, ModelStuckBarrier:
		// Persistent sites need no destination: any retired dynamic
		// instruction is a valid activation point. Bit encodes the stuck
		// location/value per StuckBits.
		if site.Bit < 0 || site.Bit >= model.StuckBits() {
			return fmt.Errorf("fault: stuck-at encoding %d out of range (%d encodings for %s)",
				site.Bit, model.StuckBits(), model)
		}
	default:
		return fmt.Errorf("fault: unknown model %d", model)
	}
	return nil
}

// RunSiteModel executes one fault-injection experiment under the given
// fault model on a fresh clone of the pristine device. ModelDestValue
// behaves exactly like RunSite.
func (t *Target) RunSiteModel(site Site, model Model) (Outcome, error) {
	if err := t.validateSiteModel(site, model); err != nil {
		return 0, err
	}
	return t.runSiteModelOn(t.Init.Clone(), site, model)
}

// RunSiteModelOn is RunSiteModel on a caller-provided pristine device (see
// RunSiteOn for the contract).
func (t *Target) RunSiteModelOn(dev *gpusim.Device, site Site, model Model) (Outcome, error) {
	if err := t.validateSiteModel(site, model); err != nil {
		return 0, err
	}
	return t.runSiteModelOn(dev, site, model)
}

func (t *Target) runSiteModelOn(dev *gpusim.Device, site Site, model Model) (Outcome, error) {
	inj := &gpusim.Injection{
		Thread: site.Thread, DynInst: site.DynInst, Bit: site.Bit,
		Kind: model.kind(),
	}
	res, err := gpusim.Execute(dev, t.launch(inj, nil, t.watchdog))
	if err != nil {
		return 0, err
	}
	return t.classify(dev, res), nil
}

// MemAddrSites enumerates ModelMemAddr fault sites for one thread: one site
// per address bit per dynamic memory instruction, optionally filtered.
func (s *Space) MemAddrSites(t int, keep func(dyn int64) bool) []Site {
	tp := &s.prof.Threads[t]
	var sites []Site
	for i := int64(0); i < tp.ICnt; i++ {
		pc := gpusim.PC(tp.PCs[i])
		if !touchesMemory(&s.prof.Prog.Instrs[pc]) {
			continue
		}
		if keep != nil && !keep(i) {
			continue
		}
		for b := 0; b < 32; b++ {
			sites = append(sites, Site{Thread: t, DynInst: i, Bit: b})
		}
	}
	return sites
}

// StuckSites enumerates the persistent fault sites of one thread: every
// stuck-at encoding at every retired dynamic instruction (the activation
// point), optionally filtered by keep.
func (s *Space) StuckSites(t int, model Model, keep func(dyn int64) bool) []Site {
	w := model.StuckBits()
	if w == 0 {
		panic(fmt.Sprintf("fault: StuckSites on transient model %s", model))
	}
	tp := &s.prof.Threads[t]
	sites := make([]Site, 0, tp.ICnt*int64(w))
	for i := int64(0); i < tp.ICnt; i++ {
		if keep != nil && !keep(i) {
			continue
		}
		for b := 0; b < w; b++ {
			sites = append(sites, Site{Thread: t, DynInst: i, Bit: b})
		}
	}
	return sites
}

// RandomModel draws n sites uniformly at random from the model's own site
// space. Destination-register models share the dest-value space; mem-addr
// draws over (memory instruction × address bit); persistent models over
// (retired dynamic instruction × stuck-at encoding).
func (s *Space) RandomModel(rng *stats.RNG, n int, model Model) []Site {
	switch {
	case model.Persistent():
		w := int64(model.StuckBits())
		cum := make([]int64, len(s.prof.Threads)+1)
		for t := range s.prof.Threads {
			cum[t+1] = cum[t] + s.prof.Threads[t].ICnt*w
		}
		total := cum[len(cum)-1]
		sites := make([]Site, n)
		for i := range sites {
			idx := rng.Int63n(total)
			t := sort.Search(len(cum)-1, func(j int) bool { return cum[j+1] > idx })
			rem := idx - cum[t]
			sites[i] = Site{Thread: t, DynInst: rem / w, Bit: int(rem % w)}
		}
		return sites
	case model == ModelMemAddr:
		cum := make([]int64, len(s.prof.Threads)+1)
		for t := range s.prof.Threads {
			tp := &s.prof.Threads[t]
			var mem int64
			for i := int64(0); i < tp.ICnt; i++ {
				if touchesMemory(&s.prof.Prog.Instrs[gpusim.PC(tp.PCs[i])]) {
					mem++
				}
			}
			cum[t+1] = cum[t] + mem*32
		}
		total := cum[len(cum)-1]
		if total == 0 {
			panic("fault: RandomModel(mem-addr) on a kernel with no memory instructions")
		}
		sites := make([]Site, n)
		for i := range sites {
			idx := rng.Int63n(total)
			t := sort.Search(len(cum)-1, func(j int) bool { return cum[j+1] > idx })
			rem := idx - cum[t]
			k, bit := rem/32, int(rem%32)
			tp := &s.prof.Threads[t]
			for d := int64(0); d < tp.ICnt; d++ {
				if !touchesMemory(&s.prof.Prog.Instrs[gpusim.PC(tp.PCs[d])]) {
					continue
				}
				if k == 0 {
					sites[i] = Site{Thread: t, DynInst: d, Bit: bit}
					break
				}
				k--
			}
		}
		return sites
	default:
		// Destination-register models index the same per-destination-bit
		// space as the baseline.
		return s.Random(rng, n)
	}
}

// RunModel executes a campaign of weighted sites under one fault model,
// sharing Run's pooled parallel fast-forward engine.
func RunModel(t *Target, sites []WeightedSite, model Model, opt CampaignOptions) (*CampaignResult, error) {
	return t.runCampaign(sites, opt, model)
}
