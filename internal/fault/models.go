package fault

import (
	"errors"
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/isa"
)

// Model selects the fault model for an injection experiment. The paper's
// methodology uses ModelDestValue (single bit flip in the destination
// register, Section II-C); the extended models reproduce the additional
// SASSIFI-style modes discussed in the paper's related work and are used by
// the model-comparison experiment.
type Model uint8

// Fault models.
const (
	// ModelDestValue is the paper's baseline single-bit flip.
	ModelDestValue Model = iota
	// ModelDestDouble flips two adjacent destination bits — the
	// double-bit error a SEC-DED code detects but cannot correct.
	ModelDestDouble
	// ModelMemAddr flips one bit of the effective address computed by a
	// memory instruction (an LSU address-path fault).
	ModelMemAddr
	NumModels
)

// String names the model.
func (m Model) String() string {
	switch m {
	case ModelDestDouble:
		return "dest-double"
	case ModelMemAddr:
		return "mem-addr"
	}
	return "dest-value"
}

// kind maps the model to the simulator's injection kind.
func (m Model) kind() gpusim.InjectKind {
	switch m {
	case ModelDestDouble:
		return gpusim.InjectDestDouble
	case ModelMemAddr:
		return gpusim.InjectMemAddr
	}
	return gpusim.InjectDestValue
}

// ErrNotAMemSite reports a ModelMemAddr injection at a dynamic instruction
// that computes no memory address.
var ErrNotAMemSite = errors.New("fault: dynamic instruction has no memory operand")

// touchesMemory reports whether an instruction computes an effective
// address (any memory operand, source or destination).
func touchesMemory(in *isa.Instruction) bool {
	if in.Dst.Kind == isa.OpdMem {
		return true
	}
	for _, s := range in.Srcs {
		if s.Kind == isa.OpdMem {
			return true
		}
	}
	return false
}

// validateSiteModel checks a site against the requirements of the model.
func (t *Target) validateSiteModel(site Site, model Model) error {
	if model == ModelDestValue {
		return t.validateSite(site)
	}
	if t.profile == nil {
		return errors.New("fault: RunSiteModel before Prepare")
	}
	if site.Thread < 0 || site.Thread >= len(t.profile.Threads) {
		return fmt.Errorf("fault: thread %d out of range", site.Thread)
	}
	tp := &t.profile.Threads[site.Thread]
	if site.DynInst < 0 || site.DynInst >= tp.ICnt {
		return fmt.Errorf("fault: dyn inst %d out of range for thread %d", site.DynInst, site.Thread)
	}
	switch model {
	case ModelDestDouble:
		bits := t.profile.SiteBitsOf(site.Thread, site.DynInst)
		if bits == 0 {
			return ErrNotASite
		}
		if site.Bit < 0 || site.Bit >= bits {
			return fmt.Errorf("fault: bit %d out of range (%d-bit destination)", site.Bit, bits)
		}
	case ModelMemAddr:
		pc := t.StaticPCAt(site.Thread, site.DynInst)
		if !touchesMemory(&t.Prog.Instrs[pc]) {
			return ErrNotAMemSite
		}
		if site.Bit < 0 || site.Bit >= 32 {
			return fmt.Errorf("fault: address bit %d out of range", site.Bit)
		}
	default:
		return fmt.Errorf("fault: unknown model %d", model)
	}
	return nil
}

// RunSiteModel executes one fault-injection experiment under the given
// fault model on a fresh clone of the pristine device. ModelDestValue
// behaves exactly like RunSite.
func (t *Target) RunSiteModel(site Site, model Model) (Outcome, error) {
	if err := t.validateSiteModel(site, model); err != nil {
		return 0, err
	}
	return t.runSiteModelOn(t.Init.Clone(), site, model)
}

// RunSiteModelOn is RunSiteModel on a caller-provided pristine device (see
// RunSiteOn for the contract).
func (t *Target) RunSiteModelOn(dev *gpusim.Device, site Site, model Model) (Outcome, error) {
	if err := t.validateSiteModel(site, model); err != nil {
		return 0, err
	}
	return t.runSiteModelOn(dev, site, model)
}

func (t *Target) runSiteModelOn(dev *gpusim.Device, site Site, model Model) (Outcome, error) {
	inj := &gpusim.Injection{
		Thread: site.Thread, DynInst: site.DynInst, Bit: site.Bit,
		Kind: model.kind(),
	}
	res, err := gpusim.Execute(dev, t.launch(inj, nil, t.watchdog))
	if err != nil {
		return 0, err
	}
	return t.classify(dev, res), nil
}

// MemAddrSites enumerates ModelMemAddr fault sites for one thread: one site
// per address bit per dynamic memory instruction, optionally filtered.
func (s *Space) MemAddrSites(t int, keep func(dyn int64) bool) []Site {
	tp := &s.prof.Threads[t]
	var sites []Site
	for i := int64(0); i < tp.ICnt; i++ {
		pc := gpusim.PC(tp.PCs[i])
		if !touchesMemory(&s.prof.Prog.Instrs[pc]) {
			continue
		}
		if keep != nil && !keep(i) {
			continue
		}
		for b := 0; b < 32; b++ {
			sites = append(sites, Site{Thread: t, DynInst: i, Bit: b})
		}
	}
	return sites
}

// RunModel executes a campaign of weighted sites under one fault model,
// sharing Run's pooled parallel fast-forward engine.
func RunModel(t *Target, sites []WeightedSite, model Model, opt CampaignOptions) (*CampaignResult, error) {
	return t.runCampaign(sites, opt, model)
}
