package fault

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/isa"
)

// Model selects the fault model for an injection experiment. The paper's
// methodology uses ModelDestValue (single bit flip in the destination
// register, Section II-C); the extended models reproduce the additional
// SASSIFI-style modes discussed in the paper's related work and are used by
// the model-comparison experiment.
type Model uint8

// Fault models.
const (
	// ModelDestValue is the paper's baseline single-bit flip.
	ModelDestValue Model = iota
	// ModelDestDouble flips two adjacent destination bits — the
	// double-bit error a SEC-DED code detects but cannot correct.
	ModelDestDouble
	// ModelMemAddr flips one bit of the effective address computed by a
	// memory instruction (an LSU address-path fault).
	ModelMemAddr
	NumModels
)

// String names the model.
func (m Model) String() string {
	switch m {
	case ModelDestDouble:
		return "dest-double"
	case ModelMemAddr:
		return "mem-addr"
	}
	return "dest-value"
}

// kind maps the model to the simulator's injection kind.
func (m Model) kind() gpusim.InjectKind {
	switch m {
	case ModelDestDouble:
		return gpusim.InjectDestDouble
	case ModelMemAddr:
		return gpusim.InjectMemAddr
	}
	return gpusim.InjectDestValue
}

// ErrNotAMemSite reports a ModelMemAddr injection at a dynamic instruction
// that computes no memory address.
var ErrNotAMemSite = errors.New("fault: dynamic instruction has no memory operand")

// touchesMemory reports whether an instruction computes an effective
// address (any memory operand, source or destination).
func touchesMemory(in *isa.Instruction) bool {
	if in.Dst.Kind == isa.OpdMem {
		return true
	}
	for _, s := range in.Srcs {
		if s.Kind == isa.OpdMem {
			return true
		}
	}
	return false
}

// RunSiteModel executes one fault-injection experiment under the given
// fault model. ModelDestValue behaves exactly like RunSite.
func (t *Target) RunSiteModel(site Site, model Model) (Outcome, error) {
	if model == ModelDestValue {
		return t.RunSite(site)
	}
	if t.profile == nil {
		return 0, errors.New("fault: RunSiteModel before Prepare")
	}
	if site.Thread < 0 || site.Thread >= len(t.profile.Threads) {
		return 0, fmt.Errorf("fault: thread %d out of range", site.Thread)
	}
	tp := &t.profile.Threads[site.Thread]
	if site.DynInst < 0 || site.DynInst >= tp.ICnt {
		return 0, fmt.Errorf("fault: dyn inst %d out of range for thread %d", site.DynInst, site.Thread)
	}
	switch model {
	case ModelDestDouble:
		bits := t.profile.SiteBitsOf(site.Thread, site.DynInst)
		if bits == 0 {
			return 0, ErrNotASite
		}
		if site.Bit < 0 || site.Bit >= bits {
			return 0, fmt.Errorf("fault: bit %d out of range (%d-bit destination)", site.Bit, bits)
		}
	case ModelMemAddr:
		pc := t.StaticPCAt(site.Thread, site.DynInst)
		if !touchesMemory(&t.Prog.Instrs[pc]) {
			return 0, ErrNotAMemSite
		}
		if site.Bit < 0 || site.Bit >= 32 {
			return 0, fmt.Errorf("fault: address bit %d out of range", site.Bit)
		}
	default:
		return 0, fmt.Errorf("fault: unknown model %d", model)
	}

	dev := t.Init.Clone()
	inj := &gpusim.Injection{
		Thread: site.Thread, DynInst: site.DynInst, Bit: site.Bit,
		Kind: model.kind(),
	}
	res, err := gpusim.Execute(dev, t.launch(inj, nil, t.watchdog))
	if err != nil {
		return 0, err
	}
	if res.Trap != nil {
		if res.Trap.Kind == gpusim.TrapWatchdog || res.Trap.Kind == gpusim.TrapDeadlock {
			return Hang, nil
		}
		return Crash, nil
	}
	if bytes.Equal(t.extractOutput(dev), t.golden) {
		return Masked, nil
	}
	return SDC, nil
}

// MemAddrSites enumerates ModelMemAddr fault sites for one thread: one site
// per address bit per dynamic memory instruction, optionally filtered.
func (s *Space) MemAddrSites(t int, keep func(dyn int64) bool) []Site {
	tp := &s.prof.Threads[t]
	var sites []Site
	for i := int64(0); i < tp.ICnt; i++ {
		pc := gpusim.PC(tp.PCs[i])
		if !touchesMemory(&s.prof.Prog.Instrs[pc]) {
			continue
		}
		if keep != nil && !keep(i) {
			continue
		}
		for b := 0; b < 32; b++ {
			sites = append(sites, Site{Thread: t, DynInst: i, Bit: b})
		}
	}
	return sites
}

// RunModel executes a campaign of weighted sites under one fault model,
// sharing Run's parallel engine.
func RunModel(t *Target, sites []WeightedSite, model Model, opt CampaignOptions) (*CampaignResult, error) {
	return runWith(sites, opt, func(s Site) (Outcome, error) {
		return t.RunSiteModel(s, model)
	})
}
