package fault_test

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/report"
	"repro/internal/stats"
)

// buildGEMM builds a fresh GEMM K1 instance (deterministic: equal-keyed
// across calls) with the given prepared-target cache attached.
func buildGEMM(t *testing.T, cache *fault.PreparedCache) *fault.Target {
	t.Helper()
	spec, ok := kernels.ByName("GEMM K1")
	if !ok {
		t.Skip("GEMM K1 not in registry")
	}
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	inst.Target.Cache = cache
	return inst.Target
}

// TestPreparedCacheConcurrent: N goroutines Prepare equal-keyed targets
// against one cache; exactly one golden run happens (one miss), everyone
// else hits the finished entry or blocks on the in-flight one, and all
// targets share the same immutable artifacts. Run under -race this also
// exercises the singleflight synchronization.
func TestPreparedCacheConcurrent(t *testing.T) {
	const n = 8
	cache := fault.NewPreparedCache(0)
	targets := make([]*fault.Target, n)
	for i := range targets {
		targets[i] = buildGEMM(t, cache)
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = targets[i].Prepare()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}

	st := cache.Stats()
	if st.Misses != 1 {
		t.Fatalf("%d golden runs observed, want exactly 1 (stats %+v)", st.Misses, st)
	}
	if st.Hits+st.Shared != n-1 {
		t.Fatalf("hits %d + shared %d != %d (stats %+v)", st.Hits, st.Shared, n-1, st)
	}
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("residency: %+v", st)
	}
	for i := 1; i < n; i++ {
		if targets[i].Profile() != targets[0].Profile() {
			t.Fatalf("target %d holds a private profile; artifacts were not shared", i)
		}
		if targets[i].Checkpoints() != targets[0].Checkpoints() {
			t.Fatalf("target %d holds a private checkpoint store", i)
		}
		if !bytes.Equal(targets[i].Golden(), targets[0].Golden()) {
			t.Fatalf("target %d golden output differs", i)
		}
	}
}

// TestPreparedCacheEviction: a byte bound of 1 forces every insertion to
// evict the previous entry (the newest is always admitted), and an evicted
// key re-Prepares from scratch with correct campaign results.
func TestPreparedCacheEviction(t *testing.T) {
	cache := fault.NewPreparedCache(1)

	tgA := buildGEMM(t, cache)
	if err := tgA.Prepare(); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Entries != 1 || st.Misses != 1 {
		t.Fatalf("after A: %+v", st)
	}

	// A different checkpoint stride is a different key.
	tgB := buildGEMM(t, cache)
	tgB.CheckpointStride = 2
	if err := tgB.Prepare(); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Entries != 1 {
		t.Fatalf("byte bound not respected: %d entries resident (%+v)", st.Entries, st)
	}
	if st.Evictions != 1 || st.Misses != 2 {
		t.Fatalf("after B: %+v", st)
	}

	// A's key was evicted: a fresh equal-keyed target must re-Prepare (a
	// miss, not a hit) and produce correct results.
	tgA2 := buildGEMM(t, cache)
	if err := tgA2.Prepare(); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("evicted entry not re-prepared: %+v", st)
	}

	cold := buildGEMM(t, nil)
	if err := cold.Prepare(); err != nil {
		t.Fatal(err)
	}
	sites := fault.Uniform(fault.NewSpace(cold.Profile()).Random(stats.NewRNG(3), 64))
	want, err := fault.Run(cold, sites, fault.CampaignOptions{KeepPerSite: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := fault.Run(tgA2, sites, fault.CampaignOptions{KeepPerSite: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist != want.Dist {
		t.Fatalf("re-prepared campaign dist %v, cold %v", got.Dist, want.Dist)
	}
	for i := range want.PerSite {
		if got.PerSite[i] != want.PerSite[i] {
			t.Fatalf("site %v: re-prepared %v, cold %v", sites[i].Site, got.PerSite[i], want.PerSite[i])
		}
	}
}

// TestCachedCampaignBitIdentical: campaigns on a cache-adopted target are
// bit-identical to uncached ones — Dist, PerSite, and the serialized report
// JSON — on a kernel whose exhaustive site space reaches all four outcomes
// including barrier-deadlock hangs and address crashes (chainHangTarget).
func TestCachedCampaignBitIdentical(t *testing.T) {
	cold := chainHangTarget(t)
	if err := cold.Prepare(); err != nil {
		t.Fatal(err)
	}

	cache := fault.NewPreparedCache(0)
	warm := chainHangTarget(t)
	warm.Cache = cache
	if err := warm.Prepare(); err != nil { // performs the golden run
		t.Fatal(err)
	}
	adopted := chainHangTarget(t)
	adopted.Cache = cache
	if err := adopted.Prepare(); err != nil { // adopts shared state
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("cache provenance: %+v", st)
	}

	sites := exhaustiveSites(cold)
	opt := func() fault.CampaignOptions {
		return fault.CampaignOptions{Parallelism: 4, KeepPerSite: true}
	}
	want, err := fault.Run(cold, sites, opt())
	if err != nil {
		t.Fatal(err)
	}
	for name, tg := range map[string]*fault.Target{"warm": warm, "adopted": adopted} {
		got, err := fault.Run(tg, sites, opt())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Dist != want.Dist {
			t.Fatalf("%s dist %v, uncached %v", name, got.Dist, want.Dist)
		}
		for i := range want.PerSite {
			if got.PerSite[i] != want.PerSite[i] {
				t.Fatalf("%s site %v: %v, uncached %v", name, sites[i].Site, got.PerSite[i], want.PerSite[i])
			}
		}
		var wbuf, gbuf bytes.Buffer
		if err := report.Write(&wbuf, report.NewProfile(want.Dist)); err != nil {
			t.Fatal(err)
		}
		if err := report.Write(&gbuf, report.NewProfile(got.Dist)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wbuf.Bytes(), gbuf.Bytes()) {
			t.Fatalf("%s report JSON differs:\n%s\nvs uncached:\n%s", name, gbuf.String(), wbuf.String())
		}
	}
}

// TestAffinityScheduling: on a checkpointed target, snapshot-affine chunk
// scheduling keeps pinned devices on ResetFrom's same-source fast path —
// AffinityResets stays far below the run count — and parallel scheduling
// never changes outcomes relative to a serial campaign.
func TestAffinityScheduling(t *testing.T) {
	tg := buildGEMM(t, nil)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	if tg.Checkpoints() == nil {
		t.Skip("target built without checkpoints; affinity does not apply")
	}
	sites := fault.Uniform(fault.NewSpace(tg.Profile()).Random(stats.NewRNG(11), 400))

	serial, err := fault.Run(tg, sites, fault.CampaignOptions{Parallelism: 1, KeepPerSite: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := fault.Run(tg, sites, fault.CampaignOptions{Parallelism: 4, KeepPerSite: true})
	if err != nil {
		t.Fatal(err)
	}
	if par.Dist != serial.Dist {
		t.Fatalf("parallel dist %v, serial %v", par.Dist, serial.Dist)
	}
	for i := range serial.PerSite {
		if par.PerSite[i] != serial.PerSite[i] {
			t.Fatalf("site %v: parallel %v, serial %v", sites[i].Site, par.PerSite[i], serial.PerSite[i])
		}
	}
	for name, st := range map[string]fault.CampaignStats{"serial": serial.Stats, "parallel": par.Stats} {
		if st.AffinityResets >= int64(st.Runs)/2 {
			t.Fatalf("%s campaign: %d affinity resets for %d runs — pinning ineffective",
				name, st.AffinityResets, st.Runs)
		}
	}
}

// TestCampaignReportsCachePrep: the first campaign on a cache-routed target
// reports its Prepare provenance in CampaignStats exactly once; a second
// campaign on the same target reports zeros, so pipeline-aggregated sinks
// count each golden run once.
func TestCampaignReportsCachePrep(t *testing.T) {
	cache := fault.NewPreparedCache(0)
	tg := buildGEMM(t, cache)
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	sites := fault.Uniform(fault.NewSpace(tg.Profile()).Random(stats.NewRNG(9), 16))

	first, err := fault.Run(tg, sites, fault.CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.CacheMisses != 1 || first.Stats.CacheHits != 0 {
		t.Fatalf("first campaign prep stats: %+v", first.Stats)
	}
	second, err := fault.Run(tg, sites, fault.CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.CacheMisses != 0 || second.Stats.CacheHits != 0 || second.Stats.PreparedShared != 0 {
		t.Fatalf("second campaign double-counts prep: %+v", second.Stats)
	}

	adopted := buildGEMM(t, cache)
	if err := adopted.Prepare(); err != nil {
		t.Fatal(err)
	}
	res, err := fault.Run(adopted, sites, fault.CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits != 1 || res.Stats.CacheMisses != 0 {
		t.Fatalf("adopted target prep stats: %+v", res.Stats)
	}
}

// TestPreparedCacheEvictionUnderContention storms a deliberately undersized
// cache (every entry oversized, so each install runs the eviction loop)
// with concurrent Prepares across two keys. Under -race this exercises the
// pin accounting that keeps a just-admitted entry resident while concurrent
// equal-keyed callers adopt it; behaviorally, every Prepare must succeed
// with complete artifacts, the accounting must balance (hits + shared +
// misses = Prepares), and the cache must never do more golden runs than
// cold-start generations (misses can only be caused by real evictions, so
// misses <= evictions + residents per key).
func TestPreparedCacheEvictionUnderContention(t *testing.T) {
	const goroutines, rounds = 8, 6
	cache := fault.NewPreparedCache(1) // everything is oversized

	total := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		for r := 0; r < rounds; r++ {
			total += 2
			wg.Add(1)
			go func() {
				defer wg.Done()
				a := buildGEMM(t, cache)
				if err := a.Prepare(); err != nil {
					t.Errorf("key A: %v", err)
					return
				}
				if a.Profile() == nil || len(a.Golden()) == 0 {
					t.Error("key A: incomplete artifacts after Prepare")
				}
				b := buildGEMM(t, cache)
				b.CheckpointStride = 2 // distinct key: installs contend with A's
				if err := b.Prepare(); err != nil {
					t.Errorf("key B: %v", err)
					return
				}
				if b.Profile() == nil || len(b.Golden()) == 0 {
					t.Error("key B: incomplete artifacts after Prepare")
				}
			}()
		}
	}
	wg.Wait()

	st := cache.Stats()
	if st.Hits+st.Shared+st.Misses != int64(total) {
		t.Fatalf("accounting: hits %d + shared %d + misses %d != %d prepares (%+v)",
			st.Hits, st.Shared, st.Misses, total, st)
	}
	// Every miss after the two cold starts must be explained by an
	// eviction: a miss without a prior eviction of that key would mean an
	// admitted entry vanished mid-handoff — the window the pin closes.
	if st.Misses > st.Evictions+2 {
		t.Fatalf("%d golden runs but only %d evictions (+2 cold starts): entries vanished mid-handoff (%+v)",
			st.Misses, st.Evictions, st)
	}
}
