package fault

import "fmt"

// SiteOutcome is one campaign site's outcome joined with the attribution
// the advisor needs: which thread took the fault, at which dynamic
// instruction, and — resolved through the target's profile — which static
// instruction (PC) executed there. It is the in-memory twin of a
// journal.Record with the static PC already looked up.
type SiteOutcome struct {
	// Index is the site's input-order index in the campaign site list.
	Index int
	// Site is the injected fault site (thread, dynamic instruction, bit).
	Site Site
	// PC is the static instruction executing at the site, resolved via
	// Target.StaticPCAt.
	PC int
	// Outcome is the site's final classification.
	Outcome Outcome
	// Weight is the site's population weight from the campaign site list.
	Weight float64
}

// Attributed joins a campaign's per-site outcomes back onto the site list
// that produced them, resolving each site's static PC through t's profile.
// It is the bridge from "campaign result" to "per-thread / per-instruction
// analysis": PerSite alone holds bare outcomes in input order, and only the
// site list plus the profile can say which thread and static instruction
// each outcome belongs to.
//
// The campaign must have run with CampaignOptions.KeepPerSite on the same
// site list and model, unsharded and complete — a sharded result holds
// meaningless zero outcomes for foreign sites, and attribution cannot tell
// those from real Masked entries.
func (r *CampaignResult) Attributed(t *Target, model Model, sites []WeightedSite) ([]SiteOutcome, error) {
	if r.PerSite == nil {
		return nil, fmt.Errorf("fault: Attributed requires CampaignOptions.KeepPerSite")
	}
	if len(r.PerSite) != len(sites) {
		return nil, fmt.Errorf("fault: Attributed: %d per-site outcomes but %d sites (wrong site list?)",
			len(r.PerSite), len(sites))
	}
	if r.Completed != len(sites) {
		return nil, fmt.Errorf("fault: Attributed: campaign incomplete (%d of %d sites); attribution needs every outcome",
			r.Completed, len(sites))
	}
	out := make([]SiteOutcome, len(sites))
	for i, ws := range sites {
		if err := t.validateSiteModel(ws.Site, model); err != nil {
			return nil, fmt.Errorf("fault: Attributed: site %d: %w", i, err)
		}
		out[i] = SiteOutcome{
			Index:   i,
			Site:    ws.Site,
			PC:      t.StaticPCAt(ws.Site.Thread, ws.Site.DynInst),
			Outcome: r.PerSite[i],
			Weight:  ws.Weight,
		}
	}
	return out, nil
}
