package fault_test

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/kernels"
	"repro/internal/ptx"
	"repro/internal/stats"
)

// chainHangTarget builds the adversarial multi-CTA kernel for checkpoint
// equivalence: 4 CTAs of 8 threads with cross-CTA global-memory dependence
// (each CTA accumulates into acc[tid], which the next CTA reads) plus a
// predicate-guarded barrier split, so exhaustive injection reaches all four
// outcomes — including barrier deadlocks (hangs) and address faults
// (crashes) in any CTA.
func chainHangTarget(t *testing.T) *fault.Target {
	t.Helper()
	prog, err := ptx.Assemble("chainhang", `
		cvt.u32.u16 $r0, %tid.x
		cvt.u32.u16 $r1, %ctaid.x
		cvt.u32.u16 $r2, %ntid.x
		mad.lo.u32 $r3, $r1, $r2, $r0      // gid
		set.ge.u32.u32 $p0/$o127, $r0, 8   // never true fault-free
		@$p0.ne bra lother
		bar.sync 0x00000000
		bra lwork
		lother: bar.sync 0x00000001
		lwork: shl.u32 $r4, $r0, 0x00000002
		add.u32 $r4, $r4, s[0x0010]        // &acc[tid]
		ld.global.u32 $r5, [$r4]
		add.u32 $r5, $r5, $r3
		add.u32 $r5, $r5, 0x00000001
		st.global.u32 [$r4], $r5           // acc[tid] += gid+1
		shl.u32 $r6, $r3, 0x00000002
		add.u32 $r6, $r6, s[0x0014]        // &out[gid]
		st.global.u32 [$r6], $r5
		exit
	`)
	if err != nil {
		t.Fatal(err)
	}
	dev := gpusim.NewDevice(32 + 4*32)
	dev.WriteWords(0, []uint32{7, 11, 13, 17, 19, 23, 29, 31})
	return &fault.Target{
		Name:   "chainhang",
		Prog:   prog,
		Grid:   gpusim.Dim3{X: 4, Y: 1, Z: 1},
		Block:  gpusim.Dim3{X: 8, Y: 1, Z: 1},
		Params: []uint32{0, 32},
		Init:   dev,
		Output: []fault.Range{{Off: 0, Len: 32 + 4*32}},
	}
}

// exhaustiveSites enumerates every fault site of the target.
func exhaustiveSites(tg *fault.Target) []fault.WeightedSite {
	space := fault.NewSpace(tg.Profile())
	var sites []fault.Site
	for th := 0; th < tg.Threads(); th++ {
		sites = append(sites, space.ThreadSites(th, nil)...)
	}
	return fault.Uniform(sites)
}

// TestCheckpointMatchesFullRunExhaustive is the central equivalence property
// of the fast-forward engine: on a cross-CTA-dependent kernel with reachable
// crash and hang sites, the checkpointed campaign must give outcome-for-
// outcome identical results to full runs from the pristine image — for every
// site, at unit and non-unit checkpoint strides, under both schedulers, at
// several parallelism levels.
func TestCheckpointMatchesFullRunExhaustive(t *testing.T) {
	type cfg struct {
		name   string
		stride int
		warp   int
		pars   []int
	}
	cfgs := []cfg{
		{name: "stride1", stride: 1, pars: []int{1, 4}},
		{name: "stride3", stride: 3, pars: []int{4}},
		{name: "stride1-warp4", stride: 1, warp: 4, pars: []int{4}},
	}
	for _, c := range cfgs {
		c := c
		t.Run(c.name, func(t *testing.T) {
			tg := chainHangTarget(t)
			tg.CheckpointStride = c.stride
			tg.WarpSize = c.warp
			if err := tg.Prepare(); err != nil {
				t.Fatal(err)
			}
			if tg.Checkpoints() == nil {
				t.Fatal("no checkpoint store on a multi-CTA target")
			}
			sites := exhaustiveSites(tg)
			if len(sites) < 1000 {
				t.Fatalf("implausibly small exhaustive space: %d", len(sites))
			}

			// Reference: the full-run path (fresh clone, whole grid).
			want := make([]fault.Outcome, len(sites))
			seen := map[fault.Outcome]int{}
			for i, ws := range sites {
				o, err := tg.RunSite(ws.Site)
				if err != nil {
					t.Fatalf("reference %v: %v", ws.Site, err)
				}
				want[i] = o
				seen[o]++
			}
			for _, o := range []fault.Outcome{fault.Masked, fault.SDC, fault.Crash, fault.Hang} {
				if seen[o] == 0 {
					t.Fatalf("exhaustive space reaches no %v outcome: %v", o, seen)
				}
			}

			for _, par := range c.pars {
				res, err := fault.Run(tg, sites, fault.CampaignOptions{
					Parallelism: par, KeepPerSite: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if res.PerSite[i] != want[i] {
						t.Fatalf("par %d: site %v gave %v, full run gave %v",
							par, sites[i].Site, res.PerSite[i], want[i])
					}
				}
				if res.Stats.CTAsSkipped == 0 {
					t.Fatal("fast-forward never skipped a CTA")
				}
				if res.Stats.EarlyExits == 0 {
					t.Fatal("no convergence early exits on a mostly-masked space")
				}
				wantSnaps := 1 + (4-1)/c.stride
				if res.Stats.Checkpoints != wantSnaps {
					t.Fatalf("stats report %d checkpoints, want %d", res.Stats.Checkpoints, wantSnaps)
				}
			}
		})
	}
}

// TestIntraCheckpointMatchesFullRunExhaustive is the equivalence property of
// the intra-CTA (warp-granular) resume layer: on the adversarial chainhang
// kernel — cross-CTA global dependence, predicate-guarded barriers, all four
// outcome classes reachable — a campaign resuming from mid-CTA snapshots must
// give outcome-for-outcome identical results to full runs from the pristine
// image, for the full cross product of intra strides 1/2/3 and CTA-boundary
// strides 1/2, under both schedulers. Runs under -race via `make race`.
func TestIntraCheckpointMatchesFullRunExhaustive(t *testing.T) {
	for _, warp := range []int{0, 4} {
		warp := warp
		name := "serial"
		if warp > 0 {
			name = "warp4"
		}
		t.Run(name, func(t *testing.T) {
			// Reference: the full-run engine (fresh clone, whole grid), both
			// per-site and through the campaign engine with FullRun set.
			ref := chainHangTarget(t)
			ref.WarpSize = warp
			ref.FullRun = true
			ref.IntraStride = 2 // must be ignored under FullRun
			if err := ref.Prepare(); err != nil {
				t.Fatal(err)
			}
			if ref.WarpCheckpoints() != nil {
				t.Fatal("FullRun target built an intra-CTA snapshot store")
			}
			sites := exhaustiveSites(ref)
			want := make([]fault.Outcome, len(sites))
			seen := map[fault.Outcome]int{}
			for i, ws := range sites {
				o, err := ref.RunSite(ws.Site)
				if err != nil {
					t.Fatalf("reference %v: %v", ws.Site, err)
				}
				want[i] = o
				seen[o]++
			}
			for _, o := range []fault.Outcome{fault.Masked, fault.SDC, fault.Crash, fault.Hang} {
				if seen[o] == 0 {
					t.Fatalf("exhaustive space reaches no %v outcome: %v", o, seen)
				}
			}
			fres, err := fault.Run(ref, sites, fault.CampaignOptions{Parallelism: 4, KeepPerSite: true})
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if fres.PerSite[i] != want[i] {
					t.Fatalf("full-run campaign: site %v gave %v, reference %v",
						sites[i].Site, fres.PerSite[i], want[i])
				}
			}
			if fres.Stats.IntraSkips != 0 || fres.Stats.IntraCheckpointBytes != 0 {
				t.Fatalf("full-run campaign reports intra-CTA work: %+v", fres.Stats)
			}

			for _, ctaStride := range []int{1, 2} {
				for _, intra := range []int{1, 2, 3} {
					tg := chainHangTarget(t)
					tg.WarpSize = warp
					tg.CheckpointStride = ctaStride
					tg.IntraStride = intra
					if err := tg.Prepare(); err != nil {
						t.Fatal(err)
					}
					wck := tg.WarpCheckpoints()
					if wck == nil || wck.Count() == 0 {
						t.Fatalf("cta %d intra %d: no intra-CTA snapshots", ctaStride, intra)
					}
					if wck.Stride() != intra {
						t.Fatalf("store reports stride %d, want %d", wck.Stride(), intra)
					}
					res, err := fault.Run(tg, sites, fault.CampaignOptions{Parallelism: 4, KeepPerSite: true})
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if res.PerSite[i] != want[i] {
							t.Fatalf("cta %d intra %d: site %v gave %v, full run gave %v",
								ctaStride, intra, sites[i].Site, res.PerSite[i], want[i])
						}
					}
					if res.Stats.IntraSkips == 0 {
						t.Fatalf("cta %d intra %d: no site resumed from an intra-CTA snapshot", ctaStride, intra)
					}
					if res.Stats.IntraCheckpointBytes != wck.Bytes() || wck.Bytes() <= 0 {
						t.Fatalf("cta %d intra %d: stats report %d snapshot bytes, store holds %d",
							ctaStride, intra, res.Stats.IntraCheckpointBytes, wck.Bytes())
					}
				}
			}

			// A negative IntraStride disables the layer; outcomes still match.
			tg := chainHangTarget(t)
			tg.WarpSize = warp
			tg.CheckpointStride = 1
			tg.IntraStride = -1
			if err := tg.Prepare(); err != nil {
				t.Fatal(err)
			}
			if tg.WarpCheckpoints() != nil {
				t.Fatal("IntraStride < 0 still built a snapshot store")
			}
			res, err := fault.Run(tg, sites, fault.CampaignOptions{Parallelism: 4, KeepPerSite: true})
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if res.PerSite[i] != want[i] {
					t.Fatalf("intra disabled: site %v gave %v, full run gave %v",
						sites[i].Site, res.PerSite[i], want[i])
				}
			}
			if res.Stats.IntraSkips != 0 {
				t.Fatalf("intra disabled but %d sites intra-resumed", res.Stats.IntraSkips)
			}
		})
	}
}

// TestCheckpointGaussianEquivalence covers the paper's cross-CTA-dependency
// kernels: Gaussian Fan1 (2 CTAs) and Fan2 (4 CTAs) at small geometry. For a
// deterministic site sample, the checkpointed campaign, the FullRun-option
// campaign, and the per-site full-run reference must all agree, at unit and
// non-unit strides.
func TestCheckpointGaussianEquivalence(t *testing.T) {
	for _, kname := range []string{"Gaussian K1", "Gaussian K2"} {
		kname := kname
		t.Run(kname, func(t *testing.T) {
			spec, ok := kernels.ByName(kname)
			if !ok {
				t.Fatalf("kernel %q missing", kname)
			}
			for _, stride := range []int{1, 2} {
				inst, err := spec.Build(kernels.ScaleSmall)
				if err != nil {
					t.Fatal(err)
				}
				tg := inst.Target
				tg.CheckpointStride = stride
				if err := tg.Prepare(); err != nil {
					t.Fatal(err)
				}
				space := fault.NewSpace(tg.Profile())
				sites := fault.Uniform(space.Random(stats.NewRNG(41), 400))
				// Exhaust two whole threads in different CTAs so every
				// dynamic instruction, including address computations that
				// crash under high-bit flips, is covered somewhere.
				sites = append(sites, fault.Uniform(space.ThreadSites(0, nil))...)
				sites = append(sites, fault.Uniform(space.ThreadSites(tg.Threads()-1, nil))...)

				want := make([]fault.Outcome, len(sites))
				for i, ws := range sites {
					o, err := tg.RunSite(ws.Site)
					if err != nil {
						t.Fatalf("reference %v: %v", ws.Site, err)
					}
					want[i] = o
				}

				res, err := fault.Run(tg, sites, fault.CampaignOptions{Parallelism: 4, KeepPerSite: true})
				if err != nil {
					t.Fatal(err)
				}
				// An independent instance with the fast-forward engine
				// disabled: the reference path through the campaign engine.
				finst, err := spec.Build(kernels.ScaleSmall)
				if err != nil {
					t.Fatal(err)
				}
				ftg := finst.Target
				ftg.FullRun = true
				if err := ftg.Prepare(); err != nil {
					t.Fatal(err)
				}
				fres, err := fault.Run(ftg, sites, fault.CampaignOptions{Parallelism: 4, KeepPerSite: true})
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if res.PerSite[i] != want[i] {
						t.Fatalf("stride %d: site %v: checkpoint %v, reference %v",
							stride, sites[i].Site, res.PerSite[i], want[i])
					}
					if fres.PerSite[i] != want[i] {
						t.Fatalf("full-run campaign: site %v: %v, reference %v",
							sites[i].Site, fres.PerSite[i], want[i])
					}
				}
				if res.Stats.CTAsSkipped == 0 || res.Stats.Checkpoints == 0 {
					t.Fatalf("fast-forward inactive: %+v", res.Stats)
				}
				if fres.Stats.CTAsSkipped != 0 || fres.Stats.Checkpoints != 0 || fres.Stats.EarlyExits != 0 {
					t.Fatalf("FullRun target still fast-forwarded: %+v", fres.Stats)
				}
				if ftg.Checkpoints() != nil {
					t.Fatal("FullRun target built a checkpoint store")
				}
			}
		})
	}
}

// TestCheckpointSingleCTA: on a single-CTA kernel (LUD at small geometry)
// checkpointing is a no-op — no store is built and campaigns still match the
// full-run reference.
func TestCheckpointSingleCTA(t *testing.T) {
	spec, ok := kernels.ByName("LUD K46")
	if !ok {
		t.Fatal("LUD K46 missing")
	}
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	tg := inst.Target
	if err := tg.Prepare(); err != nil {
		t.Fatal(err)
	}
	if tg.Checkpoints() != nil {
		t.Fatal("checkpoint store built for a 1-CTA grid")
	}
	space := fault.NewSpace(tg.Profile())
	sites := fault.Uniform(space.Random(stats.NewRNG(43), 300))
	want := make([]fault.Outcome, len(sites))
	for i, ws := range sites {
		o, err := tg.RunSite(ws.Site)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = o
	}
	res, err := fault.Run(tg, sites, fault.CampaignOptions{Parallelism: 4, KeepPerSite: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.PerSite[i] != want[i] {
			t.Fatalf("site %v: %v, reference %v", sites[i].Site, res.PerSite[i], want[i])
		}
	}
	if res.Stats.CTAsSkipped != 0 || res.Stats.EarlyExits != 0 || res.Stats.Checkpoints != 0 {
		t.Fatalf("single-CTA campaign reports fast-forward work: %+v", res.Stats)
	}
}

// TestWarpCampaignEquivalence is the -warp smoke test: a campaign under SIMT
// lockstep scheduling (Target.WarpSize, as set by fsprune -warp) must give
// site-for-site the same outcomes as the serial scheduler on a real kernel.
func TestWarpCampaignEquivalence(t *testing.T) {
	spec, ok := kernels.ByName("Gaussian K1")
	if !ok {
		t.Fatal("Gaussian K1 missing")
	}
	run := func(warp int) (*fault.CampaignResult, []fault.WeightedSite) {
		inst, err := spec.Build(kernels.ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		tg := inst.Target
		tg.WarpSize = warp
		if err := tg.Prepare(); err != nil {
			t.Fatal(err)
		}
		space := fault.NewSpace(tg.Profile())
		sites := fault.Uniform(space.Random(stats.NewRNG(97), 250))
		res, err := fault.Run(tg, sites, fault.CampaignOptions{Parallelism: 4, KeepPerSite: true})
		if err != nil {
			t.Fatal(err)
		}
		return res, sites
	}
	serial, sites := run(0)
	warped, wsites := run(4)
	if len(sites) != len(wsites) {
		t.Fatal("site populations diverge between schedulers")
	}
	for i := range sites {
		if sites[i] != wsites[i] {
			t.Fatalf("site %d differs between schedulers", i)
		}
		if serial.PerSite[i] != warped.PerSite[i] {
			t.Fatalf("site %v: serial %v, warp %v", sites[i].Site, serial.PerSite[i], warped.PerSite[i])
		}
	}
	if serial.Dist != warped.Dist {
		t.Fatalf("distributions diverge: %v vs %v", serial.Dist, warped.Dist)
	}
}
