package trace

import (
	"repro/internal/gpusim"
	"repro/internal/isa"
)

// DeadWrites computes, for each dynamic instruction of a thread trace,
// whether its destination register is *dead*: overwritten by a later
// instruction of the same thread — or never touched again before the thread
// exits — without any intervening read. A single-bit fault in a dead
// destination provably cannot affect the run (registers are thread-private
// and every architectural escape — arithmetic use, memory address, store
// value, guard evaluation — counts as a read), so dead sites are masked by
// construction.
//
// This is the Relyzer/MeRLiN-style static-equivalence pruning the paper's
// related-work section describes for CPUs, transplanted to the SIMT traces;
// internal/core exposes it as an optional stage beyond the paper's four.
func DeadWrites(prog *isa.Program, pcs []uint16) []bool {
	dead := make([]bool, len(pcs))

	// pending[r] is the dynamic index of the most recent unread write to
	// register key r, or -1.
	pending := map[regKey]int{}
	kill := func(r isa.Reg) {
		delete(pending, key(r))
	}
	read := func(r isa.Reg) {
		if r.Class == isa.RegSpecial || !r.Valid() {
			return
		}
		kill(r)
	}

	for i := range pcs {
		in := &prog.Instrs[gpusim.PC(pcs[i])]

		// Reads: guard predicate, all source registers (including memory
		// base registers), memory-destination base registers.
		if in.Guard.Active() {
			read(in.Guard.Reg)
		}
		for _, s := range in.Srcs {
			switch s.Kind {
			case isa.OpdReg:
				read(s.Reg)
			case isa.OpdMem:
				if s.BaseValid {
					read(s.Reg)
				}
			}
		}
		if in.Dst.Kind == isa.OpdMem && in.Dst.BaseValid {
			read(in.Dst.Reg)
		}

		if !gpusim.Wrote(pcs[i]) {
			continue
		}

		// Writes: the fault site is the instruction's DestReg (the
		// predicate half of dual destinations); a previous unread write to
		// the same register becomes dead. The value half of a dual
		// destination also overwrites its register.
		site, _, ok := in.DestReg()
		if !ok {
			continue
		}
		if prev, exists := pending[key(site)]; exists {
			dead[prev] = true
		}
		pending[key(site)] = i
		if in.DstPred.Valid() && in.Dst.Kind == isa.OpdReg {
			v := in.Dst.Reg
			if v.Class == isa.RegGPR && (v.Index == isa.ZeroReg || v.Index == isa.SinkReg) {
				// Sink writes hold no state.
			} else if prev, exists := pending[key(v)]; exists {
				dead[prev] = true
				delete(pending, key(v))
			}
		}
	}

	// Writes never read before thread exit are dead too.
	for _, i := range pending {
		dead[i] = true
	}
	return dead
}

// regKey is a comparable register identity.
type regKey struct {
	class isa.RegClass
	index uint8
}

func key(r isa.Reg) regKey { return regKey{class: r.Class, index: r.Index} }
