package trace

import (
	"testing"

	"repro/internal/gpusim"
	"repro/internal/isa"
	"repro/internal/ptx"
)

// buildToyProfile assembles a toy program and hand-builds a ProfileTrace.
func buildToyProfile(t *testing.T, threadPCs [][]uint16, threadsPerCTA int) *Profile {
	t.Helper()
	prog := ptx.MustAssemble("toy", `
		mov.u32 $r1, 1
		add.u32 $r2, $r1, 2
		set.eq.u32.u32 $p0/$o127, $r1, $r2
		st.global.u32 [0x0000], $r2
		bra lend
		lend: exit
	`)
	pt := &gpusim.ProfileTrace{PCs: threadPCs}
	p, err := Build(prog, pt, threadsPerCTA)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// w marks a trace entry as a destination write.
func w(pc int) uint16 { return uint16(pc) | gpusim.WroteBit }

func TestBuildFeatures(t *testing.T) {
	// Two threads: one runs mov,add,set,st; the other mov,add only.
	p := buildToyProfile(t, [][]uint16{
		{w(0), w(1), w(2), 3},
		{w(0), w(1)},
	}, 1)

	if p.Threads[0].ICnt != 4 || p.Threads[1].ICnt != 2 {
		t.Fatalf("iCnt = %d,%d", p.Threads[0].ICnt, p.Threads[1].ICnt)
	}
	// Thread 0 sites: mov(32) + add(32) + set->pred(4) = 68; st adds none.
	if p.Threads[0].SiteBits != 68 {
		t.Fatalf("thread 0 SiteBits = %d, want 68", p.Threads[0].SiteBits)
	}
	if p.Threads[1].SiteBits != 64 {
		t.Fatalf("thread 1 SiteBits = %d, want 64", p.Threads[1].SiteBits)
	}
	if p.TotalSites() != 132 {
		t.Fatalf("TotalSites = %d, want 132", p.TotalSites())
	}
	if p.TotalDyn() != 6 {
		t.Fatalf("TotalDyn = %d, want 6", p.TotalDyn())
	}
	if p.Threads[0].Sig == p.Threads[1].Sig {
		t.Fatal("different paths should have different signatures")
	}

	// Per-instruction bit accounting.
	if got := p.SiteBitsOf(0, 2); got != isa.PredBits {
		t.Fatalf("set dest bits = %d, want %d", got, isa.PredBits)
	}
	if got := p.SiteBitsOf(0, 3); got != 0 {
		t.Fatalf("st dest bits = %d, want 0", got)
	}
}

func TestSignaturesEqualForEqualPaths(t *testing.T) {
	p := buildToyProfile(t, [][]uint16{
		{w(0), w(1)},
		{w(0), w(1)},
	}, 2)
	if p.Threads[0].Sig != p.Threads[1].Sig {
		t.Fatal("identical paths must share a signature")
	}
}

func TestCTAHelpers(t *testing.T) {
	p := buildToyProfile(t, [][]uint16{
		{w(0)}, {w(0), w(1)},
		{w(0), w(1), w(2)}, {w(0), w(1), 3, 3},
	}, 2)
	if p.NumCTAs() != 2 {
		t.Fatalf("NumCTAs = %d", p.NumCTAs())
	}
	if lo, hi := p.CTAThreads(1); lo != 2 || hi != 4 {
		t.Fatalf("CTAThreads(1) = %d,%d", lo, hi)
	}
	if p.CTAOf(3) != 1 {
		t.Fatalf("CTAOf(3) = %d", p.CTAOf(3))
	}
	if got := p.CTAAvgICnt(0); got != 1.5 {
		t.Fatalf("CTAAvgICnt(0) = %v", got)
	}
	icnts := p.CTAICnts(1)
	if len(icnts) != 2 || icnts[0] != 3 || icnts[1] != 4 {
		t.Fatalf("CTAICnts(1) = %v", icnts)
	}
}

func TestBuildErrors(t *testing.T) {
	prog := ptx.MustAssemble("toy", "exit")
	pt := &gpusim.ProfileTrace{PCs: [][]uint16{{0}, {0}, {0}}}
	if _, err := Build(prog, pt, 2); err == nil {
		t.Error("accepted non-divisible CTA size")
	}
	if _, err := Build(prog, pt, 0); err == nil {
		t.Error("accepted zero threadsPerCTA")
	}
	// A trace entry flagged as write on a non-writing instruction must fail.
	bad := &gpusim.ProfileTrace{PCs: [][]uint16{{w(0)}}}
	if _, err := Build(prog, bad, 1); err == nil {
		t.Error("accepted write flag on exit")
	}
}

// seq builds a plain (non-writing) PC trace.
func seq(pcs ...int) []uint16 {
	out := make([]uint16, len(pcs))
	for i, pc := range pcs {
		out[i] = uint16(pc)
	}
	return out
}

func TestAnnotateLoopsSimple(t *testing.T) {
	// PCs: 0 1 [2 3 4] [2 3 4] [2 3 4] 5 — a 3-iteration loop at head 2.
	pcs := seq(0, 1, 2, 3, 4, 2, 3, 4, 2, 3, 4, 5)
	tags := AnnotateLoops(pcs)
	if tags[0].InLoop() || tags[1].InLoop() {
		t.Fatal("prologue tagged as loop")
	}
	if tags[11].InLoop() {
		t.Fatal("epilogue tagged as loop")
	}
	// First trip counts as iteration 0.
	for i := 2; i <= 4; i++ {
		if tags[i].Loop != 2 || tags[i].Iter != 0 {
			t.Fatalf("entry %d: %+v, want loop 2 iter 0", i, tags[i])
		}
	}
	if tags[5].Iter != 1 || tags[8].Iter != 2 {
		t.Fatalf("iterations not counted: %+v %+v", tags[5], tags[8])
	}
}

func TestAnnotateLoopsNested(t *testing.T) {
	// Outer loop head 1 (body 1..6), inner loop head 3 (body 3..4).
	pcs := seq(0,
		1, 2, 3, 4, 3, 4, 5, 6, // outer iter 0, inner iters 0,1
		1, 2, 3, 4, 3, 4, 5, 6, // outer iter 1, inner iters 2,3
		7)
	tags := AnnotateLoops(pcs)
	// Instruction at PC 2 belongs only to the outer loop.
	if tags[2].Loop != 1 || tags[2].Iter != 0 {
		t.Fatalf("outer body: %+v", tags[2])
	}
	if tags[9].Loop != 1 || tags[9].Iter != 1 {
		t.Fatalf("outer iter 1: %+v", tags[9])
	}
	// PC 3/4 belong to the inner loop, iterations accumulate globally.
	if tags[3].Loop != 3 || tags[3].Iter != 0 {
		t.Fatalf("inner first: %+v", tags[3])
	}
	if tags[5].Loop != 3 || tags[5].Iter != 1 {
		t.Fatalf("inner second: %+v", tags[5])
	}
	if tags[11].Loop != 3 || tags[11].Iter != 2 {
		t.Fatalf("inner re-entry: %+v", tags[11])
	}
}

func TestAnnotateLoopsNoLoops(t *testing.T) {
	tags := AnnotateLoops(seq(0, 1, 2, 3))
	for i, tag := range tags {
		if tag.InLoop() {
			t.Fatalf("entry %d tagged in loop", i)
		}
	}
	if got := AnnotateLoops(nil); len(got) != 0 {
		t.Fatal("empty trace should annotate empty")
	}
}

func TestSummarizeLoops(t *testing.T) {
	pcs := seq(0, 1, 2, 1, 2, 1, 2, 3)
	s := SummarizeLoops(pcs)
	if s.Loops != 1 {
		t.Fatalf("Loops = %d", s.Loops)
	}
	if s.TotalIters != 3 || s.MaxIters != 3 {
		t.Fatalf("iters = %d/%d, want 3/3", s.TotalIters, s.MaxIters)
	}
	if s.InLoopInstrs != 6 {
		t.Fatalf("InLoopInstrs = %d, want 6", s.InLoopInstrs)
	}
	if got := s.PctInLoop(); got != 75 {
		t.Fatalf("PctInLoop = %v, want 75", got)
	}
	if (LoopSummary{}).PctInLoop() != 0 {
		t.Fatal("empty summary pct should be 0")
	}
}

func TestSelfLoop(t *testing.T) {
	// A single-instruction loop: pc 1 repeats.
	tags := AnnotateLoops(seq(0, 1, 1, 1, 2))
	if tags[1].Loop != 1 || tags[1].Iter != 0 {
		t.Fatalf("self loop first: %+v", tags[1])
	}
	if tags[3].Iter != 2 {
		t.Fatalf("self loop iter: %+v", tags[3])
	}
}
