package trace

import (
	"testing"

	"repro/internal/gpusim"
	"repro/internal/ptx"
)

func TestDeadWritesSynthetic(t *testing.T) {
	prog := ptx.MustAssemble("dw", `
		mov.u32 $r1, 1                 // 0: dead (overwritten at 1)
		mov.u32 $r1, 2                 // 1: live (read at 2)
		add.u32 $r2, $r1, 3            // 2: live (stored at 4)
		mov.u32 $r3, 4                 // 3: dead (never read, thread exits)
		st.global.u32 [0x0000], $r2    // 4: no destination
		set.eq.u32.u32 $p0/$o127, $r2, $r2 // 5: live (guard reads $p0)
		@$p0.ne bra lend               // 6
		lend: set.ne.u32.u32 $p1/$o127, $r2, $r2 // 7: dead (pred never read)
		exit                           // 8
	`)
	pcs := make([]uint16, 0, 9)
	for pc := 0; pc < 9; pc++ {
		entry := uint16(pc)
		if in := &prog.Instrs[pc]; in.Op.HasDest() && in.Dst.Kind != 0 {
			if _, _, ok := in.DestReg(); ok {
				entry |= gpusim.WroteBit
			}
		}
		pcs = append(pcs, entry)
	}
	dead := DeadWrites(prog, pcs)
	want := map[int]bool{0: true, 1: false, 2: false, 3: true, 5: false, 7: true}
	for i, wantDead := range want {
		if dead[i] != wantDead {
			t.Errorf("instruction %d dead=%v, want %v", i, dead[i], wantDead)
		}
	}
}

func TestDeadWritesReadThroughMemoryBase(t *testing.T) {
	// A register used only as a load/store address base is a read.
	prog := ptx.MustAssemble("mb", `
		mov.u32 $r1, 4                 // 0: live (base of load at 1)
		ld.global.u32 $r2, [$r1]       // 1: live (stored at 2)
		st.global.u32 [$r1], $r2       // 2: reads both
		exit
	`)
	pcs := []uint16{0 | gpusim.WroteBit, 1 | gpusim.WroteBit, 2, 3}
	dead := DeadWrites(prog, pcs)
	if dead[0] || dead[1] {
		t.Fatalf("memory-base reads not honored: %v", dead)
	}
}

func TestDeadWritesLoopCarried(t *testing.T) {
	// The loop counter is read by its own increment and the exit test:
	// every write but the last is live; the final increment's value is
	// consumed by the final set, whose predicate is consumed by the final
	// (untaken) branch — only nothing remains pending.
	prog := ptx.MustAssemble("lc", `
		mov.u32 $r1, $r124
		lloop: add.u32 $r1, $r1, 0x00000001
		set.lt.u32.u32 $p0/$o127, $r1, 0x00000003
		@$p0.ne bra lloop
		exit
	`)
	// Dynamic trace for 3 iterations.
	var pcs []uint16
	pcs = append(pcs, 0|gpusim.WroteBit)
	for it := 0; it < 3; it++ {
		pcs = append(pcs, 1|gpusim.WroteBit, 2|gpusim.WroteBit, 3)
	}
	pcs = append(pcs, 4)
	dead := DeadWrites(prog, pcs)
	for i, d := range dead {
		if d {
			t.Fatalf("loop-carried value at dyn %d marked dead", i)
		}
	}
}
