package trace

import (
	"sort"

	"repro/internal/gpusim"
)

// LoopTag annotates one dynamic instruction with its loop context.
// Instructions outside any loop carry Loop == -1.
type LoopTag struct {
	// Loop identifies the innermost enclosing loop as the static PC of the
	// loop head (the back-edge target); -1 outside loops.
	Loop int
	// Iter is the 0-based iteration index of that loop at this instruction.
	// Iterations accumulate across re-entries, so sampling "iteration k"
	// is well defined even for loops nested in other loops.
	Iter int
}

// InLoop reports whether the instruction executed inside a loop body.
func (t LoopTag) InLoop() bool { return t.Loop >= 0 }

// loopRange is a detected static loop: the PC range [Head, End] spanned by a
// back edge End -> Head.
type loopRange struct {
	head, end int
}

// detectLoops finds loop ranges from a thread's dynamic PC sequence: every
// backward control transfer (PC non-increasing between consecutive retired
// instructions) is a back edge whose target is a loop head. Ranges with the
// same head merge to their widest extent.
func detectLoops(pcs []uint16) []loopRange {
	byHead := make(map[int]int) // head -> max end
	for i := 1; i < len(pcs); i++ {
		pc, prev := gpusim.PC(pcs[i]), gpusim.PC(pcs[i-1])
		if pc <= prev {
			if e, ok := byHead[pc]; !ok || prev > e {
				byHead[pc] = prev
			}
		}
	}
	loops := make([]loopRange, 0, len(byHead))
	for h, e := range byHead {
		loops = append(loops, loopRange{head: h, end: e})
	}
	// Innermost-first: ascending range size, ties by head.
	sort.Slice(loops, func(i, j int) bool {
		si, sj := loops[i].end-loops[i].head, loops[j].end-loops[j].head
		if si != sj {
			return si < sj
		}
		return loops[i].head < loops[j].head
	})
	return loops
}

// AnnotateLoops tags every dynamic instruction of a thread trace with its
// innermost loop and iteration index.
//
// Detection is dynamic and two-pass. Pass one finds loop ranges from back
// edges. Pass two counts iterations: entering a loop's PC range from outside
// starts a new iteration (so the first trip, before any back edge, counts as
// iteration 0), and arriving at the head via a back edge advances to the
// next. The innermost (smallest-range) loop containing the PC claims the
// instruction, matching how the paper samples loop iterations in a thread.
func AnnotateLoops(pcs []uint16) []LoopTag {
	tags := make([]LoopTag, len(pcs))
	loops := detectLoops(pcs)
	if len(loops) == 0 {
		for i := range tags {
			tags[i].Loop = -1
		}
		return tags
	}
	type state struct {
		iter   int
		inside bool
	}
	st := make([]state, len(loops))
	for i := range st {
		st[i].iter = -1
	}
	for i := range pcs {
		pc := gpusim.PC(pcs[i])
		prev := -1
		if i > 0 {
			prev = gpusim.PC(pcs[i-1])
		}
		tags[i] = LoopTag{Loop: -1}
		for k := range loops {
			l := loops[k]
			in := pc >= l.head && pc <= l.end
			if !in {
				st[k].inside = false
				continue
			}
			if !st[k].inside {
				st[k].iter++ // fresh entry opens a new iteration
			} else if pc == l.head && prev >= pc {
				st[k].iter++ // back edge taken
			}
			st[k].inside = true
			if tags[i].Loop == -1 { // loops are innermost-first
				tags[i] = LoopTag{Loop: l.head, Iter: st[k].iter}
			}
		}
	}
	return tags
}

// LoopSummary aggregates a thread's loop structure.
type LoopSummary struct {
	// TotalIters is the total number of loop iterations executed (summed
	// over loops), the paper's Table VII "# Loop Iter." metric.
	TotalIters int
	// MaxIters is the iteration count of the busiest loop.
	MaxIters int
	// InLoopInstrs counts dynamic instructions inside loop bodies.
	InLoopInstrs int64
	// Instrs is the thread's total dynamic instruction count.
	Instrs int64
	// Loops is the number of distinct loops (by head PC).
	Loops int
}

// PctInLoop is the percentage of dynamic instructions inside loops
// (Table VII "% Insn. in Loop").
func (s LoopSummary) PctInLoop() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return 100 * float64(s.InLoopInstrs) / float64(s.Instrs)
}

// SummarizeLoops computes the loop summary of one thread trace.
func SummarizeLoops(pcs []uint16) LoopSummary {
	tags := AnnotateLoops(pcs)
	var s LoopSummary
	s.Instrs = int64(len(pcs))
	iters := make(map[int]int)
	for i := range tags {
		if !tags[i].InLoop() {
			continue
		}
		s.InLoopInstrs++
		if n := tags[i].Iter + 1; n > iters[tags[i].Loop] {
			iters[tags[i].Loop] = n
		}
	}
	s.Loops = len(iters)
	for _, n := range iters {
		s.TotalIters += n
		if n > s.MaxIters {
			s.MaxIters = n
		}
	}
	return s
}
