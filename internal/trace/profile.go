// Package trace turns a fault-free profiling run into the per-thread
// features the paper's pruning methodology consumes: dynamic instruction
// counts (iCnt), fault-site counts per Eq. 1, static-PC signatures (used to
// validate that equal-iCnt threads really execute the same instructions),
// and loop structure (which dynamic instructions belong to which iteration
// of which loop).
package trace

import (
	"fmt"
	"hash/fnv"

	"repro/internal/gpusim"
	"repro/internal/isa"
)

// ThreadProfile is the profile of one thread.
type ThreadProfile struct {
	// ICnt is the dynamic instruction count, the paper's thread classifier.
	ICnt int64
	// SiteBits is this thread's contribution to Eq. 1: the sum of
	// destination-register widths over its dynamic instructions.
	SiteBits int64
	// Sig is a hash of the static-PC sequence. Two threads with equal Sig
	// executed instruction-identical paths.
	Sig uint64
	// PCs is the dynamic instruction sequence (entries as produced by
	// gpusim.ProfileTrace: PC plus destination-write flag).
	PCs []uint16
}

// Profile is the fault-free profile of one kernel launch.
type Profile struct {
	// Prog is the profiled kernel.
	Prog *isa.Program
	// Threads holds one profile per flat thread id.
	Threads []ThreadProfile
	// ThreadsPerCTA partitions flat thread ids into CTAs.
	ThreadsPerCTA int
}

// Build runs the dynamic trace through the program and derives all features.
func Build(prog *isa.Program, pt *gpusim.ProfileTrace, threadsPerCTA int) (*Profile, error) {
	if threadsPerCTA <= 0 {
		return nil, fmt.Errorf("trace: bad threadsPerCTA %d", threadsPerCTA)
	}
	if len(pt.PCs)%threadsPerCTA != 0 {
		return nil, fmt.Errorf("trace: %d threads not divisible into CTAs of %d",
			len(pt.PCs), threadsPerCTA)
	}
	p := &Profile{
		Prog:          prog,
		Threads:       make([]ThreadProfile, len(pt.PCs)),
		ThreadsPerCTA: threadsPerCTA,
	}
	for t, pcs := range pt.PCs {
		tp := &p.Threads[t]
		tp.PCs = pcs
		tp.ICnt = int64(len(pcs))
		h := fnv.New64a()
		var buf [2]byte
		for _, entry := range pcs {
			pc := gpusim.PC(entry)
			if gpusim.Wrote(entry) {
				_, bits, ok := prog.Instrs[pc].DestReg()
				if !ok {
					return nil, fmt.Errorf("trace: pc %d flagged as write but has no destination", pc)
				}
				tp.SiteBits += int64(bits)
			}
			buf[0], buf[1] = byte(pc), byte(pc>>8)
			h.Write(buf[:])
		}
		tp.Sig = h.Sum64()
	}
	return p, nil
}

// NumCTAs reports the number of CTAs in the profiled launch.
func (p *Profile) NumCTAs() int { return len(p.Threads) / p.ThreadsPerCTA }

// CTAThreads returns the flat thread id range [lo, hi) of a CTA.
func (p *Profile) CTAThreads(cta int) (lo, hi int) {
	return cta * p.ThreadsPerCTA, (cta + 1) * p.ThreadsPerCTA
}

// CTAOf maps a flat thread id to its CTA index.
func (p *Profile) CTAOf(thread int) int { return thread / p.ThreadsPerCTA }

// CTAAvgICnt is the average thread iCnt of one CTA, the paper's CTA-level
// grouping feature (Fig. 3, Tables III/IV "Avg. iCnt").
func (p *Profile) CTAAvgICnt(cta int) float64 {
	lo, hi := p.CTAThreads(cta)
	var sum int64
	for t := lo; t < hi; t++ {
		sum += p.Threads[t].ICnt
	}
	return float64(sum) / float64(hi-lo)
}

// CTAICnts returns the per-thread iCnts of one CTA.
func (p *Profile) CTAICnts(cta int) []int64 {
	lo, hi := p.CTAThreads(cta)
	out := make([]int64, 0, hi-lo)
	for t := lo; t < hi; t++ {
		out = append(out, p.Threads[t].ICnt)
	}
	return out
}

// TotalSites evaluates Eq. 1 of the paper: the exhaustive fault-site count,
// summing every destination-register bit of every dynamic instruction of
// every thread.
func (p *Profile) TotalSites() int64 {
	var sum int64
	for i := range p.Threads {
		sum += p.Threads[i].SiteBits
	}
	return sum
}

// TotalDyn is the total dynamic instruction count across all threads.
func (p *Profile) TotalDyn() int64 {
	var sum int64
	for i := range p.Threads {
		sum += p.Threads[i].ICnt
	}
	return sum
}

// SiteBitsOf returns the fault-site bit width of thread t's dynamic
// instruction i, or 0 when that instruction wrote no destination register.
func (p *Profile) SiteBitsOf(t int, i int64) int {
	entry := p.Threads[t].PCs[i]
	if !gpusim.Wrote(entry) {
		return 0
	}
	_, bits, _ := p.Prog.Instrs[gpusim.PC(entry)].DestReg()
	return bits
}
