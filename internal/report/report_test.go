package report_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/report"
)

func TestProfileRoundTrip(t *testing.T) {
	var d fault.Dist
	d.Add(fault.Masked, 6)
	d.Add(fault.SDC, 3)
	d.Add(fault.Crash, 0.5)
	d.Add(fault.Hang, 0.5)
	p := report.NewProfile(d)
	if p.MaskedPct != 60 || p.SDCPct != 30 || p.OtherPct != 10 {
		t.Fatalf("profile: %+v", p)
	}
	if p.CrashPct != 5 || p.HangPct != 5 {
		t.Fatalf("other split: %+v", p)
	}
	if p.Experiments != 4 || p.Weight != 10 {
		t.Fatalf("counts: %+v", p)
	}

	var buf bytes.Buffer
	if err := report.Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	var back report.Profile
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("round trip changed: %+v vs %+v", back, p)
	}
}

func TestPlanAndProfileDocuments(t *testing.T) {
	spec, _ := kernels.ByName("Gaussian K1")
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Target.Prepare(); err != nil {
		t.Fatal(err)
	}
	plan, err := core.BuildPlan(inst.Target, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	pd := report.NewPlan(plan)
	if pd.Kernel != "Gaussian K1" || pd.Sites != len(plan.Sites) {
		t.Fatalf("plan doc: %+v", pd)
	}
	if pd.Stages.Exhaustive != plan.Stages.Exhaustive || pd.Reduction != plan.Reduction() {
		t.Fatalf("plan stages: %+v", pd)
	}
	if len(pd.ThreadGroups) != len(plan.ThreadGroups) {
		t.Fatalf("thread groups: %d vs %d", len(pd.ThreadGroups), len(plan.ThreadGroups))
	}

	kp := report.NewKernelProfile("Gaussian K1", inst.Target.Profile())
	if kp.Threads != inst.Target.Threads() || kp.FaultSites <= 0 {
		t.Fatalf("kernel profile: %+v", kp)
	}
	if kp.MinICnt > kp.MaxICnt {
		t.Fatalf("icnt bounds: %+v", kp)
	}

	est, err := plan.Estimate(fault.CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	doc := report.NewEstimate(plan, est, nil, nil)
	if doc.Baseline != nil || doc.MaxDeltaPP != nil {
		t.Fatal("baseline fields should be omitted")
	}
	if doc.Campaign != nil {
		t.Fatal("campaign stats should be omitted")
	}
	var base fault.Dist
	base.Add(fault.Masked, 1)
	stats := fault.CampaignStats{Runs: 7, Wall: time.Millisecond, PagesCopied: 3,
		DevicesCreated: 2, CTAsSkipped: 5, EarlyExits: 1, Checkpoints: 3, CheckpointBytes: 4096}
	doc = report.NewEstimate(plan, est, &base, &stats)
	if doc.Baseline == nil || doc.MaxDeltaPP == nil {
		t.Fatal("baseline fields missing")
	}
	if doc.Campaign == nil || doc.Campaign.Runs != 7 || doc.Campaign.WallMS != 1 {
		t.Fatalf("campaign stats: %+v", doc.Campaign)
	}
	if doc.Campaign.DevicesCreated != 2 || doc.Campaign.CTAsSkipped != 5 ||
		doc.Campaign.EarlyExits != 1 || doc.Campaign.Checkpoints != 3 ||
		doc.Campaign.CheckpointBytes != 4096 {
		t.Fatalf("fast-forward stats: %+v", doc.Campaign)
	}

	var buf bytes.Buffer
	if err := report.Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("invalid JSON emitted")
	}
}
