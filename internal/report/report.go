// Package report serializes analysis results (profiles, plans, campaign
// outcomes) into stable JSON documents for downstream tooling — spreadsheet
// imports, CI dashboards, regression diffs. Only derived summaries are
// exported, never raw traces, so documents stay small at any kernel scale.
package report

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/trace"
)

// Profile is the JSON summary of a resilience profile.
type Profile struct {
	MaskedPct float64 `json:"masked_pct"`
	SDCPct    float64 `json:"sdc_pct"`
	OtherPct  float64 `json:"other_pct"`
	// CrashPct and HangPct split OtherPct by cause.
	CrashPct float64 `json:"crash_pct"`
	HangPct  float64 `json:"hang_pct"`
	// EngineErrPct is the weight share of quarantined sites (EngineError):
	// not a paper outcome, surfaced so a degraded campaign is visible in
	// its report.
	EngineErrPct float64 `json:"engine_err_pct,omitempty"`
	// Experiments is the unweighted injection-run count behind the profile.
	Experiments int64 `json:"experiments"`
	// Weight is the weighted site mass the profile represents.
	Weight float64 `json:"weight"`
}

// NewProfile converts a fault.Dist.
func NewProfile(d fault.Dist) Profile {
	return Profile{
		MaskedPct:    d.Pct(fault.ClassMasked),
		SDCPct:       d.Pct(fault.ClassSDC),
		OtherPct:     d.Pct(fault.ClassOther),
		CrashPct:     d.PctOutcome(fault.Crash),
		HangPct:      d.PctOutcome(fault.Hang),
		EngineErrPct: d.PctOutcome(fault.EngineError),
		Experiments:  d.N,
		Weight:       d.Total(),
	}
}

// Stage mirrors core.StageSites.
type Stage struct {
	Exhaustive int64 `json:"exhaustive"`
	Thread     int64 `json:"thread"`
	Inst       int64 `json:"inst"`
	Loop       int64 `json:"loop"`
	Bit        int64 `json:"bit"`
}

// ThreadGroup is the JSON summary of one stage-1 thread group.
type ThreadGroup struct {
	CTAGroup   int   `json:"cta_group"`
	ICnt       int64 `json:"icnt"`
	Rep        int   `json:"rep"`
	Population int64 `json:"population"`
}

// Plan is the JSON summary of a pruning plan.
type Plan struct {
	Kernel       string        `json:"kernel"`
	Threads      int           `json:"threads"`
	CTAGroups    int           `json:"cta_groups"`
	ThreadGroups []ThreadGroup `json:"thread_groups"`
	Stages       Stage         `json:"stages"`
	Sites        int           `json:"sites"`
	KnownMasked  float64       `json:"known_masked_weight"`
	Reduction    float64       `json:"reduction"`
	// InstPrunedPct is Table VI's "% pruned common instructions".
	InstPrunedPct float64 `json:"inst_pruned_pct"`
}

// NewPlan converts a core.Plan.
func NewPlan(p *core.Plan) Plan {
	out := Plan{
		Kernel:        p.Target.Name,
		Threads:       p.Target.Threads(),
		CTAGroups:     len(p.CTAGroups),
		Stages:        Stage(p.Stages),
		Sites:         len(p.Sites),
		KnownMasked:   p.KnownMasked,
		Reduction:     p.Reduction(),
		InstPrunedPct: p.InstPrune.PctPruned(),
	}
	for _, g := range p.ThreadGroups {
		out.ThreadGroups = append(out.ThreadGroups, ThreadGroup{
			CTAGroup: g.CTAGroup, ICnt: g.ICnt, Rep: g.Rep, Population: g.Population,
		})
	}
	return out
}

// KernelProfile is the JSON summary of a fault-free profiling run.
type KernelProfile struct {
	Kernel     string  `json:"kernel"`
	Threads    int     `json:"threads"`
	CTAs       int     `json:"ctas"`
	TotalDyn   int64   `json:"total_dynamic_instructions"`
	FaultSites int64   `json:"fault_sites"`
	MinICnt    int64   `json:"min_icnt"`
	MaxICnt    int64   `json:"max_icnt"`
	LoopIters  int     `json:"max_loop_iterations"`
	PctInLoops float64 `json:"pct_instructions_in_loops"`
}

// NewKernelProfile summarizes a prepared target's profile.
func NewKernelProfile(name string, prof *trace.Profile) KernelProfile {
	out := KernelProfile{
		Kernel:   name,
		Threads:  len(prof.Threads),
		CTAs:     prof.NumCTAs(),
		TotalDyn: prof.TotalDyn(),
	}
	out.FaultSites = prof.TotalSites()
	var inLoop, total int64
	if len(prof.Threads) > 0 {
		out.MinICnt = prof.Threads[0].ICnt
	}
	for i := range prof.Threads {
		c := prof.Threads[i].ICnt
		if c < out.MinICnt {
			out.MinICnt = c
		}
		if c > out.MaxICnt {
			out.MaxICnt = c
		}
		s := trace.SummarizeLoops(prof.Threads[i].PCs)
		inLoop += s.InLoopInstrs
		total += s.Instrs
		if s.TotalIters > out.LoopIters {
			out.LoopIters = s.TotalIters
		}
	}
	if total > 0 {
		out.PctInLoops = 100 * float64(inLoop) / float64(total)
	}
	return out
}

// Campaign is the JSON summary of a campaign's execution stats.
type Campaign struct {
	Runs           int64   `json:"runs"`
	WallMS         float64 `json:"wall_ms"`
	RunsPerSec     float64 `json:"runs_per_sec"`
	PagesCopied    int64   `json:"pages_copied"`
	DevicesCreated int     `json:"devices_created"`
	CTAsSkipped    int64   `json:"ctas_skipped,omitempty"`
	EarlyExits     int64   `json:"early_exits,omitempty"`
	IntraSkips     int64   `json:"intra_skips,omitempty"`
	// FullRunFallbacks counts runs degraded to a full re-execution because
	// their fault model is not fast-forward sound.
	FullRunFallbacks int64 `json:"full_run_fallbacks,omitempty"`
	Checkpoints      int   `json:"checkpoints,omitempty"`
	CheckpointBytes  int64 `json:"checkpoint_bytes,omitempty"`
	// IntraCheckpointBytes is the memory retained by the intra-CTA
	// (warp-granular) snapshot store.
	IntraCheckpointBytes int64 `json:"intra_checkpoint_bytes,omitempty"`
	Replayed             int64 `json:"replayed,omitempty"`
	Retries              int64 `json:"retries,omitempty"`
	Quarantined          int64 `json:"quarantined,omitempty"`
	CacheHits            int64 `json:"cache_hits,omitempty"`
	CacheMisses          int64 `json:"cache_misses,omitempty"`
	PreparedShared       int64 `json:"prepared_shared,omitempty"`
	AffinityResets       int64 `json:"affinity_resets,omitempty"`
}

// NewCampaign converts fault.CampaignStats.
func NewCampaign(s fault.CampaignStats) Campaign {
	return Campaign{
		Runs:                 s.Runs,
		WallMS:               float64(s.Wall.Microseconds()) / 1000,
		RunsPerSec:           s.RunsPerSec,
		PagesCopied:          s.PagesCopied,
		DevicesCreated:       s.DevicesCreated,
		CTAsSkipped:          s.CTAsSkipped,
		EarlyExits:           s.EarlyExits,
		IntraSkips:           s.IntraSkips,
		FullRunFallbacks:     s.FullRunFallbacks,
		Checkpoints:          s.Checkpoints,
		CheckpointBytes:      s.CheckpointBytes,
		IntraCheckpointBytes: s.IntraCheckpointBytes,
		Replayed:             s.Replayed,
		Retries:              s.Retries,
		Quarantined:          s.Quarantined,
		CacheHits:            s.CacheHits,
		CacheMisses:          s.CacheMisses,
		PreparedShared:       s.PreparedShared,
		AffinityResets:       s.AffinityResets,
	}
}

// Merged is the JSON document fsmerge emits for a campaign recombined from
// shard journals — and the campaign service serves as a final report: the
// identifying fingerprint fields, coverage counters, and the merged
// resilience profile.
type Merged struct {
	Kernel      string  `json:"kernel"`
	Scale       string  `json:"scale"`
	Seed        int64   `json:"seed"`
	Model       string  `json:"model"`
	Shards      int     `json:"shards"`
	Sites       int     `json:"sites"`
	Completed   int     `json:"completed"`
	Quarantined int     `json:"quarantined,omitempty"`
	Profile     Profile `json:"profile"`
	// Campaign aggregates the execution counters recorded in the journals
	// (attempt counts and fast-forward savings; wall time is not recorded
	// per shard and stays zero).
	Campaign Campaign `json:"campaign"`
}

// NewMerged aggregates journal records into the Merged document. The
// records must be sorted by site index (journal.Merge's output order):
// aggregating in that order reproduces the engine's input-order float
// summation, so the document is bit-identical to the live campaign's — and
// deterministic, which is what lets fsmerge output and the campaign
// service's reports be compared byte for byte. Records carrying an unknown
// outcome fail rather than skew the profile.
func NewMerged(fp journal.Fingerprint, recs []journal.Record) (Merged, error) {
	var dist fault.Dist
	var stats fault.CampaignStats
	quarantined := 0
	for _, r := range recs {
		o := fault.Outcome(r.Outcome)
		if !o.Valid() {
			return Merged{}, fmt.Errorf("report: record for site %d holds unknown outcome %d", r.Index, r.Outcome)
		}
		dist.Add(o, r.Weight)
		stats.Runs += int64(r.Attempts)
		stats.CTAsSkipped += r.CTAsSkipped
		if r.EarlyExit {
			stats.EarlyExits++
		}
		if r.IntraResumed {
			stats.IntraSkips++
		}
		if r.FullRunFallback {
			stats.FullRunFallbacks++
		}
		if r.Attempts > 1 {
			stats.Retries += int64(r.Attempts - 1)
		}
		if r.Err != "" {
			stats.Quarantined++
			quarantined++
		}
	}
	return Merged{
		Kernel:      fp.Kernel,
		Scale:       fp.Scale,
		Seed:        fp.Seed,
		Model:       fp.Model,
		Shards:      fp.ShardCount,
		Sites:       fp.Sites,
		Completed:   len(recs),
		Quarantined: quarantined,
		Profile:     NewProfile(dist),
		Campaign:    NewCampaign(stats),
	}, nil
}

// MergedDist recomputes the weighted outcome distribution of a record
// stream in the given order — the incremental profile a live status reader
// shows while a campaign is still appending.
func MergedDist(recs []journal.Record) (fault.Dist, error) {
	var dist fault.Dist
	for _, r := range recs {
		o := fault.Outcome(r.Outcome)
		if !o.Valid() {
			return fault.Dist{}, fmt.Errorf("report: record for site %d holds unknown outcome %d", r.Index, r.Outcome)
		}
		dist.Add(o, r.Weight)
	}
	return dist, nil
}

// Estimate bundles a plan with its estimated and baseline profiles.
type Estimate struct {
	Plan     Plan     `json:"plan"`
	Pruned   Profile  `json:"pruned"`
	Baseline *Profile `json:"baseline,omitempty"`
	// MaxDeltaPP is the largest class difference in percentage points,
	// present only with a baseline.
	MaxDeltaPP *float64 `json:"max_delta_pp,omitempty"`
	// Campaign holds the execution stats of the pruned campaign when
	// requested (-stats).
	Campaign *Campaign `json:"campaign,omitempty"`
}

// NewEstimate assembles the document; baseline and stats may be nil to omit.
func NewEstimate(p *core.Plan, pruned fault.Dist, baseline *fault.Dist, stats *fault.CampaignStats) Estimate {
	e := Estimate{Plan: NewPlan(p), Pruned: NewProfile(pruned)}
	if baseline != nil {
		bp := NewProfile(*baseline)
		e.Baseline = &bp
		d := pruned.MaxClassDelta(*baseline)
		e.MaxDeltaPP = &d
	}
	if stats != nil {
		c := NewCampaign(*stats)
		e.Campaign = &c
	}
	return e
}

// Write emits v as indented JSON.
func Write(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
