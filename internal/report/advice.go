package report

// Advice is the JSON document produced by the selective-hardening advisor
// (internal/advisor): per-thread and per-static-instruction vulnerability
// rankings derived from a completed campaign, plus a simulated
// protection frontier (resilience vs duplicate-and-compare cost). It is
// served identically by `fsadvise -json` and the campaign service's
// GET /campaigns/{id}/advice — both funnel through advisor.Analyze and
// report.Write, so the bytes match.
type Advice struct {
	// Kernel, Scale, Seed, Model, Sites identify the campaign the advice
	// was derived from (the journal-fingerprint subset that matters for
	// interpreting the ranking).
	Kernel string `json:"kernel"`
	Scale  string `json:"scale,omitempty"`
	Seed   int64  `json:"seed"`
	Model  string `json:"model"`
	Sites  int    `json:"sites"`
	// RankBy is the ranking criterion ("sdc", "due" or "severity") and
	// Confidence the Wilson-interval confidence level behind the
	// sdc_lo_pct / sdc_hi_pct bounds.
	RankBy     string  `json:"rank_by"`
	Confidence float64 `json:"confidence"`
	// DMRSound reports whether the duplicate-and-compare protection model
	// is sound for the campaign's fault model: instruction-level DMR
	// detects transient corruption of an instruction's destination value,
	// so the frontier is meaningful for the dest-* and lane-correlated
	// models but only indicative for address faults and persistent
	// stuck-at state (see DESIGN.md §3.10).
	DMRSound bool `json:"dmr_sound"`
	// Profile is the campaign's overall outcome distribution.
	Profile Profile `json:"profile"`
	// Threads and Instructions are the vulnerability rankings, sorted by
	// descending score (ties broken by ascending thread id / PC). Every
	// group with at least one sample appears; consumers truncate.
	Threads      []ThreadRank `json:"threads"`
	Instructions []InstRank   `json:"instructions"`
	// Frontier is the simulated resilience-vs-cost curve: point k protects
	// the k highest-value static instructions (greedy by SDC mass per unit
	// overhead). Point 0 is the unprotected baseline.
	Frontier []FrontierPoint `json:"frontier"`
}

// RankStats is the per-group outcome summary shared by thread and
// instruction rankings. Percentages are weighted shares of the group's
// site mass; the Wilson bounds are computed on the weighted SDC proportion
// at the group's Kish effective sample size (EffectiveN), the honest
// information content of a weighted sample.
type RankStats struct {
	// Samples is the number of injection outcomes observed in the group.
	Samples int64 `json:"samples"`
	// EffectiveN is the Kish effective sample size of the group's weights,
	// (Σw)²/Σw² — equal to Samples for uniform weights, strictly smaller
	// under pruned-campaign weights. It is the n behind the Wilson bounds.
	EffectiveN float64 `json:"effective_n"`
	// Weight is the group's share of the campaign's weighted site mass.
	Weight float64 `json:"weight"`
	// MaskedPct / SDCPct / DUEPct partition the group's weight. DUE
	// (detected/unrecoverable error) covers Crash and Hang. EngineErrPct
	// is the quarantined remainder, omitted when zero.
	MaskedPct    float64 `json:"masked_pct"`
	SDCPct       float64 `json:"sdc_pct"`
	DUEPct       float64 `json:"due_pct"`
	EngineErrPct float64 `json:"engine_err_pct,omitempty"`
	// SDCLoPct / SDCHiPct bound the group's true SDC probability at the
	// document's confidence level (Wilson score interval on the weighted
	// SDC proportion, evaluated at EffectiveN trials).
	SDCLoPct float64 `json:"sdc_lo_pct"`
	SDCHiPct float64 `json:"sdc_hi_pct"`
	// Score is the ranking criterion's value for the group.
	Score float64 `json:"score"`
}

// ThreadRank is one thread's entry in the vulnerability ranking.
type ThreadRank struct {
	// Thread is the flat thread id; CTA its block index.
	Thread int `json:"thread"`
	CTA    int `json:"cta"`
	RankStats
}

// InstRank is one static instruction's entry in the vulnerability ranking.
type InstRank struct {
	// PC is the static program counter; Instr its disassembly.
	PC    int    `json:"pc"`
	Instr string `json:"instr"`
	// DynCount is the instruction's dynamic execution count across all
	// threads — the basis of the protection-overhead model.
	DynCount int64 `json:"dyn_count"`
	// OverheadPct is the modeled cost of protecting this instruction
	// alone: duplicate-and-compare adds two dynamic instructions per
	// execution, so 100 * 2*DynCount / totalDynamicInstructions.
	OverheadPct float64 `json:"overhead_pct"`
	RankStats
}

// FrontierPoint is one point on the simulated protection frontier.
type FrontierPoint struct {
	// BudgetPct echoes the requested overhead budget when the frontier was
	// swept over explicit budgets; nil on the default per-prefix sweep.
	BudgetPct *float64 `json:"budget_pct,omitempty"`
	// Protected is how many instructions the point protects; PCs lists
	// them in protection order.
	Protected int   `json:"protected"`
	PCs       []int `json:"pcs,omitempty"`
	// OverheadPct is the modeled dynamic-instruction overhead of the
	// protected set.
	OverheadPct float64 `json:"overhead_pct"`
	// SDCPct and DetectedPct describe the simulated outcome: protecting an
	// instruction converts its SDC mass to detected, so SDCPct falls and
	// DetectedPct rises as the budget grows; all other outcome mass is
	// unchanged.
	SDCPct      float64 `json:"sdc_pct"`
	DetectedPct float64 `json:"detected_pct"`
}
