package advisor

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/report"
	"repro/internal/stats"
)

// groupAcc accumulates one ranking group's outcomes. Weighted masses are
// accumulated in campaign-index order (float addition is not associative,
// and byte-identical advice across the live and journal paths depends on
// a fixed order).
type groupAcc struct {
	samples int64
	sumW    float64
	sumW2   float64
	masked  float64
	sdc     float64
	due     float64
	eng     float64
}

func (g *groupAcc) add(o fault.Outcome, w float64) {
	g.samples++
	g.sumW += w
	g.sumW2 += w * w
	switch o {
	case fault.Masked:
		g.masked += w
	case fault.SDC:
		g.sdc += w
	case fault.Crash, fault.Hang:
		g.due += w
	case fault.EngineError:
		g.eng += w
	}
}

func (g *groupAcc) total() float64 { return g.masked + g.sdc + g.due + g.eng }

// stats renders the accumulator as report.RankStats at the given
// confidence level under the given ranking criterion.
func (g *groupAcc) stats(rankBy string, confidence float64) report.RankStats {
	total := g.total()
	pct := func(v float64) float64 {
		if total == 0 {
			return 0
		}
		return v / total * 100
	}
	// The interval's honest sample size is the Kish effective sample size,
	// not the record count: under pruned-campaign weights a group's heavy
	// sites dominate its rates, and pretending every record is a full
	// observation would shrink the bounds below what the data supports.
	// For uniform weights ESS equals the count exactly, so unweighted
	// campaigns keep their classic count-based Wilson interval bit for bit
	// (DESIGN.md §3.10).
	ess := stats.KishESS(g.sumW, g.sumW2)
	var pSDC float64
	if total > 0 {
		pSDC = g.sdc / total
	}
	lo, hi := stats.WilsonProportionInterval(pSDC, ess, confidence)
	rs := report.RankStats{
		Samples:      g.samples,
		EffectiveN:   ess,
		Weight:       total,
		MaskedPct:    pct(g.masked),
		SDCPct:       pct(g.sdc),
		DUEPct:       pct(g.due),
		EngineErrPct: pct(g.eng),
		SDCLoPct:     lo * 100,
		SDCHiPct:     hi * 100,
	}
	switch rankBy {
	case RankDUE:
		rs.Score = rs.DUEPct
	case RankSeverity:
		rs.Score = rs.SDCPct + 0.25*rs.DUEPct
	default:
		rs.Score = rs.SDCPct
	}
	return rs
}

// Analyze aggregates an attributed campaign into per-thread and
// per-instruction vulnerability rankings and the simulated protection
// frontier. The result depends only on Input and Options — both the live
// and journal paths call it with identical inputs for equal campaigns, so
// the JSON document (report.Write of the return value) is byte-identical.
func Analyze(in *Input, opt Options) (*report.Advice, error) {
	opt, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	if in.Prof == nil {
		return nil, fmt.Errorf("advisor: input has no profile")
	}
	if len(in.Records) == 0 {
		return nil, fmt.Errorf("advisor: no outcome records to analyze")
	}

	// One pass in record order: overall distribution plus both groupings.
	var dist fault.Dist
	threads := map[int]*groupAcc{}
	insts := map[int]*groupAcc{}
	for _, r := range in.Records {
		dist.Add(r.Outcome, r.Weight)
		tg := threads[r.Thread]
		if tg == nil {
			tg = &groupAcc{}
			threads[r.Thread] = tg
		}
		tg.add(r.Outcome, r.Weight)
		if r.PC < 0 || r.PC >= len(in.Prof.Prog.Instrs) {
			return nil, fmt.Errorf("advisor: record names PC %d but the program has %d instructions",
				r.PC, len(in.Prof.Prog.Instrs))
		}
		ig := insts[r.PC]
		if ig == nil {
			ig = &groupAcc{}
			insts[r.PC] = ig
		}
		ig.add(r.Outcome, r.Weight)
	}

	// Per-instruction dynamic counts, the overhead model's denominator.
	dynCount := make([]int64, len(in.Prof.Prog.Instrs))
	var totalDyn int64
	for t := range in.Prof.Threads {
		for _, entry := range in.Prof.Threads[t].PCs {
			dynCount[gpusim.PC(entry)]++
			totalDyn++
		}
	}
	if totalDyn == 0 {
		return nil, fmt.Errorf("advisor: profile has no dynamic instructions")
	}

	adv := &report.Advice{
		Kernel:     in.Kernel,
		Scale:      in.Scale,
		Seed:       in.Seed,
		Model:      in.Model.String(),
		Sites:      in.Sites,
		RankBy:     opt.RankBy,
		Confidence: opt.Confidence,
		DMRSound:   DMRSound(in.Model),
		Profile:    report.NewProfile(dist),
	}

	perCTA := in.Prof.ThreadsPerCTA
	for _, t := range sortedKeys(threads) {
		adv.Threads = append(adv.Threads, report.ThreadRank{
			Thread:    t,
			CTA:       t / perCTA,
			RankStats: threads[t].stats(opt.RankBy, opt.Confidence),
		})
	}
	sortRanked(adv.Threads, func(r report.ThreadRank) (float64, int) { return r.Score, r.Thread })

	for _, pc := range sortedKeys(insts) {
		adv.Instructions = append(adv.Instructions, report.InstRank{
			PC:          pc,
			Instr:       in.Prof.Prog.Instrs[pc].String(),
			DynCount:    dynCount[pc],
			OverheadPct: overheadPct(dynCount[pc], totalDyn),
			RankStats:   insts[pc].stats(opt.RankBy, opt.Confidence),
		})
	}
	sortRanked(adv.Instructions, func(r report.InstRank) (float64, int) { return r.Score, r.PC })

	adv.Frontier = frontier(insts, dynCount, totalDyn, dist, opt.Budgets)
	return adv, nil
}

// overheadPct is the modeled cost of protecting one static instruction:
// duplicate-and-compare re-executes the instruction and adds a comparison,
// two extra dynamic instructions per protected execution.
func overheadPct(dyn, totalDyn int64) float64 {
	return float64(2*dyn) / float64(totalDyn) * 100
}

func sortedKeys(m map[int]*groupAcc) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// sortRanked orders by descending score, breaking ties by ascending key so
// the ranking is total (map iteration order never shows through).
func sortRanked[T any](s []T, key func(T) (float64, int)) {
	sort.SliceStable(s, func(a, b int) bool {
		sa, ka := key(s[a])
		sb, kb := key(s[b])
		if sa != sb {
			return sa > sb
		}
		return ka < kb
	})
}

// frontier simulates selective protection. Instructions are protected
// greedily by SDC mass per unit overhead (the classic knapsack-relaxation
// order); protecting an instruction converts its entire SDC mass to
// detected and leaves every other outcome untouched — the composition
// argument for why per-instruction deltas sum is in DESIGN.md §3.10. The
// frontier always ranks by SDC regardless of Options.RankBy: detection is
// what duplicate-and-compare buys, and DUE mass is already detected.
//
// With no budgets, one point per greedy prefix is emitted (point 0 = no
// protection). With budgets, each budget gets the largest prefix whose
// modeled overhead fits. Either way resilience is monotone in budget by
// construction: a larger budget admits a superset prefix, and each
// protected instruction moves SDC mass to detected without creating any.
func frontier(insts map[int]*groupAcc, dynCount []int64, totalDyn int64,
	dist fault.Dist, budgets []float64) []report.FrontierPoint {
	type cand struct {
		pc   int
		sdcW float64
		cost float64
	}
	cands := make([]cand, 0, len(insts))
	for pc, g := range insts {
		cands = append(cands, cand{pc: pc, sdcW: g.sdc, cost: overheadPct(dynCount[pc], totalDyn)})
	}
	// Greedy order: SDC mass per unit overhead, descending; ties by
	// ascending PC. Every sampled PC executed at least once, so cost > 0.
	sort.Slice(cands, func(a, b int) bool {
		ra := cands[a].sdcW / cands[a].cost
		rb := cands[b].sdcW / cands[b].cost
		if ra != rb {
			return ra > rb
		}
		return cands[a].pc < cands[b].pc
	})

	totalW := dist.Total()
	point := func(k int, budget *float64) report.FrontierPoint {
		var overhead, detectedW float64
		var pcs []int
		for _, c := range cands[:k] {
			overhead += c.cost
			detectedW += c.sdcW
			pcs = append(pcs, c.pc)
		}
		p := report.FrontierPoint{
			BudgetPct:   budget,
			Protected:   k,
			PCs:         pcs,
			OverheadPct: overhead,
		}
		if totalW > 0 {
			p.SDCPct = (dist.W[fault.SDC] - detectedW) / totalW * 100
			p.DetectedPct = detectedW / totalW * 100
		}
		return p
	}

	if len(budgets) == 0 {
		out := make([]report.FrontierPoint, 0, len(cands)+1)
		for k := 0; k <= len(cands); k++ {
			out = append(out, point(k, nil))
		}
		return out
	}
	out := make([]report.FrontierPoint, 0, len(budgets))
	for _, b := range budgets {
		k := 0
		overhead := 0.0
		for k < len(cands) && overhead+cands[k].cost <= b {
			overhead += cands[k].cost
			k++
		}
		budget := b
		out = append(out, point(k, &budget))
	}
	return out
}
