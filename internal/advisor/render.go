package advisor

import (
	"fmt"
	"io"

	"repro/internal/report"
	"repro/internal/textplot"
)

// Render writes the human-readable advice: a campaign header, the top
// entries of both rankings, the frontier curve, and the recommended
// protection set. top bounds how many ranking rows print (<=0 means all);
// width is the plot width in characters. The JSON document (report.Write
// of the same Advice) always carries every entry — Render only trims the
// terminal view.
func Render(w io.Writer, adv *report.Advice, top, width int) {
	fmt.Fprintf(w, "advice: %s", adv.Kernel)
	if adv.Scale != "" {
		fmt.Fprintf(w, " (%s)", adv.Scale)
	}
	fmt.Fprintf(w, " model=%s sites=%d seed=%d rank-by=%s confidence=%g\n",
		adv.Model, adv.Sites, adv.Seed, adv.RankBy, adv.Confidence)
	fmt.Fprintf(w, "overall: masked %.2f%%  sdc %.2f%%  other %.2f%%  (%d experiments)\n",
		adv.Profile.MaskedPct, adv.Profile.SDCPct, adv.Profile.OtherPct, adv.Profile.Experiments)
	if !adv.DMRSound {
		fmt.Fprintf(w, "note: duplicate-and-compare is not a sound detector for model %s; the frontier is an upper bound (DESIGN.md §3.10)\n", adv.Model)
	}

	fmt.Fprintf(w, "\nmost vulnerable threads (of %d sampled):\n", len(adv.Threads))
	fmt.Fprintf(w, "  %6s %4s %8s %8s %8s %8s %19s\n",
		"thread", "cta", "samples", "sdc%", "due%", "score", confLabel(adv))
	for i, t := range adv.Threads {
		if top > 0 && i >= top {
			fmt.Fprintf(w, "  ... %d more\n", len(adv.Threads)-top)
			break
		}
		fmt.Fprintf(w, "  %6d %4d %8d %8.2f %8.2f %8.2f   [%6.2f, %6.2f]\n",
			t.Thread, t.CTA, t.Samples, t.SDCPct, t.DUEPct, t.Score, t.SDCLoPct, t.SDCHiPct)
	}

	fmt.Fprintf(w, "\nmost vulnerable instructions (of %d sampled):\n", len(adv.Instructions))
	fmt.Fprintf(w, "  %4s %8s %8s %8s %8s %19s  %s\n",
		"pc", "samples", "sdc%", "score", "cost%", confLabel(adv), "instr")
	for i, in := range adv.Instructions {
		if top > 0 && i >= top {
			fmt.Fprintf(w, "  ... %d more\n", len(adv.Instructions)-top)
			break
		}
		fmt.Fprintf(w, "  %4d %8d %8.2f %8.2f %8.2f   [%6.2f, %6.2f]  %s\n",
			in.PC, in.Samples, in.SDCPct, in.Score, in.OverheadPct, in.SDCLoPct, in.SDCHiPct, in.Instr)
	}

	if len(adv.Frontier) > 0 {
		fmt.Fprintf(w, "\nprotection frontier (simulated duplicate-and-compare):\n")
		xs := make([]float64, len(adv.Frontier))
		ys := make([]float64, len(adv.Frontier))
		for i, p := range adv.Frontier {
			xs[i], ys[i] = p.OverheadPct, p.SDCPct
		}
		textplot.Curve(w, xs, ys, width, 10, "overhead %", "sdc %")
		last := adv.Frontier[len(adv.Frontier)-1]
		fmt.Fprintf(w, "\nprotect %d instruction(s) %v: sdc %.2f%% -> %.2f%% at +%.2f%% dynamic instructions\n",
			last.Protected, last.PCs, adv.Profile.SDCPct, last.SDCPct, last.OverheadPct)
	}
}

// confLabel renders the confidence-interval column header.
func confLabel(adv *report.Advice) string {
	return fmt.Sprintf("sdc %g%% CI", adv.Confidence*100)
}
