// Package advisor turns a completed injection campaign into selective-
// hardening advice: a per-thread and per-static-instruction vulnerability
// ranking (SDC / DUE / masked rates with Wilson-interval confidence
// bounds), and a simulated protection frontier — duplicate-and-compare on
// a chosen instruction set converts the set's SDC mass to detected, at a
// cost modeled from the profile's per-instruction dynamic counts. It is
// the follow-up paper's "partial protection" idea (Yang et al., arXiv
// 2103.02825) rebuilt on this repo's campaign data.
//
// Input construction is deliberately split from analysis: FromCampaign
// attributes a live fault.CampaignResult, FromJournal attributes a
// replayed journal, and both produce the same record stream for equal
// campaigns, so Analyze — and therefore the emitted report.Advice JSON —
// is byte-identical across the two paths. DESIGN.md §3.10 documents the
// statistical model and the protection-simulation composition argument.
package advisor

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/journal"
	"repro/internal/trace"
)

// SiteRecord is one attributed injection outcome: the thread and dynamic
// instruction that took the fault, the static instruction executing there,
// the outcome, and the site's population weight.
type SiteRecord struct {
	Thread  int
	DynInst int64
	PC      int
	Outcome fault.Outcome
	Weight  float64
}

// Input is a campaign prepared for analysis: its identity, the attributed
// outcome records in campaign-index order, and the kernel profile the
// overhead model reads dynamic instruction counts from.
type Input struct {
	Kernel string
	Scale  string
	Seed   int64
	Model  fault.Model
	Sites  int
	// Records holds one attributed outcome per campaign site, in campaign
	// index order (the order aggregation must follow for determinism).
	Records []SiteRecord
	// Prof is the kernel's dynamic profile.
	Prof *trace.Profile
}

// FromCampaign attributes a live campaign result. The campaign must have
// run with CampaignOptions.KeepPerSite over exactly these sites and model
// on t, unsharded and complete.
func FromCampaign(t *fault.Target, kernel, scale string, seed int64, model fault.Model,
	sites []fault.WeightedSite, res *fault.CampaignResult) (*Input, error) {
	attributed, err := res.Attributed(t, model, sites)
	if err != nil {
		return nil, err
	}
	recs := make([]SiteRecord, len(attributed))
	for i, a := range attributed {
		recs[i] = SiteRecord{
			Thread:  a.Site.Thread,
			DynInst: a.Site.DynInst,
			PC:      a.PC,
			Outcome: a.Outcome,
			Weight:  a.Weight,
		}
	}
	return &Input{
		Kernel:  kernel,
		Scale:   scale,
		Seed:    seed,
		Model:   model,
		Sites:   len(sites),
		Records: recs,
		Prof:    t.Profile(),
	}, nil
}

// FromJournal attributes a replayed journal (one file via ReadFile, or a
// sharded campaign recombined via Merge) against the target it was
// recorded on. The journal must be complete — a ranking from a partial
// campaign would be biased toward whichever sites finished first — and
// every record is validated against t's profile, so a journal replayed
// onto the wrong build fails loudly instead of mis-attributing.
func FromJournal(t *fault.Target, fp journal.Fingerprint, recs []journal.Record) (*Input, error) {
	model, err := fault.ParseModel(fp.Model)
	if err != nil {
		return nil, err
	}
	sorted, err := journal.Attributed(fp, recs, true)
	if err != nil {
		return nil, err
	}
	prof := t.Profile()
	out := make([]SiteRecord, len(sorted))
	for i, r := range sorted {
		if r.Thread >= len(prof.Threads) {
			return nil, fmt.Errorf("advisor: site %d names thread %d but the target has %d threads (journal from a different kernel or scale?)",
				r.Index, r.Thread, len(prof.Threads))
		}
		tp := &prof.Threads[r.Thread]
		if r.DynInst >= tp.ICnt {
			return nil, fmt.Errorf("advisor: site %d names dynamic instruction %d but thread %d retires %d (journal from a different kernel or scale?)",
				r.Index, r.DynInst, r.Thread, tp.ICnt)
		}
		o := fault.Outcome(r.Outcome)
		if !o.Valid() {
			return nil, fmt.Errorf("advisor: site %d holds unknown outcome %d", r.Index, r.Outcome)
		}
		out[i] = SiteRecord{
			Thread:  r.Thread,
			DynInst: r.DynInst,
			PC:      gpusim.PC(tp.PCs[r.DynInst]),
			Outcome: o,
			Weight:  r.Weight,
		}
	}
	return &Input{
		Kernel:  fp.Kernel,
		Scale:   fp.Scale,
		Seed:    fp.Seed,
		Model:   model,
		Sites:   fp.Sites,
		Records: out,
		Prof:    prof,
	}, nil
}

// Ranking criteria.
const (
	// RankSDC orders by the group's weighted SDC share.
	RankSDC = "sdc"
	// RankDUE orders by the group's weighted DUE (crash+hang) share.
	RankDUE = "due"
	// RankSeverity orders by SDC share plus a quarter of the DUE share:
	// silent corruption dominates, but a group that also crashes often is
	// worse than one that doesn't (the SDC-pattern severity weighting).
	RankSeverity = "severity"
)

// Options tunes Analyze.
type Options struct {
	// RankBy is the ranking criterion: RankSDC (default), RankDUE or
	// RankSeverity.
	RankBy string
	// Confidence is the Wilson-interval confidence level (default 0.95).
	Confidence float64
	// Budgets, when non-empty, sweeps the frontier over these overhead
	// budgets (percent) instead of emitting every greedy prefix. Sorted
	// and deduplicated before use.
	Budgets []float64
}

// normalize applies defaults and validates.
func (o Options) normalize() (Options, error) {
	if o.RankBy == "" {
		o.RankBy = RankSDC
	}
	switch o.RankBy {
	case RankSDC, RankDUE, RankSeverity:
	default:
		return o, fmt.Errorf("advisor: unknown rank-by %q (want %s, %s or %s)",
			o.RankBy, RankSDC, RankDUE, RankSeverity)
	}
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		return o, fmt.Errorf("advisor: confidence %v out of range (0,1)", o.Confidence)
	}
	if len(o.Budgets) > 0 {
		b := make([]float64, 0, len(o.Budgets))
		for _, v := range o.Budgets {
			if v < 0 {
				return o, fmt.Errorf("advisor: negative budget %v", v)
			}
			b = append(b, v)
		}
		sort.Float64s(b)
		dedup := b[:1]
		for _, v := range b[1:] {
			if v != dedup[len(dedup)-1] {
				dedup = append(dedup, v)
			}
		}
		o.Budgets = dedup
	}
	return o, nil
}

// ParseBudgets parses a comma-separated list of overhead budgets
// ("5,10,25.5") as percentages. Shared by the fsadvise -budget flag and
// the service's ?budget= query parameter so both paths accept the same
// syntax.
func ParseBudgets(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("advisor: bad budget %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// DMRSound reports whether instruction-level duplicate-and-compare is a
// sound detector for the model's faults: DMR re-executes an instruction
// and compares destination values, which catches transient corruption of
// the destination (dest-value, dest-double, dest-byte, lane-correlated)
// but not address faults that corrupt memory state directly, nor
// persistent stuck-at faults in scheduler state that corrupt both copies
// identically. For unsound models the frontier is still emitted — as an
// upper bound on what DMR could achieve — with dmr_sound=false in the
// report.
func DMRSound(m fault.Model) bool {
	switch m {
	case fault.ModelDestValue, fault.ModelDestDouble, fault.ModelDestByte, fault.ModelLaneCorrelated:
		return true
	}
	return false
}
