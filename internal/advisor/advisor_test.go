package advisor_test

import (
	"math"
	"testing"

	"repro/internal/advisor"
	"repro/internal/fault"
	"repro/internal/ptx"
	"repro/internal/stats"
	"repro/internal/trace"
)

// fixtureInput hand-builds a campaign whose advice is computable on paper:
// a three-instruction program, two single-thread CTAs, and four outcomes.
//
//	dynamic counts: pc0 ×2, pc1 ×1, pc2 ×2 (total 5)
//	records:        (t0,pc0,SDC) (t0,pc1,Masked) (t1,pc0,SDC) (t1,pc2,Crash)
//
// So: overall masked 25% / sdc 50% / due 25%; both threads are 50% SDC;
// pc0 is 100% SDC with modeled cost 2*2/5 = 80%, pc1 costs 40%, pc2 80%.
func fixtureInput(t *testing.T) *advisor.Input {
	t.Helper()
	prog, err := ptx.Assemble("fx", `
		add.u32 $r0, $r0, 0x00000001
		mul.lo.u32 $r1, $r0, $r0
		exit
	`)
	if err != nil {
		t.Fatal(err)
	}
	prof := &trace.Profile{
		Prog: prog,
		Threads: []trace.ThreadProfile{
			{ICnt: 3, PCs: []uint16{0, 1, 2}},
			{ICnt: 2, PCs: []uint16{0, 2}},
		},
		ThreadsPerCTA: 1,
	}
	return &advisor.Input{
		Kernel: "fx",
		Scale:  "small",
		Seed:   1,
		Model:  fault.ModelDestValue,
		Sites:  4,
		Records: []advisor.SiteRecord{
			{Thread: 0, DynInst: 0, PC: 0, Outcome: fault.SDC, Weight: 1},
			{Thread: 0, DynInst: 1, PC: 1, Outcome: fault.Masked, Weight: 1},
			{Thread: 1, DynInst: 0, PC: 0, Outcome: fault.SDC, Weight: 1},
			{Thread: 1, DynInst: 1, PC: 2, Outcome: fault.Crash, Weight: 1},
		},
		Prof: prof,
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestAnalyzeFixture pins the exact hand-computed ranking and frontier.
func TestAnalyzeFixture(t *testing.T) {
	adv, err := advisor.Analyze(fixtureInput(t), advisor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(adv.Profile.MaskedPct, 25) || !almost(adv.Profile.SDCPct, 50) || !almost(adv.Profile.OtherPct, 25) {
		t.Fatalf("profile %+v, want 25/50/25", adv.Profile)
	}
	if !adv.DMRSound {
		t.Fatal("dest-value must be DMR-sound")
	}

	// Threads tie at 50% SDC; the tie breaks by ascending id, and thread k
	// sits in CTA k (one thread per CTA).
	if len(adv.Threads) != 2 {
		t.Fatalf("got %d thread ranks, want 2", len(adv.Threads))
	}
	for i, tr := range adv.Threads {
		if tr.Thread != i || tr.CTA != i {
			t.Fatalf("rank %d is thread %d cta %d, want %d/%d", i, tr.Thread, tr.CTA, i, i)
		}
		if tr.Samples != 2 || !almost(tr.SDCPct, 50) || !almost(tr.Score, 50) {
			t.Fatalf("thread %d stats %+v, want 2 samples at 50%% SDC", tr.Thread, tr.RankStats)
		}
	}
	// Uniform unit weights: the Kish effective sample size equals the raw
	// count exactly, so the Wilson bounds match the count-based interval
	// (1 of 2) bit for bit.
	if adv.Threads[0].EffectiveN != 2 {
		t.Fatalf("uniform-weight effective n = %v, want exactly 2", adv.Threads[0].EffectiveN)
	}
	lo, hi := stats.WilsonInterval(1, 2, 0.95)
	if !almost(adv.Threads[0].SDCLoPct, lo*100) || !almost(adv.Threads[0].SDCHiPct, hi*100) {
		t.Fatalf("thread CI [%v,%v], want [%v,%v]",
			adv.Threads[0].SDCLoPct, adv.Threads[0].SDCHiPct, lo*100, hi*100)
	}

	// Instruction ranking: pc0 (100% SDC) first, then pc1/pc2 tied at 0.
	if len(adv.Instructions) != 3 {
		t.Fatalf("got %d instruction ranks, want 3", len(adv.Instructions))
	}
	wantPC := []int{0, 1, 2}
	wantScore := []float64{100, 0, 0}
	wantDyn := []int64{2, 1, 2}
	wantCost := []float64{80, 40, 80}
	for i, in := range adv.Instructions {
		if in.PC != wantPC[i] || !almost(in.Score, wantScore[i]) {
			t.Fatalf("rank %d is pc%d score %v, want pc%d score %v", i, in.PC, in.Score, wantPC[i], wantScore[i])
		}
		if in.DynCount != wantDyn[i] || !almost(in.OverheadPct, wantCost[i]) {
			t.Fatalf("pc%d dyn/cost %d/%v, want %d/%v", in.PC, in.DynCount, in.OverheadPct, wantDyn[i], wantCost[i])
		}
		if in.Instr == "" {
			t.Fatalf("pc%d has no disassembly", in.PC)
		}
	}

	// Frontier, greedy by SDC mass per cost: pc0 (2/80), then pc1, pc2.
	wantFrontier := []struct {
		protected   int
		overhead    float64
		sdc         float64
		detected    float64
	}{
		{0, 0, 50, 0},
		{1, 80, 0, 50},
		{2, 120, 0, 50},
		{3, 200, 0, 50},
	}
	if len(adv.Frontier) != len(wantFrontier) {
		t.Fatalf("got %d frontier points, want %d", len(adv.Frontier), len(wantFrontier))
	}
	for i, p := range adv.Frontier {
		w := wantFrontier[i]
		if p.Protected != w.protected || !almost(p.OverheadPct, w.overhead) ||
			!almost(p.SDCPct, w.sdc) || !almost(p.DetectedPct, w.detected) {
			t.Fatalf("frontier[%d] = %+v, want %+v", i, p, w)
		}
		if p.BudgetPct != nil {
			t.Fatalf("frontier[%d] carries a budget on the default sweep", i)
		}
	}
	if adv.Frontier[1].PCs[0] != 0 {
		t.Fatalf("first protected pc %d, want 0", adv.Frontier[1].PCs[0])
	}
}

// TestAnalyzeWeightedESS pins the Kish-corrected Wilson bounds on a
// weighted campaign where the effective sample size differs from the raw
// record count. Thread 0 carries three records with weights {4, 1, 1}:
// ESS = (Σw)²/Σw² = 36/18 = 2, not 3, and the interval must be the Wilson
// interval on the weighted SDC proportion (4/6) at 2 effective trials —
// strictly wider than the raw-count interval the old code computed.
func TestAnalyzeWeightedESS(t *testing.T) {
	prog, err := ptx.Assemble("wess", `
		add.u32 $r0, $r0, 0x00000001
		mul.lo.u32 $r1, $r0, $r0
		exit
	`)
	if err != nil {
		t.Fatal(err)
	}
	prof := &trace.Profile{
		Prog: prog,
		Threads: []trace.ThreadProfile{
			{ICnt: 3, PCs: []uint16{0, 1, 2}},
		},
		ThreadsPerCTA: 1,
	}
	in := &advisor.Input{
		Kernel: "wess",
		Seed:   1,
		Model:  fault.ModelDestValue,
		Sites:  3,
		Records: []advisor.SiteRecord{
			{Thread: 0, DynInst: 0, PC: 0, Outcome: fault.SDC, Weight: 4},
			{Thread: 0, DynInst: 1, PC: 1, Outcome: fault.Masked, Weight: 1},
			{Thread: 0, DynInst: 2, PC: 2, Outcome: fault.Masked, Weight: 1},
		},
		Prof: prof,
	}
	adv, err := advisor.Analyze(in, advisor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Threads) != 1 {
		t.Fatalf("got %d thread ranks, want 1", len(adv.Threads))
	}
	tr := adv.Threads[0]
	if tr.Samples != 3 {
		t.Fatalf("samples = %d, want 3", tr.Samples)
	}
	if tr.EffectiveN != 2 {
		t.Fatalf("effective n = %v, want exactly 2 (ESS of weights {4,1,1})", tr.EffectiveN)
	}
	// Rates remain the weighted shares.
	if !almost(tr.SDCPct, 400.0/6) || !almost(tr.MaskedPct, 200.0/6) {
		t.Fatalf("rates %+v, want sdc 66.67%% masked 33.33%%", tr.RankStats)
	}
	// Bounds come from the weighted proportion at the effective sample
	// size, bit for bit.
	lo, hi := stats.WilsonProportionInterval(4.0/6.0, 2, 0.95)
	if tr.SDCLoPct != lo*100 || tr.SDCHiPct != hi*100 {
		t.Fatalf("CI [%v,%v], want [%v,%v]", tr.SDCLoPct, tr.SDCHiPct, lo*100, hi*100)
	}
	// And they are wider than the raw-count interval would have been —
	// the bug this pins: 1-of-3 raw counts understate the uncertainty of
	// a 4-1-1 weighted group.
	rawLo, rawHi := stats.WilsonInterval(1, 3, 0.95)
	if hi-lo <= rawHi-rawLo {
		t.Fatalf("ESS interval [%v,%v] not wider than raw-count [%v,%v]", lo, hi, rawLo, rawHi)
	}

	// The single-record pc0 group is one observation either way: ESS of a
	// lone weight is exactly 1 regardless of its magnitude.
	for _, ir := range adv.Instructions {
		if ir.PC == 0 && ir.EffectiveN != 1 {
			t.Fatalf("pc0 effective n = %v, want 1", ir.EffectiveN)
		}
	}
}

// TestAnalyzeBudgets pins the budget sweep: each budget gets the largest
// greedy prefix whose modeled overhead fits.
func TestAnalyzeBudgets(t *testing.T) {
	adv, err := advisor.Analyze(fixtureInput(t), advisor.Options{Budgets: []float64{0, 50, 100, 200}})
	if err != nil {
		t.Fatal(err)
	}
	wantProtected := []int{0, 0, 1, 3}
	if len(adv.Frontier) != len(wantProtected) {
		t.Fatalf("got %d frontier points, want %d", len(adv.Frontier), len(wantProtected))
	}
	for i, p := range adv.Frontier {
		if p.BudgetPct == nil {
			t.Fatalf("frontier[%d] lost its budget", i)
		}
		if p.Protected != wantProtected[i] {
			t.Fatalf("budget %v protects %d instructions, want %d", *p.BudgetPct, p.Protected, wantProtected[i])
		}
		if p.OverheadPct > *p.BudgetPct {
			t.Fatalf("budget %v exceeded: overhead %v", *p.BudgetPct, p.OverheadPct)
		}
	}
}

// TestFrontierMonotone is the property test: on a randomized campaign,
// more budget never lowers resilience (SDC never rises, detection never
// falls) — along the default per-prefix sweep and across a budget sweep.
func TestFrontierMonotone(t *testing.T) {
	prog, err := ptx.Assemble("mono", `
		add.u32 $r0, $r0, 0x00000001
		mul.lo.u32 $r1, $r0, $r0
		sub.u32 $r2, $r1, $r0
		and.b32 $r3, $r2, $r1
		exit
	`)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(42).Split("monotone")
	const nThreads, nPCs = 8, 5
	prof := &trace.Profile{Prog: prog, ThreadsPerCTA: 4}
	for i := 0; i < nThreads; i++ {
		n := 3 + rng.Intn(8)
		tp := trace.ThreadProfile{ICnt: int64(n)}
		for k := 0; k < n; k++ {
			tp.PCs = append(tp.PCs, uint16(rng.Intn(nPCs)))
		}
		prof.Threads = append(prof.Threads, tp)
	}
	in := &advisor.Input{
		Kernel: "mono", Seed: 42, Model: fault.ModelDestValue, Prof: prof,
	}
	outcomes := []fault.Outcome{fault.Masked, fault.SDC, fault.Crash, fault.Hang}
	for i := 0; i < 200; i++ {
		th := rng.Intn(nThreads)
		dyn := rng.Int63n(int64(len(prof.Threads[th].PCs)))
		in.Records = append(in.Records, advisor.SiteRecord{
			Thread:  th,
			DynInst: dyn,
			PC:      int(prof.Threads[th].PCs[dyn]),
			Outcome: outcomes[rng.Intn(4)],
			Weight:  1 + float64(rng.Intn(3)),
		})
	}
	in.Sites = len(in.Records)

	adv, err := advisor.Analyze(in, advisor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(adv.Frontier); i++ {
		prev, cur := adv.Frontier[i-1], adv.Frontier[i]
		if cur.OverheadPct < prev.OverheadPct-1e-9 {
			t.Fatalf("overhead fell between prefixes %d and %d", i-1, i)
		}
		if cur.SDCPct > prev.SDCPct+1e-9 {
			t.Fatalf("SDC rose with more protection: %v -> %v", prev.SDCPct, cur.SDCPct)
		}
		if cur.DetectedPct < prev.DetectedPct-1e-9 {
			t.Fatalf("detection fell with more protection: %v -> %v", prev.DetectedPct, cur.DetectedPct)
		}
	}

	budgets := []float64{0, 5, 10, 20, 40, 80, 160, 320}
	adv, err = advisor.Analyze(in, advisor.Options{Budgets: budgets})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(adv.Frontier); i++ {
		prev, cur := adv.Frontier[i-1], adv.Frontier[i]
		if cur.SDCPct > prev.SDCPct+1e-9 {
			t.Fatalf("SDC rose with a larger budget: %v -> %v", prev.SDCPct, cur.SDCPct)
		}
		if cur.DetectedPct < prev.DetectedPct-1e-9 {
			t.Fatalf("detection fell with a larger budget: %v -> %v", prev.DetectedPct, cur.DetectedPct)
		}
	}
}

// TestOptionsValidation rejects unusable options loudly.
func TestOptionsValidation(t *testing.T) {
	in := fixtureInput(t)
	if _, err := advisor.Analyze(in, advisor.Options{RankBy: "chaos"}); err == nil {
		t.Fatal("want error for unknown rank-by")
	}
	if _, err := advisor.Analyze(in, advisor.Options{Confidence: 1.5}); err == nil {
		t.Fatal("want error for confidence out of range")
	}
	if _, err := advisor.Analyze(in, advisor.Options{Budgets: []float64{-1}}); err == nil {
		t.Fatal("want error for negative budget")
	}
	if _, err := advisor.ParseBudgets("5,x"); err == nil {
		t.Fatal("want error for malformed budget list")
	}
	bs, err := advisor.ParseBudgets(" 5, 10 ,2.5 ")
	if err != nil || len(bs) != 3 {
		t.Fatalf("ParseBudgets = %v, %v", bs, err)
	}
}

// TestRankBy checks the alternative criteria reorder the ranking.
func TestRankBy(t *testing.T) {
	in := fixtureInput(t)
	adv, err := advisor.Analyze(in, advisor.Options{RankBy: advisor.RankDUE})
	if err != nil {
		t.Fatal(err)
	}
	// Under DUE ranking pc2 (the crash) leads.
	if adv.Instructions[0].PC != 2 || !almost(adv.Instructions[0].Score, 100) {
		t.Fatalf("DUE ranking leads with pc%d score %v, want pc2 score 100",
			adv.Instructions[0].PC, adv.Instructions[0].Score)
	}
	adv, err = advisor.Analyze(in, advisor.Options{RankBy: advisor.RankSeverity})
	if err != nil {
		t.Fatal(err)
	}
	// Severity = sdc + due/4: pc0 scores 100, pc2 scores 25, pc1 scores 0.
	if adv.Instructions[0].PC != 0 || adv.Instructions[1].PC != 2 {
		t.Fatalf("severity ranking = pc%d, pc%d, want pc0, pc2",
			adv.Instructions[0].PC, adv.Instructions[1].PC)
	}
	if !almost(adv.Instructions[1].Score, 25) {
		t.Fatalf("severity score for pc2 = %v, want 25", adv.Instructions[1].Score)
	}
}
