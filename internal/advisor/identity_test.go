package advisor_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/advisor"
	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/journal"
	"repro/internal/ptx"
	"repro/internal/report"
	"repro/internal/stats"
)

// identityTarget builds a small two-CTA kernel with a loop, enough outcome
// variety to exercise every ranking bucket.
func identityTarget(t *testing.T) *fault.Target {
	t.Helper()
	prog, err := ptx.Assemble("idk", `
		cvt.u32.u16 $r0, %tid.x
		cvt.u32.u16 $r1, %ctaid.x
		cvt.u32.u16 $r2, %ntid.x
		mad.lo.u32 $r0, $r1, $r2, $r0
		shl.u32 $r3, $r0, 0x00000002
		add.u32 $r3, $r3, s[0x0010]
		ld.global.u32 $r4, [$r3]
		mul.lo.u32 $r4, $r4, $r4
		add.u32 $r5, $r3, s[0x0014]
		st.global.u32 [$r5], $r4
		exit
	`)
	if err != nil {
		t.Fatal(err)
	}
	dev := gpusim.NewDevice(4 * 32)
	in := make([]uint32, 8)
	for i := range in {
		in[i] = uint32(3*i + 2)
	}
	dev.WriteWords(0, in)
	return &fault.Target{
		Name:   "idk",
		Prog:   prog,
		Grid:   gpusim.Dim3{X: 2, Y: 1, Z: 1},
		Block:  gpusim.Dim3{X: 4, Y: 1, Z: 1},
		Params: []uint32{0, 4 * 8},
		Init:   dev,
		Output: []fault.Range{{Off: 4 * 8, Len: 4 * 8}},
	}
}

// TestLiveJournalByteIdentity is the tentpole's acceptance property at the
// package level: advising from a live in-process campaign and from that
// campaign's replayed journal must produce byte-identical JSON documents.
func TestLiveJournalByteIdentity(t *testing.T) {
	tgt := identityTarget(t)
	if err := tgt.Prepare(); err != nil {
		t.Fatal(err)
	}
	const seed, nSites = 9, 120
	model := fault.ModelDestValue
	space := fault.NewSpace(tgt.Profile())
	rng := stats.NewRNG(seed).Split("baseline")
	sites := fault.Uniform(space.RandomModel(rng, nSites, model))

	shard := fault.Shard{Index: 0, Count: 1}
	fp := tgt.JournalFingerprint(model, len(sites), "small", seed, shard)
	path := filepath.Join(t.TempDir(), "identity.journal")
	j, err := journal.Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fault.RunModel(tgt, sites, model, fault.CampaignOptions{
		KeepPerSite: true,
		Journal:     j,
		Shard:       shard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	liveIn, err := advisor.FromCampaign(tgt, fp.Kernel, fp.Scale, seed, model, sites, res)
	if err != nil {
		t.Fatal(err)
	}
	readFP, recs, err := journal.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	journalIn, err := advisor.FromJournal(tgt, readFP, recs)
	if err != nil {
		t.Fatal(err)
	}

	for _, opt := range []advisor.Options{
		{},
		{RankBy: advisor.RankSeverity, Confidence: 0.99, Budgets: []float64{2, 10, 50}},
	} {
		var live, replay bytes.Buffer
		adv, err := advisor.Analyze(liveIn, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := report.Write(&live, adv); err != nil {
			t.Fatal(err)
		}
		adv, err = advisor.Analyze(journalIn, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := report.Write(&replay, adv); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(live.Bytes(), replay.Bytes()) {
			t.Fatalf("live and journal advice differ under %+v:\nlive:   %s\nreplay: %s",
				opt, live.String(), replay.String())
		}
	}
}

// TestFromJournalRejectsWrongTarget replays a journal against a target
// with a different thread population and expects a loud failure, not
// silent mis-attribution.
func TestFromJournalRejectsWrongTarget(t *testing.T) {
	tgt := identityTarget(t)
	if err := tgt.Prepare(); err != nil {
		t.Fatal(err)
	}
	nThreads := len(tgt.Profile().Threads)
	fp := journal.Fingerprint{Kernel: "idk", Seed: 1, Model: "dest-value", Sites: 1, ShardCount: 1}
	recs := []journal.Record{{Index: 0, Thread: nThreads, DynInst: 0, Bit: 0, Outcome: 0, Weight: 1}}
	if _, err := advisor.FromJournal(tgt, fp, recs); err == nil {
		t.Fatal("want error for out-of-range thread, got nil")
	}
	recs[0].Thread = 0
	recs[0].DynInst = 1 << 40
	if _, err := advisor.FromJournal(tgt, fp, recs); err == nil {
		t.Fatal("want error for out-of-range dynamic instruction, got nil")
	}
}
