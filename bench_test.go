// Benchmarks regenerating each of the paper's tables and figures (one
// benchmark per artifact; see DESIGN.md section 4 for the mapping), plus
// microbenchmarks of the substrates they run on. Multi-kernel artifacts use
// a representative kernel subset so a full -bench=. sweep stays affordable
// on a single core; cmd/experiments regenerates the complete versions.
package repro_test

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/kernels"
	"repro/internal/ptx"
	"repro/internal/stats"
)

// benchCfg builds the trimmed experiment configuration used by the
// per-artifact benchmarks.
func benchCfg(subset ...string) experiments.Config {
	return experiments.Config{
		Scale:        kernels.ScaleSmall,
		BaselineRuns: 400,
		Seed:         1,
		Out:          io.Discard,
		Kernels:      subset,
	}
}

// benchSubset is a cross-section of the suite: one kernel from each Fig. 10
// class — with instruction commonality (2DCONV), without (Gaussian K1), and
// single-representative (GEMM).
var benchSubset = []string{"2DCONV K1", "Gaussian K1", "GEMM K1"}

func runExperiment(b *testing.B, id string, cfg experiments.Config) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1", benchCfg(benchSubset...)) }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2", benchCfg()) }
func BenchmarkFig2(b *testing.B)   { runExperiment(b, "fig2", benchCfg("2DCONV K1")) }
func BenchmarkFig3(b *testing.B)   { runExperiment(b, "fig3", benchCfg("2DCONV K1")) }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3", benchCfg()) }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4", benchCfg()) }
func BenchmarkFig4(b *testing.B)   { runExperiment(b, "fig4", benchCfg("2DCONV K1")) }
func BenchmarkFig5(b *testing.B)   { runExperiment(b, "fig5", benchCfg()) }
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5", benchCfg()) }
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6", benchCfg("2DCONV K1")) }
func BenchmarkTable7(b *testing.B) { runExperiment(b, "table7", benchCfg(benchSubset...)) }
func BenchmarkFig6(b *testing.B)   { runExperiment(b, "fig6", benchCfg("PathFinder K1")) }
func BenchmarkFig7(b *testing.B)   { runExperiment(b, "fig7", benchCfg("2DCONV K1")) }
func BenchmarkFig8(b *testing.B)   { runExperiment(b, "fig8", benchCfg("2DCONV K1")) }
func BenchmarkFig9(b *testing.B)   { runExperiment(b, "fig9", benchCfg(benchSubset...)) }
func BenchmarkFig10(b *testing.B)  { runExperiment(b, "fig10", benchCfg(benchSubset...)) }

// Extension benchmarks (not paper artifacts).
func BenchmarkModels(b *testing.B)     { runExperiment(b, "models", benchCfg("2DCONV K1")) }
func BenchmarkAblation(b *testing.B)   { runExperiment(b, "ablation", benchCfg("2DCONV K1")) }
func BenchmarkExhaustive(b *testing.B) { runExperiment(b, "exhaustive", benchCfg("Gaussian K125")) }

// --- substrate microbenchmarks -----------------------------------------

// BenchmarkSimulatorThroughput measures raw interpreter speed: dynamic
// instructions per second on the GEMM inner loop (reported as ns/op per
// kernel execution; TotalDyn instructions each).
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, _ := kernels.ByName("GEMM K1")
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	launch := &gpusim.Launch{
		Prog:   inst.Target.Prog,
		Grid:   inst.Target.Grid,
		Block:  inst.Target.Block,
		Params: inst.Target.Params,
	}
	var dyn int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := gpusim.Execute(inst.Target.Init.Clone(), launch)
		if err != nil {
			b.Fatal(err)
		}
		if res.Trap != nil {
			b.Fatal(res.Trap)
		}
		dyn = res.TotalDyn
	}
	b.ReportMetric(float64(dyn), "instrs/exec")
}

// benchInterpStep measures the raw per-instruction dispatch cost on an
// ALU-heavy long loop via a bare Execute — no campaign machinery, no
// tracing, no injection — so the compiled plan's fast paths (pre-decoded
// closures, straight-run batching, warp batching) are the only thing on the
// profile. The BenchmarkInterpStep* / BenchmarkInterpStepReference ratio is
// the headline win of plan compilation (DESIGN.md §3.8).
func benchInterpStep(b *testing.B, warpSize int, interpret bool) {
	b.Helper()
	prog, err := ptx.Assemble("stepbench", `
		cvt.u32.u16 $r0, %tid.x
		mov.u32 $r4, $r124                   // acc = 0
		mov.u32 $r5, $r124                   // i = 0
		mov.u32 $r6, s[0x0014]               // iters
		lloop: add.u32 $r4, $r4, $r0
		xor.b32 $r4, $r4, $r5
		mad.lo.u32 $r4, $r4, 0x00000003, $r0
		shr.u32 $r7, $r4, 0x00000010
		add.u32 $r4, $r4, $r7
		add.u32 $r5, $r5, 0x00000001
		set.lt.u32.u32 $p0/$o127, $r5, $r6
		@$p0.ne bra lloop
		shl.u32 $r7, $r0, 0x00000002
		add.u32 $r7, $r7, s[0x0010]          // &out[tid]
		st.global.u32 [$r7], $r4
		exit
	`)
	if err != nil {
		b.Fatal(err)
	}
	const threads = 64
	dev := gpusim.NewDevice(threads * 4)
	launch := &gpusim.Launch{
		Prog:      prog,
		Grid:      gpusim.Dim3{X: 1, Y: 1, Z: 1},
		Block:     gpusim.Dim3{X: threads, Y: 1, Z: 1},
		Params:    []uint32{0, 2000},
		Watchdog:  1 << 30,
		WarpSize:  warpSize,
		Interpret: interpret,
	}
	var dyn int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := gpusim.Execute(dev.Clone(), launch)
		if err != nil {
			b.Fatal(err)
		}
		if res.Trap != nil {
			b.Fatal(res.Trap)
		}
		dyn = res.TotalDyn
	}
	b.ReportMetric(float64(dyn), "instrs/exec")
}

// BenchmarkInterpStep and BenchmarkInterpStepWarp run the compiled plan
// under the serial and SIMT-lockstep schedulers; the two Reference variants
// run the identical launches through the reference interpreter
// (Launch.Interpret, the CLI's -compiled=false).
func BenchmarkInterpStep(b *testing.B)              { benchInterpStep(b, 0, false) }
func BenchmarkInterpStepWarp(b *testing.B)          { benchInterpStep(b, 32, false) }
func BenchmarkInterpStepReference(b *testing.B)     { benchInterpStep(b, 0, true) }
func BenchmarkInterpStepWarpReference(b *testing.B) { benchInterpStep(b, 32, true) }

// BenchmarkAssemble measures the PTX assembler on the largest kernel source.
func BenchmarkAssemble(b *testing.B) {
	spec, _ := kernels.ByName("HotSpot K1")
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	src := inst.Target.Prog.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ptx.Assemble("bench", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInjectionRun measures one fault-injection experiment end to end
// (device clone + execution + output comparison).
func BenchmarkInjectionRun(b *testing.B) {
	spec, _ := kernels.ByName("2DCONV K1")
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	if err := inst.Target.Prepare(); err != nil {
		b.Fatal(err)
	}
	space := fault.NewSpace(inst.Target.Profile())
	site := space.Site(space.Total() / 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Target.RunSite(site); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCampaign times a fixed 512-site campaign on GEMM K1 (4 CTAs) with the
// checkpointed fast-forward engine on or off, under a given fault model.
// Each checkpoint/full-run pair quantifies the speedup from skipping
// fault-free prefix CTAs and early-exiting on golden-state convergence; run
// back to back on the same machine for the ratio. Dest-value and dest-double
// share the site sample; mem-addr enumerates its own site kind (one site per
// address bit per dynamic memory instruction) over a thread cross-section.
func benchCampaign(b *testing.B, fullRun bool, model fault.Model) {
	spec, _ := kernels.ByName("GEMM K1")
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	inst.Target.FullRun = fullRun
	if err := inst.Target.Prepare(); err != nil {
		b.Fatal(err)
	}
	space := fault.NewSpace(inst.Target.Profile())
	var sites []fault.WeightedSite
	if model == fault.ModelMemAddr {
		var raw []fault.Site
		for t := 0; t < inst.Target.Threads() && len(raw) < 512; t += 7 {
			raw = append(raw, space.MemAddrSites(t, nil)...)
		}
		if len(raw) > 512 {
			raw = raw[:512]
		}
		sites = fault.Uniform(raw)
	} else {
		sites = fault.Uniform(space.RandomModel(stats.NewRNG(7), 512, model))
	}
	opt := fault.CampaignOptions{Parallelism: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fault.RunModel(inst.Target, sites, model, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignCheckpoint(b *testing.B) { benchCampaign(b, false, fault.ModelDestValue) }
func BenchmarkCampaignFullRun(b *testing.B)    { benchCampaign(b, true, fault.ModelDestValue) }

func BenchmarkCampaignCheckpointDouble(b *testing.B) { benchCampaign(b, false, fault.ModelDestDouble) }
func BenchmarkCampaignFullRunDouble(b *testing.B)    { benchCampaign(b, true, fault.ModelDestDouble) }

func BenchmarkCampaignCheckpointMemAddr(b *testing.B) { benchCampaign(b, false, fault.ModelMemAddr) }
func BenchmarkCampaignFullRunMemAddr(b *testing.B)    { benchCampaign(b, true, fault.ModelMemAddr) }

// The persistent-fault benchmarks price the stuck-at models on the
// checkpointed engine against an explicit full-run reference. Snapshots
// carry the complete scheduler/synchronization ledger (DESIGN.md §3.11),
// so every persistent model — the scheduler-corrupting stuck-active-mask
// included — keeps fast-forward: prefix skip, early exit, and the
// injected thread pinned to the careful tier forever. The FullRun
// reference disables the engine outright, measuring what checkpointing
// buys for a persistent model. (Before §3.11, stuck-active-mask was
// forced to per-site full runs; the old BenchmarkCampaignStuckAtFallback
// that priced that degradation is retired — benchdiff compares only the
// intersection of recordings, so the retirement is gate-neutral.)
func BenchmarkCampaignStuckAtCheckpoint(b *testing.B) {
	benchCampaign(b, false, fault.ModelStuckPred)
}
func BenchmarkCampaignStuckAtMaskCheckpoint(b *testing.B) {
	benchCampaign(b, false, fault.ModelStuckActiveMask)
}
func BenchmarkCampaignStuckAtFullRun(b *testing.B) {
	benchCampaign(b, true, fault.ModelStuckActiveMask)
}

// intraBenchTarget builds a synthetic long-loop kernel for the intra-CTA
// resume benchmarks: 4 CTAs x 16 threads, each thread spinning a 160-iteration
// accumulator loop (~810 dynamic instructions per thread, ~13K per CTA — well
// past the >=4K/CTA regime where mid-CTA resume pays), writing out[gid] last.
func intraBenchTarget(b *testing.B) *fault.Target {
	b.Helper()
	prog, err := ptx.Assemble("longloop", `
		cvt.u32.u16 $r0, %tid.x
		cvt.u32.u16 $r1, %ctaid.x
		cvt.u32.u16 $r2, %ntid.x
		mad.lo.u32 $r3, $r1, $r2, $r0        // gid
		mov.u32 $r4, $r124                   // acc = 0
		mov.u32 $r5, $r124                   // i = 0
		mov.u32 $r6, s[0x0014]               // iters
		lloop: add.u32 $r4, $r4, $r3
		add.u32 $r4, $r4, 0x00000001
		add.u32 $r5, $r5, 0x00000001
		set.lt.u32.u32 $p0/$o127, $r5, $r6
		@$p0.ne bra lloop
		shl.u32 $r7, $r3, 0x00000002
		add.u32 $r7, $r7, s[0x0010]          // &out[gid]
		st.global.u32 [$r7], $r4
		exit
	`)
	if err != nil {
		b.Fatal(err)
	}
	const threads = 4 * 16
	return &fault.Target{
		Name:   "longloop",
		Prog:   prog,
		Grid:   gpusim.Dim3{X: 4, Y: 1, Z: 1},
		Block:  gpusim.Dim3{X: 16, Y: 1, Z: 1},
		Params: []uint32{0, 160},
		Init:   gpusim.NewDevice(threads * 4),
		Output: []fault.Range{{Off: 0, Len: threads * 4}},
	}
}

// benchIntraCampaign times a campaign of late-trace sites (destination writes
// in the last stretch of each thread's dynamic trace — the worst case for
// CTA-boundary-only fast-forward, which must replay the injected CTA's whole
// fault-free prefix) with intra-CTA snapshots auto-tuned or disabled. The
// BenchmarkCampaignIntraCTA / BenchmarkCampaignIntraCTABoundaryOnly ratio is
// the headline win of mid-CTA resume (expected well above 1.4x).
func benchIntraCampaign(b *testing.B, intraStride int) {
	tgt := intraBenchTarget(b)
	tgt.IntraStride = intraStride
	if err := tgt.Prepare(); err != nil {
		b.Fatal(err)
	}
	if intraStride >= 0 && tgt.WarpCheckpoints() == nil {
		b.Fatal("no intra-CTA snapshot store on the long-loop kernel")
	}
	// Sites live in the last CTA's threads so every run fast-forwards the
	// earlier CTAs through the boundary store in both configurations and the
	// measured difference is purely the injected CTA's fault-free prefix.
	prof := tgt.Profile()
	var raw []fault.Site
	for th := tgt.Threads() - 16; th < tgt.Threads(); th++ {
		found := 0
		for dyn := prof.Threads[th].ICnt - 1; dyn >= 0 && found < 16; dyn-- {
			bits := tgt.DestBitsAt(th, dyn)
			if bits == 0 {
				continue
			}
			raw = append(raw, fault.Site{Thread: th, DynInst: dyn, Bit: (th + 7*found) % bits})
			found++
		}
	}
	sites := fault.Uniform(raw)
	opt := fault.CampaignOptions{Parallelism: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fault.Run(tgt, sites, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignIntraCTA(b *testing.B)             { benchIntraCampaign(b, 0) }
func BenchmarkCampaignIntraCTABoundaryOnly(b *testing.B) { benchIntraCampaign(b, -1) }

// benchPipeline runs a trimmed pruning session — plan + spot-check estimate,
// an auto-loop re-plan step, and a three-way sharded campaign — where every
// stage and every shard builds its own Target, the way cmd/fsprune's stages
// and shard workers do. withCache attaches one fresh fault.PreparedCache per
// iteration, so the first stage performs the only golden run and the other
// four targets adopt its profile, checkpoints and golden output from the
// cache; without it, all five pay a full Prepare. Campaigns are kept to a
// single spot-check site per target so the benchmark isolates Prepare
// amortization rather than raw campaign throughput (BenchmarkCampaign*
// covers that).
func benchPipeline(b *testing.B, withCache bool) {
	b.Helper()
	spec, _ := kernels.ByName("HotSpot K1")
	const spotSites = 1
	build := func(cache *fault.PreparedCache) *fault.Target {
		inst, err := spec.Build(kernels.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		inst.Target.Cache = cache
		if err := inst.Target.Prepare(); err != nil {
			b.Fatal(err)
		}
		return inst.Target
	}
	campaign := func(t *fault.Target, sites []fault.WeightedSite) {
		if len(sites) > spotSites {
			sites = sites[:spotSites]
		}
		if _, err := fault.Run(t, sites, fault.CampaignOptions{Parallelism: 1}); err != nil {
			b.Fatal(err)
		}
	}
	// Warm up one full Prepare + campaign outside the timed region so a
	// -benchtime 1x smoke run measures steady-state cost, not first-call
	// lazy initialization and heap growth.
	warm := build(nil)
	campaign(warm, fault.Uniform(fault.NewSpace(warm.Profile()).Random(stats.NewRNG(99), spotSites)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cache *fault.PreparedCache
		if withCache {
			cache = fault.NewPreparedCache(0)
		}
		// Stage 1: prune and spot-check the plan.
		t1 := build(cache)
		plan, err := core.BuildPlan(t1, core.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		campaign(t1, plan.Sites)
		// Stage 2: one auto-loop refinement step (re-plan at a different
		// sample size on a fresh target, as a restarted session would).
		t2 := build(cache)
		plan, err = core.BuildPlan(t2, core.Options{Seed: 1, LoopIters: 2})
		if err != nil {
			b.Fatal(err)
		}
		campaign(t2, plan.Sites)
		// Stage 3: a three-way sharded campaign, each shard on its own target.
		for shard := 0; shard < 3; shard++ {
			ts := build(cache)
			space := fault.NewSpace(ts.Profile())
			campaign(ts, fault.Uniform(space.Random(stats.NewRNG(int64(shard)), spotSites)))
		}
	}
}

// BenchmarkPipelineSharedTarget and BenchmarkPipelineColdPrepare bound the
// amortization from the shared prepared-target cache: identical five-target
// sessions, one golden run versus five. Their ratio is the headline speedup
// the cache buys a multi-stage session (expected well above 1.5x).
func BenchmarkPipelineSharedTarget(b *testing.B) { benchPipeline(b, true) }
func BenchmarkPipelineColdPrepare(b *testing.B)  { benchPipeline(b, false) }

// BenchmarkBuildPlan measures the pruning pipeline itself (no injections):
// profiling reuse, grouping, diffing, sampling, site materialization.
func BenchmarkBuildPlan(b *testing.B) {
	spec, _ := kernels.ByName("HotSpot K1")
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	if err := inst.Target.Prepare(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildPlan(inst.Target, core.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSiteDecode measures flat-index fault-site decoding, the hot path
// of random baseline sampling over huge spaces.
func BenchmarkSiteDecode(b *testing.B) {
	spec, _ := kernels.ByName("MVT K1")
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	if err := inst.Target.Prepare(); err != nil {
		b.Fatal(err)
	}
	space := fault.NewSpace(inst.Target.Profile())
	rng := stats.NewRNG(1)
	total := space.Total()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space.Site(rng.Int63n(total))
	}
}

// BenchmarkProfile measures a full fault-free profiling run with tracing.
func BenchmarkProfile(b *testing.B) {
	spec, _ := kernels.ByName("PathFinder K1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := spec.Build(kernels.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if err := inst.Target.Prepare(); err != nil {
			b.Fatal(err)
		}
	}
}
