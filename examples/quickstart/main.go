// Quickstart: profile a kernel, look at its exhaustive fault-site space,
// prune it with the four-stage pipeline, and estimate its error resilience
// profile — the library's core loop in ~40 lines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kernels"
)

func main() {
	// Pick a workload from the built-in Rodinia/Polybench suite.
	spec, ok := kernels.ByName("2DCONV K1")
	if !ok {
		log.Fatal("kernel not found")
	}
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}

	// Prepare runs the fault-free golden execution: it captures the golden
	// output, per-thread profiles (iCnt, traces), and the hang watchdog.
	target := inst.Target
	if err := target.Prepare(); err != nil {
		log.Fatal(err)
	}

	// Eq. 1: the exhaustive fault-site count — every destination-register
	// bit of every dynamic instruction of every thread.
	space := fault.NewSpace(target.Profile())
	fmt.Printf("%s: %d threads, %d exhaustive fault sites\n",
		target.Name, target.Threads(), space.Total())

	// Progressive pruning: CTA/thread-wise -> instruction-wise ->
	// loop-wise -> bit-wise.
	plan, err := core.BuildPlan(target, core.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)

	// Run one injection experiment per pruned site and aggregate the
	// weighted outcome distribution — the error resilience profile.
	profile, err := plan.Estimate(fault.CampaignOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated resilience profile: %s\n", profile)
	fmt.Printf("fault-site reduction: %.0fx\n", plan.Reduction())
}
