// Resilience2dconv: a full resilience study of one kernel, the way the
// paper's evaluation treats each workload — exhaustive space accounting,
// stage-by-stage pruning, pruned-estimate vs random-baseline comparison,
// and a breakdown of where the SDCs come from (register types, bit
// positions).
//
// Run with: go run ./examples/resilience2dconv
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/stats"
)

func main() {
	spec, _ := kernels.ByName("2DCONV K1")
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	target := inst.Target
	if err := target.Prepare(); err != nil {
		log.Fatal(err)
	}
	prof := target.Profile()
	space := fault.NewSpace(prof)

	fmt.Printf("== %s ==\n", target.Name)
	fmt.Printf("threads: %d (%d CTAs), exhaustive fault sites: %d\n",
		target.Threads(), prof.NumCTAs(), space.Total())

	// Stage-by-stage pruning accounting (the paper's Fig. 10 bars).
	plan, err := core.BuildPlan(target, core.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	s := plan.Stages
	fmt.Printf("pruning: exhaustive %d -> thread %d -> inst %d -> loop %d -> bit %d\n",
		s.Exhaustive, s.Thread, s.Inst, s.Loop, s.Bit)
	for gi, g := range plan.CTAGroups {
		fmt.Printf("  CTA group C-%d: %d CTAs, avg iCnt %.1f\n", gi+1, len(g.Members), g.AvgICnt)
	}

	// Pruned estimate vs a random baseline campaign.
	est, err := plan.Estimate(fault.CampaignOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rng := stats.NewRNG(99)
	baseSites := space.Random(rng, 3000)
	base, err := fault.Run(target, fault.Uniform(baseSites), fault.CampaignOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pruned estimate (%d injections): %s\n", len(plan.Sites), est)
	fmt.Printf("random baseline (%d injections): %s\n", len(baseSites), base.Dist)
	fmt.Printf("max class delta: %.2f pp\n", est.MaxClassDelta(base.Dist))

	// Where do the non-masked outcomes live? Break the baseline down by
	// destination register class.
	res, err := fault.Run(target, fault.Uniform(baseSites), fault.CampaignOptions{KeepPerSite: true})
	if err != nil {
		log.Fatal(err)
	}
	var gpr, pred fault.Dist
	for i, site := range baseSites {
		bits := target.DestBitsAt(site.Thread, site.DynInst)
		if bits == isa.PredBits {
			pred.Add(res.PerSite[i], 1)
		} else {
			gpr.Add(res.PerSite[i], 1)
		}
	}
	fmt.Printf("32-bit destinations: %s\n", gpr)
	fmt.Printf(".pred destinations:  %s\n", pred)
}
