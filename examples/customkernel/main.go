// Customkernel: write your own GPU kernel in the PTXPlus-flavoured
// assembly, run it on the simulator, and analyze its error resilience with
// the pruning pipeline — the workflow a user follows to study a workload
// that is not in the built-in suite.
//
// The kernel below is a SAXPY (y = a*x + y) over 128 threads.
//
// Run with: go run ./examples/customkernel
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/ptx"
)

const saxpySrc = `
	cvt.u32.u16 $r0, %tid.x
	cvt.u32.u16 $r1, %ctaid.x
	cvt.u32.u16 $r2, %ntid.x
	mad.lo.u32 $r0, $r1, $r2, $r0        // global index
	mov.u32 $r3, s[0x001c]               // n
	set.ge.u32.u32 $p0/$o127, $r0, $r3
	@$p0.ne bra lexit
	shl.u32 $r4, $r0, 0x00000002
	add.u32 $r5, $r4, s[0x0010]          // &x[i]
	add.u32 $r6, $r4, s[0x0014]          // &y[i]
	ld.global.f32 $r7, [$r5]
	ld.global.f32 $r8, [$r6]
	mov.u32 $r9, s[0x0018]               // a (f32 bits)
	mad.f32 $r8, $r9, $r7, $r8           // y = a*x + y
	st.global.f32 [$r6], $r8
	lexit: exit
`

func main() {
	prog, err := ptx.Assemble("saxpy", saxpySrc)
	if err != nil {
		log.Fatal(err)
	}

	const n = 128
	const a = float32(2.5)
	dev := gpusim.NewDevice(8 * n)
	x := make([]uint32, n)
	y := make([]uint32, n)
	for i := 0; i < n; i++ {
		x[i] = math.Float32bits(float32(i) * 0.25)
		y[i] = math.Float32bits(float32(n-i) * 0.5)
	}
	dev.WriteWords(0, x)
	dev.WriteWords(4*n, y)

	target := &fault.Target{
		Name:  "saxpy",
		Prog:  prog,
		Grid:  gpusim.Dim3{X: 4, Y: 1, Z: 1},
		Block: gpusim.Dim3{X: 32, Y: 1, Z: 1},
		Params: []uint32{
			0,                   // &x
			4 * n,               // &y
			math.Float32bits(a), // a
			n,                   // n
		},
		Init:   dev,
		Output: []fault.Range{{Off: 4 * n, Len: 4 * n}},
	}
	if err := target.Prepare(); err != nil {
		log.Fatal(err)
	}

	// Inject one specific fault by hand: flip bit 30 of the mad result of
	// thread 5 (its 14th dynamic instruction) and observe the outcome.
	outcome, err := target.RunSite(fault.Site{Thread: 5, DynInst: 13, Bit: 30})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single injection into thread 5's mad result: %s\n", outcome)

	// Then analyze the whole kernel with the pruning pipeline.
	plan, err := core.BuildPlan(target, core.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)
	profile, err := plan.Estimate(fault.CampaignOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saxpy resilience profile: %s\n", profile)
}
