// Faultmodels: study one kernel under the three supported fault models —
// the paper's single-bit destination-register flip, the double-bit flip
// that defeats SEC-DED correction, and the load-store-unit address flip —
// and, because the kernel is small, judge each profile against the true
// exhaustive ground truth for the baseline model.
//
// Run with: go run ./examples/faultmodels
package main

import (
	"fmt"
	"log"

	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/stats"
)

func main() {
	spec, _ := kernels.ByName("Gaussian K1")
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	target := inst.Target
	if err := target.Prepare(); err != nil {
		log.Fatal(err)
	}
	prof := target.Profile()
	space := fault.NewSpace(prof)
	rng := stats.NewRNG(17)

	fmt.Printf("== %s: %d destination-register fault sites ==\n",
		target.Name, space.Total())

	// Exhaustive ground truth under the baseline model.
	var all []fault.Site
	for t := range prof.Threads {
		all = append(all, space.ThreadSites(t, nil)...)
	}
	truth, err := fault.Run(target, fault.Uniform(all), fault.CampaignOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exhaustive dest-value truth: %s\n\n", truth.Dist)

	// Sampled campaigns per model.
	const runs = 800
	fmt.Printf("%-12s %8s | %s\n", "model", "#runs", "profile")
	for _, model := range []fault.Model{
		fault.ModelDestValue, fault.ModelDestDouble, fault.ModelMemAddr,
	} {
		var sites []fault.Site
		if model == fault.ModelMemAddr {
			var pool []fault.Site
			for t := range prof.Threads {
				pool = append(pool, space.MemAddrSites(t, nil)...)
			}
			for i := 0; i < runs; i++ {
				sites = append(sites, pool[rng.Intn(len(pool))])
			}
		} else {
			sites = space.Random(rng, runs)
		}
		res, err := fault.RunModel(target, fault.Uniform(sites), model, fault.CampaignOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %8d | %s\n", model, len(sites), res.Dist)
	}

	fmt.Println("\naddress faults skew heavily toward crashes (out-of-range or")
	fmt.Println("misaligned accesses), while value faults drive SDCs — the reason")
	fmt.Println("the paper's methodology focuses on destination-register values.")
}
