// Reduction: a beyond-the-paper workload — a shared-memory tree reduction
// (the classic CUDA reduction kernel) — run through the full pruning
// pipeline. Its structure stresses the methodology differently from the
// paper's suite: barriers inside the loop, and half the active threads
// dropping out at every tree level, so iCnt classes form a geometric ladder
// (one thread group per level) rather than the paper's border/interior
// split.
//
// Run with: go run ./examples/reduction
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/ptx"
	"repro/internal/stats"
)

// Each CTA of bw threads reduces bw inputs: stage the values in shared
// memory, then halve the active set log2(bw) times, synchronizing at every
// level; thread 0 writes the block sum.
//
// Parameters: s[0x10]=&in, s[0x14]=&out.
const reductionSrc = `
	cvt.u32.u16 $r0, %tid.x
	cvt.u32.u16 $r1, %ctaid.x
	cvt.u32.u16 $r2, %ntid.x
	mad.lo.u32 $r3, $r1, $r2, $r0        // global index
	shl.u32 $r4, $r0, 0x00000002         // tile offset
	shl.u32 $r5, $r3, 0x00000002
	add.u32 $r5, $r5, s[0x0010]
	ld.global.u32 $r6, [$r5]
	st.shared.u32 s[$r4+0x0040], $r6     // stage value
	bar.sync 0x00000000
	shr.u32 $r7, $r2, 0x00000001         // stride = bw/2
	lloop: set.lt.u32.u32 $p0/$o127, $r0, $r7
	@$p0.eq bra lskip                    // retired threads only synchronize
	shl.u32 $r8, $r7, 0x00000002
	add.u32 $r8, $r8, $r4
	ld.shared.u32 $r9, s[$r8+0x0040]     // partner value
	ld.shared.u32 $r10, s[$r4+0x0040]
	add.u32 $r10, $r10, $r9
	st.shared.u32 s[$r4+0x0040], $r10
	lskip: bar.sync 0x00000000
	shr.u32 $r7, $r7, 0x00000001
	set.gt.u32.u32 $p0/$o127, $r7, $r124
	@$p0.ne bra lloop
	set.eq.u32.u32 $p0/$o127, $r0, $r124
	@$p0.eq bra lexit
	ld.shared.u32 $r10, s[0x0040]
	shl.u32 $r11, $r1, 0x00000002
	add.u32 $r11, $r11, s[0x0014]
	st.global.u32 [$r11], $r10           // block sum
	lexit: exit
`

func main() {
	prog, err := ptx.Assemble("reduce", reductionSrc)
	if err != nil {
		log.Fatal(err)
	}

	const blocks, bw = 4, 64
	n := blocks * bw
	in := make([]uint32, n)
	var sums [blocks]uint32
	for i := range in {
		in[i] = uint32(i*7 + 3)
		sums[i/bw] += in[i]
	}
	dev := gpusim.NewDevice(4*n + 4*blocks)
	dev.WriteWords(0, in)

	target := &fault.Target{
		Name:   "reduction",
		Prog:   prog,
		Grid:   gpusim.Dim3{X: blocks, Y: 1, Z: 1},
		Block:  gpusim.Dim3{X: bw, Y: 1, Z: 1},
		Params: []uint32{0, uint32(4 * n)},
		Init:   dev,
		Output: []fault.Range{{Off: 4 * n, Len: 4 * blocks}},
	}
	if err := target.Prepare(); err != nil {
		log.Fatal(err)
	}
	// Sanity: the golden block sums must match the host.
	got := target.Golden()
	for b := 0; b < blocks; b++ {
		w := uint32(got[4*b]) | uint32(got[4*b+1])<<8 |
			uint32(got[4*b+2])<<16 | uint32(got[4*b+3])<<24
		if w != sums[b] {
			log.Fatalf("block %d sum = %d, want %d", b, w, sums[b])
		}
	}

	prof := target.Profile()
	fmt.Printf("== %s: %d threads, %d fault sites ==\n",
		target.Name, target.Threads(), fault.NewSpace(prof).Total())

	plan, err := core.BuildPlan(target, core.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)
	fmt.Println("thread groups (one per tree level a thread survives to):")
	for _, g := range plan.ThreadGroups {
		fmt.Printf("  iCnt %3d: %2d threads per CTA\n", g.ICnt, g.InCTACount)
	}

	est, err := plan.Estimate(fault.CampaignOptions{})
	if err != nil {
		log.Fatal(err)
	}
	space := fault.NewSpace(prof)
	base, err := fault.Run(target, fault.Uniform(space.Random(stats.NewRNG(9), 2000)),
		fault.CampaignOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pruned estimate:  %s\n", est)
	fmt.Printf("random baseline:  %s\n", base.Dist)
	fmt.Printf("max class delta:  %.2f pp\n", est.MaxClassDelta(base.Dist))
}
