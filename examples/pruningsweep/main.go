// Pruningsweep: an ablation over the pipeline's knobs on one kernel —
// which pruning stages buy how much reduction at what accuracy cost. This
// is the experiment a user runs before trusting the pruned space for a new
// workload class.
//
// Run with: go run ./examples/pruningsweep
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/stats"
)

func main() {
	spec, _ := kernels.ByName("K-Means K2")
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	target := inst.Target
	if err := target.Prepare(); err != nil {
		log.Fatal(err)
	}

	// Ground-truth stand-in: a large random campaign.
	space := fault.NewSpace(target.Profile())
	baseSites := space.Random(stats.NewRNG(5), 4000)
	base, err := fault.Run(target, fault.Uniform(baseSites), fault.CampaignOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (%d runs): %s\n\n", len(baseSites), base.Dist)

	configs := []struct {
		name string
		opt  core.Options
	}{
		{"full pipeline (defaults)", core.Options{}},
		{"no instruction pruning", core.Options{DisableInstPrune: true}},
		{"no loop sampling", core.Options{LoopIters: -1}},
		{"loop sample = 3", core.Options{LoopIters: 3}},
		{"bit samples = 4", core.Options{BitSamples: 4}},
		{"all bits kept", core.Options{BitSamples: -1}},
		{"keep pred flags", core.Options{DisablePredPrune: true}},
		{"+ dead-write pruning", core.Options{DeadWritePrune: true}},
		{"signature grouping", core.Options{Grouping: core.GroupingOptions{BySignature: true}}},
		{"one-step grouping", core.Options{Grouping: core.GroupingOptions{SkipCTAGrouping: true}}},
	}

	fmt.Printf("%-28s %9s %9s %8s\n", "configuration", "#sites", "reduction", "maxΔpp")
	for _, c := range configs {
		c.opt.Seed = 11
		plan, err := core.BuildPlan(target, c.opt)
		if err != nil {
			log.Fatal(err)
		}
		est, err := plan.Estimate(fault.CampaignOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %9d %8.0fx %8.2f\n",
			c.name, len(plan.Sites), plan.Reduction(), est.MaxClassDelta(base.Dist))
	}
}
