// Command doccheck keeps the documentation honest. It enforces four
// invariants that otherwise rot silently:
//
//  1. Every package under internal/ carries a package comment (godoc's
//     "Package <name> ..." paragraph), so `go doc` gives a real answer for
//     every layer of the pipeline.
//  2. Every `go run ./cmd/<name>` invocation quoted in a fenced code block
//     of README.md, DESIGN.md, ARCHITECTURE.md or EXPERIMENTS.md refers to
//     a command that exists, and every flag it passes is actually defined
//     by that command's source — so the walkthroughs stay runnable as the
//     CLIs evolve.
//  3. Every cmd/* binary is covered by README.md — the command is named
//     ("cmd/<name>") and every flag it defines appears as "-<flag>"
//     somewhere in the README — so a new command or flag cannot land
//     undocumented.
//  4. Every flag-shaped token in an inline code span of EXPERIMENTS.md
//     ("`fsprune -dead`") names a flag some command actually defines, so
//     the experiment commentary cannot reference a flag that was renamed
//     or removed.
//
// Run from the repository root (as `make doccheck` does); exits non-zero
// with one line per violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	var violations []string
	violations = append(violations, checkPackageComments("internal")...)
	violations = append(violations, checkDocCommands("README.md", "DESIGN.md", "ARCHITECTURE.md", "EXPERIMENTS.md")...)
	violations = append(violations, checkCmdCoverage("README.md")...)
	violations = append(violations, checkInlineFlags("EXPERIMENTS.md")...)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "doccheck:", v)
		}
		os.Exit(1)
	}
	fmt.Println("doccheck: package comments, CLI coverage and documented invocations are clean")
}

// checkPackageComments walks every Go package directory under root and
// reports the ones whose files carry no package comment at all.
func checkPackageComments(root string) []string {
	var violations []string
	commented := map[string]bool{} // package dir -> has a package comment
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if _, seen := commented[dir]; !seen {
			commented[dir] = false
		}
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		if f.Doc != nil && strings.HasPrefix(f.Doc.Text(), "Package ") {
			commented[dir] = true
		}
		return nil
	})
	if err != nil {
		return []string{err.Error()}
	}
	dirs := make([]string, 0, len(commented))
	for dir := range commented {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		if !commented[dir] {
			violations = append(violations, fmt.Sprintf("%s: no package comment (want a \"Package %s ...\" doc comment)", dir, filepath.Base(dir)))
		}
	}
	return violations
}

var runRE = regexp.MustCompile(`go run \./cmd/([a-z]+)([^\n|>]*)`)

// checkDocCommands extracts `go run ./cmd/<name> ...` invocations from the
// fenced code blocks of the given markdown files and validates the command
// directory and every -flag against the command's flag definitions.
func checkDocCommands(files ...string) []string {
	var violations []string
	flagSets := map[string]map[string]bool{} // cmd name -> defined flags
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			violations = append(violations, err.Error())
			continue
		}
		inFence := false
		for lineno, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if !inFence {
				continue
			}
			for _, m := range runRE.FindAllStringSubmatch(line, -1) {
				name, rest := m[1], m[2]
				flags, ok := flagSets[name]
				if !ok {
					flags, err = cmdFlags(name)
					if err != nil {
						violations = append(violations,
							fmt.Sprintf("%s:%d: %v", file, lineno+1, err))
						continue
					}
					flagSets[name] = flags
				}
				for _, tok := range strings.Fields(rest) {
					if !strings.HasPrefix(tok, "-") {
						continue
					}
					f := strings.TrimLeft(tok, "-")
					if i := strings.IndexByte(f, '='); i >= 0 {
						f = f[:i]
					}
					// Skip placeholders and negative numbers; flags are
					// lowercase identifiers.
					if f == "" || f[0] < 'a' || f[0] > 'z' {
						continue
					}
					if !flags[f] {
						violations = append(violations,
							fmt.Sprintf("%s:%d: cmd/%s defines no flag -%s", file, lineno+1, name, f))
					}
				}
			}
		}
		if inFence {
			violations = append(violations, fmt.Sprintf("%s: unterminated code fence", file))
		}
	}
	return violations
}

// checkCmdCoverage requires every cmd/* binary to be documented in readme:
// the command must be named ("cmd/<name>") and every flag it defines must
// appear somewhere in the readme as "-<flag>".
func checkCmdCoverage(readme string) []string {
	data, err := os.ReadFile(readme)
	if err != nil {
		return []string{err.Error()}
	}
	text := string(data)
	entries, err := os.ReadDir("cmd")
	if err != nil {
		return []string{err.Error()}
	}
	var violations []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if !strings.Contains(text, "cmd/"+name) {
			violations = append(violations,
				fmt.Sprintf("%s: cmd/%s is not documented (no \"cmd/%s\" mention)", readme, name, name))
			continue
		}
		flags, err := cmdFlags(name)
		if err != nil {
			violations = append(violations, err.Error())
			continue
		}
		names := make([]string, 0, len(flags))
		for f := range flags {
			names = append(names, f)
		}
		sort.Strings(names)
		for _, f := range names {
			if !flagDocumented(text, f) {
				violations = append(violations,
					fmt.Sprintf("%s: cmd/%s flag -%s is not documented", readme, name, f))
			}
		}
	}
	return violations
}

// flagDocumented reports whether "-<flag>" occurs in text at a word-ish
// boundary: preceded by start-of-text, whitespace, '`' or '(' so that
// "-rank" does not satisfy a search for "-rank-by"'s prefix, and followed
// by a non-flag character so "-top" is not satisfied by "-topology".
func flagDocumented(text, flag string) bool {
	needle := "-" + flag
	for from := 0; ; {
		i := strings.Index(text[from:], needle)
		if i < 0 {
			return false
		}
		i += from
		from = i + 1
		if i > 0 {
			switch text[i-1] {
			case ' ', '\t', '\n', '`', '(':
			default:
				continue
			}
		}
		end := i + len(needle)
		if end < len(text) {
			c := text[end]
			if c == '-' || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') {
				continue
			}
		}
		return true
	}
}

var inlineSpanRE = regexp.MustCompile("`[^`\n]+`")
var inlineFlagRE = regexp.MustCompile(`(^|\s)-([a-z][a-z0-9-]*)`)

// checkInlineFlags scans the inline code spans (single-backtick, outside
// fenced blocks) of a markdown file and requires every flag-shaped token to
// name a flag that at least one cmd/* binary defines.
func checkInlineFlags(file string) []string {
	data, err := os.ReadFile(file)
	if err != nil {
		return []string{err.Error()}
	}
	defined := map[string]bool{}
	entries, err := os.ReadDir("cmd")
	if err != nil {
		return []string{err.Error()}
	}
	var violations []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		flags, err := cmdFlags(e.Name())
		if err != nil {
			violations = append(violations, err.Error())
			continue
		}
		for f := range flags {
			defined[f] = true
		}
	}
	inFence := false
	for lineno, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, span := range inlineSpanRE.FindAllString(line, -1) {
			for _, m := range inlineFlagRE.FindAllStringSubmatch(span, -1) {
				if !defined[m[2]] {
					violations = append(violations,
						fmt.Sprintf("%s:%d: no command defines a flag -%s (in %s)", file, lineno+1, m[2], span))
				}
			}
		}
	}
	return violations
}

// cmdFlags parses cmd/<name>'s sources and collects the names of the flags
// it defines via the flag package (flag.String, flag.Int, flag.BoolVar, ...).
func cmdFlags(name string) (map[string]bool, error) {
	dir := filepath.Join("cmd", name)
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return nil, fmt.Errorf("documented command cmd/%s does not exist", name)
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, 0)
	if err != nil {
		return nil, err
	}
	flags := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "flag" {
					return true
				}
				// flag.Xxx(name, ...) or flag.XxxVar(&v, name, ...).
				arg := call.Args[0]
				if strings.HasSuffix(sel.Sel.Name, "Var") && len(call.Args) > 1 {
					arg = call.Args[1]
				}
				if lit, ok := arg.(*ast.BasicLit); ok && lit.Kind == token.STRING {
					flags[strings.Trim(lit.Value, `"`)] = true
				}
				return true
			})
		}
	}
	return flags, nil
}
