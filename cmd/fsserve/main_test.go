package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/kernels"
	"repro/internal/report"
	"repro/internal/stats"
)

// daemon wraps one fsserve process under test.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// startDaemon launches the built binary on a random port and scrapes the
// bound address from its first stdout line.
func startDaemon(t *testing.T, bin, data string) *daemon {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-data", data,
		"-workers", "1", "-par", "2", "-sync-every", "1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Belt-and-braces: never leak a daemon past the test, even on Fatal
	// before the explicit sigterm. Kill after Wait is a harmless error.
	t.Cleanup(func() { _ = cmd.Process.Kill() })
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		_ = cmd.Process.Kill()
		t.Fatalf("fsserve produced no output (scan err %v)", sc.Err())
	}
	line := sc.Text()
	// "fsserve listening on 127.0.0.1:PORT (data DIR)"
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[0] != "fsserve" {
		_ = cmd.Process.Kill()
		t.Fatalf("unexpected banner %q", line)
	}
	// Keep draining stdout so the daemon never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()
	return &daemon{cmd: cmd, base: "http://" + fields[3]}
}

// sigterm delivers SIGTERM and asserts a clean exit 0 — the graceful,
// journal-flushing shutdown path.
func (d *daemon) sigterm(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("fsserve did not exit cleanly on SIGTERM: %v", err)
		}
	case <-time.After(time.Minute):
		_ = d.cmd.Process.Kill()
		t.Fatal("fsserve did not exit within a minute of SIGTERM")
	}
}

func (d *daemon) get(t *testing.T, path string, out any) int {
	t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestServeSmoke is the CI end-to-end exercise of the daemon binary:
// build, serve on a random port, submit, interrupt mid-campaign with
// SIGTERM (clean exit 0), restart over the same data dir, resume to
// completion, and compare the final report byte-for-byte with the
// journal-derived reference an fsprune campaign run would yield.
func TestServeSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "fsserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	data := t.TempDir()

	d := startDaemon(t, bin, data)
	body := `{"kernel": "GEMM K1", "sites": 120, "seed": 5}`
	resp, err := http.Post(d.base+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: HTTP %d, id %q", resp.StatusCode, sub.ID)
	}

	// Wait for some progress, then SIGTERM mid-campaign: the shutdown must
	// be resume-capable — exit 0 with every completed outcome journaled.
	var status struct {
		State     string `json:"state"`
		Completed int    `json:"completed"`
	}
	deadline := time.Now().Add(2 * time.Minute)
	for status.Completed < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("campaign made no progress (state %q)", status.State)
		}
		time.Sleep(20 * time.Millisecond)
		d.get(t, sub.URL, &status)
	}
	d.sigterm(t)

	// The journal survived with a valid header and the completed prefix.
	jpath := filepath.Join(data, sub.ID+".journal")
	_, recs, err := journal.ReadFile(jpath)
	if err != nil {
		t.Fatalf("journal unreadable after SIGTERM: %v", err)
	}
	if len(recs) < 3 || len(recs) >= 120 {
		t.Fatalf("journal holds %d records after mid-campaign SIGTERM, want partial >= 3", len(recs))
	}

	// Restart over the same data dir: the campaign resumes and finishes.
	d = startDaemon(t, bin, data)
	deadline = time.Now().Add(2 * time.Minute)
	for status.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("resumed campaign stuck in %q (%d completed)", status.State, status.Completed)
		}
		time.Sleep(20 * time.Millisecond)
		d.get(t, sub.URL, &status)
		if status.State == "failed" || status.State == "interrupted" {
			t.Fatalf("resumed campaign ended %q", status.State)
		}
	}

	httpResp, err := http.Get(d.base + sub.URL + "/report")
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if _, err := got.ReadFrom(httpResp.Body); err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("report: HTTP %d: %s", httpResp.StatusCode, got.String())
	}
	if want := referenceReport(t, t.TempDir()); !bytes.Equal(got.Bytes(), want) {
		t.Errorf("daemon report differs from fsprune-equivalent reference:\ngot:  %s\nwant: %s", got.Bytes(), want)
	}

	var st struct {
		EngineRuns int64 `json:"engine_runs"`
	}
	if code := d.get(t, "/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats: HTTP %d", code)
	}
	if st.EngineRuns != 1 {
		t.Errorf("second incarnation ran the engine %d times, want 1 (the resume)", st.EngineRuns)
	}
	d.sigterm(t)
}

// referenceReport runs the same campaign standalone — fsprune's campaign
// recipe with a journal — and renders the journal-derived report document.
func referenceReport(t *testing.T, dir string) []byte {
	t.Helper()
	spec, ok := kernels.ByName("GEMM K1")
	if !ok {
		t.Fatal("GEMM K1 not registered")
	}
	inst, err := spec.Build(kernels.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Target.Prepare(); err != nil {
		t.Fatal(err)
	}
	space := fault.NewSpace(inst.Target.Profile())
	rng := stats.NewRNG(5).Split("baseline")
	sites := fault.Uniform(space.Random(rng, 120))
	shard := fault.Shard{Index: 0, Count: 1}
	fp := inst.Target.JournalFingerprint(fault.ModelDestValue, len(sites), kernels.ScaleSmall.String(), 5, shard)
	j, err := journal.Open(filepath.Join(dir, "ref.journal"), fp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fault.Run(inst.Target, sites, fault.CampaignOptions{Journal: j}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := journal.ReadFile(filepath.Join(dir, "ref.journal"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(recs, func(i, k int) bool { return recs[i].Index < recs[k].Index })
	doc, err := report.NewMerged(fp, recs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
