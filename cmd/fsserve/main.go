// Command fsserve runs the campaign service daemon: an HTTP/JSON front end
// to the injection-campaign engine. Clients POST campaign submissions
// (kernel, scale, seed, fault-model shape, shard); the daemon validates
// them with the same rules as fsprune, deduplicates identical submissions
// into one run, executes campaigns on a bounded worker pool, and journals
// every outcome under -data — so a killed or restarted daemon resumes its
// incomplete campaigns bit-identically.
//
// Usage:
//
//	fsserve -data /var/lib/fsserve
//	fsserve -addr 127.0.0.1:8080 -data ./campaigns -workers 4 -par 8
//
// The bound address is printed to stdout once listening (useful with
// -addr 127.0.0.1:0 in scripts). SIGINT/SIGTERM shut the daemon down
// gracefully: running campaigns stop at the next site boundary with all
// completed outcomes journaled, and the process exits 0. A second signal
// forces exit 130.
//
// Endpoints: POST /campaigns, GET /campaigns/{id}, GET
// /campaigns/{id}/report, GET /healthz, GET /stats.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"repro/internal/interrupts"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port; the bound address is printed)")
	data := flag.String("data", "", "data directory for campaign journals (required; created if missing)")
	workers := flag.Int("workers", 2, "campaigns executing concurrently")
	queue := flag.Int("queue", 16, "admission queue depth; submissions beyond it get HTTP 429")
	par := flag.Int("par", 0, "engine workers per campaign (0 = GOMAXPROCS)")
	syncEvery := flag.Int("sync-every", 64, "fsync the journal every N outcomes (negative disables periodic fsync)")
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "usage: fsserve -data DIR [-addr HOST:PORT] [-workers N] [-queue N] [-par N] [-sync-every N]")
		os.Exit(2)
	}

	srv, err := service.New(service.Config{
		DataDir:     *data,
		Workers:     *workers,
		QueueDepth:  *queue,
		Parallelism: *par,
		SyncEvery:   *syncEvery,
	})
	fatal(err)

	ln, err := net.Listen("tcp", *addr)
	fatal(err)
	// Printed after the listener is live so scripts can scrape the bound
	// port and immediately connect.
	fmt.Printf("fsserve listening on %s (data %s)\n", ln.Addr(), *data)

	srv.Start()
	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	// First signal: stop accepting, interrupt campaigns at the next site
	// boundary, flush journals, exit 0. Second signal: forced exit 130
	// (see internal/interrupts).
	stop := interrupts.Notify()
	select {
	case <-stop:
	case err := <-done:
		fatal(err)
	}

	fmt.Println("fsserve shutting down")
	_ = hs.Close()
	srv.Stop()
}

func fatal(err error) {
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
