// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig9 -exp table1
//	experiments -exp all -scale small -baseline 3000
//
// Each experiment prints a plain-text table; EXPERIMENTS.md records the
// outputs next to the paper's reported values.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/kernels"
)

type expList []string

func (l *expList) String() string { return strings.Join(*l, ",") }
func (l *expList) Set(v string) error {
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			*l = append(*l, s)
		}
	}
	return nil
}

func main() {
	var exps expList
	flag.Var(&exps, "exp", "experiment id (table1..table7, fig2..fig10, or 'all'); repeatable")
	list := flag.Bool("list", false, "list available experiments")
	scale := flag.String("scale", "small", "kernel scale: small or paper")
	baseline := flag.Int("baseline", 0, "baseline campaign size (0 = default)")
	seed := flag.Int64("seed", 1, "random seed")
	par := flag.Int("par", 0, "campaign parallelism (0 = GOMAXPROCS)")
	outPath := flag.String("out", "", "also append the reports to this file")
	kernelFilter := flag.String("kernels", "", "comma-separated kernel subset (default: the paper's full set)")
	intraStride := flag.Int("intra-stride", 0, "dynamic instructions between intra-CTA warp snapshots (0 = auto-tune, <0 = disable)")
	showStats := flag.Bool("stats", false, "report per-experiment campaign stats (runs, rate, COW pages, devices, fast-forward skips)")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if len(exps) == 0 {
		fmt.Fprintln(os.Stderr, "no experiments selected; use -exp <id> or -list")
		os.Exit(2)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}
	cfg := experiments.Config{
		BaselineRuns: *baseline,
		Parallelism:  *par,
		Seed:         *seed,
		Out:          out,
		IntraStride:  *intraStride,
	}
	if *kernelFilter != "" {
		for _, k := range strings.Split(*kernelFilter, ",") {
			if k = strings.TrimSpace(k); k != "" {
				cfg.Kernels = append(cfg.Kernels, k)
			}
		}
	}
	switch *scale {
	case "small":
		cfg.Scale = kernels.ScaleSmall
	case "paper":
		cfg.Scale = kernels.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	selected := []experiments.Experiment{}
	if len(exps) == 1 && exps[0] == "all" {
		selected = experiments.All()
	} else {
		for _, id := range exps {
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		if *showStats {
			cfg.Stats = &fault.StatsSink{}
		}
		fmt.Fprintf(out, "=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *showStats {
			fmt.Fprintf(out, "campaign stats: %s\n", cfg.Stats.Total())
		}
		fmt.Fprintf(out, "--- %s done in %v ---\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if *showStats {
		fmt.Fprintf(out, "%s\n", fault.DefaultPreparedCache().Stats())
	}
}
