// Command fsprune drives the fault-site pruning pipeline on one kernel:
// profile it, enumerate its exhaustive fault-site space, build the pruned
// plan, and estimate its error resilience profile against a random baseline.
//
// Usage:
//
//	fsprune -list
//	fsprune -kernel "GEMM K1" -action plan
//	fsprune -kernel "2DCONV K1" -action estimate -baseline 3000
//	fsprune -kernel "HotSpot K1" -action profile -scale paper
package main

import (
	"flag"
	"fmt"
	"os"

	bl "repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	list := flag.Bool("list", false, "list available kernels")
	kernel := flag.String("kernel", "", `kernel name, e.g. "GEMM K1"`)
	action := flag.String("action", "estimate", "profile | sites | plan | estimate | baseline")
	scale := flag.String("scale", "small", "kernel scale: small or paper")
	baseline := flag.Int("baseline", 3000, "baseline campaign size")
	seed := flag.Int64("seed", 1, "random seed")
	par := flag.Int("par", 0, "campaign parallelism (0 = GOMAXPROCS)")
	loopIters := flag.Int("loop-iters", 0, "sampled loop iterations (0 = default, <0 = disable)")
	autoLoop := flag.Bool("auto-loop", false, "pick the loop sample size adaptively (paper Section III-D)")
	bitSamples := flag.Int("bit-samples", 0, "sampled bit positions per register (0 = default, <0 = all)")
	flag.IntVar(bitSamples, "bits", 0, "alias for -bit-samples")
	margin := flag.Float64("margin", 0.03, "target error margin for -action baseline (adaptive)")
	deadPrune := flag.Bool("dead", false, "enable the dead-destination extension stage")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	showStats := flag.Bool("stats", false, "report campaign execution stats (runs, rate, COW pages, devices, fast-forward skips)")
	warp := flag.Int("warp", 0, "SIMT lockstep warp width for every run (0 = serial thread interleaving)")
	fullRun := flag.Bool("full-run", false, "disable checkpointed fast-forward; re-execute the whole grid per experiment (reference engine)")
	ckptStride := flag.Int("ckpt-stride", 0, "CTA boundaries between golden checkpoints (0 = auto from grid size)")
	flag.Parse()

	var sink *fault.StatsSink
	if *showStats {
		sink = &fault.StatsSink{}
	}
	campaign := func() fault.CampaignOptions {
		return fault.CampaignOptions{Parallelism: *par, Sink: sink}
	}

	if *list {
		for _, s := range kernels.All() {
			fmt.Printf("%-16s %-10s %-20s %6d threads (paper)\n",
				s.Meta.Name(), s.Meta.Suite, s.Meta.Kernel, s.Meta.PaperThreads)
		}
		return
	}

	sc := kernels.ScaleSmall
	if *scale == "paper" {
		sc = kernels.ScalePaper
	}
	spec, ok := kernels.ByName(*kernel)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown kernel %q (use -list)\n", *kernel)
		os.Exit(2)
	}
	inst, err := spec.Build(sc)
	fatal(err)
	inst.Target.WarpSize = *warp
	inst.Target.FullRun = *fullRun
	inst.Target.CheckpointStride = *ckptStride
	fatal(inst.Target.Prepare())
	prof := inst.Target.Profile()
	space := fault.NewSpace(prof)

	switch *action {
	case "profile":
		if *asJSON {
			fatal(report.Write(os.Stdout, report.NewKernelProfile(spec.Meta.Name(), prof)))
			return
		}
		fmt.Printf("%s (%s): %d threads, %d CTAs, %d dynamic instructions\n",
			spec.Meta.Name(), sc, inst.Target.Threads(), prof.NumCTAs(), prof.TotalDyn())
		groups := core.GroupCTAs(prof)
		fmt.Printf("CTA groups: %d\n", len(groups))
		for gi, g := range groups {
			fmt.Printf("  C-%d: %d CTAs, avg iCnt %.1f\n", gi+1, len(g.Members), g.AvgICnt)
		}
		tgs := core.GroupThreads(prof, groups, core.GroupingOptions{})
		fmt.Printf("thread groups: %d\n", len(tgs))
		for _, tg := range tgs {
			ls := trace.SummarizeLoops(prof.Threads[tg.Rep].PCs)
			fmt.Printf("  rep t%d: iCnt %d, population %d, loops %d (%d iters, %.1f%% in loop)\n",
				tg.Rep, tg.ICnt, tg.Population, ls.Loops, ls.TotalIters, ls.PctInLoop())
		}

	case "sites":
		fmt.Printf("%s (%s): exhaustive fault sites (Eq. 1) = %d\n",
			spec.Meta.Name(), sc, space.Total())
		t := stats.TStat(0.998)
		fmt.Printf("random baseline for 99.8%% CI, 0.63%% margin: %d runs\n",
			stats.SampleSize(space.Total(), 0.0063, t, 0.5))
		t = stats.TStat(0.95)
		fmt.Printf("random baseline for 95%% CI, 3%% margin: %d runs\n",
			stats.SampleSize(space.Total(), 0.03, t, 0.5))

	case "plan", "estimate":
		iters := *loopIters
		if *autoLoop {
			auto, err := core.AutoLoopIters(inst.Target, core.AutoLoopOptions{
				Base:     core.Options{Seed: *seed, BitSamples: *bitSamples},
				Campaign: campaign(),
			})
			fatal(err)
			iters = auto.Iters
			fmt.Printf("adaptive loop sampling selected %d iterations (%d steps tried)\n",
				auto.Iters, len(auto.Steps))
		}
		plan, err := core.BuildPlan(inst.Target, core.Options{
			Seed:           *seed,
			LoopIters:      iters,
			BitSamples:     *bitSamples,
			DeadWritePrune: *deadPrune,
		})
		fatal(err)
		if *action == "plan" {
			if *asJSON {
				fatal(report.Write(os.Stdout, report.NewPlan(plan)))
			} else {
				fmt.Println(plan)
			}
			return
		}
		if !*asJSON {
			fmt.Println(plan)
		}
		estRes, err := plan.EstimateResult(campaign())
		fatal(err)
		est := estRes.Dist
		rng := stats.NewRNG(*seed).Split("baseline")
		sites := space.Random(rng, *baseline)
		res, err := fault.Run(inst.Target, fault.Uniform(sites), campaign())
		fatal(err)
		if *asJSON {
			var cs *fault.CampaignStats
			if *showStats {
				cs = &estRes.Stats
			}
			fatal(report.Write(os.Stdout, report.NewEstimate(plan, est, &res.Dist, cs)))
			return
		}
		fmt.Printf("pruned estimate:  %s\n", est)
		fmt.Printf("random baseline:  %s\n", res.Dist)
		fmt.Printf("max class delta:  %.2f pp\n", est.MaxClassDelta(res.Dist))
		if *showStats {
			fmt.Printf("pruned campaign:  %s\n", estRes.Stats)
			fmt.Printf("all campaigns:    %s\n", sink.Total())
		}

	case "baseline":
		res, err := bl.Adaptive(inst.Target, bl.Options{
			Margin:   *margin,
			MaxRuns:  *baseline,
			Seed:     *seed,
			Campaign: campaign(),
		})
		fatal(err)
		fmt.Printf("adaptive random baseline: %s\n", res)
		if *showStats {
			fmt.Printf("campaign stats: %s\n", res.Stats)
		}

	default:
		fmt.Fprintf(os.Stderr, "unknown action %q\n", *action)
		os.Exit(2)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
