// Command fsprune drives the fault-site pruning pipeline on one kernel:
// profile it, enumerate its exhaustive fault-site space, build the pruned
// plan, estimate its error resilience profile against a random baseline, or
// run a durable, resumable injection campaign.
//
// Usage:
//
//	fsprune -list
//	fsprune -kernel "GEMM K1" -action plan
//	fsprune -kernel "2DCONV K1" -action estimate -baseline 3000
//	fsprune -kernel "HotSpot K1" -action profile -scale paper
//	fsprune -kernel "GEMM K1" -action campaign -journal gemm.journal
//	fsprune -kernel "GEMM K1" -action campaign -journal s0.journal -shard 0/2
//	fsprune -kernel "GEMM K1" -action campaign -model stuck-pred -stats
//
// A campaign with -journal survives interruption: SIGINT/SIGTERM (or a
// crash) leaves every completed site on disk, and rerunning the same command
// resumes where it stopped. Shard journals are recombined with fsmerge.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	bl "repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/interrupts"
	"repro/internal/journal"
	"repro/internal/kernels"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	list := flag.Bool("list", false, "list available kernels")
	kernel := flag.String("kernel", "", `kernel name, e.g. "GEMM K1"`)
	action := flag.String("action", "estimate", "profile | sites | plan | estimate | baseline | campaign")
	scale := flag.String("scale", "small", "kernel scale: small or paper")
	baseline := flag.Int("baseline", 3000, "baseline campaign size")
	modelName := flag.String("model", "dest-value", "fault model for -action campaign: "+fault.ModelNames())
	seed := flag.Int64("seed", 1, "random seed")
	par := flag.Int("par", 0, "campaign parallelism (0 = GOMAXPROCS)")
	loopIters := flag.Int("loop-iters", 0, "sampled loop iterations (0 = default, <0 = disable)")
	autoLoop := flag.Bool("auto-loop", false, "pick the loop sample size adaptively (paper Section III-D)")
	bitSamples := flag.Int("bit-samples", 0, "sampled bit positions per register (0 = default, <0 = all)")
	flag.IntVar(bitSamples, "bits", 0, "alias for -bit-samples")
	margin := flag.Float64("margin", 0.03, "target error margin for -action baseline (adaptive)")
	deadPrune := flag.Bool("dead", false, "enable the dead-destination extension stage")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	showStats := flag.Bool("stats", false, "report campaign execution stats (runs, rate, COW pages, devices, fast-forward skips)")
	warp := flag.Int("warp", 0, "SIMT lockstep warp width for every run (0 = serial thread interleaving)")
	fullRun := flag.Bool("full-run", false, "disable checkpointed fast-forward; re-execute the whole grid per experiment (reference engine)")
	ckptStride := flag.Int("ckpt-stride", 0, "CTA boundaries between golden checkpoints (0 = auto from grid size)")
	intraStride := flag.Int("intra-stride", 0, "dynamic instructions between intra-CTA warp snapshots (0 = auto-tune, <0 = disable)")
	journalPath := flag.String("journal", "", "write-ahead outcome journal for -action campaign (created, or resumed if it exists)")
	shardSpec := flag.String("shard", "", `run only shard "i/n" of the campaign (with -action campaign)`)
	compiled := flag.Bool("compiled", true, "execute via the pre-decoded compiled plan (false = reference interpreter; outcomes are bit-identical)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file (written on normal exit)")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on normal exit")
	flag.Parse()

	if *par < 0 {
		usageError("-par must be >= 0 (0 = GOMAXPROCS), got %d", *par)
	}
	if *warp < 0 {
		usageError("-warp must be >= 0 (0 = serial interleaving), got %d", *warp)
	}
	if *ckptStride < 0 {
		usageError("-ckpt-stride must be >= 0 (0 = auto), got %d", *ckptStride)
	}
	// Flags that contradict each other are rejected up front instead of
	// silently ignored: -full-run disables the entire fast-forward engine, so
	// tuning either checkpoint stride alongside it is an operator mistake,
	// and -auto-loop overwrites any explicit -loop-iters choice.
	explicit := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *fullRun && explicit["ckpt-stride"] && *ckptStride != 0 {
		usageError("-full-run disables checkpointing; it cannot be combined with -ckpt-stride %d", *ckptStride)
	}
	if *fullRun && explicit["intra-stride"] && *intraStride != 0 {
		usageError("-full-run disables checkpointing; it cannot be combined with -intra-stride %d", *intraStride)
	}
	if *autoLoop && explicit["loop-iters"] {
		usageError("-auto-loop selects the loop sample size itself; it cannot be combined with an explicit -loop-iters")
	}
	shard, err := parseShard(*shardSpec)
	if err != nil {
		usageError("%v", err)
	}
	if (*journalPath != "" || *shardSpec != "") && *action != "campaign" {
		usageError("-journal and -shard apply only to -action campaign")
	}
	model, err := fault.ParseModel(*modelName)
	if err != nil {
		usageError("%v", err)
	}
	if model != fault.ModelDestValue {
		// The pruning pipeline (plan/estimate/baseline) is the paper's
		// dest-value methodology; alternate models run plain campaigns.
		if *action != "campaign" {
			usageError("-model %s applies only to -action campaign (the pruning pipeline is defined over dest-value sites)", model)
		}
		// Bit-sampling subsamples destination-register bit positions, which
		// mem-addr and stuck-at sites do not have.
		if explicit["bits"] || explicit["bit-samples"] {
			usageError("-bit-samples subsamples destination-register bits; it cannot be combined with -model %s", model)
		}
	}

	// pprof profiles cover everything from here on and are flushed when main
	// returns normally; error exits (usage mistakes, fatal, forced
	// interrupt) drop them.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		fatal(err)
		fatal(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			fatal(err)
			runtime.GC()
			fatal(pprof.WriteHeapProfile(f))
			fatal(f.Close())
		}()
	}

	// SIGINT/SIGTERM interrupt campaigns cooperatively: workers finish
	// their in-flight sites, the journal keeps every completed outcome, and
	// the process reports partial progress. A second signal forces exit 130
	// even while the first is still draining (see internal/interrupts).
	interrupt := interrupts.Notify()

	sink := &fault.StatsSink{}
	campaign := func() fault.CampaignOptions {
		return fault.CampaignOptions{Parallelism: *par, Sink: sink, Interrupt: interrupt}
	}

	if *list {
		for _, s := range kernels.All() {
			fmt.Printf("%-16s %-10s %-20s %6d threads (paper)\n",
				s.Meta.Name(), s.Meta.Suite, s.Meta.Kernel, s.Meta.PaperThreads)
		}
		return
	}

	sc := kernels.ScaleSmall
	if *scale == "paper" {
		sc = kernels.ScalePaper
	}
	spec, ok := kernels.ByName(*kernel)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown kernel %q (use -list)\n", *kernel)
		os.Exit(2)
	}
	inst, err := spec.Build(sc)
	fatal(err)
	inst.Target.WarpSize = *warp
	inst.Target.FullRun = *fullRun
	inst.Target.CheckpointStride = *ckptStride
	inst.Target.IntraStride = *intraStride
	inst.Target.Interpret = !*compiled
	// Route every Prepare of this process through the shared cache: the
	// pipeline stages below (auto-loop, plan, estimate, baseline) each
	// amortize this target's golden run instead of repeating it.
	inst.Target.Cache = fault.DefaultPreparedCache()
	fatal(inst.Target.Prepare())
	prof := inst.Target.Profile()
	space := fault.NewSpace(prof)

	switch *action {
	case "profile":
		if *asJSON {
			fatal(report.Write(os.Stdout, report.NewKernelProfile(spec.Meta.Name(), prof)))
			return
		}
		fmt.Printf("%s (%s): %d threads, %d CTAs, %d dynamic instructions\n",
			spec.Meta.Name(), sc, inst.Target.Threads(), prof.NumCTAs(), prof.TotalDyn())
		groups := core.GroupCTAs(prof)
		fmt.Printf("CTA groups: %d\n", len(groups))
		for gi, g := range groups {
			fmt.Printf("  C-%d: %d CTAs, avg iCnt %.1f\n", gi+1, len(g.Members), g.AvgICnt)
		}
		tgs := core.GroupThreads(prof, groups, core.GroupingOptions{})
		fmt.Printf("thread groups: %d\n", len(tgs))
		for _, tg := range tgs {
			ls := trace.SummarizeLoops(prof.Threads[tg.Rep].PCs)
			fmt.Printf("  rep t%d: iCnt %d, population %d, loops %d (%d iters, %.1f%% in loop)\n",
				tg.Rep, tg.ICnt, tg.Population, ls.Loops, ls.TotalIters, ls.PctInLoop())
		}

	case "sites":
		fmt.Printf("%s (%s): exhaustive fault sites (Eq. 1) = %d\n",
			spec.Meta.Name(), sc, space.Total())
		t := stats.TStat(0.998)
		fmt.Printf("random baseline for 99.8%% CI, 0.63%% margin: %d runs\n",
			stats.SampleSize(space.Total(), 0.0063, t, 0.5))
		t = stats.TStat(0.95)
		fmt.Printf("random baseline for 95%% CI, 3%% margin: %d runs\n",
			stats.SampleSize(space.Total(), 0.03, t, 0.5))

	case "plan", "estimate":
		iters := *loopIters
		if *autoLoop {
			auto, err := core.AutoLoopIters(inst.Target, core.AutoLoopOptions{
				Base:     core.Options{Seed: *seed, BitSamples: *bitSamples},
				Campaign: campaign(),
			})
			fatal(err)
			iters = auto.Iters
			fmt.Printf("adaptive loop sampling selected %d iterations (%d steps tried)\n",
				auto.Iters, len(auto.Steps))
		}
		plan, err := core.BuildPlan(inst.Target, core.Options{
			Seed:           *seed,
			LoopIters:      iters,
			BitSamples:     *bitSamples,
			DeadWritePrune: *deadPrune,
		})
		fatal(err)
		if *action == "plan" {
			if *asJSON {
				fatal(report.Write(os.Stdout, report.NewPlan(plan)))
			} else {
				fmt.Println(plan)
			}
			return
		}
		if !*asJSON {
			fmt.Println(plan)
		}
		estRes, err := plan.EstimateResult(campaign())
		fatal(err)
		est := estRes.Dist
		rng := stats.NewRNG(*seed).Split("baseline")
		sites := space.Random(rng, *baseline)
		res, err := fault.Run(inst.Target, fault.Uniform(sites), campaign())
		fatal(err)
		if *asJSON {
			var cs *fault.CampaignStats
			if *showStats {
				cs = &estRes.Stats
			}
			fatal(report.Write(os.Stdout, report.NewEstimate(plan, est, &res.Dist, cs)))
			return
		}
		fmt.Printf("pruned estimate:  %s\n", est)
		fmt.Printf("random baseline:  %s\n", res.Dist)
		fmt.Printf("max class delta:  %.2f pp\n", est.MaxClassDelta(res.Dist))
		if *showStats {
			fmt.Printf("pruned campaign:  %s\n", estRes.Stats)
			fmt.Printf("all campaigns:    %s\n", sink.Total())
			fmt.Printf("%s\n", fault.DefaultPreparedCache().Stats())
		}

	case "baseline":
		res, err := bl.Adaptive(inst.Target, bl.Options{
			Margin:   *margin,
			MaxRuns:  *baseline,
			Seed:     *seed,
			Campaign: campaign(),
		})
		fatal(err)
		fmt.Printf("adaptive random baseline: %s\n", res)
		if *showStats {
			fmt.Printf("campaign stats: %s\n", res.Stats)
			fmt.Printf("%s\n", fault.DefaultPreparedCache().Stats())
		}

	case "campaign":
		// A fixed-size uniform random campaign — the durable workhorse.
		// The site list derives deterministically from (kernel, scale,
		// seed, size, model), which is exactly what the journal fingerprint
		// pins.
		rng := stats.NewRNG(*seed).Split("baseline")
		sites := fault.Uniform(space.RandomModel(rng, *baseline, model))
		opt := campaign()
		opt.Shard = shard

		var j *journal.Journal
		if *journalPath != "" {
			fp := inst.Target.JournalFingerprint(model, len(sites), sc.String(), *seed, shard)
			j, err = journal.Open(*journalPath, fp)
			fatal(err)
			opt.Journal = j
		}
		res, err := fault.RunModel(inst.Target, sites, model, opt)
		if errors.Is(err, fault.ErrInterrupted) {
			if j != nil {
				if cerr := j.Close(); cerr != nil {
					fmt.Fprintf(os.Stderr, "journal close: %v\n", cerr)
				}
			}
			fmt.Fprintf(os.Stderr, "%v\n", err)
			fmt.Fprintf(os.Stderr, "partial stats: %s\n", sink.Total())
			if *journalPath != "" {
				fmt.Fprintf(os.Stderr, "completed outcomes are saved in %s; rerun the same command to resume\n", *journalPath)
			} else {
				fmt.Fprintln(os.Stderr, "progress was lost; rerun with -journal FILE to make campaigns resumable")
			}
			os.Exit(130)
		}
		fatal(err)
		if j != nil {
			fatal(j.Close())
		}

		if *asJSON {
			doc := struct {
				Kernel    string          `json:"kernel"`
				Scale     string          `json:"scale"`
				Seed      int64           `json:"seed"`
				Model     string          `json:"model"`
				Shard     string          `json:"shard,omitempty"`
				Sites     int             `json:"sites"`
				Completed int             `json:"completed"`
				Profile   report.Profile  `json:"profile"`
				Campaign  report.Campaign `json:"campaign"`
			}{
				Kernel:    spec.Meta.Name(),
				Scale:     sc.String(),
				Seed:      *seed,
				Model:     model.String(),
				Shard:     *shardSpec,
				Sites:     len(sites),
				Completed: res.Completed,
				Profile:   report.NewProfile(res.Dist),
				Campaign:  report.NewCampaign(sink.Total()),
			}
			fatal(report.Write(os.Stdout, doc))
			return
		}
		if *shardSpec != "" {
			fmt.Printf("%s (%s): model %s, shard %s, %d of %d sites\n",
				spec.Meta.Name(), sc, model, *shardSpec, res.Completed, len(sites))
		} else {
			fmt.Printf("%s (%s): model %s, %d sites\n", spec.Meta.Name(), sc, model, res.Completed)
		}
		fmt.Printf("profile: %s\n", res.Dist)
		if n := len(res.Quarantined); n > 0 {
			fmt.Printf("quarantined sites: %d\n", n)
			for _, q := range res.Quarantined {
				fmt.Printf("  %s\n", q)
			}
		}
		if *showStats {
			fmt.Printf("campaign stats: %s\n", sink.Total())
			fmt.Printf("%s\n", fault.DefaultPreparedCache().Stats())
		}

	default:
		fmt.Fprintf(os.Stderr, "unknown action %q\n", *action)
		os.Exit(2)
	}
}

// parseShard parses "i/n"; the empty string is the whole campaign.
func parseShard(s string) (fault.Shard, error) {
	if s == "" {
		return fault.Shard{}, nil
	}
	a, b, ok := strings.Cut(s, "/")
	if !ok {
		return fault.Shard{}, fmt.Errorf("invalid -shard %q (want i/n, e.g. 0/4)", s)
	}
	i, err1 := strconv.Atoi(a)
	n, err2 := strconv.Atoi(b)
	if err1 != nil || err2 != nil || n < 1 || i < 0 || i >= n {
		return fault.Shard{}, fmt.Errorf("invalid -shard %q (want i/n with 0 <= i < n)", s)
	}
	return fault.Shard{Index: i, Count: n}, nil
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
