// Command benchjson converts `go test -bench` output on stdin into a JSON
// object mapping benchmark name (without the -GOMAXPROCS suffix) to ns/op,
// written to stdout. When a benchmark appears multiple times (`-count=N`),
// the minimum ns/op is kept: the best-of-N sample is the standard way to
// strip scheduler and cache jitter from a single-iteration measurement, and
// it is what the benchdiff regression gate compares. The raw input is echoed
// to stderr so piping through benchjson keeps the benchmark progress
// visible:
//
//	go test -run '^$' -bench . -benchtime 1x -count 2 . | benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	results := map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		fields := strings.Fields(line)
		// "BenchmarkTable2-8   3   277000000 ns/op [extra metrics...]"
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		for j := 2; j+1 < len(fields); j += 2 {
			if fields[j+1] != "ns/op" {
				continue
			}
			if v, err := strconv.ParseFloat(fields[j], 64); err == nil {
				if old, ok := results[name]; !ok || v < old {
					results[name] = v
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
