// Command fsmerge recombines the outcome journals of a sharded injection
// campaign (fsprune -action campaign -shard i/n -journal ...) into the
// single-process result. It validates that every journal belongs to the same
// campaign (identical fingerprint up to the shard id), that shards are
// distinct and their site indices disjoint, and — unless -allow-partial —
// that all n shards are present and fully cover the site list.
//
// Usage:
//
//	fsmerge s0.journal s1.journal
//	fsmerge -json merged.json s0.journal s1.journal
//	fsmerge -allow-partial s0.journal
//
// Records are aggregated in site-index order, so the merged distribution is
// bit-identical to the unsharded campaign's.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/journal"
	"repro/internal/report"
)

func main() {
	jsonPath := flag.String("json", "", "also write the merged report as JSON to this file (- for stdout)")
	allowPartial := flag.Bool("allow-partial", false, "accept missing shards or incomplete shard journals")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: fsmerge [-json out.json] [-allow-partial] journal...")
		os.Exit(2)
	}

	fp, recs, err := journal.Merge(flag.Args(), *allowPartial)
	fatal(err)

	// Records arrive sorted by site index; NewMerged aggregates in that
	// order, reproducing the engine's input-order float summation exactly.
	doc, err := report.NewMerged(fp, recs)
	fatal(err)
	dist, err := report.MergedDist(recs)
	fatal(err)

	fmt.Printf("%s (%s) seed %d model %s: merged %d shard journals\n",
		fp.Kernel, fp.Scale, fp.Seed, fp.Model, flag.NArg())
	fmt.Printf("sites: %d of %d completed", len(recs), fp.Sites)
	if doc.Quarantined > 0 {
		fmt.Printf(" (%d quarantined)", doc.Quarantined)
	}
	fmt.Println()
	fmt.Printf("profile: %s\n", dist)

	switch *jsonPath {
	case "":
	case "-":
		fatal(report.Write(os.Stdout, doc))
	default:
		f, err := os.Create(*jsonPath)
		fatal(err)
		err = report.Write(f, doc)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		fatal(err)
		fmt.Printf("report written to %s\n", *jsonPath)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
