// Command fsmerge recombines the outcome journals of a sharded injection
// campaign (fsprune -action campaign -shard i/n -journal ...) into the
// single-process result. It validates that every journal belongs to the same
// campaign (identical fingerprint up to the shard id), that shards are
// distinct and their site indices disjoint, and — unless -allow-partial —
// that all n shards are present and fully cover the site list.
//
// Usage:
//
//	fsmerge s0.journal s1.journal
//	fsmerge -json merged.json s0.journal s1.journal
//	fsmerge -allow-partial s0.journal
//
// Records are aggregated in site-index order, so the merged distribution is
// bit-identical to the unsharded campaign's.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/report"
)

func main() {
	jsonPath := flag.String("json", "", "also write the merged report as JSON to this file (- for stdout)")
	allowPartial := flag.Bool("allow-partial", false, "accept missing shards or incomplete shard journals")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: fsmerge [-json out.json] [-allow-partial] journal...")
		os.Exit(2)
	}

	fp, recs, err := journal.Merge(flag.Args(), *allowPartial)
	fatal(err)

	// Records arrive sorted by site index; aggregating in that order
	// reproduces the engine's input-order float summation exactly.
	var dist fault.Dist
	var stats fault.CampaignStats
	quarantined := 0
	for _, r := range recs {
		o := fault.Outcome(r.Outcome)
		if !o.Valid() {
			fatal(fmt.Errorf("fsmerge: record for site %d holds unknown outcome %d", r.Index, r.Outcome))
		}
		dist.Add(o, r.Weight)
		stats.Runs += int64(r.Attempts)
		stats.CTAsSkipped += r.CTAsSkipped
		if r.EarlyExit {
			stats.EarlyExits++
		}
		if r.IntraResumed {
			stats.IntraSkips++
		}
		if r.Attempts > 1 {
			stats.Retries += int64(r.Attempts - 1)
		}
		if r.Err != "" {
			stats.Quarantined++
			quarantined++
		}
	}

	doc := report.Merged{
		Kernel:      fp.Kernel,
		Scale:       fp.Scale,
		Seed:        fp.Seed,
		Model:       fp.Model,
		Shards:      fp.ShardCount,
		Sites:       fp.Sites,
		Completed:   len(recs),
		Quarantined: quarantined,
		Profile:     report.NewProfile(dist),
		Campaign:    report.NewCampaign(stats),
	}

	fmt.Printf("%s (%s) seed %d model %s: merged %d shard journals\n",
		fp.Kernel, fp.Scale, fp.Seed, fp.Model, flag.NArg())
	fmt.Printf("sites: %d of %d completed", len(recs), fp.Sites)
	if quarantined > 0 {
		fmt.Printf(" (%d quarantined)", quarantined)
	}
	fmt.Println()
	fmt.Printf("profile: %s\n", dist)

	switch *jsonPath {
	case "":
	case "-":
		fatal(report.Write(os.Stdout, doc))
	default:
		f, err := os.Create(*jsonPath)
		fatal(err)
		err = report.Write(f, doc)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		fatal(err)
		fmt.Printf("report written to %s\n", *jsonPath)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
