// Command fsadvise turns a completed injection campaign into selective-
// hardening advice: per-thread and per-static-instruction vulnerability
// rankings with confidence intervals, and a simulated duplicate-and-compare
// protection frontier (resilience vs modeled overhead).
//
// It consumes either a recorded campaign journal (the durable output of
// `fsprune -action campaign -journal FILE`, or several shard journals) or
// runs a live campaign itself:
//
//	fsadvise -journal gemm.journal
//	fsadvise -journal s0.journal,s1.journal -budget 5,10,25 -json
//	fsadvise -kernel "GEMM K1" -sites 2000 -rank-by severity
//
// Both paths produce byte-identical JSON for the same campaign — the
// journal replay attributes exactly the outcomes the live run records.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/advisor"
	"repro/internal/fault"
	"repro/internal/interrupts"
	"repro/internal/journal"
	"repro/internal/kernels"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	journalSpec := flag.String("journal", "", "comma-separated campaign journal(s) to analyze (shards of one campaign merge)")
	kernel := flag.String("kernel", "", `kernel for a live campaign, e.g. "GEMM K1" (mutually exclusive with -journal)`)
	scale := flag.String("scale", "small", "kernel scale for a live campaign: small or paper")
	seed := flag.Int64("seed", 1, "site-sampling seed for a live campaign")
	sites := flag.Int("sites", 3000, "campaign size for a live campaign")
	modelName := flag.String("model", "dest-value", "fault model for a live campaign: "+fault.ModelNames())
	par := flag.Int("par", 0, "live-campaign parallelism (0 = GOMAXPROCS)")
	rankBy := flag.String("rank-by", "sdc", "ranking criterion: sdc | due | severity")
	budgetSpec := flag.String("budget", "", `overhead budgets to sweep, percent ("5,10,25"); empty = every greedy prefix`)
	confidence := flag.Float64("confidence", 0.95, "Wilson-interval confidence level")
	top := flag.Int("top", 10, "ranking rows to print in text mode (0 = all)")
	width := flag.Int("width", 60, "frontier plot width in characters")
	asJSON := flag.Bool("json", false, "emit the machine-readable advice document instead of text")
	flag.Parse()

	if (*journalSpec == "") == (*kernel == "") {
		usageError("exactly one of -journal or -kernel is required")
	}
	budgets, err := advisor.ParseBudgets(*budgetSpec)
	if err != nil {
		usageError("%v", err)
	}
	opt := advisor.Options{RankBy: *rankBy, Confidence: *confidence, Budgets: budgets}

	var in *advisor.Input
	if *journalSpec != "" {
		in = fromJournals(strings.Split(*journalSpec, ","))
	} else {
		in = fromLiveCampaign(*kernel, *scale, *seed, *sites, *modelName, *par)
	}

	adv, err := advisor.Analyze(in, opt)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		fatal(report.Write(os.Stdout, adv))
		return
	}
	advisor.Render(os.Stdout, adv, *top, *width)
}

// fromJournals replays one or more shard journals of a single campaign and
// rebuilds the target the fingerprint describes, so attribution resolves
// against the same profile the campaign ran on.
func fromJournals(paths []string) *advisor.Input {
	for i := range paths {
		paths[i] = strings.TrimSpace(paths[i])
	}
	fp, recs, err := journal.Merge(paths, false)
	fatal(err)
	inst := buildTarget(fp)
	in, err := advisor.FromJournal(inst.Target, fp, recs)
	fatal(err)
	return in
}

// buildTarget reconstructs and prepares the campaign's target from its
// journal fingerprint.
func buildTarget(fp journal.Fingerprint) *kernels.Instance {
	spec, ok := kernels.ByName(fp.Kernel)
	if !ok {
		fatal(fmt.Errorf("journal names unknown kernel %q", fp.Kernel))
	}
	sc := kernels.ScaleSmall
	if fp.Scale == kernels.ScalePaper.String() {
		sc = kernels.ScalePaper
	}
	inst, err := spec.Build(sc)
	fatal(err)
	inst.Target.WarpSize = fp.Warp
	inst.Target.FullRun = fp.FullRun
	inst.Target.CheckpointStride = fp.Stride
	inst.Target.IntraStride = fp.IntraStride
	inst.Target.Cache = fault.DefaultPreparedCache()
	fatal(inst.Target.Prepare())
	return inst
}

// fromLiveCampaign runs the campaign fsprune would run for the same flags
// (identical site-sampling recipe) with per-site outcomes retained, then
// attributes the result.
func fromLiveCampaign(kernel, scale string, seed int64, nSites int, modelName string, par int) *advisor.Input {
	model, err := fault.ParseModel(modelName)
	if err != nil {
		usageError("%v", err)
	}
	spec, ok := kernels.ByName(kernel)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown kernel %q\n", kernel)
		os.Exit(2)
	}
	sc := kernels.ScaleSmall
	if scale == kernels.ScalePaper.String() {
		sc = kernels.ScalePaper
	}
	inst, err := spec.Build(sc)
	fatal(err)
	inst.Target.Cache = fault.DefaultPreparedCache()
	fatal(inst.Target.Prepare())

	space := fault.NewSpace(inst.Target.Profile())
	rng := stats.NewRNG(seed).Split("baseline")
	siteList := fault.Uniform(space.RandomModel(rng, nSites, model))

	res, err := fault.RunModel(inst.Target, siteList, model, fault.CampaignOptions{
		Parallelism: par,
		KeepPerSite: true,
		Interrupt:   interrupts.Notify(),
	})
	if errors.Is(err, fault.ErrInterrupted) {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		fmt.Fprintln(os.Stderr, "advice needs a complete campaign; nothing was saved (record one with fsprune -journal and advise from that)")
		os.Exit(130)
	}
	fatal(err)

	in, err := advisor.FromCampaign(inst.Target, spec.Meta.Name(), sc.String(), seed, model, siteList, res)
	fatal(err)
	return in
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
